package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

const goldenReportFile = "testdata/golden_report_fig3.json"

// jsonBytes runs one experiment with run-record collection and returns the
// serialized JSONDocument.
func jsonBytes(t *testing.T, id string, o Options) []byte {
	t.Helper()
	resetSweepCaches()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	fetch := o.EnableRunLog()
	rep := e.Run(o)
	doc := BuildJSONDocument(o, []*JSONReport{BuildJSON(rep, fetch(), nil)})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestGoldenJSONReport pins the full machine-readable report of fig3 at the
// golden configuration — schema, counters, histograms, phase accounting and
// the trace tail all lock in at once. Regenerate with:
//
//	go test ./internal/experiment -run TestGoldenJSONReport -update
func TestGoldenJSONReport(t *testing.T) {
	o := goldenOpts()
	o.TraceRing = 64 // exercise the trace tail in the report
	got := jsonBytes(t, "fig3", o)

	if *update {
		if err := os.WriteFile(goldenReportFile, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), goldenReportFile)
		return
	}
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON report drifted from %s (%d vs %d bytes) — if intentional, "+
			"regenerate with -update", goldenReportFile, len(got), len(want))
	}
}

// TestJSONReportShape validates the schema invariants the golden bytes
// alone don't explain: every run has counters, at least three wired
// histograms exist across runs, phases are consistent, and the trace tail
// is present when a ring was attached.
func TestJSONReportShape(t *testing.T) {
	o := goldenOpts()
	o.TraceRing = 64
	var doc JSONDocument
	if err := json.Unmarshal(jsonBytes(t, "fig3", o), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "fig3" {
		t.Fatalf("document shape: %+v", doc.Experiments)
	}
	runs := doc.Experiments[0].Runs
	if len(runs) == 0 {
		t.Fatal("no run records collected")
	}
	histSeen := map[string]bool{}
	for _, r := range runs {
		if r.Label == "" || r.Report == nil {
			t.Fatalf("malformed run record: %+v", r)
		}
		if len(r.Report.Counters) == 0 {
			t.Errorf("%s: no counters", r.Label)
		}
		for name, h := range r.Report.Histograms {
			histSeen[name] = true
			if h.Count <= 0 {
				t.Errorf("%s: empty histogram %s in report", r.Label, name)
			}
			if h.P50NS > h.P95NS || h.P95NS > h.P99NS {
				t.Errorf("%s: %s quantiles not monotonic: %d/%d/%d",
					r.Label, name, h.P50NS, h.P95NS, h.P99NS)
			}
		}
		ph := r.Report.Phases
		if ph.TotalNS <= 0 {
			t.Errorf("%s: total time %d", r.Label, ph.TotalNS)
		}
		for _, v := range []int64{ph.GuestRunNS, ph.HostFaultNS, ph.DiskWaitNS, ph.ReclaimScanNS} {
			if v < 0 || v > ph.TotalNS {
				t.Errorf("%s: phase value %d outside [0, %d]", r.Label, v, ph.TotalNS)
			}
		}
		if len(r.Report.Trace) == 0 {
			t.Errorf("%s: trace ring attached but tail empty", r.Label)
		}
	}
	if len(histSeen) < 3 {
		t.Fatalf("only %d distinct histograms wired across runs: %v", len(histSeen), histSeen)
	}
}

// TestJSONSerialParallelEquivalence is the acceptance criterion in bytes:
// the -json output of a sweep experiment is bit-identical between serial
// and parallel execution, including run-record order.
func TestJSONSerialParallelEquivalence(t *testing.T) {
	serial := goldenOpts()
	parallel := goldenOpts()
	parallel.Parallel = 8
	a := jsonBytes(t, "fig5", serial)
	b := jsonBytes(t, "fig5", parallel)
	// The documents embed their Parallel setting; compare everything else.
	var da, db JSONDocument
	if err := json.Unmarshal(a, &da); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &db); err != nil {
		t.Fatal(err)
	}
	da.Parallel, db.Parallel = 0, 0
	ja, _ := json.Marshal(da)
	jb, _ := json.Marshal(db)
	if !bytes.Equal(ja, jb) {
		t.Fatal("serial and parallel JSON reports differ")
	}
}

// TestRunRecordsDeterministicOrder checks the collection layer directly:
// records added in any order sort to the same sequence.
func TestRunRecordsDeterministicOrder(t *testing.T) {
	o := goldenOpts()
	fetch := o.EnableRunLog()
	e, err := ByID("fig10")
	if err != nil {
		t.Fatal(err)
	}
	resetSweepCaches()
	e.Run(o)
	recs := fetch()
	if len(recs) < 2 {
		t.Fatalf("want multiple run records, got %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Label > recs[i].Label {
			t.Fatalf("records not sorted: %q before %q", recs[i-1].Label, recs[i].Label)
		}
	}
}
