package guest

import (
	"testing"

	"vswapsim/internal/sim"
)

func TestWriteFileSpansPartialAndWholeBlocks(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("out", 1<<20)
		// 100 bytes into block 0, through block 1 (whole), into block 2.
		th.WriteFile(f, 4000, 96+4096+50)
		if g.os.DirtyCachePages() != 3 {
			t.Errorf("dirty = %d, want 3", g.os.DirtyCachePages())
		}
		// Blocks 0 and 2 are partial: read-modify-write; block 1 is whole.
		if g.plat.reads != 2 {
			t.Errorf("reads = %d, want 2 (two partial blocks)", g.plat.reads)
		}
	})
}

func TestReadFileUnalignedOffsets(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("data", 1<<20)
		th.ReadFile(f, 100, 50)     // within one block
		th.ReadFile(f, 4090, 10)    // spans blocks 0-1
		th.ReadFile(f, 12288, 4096) // exactly block 3
		if g.os.CachePages() < 3 {
			t.Errorf("cache = %d pages", g.os.CachePages())
		}
	})
}

func TestSyncIdempotent(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("out", 1<<20)
		th.WriteFile(f, 0, 8*4096)
		th.Sync(f)
		writes := len(g.plat.writes)
		th.Sync(f) // nothing dirty: no I/O
		if len(g.plat.writes) != writes {
			t.Error("second sync wrote data")
		}
	})
}

func TestRereadAfterWriteHitsCache(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("out", 1<<20)
		th.WriteFile(f, 0, 16*4096)
		reads := g.plat.reads
		th.ReadFile(f, 0, 16*4096)
		if g.plat.reads != reads {
			t.Error("read of just-written data hit the disk")
		}
	})
}

func TestBalloonWhileCacheFull(t *testing.T) {
	g := newGuest(t, 4096, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("data", 14<<20)
		th.ReadFile(f, 0, 14<<20) // fill the 16MB guest with cache
		g.os.SetBalloonTarget(2000)
		for g.os.BalloonPages() < 2000 {
			th.P.Sleep(10 * sim.Millisecond)
		}
		// Inflation must have come out of the page cache.
		if g.os.CachePages() > 2100 {
			t.Errorf("cache still %d pages after inflating 2000", g.os.CachePages())
		}
	})
	if g.os.OOMKills() != 0 {
		t.Fatal("cache-only pressure must not OOM")
	}
}

func TestKernelHotSetStaysMapped(t *testing.T) {
	g := newGuest(t, 4096, nil)
	g.run(t, func(th *Thread) {
		// Heavy churn; kernel pages are unevictable guest-side.
		f := g.os.FS.Create("data", 24<<20)
		th.ReadFile(f, 0, 24<<20)
	})
	if g.os.FreePages() < 0 {
		t.Fatal("accounting broke")
	}
	// Kernel pages are not on any reclaim list, so cache+anon+free+kernel
	// +balloon must cover all memory.
	total := g.os.CachePages() + g.os.AnonPages() + g.os.FreePages() +
		g.os.Cfg.KernelPages + g.os.BalloonPages()
	if total != g.os.Cfg.MemPages {
		t.Fatalf("page accounting: %d != %d", total, g.os.Cfg.MemPages)
	}
}
