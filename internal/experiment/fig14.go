package experiment

import (
	"fmt"
	"strconv"

	"vswapsim/internal/balloon"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// dynCfg sizes a dynamic (multi-guest phased) cell. The zero value is not
// valid; use defaultDynCfg (the paper's §5.2 setup) or build one from a
// scenario fleet. All MB figures are pre-scale.
type dynCfg struct {
	memMB      int
	hostMB     int
	vcpus      int
	staggerSec int
	diskMB     int
	// job launches one guest's workload.
	job func(o Options, vm *hyper.VM) *workload.Job
}

// defaultDynCfg is the hard-coded Fig. 4/14 configuration: 2 GB guests
// with 2 VCPUs on an 8 GB host, started 10 s apart, each running Metis
// word-count.
func defaultDynCfg() dynCfg {
	return dynCfg{
		memMB: 2 * 1024, hostMB: 8 * 1024, vcpus: 2, staggerSec: 10, diskMB: 20 * 1024,
		job: func(o Options, vm *hyper.VM) *workload.Job {
			return workload.Metis(vm, workload.MetisConfig{
				InputMB: o.mb(300),
				TableMB: o.mb(1024),
			})
		},
	}
}

// runDynamic executes the §5.2 dynamic scenario: n guests (dc.memMB,
// dc.vcpus VCPUs) on a dc.hostMB host run dc.job, started dc.staggerSec
// seconds apart. Balloon schemes are managed by the MOM-like controller.
// It returns the mean guest runtime, how many guests were OOM-killed, and
// the failure record when the cell was killed or panicked (runtime and
// kills are then zero). seed, when nonzero, overrides o.Seed so fan-out
// cells get independent derived streams.
func runDynamic(o Options, scheme Scheme, n int, seed uint64, dc dynCfg) (sim.Duration, int, *FailureRecord) {
	o = o.normalized()
	release := o.acquire()
	defer release()
	if seed == 0 {
		seed = o.Seed
	}
	label := fmt.Sprintf("dynamic/%s/guests%d/seed%016x", scheme, n, seed)

	var total sim.Duration
	killed := 0
	st := &cellState{}
	failed := o.runShielded(label, seed, st, func() {
		m := hyper.NewMachine(hyper.MachineConfig{
			Seed:         seed,
			HostMemPages: o.pages(dc.hostMB),
			Faults:       o.Faults,
			Swapback:     o.Swapback,
			SwapPolicy:   o.SwapPolicy,
			Budget:       o.cellBudget(),
		})
		st.m = m
		var checkAudit func()
		st.aud, checkAudit = o.attachAuditor(m, seed)
		if o.TraceRing > 0 {
			m.EnableTrace(o.TraceRing)
		}
		vms := make([]*hyper.VM, n)
		for i := range vms {
			vms[i] = m.NewVM(hyper.VMConfig{
				Name:       fmt.Sprintf("vm%d", i),
				MemPages:   o.pages(dc.memMB),
				VCPUs:      dc.vcpus,
				DiskBlocks: int64(o.mb(dc.diskMB)) << 20 / 4096,
				Mapper:     scheme.mapper(),
				Preventer:  scheme.preventer(),
				GuestAPF:   true,
			})
		}
		var mgr *balloon.Manager
		if scheme.balloon() {
			mgr = balloon.New(m, balloon.Config{})
		}

		m.Env.Go("driver", func(p *sim.Proc) {
			for _, vm := range vms {
				vm.Boot(p)
			}
			if mgr != nil {
				mgr.Start()
			}
			jobs := make([]*workload.Job, n)
			for i, vm := range vms {
				jobs[i] = dc.job(o, vm)
				if i < n-1 {
					p.Sleep(sim.Duration(dc.staggerSec) * sim.Second)
				}
			}
			for _, j := range jobs {
				r := j.Wait(p)
				total += r.Runtime()
				if r.Killed {
					killed++
				}
			}
			if mgr != nil {
				mgr.Stop()
			}
			m.Shutdown()
		})
		m.Run()
		checkAudit()
	})
	if failed != nil {
		return 0, 0, failed
	}
	if o.runlog != nil {
		o.runlog.add(label, st.m.Report())
	}
	return total / sim.Duration(n), killed, nil
}

// dynamicSchemes is the Fig. 14 configuration set in plot order.
var dynamicSchemes = []Scheme{BalloonBase, Baseline, VSwapper, BalloonVSwapper}

// Fig14 reproduces the phased MapReduce scale-up.
func Fig14(o Options) *Report {
	o = o.normalized()
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if o.Quick {
		counts = []int{1, 4, 7, 10}
	}
	rep := &Report{
		ID:        "fig14",
		Title:     "Phased Metis MapReduce guests on an 8GB host (Fig. 14)",
		PaperNote: "pressure from ~7 guests; balloon-only up to 1.84x and baseline up to 1.79x slower than balloon+vswapper; vswapper within 1.11x",
	}
	tab := &Table{Title: "mean guest runtime [sec]", Columns: []string{"guests"}}
	for _, s := range dynamicSchemes {
		tab.Columns = append(tab.Columns, s.String())
	}
	cells := dynamicCells(o, "fig14", counts, dynamicSchemes)
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range dynamicSchemes {
			row = append(row, cells[i*len(dynamicSchemes)+j])
		}
		tab.Add(row...)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}

// dynOut is one completed dynamic cell in structured form (scenario
// assertions evaluate against these before rendering).
type dynOut struct {
	mean   sim.Duration
	killed int
	failed bool
}

// renderDynCell formats a dynamic cell the way Fig. 4/14 print them.
func renderDynCell(c dynOut) string {
	if c.failed {
		return "failed"
	}
	cell := secs(c.mean)
	if c.killed > 0 {
		cell += fmt.Sprintf(" (%d killed)", c.killed)
	}
	return cell
}

// dynamicGrid runs the counts × schemes grid of runDynamic calls on the
// worker pool, returning structured cells in row-major (counts-outer)
// order. Each cell's seed derives from (id, scheme, guest count).
func dynamicGrid(o Options, id string, counts []int, schemes []Scheme, dc dynCfg) []dynOut {
	o = o.normalized()
	out := make([]dynOut, len(counts)*len(schemes))
	o.forEach(len(out), func(i int) {
		n, s := counts[i/len(schemes)], schemes[i%len(schemes)]
		seed := sim.DeriveSeed(o.Seed, id, s.String(), strconv.Itoa(n))
		mean, killed, failed := runDynamic(o, s, n, seed, dc)
		out[i] = dynOut{mean: mean, killed: killed, failed: failed != nil}
	})
	return out
}

// dynamicCells is dynamicGrid pre-rendered for table assembly.
func dynamicCells(o Options, id string, counts []int, schemes []Scheme) []string {
	grid := dynamicGrid(o, id, counts, schemes, defaultDynCfg())
	out := make([]string, len(grid))
	for i, c := range grid {
		out[i] = renderDynCell(c)
	}
	return out
}

// Fig4 is the paper's motivational preview of Fig. 14 at ten guests.
func Fig4(o Options) *Report {
	o = o.normalized()
	n := 10
	if o.Quick {
		n = 4
	}
	rep := &Report{
		ID:        "fig4",
		Title:     "Average completion of ten phased MapReduce guests (Fig. 4)",
		PaperNote: "baseline 153s, balloon+base 167s, vswapper 88s, balloon+vswapper 97s",
	}
	paper := map[Scheme]string{
		Baseline: "153", BalloonBase: "167", VSwapper: "88", BalloonVSwapper: "97",
	}
	tab := &Table{Title: "avg runtime [sec]", Columns: []string{"config", "runtime", "paper"}}
	schemes := []Scheme{Baseline, BalloonBase, VSwapper, BalloonVSwapper}
	cells := dynamicCells(o, "fig4", []int{n}, schemes)
	for i, s := range schemes {
		tab.Add(s.String(), cells[i], paper[s])
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}
