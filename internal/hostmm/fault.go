package hostmm

import (
	"fmt"

	"vswapsim/internal/disk"
	"vswapsim/internal/sim"
	"vswapsim/internal/trace"
)

// Injected swap-in failure retry policy: bounded exponential backoff,
// re-reading the faulting slot each attempt; exhaustion poisons the slot
// (see SwapIn).
const (
	swapInMaxRetries   = 4
	swapInRetryBackoff = 250 * sim.Microsecond
)

// NewPage creates the host-side descriptor for one page of cg (lazily, on
// first reference). ID is the GFN for guest pages.
func (m *Manager) NewPage(cg *Cgroup, id int) *Page {
	if len(m.pageSlab) == 0 {
		m.pageSlab = make([]Page, 8192)
	}
	pg := &m.pageSlab[0]
	m.pageSlab = m.pageSlab[1:]
	pg.Owner = cg
	pg.ID = id
	pg.SwapSlot = -1
	return pg
}

// NewFilePage creates a named, non-resident page backed by ref, e.g. one
// page of the QEMU executable before it is first demand-loaded.
func (m *Manager) NewFilePage(cg *Cgroup, id int, ref BlockRef) *Page {
	pg := m.NewPage(cg, id)
	pg.State = FileNonResident
	pg.Backing = ref
	pg.TruthBlock = ref
	pg.TruthClean = true
	ref.File.AddMapping(pg)
	return pg
}

func (m *Manager) accountFault(ctx Ctx, major bool) {
	if ctx == GuestCtx {
		m.c.faultsInGuest.Inc()
		if major {
			m.c.majorInGuest.Inc()
		}
	} else {
		m.c.faultsInHost.Inc()
	}
	if major {
		m.c.majorFaults.Inc()
	} else {
		m.c.minorFaults.Inc()
	}
}

// accountFaultLatency records one serviced fault's end-to-end latency
// (including lock waits, reclaim and disk time) in the matching histogram,
// and charges the handler's CPU cost to the host-fault phase. Call it where
// accountFault is called, with the fault entry time.
func (m *Manager) accountFaultLatency(start sim.Time, major bool, cpu sim.Duration) {
	h := m.c.histFaultMinor
	if major {
		h = m.c.histFaultMajor
	}
	h.Observe(m.Env.Now().Sub(start))
	m.c.timeHostFault.Add(int64(cpu))
}

// lockFault serializes concurrent fault-ins: it returns false if another
// process completed the fault while we waited (the caller should simply
// return; the page is in a new state). On true, the caller owns the fault
// and must call unlockFault when done.
func (m *Manager) lockFault(p *sim.Proc, pg *Page, want PageState) bool {
	for pg.fault != nil {
		sig := pg.fault
		sig.Wait(p)
	}
	if pg.State != want {
		return false // resolved concurrently
	}
	if n := len(m.signalPool); n > 0 {
		pg.fault = m.signalPool[n-1]
		m.signalPool = m.signalPool[:n-1]
	} else {
		pg.fault = sim.NewSignal(m.Env)
	}
	return true
}

func (m *Manager) unlockFault(pg *Page) {
	sig := pg.fault
	pg.fault = nil
	sig.Broadcast()
	m.signalPool = append(m.signalPool, sig)
}

// FirstTouch handles the very first access to an untouched (or ballooned-
// then-returned) page: allocate a zeroed frame and map it.
func (m *Manager) FirstTouch(p *sim.Proc, pg *Page, ctx Ctx) {
	if pg.State != Untouched && pg.State != Ballooned {
		panic(fmt.Sprintf("hostmm: FirstTouch on %s page", pg.State))
	}
	start := m.Env.Now()
	if !m.lockFault(p, pg, pg.State) {
		return
	}
	defer m.unlockFault(pg)
	m.chargeFrames(p, pg.Owner, 1)
	pg.State = ResidentAnon
	pg.Dirty = true
	pg.Referenced = true
	pg.EPT = ctx == GuestCtx
	pg.TruthClean = false
	pg.TruthBlock = BlockRef{}
	pg.Owner.activeAnon.pushFront(pg)
	m.accountFault(ctx, false)
	p.Sleep(m.Cfg.MinorFaultCost)
	m.accountFaultLatency(start, false, m.Cfg.MinorFaultCost)
}

// SwapIn services a major fault on a swapped-out page: it reads the
// cluster of allocated slots around the fault (swap readahead), placing
// the neighbours in the swap cache. The faulting page is left resident but
// unmapped; callers map it with MinorMap (guest) or use it directly
// (host/QEMU context).
func (m *Manager) SwapIn(p *sim.Proc, pg *Page, ctx Ctx) {
	if pg.State != SwappedOut {
		return // resolved while the caller was getting here
	}
	faultStart := m.Env.Now()
	if !m.lockFault(p, pg, SwappedOut) {
		return // a concurrent fault brought the page in
	}
	defer m.unlockFault(pg)
	bufs := m.getSwapInBufs()
	defer m.putSwapInBufs(bufs)
	slots := m.Swap.AppendClusterRun(bufs.ioSlots[:0], pg.SwapSlot, m.Cfg.SwapClusterPages)

	// Read maximal disk-contiguous runs; skip slots whose page is already
	// in the swap cache (resident). Filter in place: the run is scanned
	// front to back and the filtered prefix never outruns the read cursor.
	ioSlots := slots[:0]
	for _, s := range slots {
		q := m.Swap.Owner(s)
		if q != nil && q.State == SwappedOut && (q == pg || q.fault == nil) {
			ioSlots = append(ioSlots, s)
		}
	}
	bufs.ioSlots = ioSlots
	var last sim.Time
	start := 0
	for i := 1; i <= len(ioSlots); i++ {
		if i < len(ioSlots) && ioSlots[i] == ioSlots[i-1]+1 {
			continue
		}
		done := m.Back.SubmitRead(ioSlots[start:i])
		if done > last {
			last = done
		}
		start = i
	}
	m.Back.WaitFor(p, last)

	// Injected transient read failures: retry the faulting slot with
	// exponential backoff. If retries run out the slot's content is
	// suspect — the page is instantiated anyway but poisoned, degrading it
	// to plain dirty swap below (the slot is dropped, forcing a fresh
	// write on the next eviction).
	poisoned := false
	if m.Inj != nil {
		for attempt := 0; pg.State == SwappedOut && m.Inj.SwapInFailure(); attempt++ {
			if attempt == swapInMaxRetries {
				poisoned = true
				m.c.faultSwapInPoisoned.Inc()
				break
			}
			backoff := swapInRetryBackoff << attempt
			m.c.faultSwapInRetries.Inc()
			m.c.histBackoff.Observe(backoff)
			p.Sleep(backoff)
			m.Back.WaitFor(p, m.Back.SubmitRead1(pg.SwapSlot))
		}
	}

	// The guest may have superseded the page while the read was in flight
	// (balloon take after an OOM teardown, mmap-over): nothing to map.
	if pg.State != SwappedOut {
		return
	}

	// Instantiate the faulting page first and pin it so that charging
	// frames for the prefetched neighbours cannot reclaim it (Linux holds
	// the page lock across the fault).
	m.pin(pg)
	m.chargeFrames(p, pg.Owner, 1)
	if pg.State != SwappedOut {
		m.unchargeFrame(pg.Owner)
		m.unpin(pg)
		return
	}
	pg.State = ResidentAnon
	pg.Dirty = false
	pg.EPT = false
	pg.Referenced = false
	pg.Owner.inactiveAnon.pushFront(pg)
	m.c.hostSwapIns.Inc()
	m.Back.NoteRefault(pg.SwapSlot)
	if m.Trace.Recording(trace.Fault) {
		m.Trace.Add(m.Env.Now(), trace.Fault, "swap-in cg=%s gfn=%d slot=%d cluster=%d",
			pg.Owner.Name, pg.ID, pg.SwapSlot, len(ioSlots))
	}
	if poisoned {
		// Degrade to plain swap: drop the poisoned slot so nothing ever
		// trusts its content again; the page must be rewritten to evict.
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
		pg.Dirty = true
	}

	pinned := bufs.pinned[:0]
	for _, s := range ioSlots {
		q := m.Swap.Owner(s)
		if q == nil || q.State != SwappedOut || q.fault != nil {
			continue
		}
		// Prefetch may itself reclaim (Linux allocates readahead pages
		// with reclaim allowed); pin the cluster so the fault cannot eat
		// its own pages, but never pin away the last evictable page.
		if !m.canPrefetchInto(q.Owner) {
			continue
		}
		m.pin(q)
		m.chargeFrames(p, q.Owner, 1)
		if q.State != SwappedOut {
			// A concurrent fault instantiated q while reclaim slept.
			m.unchargeFrame(q.Owner)
			m.unpin(q)
			continue
		}
		q.State = ResidentAnon
		q.Dirty = false // clean copy of the slot (swap cache)
		q.EPT = false
		q.Referenced = false
		q.Owner.inactiveAnon.pushFront(q)
		m.c.hostSwapPrefetched.Inc()
		pinned = append(pinned, q)
	}
	bufs.pinned = pinned
	for _, q := range pinned {
		m.unpin(q)
	}
	m.unpin(pg)
	m.accountFault(ctx, true)
	p.Sleep(m.Cfg.MajorFaultCost)
	m.accountFaultLatency(faultStart, true, m.Cfg.MajorFaultCost)
}

// FileFaultIn services a major fault on a named non-resident page by
// reading it (plus a sequential readahead window of other named,
// non-resident blocks) from its backing file.
func (m *Manager) FileFaultIn(p *sim.Proc, pg *Page, ctx Ctx) {
	if pg.State != FileNonResident {
		return // resolved while the caller was getting here
	}
	faultStart := m.Env.Now()
	if !m.lockFault(p, pg, FileNonResident) {
		return // a concurrent fault brought the page in
	}
	defer m.unlockFault(pg)
	f := pg.Backing.File
	b := pg.Backing.Block
	win := f.readaheadWindow(b, m.Cfg.FileRAMinPages, m.Cfg.FileRAMaxPages)

	// Extend from the demand block over contiguous blocks that have a
	// non-resident mapping (the paper: host prefetch is limited to content
	// the guest already cached and the host reclaimed).
	nblocks := 1
	for int64(nblocks) < int64(win) {
		nb := b + int64(nblocks)
		if nb >= f.Blocks() {
			break
		}
		hasNR := false
		for q := f.MappingAt(nb); q != nil; q = q.nextMapping {
			if q.State == FileNonResident {
				hasNR = true
				break
			}
		}
		if !hasNR || f.CachedResident(nb) {
			break
		}
		nblocks++
	}

	done := m.Dev.Submit(disk.Read, f.Phys(b), nblocks)
	m.c.imageReadSectors.Add(int64(nblocks) * disk.SectorsPerBlock)
	m.Dev.WaitFor(p, done)

	if pg.State != FileNonResident {
		return // superseded while the read was in flight
	}
	m.pin(pg)
	m.chargeFrames(p, pg.Owner, 1)
	if pg.State != FileNonResident {
		m.unchargeFrame(pg.Owner)
		m.unpin(pg)
		return
	}
	pg.State = ResidentFile
	pg.EPT = false
	pg.Referenced = false
	pg.Dirty = false
	pg.Owner.inactiveFile.pushFront(pg)
	if m.Trace.Recording(trace.Fault) {
		m.Trace.Add(m.Env.Now(), trace.Fault, "file-in cg=%s gfn=%d block=%d window=%d",
			pg.Owner.Name, pg.ID, b, nblocks)
	}

	bufs := m.getSwapInBufs()
	pinned := bufs.pinned[:0]
	prefetch := func(q *Page) {
		if q == pg || q.State != FileNonResident || q.fault != nil {
			return
		}
		if !m.canPrefetchInto(q.Owner) {
			return
		}
		m.pin(q)
		m.chargeFrames(p, q.Owner, 1)
		if q.State != FileNonResident {
			// A concurrent fault resolved q while reclaim slept.
			m.unchargeFrame(q.Owner)
			m.unpin(q)
			return
		}
		q.State = ResidentFile
		q.EPT = false
		q.Referenced = false
		q.Dirty = false
		q.Owner.inactiveFile.pushFront(q)
		m.c.hostFilePrefetched.Inc()
		pinned = append(pinned, q)
	}
	for i := 0; i < nblocks; i++ {
		f.EachMapping(b+int64(i), prefetch)
	}
	bufs.pinned = pinned
	for _, q := range pinned {
		m.unpin(q)
	}
	m.putSwapInBufs(bufs)
	m.unpin(pg)
	m.accountFault(ctx, true)
	p.Sleep(m.Cfg.MajorFaultCost)
	m.accountFaultLatency(faultStart, true, m.Cfg.MajorFaultCost)
}

// MinorMap installs the GPA⇒HPA mapping for a resident page (prefetched by
// swap or file readahead, or just brought in by a major fault). For
// anonymous pages on pre-Haswell hardware the host must then assume the
// page is dirty, so its swap slot is released.
func (m *Manager) MinorMap(p *sim.Proc, pg *Page, ctx Ctx) {
	if !pg.State.Resident() {
		panic(fmt.Sprintf("hostmm: MinorMap on %s page", pg.State))
	}
	start := m.Env.Now()
	wasHit := !pg.EPT && (pg.SwapSlot >= 0 || pg.State == ResidentFile)
	pg.EPT = true
	m.Touch(pg)
	if pg.State == ResidentAnon && !m.Cfg.EPTDirtyBits {
		pg.Dirty = true
		if pg.SwapSlot >= 0 {
			m.Swap.Free(pg.SwapSlot)
			pg.SwapSlot = -1
		}
	}
	if wasHit {
		m.c.hostPrefetchHits.Inc()
	}
	m.accountFault(ctx, false)
	p.Sleep(m.Cfg.MinorFaultCost)
	m.accountFaultLatency(start, false, m.Cfg.MinorFaultCost)
}

// MarkWritten records an actual write when EPT dirty bits are available
// (the ablation config); without them writes are implied by MinorMap.
func (m *Manager) MarkWritten(pg *Page) {
	pg.Dirty = true
	pg.TruthClean = false
	if pg.SwapSlot >= 0 {
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
	}
}

// COWBreak handles a guest write to a privately-mapped named page: copy,
// unmap from the file, and treat as anonymous from now on. Per VSwapper's
// design the source copy is removed from the host page cache immediately,
// but reclaim still traverses a lazy entry for it (see Cgroup.lazy).
func (m *Manager) COWBreak(p *sim.Proc, pg *Page, ctx Ctx) {
	if pg.State != ResidentFile {
		panic(fmt.Sprintf("hostmm: COWBreak on %s page", pg.State))
	}
	start := m.Env.Now()
	f := pg.Backing.File
	f.RemoveMapping(pg)
	if pg.list != nil {
		pg.list.remove(pg)
	}
	src := &Page{Owner: pg.Owner, ID: pg.ID, SwapSlot: -1, State: Untouched}
	pg.Owner.lazy.pushFront(src)

	pg.State = ResidentAnon
	pg.Dirty = true
	pg.Backing = BlockRef{}
	pg.TruthClean = false
	pg.TruthBlock = BlockRef{}
	pg.Referenced = true
	pg.Owner.activeAnon.pushFront(pg)
	m.c.hostCOWBreaks.Inc()
	m.accountFault(ctx, false)
	p.Sleep(m.Cfg.COWCost)
	m.accountFaultLatency(start, false, m.Cfg.COWCost)
}

// Forget releases whatever the host holds for the page (frame, swap slot,
// file mapping) without any I/O, leaving it Untouched. Used when content
// is about to be entirely superseded (mmap-over by the Mapper) and by the
// balloon path.
func (m *Manager) Forget(pg *Page) {
	if pg.list != nil {
		pg.list.remove(pg)
	}
	switch pg.State {
	case ResidentAnon, ResidentFile:
		if pg.State == ResidentFile {
			pg.Backing.File.RemoveMapping(pg)
		}
		m.unchargeFrame(pg.Owner)
	case FileNonResident:
		pg.Backing.File.RemoveMapping(pg)
	case SwappedOut:
		// slot freed below
	case Untouched, Ballooned:
		// nothing held
	case Emulated:
		panic("hostmm: Forget on emulated page; finish emulation first")
	}
	if pg.SwapSlot >= 0 {
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
	}
	pg.Backing = BlockRef{}
	pg.State = Untouched
	pg.EPT = false
	pg.Dirty = false
	pg.Referenced = false
	pg.TruthClean = false
	pg.TruthBlock = BlockRef{}
}

// BalloonTake is invoked by the balloon hypercall: the guest pinned the
// page and promises not to use it, so the host drops all its state.
func (m *Manager) BalloonTake(pg *Page) {
	m.Forget(pg)
	pg.State = Ballooned
	m.c.balloonInflate.Inc()
}

// BalloonReturn gives a page back to the guest on deflate; its content is
// undefined until first touch.
func (m *Manager) BalloonReturn(pg *Page) {
	if pg.State != Ballooned {
		panic(fmt.Sprintf("hostmm: BalloonReturn on %s page", pg.State))
	}
	pg.State = Untouched
	m.c.balloonDeflate.Inc()
}
