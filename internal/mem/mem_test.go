package mem

import (
	"testing"
	"testing/quick"
)

func TestPagesRoundsUp(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {200 * MiB, 51200},
	}
	for _, c := range cases {
		if got := Pages(c.bytes); got != c.want {
			t.Errorf("Pages(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestBytesPagesRoundTrip(t *testing.T) {
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw)
		return Pages(Bytes(n)) == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFramePoolAccounting(t *testing.T) {
	p := NewFramePool(100)
	p.Grab(40)
	if p.Used() != 40 || p.Free() != 60 {
		t.Fatalf("used=%d free=%d", p.Used(), p.Free())
	}
	p.Release(15)
	if p.Used() != 25 {
		t.Fatalf("used=%d", p.Used())
	}
	if p.Capacity() != 100 {
		t.Fatalf("capacity=%d", p.Capacity())
	}
}

func TestFramePoolOverdrawPanics(t *testing.T) {
	p := NewFramePool(10)
	p.Grab(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Grab(1)
}

func TestFramePoolOverReleasePanics(t *testing.T) {
	p := NewFramePool(10)
	p.Grab(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Release(6)
}
