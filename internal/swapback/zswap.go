package swapback

import (
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Zswap model parameters. The pool stores compressed page copies in host
// RAM, charging whole frames against the machine's frame pool; pages whose
// content does not compress well are refused and go to the slow tier, as
// real zswap does.
const (
	// zswapCapDivisor bounds the pool at capacity/zswapCapDivisor of host
	// memory (Linux zswap's max_pool_percent default is 20; we stay at 10
	// so the pool never starves reclaim of the frames it is trying to
	// free).
	zswapCapDivisor = 10
	// zswapReserveFrames is the free-frame floor the pool refuses to grab
	// below: stores must never push the frame pool into the territory
	// direct reclaim is fighting for, or reclaim's own swap writes would
	// consume what they free (livelock).
	zswapReserveFrames = 64
	// zswapIncompressiblePct of pages (by content hash) are refused as
	// incompressible.
	zswapIncompressiblePct = 10
	// Compressed-size ratios are drawn uniformly from [min,max] per page.
	zswapMinRatio = 0.15
	zswapMaxRatio = 0.85
	// zswapDecompressCost is the CPU cost of decompressing one page on a
	// fast hit (LZO-class).
	zswapDecompressCost = 2 * sim.Microsecond
	// heatRingSize bounds the PolicyHot re-fault ring.
	heatRingSize = 4096
)

// zentry is one compressed page copy, keyed by swap slot. seq guards
// against slot reuse: the FIFO holds (slot, seq) items and skips entries
// whose slot was freed and re-stored since enqueue.
type zentry struct {
	bytes int64
	seq   uint64
}

type fifoItem struct {
	slot int64
	seq  uint64
}

// zswapPool is the compressed-RAM tier: a slot-keyed entry table with FIFO
// demotion order and frame-granular capacity accounting against the host
// pool. The entry map is only ever probed by key — iteration order never
// influences the simulation, keeping runs deterministic.
type zswapPool struct {
	pool       *mem.FramePool
	seed       uint64
	capBytes   int64
	usedBytes  int64
	frames     int // host frames currently grabbed for compressed storage
	entries    map[int64]zentry
	fifo       []fifoItem
	fifoHead   int
	seq        uint64
	decompress sim.Duration

	stored, load, reject, incompressible, corrupt, demoted *metrics.Counter
}

func newZswapPool(cfg Config) *zswapPool {
	return &zswapPool{
		pool:           cfg.Pool,
		seed:           cfg.Seed,
		capBytes:       mem.Bytes(cfg.Pool.Capacity()) / zswapCapDivisor,
		entries:        make(map[int64]zentry),
		decompress:     zswapDecompressCost,
		stored:         cfg.Met.Counter(metrics.SwapbackFastStorePages),
		load:           cfg.Met.Counter(metrics.SwapbackFastLoadPages),
		reject:         cfg.Met.Counter(metrics.SwapbackFastRejectPages),
		incompressible: cfg.Met.Counter(metrics.SwapbackFastIncompressiblePages),
		corrupt:        cfg.Met.Counter(metrics.SwapbackFastCorruptPages),
		demoted:        cfg.Met.Counter(metrics.SwapbackDemotePages),
	}
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash for
// deriving per-page properties from (seed, page identity).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// compressedBytes derives the page's compressed size from its identity:
// stable across slot reuse and across store/drop cycles, as real content
// compressibility is. Returns 0 for incompressible pages.
func (z *zswapPool) compressedBytes(key uint64) int64 {
	u := mix64(z.seed ^ key)
	if u%100 < zswapIncompressiblePct {
		return 0
	}
	frac := float64(u>>11) / (1 << 53)
	ratio := zswapMinRatio + (zswapMaxRatio-zswapMinRatio)*frac
	return int64(ratio * float64(mem.PageSize))
}

// store admits one page into the pool, charging frames as the compressed
// heap grows. Returns false (and counts why) when the page is
// incompressible, the pool is at capacity, or host frames are too scarce
// to grow into.
func (z *zswapPool) store(slot int64, key uint64) bool {
	bytes := z.compressedBytes(key)
	if bytes == 0 {
		z.incompressible.Inc()
		return false
	}
	// A dirty page rewritten to a slot it already occupies replaces the
	// stale compressed copy.
	if e, ok := z.entries[slot]; ok {
		delete(z.entries, slot)
		z.releaseBytes(e.bytes)
	}
	if z.usedBytes+bytes > z.capBytes {
		z.reject.Inc()
		return false
	}
	newFrames := int((z.usedBytes + bytes + mem.PageSize - 1) / mem.PageSize)
	if d := newFrames - z.frames; d > 0 {
		if z.pool.Free() < d+zswapReserveFrames {
			z.reject.Inc()
			return false
		}
		z.pool.Grab(d)
		z.frames = newFrames
	}
	z.usedBytes += bytes
	z.seq++
	z.entries[slot] = zentry{bytes: bytes, seq: z.seq}
	z.fifo = append(z.fifo, fifoItem{slot: slot, seq: z.seq})
	z.stored.Inc()
	return true
}

// contains reports whether the pool holds a copy of the slot.
func (z *zswapPool) contains(slot int64) bool {
	_, ok := z.entries[slot]
	return ok
}

// drop removes the slot's entry (slot freed, or copy corrupted), releasing
// surplus frames. Its FIFO item goes stale and is skipped on pop.
func (z *zswapPool) drop(slot int64) {
	if e, ok := z.entries[slot]; ok {
		delete(z.entries, slot)
		z.releaseBytes(e.bytes)
	}
}

// popOldest removes and returns the oldest live entry's slot (FIFO
// demotion order), skipping stale items.
func (z *zswapPool) popOldest() (int64, bool) {
	for z.fifoHead < len(z.fifo) {
		it := z.fifo[z.fifoHead]
		z.fifoHead++
		if e, ok := z.entries[it.slot]; ok && e.seq == it.seq {
			delete(z.entries, it.slot)
			z.releaseBytes(e.bytes)
			z.compact()
			return it.slot, true
		}
	}
	z.compact()
	return 0, false
}

func (z *zswapPool) releaseBytes(b int64) {
	z.usedBytes -= b
	newFrames := int((z.usedBytes + mem.PageSize - 1) / mem.PageSize)
	if d := z.frames - newFrames; d > 0 {
		z.pool.Release(d)
		z.frames = newFrames
	}
}

// compact reclaims the consumed FIFO prefix once it dominates the slice.
func (z *zswapPool) compact() {
	if z.fifoHead > 1024 && z.fifoHead > len(z.fifo)/2 {
		n := copy(z.fifo, z.fifo[z.fifoHead:])
		z.fifo = z.fifo[:n]
		z.fifoHead = 0
	}
}

// heatRing is a bounded ring of recently re-faulted page identities with
// O(1) membership, feeding PolicyHot's admission decision.
type heatRing struct {
	keys  []uint64
	pos   int
	n     int
	count map[uint64]int
}

func newHeatRing(size int) *heatRing {
	return &heatRing{keys: make([]uint64, size), count: make(map[uint64]int, size)}
}

func (h *heatRing) add(key uint64) {
	if h.n == len(h.keys) {
		old := h.keys[h.pos]
		if c := h.count[old]; c <= 1 {
			delete(h.count, old)
		} else {
			h.count[old] = c - 1
		}
	} else {
		h.n++
	}
	h.keys[h.pos] = key
	h.pos++
	if h.pos == len(h.keys) {
		h.pos = 0
	}
	h.count[key]++
}

func (h *heatRing) contains(key uint64) bool { return h.count[key] > 0 }
