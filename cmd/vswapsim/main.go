// Command vswapsim runs one of the paper's experiments and prints its
// tables.
//
// Usage:
//
//	vswapsim -list
//	vswapsim -run fig3 [-scale 1.0] [-seed 42] [-quick] [-parallel N]
//	         [-json] [-tracering N] [-faults spec] [-auditevery N]
//	         [-cpuprofile f] [-memprofile f]
//
// With -json the experiment's machine-readable report is printed instead
// of the text tables: tables and notes plus one run record per simulated
// machine (counters, latency histograms, per-phase time accounting, and —
// with -tracering — the trace tail). The JSON bytes are bit-identical
// between serial (-parallel 1) and parallel runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vswapsim/internal/experiment"
	"vswapsim/internal/fault"
)

// cliConfig holds the parsed command line.
type cliConfig struct {
	list       bool
	run        string
	scale      float64
	seed       uint64
	quick      bool
	parallel   int
	jsonOut    bool
	traceRing  int
	faults     fault.Plan
	auditEvery int
	cpuProfile string
	memProfile string
}

// parseArgs parses args (without the program name). Parse errors are
// reported on stderr by the FlagSet itself.
func parseArgs(args []string) (cliConfig, error) {
	fs := flag.NewFlagSet("vswapsim", flag.ContinueOnError)
	var c cliConfig
	fs.BoolVar(&c.list, "list", false, "list available experiments")
	fs.StringVar(&c.run, "run", "", "experiment id to run (e.g. fig3)")
	fs.Float64Var(&c.scale, "scale", 1.0, "size scale factor (1.0 = paper-sized)")
	fs.Uint64Var(&c.seed, "seed", 42, "random seed")
	fs.BoolVar(&c.quick, "quick", false, "trim sweeps for a fast smoke run")
	fs.IntVar(&c.parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent simulator runs (1 = serial; results are identical either way)")
	fs.BoolVar(&c.jsonOut, "json", false,
		"emit the machine-readable report (tables + per-run counters/histograms/phases) as JSON")
	fs.IntVar(&c.traceRing, "tracering", 0,
		"attach a trace ring of this capacity to every machine; run reports embed its tail")
	faultSpec := fs.String("faults", "",
		"fault-injection spec, e.g. 'disk-read-err:0.01;disk-lat:0.05:2ms;swapin-fail:0.02'")
	fs.IntVar(&c.auditEvery, "auditevery", 0,
		"run the invariant auditor every N simulated events (0 = off; a violation aborts the run)")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.scale <= 0 || c.scale > 16 {
		return c, fmt.Errorf("invalid -scale %v: must be in (0, 16]", c.scale)
	}
	if c.parallel < 1 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 1", c.parallel)
	}
	if c.traceRing < 0 {
		return c, fmt.Errorf("invalid -tracering %d: must be >= 0", c.traceRing)
	}
	if c.auditEvery < 0 {
		return c, fmt.Errorf("invalid -auditevery %d: must be >= 0", c.auditEvery)
	}
	var err error
	if c.faults, err = fault.ParsePlan(*faultSpec); err != nil {
		return c, fmt.Errorf("invalid -faults: %v", err)
	}
	return c, nil
}

func main() {
	c, err := parseArgs(os.Args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}

	if c.list || c.run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiment.Registry {
			fmt.Printf("  %-9s %-45s (%s)\n", e.ID, e.Title, e.PaperNote)
		}
		if c.run == "" && !c.list {
			os.Exit(2)
		}
		return
	}

	e, err := experiment.ByID(c.run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiment.Options{
		Seed: c.seed, Scale: c.scale, Quick: c.quick,
		Parallel: c.parallel, TraceRing: c.traceRing,
		Faults: c.faults, AuditEvery: c.auditEvery,
	}
	fetch := opts.EnableRunLog()
	start := time.Now()
	rep := e.Run(opts)
	elapsed := time.Since(start)

	if c.jsonOut {
		doc := experiment.BuildJSONDocument(opts,
			[]*experiment.JSONReport{experiment.BuildJSON(rep, fetch())})
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep.String())
		fmt.Printf("(generated in %v wall time, -parallel %d)\n", elapsed.Round(time.Millisecond), c.parallel)
	}

	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
