package guest

import (
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// The balloon driver: a paravirtual pseudo-driver that allocates pinned
// guest pages at the host's request and donates them via hypercall
// (paper §2.1, Fig. 2). Inflation runs at the speed the guest can free
// memory — when reclaim needs swap I/O, inflation is slow, which is the
// responsiveness gap VSwapper exploits under changing load.

// balloonBatch is how many pages the driver moves per hypercall.
const balloonBatch = 64

// perPagePinCost is the CPU cost of pinning/unpinning one balloon page.
const perPagePinCost = 500 * sim.Nanosecond

// balloonRetryBackoff is how long the driver waits after an injected
// inflate/deflate refusal before retrying.
const balloonRetryBackoff = 50 * sim.Millisecond

// SetBalloonTarget asks the driver to inflate/deflate toward n pages.
func (os *OS) SetBalloonTarget(n int) {
	if n < 0 {
		n = 0
	}
	max := os.Cfg.MemPages * 9 / 10
	if n > max {
		n = max // guests bound balloon sizes (paper: 65% on ESX)
	}
	os.balloonGoal = n
	os.balloonWake.Broadcast()
}

// BalloonTarget reports the current goal.
func (os *OS) BalloonTarget() int { return os.balloonGoal }

// Shutdown stops the balloon daemon so the simulation can drain.
func (os *OS) Shutdown() {
	os.shutdown = true
	os.balloonWake.Broadcast()
}

// balloonLoop is the driver's kernel thread.
func (os *OS) balloonLoop(p *sim.Proc) {
	t := &Thread{OS: os, P: p}
	for !os.shutdown {
		cur := len(os.balloonGFNs)
		switch {
		case cur < os.balloonGoal:
			if os.Inj.BalloonRefused() {
				// Injected hypercall refusal: back off and retry.
				os.Met.Histogram(metrics.HistFaultBackoff).Observe(balloonRetryBackoff)
				p.Sleep(balloonRetryBackoff)
				continue
			}
			n := os.balloonGoal - cur
			if n > balloonBatch {
				n = balloonBatch
			}
			batch := make([]int, 0, n)
			for i := 0; i < n; i++ {
				gfn := os.allocPage(t)
				if gfn < 0 {
					break // cannot inflate further right now
				}
				os.pages[gfn].kind = kindBalloon
				os.balloonGFNs = append(os.balloonGFNs, gfn)
				batch = append(batch, int(gfn))
			}
			if len(batch) == 0 {
				// Allocation failing entirely: back off and retry.
				p.Sleep(100 * sim.Millisecond)
				continue
			}
			t.Compute(sim.Duration(len(batch)) * perPagePinCost)
			t.FlushCPU()
			os.Plat.BalloonRelease(batch)
		case cur > os.balloonGoal:
			if os.Inj.BalloonRefused() {
				os.Met.Histogram(metrics.HistFaultBackoff).Observe(balloonRetryBackoff)
				p.Sleep(balloonRetryBackoff)
				continue
			}
			n := cur - os.balloonGoal
			if n > balloonBatch {
				n = balloonBatch
			}
			batch := make([]int, 0, n)
			for i := 0; i < n; i++ {
				gfn := os.balloonGFNs[len(os.balloonGFNs)-1]
				os.balloonGFNs = os.balloonGFNs[:len(os.balloonGFNs)-1]
				batch = append(batch, int(gfn))
				os.putFree(gfn)
			}
			t.Compute(sim.Duration(len(batch)) * perPagePinCost)
			t.FlushCPU()
			os.Plat.BalloonReclaim(batch)
		default:
			os.balloonWake.Wait(p)
		}
	}
}
