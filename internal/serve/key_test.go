package serve

import (
	"reflect"
	"regexp"
	"testing"
)

// jobRequestFields lists JobRequest's field names by reflection, so the
// accounting test notices new fields automatically.
func jobRequestFields() []string {
	t := reflect.TypeOf(JobRequest{})
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		out = append(out, t.Field(i).Name)
	}
	return out
}

const testFingerprint = "test:fingerprint"

// baseKeyRequest is the reference point every knob test perturbs.
func baseKeyRequest() JobRequest {
	return JobRequest{ID: "fig3"}
}

// TestKeyCoversEveryOutputKnob enumerates every knob that can influence a
// job's output bytes and asserts each one, perturbed alone, changes the
// cache key. A knob missing from this list (or from Key) would let two
// different runs share one cache entry — the worst failure mode a result
// cache can have. Keep this table in sync with JobRequest: the
// completeness check below fails when a new field is added without a
// decision here.
func TestKeyCoversEveryOutputKnob(t *testing.T) {
	base := Key(baseKeyRequest(), testFingerprint)
	perturbations := map[string]JobRequest{
		"id":         {ID: "fig4"},
		"scenario":   {Scenario: "scenario: x\ntitle: t\nmode: single\nfleet: {memory_mb: 512, actual_mb: 100}\nschemes: [{name: s}]\nworkload: {kind: seqread, file_mb: 10}\n"},
		"seed":       {ID: "fig3", Seed: 7},
		"scale":      {ID: "fig3", Scale: 2.0},
		"quick":      {ID: "fig3", Quick: true},
		"tracering":  {ID: "fig3", TraceRing: 64},
		"faults":     {ID: "fig3", Faults: "disk-read-err:0.01"},
		"swapback":   {ID: "fig3", Swapback: "ssd"},
		"swappolicy": {ID: "fig3", SwapPolicy: "tiered"},
		"auditevery": {ID: "fig3", AuditEvery: 100},
		"maxevents":  {ID: "fig3", MaxEvents: 1 << 20},
	}
	seen := map[string]string{"base": base}
	for name, req := range perturbations {
		k := Key(req, testFingerprint)
		if k == base {
			t.Errorf("perturbing %q did not change the cache key", name)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("perturbations %q and %q collide", name, prev)
			}
		}
		seen[name] = k
	}
	// The code fingerprint is a key input too: a rebuilt binary must miss.
	if k := Key(baseKeyRequest(), "test:other"); k == base {
		t.Error("changing the code fingerprint did not change the cache key")
	}
}

// TestKeyFieldAccounting fails when JobRequest grows a field that neither
// the perturbation table above nor the exclusion list below accounts for.
func TestKeyFieldAccounting(t *testing.T) {
	accounted := map[string]bool{
		// Key inputs (perturbation-tested above):
		"ID": true, "Scenario": true, "Seed": true, "Scale": true,
		"Quick": true, "TraceRing": true, "Faults": true,
		"Swapback": true, "SwapPolicy": true, "AuditEvery": true,
		"MaxEvents": true,
		// Deliberate exclusions (collision-tested below):
		"Parallel": true, "CellTimeoutMS": true,
	}
	for _, f := range jobRequestFields() {
		if !accounted[f] {
			t.Errorf("JobRequest.%s is not accounted for in the cache-key tests: add it to Key (and the perturbation table) or document its exclusion", f)
		}
	}
}

// TestKeyExcludesExecutionHints pins the deliberate collisions: Parallel
// and CellTimeoutMS must NOT enter the key. Parallelism never changes the
// output bytes (the golden and equivalence suites prove it), and
// timed-out runs are never cached, so keying on either would only
// fragment the cache.
func TestKeyExcludesExecutionHints(t *testing.T) {
	base := Key(baseKeyRequest(), testFingerprint)
	for name, req := range map[string]JobRequest{
		"parallel=1":          {ID: "fig3", Parallel: 1},
		"parallel=8":          {ID: "fig3", Parallel: 8},
		"celltimeout_ms=5000": {ID: "fig3", CellTimeoutMS: 5000},
		"both":                {ID: "fig3", Parallel: 4, CellTimeoutMS: 250},
	} {
		if k := Key(req, testFingerprint); k != base {
			t.Errorf("%s changed the cache key: execution hints must not fragment the cache", name)
		}
	}
}

// TestKeyCanonicalization: spellings that mean the same run share a key.
func TestKeyCanonicalization(t *testing.T) {
	pairs := []struct {
		name string
		a, b JobRequest
	}{
		{"fault plan default duration",
			JobRequest{ID: "fig3", Faults: "disk-lat:0.05"},
			JobRequest{ID: "fig3", Faults: "disk-lat:0.05:2ms"}},
		{"default backend spelled out",
			JobRequest{ID: "fig3"},
			JobRequest{ID: "fig3", Swapback: "hdd"}},
		{"default policy spelled out",
			JobRequest{ID: "fig3"},
			JobRequest{ID: "fig3", SwapPolicy: "writeback"}},
		{"default seed spelled out",
			JobRequest{ID: "fig3"},
			JobRequest{ID: "fig3", Seed: 42}},
		{"default scale spelled out",
			JobRequest{ID: "fig3"},
			JobRequest{ID: "fig3", Scale: 1.0}},
	}
	for _, p := range pairs {
		if Key(p.a, testFingerprint) != Key(p.b, testFingerprint) {
			t.Errorf("%s: equal-meaning requests got different keys", p.name)
		}
	}
}

// TestKeyIsHex: keys must be lowercase sha256 hex — the cache uses them
// as file names without escaping.
func TestKeyIsHex(t *testing.T) {
	k := Key(baseKeyRequest(), testFingerprint)
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(k) {
		t.Fatalf("key %q is not 64 lowercase hex chars", k)
	}
}

// TestCodeFingerprint: stable within a process, and either a real
// executable hash or the toolchain fallback.
func TestCodeFingerprint(t *testing.T) {
	fp := CodeFingerprint()
	if fp != CodeFingerprint() {
		t.Fatal("CodeFingerprint is not stable")
	}
	exeForm := regexp.MustCompile(`^exe:[0-9a-f]{32}$`)
	goForm := regexp.MustCompile(`^go:go[0-9.]+`)
	if !exeForm.MatchString(fp) && !goForm.MatchString(fp) {
		t.Fatalf("unexpected fingerprint form %q", fp)
	}
}
