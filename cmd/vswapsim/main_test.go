package main

import (
	"runtime"
	"testing"
)

func TestParseArgsTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(t *testing.T, c cliConfig)
	}{
		{"defaults", nil, false, func(t *testing.T, c cliConfig) {
			if c.parallel != runtime.GOMAXPROCS(0) {
				t.Fatalf("default -parallel = %d, want GOMAXPROCS (%d)", c.parallel, runtime.GOMAXPROCS(0))
			}
			if c.scale != 1.0 || c.seed != 42 || c.quick || c.list || c.run != "" {
				t.Fatalf("unexpected defaults: %+v", c)
			}
		}},
		{"parallel explicit", []string{"-run", "fig3", "-parallel", "4"}, false, func(t *testing.T, c cliConfig) {
			if c.parallel != 4 || c.run != "fig3" {
				t.Fatalf("parsed %+v", c)
			}
		}},
		{"serial", []string{"-parallel", "1"}, false, func(t *testing.T, c cliConfig) {
			if c.parallel != 1 {
				t.Fatalf("parsed %+v", c)
			}
		}},
		{"parallel zero rejected", []string{"-parallel", "0"}, true, nil},
		{"parallel negative rejected", []string{"-parallel", "-2"}, true, nil},
		{"parallel non-numeric rejected", []string{"-parallel", "lots"}, true, nil},
		{"scale zero rejected", []string{"-scale", "0"}, true, nil},
		{"scale too large rejected", []string{"-scale", "17"}, true, nil},
		{"unknown flag rejected", []string{"-frobnicate"}, true, nil},
		{"all flags", []string{"-run", "fig11", "-seed", "7", "-scale", "0.5", "-quick", "-parallel", "2"}, false,
			func(t *testing.T, c cliConfig) {
				want := cliConfig{run: "fig11", seed: 7, scale: 0.5, quick: true, parallel: 2}
				if c != want {
					t.Fatalf("parsed %+v, want %+v", c, want)
				}
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := parseArgs(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parseArgs(%v) succeeded with %+v, want error", c.args, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%v): %v", c.args, err)
			}
			if c.check != nil {
				c.check(t, got)
			}
		})
	}
}

func TestParseArgsFaults(t *testing.T) {
	c, err := parseArgs([]string{"-run", "fig3", "-faults", "disk-read-err:0.01;disk-lat:0.05", "-auditevery", "512"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.faults.String(); got != "disk-read-err:0.01;disk-lat:0.05:2ms" {
		t.Fatalf("parsed plan %q", got)
	}
	if c.auditEvery != 512 {
		t.Fatalf("auditEvery = %d", c.auditEvery)
	}

	if c, err := parseArgs(nil); err != nil || !c.faults.Empty() {
		t.Fatalf("default faults: %+v, %v", c.faults, err)
	}
	for _, bad := range [][]string{
		{"-faults", "bogus:0.5"},
		{"-faults", "disk-read-err:2"},
		{"-auditevery", "-1"},
	} {
		if _, err := parseArgs(bad); err == nil {
			t.Errorf("parseArgs(%v) succeeded, want error", bad)
		}
	}
}
