package experiment

import (
	"bytes"
	"testing"

	"vswapsim/internal/scenario"
)

// TestFleetParallelEquivalence proves the cloud-density entries are safe
// under the parallel executor: both the hand-coded fleetN registry entry
// and its YAML twin must produce byte-identical JSON reports serially and
// at -parallel 4. (TestScenarioEquivalence covers the paper figures; the
// fleet entries are not mirrors of each other — their seed ids differ — so
// each gets its own serial-vs-parallel check.)
func TestFleetParallelEquivalence(t *testing.T) {
	goExp, err := ByID("fleetN")
	if err != nil {
		t.Fatal(err)
	}
	yamlExp := FromScenario(loadScenario(t, "fleet"))
	for _, e := range []Experiment{goExp, yamlExp} {
		t.Run(e.ID, func(t *testing.T) {
			o := goldenOpts()
			want := scenarioJSON(t, e, o)
			o.Parallel = 4
			got := scenarioJSON(t, e, o)
			if !bytes.Equal(got, want) {
				t.Errorf("parallel run diverges from serial for %s (%d vs %d bytes)",
					e.ID, len(got), len(want))
			}
		})
	}
}

// TestFleetScenarioMirrorsRegistry pins scenarios/fleet.yaml to the
// hand-coded fleetN configuration: same guest sizing, host, schemes, and
// workload. The two run different seed streams (the scenario name keys the
// derivation and must match its filename), so their outputs legitimately
// differ; this structural check is what keeps them the same experiment.
func TestFleetScenarioMirrorsRegistry(t *testing.T) {
	sc := loadScenario(t, "fleet")
	dc := fleetDynCfg()
	if sc.Mode != scenario.ModeDynamic {
		t.Fatalf("fleet scenario mode %q, want dynamic", sc.Mode)
	}
	checks := []struct {
		name      string
		got, want int
	}{
		{"memory_mb", sc.Fleet.MemoryMB, dc.memMB},
		{"host_mb", sc.Fleet.HostMB, dc.hostMB},
		{"vcpus", sc.Fleet.VCPUs, dc.vcpus},
		{"stagger_sec", sc.Fleet.StaggerSec, dc.staggerSec},
		{"disk_mb", sc.Fleet.DiskMB, dc.diskMB},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("fleet.yaml %s = %d, registry uses %d", c.name, c.got, c.want)
		}
	}
	if len(sc.Schemes) != len(fleetSchemes) {
		t.Fatalf("fleet.yaml has %d schemes, registry %d", len(sc.Schemes), len(fleetSchemes))
	}
	for i, ref := range sc.Schemes {
		if ref.Name != fleetSchemes[i].String() {
			t.Errorf("scheme[%d] = %q, registry %q", i, ref.Name, fleetSchemes[i])
		}
	}
	if sc.Workload.Kind != scenario.KindMetis ||
		sc.Workload.InputMB != 48 || sc.Workload.TableMB != 64 {
		t.Errorf("fleet.yaml workload %s input=%d table=%d, registry uses metis 48/64",
			sc.Workload.Kind, sc.Workload.InputMB, sc.Workload.TableMB)
	}
	// The entry's reason to exist: cloud-node density, not the paper's ten.
	for _, counts := range [][]int{sc.Fleet.Counts, sc.Fleet.QuickCounts} {
		for _, n := range counts {
			if n < 100 {
				t.Errorf("fleet count %d below the 100-guest density floor", n)
			}
		}
	}
}

// BenchmarkRegistry times each experiment end to end at the golden
// configuration (quick, 1/8 scale, serial) — the same cells benchsim and
// BENCH_sim.json measure. BenchmarkRegistry/fleetN is the large-fleet
// stress benchmark:
//
//	go test ./internal/experiment -run xxx -bench Registry/fleetN
func BenchmarkRegistry(b *testing.B) {
	for _, e := range Registry {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resetSweepCaches()
				e.Run(goldenOpts())
			}
		})
	}
}
