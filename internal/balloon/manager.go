// Package balloon implements a MOM-like balloon manager (paper §5.2): a
// host daemon that periodically samples host and guest memory statistics
// and adjusts each guest's balloon target. Its value — and its latency
// under changing load — are what Figs. 4 and 14 measure.
package balloon

import (
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// Config tunes the manager's control loop.
type Config struct {
	// Interval between samples (MOM default: 1 s).
	Interval sim.Duration
	// PressureThreshold: below this fraction of free host memory the
	// manager starts inflating balloons.
	PressureThreshold float64
	// ReliefThreshold: above this fraction it deflates.
	ReliefThreshold float64
	// GuestReserve is the fraction of its memory a guest always keeps.
	GuestReserve float64
	// StepFraction bounds how much of a guest's memory the target may
	// move per interval — the source of ballooning's sluggishness.
	StepFraction float64
}

// DefaultConfig mirrors MOM's shipped policy knobs.
func DefaultConfig() Config {
	return Config{
		Interval:          sim.Second,
		PressureThreshold: 0.20,
		ReliefThreshold:   0.30,
		GuestReserve:      0.05,
		StepFraction:      0.05,
	}
}

// Manager is the balloon controller for one machine.
type Manager struct {
	M    *hyper.Machine
	Cfg  Config
	stop bool
}

// New creates a manager; call Start to launch its control loop.
func New(m *hyper.Machine, cfg Config) *Manager {
	d := DefaultConfig()
	if cfg.Interval == 0 {
		cfg.Interval = d.Interval
	}
	if cfg.PressureThreshold == 0 {
		cfg.PressureThreshold = d.PressureThreshold
	}
	if cfg.ReliefThreshold == 0 {
		cfg.ReliefThreshold = d.ReliefThreshold
	}
	if cfg.GuestReserve == 0 {
		cfg.GuestReserve = d.GuestReserve
	}
	if cfg.StepFraction == 0 {
		cfg.StepFraction = d.StepFraction
	}
	return &Manager{M: m, Cfg: cfg}
}

// Start launches the control loop as a simulated daemon.
func (mgr *Manager) Start() {
	mgr.M.Env.Go("mom", func(p *sim.Proc) {
		for !mgr.stop {
			mgr.tick()
			p.Sleep(mgr.Cfg.Interval)
		}
	})
}

// Stop ends the control loop at its next tick.
func (mgr *Manager) Stop() { mgr.stop = true }

// tick is one control decision: sample host pressure, then nudge each
// guest's balloon target.
func (mgr *Manager) tick() {
	pool := mgr.M.Pool
	freeRatio := float64(pool.Free()) / float64(pool.Capacity())
	for _, vm := range mgr.M.VMs {
		total := vm.Cfg.MemPages
		step := int(float64(total) * mgr.Cfg.StepFraction)
		reserve := int(float64(total) * mgr.Cfg.GuestReserve)
		cur := vm.OS.BalloonTarget()
		visible := total - vm.OS.BalloonPages()
		guestFreeFrac := 1.0
		if visible > 0 {
			guestFreeFrac = float64(vm.OS.FreePages()) / float64(visible)
		}
		switch {
		case guestFreeFrac < 0.10 && cur > 0:
			// The guest itself is squeezed: give memory back first (MOM
			// balances guest pressure against host pressure).
			shrink := step
			if shrink > cur {
				shrink = cur
			}
			vm.OS.SetBalloonTarget(cur - shrink)
		case freeRatio < mgr.Cfg.PressureThreshold && guestFreeFrac > 0.20:
			// Take the guest's unused memory, leaving a small reserve.
			idle := vm.OS.FreePages() - reserve
			grow := idle
			if grow > step {
				grow = step
			}
			if grow > 0 {
				vm.OS.SetBalloonTarget(cur + grow)
			}
		case freeRatio > mgr.Cfg.ReliefThreshold && cur > 0:
			// Give memory back gradually.
			shrink := step
			if shrink > cur {
				shrink = cur
			}
			vm.OS.SetBalloonTarget(cur - shrink)
		}
	}
}
