// Package workload provides page-granular generators reproducing the
// memory and I/O footprints of the paper's benchmarks: Sysbench sequential
// file reads, an allocate-and-touch microbenchmark, pbzip2, Kernbench, the
// DaCapo Eclipse workload, and the Metis MapReduce word-count.
//
// Each generator runs as guest threads and reports a Result through a Job
// handle that experiment code waits on.
package workload

import (
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// Result summarizes one workload execution.
type Result struct {
	Name   string
	VM     string
	Start  sim.Time
	End    sim.Time
	Killed bool
	// Iterations holds per-iteration runtimes for iterative workloads
	// (Fig. 9's Sysbench loop).
	Iterations []sim.Duration
}

// Runtime is the wall-clock (virtual) duration of the run.
func (r Result) Runtime() sim.Duration { return r.End.Sub(r.Start) }

// Job is a handle on an in-flight workload.
type Job struct {
	res      Result
	finished bool
	done     *sim.Signal
}

// Wait blocks p until the workload finishes and returns its result.
func (j *Job) Wait(p *sim.Proc) Result {
	for !j.finished {
		j.done.Wait(p)
	}
	return j.res
}

// Finished reports whether the workload completed.
func (j *Job) Finished() bool { return j.finished }

// Result returns the result; valid only after Finished.
func (j *Job) Result() Result { return j.res }

// launch starts body as a guest thread of vm and returns its Job. body
// receives the job to record iteration data; Start/End/Killed are filled
// automatically (Killed from the attached process, if any).
func launch(vm *hyper.VM, name string, pr *guest.Process, body func(t *guest.Thread, j *Job)) *Job {
	j := &Job{done: sim.NewSignal(vm.M.Env)}
	j.res.Name = name
	j.res.VM = vm.Cfg.Name
	vm.OS.Go(name, pr, func(t *guest.Thread) {
		j.res.Start = t.P.Now()
		body(t, j)
		t.FlushCPU()
		j.res.End = t.P.Now()
		if pr != nil && pr.Killed {
			j.res.Killed = true
		}
		j.finished = true
		j.done.Broadcast()
	})
	return j
}

// barrier coordinates multi-threaded workloads: the parent waits until n
// children signal completion.
type barrier struct {
	remaining int
	done      *sim.Signal
}

func newBarrier(env *sim.Env, n int) *barrier {
	return &barrier{remaining: n, done: sim.NewSignal(env)}
}

func (b *barrier) arrive() {
	b.remaining--
	if b.remaining == 0 {
		b.done.Broadcast()
	}
}

func (b *barrier) wait(p *sim.Proc) {
	for b.remaining > 0 {
		b.done.Wait(p)
	}
}

// Warmup runs a throwaway process that touches (then frees) all but
// reservePages of the guest's free memory. A long-running guest naturally
// reaches this state: every free frame has prior content the host may have
// reclaimed — which is what makes uncooperative swapping visible from the
// first benchmark iteration.
func Warmup(vm *hyper.VM, reservePages int) *Job {
	pr := vm.OS.NewProcess("warmup")
	return launch(vm, "warmup", pr, func(t *guest.Thread, j *Job) {
		n := vm.OS.FreePages() - reservePages
		if n <= 0 {
			return
		}
		pr.Reserve(n)
		for i := 0; i < n && !t.ProcKilled(); i++ {
			t.TouchAnon(pr, i, true)
		}
		pr.Exit()
	})
}
