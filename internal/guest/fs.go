package guest

import "fmt"

// VFile is a file on the guest's virtual disk. The tiny extent filesystem
// lays files out contiguously (like a freshly formatted ext4 writing large
// files), which is what gives the disk image the sequential structure the
// Mapper's prefetching benefits from.
type VFile struct {
	Name   string
	Start  int64 // first vdisk block
	Blocks int64
}

// Block translates a file-relative block to a vdisk block.
func (f *VFile) Block(rel int64) int64 {
	if rel < 0 || rel >= f.Blocks {
		panic(fmt.Sprintf("guest: block %d outside file %q", rel, f.Name))
	}
	return f.Start + rel
}

// SizeBytes reports the file size.
func (f *VFile) SizeBytes() int64 { return f.Blocks * pageSizeBytes }

// FileSystem is the guest's extent allocator over its virtual disk. The
// last SwapBlocks blocks form the guest swap partition.
type FileSystem struct {
	totalBlocks int64
	swapBlocks  int64
	next        int64
	files       map[string]*VFile
}

// NewFileSystem creates a filesystem over a virtual disk of totalBlocks,
// reserving swapBlocks at the end as the guest swap partition.
func NewFileSystem(totalBlocks, swapBlocks int64) *FileSystem {
	if swapBlocks >= totalBlocks {
		panic("guest: swap larger than disk")
	}
	return &FileSystem{
		totalBlocks: totalBlocks,
		swapBlocks:  swapBlocks,
		files:       make(map[string]*VFile),
	}
}

// Create allocates a contiguous file of the given size (rounded up to
// whole blocks).
func (fs *FileSystem) Create(name string, sizeBytes int64) *VFile {
	if _, dup := fs.files[name]; dup {
		panic(fmt.Sprintf("guest: file %q exists", name))
	}
	blocks := (sizeBytes + pageSizeBytes - 1) / pageSizeBytes
	if fs.next+blocks > fs.totalBlocks-fs.swapBlocks {
		panic(fmt.Sprintf("guest: disk full creating %q", name))
	}
	f := &VFile{Name: name, Start: fs.next, Blocks: blocks}
	fs.next += blocks
	fs.files[name] = f
	return f
}

// Lookup returns a file by name.
func (fs *FileSystem) Lookup(name string) (*VFile, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// TotalBlocks reports the virtual disk capacity in blocks.
func (fs *FileSystem) TotalBlocks() int64 { return fs.totalBlocks }

// SwapStart reports the first block of the guest swap partition.
func (fs *FileSystem) SwapStart() int64 { return fs.totalBlocks - fs.swapBlocks }

// SwapBlocks reports the guest swap partition size in blocks.
func (fs *FileSystem) SwapBlocks() int64 { return fs.swapBlocks }

// swapOwner identifies the process page stored in a slot, enabling guest
// swap readahead.
type swapOwner struct {
	pr  *Process
	idx int
}

// guestSwap allocates slots in the guest swap partition, lowest-first.
type guestSwap struct {
	start int64 // vdisk block of slot 0
	free  []bool
	hint  int64
	inUse int
	// owner is a dense per-slot table (pr == nil marks an unowned slot):
	// swap readahead probes consecutive slots on every guest swap-in, so
	// lookups must be indexed loads rather than map probes.
	owner []swapOwner
}

func newGuestSwap(start, blocks int64) *guestSwap {
	g := &guestSwap{
		start: start,
		free:  make([]bool, blocks),
		owner: make([]swapOwner, blocks),
	}
	for i := range g.free {
		g.free[i] = true
	}
	return g
}

func (g *guestSwap) alloc() int64 {
	for i := g.hint; i < int64(len(g.free)); i++ {
		if g.free[i] {
			g.free[i] = false
			g.hint = i + 1
			g.inUse++
			return i
		}
	}
	return -1
}

func (g *guestSwap) release(slot int64) {
	if slot < 0 || slot >= int64(len(g.free)) || g.free[slot] {
		panic(fmt.Sprintf("guest: freeing bad swap slot %d", slot))
	}
	g.free[slot] = true
	if slot < g.hint {
		g.hint = slot
	}
	g.inUse--
	g.owner[slot] = swapOwner{}
}

// setOwner records which process page a slot holds.
func (g *guestSwap) setOwner(slot int64, pr *Process, idx int) {
	g.owner[slot] = swapOwner{pr: pr, idx: idx}
}

// ownerAt returns the owner of slot (pr == nil when unowned or out of
// range).
func (g *guestSwap) ownerAt(slot int64) swapOwner {
	if slot < 0 || slot >= int64(len(g.owner)) {
		return swapOwner{}
	}
	return g.owner[slot]
}

// block translates a slot to its vdisk block.
func (g *guestSwap) block(slot int64) int64 { return g.start + slot }

func (g *guestSwap) full() bool { return g.inUse == len(g.free) }
