package hyper

import (
	"fmt"

	"vswapsim/internal/disk"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// This file implements guest.Platform: the paths by which guest activity
// reaches the host — memory accesses (EPT) and virtio disk emulation.

// access describes one trapped guest memory access for the fault path.
type access struct {
	write bool
	off   int
	n     int
	rep   bool // full-page string instruction
	full  bool // guaranteed whole-page overwrite
}

// TouchPage is an ordinary guest read or write of one page.
func (vm *VM) TouchPage(p *sim.Proc, gfn int, write bool) {
	pg := vm.page(gfn)
	if pg.EPT {
		if write && pg.State == hostmm.ResidentFile {
			// Named pages are mapped read-only (private COW).
			vm.M.MM.COWBreak(p, pg, hostmm.GuestCtx)
			return
		}
		vm.M.MM.Touch(pg)
		if write {
			vm.markWrite(pg)
		}
		return
	}
	// Model a partial write as a mid-page span so the Preventer correctly
	// declines to emulate it (old content is genuinely needed).
	vm.eptFault(p, pg, access{write: write, off: mem.PageSize / 2, n: 64})
}

// OverwritePage is a whole-page overwrite that ignores old content.
func (vm *VM) OverwritePage(p *sim.Proc, gfn int, rep bool) {
	pg := vm.page(gfn)
	if pg.EPT {
		if pg.State == hostmm.ResidentFile {
			vm.M.MM.COWBreak(p, pg, hostmm.GuestCtx)
			return
		}
		vm.M.MM.Touch(pg)
		vm.markWrite(pg)
		return
	}
	vm.eptFault(p, pg, access{write: true, off: 0, n: mem.PageSize, rep: rep, full: true})
}

// WriteSpan writes n bytes at off within the page.
func (vm *VM) WriteSpan(p *sim.Proc, gfn int, off, n int) {
	pg := vm.page(gfn)
	if pg.EPT {
		if pg.State == hostmm.ResidentFile {
			vm.M.MM.COWBreak(p, pg, hostmm.GuestCtx)
			return
		}
		vm.M.MM.Touch(pg)
		vm.markWrite(pg)
		return
	}
	vm.eptFault(p, pg, access{write: true, off: off, n: n})
}

// markWrite updates host dirty tracking (when hardware supports it) and
// simulator ground truth on a mapped write.
func (vm *VM) markWrite(pg *hostmm.Page) {
	if vm.M.MM.Cfg.EPTDirtyBits {
		vm.M.MM.MarkWritten(pg)
	} else {
		pg.TruthClean = false
	}
}

// eptFault resolves a guest access to a non-present GPA⇒HPA entry. It
// loops because concurrent faults (multiple guest threads) and reclaim can
// change a page's state across the blocking points: each pass re-dispatches
// on the state it observes.
func (vm *VM) eptFault(p *sim.Proc, pg *hostmm.Page, a access) {
	if vm.faultLock != nil {
		vm.faultLock.Acquire(p)
		defer vm.faultLock.Release()
	}
	mm := vm.M.MM
	falseReadCounted := false
	for tries := 0; ; tries++ {
		if tries > 64 {
			panic(fmt.Sprintf("hyper: fault livelock on gfn %d (%s)", pg.ID, pg.State))
		}
		switch pg.State {
		case hostmm.Untouched, hostmm.Ballooned:
			mm.FirstTouch(p, pg, hostmm.GuestCtx)
			if !pg.EPT {
				continue // lost a race; resolve against the new state
			}

		case hostmm.ResidentAnon, hostmm.ResidentFile:
			mm.MinorMap(p, pg, hostmm.GuestCtx)
			if a.write && pg.State == hostmm.ResidentFile {
				mm.COWBreak(p, pg, hostmm.GuestCtx)
			}

		case hostmm.Emulated:
			vm.Preventer.OnAccess(p, pg, a.write, a.off, a.n, a.rep)
			if a.write && pg.State != hostmm.Emulated {
				vm.markWrite(pg)
			}
			return

		case hostmm.SwappedOut, hostmm.FileNonResident:
			if a.write && vm.Preventer != nil &&
				vm.Preventer.HandleWriteFault(p, pg, a.off, a.n, a.rep) {
				return
			}
			if a.write && a.full && !falseReadCounted {
				// The old content is about to be wholly overwritten, yet
				// the host is going to read it: a false swap read.
				vm.M.Met.Inc(metrics.FalseSwapReads)
				falseReadCounted = true
			}
			vm.touchText(p, vm.Cfg.TextTouchesPerFault)
			if pg.State == hostmm.SwappedOut {
				mm.SwapIn(p, pg, hostmm.GuestCtx)
			} else if pg.State == hostmm.FileNonResident {
				mm.FileFaultIn(p, pg, hostmm.GuestCtx)
			}
			continue // map (or re-handle) on the next pass

		default:
			panic(fmt.Sprintf("hyper: fault on %s page", pg.State))
		}
		break
	}
	if a.write {
		vm.markWrite(pg)
	}
}

// virtioMaxBlocks bounds one virtio request (1 MiB), like real segment
// limits; larger guest requests are split.
const virtioMaxBlocks = 256

// DiskRead emulates a virtio read request: len(gfns) contiguous image
// blocks starting at start, DMA'd into the given guest frames.
func (vm *VM) DiskRead(p *sim.Proc, gfns []int, start int64) {
	for len(gfns) > virtioMaxBlocks {
		vm.DiskRead(p, gfns[:virtioMaxBlocks], start)
		gfns = gfns[virtioMaxBlocks:]
		start += virtioMaxBlocks
	}
	if len(gfns) == 0 {
		return
	}
	vm.exit(p)
	mm := vm.M.MM
	met := vm.M.Met

	pages := vm.getPageBuf()
	defer func() { vm.putPageBuf(pages) }()
	for _, g := range gfns {
		pages = append(pages, vm.page(g))
	}

	useMapper := vm.Mapper != nil && !vm.Cfg.UnalignedGuestIO
	if useMapper && vm.M.Inj.MapperPoisoned() {
		// Injected swap-cache poisoning: mapping establishment cannot be
		// trusted for this request, so degrade it to the baseline copying
		// flow below (plain swap semantics).
		useMapper = false
	}
	if useMapper {
		// VSwapper flow: readahead the blocks (one contiguous physical
		// read), then mmap them over the targets. Old page content is
		// superseded without being faulted in.
		for _, pg := range pages {
			if pg.State == hostmm.Emulated {
				// Content about to be replaced wholesale: remap, no read.
				vm.Preventer.ForceFinalize(p, pg, false)
			}
		}
		done := vm.M.Dev.Submit(disk.Read, vm.imagePhys(start), len(gfns))
		met.Add(metrics.ImageReadSectors, int64(len(gfns))*disk.SectorsPerBlock)
		vm.M.Dev.WaitFor(p, done)
		vm.Mapper.OnDiskRead(p, pages, start)
		return
	}

	// Baseline flow: QEMU preadv faults reclaimed targets back in (stale
	// swap reads) before the physical read lands.
	for _, pg := range pages {
		vm.ensureResidentHost(p, pg, true)
		mm.Pin(pg)
	}
	done := vm.M.Dev.Submit(disk.Read, vm.imagePhys(start), len(gfns))
	met.Add(metrics.ImageReadSectors, int64(len(gfns))*disk.SectorsPerBlock)
	vm.M.Dev.WaitFor(p, done)
	for i, pg := range pages {
		// DMA wrote the frame through QEMU's mapping: host knows it is
		// dirty; ground truth says it now equals the block.
		pg.Dirty = true
		pg.TruthBlock = hostmm.BlockRef{File: vm.Image, Block: start + int64(i)}
		pg.TruthClean = true
		mm.Touch(pg)
		mm.Unpin(pg)
	}
}

// ensureResidentHost brings a page resident for QEMU-side access, looping
// until the state sticks. stale marks faults whose result is about to be
// overwritten by DMA ("stale swap reads"); it also tells the Preventer
// whether buffered content may be dropped.
func (vm *VM) ensureResidentHost(p *sim.Proc, pg *hostmm.Page, stale bool) {
	dmaOverwrites := stale
	mm := vm.M.MM
	for tries := 0; ; tries++ {
		if tries > 64 {
			panic(fmt.Sprintf("hyper: host access livelock on gfn %d (%s)", pg.ID, pg.State))
		}
		switch pg.State {
		case hostmm.ResidentAnon, hostmm.ResidentFile:
			return
		case hostmm.SwappedOut:
			if stale {
				vm.M.Met.Inc(metrics.StaleSwapReads)
				stale = false // count once per page
			}
			vm.touchText(p, vm.Cfg.TextTouchesPerFault)
			mm.SwapIn(p, pg, hostmm.HostCtx)
		case hostmm.FileNonResident:
			if stale {
				vm.M.Met.Inc(metrics.StaleSwapReads)
				stale = false
			}
			vm.touchText(p, vm.Cfg.TextTouchesPerFault)
			mm.FileFaultIn(p, pg, hostmm.HostCtx)
		case hostmm.Untouched, hostmm.Ballooned:
			mm.FirstTouch(p, pg, hostmm.HostCtx)
		case hostmm.Emulated:
			// DMA read targets supersede buffered content (drop); DMA
			// write sources need the full page content (merge).
			vm.Preventer.ForceFinalize(p, pg, !dmaOverwrites)
		}
	}
}

// DiskWrite emulates a virtio write request: len(gfns) guest frames are
// written to contiguous image blocks starting at start.
func (vm *VM) DiskWrite(p *sim.Proc, gfns []int, start int64) {
	for len(gfns) > virtioMaxBlocks {
		vm.DiskWrite(p, gfns[:virtioMaxBlocks], start)
		gfns = gfns[virtioMaxBlocks:]
		start += virtioMaxBlocks
	}
	if len(gfns) == 0 {
		return
	}
	vm.exit(p)
	mm := vm.M.MM
	met := vm.M.Met

	pages := vm.getPageBuf()
	defer func() { vm.putPageBuf(pages) }()
	for _, g := range gfns {
		pages = append(pages, vm.page(g))
	}

	// QEMU must read the source frames: fault any the host reclaimed
	// (legitimate reads — the data is truly needed).
	for _, pg := range pages {
		vm.ensureResidentHost(p, pg, false)
		mm.Pin(pg)
	}

	if vm.Mapper != nil && !vm.Cfg.UnalignedGuestIO {
		vm.Mapper.BeforeDiskWrite(p, start, len(gfns))
	}
	done := vm.M.Dev.Submit(disk.Write, vm.imagePhys(start), len(gfns))
	met.Add(metrics.ImageWriteSectors, int64(len(gfns))*disk.SectorsPerBlock)
	vm.M.Dev.WaitFor(p, done) // writethrough caching: completion after durability
	for i, pg := range pages {
		pg.TruthBlock = hostmm.BlockRef{File: vm.Image, Block: start + int64(i)}
		pg.TruthClean = true
		mm.Unpin(pg)
	}
	if vm.Mapper != nil && !vm.Cfg.UnalignedGuestIO {
		vm.Mapper.AfterDiskWrite(p, pages, start)
	}
}

// BalloonRelease is the inflate hypercall: the guest donated these frames.
func (vm *VM) BalloonRelease(gfns []int) {
	for _, g := range gfns {
		pg := vm.page(g)
		if pg.State == hostmm.Emulated {
			// Rare: a recycled GFN still under emulation. Its content is
			// irrelevant now; drop the buffer synchronously via an
			// immediate remap on a transient process.
			vm.M.Env.Go("balloon-finalize", func(p *sim.Proc) {
				if pg.State == hostmm.Emulated {
					vm.Preventer.ForceFinalize(p, pg, false)
				}
				vm.M.MM.BalloonTake(pg)
			})
			continue
		}
		vm.M.MM.BalloonTake(pg)
	}
}

// BalloonReclaim is the deflate hypercall.
func (vm *VM) BalloonReclaim(gfns []int) {
	for _, g := range gfns {
		pg := vm.page(g)
		if pg.State == hostmm.Ballooned {
			vm.M.MM.BalloonReturn(pg)
		}
	}
}
