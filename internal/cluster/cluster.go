// Package cluster models a multi-host cluster on the deterministic
// simulation substrate: a scheduler packs guest specs onto N overcommitted
// hosts (each host one hyper.Machine, all sharing a single sim.Env so a
// cluster cell stays byte-reproducible), a pressure monitor samples the
// per-host swap signals the kube-soomkiller harness scrapes (pswpin/
// pswpout rates, swapped bytes vs. host memory), and a remediation policy
// reacts: MOM-style re-ballooning, live migration of the hottest guest to
// the coldest host, or soomkiller-style kills with deterministic victim
// selection. Fleet-wide per-unit workload latency lands in one histogram,
// so policies compare on p95/p99 tails — the ROADMAP's "millions of
// users" framing of VSwapper's value.
package cluster

import (
	"fmt"

	"vswapsim/internal/balloon"
	"vswapsim/internal/fault"
	"vswapsim/internal/fault/audit"
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
)

// Packing selects the admission-time placement policy.
type Packing int

const (
	// FirstFit places each guest on the first host with commit headroom.
	FirstFit Packing = iota
	// WorstFit places on the host with the lowest commit ratio.
	WorstFit
	// BalancedPressure places on the host with the lowest (pressure,
	// commit ratio) pair; at admission (pressure zero) it degenerates to
	// worst-fit, but re-admissions after migration see live pressure.
	BalancedPressure
)

func (p Packing) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return "balanced-pressure"
	}
}

// PackingNames maps canonical spelling to policy; the scenario parser and
// CLI validation share it.
var PackingNames = map[string]Packing{
	"first-fit":         FirstFit,
	"worst-fit":         WorstFit,
	"balanced-pressure": BalancedPressure,
}

// Remediation selects what the monitor does about a pressured host.
type Remediation int

const (
	// RemedyNone only observes (the control arm).
	RemedyNone Remediation = iota
	// RemedyReballoon runs the MOM balloon controller on every host and
	// counts its pressure interventions.
	RemedyReballoon
	// RemedyMigrate live-migrates the hottest guest of a pressured host to
	// the coldest host with headroom, charging real transfer time.
	RemedyMigrate
	// RemedyKill kills the pressured host's largest-resident guest,
	// soomkiller-style.
	RemedyKill
)

func (r Remediation) String() string {
	switch r {
	case RemedyNone:
		return "none"
	case RemedyReballoon:
		return "reballoon"
	case RemedyMigrate:
		return "migrate"
	default:
		return "kill"
	}
}

// RemediationNames maps canonical spelling to policy.
var RemediationNames = map[string]Remediation{
	"none":      RemedyNone,
	"reballoon": RemedyReballoon,
	"migrate":   RemedyMigrate,
	"kill":      RemedyKill,
}

// AllRemediations returns the policies in comparison order.
func AllRemediations() []Remediation {
	return []Remediation{RemedyNone, RemedyReballoon, RemedyMigrate, RemedyKill}
}

// HostSpec sizes one host.
type HostSpec struct {
	Name     string
	MemPages int
}

// Config assembles one cluster cell. All sizes are in pages and simulated
// durations — the experiment layer applies its MB scaling before building
// one. The zero value is not valid; Guests, GuestMemPages, Hosts and Env
// are required.
type Config struct {
	// Seed drives every derived stream (per-host machines, per-guest
	// working sets); the cell is a pure function of it.
	Seed uint64
	// Env is the shared event loop all hosts run on. Required; the owner
	// sets its budget.
	Env *sim.Env
	// Hosts sizes the fleet.
	Hosts []HostSpec
	// Guests is how many guest specs the scheduler admits.
	Guests int
	// GuestMemPages is each guest's visible memory.
	GuestMemPages int
	// WSMinPct/WSMaxPct bound the per-guest working-set size as a percent
	// of GuestMemPages; each guest draws its own seeded value in the range
	// (heterogeneity is what creates migratable imbalance). Defaults 30/60.
	WSMinPct, WSMaxPct int
	// Units is how many workload units each guest completes (default 6).
	Units int
	// PhaseUnits, when positive, makes each guest's demand phased like the
	// paper's MapReduce guests: the guest touches its full working set for
	// PhaseUnits units, then a quarter of it for 2×PhaseUnits units, on a
	// seeded phase offset. Hosts whose guests' hot phases collide build
	// real, transient pressure that migration can relieve; zero keeps the
	// steady working set.
	PhaseUnits int
	// UnitCompute is the pure-CPU cost of one unit (default 20ms).
	UnitCompute sim.Duration
	// Stagger separates guest admissions (default 250ms).
	Stagger sim.Duration
	// GuestDiskBlocks sizes each guest's disk image (default 16384 blocks
	// = 64 MB); migrations consume a fresh image region per re-homing.
	GuestDiskBlocks int64

	// Packing is the admission placement policy.
	Packing Packing
	// Remediation is what the monitor does under pressure.
	Remediation Remediation
	// MaxCommitFactor bounds per-host commit (sum of placed guests'
	// memory) as a multiple of host memory (default 2.0). Admission and
	// migration never exceed it; the invariant checker enforces that.
	MaxCommitFactor float64
	// SampleInterval is the monitor period (default 1s).
	SampleInterval sim.Duration
	// PressureThreshold in (0, 1]: the pressure score above which the
	// monitor remediates (default 0.3).
	PressureThreshold float64
	// Cooldown is the minimum gap between remediations of one host
	// (default 4s).
	Cooldown sim.Duration

	// Scheme knobs, mirroring the experiment layer's schemes.
	Mapper    bool
	Preventer bool
	Balloon   bool

	// Host plumbing shared with single-machine runs.
	Swapback   swapback.Kind
	SwapPolicy swapback.Policy
	Faults     fault.Plan

	// AuditEvery attaches the machine-level invariant auditor (one
	// audit.Group over all hosts) every N shared-loop events; 0 disables.
	AuditEvery int
	// Spec is the human-readable replay spec embedded in invariant-
	// violation panics alongside the seed.
	Spec string
}

func (cfg Config) withDefaults() Config {
	if cfg.WSMinPct == 0 {
		cfg.WSMinPct = 30
	}
	if cfg.WSMaxPct == 0 {
		cfg.WSMaxPct = 60
	}
	if cfg.Units == 0 {
		cfg.Units = 6
	}
	if cfg.UnitCompute == 0 {
		cfg.UnitCompute = 20 * sim.Millisecond
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = 250 * sim.Millisecond
	}
	if cfg.GuestDiskBlocks == 0 {
		cfg.GuestDiskBlocks = 16384
	}
	if cfg.MaxCommitFactor == 0 {
		cfg.MaxCommitFactor = 2.0
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = sim.Second
	}
	if cfg.PressureThreshold == 0 {
		cfg.PressureThreshold = 0.3
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 4 * sim.Second
	}
	return cfg
}

// Host is one machine plus the scheduler's view of it.
type Host struct {
	Idx  int
	Name string
	M    *hyper.Machine
	// MemPages mirrors the machine's physical size; bound is the commit
	// ceiling (MaxCommitFactor × MemPages).
	MemPages int
	bound    int
	// commit is the pages of guest memory assigned to this host, counting
	// in-flight migration reservations. Never exceeds bound.
	commit int
	// Monitor state: last swap counter readings and the derived score.
	lastIn, lastOut int64
	pressure        float64
	lastRemedy      sim.Time
	remedied        bool
	mom             *balloon.Manager
}

// Commit reports the pages of guest memory currently assigned (including
// in-flight migration reservations).
func (h *Host) Commit() int { return h.commit }

// CommitBound reports the commit ceiling.
func (h *Host) CommitBound() int { return h.bound }

// Pressure reports the monitor's latest score for the host.
func (h *Host) Pressure() float64 { return h.pressure }

// Guest is one admitted guest spec and its current residence.
type Guest struct {
	Idx      int
	Name     string
	MemPages int
	// WSPages is the seeded per-guest hot working-set size; in phased mode
	// the guest touches WSPages/4 during its cold phases.
	WSPages int
	// stride is the base page-walk step, coprime with the walk length:
	// each unit visits the working set in a scattered order so a pressured
	// host pays seek-bound swap-ins instead of one prefetch-friendly
	// stream.
	stride int
	// phase is the seeded hot-phase offset in [0, 3).
	phase int
	Units int

	admitted    sim.Time // when the guest's driver started on its first host
	host        *Host
	dest        *Host // in-flight migration target (commit already reserved)
	vm          *hyper.VM
	pr          *guest.Process
	incarnation int

	unitsDone   int
	placements  int
	migrations  int
	killReq     bool // soomkiller marked it; the driver kills at the next unit boundary
	killed      bool
	oomKilled   bool // the guest's own OOM killer got it (not soomkiller)
	unitsAtKill int
	done        bool
}

// Host returns the guest's current host (nil once killed or done).
func (g *Guest) Host() *Host { return g.host }

// Killed reports whether the guest was killed (by either killer).
func (g *Guest) Killed() bool { return g.killed }

// Done reports whether the guest completed all its units.
func (g *Guest) Done() bool { return g.done }

// UnitsDone reports completed workload units.
func (g *Guest) UnitsDone() int { return g.unitsDone }

// KilledLatency is the workload latency recorded for a killed guest: its
// work never completes, so the observation lands in the latency
// histogram's top bucket (~3.2 virtual days), far above any real
// completion. Reports render quantiles at or above it as unbounded.
const KilledLatency = sim.Duration(1) << 47

// Cluster is one running cluster cell.
type Cluster struct {
	Cfg    Config
	Env    *sim.Env
	Met    *metrics.Set // fleet-level cluster.* counters + unit histogram
	Hosts  []*Host
	Guests []*Guest

	unitHist  *metrics.Histogram
	guestHist *metrics.Histogram
	aud       *audit.Group
	mono      map[string]int64
	remaining int
	stopped   bool
}

// clusterMonotone lists the fleet counters the invariant checker requires
// to never decrease.
var clusterMonotone = []string{
	metrics.ClusterPlacements,
	metrics.ClusterUnits,
	metrics.ClusterMigrations,
	metrics.ClusterMigrateRefused,
	metrics.ClusterKills,
	metrics.ClusterReballoons,
	metrics.ClusterPressureEvents,
}

// New assembles the cluster: hosts on the shared env, guest specs with
// seeded working sets, and every guest placed exactly once by the packing
// policy. It panics (with the replay spec) if the config cannot pack —
// that is a configuration error, not a runtime state.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Env == nil {
		panic("cluster: Config.Env is required (hosts share one event loop)")
	}
	if len(cfg.Hosts) == 0 || cfg.Guests <= 0 || cfg.GuestMemPages <= 0 {
		panic("cluster: Hosts, Guests and GuestMemPages are required")
	}
	c := &Cluster{
		Cfg:  cfg,
		Env:  cfg.Env,
		Met:  metrics.NewSet(),
		mono: make(map[string]int64),
	}
	c.unitHist = c.Met.Histogram(metrics.HistClusterUnit)
	c.guestHist = c.Met.Histogram(metrics.HistClusterGuest)

	labels := make([]string, len(cfg.Hosts))
	machines := make([]*hyper.Machine, len(cfg.Hosts))
	for i, hs := range cfg.Hosts {
		m := hyper.NewMachine(hyper.MachineConfig{
			Seed:         sim.DeriveSeed(cfg.Seed, "host", hs.Name),
			Env:          cfg.Env,
			HostMemPages: hs.MemPages,
			Swapback:     cfg.Swapback,
			SwapPolicy:   cfg.SwapPolicy,
			Faults:       cfg.Faults,
		})
		c.Hosts = append(c.Hosts, &Host{
			Idx:      i,
			Name:     hs.Name,
			M:        m,
			MemPages: hs.MemPages,
			bound:    int(cfg.MaxCommitFactor * float64(hs.MemPages)),
		})
		labels[i] = hs.Name
		machines[i] = m
	}
	if cfg.AuditEvery > 0 {
		c.aud = audit.AttachGroup(cfg.Env, machines, labels, cfg.AuditEvery)
	}

	span := cfg.WSMaxPct - cfg.WSMinPct + 1
	if span < 1 {
		span = 1
	}
	for i := 0; i < cfg.Guests; i++ {
		name := fmt.Sprintf("g%d", i)
		pct := cfg.WSMinPct + int(sim.DeriveSeed(cfg.Seed, "ws", name)%uint64(span))
		g := &Guest{
			Idx:      i,
			Name:     name,
			MemPages: cfg.GuestMemPages,
			WSPages:  cfg.GuestMemPages * pct / 100,
			Units:    cfg.Units,
		}
		g.stride = coprimeStride(g.WSPages)
		g.phase = int(sim.DeriveSeed(cfg.Seed, "phase", name) % 3)
		c.Guests = append(c.Guests, g)
	}

	// Admission: every guest placed exactly once, respecting the commit
	// bound. Guests are admitted in index order so placement is a pure
	// function of (seed, config).
	for _, g := range c.Guests {
		h := c.pickHost(g.MemPages, nil)
		if h == nil {
			c.violate(fmt.Errorf("admission cannot place guest %s: %d pages on no host within the commit bound", g.Name, g.MemPages))
		}
		g.host = h
		g.placements++
		h.commit += g.MemPages
		c.Met.Inc(metrics.ClusterPlacements)
	}
	c.remaining = len(c.Guests)
	return c
}

// pickHost returns the packing policy's choice among hosts with commit
// headroom for memPages, or nil. exclude (may be nil) is skipped —
// migration never targets the pressured source.
func (c *Cluster) pickHost(memPages int, exclude *Host) *Host {
	var best *Host
	for _, h := range c.Hosts {
		if h == exclude || h.commit+memPages > h.bound {
			continue
		}
		if best == nil {
			best = h
			if c.Cfg.Packing == FirstFit {
				return best
			}
			continue
		}
		switch c.Cfg.Packing {
		case WorstFit:
			if ratio(h) < ratio(best) {
				best = h
			}
		case BalancedPressure:
			if h.pressure < best.pressure ||
				(h.pressure == best.pressure && ratio(h) < ratio(best)) {
				best = h
			}
		}
	}
	return best
}

func ratio(h *Host) float64 { return float64(h.commit) / float64(h.bound) }

// Run drives the cell to completion: guests boot staggered, the monitor
// samples, remediations fire, and the loop drains once every guest is
// done or dead and every host daemon has shut down.
func (c *Cluster) Run() {
	if c.Cfg.Balloon || c.Cfg.Remediation == RemedyReballoon {
		c.startMOM()
	}
	c.Env.Go("cluster-admit", func(p *sim.Proc) {
		for _, g := range c.Guests {
			c.startGuest(g)
			p.Sleep(c.Cfg.Stagger)
		}
	})
	c.Env.Go("cluster-monitor", func(p *sim.Proc) {
		for !c.stopped {
			p.Sleep(c.Cfg.SampleInterval)
			if c.stopped {
				return
			}
			c.sample(p.Now())
			c.checkOrPanic()
		}
	})
	c.Env.Run()
}

// finish shuts the cluster down once the last guest completes. Guests
// that were killed never served their workload: their latency is
// unbounded, recorded as KilledLatency in the histogram's top bucket — a
// policy that murders guests pays for it in the fleet-wide percentiles it
// is judged on. The sentinel must not depend on the cell's own drain time
// (a kill policy drains early, which would censor its victims at a
// *smaller* value than surviving guests under other policies).
func (c *Cluster) finish() {
	c.stopped = true
	for _, g := range c.Guests {
		if g.killed {
			c.guestHist.Observe(KilledLatency)
		}
	}
	for _, h := range c.Hosts {
		if h.mom != nil {
			h.mom.Stop()
		}
		h.M.Shutdown()
	}
}

// Final runs the end-of-run invariant checks (cluster-level and, when
// attached, the machine-level audit group) and returns the first
// violation, or nil.
func (c *Cluster) Final() error {
	if err := c.Check(); err != nil {
		return err
	}
	if c.aud != nil {
		return c.aud.Final()
	}
	return nil
}

// AuditHistory exposes the audit group's recent check lines for failure
// diagnostics (nil when auditing is off).
func (c *Cluster) AuditHistory() []string {
	if c.aud == nil {
		return nil
	}
	return c.aud.History()
}

// UnitP50, UnitP95 and UnitP99 report the fleet-wide per-unit workload
// latency quantiles in nanoseconds.
func (c *Cluster) UnitP50() int64 { return c.unitHist.P50() }
func (c *Cluster) UnitP95() int64 { return c.unitHist.P95() }
func (c *Cluster) UnitP99() int64 { return c.unitHist.P99() }

// GuestP50, GuestP95 and GuestP99 report the fleet-wide per-guest
// workload latency quantiles in nanoseconds: admission to completion,
// with killed guests recorded as KilledLatency (see finish).
func (c *Cluster) GuestP50() int64 { return c.guestHist.P50() }
func (c *Cluster) GuestP95() int64 { return c.guestHist.P95() }
func (c *Cluster) GuestP99() int64 { return c.guestHist.P99() }

// Counter reads one fleet-level counter.
func (c *Cluster) Counter(name string) int64 { return c.Met.Get(name) }

// FleetReport packages the fleet-level counters and the unit-latency
// histogram as a RunReport, reported alongside the per-host machine
// reports.
func (c *Cluster) FleetReport() *hyper.RunReport {
	return hyper.ReportFromSet(c.Cfg.Seed, c.Met, c.Env.Now())
}

// violate panics with the replay coordinates; every invariant failure and
// configuration error routes through it.
func (c *Cluster) violate(err error) {
	panic(fmt.Sprintf("cluster: invariant violation (replay with seed=%d spec=%q): %v",
		c.Cfg.Seed, c.Cfg.Spec, err))
}

// checkOrPanic runs the cluster invariants and panics with replay
// coordinates on the first violation (the shielded cell converts it into
// a FailureRecord).
func (c *Cluster) checkOrPanic() {
	if err := c.Check(); err != nil {
		c.violate(err)
	}
}
