package hostmm

import (
	"fmt"

	"vswapsim/internal/disk"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// This file holds the host-kernel mechanisms the paper adds or repurposes
// for the Swap Mapper: establishing private file mappings over guest pages
// (mmap with the new no_COW/populate semantics) and invalidating mappings
// when their blocks are written through ordinary I/O (the new open flag).
// Policy — when to call these — lives in internal/core.

// MapOver discards whatever a guest page held and turns it into a
// resident, named, guest-mapped page backed by ref. This models QEMU
// mmap'ing the just-read image blocks over the virtio target pages
// (populate + no_COW + KVM ioctl): the old content is superseded wholesale,
// so no fault-in happens, eliminating stale reads. The caller is
// responsible for having performed the disk read (readahead) already.
func (m *Manager) MapOver(p *sim.Proc, pg *Page, ref BlockRef) {
	if pg.State == Emulated {
		panic("hostmm: MapOver on emulated page; finish emulation first")
	}
	m.Forget(pg) // if a frame was held it is released and re-charged below
	m.chargeFrames(p, pg.Owner, 1)
	pg.State = ResidentFile
	pg.Backing = ref
	pg.Dirty = false
	pg.EPT = true
	pg.Referenced = true
	pg.TruthBlock = ref
	pg.TruthClean = true
	ref.File.AddMapping(pg)
	pg.Owner.inactiveFile.pushFront(pg)
	m.Met.Inc(metrics.MapperEstablish)
}

// AdoptAsNamed converts a resident anonymous page whose content is known
// (by I/O interposition) to equal ref into a named page, e.g. right after
// the guest wrote the page to its virtual disk. Reclaiming it later is a
// discard instead of a swap write.
func (m *Manager) AdoptAsNamed(pg *Page, ref BlockRef) {
	if pg.State != ResidentAnon {
		panic(fmt.Sprintf("hostmm: AdoptAsNamed on %s page", pg.State))
	}
	if pg.list != nil {
		pg.list.remove(pg)
	}
	if pg.SwapSlot >= 0 {
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
	}
	pg.State = ResidentFile
	pg.Dirty = false
	pg.Backing = ref
	pg.TruthBlock = ref
	pg.TruthClean = true
	ref.File.AddMapping(pg)
	pg.Owner.inactiveFile.pushFront(pg)
	m.Met.Inc(metrics.MapperEstablish)
}

// InvalidateBlock implements the paper's new open-flag semantics: before
// an explicit write to a block lands, every page privately mapping that
// block must stop depending on it. Resident mappings become anonymous
// (keeping their frame); non-resident mappings must first have their old
// content C0 read back from the block (that is the consistency read the
// paper describes), then become anonymous and dirty.
func (m *Manager) InvalidateBlock(p *sim.Proc, f *File, block int64) {
	f.EachMapping(block, func(pg *Page) {
		switch pg.State {
		case ResidentFile:
			f.RemoveMapping(pg)
			if pg.list != nil {
				pg.list.remove(pg)
			}
			pg.State = ResidentAnon
			pg.Dirty = true
			pg.Backing = BlockRef{}
			pg.Owner.activeAnon.pushFront(pg)
		case FileNonResident:
			// Rescue C0: synchronous read of the old content.
			done := m.Dev.Submit(disk.Read, f.Phys(block), 1)
			m.Met.Add(metrics.ImageReadSectors, disk.SectorsPerBlock)
			p.SleepUntil(done)
			if pg.State != FileNonResident {
				// A concurrent fault instantiated it during the read; the
				// resident case below cannot apply anymore either, since
				// EachMapping already advanced. Break the association if
				// it still exists.
				if pg.Backing.File == f {
					f.RemoveMapping(pg)
					if pg.list != nil {
						pg.list.remove(pg)
					}
					pg.State = ResidentAnon
					pg.Dirty = true
					pg.Backing = BlockRef{}
					pg.Owner.activeAnon.pushFront(pg)
				}
				break
			}
			f.RemoveMapping(pg)
			m.chargeFrames(p, pg.Owner, 1)
			pg.State = ResidentAnon
			pg.Dirty = true
			pg.EPT = false
			pg.Backing = BlockRef{}
			pg.Owner.inactiveAnon.pushFront(pg)
		case Emulated:
			// The Preventer's merge source is about to change; the
			// emulated page keeps its Backing until finalization, so we
			// must rescue here as well. This is extremely rare; treat it
			// like the non-resident case but leave finalization to the
			// Preventer, now sourcing from memory.
			done := m.Dev.Submit(disk.Read, f.Phys(block), 1)
			m.Met.Add(metrics.ImageReadSectors, disk.SectorsPerBlock)
			p.SleepUntil(done)
		default:
			panic(fmt.Sprintf("hostmm: mapping chain holds %s page", pg.State))
		}
		m.Met.Inc(metrics.MapperInvalidate)
	})
}

// --- False Reads Preventer support -------------------------------------

// BeginEmulation detaches a non-resident page for write emulation: the
// page keeps its swap slot or backing (the merge source) but the guest's
// writes will be buffered by the Preventer instead of faulting content in.
func (m *Manager) BeginEmulation(pg *Page) {
	switch pg.State {
	case SwappedOut, FileNonResident:
		pg.State = Emulated
	default:
		panic(fmt.Sprintf("hostmm: BeginEmulation on %s page", pg.State))
	}
}

// RemapOverwrite absorbs a guaranteed full-page overwrite of a
// non-resident page without ever buffering it: the frame is charged (which
// can block in direct reclaim) while the page still holds its non-resident
// state, so concurrent faulters never observe an Emulated page with no
// emulation buffer attached. It reports false when the page left that
// state while the charge blocked — a concurrent fault resolved it first —
// and the caller must retry against the new state.
func (m *Manager) RemapOverwrite(p *sim.Proc, pg *Page) bool {
	st := pg.State
	if st != SwappedOut && st != FileNonResident {
		panic(fmt.Sprintf("hostmm: RemapOverwrite on %s page", pg.State))
	}
	m.chargeFrames(p, pg.Owner, 1)
	if pg.State != st {
		m.unchargeFrame(pg.Owner)
		return false
	}
	if pg.Backing.Valid() {
		pg.Backing.File.RemoveMapping(pg)
		pg.Backing = BlockRef{}
	}
	if pg.SwapSlot >= 0 {
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
	}
	pg.State = ResidentAnon
	pg.Dirty = true
	pg.EPT = true
	pg.Referenced = true
	pg.TruthClean = false
	pg.TruthBlock = BlockRef{}
	pg.Emu = nil
	pg.Owner.activeAnon.pushFront(pg)
	m.Met.Inc(metrics.PreventerRemaps)
	return true
}

// EmulationRemap completes emulation for a fully-overwritten page: the
// write buffer becomes the page, old content is dropped unread.
func (m *Manager) EmulationRemap(p *sim.Proc, pg *Page) {
	if pg.State != Emulated {
		panic(fmt.Sprintf("hostmm: EmulationRemap on %s page", pg.State))
	}
	if pg.Backing.Valid() {
		pg.Backing.File.RemoveMapping(pg)
		pg.Backing = BlockRef{}
	}
	if pg.SwapSlot >= 0 {
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
	}
	m.chargeFrames(p, pg.Owner, 1)
	pg.State = ResidentAnon
	pg.Dirty = true
	pg.EPT = true
	pg.Referenced = true
	pg.TruthClean = false
	pg.TruthBlock = BlockRef{}
	pg.Emu = nil
	pg.Owner.activeAnon.pushFront(pg)
	m.Met.Inc(metrics.PreventerRemaps)
}

// SubmitOldContentRead starts the asynchronous read of an emulated page's
// prior content (swap slot or backing block) and returns its completion
// time. The Preventer merges when it completes.
func (m *Manager) SubmitOldContentRead(pg *Page) sim.Time {
	if pg.State != Emulated {
		panic(fmt.Sprintf("hostmm: SubmitOldContentRead on %s page", pg.State))
	}
	if pg.SwapSlot >= 0 {
		done := m.Dev.Submit(disk.Read, m.Swap.Phys(pg.SwapSlot), 1)
		m.Met.Inc(metrics.SwapReadOps)
		m.Met.Add(metrics.SwapReadSectors, disk.SectorsPerBlock)
		return done
	}
	if pg.Backing.Valid() {
		done := m.Dev.Submit(disk.Read, pg.Backing.File.Phys(pg.Backing.Block), 1)
		m.Met.Add(metrics.ImageReadSectors, disk.SectorsPerBlock)
		return done
	}
	// Content already rescued (invalidation race): no I/O needed.
	return m.Env.Now()
}

// EmulationMerge completes emulation after the old content was read: the
// buffered bytes overlay it and the page becomes a normal dirty anonymous
// page.
func (m *Manager) EmulationMerge(p *sim.Proc, pg *Page) {
	if pg.State != Emulated {
		panic(fmt.Sprintf("hostmm: EmulationMerge on %s page", pg.State))
	}
	if pg.Backing.Valid() {
		pg.Backing.File.RemoveMapping(pg)
		pg.Backing = BlockRef{}
	}
	if pg.SwapSlot >= 0 {
		m.Swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1
	}
	m.chargeFrames(p, pg.Owner, 1)
	pg.State = ResidentAnon
	pg.Dirty = true
	pg.EPT = true
	pg.Referenced = true
	pg.TruthClean = false
	pg.TruthBlock = BlockRef{}
	pg.Emu = nil
	pg.Owner.activeAnon.pushFront(pg)
	m.Met.Inc(metrics.PreventerMerges)
}
