// Package vswapsim is a full-system reproduction of "VSwapper: A Memory
// Swapper for Virtualized Environments" (Amit, Tsafrir, Schuster — ASPLOS
// 2014) as a deterministic discrete-event simulation.
//
// The library models the complete stack the paper runs on: a rotating
// disk, a Linux-like host memory manager with uncooperative swapping, a
// Linux-like guest OS with its own page cache/reclaim/balloon driver, a
// QEMU/KVM-like virtio and EPT fault path — and VSwapper itself (the Swap
// Mapper and the False Reads Preventer) plugged into that hypervisor.
//
// # Quick start
//
//	m := vswapsim.NewMachine(vswapsim.MachineConfig{
//		Seed:         1,
//		HostMemPages: 4 << 30 / 4096,
//	})
//	vm := m.NewVM(vswapsim.VMConfig{
//		Name:       "guest0",
//		MemPages:   512 << 20 / 4096, // what the guest believes
//		LimitPages: 100 << 20 / 4096, // what it actually gets
//		Mapper:     true,             // enable VSwapper
//		Preventer:  true,
//		GuestAPF:   true,
//	})
//	m.Env.Go("driver", func(p *vswapsim.Proc) {
//		vm.Boot(p)
//		res := vswapsim.SeqRead(vm, vswapsim.SeqReadConfig{FileMB: 200}).Wait(p)
//		fmt.Println("runtime:", res.Runtime())
//		m.Shutdown()
//	})
//	m.Run()
//
// # Experiments
//
// Every table and figure of the paper's evaluation can be regenerated:
//
//	rep, _ := vswapsim.RunExperiment("fig3", vswapsim.ExperimentOptions{})
//	fmt.Print(rep)
//
// See DESIGN.md for the modelling choices and EXPERIMENTS.md for
// paper-vs-measured results.
package vswapsim

import (
	"vswapsim/internal/balloon"
	"vswapsim/internal/experiment"
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Core simulation types.
type (
	// Machine is one physical host (disk, frames, host MM, guests).
	Machine = hyper.Machine
	// MachineConfig sizes the host.
	MachineConfig = hyper.MachineConfig
	// VM is one guest with its QEMU process model.
	VM = hyper.VM
	// VMConfig describes a guest and its VSwapper components.
	VMConfig = hyper.VMConfig
	// Proc is a simulated process handle.
	Proc = sim.Proc
	// Env is the discrete-event environment.
	Env = sim.Env
	// Time and Duration are virtual-clock types.
	Time     = sim.Time
	Duration = sim.Duration
	// Metrics is the counter set every layer reports into.
	Metrics = metrics.Set
	// GuestOS exposes the guest kernel (page cache, balloon, processes).
	GuestOS = guest.OS
	// GuestThread runs workload code inside a guest.
	GuestThread = guest.Thread
	// GuestConfig tunes the guest kernel.
	GuestConfig = guest.Config
)

// Workload types.
type (
	// Job is a handle on a running workload.
	Job = workload.Job
	// Result summarizes a finished workload.
	Result = workload.Result

	SeqReadConfig    = workload.SeqReadConfig
	AllocTouchConfig = workload.AllocTouchConfig
	Pbzip2Config     = workload.Pbzip2Config
	KernbenchConfig  = workload.KernbenchConfig
	EclipseConfig    = workload.EclipseConfig
	MetisConfig      = workload.MetisConfig
	GrepConfig       = workload.GrepConfig
	HistogramConfig  = workload.HistogramConfig
	KMeansConfig     = workload.KMeansConfig
)

// Migration types (the paper's §7 future work, implemented).
type (
	MigrationConfig = hyper.MigrationConfig
	MigrationPlan   = hyper.MigrationPlan
	MigrationResult = hyper.MigrationResult
)

// Balloon-manager types.
type (
	// BalloonManager is the MOM-like controller.
	BalloonManager = balloon.Manager
	// BalloonConfig tunes it.
	BalloonConfig = balloon.Config
)

// Experiment types.
type (
	// ExperimentOptions controls seed, scale and sweep trimming.
	ExperimentOptions = experiment.Options
	// ExperimentReport is a rendered result.
	ExperimentReport = experiment.Report
)

// NewMachine builds a physical host.
func NewMachine(cfg MachineConfig) *Machine { return hyper.NewMachine(cfg) }

// NewBalloonManager attaches a MOM-like balloon controller to a machine.
func NewBalloonManager(m *Machine, cfg BalloonConfig) *BalloonManager {
	return balloon.New(m, cfg)
}

// Workload launchers.
var (
	SeqRead    = workload.SeqRead
	AllocTouch = workload.AllocTouch
	Pbzip2     = workload.Pbzip2
	Kernbench  = workload.Kernbench
	Eclipse    = workload.Eclipse
	Metis      = workload.Metis
	Grep       = workload.Grep
	Histogram  = workload.Histogram
	KMeans     = workload.KMeans
	Warmup     = workload.Warmup
)

// Duration units re-exported for configuration.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// RunExperiment regenerates one of the paper's tables or figures by id
// (fig3…fig15, tab1, tab2, overhead, windows, ablation).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentReport, error) {
	e, err := experiment.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts), nil
}

// ExperimentIDs lists the available experiment ids in paper order.
func ExperimentIDs() []string { return experiment.IDs() }
