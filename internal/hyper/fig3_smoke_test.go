package hyper

import (
	"testing"

	"vswapsim/internal/guest"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// TestFig3Shape reproduces the paper's headline example (Fig. 3): a guest
// believing it has 512 MiB sequentially reads a 200 MiB file while the
// host gives it only 100 MiB. Expected ordering: balloon fastest,
// vswapper close behind, baseline an order of magnitude slower.
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size scenario")
	}
	run := func(mapper, preventer, balloon bool) (sim.Duration, int64) {
		m := NewMachine(MachineConfig{Seed: 7, HostMemPages: 4 << 30 / 4096})
		vm := m.NewVM(VMConfig{
			Name:       "vm0",
			MemPages:   512 << 20 / 4096,
			LimitPages: 100 << 20 / 4096,
			DiskBlocks: 20 << 30 / 4096,
			Mapper:     mapper,
			Preventer:  preventer,
			GuestAPF:   true,
		})
		var elapsed sim.Duration
		m.Env.Go("bench", func(p *sim.Proc) {
			vm.Boot(p)
			th := &guest.Thread{OS: vm.OS, P: p}
			if balloon {
				// Steady-state ballooning: the manager was active before
				// memory pressure developed, inflated past the nominal gap
				// so kernel + QEMU overhead fits under the cgroup limit.
				target := (512-100)<<20/4096 + 4096
				vm.OS.SetBalloonTarget(target)
				for vm.OS.BalloonPages() < target {
					p.Sleep(100 * sim.Millisecond)
				}
			}
			// Warm the guest: a prior process used (and freed) all visible
			// memory, so every free guest frame carries stale host state —
			// the paper's "all the rest has been reclaimed by the host".
			warm := vm.OS.NewProcess("warmup")
			n := vm.OS.FreePages() - 2048
			warm.Reserve(n)
			for i := 0; i < n; i++ {
				th.TouchAnon(warm, i, true)
			}
			warm.Exit()
			f := vm.OS.FS.Create("data", 200<<20)
			start := p.Now()
			th.ReadFile(f, 0, 200<<20)
			th.FlushCPU()
			elapsed = p.Now().Sub(start)
			m.Shutdown()
		})
		m.Run()
		return elapsed, m.Met.Get(metrics.StaleSwapReads)
	}

	base, baseStale := run(false, false, false)
	vswap, vswapStale := run(true, true, false)
	ball, _ := run(false, false, true)

	t.Logf("baseline=%v (stale=%d) vswapper=%v (stale=%d) balloon=%v",
		base, baseStale, vswap, vswapStale, ball)

	if vswapStale != 0 {
		t.Errorf("vswapper has %d stale reads", vswapStale)
	}
	if !(ball <= vswap && vswap < base) {
		t.Errorf("ordering violated: balloon=%v vswapper=%v baseline=%v", ball, vswap, base)
	}
	if float64(base)/float64(vswap) < 3 {
		t.Errorf("vswapper speedup only %.1fx; paper shows ~10x", float64(base)/float64(vswap))
	}
}
