package experiment

import "fmt"

// Registry lists every reproduced table and figure in paper order.
var Registry = []Experiment{
	{ID: "fig3", Title: "200MB read, 512MB guest on 100MB", PaperNote: "Fig. 3", Run: Fig3},
	{ID: "fig4", Title: "Ten phased MapReduce guests", PaperNote: "Fig. 4", Run: Fig4},
	{ID: "fig5", Title: "pbzip2 sweep: runtime + over-ballooning", PaperNote: "Fig. 5", Run: Fig5},
	{ID: "fig9", Title: "Sysbench pathology panels", PaperNote: "Fig. 9", Run: Fig9},
	{ID: "fig10", Title: "False reads on an allocating process", PaperNote: "Fig. 10", Run: Fig10},
	{ID: "fig11", Title: "pbzip2 I/O and reclaim panels", PaperNote: "Fig. 11", Run: Fig11},
	{ID: "fig12", Title: "Kernbench runtime + preventer remaps", PaperNote: "Fig. 12", Run: Fig12},
	{ID: "fig13", Title: "DaCapo Eclipse sweep", PaperNote: "Fig. 13", Run: Fig13},
	{ID: "fig14", Title: "Dynamic MapReduce scale-up", PaperNote: "Fig. 14", Run: Fig14},
	{ID: "fig15", Title: "Mapper tracking vs guest page cache", PaperNote: "Fig. 15", Run: Fig15},
	{ID: "tab1", Title: "VSwapper lines of code", PaperNote: "Table 1", Run: Table1},
	{ID: "tab2", Title: "Balloon enabled vs disabled (VMware profile)", PaperNote: "Table 2", Run: Table2},
	{ID: "overhead", Title: "Overhead with plentiful memory", PaperNote: "§5.3", Run: Overhead},
	{ID: "windows", Title: "Windows-profile guest", PaperNote: "§5.4", Run: Windows},
	{ID: "ablation", Title: "Design-choice ablations", PaperNote: "DESIGN.md §6", Run: Ablations},
	{ID: "migration", Title: "Mapping-assisted migration estimate", PaperNote: "§7 future work", Run: Migration},
	{ID: "fleetN", Title: "Cloud-density fleet on one overcommitted host", PaperNote: "beyond Fig. 14", Run: FleetN},
	{ID: "backendN", Title: "Swap-backend tiers: hdd/ssd/zswap/remote", PaperNote: "beyond §2.1", Run: BackendN},
	{ID: "clusterN", Title: "Cluster remediation policies under overcommit", PaperNote: "beyond the paper", Run: ClusterN},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q", id)
}

// IDs lists all experiment ids in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}
