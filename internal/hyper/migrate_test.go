package hyper

import (
	"testing"

	"vswapsim/internal/guest"
	"vswapsim/internal/sim"
)

func TestMigrationPlanClassification(t *testing.T) {
	// With the Mapper, a read-heavy guest should be mostly mapping-only +
	// skippable: migration barely moves content.
	_, vm := testVM(t, 32, true, true, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 24*mib)
		th.ReadFile(f, 0, 24*mib)
	})
	plan := vm.PlanMigration()
	if plan.TotalPages != vm.Cfg.MemPages {
		t.Fatalf("total = %d", plan.TotalPages)
	}
	sum := plan.TransferPages + plan.MappingOnly + plan.SwapBacked + plan.Skippable
	if sum != plan.TotalPages {
		t.Fatalf("classification leaks pages: %d != %d", sum, plan.TotalPages)
	}
	if plan.MappingOnly < 24*mib/4096/2 {
		t.Fatalf("expected most cached pages mapping-only, got %d", plan.MappingOnly)
	}
	if plan.TransferBytes() >= plan.NaiveTransferBytes() {
		t.Fatalf("mapping migration (%d B) not cheaper than naive (%d B)",
			plan.TransferBytes(), plan.NaiveTransferBytes())
	}
}

// TestMigrationAdmissionRefusal pins the destination headroom check: a
// destination whose physical memory (minus the 1/32 emergency reserve)
// cannot hold the arriving resident set refuses the migration up front —
// plan populated, no bytes sent, no time charged — while a roomy
// destination admits the same guest.
func TestMigrationAdmissionRefusal(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 7, HostMemPages: 64 << 20 / 4096})
	tiny := NewMachine(MachineConfig{Seed: 8, Env: m.Env, HostMemPages: 512})
	roomy := NewMachine(MachineConfig{Seed: 9, Env: m.Env, HostMemPages: 16 << 20 / 4096})
	vm := m.NewVM(VMConfig{
		Name:       "vm0",
		MemPages:   2048,
		DiskBlocks: 1 << 30 / 4096,
		GuestAPF:   true,
	})
	var refused, admitted MigrationResult
	m.Env.Go("scenario", func(p *sim.Proc) {
		vm.Boot(p)
		pr := vm.OS.NewProcess("anon")
		pr.Reserve(1024)
		th := &guest.Thread{OS: vm.OS, P: p}
		for i := 0; i < 1024; i++ {
			th.TouchAnon(pr, i, true)
		}
		th.FlushCPU()
		refused = vm.Migrate(p, MigrationConfig{Dest: tiny})
		admitted = vm.Migrate(p, MigrationConfig{Dest: roomy})
		m.Shutdown()
		tiny.Shutdown()
		roomy.Shutdown()
	})
	m.Run()

	if !refused.Refused {
		t.Fatal("512-page destination admitted a ~1024-page resident set")
	}
	if refused.BytesSent != 0 || refused.Duration != 0 {
		t.Fatalf("refusal did work: sent %d bytes in %v", refused.BytesSent, refused.Duration)
	}
	if refused.Plan.TotalPages != vm.Cfg.MemPages {
		t.Fatalf("refusal lost the plan: total %d pages", refused.Plan.TotalPages)
	}
	if admitted.Refused {
		t.Fatal("roomy destination refused the migration")
	}
	if admitted.BytesSent == 0 || admitted.Duration == 0 {
		t.Fatalf("admitted migration moved nothing: %+v", admitted)
	}
}

func TestMigrationPlanBaselineMovesEverything(t *testing.T) {
	// Without the Mapper every touched page is anonymous: the plan cannot
	// save wire bytes.
	_, vm := testVM(t, 32, false, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 24*mib)
		th.ReadFile(f, 0, 24*mib)
	})
	plan := vm.PlanMigration()
	if plan.MappingOnly > vm.Cfg.TextPages {
		t.Fatalf("baseline guest has %d mapping-only pages (only QEMU text expected)", plan.MappingOnly)
	}
	if plan.TransferPages+plan.SwapBacked == 0 {
		t.Fatal("nothing to transfer?")
	}
}
