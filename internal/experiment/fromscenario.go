package experiment

import (
	"fmt"

	"vswapsim/internal/cluster"
	"vswapsim/internal/hyper"
	"vswapsim/internal/scenario"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
	"vswapsim/internal/workload"
)

// This file compiles a validated scenario.Scenario onto the experiment
// machinery. Compilation targets the exact code paths the hand-coded
// figures use — runSingle for controlled-memory runs, dynamicGrid for
// phased fleets — with identical labels and seed derivations, so a YAML
// scenario that mirrors a figure (same name, fleet, schemes, workload)
// produces a byte-identical report; the equivalence tests in
// fromscenario_test.go enforce that for fig3/fig9/fig14.

// schemeByName maps scenario scheme identifiers onto Scheme values. It
// must agree with Scheme.String and scenario.SchemeNames (enforced by
// TestSchemeNamesAgree).
var schemeByName = map[string]Scheme{
	"baseline":      Baseline,
	"balloon+base":  BalloonBase,
	"mapper":        MapperOnly,
	"vswapper":      VSwapper,
	"balloon+vswap": BalloonVSwapper,
}

// FromScenario compiles a validated scenario into a runnable Experiment.
func FromScenario(sc *scenario.Scenario) Experiment {
	return Experiment{
		ID:        sc.Name,
		Title:     sc.Title,
		PaperNote: sc.PaperNote,
		Run:       func(o Options) *Report { return runScenario(sc, o) },
	}
}

// scenarioOptions folds the scenario's fault/audit configuration into the
// invocation options. A non-empty CLI -faults plan (anything already in
// o.Faults that the scenario did not declare itself) overrides the
// scenario's entire fault configuration, including inject_faults timeline
// events; the second return says whether timeline injection remains live.
func scenarioOptions(sc *scenario.Scenario, o Options) (Options, bool) {
	if !o.Faults.Empty() && o.Faults != sc.Faults {
		return o, false // CLI override: scenario fault config fully replaced
	}
	o.Faults = sc.Faults
	if o.AuditEvery == 0 {
		o.AuditEvery = sc.AuditEvery
	}
	return o, true
}

// scenarioJob launches the workload a scenario declares on vm. after,
// when non-nil, is wired as the per-iteration hook (seqread only).
func scenarioJob(o Options, w scenario.Workload, vm *hyper.VM, after func(int)) *workload.Job {
	switch w.Kind {
	case scenario.KindSeqRead:
		return workload.SeqRead(vm, workload.SeqReadConfig{
			FileMB:         o.mb(w.FileMB),
			Iterations:     scenarioIters(o, w),
			AfterIteration: after,
		})
	case scenario.KindAllocTouch:
		return workload.AllocTouch(vm, workload.AllocTouchConfig{SizeMB: o.mb(w.SizeMB)})
	case scenario.KindMetis:
		return workload.Metis(vm, workload.MetisConfig{
			InputMB: o.mb(w.InputMB),
			TableMB: o.mb(w.TableMB),
		})
	}
	panic("experiment: unreachable workload kind " + w.Kind) // validation rejects others
}

// scenarioIters resolves the iteration count under -quick. Zero means
// "workload default" (one pass), matching the hand-coded figures that
// omit Iterations.
func scenarioIters(o Options, w scenario.Workload) int {
	if o.Quick && w.QuickIterations > 0 {
		return w.QuickIterations
	}
	return w.Iterations
}

// scenarioKinds resolves which backend tiers the scenario runs against:
// the declared backend list, or the invocation's -swapback (default hdd)
// when the scenario declares none.
func scenarioKinds(sc *scenario.Scenario, o Options) []swapback.Kind {
	if len(sc.Backends) == 0 {
		return []swapback.Kind{o.Swapback}
	}
	kinds := make([]swapback.Kind, len(sc.Backends))
	for i, name := range sc.Backends {
		k, err := swapback.ParseKind(name)
		if err != nil {
			panic("experiment: invalid scenario backend " + name) // validation rejects
		}
		kinds[i] = k
	}
	return kinds
}

func runScenario(sc *scenario.Scenario, o Options) *Report {
	o = o.normalized()
	o, timelineFaults := scenarioOptions(sc, o)
	if sc.Policy != "" {
		p, err := swapback.ParsePolicy(sc.Policy)
		if err != nil {
			panic("experiment: invalid scenario policy " + sc.Policy) // validation rejects
		}
		o.SwapPolicy = p
	}
	rep := &Report{ID: sc.Name, Title: sc.Title, PaperNote: sc.PaperNote}
	switch sc.Mode {
	case scenario.ModeDynamic:
		runScenarioDynamic(sc, o, rep)
	case scenario.ModeCluster:
		runScenarioCluster(sc, o, rep)
	default:
		runScenarioSingle(sc, o, rep, timelineFaults)
	}
	return rep
}

// ---- single mode ----

// singleOut is one scheme's finished run plus the notes its timeline
// events produced.
type singleOut struct {
	out   runOut
	notes []string
}

func runScenarioSingle(sc *scenario.Scenario, o Options, rep *Report, timelineFaults bool) {
	// The timeline's inject_faults plan is built into every machine
	// disarmed, then armed at its event time; a CLI -faults override
	// drops the event (the machine already runs the CLI plan, always on).
	var injectPlan *scenario.Event
	for i := range sc.Timeline {
		if sc.Timeline[i].Kind == scenario.EvInjectFaults {
			injectPlan = &sc.Timeline[i]
		}
	}
	var hostTweak func(*hyper.MachineConfig)
	if injectPlan != nil && timelineFaults {
		ev := injectPlan
		hostTweak = func(mc *hyper.MachineConfig) {
			mc.Faults = ev.Faults
			mc.FaultsDisarmed = true
		}
	}

	// Panels reproduce the Fig. 9 shape: counter panels sample one shared
	// Met.Diff per iteration, the runtime panel reads res.Iterations.
	iters := scenarioIters(o, sc.Workload)
	panelData := make([]map[string][]string, len(sc.Panels))
	for i := range panelData {
		panelData[i] = make(map[string][]string)
	}

	// Schemes run serially with the invocation seed, exactly like the
	// hand-coded single-guest figures. With more than one declared backend
	// the whole scheme grid repeats per tier (panels and timelines are
	// rejected by validation there), each tier on its own derived seed so
	// the tiers' streams stay independent; a single backend keeps the
	// invocation seed so a scenario equals the -swapback CLI form exactly.
	kinds := scenarioKinds(sc, o)
	multi := len(kinds) > 1
	cellKey := func(k swapback.Kind, schemeName string) string {
		if multi {
			return k.String() + "/" + schemeName
		}
		return schemeName
	}
	results := make(map[string]singleOut, len(kinds)*len(sc.Schemes))
	for _, k := range kinds {
		ko := o
		ko.Swapback = k
		if multi {
			ko.Seed = sim.DeriveSeed(o.Seed, "swapback", k.String())
		}
		for _, ref := range sc.Schemes {
			ref := ref
			s := schemeByName[ref.Name]
			var notes []string
			var lastSnap map[string]int64
			out := runSingle(runCfg{
				opts: ko, scheme: s,
				guestMB:         sc.Fleet.MemoryMB,
				actualMB:        sc.Fleet.ActualMB,
				hostMB:          sc.Fleet.HostMB,
				vcpus:           sc.Fleet.VCPUs,
				warmup:          sc.Fleet.Warmup,
				balloonMarginMB: sc.Fleet.BalloonMarginMB,
				hostTweak:       hostTweak,
			}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
				var after func(int)
				if len(sc.Panels) > 0 {
					lastSnap = vm.M.Met.Snapshot()
					after = func(int) {
						d := vm.M.Met.Diff(lastSnap)
						lastSnap = vm.M.Met.Snapshot()
						for i, pn := range sc.Panels {
							if pn.Source == "counter" {
								panelData[i][ref.Name] = append(panelData[i][ref.Name],
									fmt.Sprintf("%.1f", float64(d[pn.Counter])/pn.Per))
							}
						}
					}
				}
				job := scenarioJob(ko, sc.Workload, vm, after)
				if len(sc.Timeline) > 0 {
					runTimeline(sc, ko, vm, job, timelineFaults, ref.Name, &notes)
				}
				return job
			})
			for i, pn := range sc.Panels {
				if pn.Source == "runtime" {
					for _, it := range out.res.Iterations {
						panelData[i][ref.Name] = append(panelData[i][ref.Name], secs(it))
					}
				}
			}
			results[cellKey(k, ref.Name)] = singleOut{out: out, notes: notes}
		}
	}

	if sc.TableTitle != "" {
		withPaper := false
		for _, ref := range sc.Schemes {
			if ref.Paper != "" {
				withPaper = true
			}
		}
		cols := []string{"config", "runtime"}
		if withPaper {
			cols = append(cols, "paper")
		}
		tab := &Table{Title: sc.TableTitle, Columns: cols}
		for _, k := range kinds {
			for _, ref := range sc.Schemes {
				name := cellKey(k, ref.Name)
				row := []string{name, runtimeOrKilled(results[name].out.res)}
				if withPaper {
					row = append(row, ref.Paper)
				}
				tab.Add(row...)
			}
		}
		rep.Tables = append(rep.Tables, tab)
	}
	for i, pn := range sc.Panels {
		tab := &Table{Title: pn.Title, Columns: []string{"iteration"}}
		for _, ref := range sc.Schemes {
			tab.Columns = append(tab.Columns, ref.Name)
		}
		for it := 0; it < iters; it++ {
			row := []string{fmt.Sprintf("%d", it+1)}
			for _, ref := range sc.Schemes {
				if it < len(panelData[i][ref.Name]) {
					row = append(row, panelData[i][ref.Name][it])
				} else {
					row = append(row, "-")
				}
			}
			tab.Add(row...)
		}
		rep.Tables = append(rep.Tables, tab)
	}
	for _, k := range kinds {
		for _, ref := range sc.Schemes {
			rep.Notes = append(rep.Notes, results[cellKey(k, ref.Name)].notes...)
		}
	}

	evalAssertions(sc, rep, func(backend, schemeName, metric string) float64 {
		key := schemeName
		if multi {
			key = backend + "/" + schemeName
		}
		out := results[key].out
		switch metric {
		case scenario.MetricRuntimeSec:
			return out.res.Runtime().Seconds()
		case scenario.MetricKilled:
			if out.res.Killed {
				return 1
			}
			return 0
		default:
			return float64(out.met[metric])
		}
	})
}

// runTimeline starts the scenario's event schedule as a simulation
// process. Event times are virtual seconds after the measured body
// starts; events apply only while the primary job is still running, so a
// finished run skips the tail (at most one pending sleep remains, which
// is deterministic).
func runTimeline(sc *scenario.Scenario, o Options, vm *hyper.VM, job *workload.Job,
	timelineFaults bool, schemeName string, notes *[]string) {
	vm.M.Env.Go("timeline", func(tp *sim.Proc) {
		prev := 0.0
		for _, ev := range sc.Timeline {
			if d := sim.Duration((ev.AtSec - prev) * float64(sim.Second)); d > 0 {
				tp.Sleep(d)
			}
			prev = ev.AtSec
			if job.Finished() {
				return
			}
			switch ev.Kind {
			case scenario.EvBalloonSet:
				target := 0
				if ev.TargetMB > 0 {
					target = o.pages(ev.TargetMB)
				}
				vm.OS.SetBalloonTarget(target)
			case scenario.EvWorkloadPhase:
				scenarioJob(o, *ev.Workload, vm, nil) // background; never waited on
			case scenario.EvInjectFaults:
				if timelineFaults {
					vm.M.Inj.SetEnabled(true)
				}
			case scenario.EvMigrate:
				res := vm.Migrate(tp, hyper.MigrationConfig{
					BandwidthMBps: ev.BandwidthMBps,
					UseMappings:   ev.UseMappings,
				})
				*notes = append(*notes, fmt.Sprintf(
					"%s: migrate at %gs sent %.1f MB in %.3fs (mapping-only %d pages, skipped %d)",
					schemeName, ev.AtSec, float64(res.BytesSent)/(1<<20),
					res.Duration.Seconds(), res.Plan.MappingOnly, res.Plan.Skippable))
			}
		}
	})
}

// ---- dynamic mode ----

func runScenarioDynamic(sc *scenario.Scenario, o Options, rep *Report) {
	// Dynamic mode fans out per (count, scheme) already; validation caps it
	// at one declared backend, which simply replaces the invocation tier.
	o.Swapback = scenarioKinds(sc, o)[0]
	counts := sc.Fleet.Counts
	if o.Quick && len(sc.Fleet.QuickCounts) > 0 {
		counts = sc.Fleet.QuickCounts
	}
	schemes := make([]Scheme, len(sc.Schemes))
	for i, ref := range sc.Schemes {
		schemes[i] = schemeByName[ref.Name]
	}
	w := sc.Workload
	dc := dynCfg{
		memMB:      sc.Fleet.MemoryMB,
		hostMB:     sc.Fleet.HostMB,
		vcpus:      sc.Fleet.VCPUs,
		staggerSec: sc.Fleet.StaggerSec,
		diskMB:     sc.Fleet.DiskMB,
		job: func(o Options, vm *hyper.VM) *workload.Job {
			return scenarioJob(o, w, vm, nil)
		},
	}
	grid := dynamicGrid(o, sc.Name, counts, schemes, dc)

	tab := &Table{Title: sc.TableTitle, Columns: []string{"guests"}}
	for _, ref := range sc.Schemes {
		tab.Columns = append(tab.Columns, ref.Name)
	}
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range schemes {
			row = append(row, renderDynCell(grid[i*len(schemes)+j]))
		}
		tab.Add(row...)
	}
	rep.Tables = append(rep.Tables, tab)

	cell := func(schemeName string, guests int) (dynOut, bool) {
		row := -1
		if guests == 0 { // default: the largest count in this run
			for i, n := range counts {
				if row < 0 || n > counts[row] {
					row = i
				}
			}
		} else {
			for i, n := range counts {
				if n == guests {
					row = i
				}
			}
		}
		if row < 0 {
			return dynOut{}, false
		}
		for j, ref := range sc.Schemes {
			if ref.Name == schemeName {
				return grid[row*len(schemes)+j], true
			}
		}
		return dynOut{}, false
	}
	evalAssertionsDynamic(sc, rep, cell)
}

// ---- cluster mode ----

// runScenarioCluster compiles the cluster stanza onto the same grid the
// hand-coded clusterN uses: one guest count, the stanza's remediation
// policies as columns, each cell on its own derived seed.
func runScenarioCluster(sc *scenario.Scenario, o Options, rep *Report) {
	// A declared backend replaces the invocation tier (at most one,
	// enforced by validation); no declaration keeps the CLI -swapback.
	o.Swapback = scenarioKinds(sc, o)[0]
	cs := sc.Cluster
	cc := clusterCfg{
		hosts:         cs.Hosts,
		hostMB:        cs.HostMB,
		guestMB:       cs.GuestMB,
		wsMinPct:      cs.WSMinPct,
		wsMaxPct:      cs.WSMaxPct,
		units:         cs.Units,
		phaseUnits:    cs.PhaseUnits,
		unitComputeMS: cs.UnitComputeMS,
		staggerMS:     cs.StaggerMS,
		diskMB:        cs.DiskMB,
		packing:       clusterPackingByName(cs.Packing),
		threshold:     cs.Threshold,
		sampleSec:     cs.SampleSec,
		cooldownSec:   cs.CooldownSec,
		maxCommit:     cs.MaxCommitFactor,
		swapback:      o.Swapback,
	}
	for _, h := range cs.HostList {
		cc.hostNames = append(cc.hostNames, h.Name)
		cc.hostMBs = append(cc.hostMBs, h.MemMB)
	}
	remedies := make([]cluster.Remediation, len(cs.Remediations))
	for i, name := range cs.Remediations {
		r, ok := cluster.RemediationNames[name]
		if !ok {
			panic("experiment: invalid scenario remediation " + name) // validation rejects
		}
		remedies[i] = r
	}
	s := schemeByName[sc.Schemes[0].Name]
	counts := []int{cs.Guests}

	grid := clusterGrid(o, sc.Name, s, counts, remedies, cc)

	tab := &Table{Title: sc.TableTitle, Columns: []string{"guests"}}
	for _, name := range cs.Remediations {
		tab.Columns = append(tab.Columns, name)
	}
	row := []string{fmt.Sprintf("%d", cs.Guests)}
	for j := range remedies {
		row = append(row, renderClusterCell(grid[j]))
	}
	tab.Add(row...)
	rep.Tables = append(rep.Tables, tab)

	evalAssertionsCluster(sc, rep, func(remedy string) (clusterOut, bool) {
		for i, name := range cs.Remediations {
			if name == remedy {
				return grid[i], true
			}
		}
		return clusterOut{}, false
	})
}

// clusterPackingByName resolves a validated packing identifier.
func clusterPackingByName(name string) cluster.Packing {
	p, ok := cluster.PackingNames[name]
	if !ok {
		panic("experiment: invalid scenario packing " + name) // validation rejects
	}
	return p
}

// evalAssertionsCluster checks cluster-mode assertions: the scheme slots
// of an assertion name remediation policies, and metrics resolve through
// clusterMetricValue (latency quantiles plus cluster.* counters).
func evalAssertionsCluster(sc *scenario.Scenario, rep *Report, cell func(remedy string) (clusterOut, bool)) {
	if len(sc.Assertions) == 0 {
		return
	}
	passed := 0
	for _, a := range sc.Assertions {
		var left, right float64
		if a.Threshold() {
			c, _ := cell(a.Scheme)
			left, right = clusterMetricValue(c, a.Counter), a.Value
		} else {
			cl, _ := cell(a.Left)
			cr, _ := cell(a.Right)
			left, right = clusterMetricValue(cl, a.Counter), clusterMetricValue(cr, a.Counter)
		}
		if a.Compare(left, right) {
			passed++
			continue
		}
		rep.AssertionFailures++
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("ASSERTION FAILED: %s (left=%g right=%g)", a.String(), left, right))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("assertions: %d/%d passed", passed, len(sc.Assertions)))
}

// ---- assertions ----

// evalAssertions checks single-mode assertions with val resolving
// (backend, scheme, metric) triples, appending deterministic notes and
// counting failures into the report. An assertion without a backend
// selector reads the first declared backend ("" when the scenario
// declares none and the grid is the invocation tier).
func evalAssertions(sc *scenario.Scenario, rep *Report, val func(backend, scheme, metric string) float64) {
	if len(sc.Assertions) == 0 {
		return
	}
	passed := 0
	for _, a := range sc.Assertions {
		backend := a.Backend
		if backend == "" && len(sc.Backends) > 0 {
			backend = sc.Backends[0]
		}
		var left, right float64
		if a.Threshold() {
			left, right = val(backend, a.Scheme, a.Counter), a.Value
		} else {
			left, right = val(backend, a.Left, a.Counter), val(backend, a.Right, a.Counter)
		}
		if a.Compare(left, right) {
			passed++
			continue
		}
		rep.AssertionFailures++
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("ASSERTION FAILED: %s (left=%g right=%g)", a.String(), left, right))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("assertions: %d/%d passed", passed, len(sc.Assertions)))
}

// evalAssertionsDynamic checks dynamic-mode assertions against grid
// cells. An assertion whose guest count is absent from this run (e.g. a
// -quick run with trimmed counts) is skipped with a note rather than
// failed, so quick and full runs both stay meaningful.
func evalAssertionsDynamic(sc *scenario.Scenario, rep *Report, cell func(scheme string, guests int) (dynOut, bool)) {
	if len(sc.Assertions) == 0 {
		return
	}
	passed, skipped := 0, 0
	metric := func(c dynOut, name string) float64 {
		switch name {
		case scenario.MetricMeanRuntimeSec:
			return c.mean.Seconds()
		case scenario.MetricKilled:
			return float64(c.killed)
		}
		return 0
	}
	for _, a := range sc.Assertions {
		var left, right float64
		ok := true
		if a.Threshold() {
			c, found := cell(a.Scheme, a.Guests)
			ok = found
			left, right = metric(c, a.Counter), a.Value
		} else {
			cl, foundL := cell(a.Left, a.Guests)
			cr, foundR := cell(a.Right, a.Guests)
			ok = foundL && foundR
			left, right = metric(cl, a.Counter), metric(cr, a.Counter)
		}
		if !ok {
			skipped++
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("assertion skipped (guests %d not in this run): %s", a.Guests, a.String()))
			continue
		}
		if a.Compare(left, right) {
			passed++
			continue
		}
		rep.AssertionFailures++
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("ASSERTION FAILED: %s (left=%g right=%g)", a.String(), left, right))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("assertions: %d/%d passed (%d skipped)", passed, len(sc.Assertions)-skipped, skipped))
}
