package hostmm

import (
	"testing"

	"vswapsim/internal/disk"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// rig bundles a small host for white-box tests.
type rig struct {
	env  *sim.Env
	met  *metrics.Set
	dev  *disk.Device
	pool *mem.FramePool
	swap *SwapArea
	mgr  *Manager
	cg   *Cgroup
	img  *File
}

func newRig(t *testing.T, poolFrames, cgLimit int) *rig {
	t.Helper()
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	model := Constellation()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	imgRegion := layout.Reserve("img", 1<<16)
	swapRegion := layout.Reserve("swap", 1<<14)
	pool := mem.NewFramePool(poolFrames)
	swap := NewSwapArea(swapRegion)
	mgr := NewManager(env, met, dev, pool, swap, Config{})
	cg := mgr.NewCgroup("vm0", cgLimit)
	img := NewFile("img", imgRegion)
	return &rig{env: env, met: met, dev: dev, pool: pool, swap: swap, mgr: mgr, cg: cg, img: img}
}

// Constellation re-exports the disk model for tests in this package.
func Constellation() disk.LatencyModel { return disk.Constellation7200() }

// run executes fn as a process and drives the sim to completion.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.env.Go("test", fn)
	r.env.Run()
}

func TestFirstTouchAllocatesAndMaps(t *testing.T) {
	r := newRig(t, 100, 0)
	pg := r.mgr.NewPage(r.cg, 0)
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
	})
	if pg.State != ResidentAnon || !pg.EPT || !pg.Dirty {
		t.Fatalf("state=%v ept=%v dirty=%v", pg.State, pg.EPT, pg.Dirty)
	}
	if r.cg.Resident() != 1 || r.pool.Used() != 1 {
		t.Fatalf("resident=%d used=%d", r.cg.Resident(), r.pool.Used())
	}
	if r.met.Get(metrics.HostFaultsInGuest) != 1 {
		t.Fatal("guest-context fault not counted")
	}
}

func TestReclaimSwapsOutAnon(t *testing.T) {
	r := newRig(t, 1000, 10)
	pages := make([]*Page, 20)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
	})
	if r.cg.Resident() > 10 {
		t.Fatalf("resident %d exceeds limit 10", r.cg.Resident())
	}
	swapped := 0
	for _, pg := range pages {
		if pg.State == SwappedOut {
			if pg.SwapSlot < 0 {
				t.Fatal("swapped page without slot")
			}
			swapped++
		}
	}
	if swapped != 10 {
		t.Fatalf("swapped = %d, want 10", swapped)
	}
	if r.met.Get(metrics.SwapWriteSectors) != int64(swapped)*disk.SectorsPerBlock {
		t.Fatalf("swap write sectors = %d", r.met.Get(metrics.SwapWriteSectors))
	}
}

func TestLRUEvictsOldestFirst(t *testing.T) {
	r := newRig(t, 1000, 0)
	var pages []*Page
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			pg := r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pg, GuestCtx)
			pages = append(pages, pg)
		}
		// Pages all start referenced on the active list. One reclaim pass
		// deactivates and clears reference bits; a second evicts oldest.
		r.mgr.ReclaimForTest(p, r.cg, 2)
	})
	if pages[0].State != SwappedOut || pages[1].State != SwappedOut {
		t.Fatalf("oldest pages not evicted: %v %v", pages[0].State, pages[1].State)
	}
	if pages[7].State != ResidentAnon {
		t.Fatal("newest page evicted")
	}
}

func TestTouchProtectsFromEviction(t *testing.T) {
	r := newRig(t, 1000, 0)
	var pages []*Page
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			pg := r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pg, GuestCtx)
			pages = append(pages, pg)
		}
		// The first reclaim deactivates (clearing reference bits) and
		// evicts the oldest page. Then promote page 1 with two touches and
		// reclaim more: page 1 must survive while younger pages go.
		r.mgr.ReclaimForTest(p, r.cg, 1)
		r.mgr.Touch(pages[1])
		r.mgr.Touch(pages[1])
		r.mgr.ReclaimForTest(p, r.cg, 4)
	})
	if pages[1].State != ResidentAnon {
		t.Fatal("recently-touched page was evicted")
	}
	if pages[2].State != SwappedOut {
		t.Fatal("older untouched page not evicted")
	}
}

func TestSwapInWithReadahead(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 16)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		// Find a swapped page and fault it back.
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		if victim == nil {
			t.Fatal("no page swapped out")
		}
		before := r.met.Get(metrics.HostSwapPrefetched)
		r.mgr.SwapIn(p, victim, GuestCtx)
		if victim.State != ResidentAnon {
			t.Fatalf("victim state = %v", victim.State)
		}
		if victim.EPT {
			t.Fatal("SwapIn must not map; MinorMap does")
		}
		if r.met.Get(metrics.HostSwapPrefetched) == before {
			t.Fatal("cluster readahead brought no neighbours")
		}
		r.mgr.MinorMap(p, victim, GuestCtx)
		if !victim.EPT || victim.SwapSlot != -1 {
			t.Fatal("MinorMap must map and release the slot (no dirty bits)")
		}
	})
}

func TestSwapSlotRetainedWithEPTDirtyBits(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	model := Constellation()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	swapRegion := layout.Reserve("swap", 1<<14)
	pool := mem.NewFramePool(1000)
	swap := NewSwapArea(swapRegion)
	mgr := NewManager(env, met, dev, pool, swap, Config{EPTDirtyBits: true})
	cg := mgr.NewCgroup("vm0", 4)
	pages := make([]*Page, 12)
	env.Go("t", func(p *sim.Proc) {
		for i := range pages {
			pages[i] = mgr.NewPage(cg, i)
			mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		mgr.SwapIn(p, victim, GuestCtx)
		mgr.MinorMap(p, victim, GuestCtx)
		if victim.SwapSlot < 0 {
			t.Error("with dirty bits a clean mapped page keeps its slot")
		}
		if victim.Dirty {
			t.Error("read-faulted page should stay clean with dirty bits")
		}
	})
	env.Run()
}

func TestFileFaultInAndDiscard(t *testing.T) {
	r := newRig(t, 1000, 6)
	// Create 8 named pages backed by consecutive image blocks.
	pages := make([]*Page, 8)
	for i := range pages {
		pages[i] = r.mgr.NewFilePage(r.cg, i, BlockRef{File: r.img, Block: int64(i)})
	}
	r.run(t, func(p *sim.Proc) {
		r.mgr.FileFaultIn(p, pages[0], GuestCtx)
		if pages[0].State != ResidentFile {
			t.Fatalf("state = %v", pages[0].State)
		}
		r.mgr.MinorMap(p, pages[0], GuestCtx)
		// Sequential faults should grow readahead and prefetch neighbours.
		if pages[1].State == FileNonResident {
			// minimum window is 4, so block 1 must have been prefetched
			t.Fatal("no file readahead happened")
		}
	})
	if r.met.Get(metrics.HostFilePrefetched) == 0 {
		t.Fatal("prefetch counter not incremented")
	}
}

func TestFileReclaimDiscardsWithoutWrite(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 12)
	for i := range pages {
		pages[i] = r.mgr.NewFilePage(r.cg, i, BlockRef{File: r.img, Block: int64(i * 2)}) // non-contiguous: no RA
	}
	r.run(t, func(p *sim.Proc) {
		for _, pg := range pages {
			if pg.State == FileNonResident {
				r.mgr.FileFaultIn(p, pg, GuestCtx)
				r.mgr.MinorMap(p, pg, GuestCtx)
			}
		}
	})
	if r.met.Get(metrics.SwapWriteSectors) != 0 {
		t.Fatal("clean file pages must not be written to swap")
	}
	if r.met.Get(metrics.HostFileDiscards) == 0 {
		t.Fatal("no discards counted")
	}
	if r.cg.Resident() > 4 {
		t.Fatalf("resident %d over limit", r.cg.Resident())
	}
}

func TestSilentWriteDetection(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 12)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pg := r.mgr.NewPage(r.cg, i)
			pages[i] = pg
			r.mgr.FirstTouch(p, pg, GuestCtx)
			// Simulate virtio DMA having filled the page from the image:
			// ground truth says content equals a block.
			pg.TruthBlock = BlockRef{File: r.img, Block: int64(i)}
			pg.TruthClean = true
		}
	})
	if r.met.Get(metrics.SilentSwapWrites) == 0 {
		t.Fatal("silent swap writes not detected")
	}
	if r.met.Get(metrics.SilentSwapWrites) != r.met.Get(metrics.HostSwapOuts) {
		t.Fatal("all these swap writes are silent")
	}
}

func TestCOWBreak(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewFilePage(r.cg, 0, BlockRef{File: r.img, Block: 7})
	r.run(t, func(p *sim.Proc) {
		r.mgr.FileFaultIn(p, pg, GuestCtx)
		r.mgr.MinorMap(p, pg, GuestCtx)
		r.mgr.COWBreak(p, pg, GuestCtx)
	})
	if pg.State != ResidentAnon || !pg.Dirty {
		t.Fatalf("state=%v dirty=%v", pg.State, pg.Dirty)
	}
	if r.img.MappingAt(7) != nil {
		t.Fatal("mapping not removed")
	}
	if r.cg.lazy.size != 1 {
		t.Fatal("lazy source entry missing")
	}
	if r.met.Get(metrics.HostCOWBreaks) != 1 {
		t.Fatal("COW not counted")
	}
}

func TestMapOverDropsOldSwapState(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 12)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		oldSlot := victim.SwapSlot
		r.mgr.MapOver(p, victim, BlockRef{File: r.img, Block: 3})
		if victim.SwapSlot != -1 {
			t.Error("old swap slot not detached")
		}
		if r.swap.Owner(oldSlot) == victim {
			t.Error("old swap slot still owned by victim")
		}
		if victim.State != ResidentFile || !victim.EPT || victim.Dirty {
			t.Errorf("state=%v ept=%v dirty=%v", victim.State, victim.EPT, victim.Dirty)
		}
		if r.met.Get(metrics.StaleSwapReads) != 0 {
			t.Error("MapOver must not fault old content in")
		}
	})
}

func TestAdoptAsNamed(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewPage(r.cg, 0)
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
		r.mgr.AdoptAsNamed(pg, BlockRef{File: r.img, Block: 9})
	})
	if pg.State != ResidentFile || pg.Dirty {
		t.Fatalf("state=%v dirty=%v", pg.State, pg.Dirty)
	}
	if r.img.MappingAt(9) != pg {
		t.Fatal("mapping not registered")
	}
	if r.cg.FilePages() != 1 || r.cg.AnonPages() != 0 {
		t.Fatal("page not moved to file LRU")
	}
}

func TestInvalidateBlockResident(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewFilePage(r.cg, 0, BlockRef{File: r.img, Block: 5})
	r.run(t, func(p *sim.Proc) {
		r.mgr.FileFaultIn(p, pg, GuestCtx)
		r.mgr.InvalidateBlock(p, r.img, 5)
	})
	if pg.State != ResidentAnon || !pg.Dirty {
		t.Fatalf("state=%v", pg.State)
	}
	if r.img.MappingAt(5) != nil {
		t.Fatal("mapping survives invalidation")
	}
}

func TestInvalidateBlockNonResidentRescuesContent(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewFilePage(r.cg, 0, BlockRef{File: r.img, Block: 5})
	sectorsBefore := r.met.Get(metrics.ImageReadSectors)
	r.run(t, func(p *sim.Proc) {
		r.mgr.InvalidateBlock(p, r.img, 5)
	})
	if pg.State != ResidentAnon {
		t.Fatalf("state=%v, want resident-anon (C0 rescued)", pg.State)
	}
	if r.met.Get(metrics.ImageReadSectors) == sectorsBefore {
		t.Fatal("old content must be read before invalidation")
	}
}

func TestEmulationRemapSkipsRead(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 12)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		readsBefore := r.met.Get(metrics.SwapReadSectors)
		r.mgr.BeginEmulation(victim)
		if victim.State != Emulated {
			t.Fatalf("state=%v", victim.State)
		}
		r.mgr.EmulationRemap(p, victim)
		if victim.State != ResidentAnon || !victim.EPT || !victim.Dirty {
			t.Errorf("after remap: state=%v ept=%v", victim.State, victim.EPT)
		}
		if victim.SwapSlot != -1 {
			t.Error("slot not freed")
		}
		if r.met.Get(metrics.SwapReadSectors) != readsBefore {
			t.Error("remap must not read old content")
		}
	})
	if r.met.Get(metrics.PreventerRemaps) != 1 {
		t.Fatal("remap not counted")
	}
}

func TestEmulationMergeReadsOldContent(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 12)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		r.mgr.BeginEmulation(victim)
		readsBefore := r.met.Get(metrics.SwapReadSectors)
		done := r.mgr.SubmitOldContentRead(victim)
		if r.met.Get(metrics.SwapReadSectors) == readsBefore {
			t.Error("merge must read old content")
		}
		p.SleepUntil(done)
		r.mgr.EmulationMerge(p, victim)
		if victim.State != ResidentAnon || !victim.EPT {
			t.Errorf("after merge: state=%v", victim.State)
		}
	})
	if r.met.Get(metrics.PreventerMerges) != 1 {
		t.Fatal("merge not counted")
	}
}

func TestBalloonTakeAndReturn(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewPage(r.cg, 0)
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
		if r.cg.Resident() != 1 {
			t.Fatal("setup")
		}
		r.mgr.BalloonTake(pg)
		if pg.State != Ballooned || r.cg.Resident() != 0 {
			t.Errorf("state=%v resident=%d", pg.State, r.cg.Resident())
		}
		r.mgr.BalloonReturn(pg)
		if pg.State != Untouched {
			t.Errorf("state=%v", pg.State)
		}
		r.mgr.FirstTouch(p, pg, GuestCtx)
		if pg.State != ResidentAnon {
			t.Errorf("reuse after deflate failed: %v", pg.State)
		}
	})
}

func TestBalloonTakeSwappedFreesSlot(t *testing.T) {
	r := newRig(t, 1000, 4)
	pages := make([]*Page, 12)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		before := r.swap.InUse()
		r.mgr.BalloonTake(victim)
		if r.swap.InUse() != before-1 {
			t.Error("slot not freed on balloon take")
		}
	})
}

func TestGlobalPressureReclaimsLargestCgroup(t *testing.T) {
	r := newRig(t, 20, 0) // tiny global pool, no per-cgroup limits
	cg2 := r.mgr.NewCgroup("vm1", 0)
	r.run(t, func(p *sim.Proc) {
		// vm0 fills most of the pool.
		for i := 0; i < 15; i++ {
			pg := r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pg, GuestCtx)
		}
		// vm1 allocates; pressure must be relieved from vm0 (largest).
		for i := 0; i < 8; i++ {
			pg := r.mgr.NewPage(cg2, i)
			r.mgr.FirstTouch(p, pg, GuestCtx)
		}
	})
	if r.pool.Used() > 20 {
		t.Fatalf("pool overdrawn: %d", r.pool.Used())
	}
	if r.cg.Resident() >= 15 {
		t.Fatalf("vm0 not reclaimed: %d resident", r.cg.Resident())
	}
	if cg2.Resident() != 8 {
		t.Fatalf("vm1 resident = %d, want 8", cg2.Resident())
	}
}

func TestSwapAreaClusterSequentialAllocation(t *testing.T) {
	r := newRig(t, 100, 0)
	s := r.swap
	pg := r.mgr.NewPage(r.cg, 0)
	// Fresh area: allocations must be strictly sequential (cluster fill),
	// and continue past freed holes so writeback stays sequential.
	for i := 0; i < 6; i++ {
		if got := s.Alloc(pg); got != int64(i) {
			t.Fatalf("alloc #%d = %d", i, got)
		}
	}
	s.Free(2)
	s.Free(4)
	if got := s.Alloc(pg); got != 6 {
		t.Fatalf("cluster alloc = %d, want to continue at 6", got)
	}
}

func TestSwapAreaDegradesToLowestFreeWhenFragmented(t *testing.T) {
	// Build a tiny fully-fragmented area: every other slot taken, so no
	// run of SlotsPerCluster free slots exists.
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	model := Constellation()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	region := layout.Reserve("swap", 2*SlotsPerCluster)
	pool := mem.NewFramePool(10)
	s := NewSwapArea(region)
	mgr := NewManager(env, met, dev, pool, s, Config{})
	cg := mgr.NewCgroup("vm", 0)
	pg := mgr.NewPage(cg, 0)
	for i := int64(0); i < region.Blocks; i++ {
		s.Alloc(pg)
	}
	// Free every other slot: fragmented, no whole cluster.
	for i := int64(0); i < region.Blocks; i += 2 {
		s.Free(i)
	}
	if !s.fragmented() {
		t.Fatal("setup: expected fragmentation")
	}
	if got := s.Alloc(pg); got != 0 {
		t.Fatalf("fragmented alloc = %d, want lowest free 0", got)
	}
	if got := s.Alloc(pg); got != 2 {
		t.Fatalf("fragmented alloc = %d, want 2", got)
	}
}

func TestClusterRunSkipsHoles(t *testing.T) {
	r := newRig(t, 100, 0)
	s := r.swap
	pgs := make([]*Page, 8)
	for i := range pgs {
		pgs[i] = r.mgr.NewPage(r.cg, i)
		s.Alloc(pgs[i]) // slots 0..7
	}
	s.Free(3)
	run := s.ClusterRun(1, 8)
	want := []int64{0, 1, 2, 4, 5, 6, 7}
	if len(run) != len(want) {
		t.Fatalf("run = %v", run)
	}
	for i := range want {
		if run[i] != want[i] {
			t.Fatalf("run = %v, want %v", run, want)
		}
	}
}

func TestReclaimPrefersFilePages(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	model := Constellation()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	imgRegion := layout.Reserve("img", 1<<16)
	swapRegion := layout.Reserve("swap", 1<<14)
	pool := mem.NewFramePool(1000)
	swap := NewSwapArea(swapRegion)
	mgr := NewManager(env, met, dev, pool, swap, Config{MinFileFloor: 1})
	cg := mgr.NewCgroup("vm0", 0)
	img := NewFile("img", imgRegion)

	var anon, file []*Page
	env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			pg := mgr.NewPage(cg, i)
			mgr.FirstTouch(p, pg, GuestCtx)
			anon = append(anon, pg)
		}
		for i := 0; i < 200; i++ {
			pg := mgr.NewFilePage(cg, 1000+i, BlockRef{File: img, Block: int64(i)})
			mgr.FileFaultIn(p, pg, GuestCtx)
			mgr.MinorMap(p, pg, GuestCtx)
			file = append(file, pg)
		}
		mgr.ReclaimForTest(p, cg, 32)
		mgr.ReclaimForTest(p, cg, 32)
	})
	env.Run()
	anonEvicted, fileEvicted := 0, 0
	for _, pg := range anon {
		if pg.State == SwappedOut {
			anonEvicted++
		}
	}
	for _, pg := range file {
		if pg.State == FileNonResident {
			fileEvicted++
		}
	}
	if fileEvicted == 0 {
		t.Fatal("no file pages evicted")
	}
	if anonEvicted > 0 {
		t.Fatalf("anon pages evicted (%d) while plenty of file pages remain", anonEvicted)
	}
}
