package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vswapsim/internal/scenario"
)

func loadScenario(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Load(filepath.Join("..", "..", "scenarios", name+".yaml"))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return sc
}

// scenarioJSON runs one experiment through the shared executor and returns
// its full machine-readable report (tables, notes, per-run records) as
// canonical JSON bytes — the same payload `vswapsim -json` emits per
// experiment, minus the document header.
func scenarioJSON(t *testing.T, e Experiment, o Options) []byte {
	t.Helper()
	resetSweepCaches()
	rs := RunAll([]Experiment{e}, o, nil)
	if len(rs) != 1 {
		t.Fatalf("RunAll returned %d results", len(rs))
	}
	r := rs[0]
	if len(r.Failures) != 0 {
		t.Fatalf("%s: unexpected failures: %+v", e.ID, r.Failures)
	}
	data, err := json.MarshalIndent(BuildJSON(r.Report, r.Runs, r.Failures), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScenarioEquivalence proves the YAML mirrors of the hand-coded paper
// figures are not approximations: compiled scenarios must produce
// byte-identical JSON reports to their Go counterparts, serially and under
// the parallel executor.
func TestScenarioEquivalence(t *testing.T) {
	for _, id := range []string{"fig3", "fig9", "fig14"} {
		t.Run(id, func(t *testing.T) {
			goExp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			yamlExp := FromScenario(loadScenario(t, id))
			for _, par := range []int{1, 4} {
				o := goldenOpts()
				o.Parallel = par
				want := scenarioJSON(t, goExp, o)
				got := scenarioJSON(t, yamlExp, o)
				if !bytes.Equal(got, want) {
					t.Errorf("parallel=%d: YAML scenario diverges from Go %s (%d vs %d bytes)",
						par, id, len(got), len(want))
				}
			}
		})
	}
}

const scenarioGoldenFile = "testdata/golden_scenarios.json"

// TestScenarioGoldens fingerprints every checked-in scenario at the golden
// configuration, reusing the package-wide -update flag:
//
//	go test ./internal/experiment -run TestScenarioGoldens -update
func TestScenarioGoldens(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenarios found: %v", err)
	}
	sort.Strings(paths)
	got := map[string]string{}
	for _, p := range paths {
		sc, err := scenario.Load(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		base := strings.TrimSuffix(filepath.Base(p), ".yaml")
		if sc.Name != base {
			t.Errorf("%s: scenario name %q does not match file name %q "+
				"(the name keys the seed derivation)", p, sc.Name, base)
		}
		resetSweepCaches()
		rep := FromScenario(sc).Run(goldenOpts())
		if rep.AssertionFailures != 0 {
			t.Errorf("%s: %d assertion failures at golden config:\n  %s",
				p, rep.AssertionFailures, strings.Join(rep.Notes, "\n  "))
		}
		got[sc.Name] = rep.Fingerprint()
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(scenarioGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(scenarioGoldenFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), scenarioGoldenFile)
		return
	}

	data, err := os.ReadFile(scenarioGoldenFile)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	for name, fp := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden fingerprint recorded (run with -update)", name)
			continue
		}
		if fp != w {
			t.Errorf("%s: fingerprint %s, golden %s — scenario output drifted; "+
				"if intentional, regenerate with -update", name, fp[:12], w[:12])
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden file has stale entry %q (run with -update)", name)
		}
	}
}

// TestSchemeNamesAgree pins the two sides of the scheme-name contract:
// every simulator Scheme is reachable from YAML under exactly its
// String() name, and scenario.SchemeNames (used in validation errors and
// docs) lists exactly that set.
func TestSchemeNamesAgree(t *testing.T) {
	all := []Scheme{Baseline, BalloonBase, MapperOnly, VSwapper, BalloonVSwapper}
	if len(schemeByName) != len(all) {
		t.Errorf("schemeByName has %d entries, want %d", len(schemeByName), len(all))
	}
	for _, s := range all {
		got, ok := schemeByName[s.String()]
		if !ok {
			t.Errorf("scheme %q not reachable from YAML", s.String())
			continue
		}
		if got != s {
			t.Errorf("schemeByName[%q] = %v, want %v", s.String(), got, s)
		}
	}
	names := map[string]bool{}
	for _, n := range scenario.SchemeNames {
		names[n] = true
		if _, ok := schemeByName[n]; !ok {
			t.Errorf("scenario.SchemeNames lists %q, unknown to the compiler", n)
		}
	}
	for n := range schemeByName {
		if !names[n] {
			t.Errorf("compiler accepts scheme %q missing from scenario.SchemeNames", n)
		}
	}
}

// TestScenarioAssertionFailure proves a failed assertion is both visible
// (deterministic note, so it lands in the fingerprint) and fatal to the
// CLI (nonzero AssertionFailures maps to exit code 1).
func TestScenarioAssertionFailure(t *testing.T) {
	doc := `scenario: must-fail
title: "assertion failure propagation probe"
mode: single
fleet:
  memory_mb: 512
  actual_mb: 256
schemes: [baseline]
workload:
  kind: seqread
  file_mb: 200
  iterations: 1
  quick_iterations: 1
table:
  title: "runtime [sec]"
assertions:
  - counter: workload.killed
    scheme: baseline
    op: "=="
    value: 1
`
	sc, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep := FromScenario(sc).Run(goldenOpts())
	if rep.AssertionFailures != 1 {
		t.Fatalf("AssertionFailures = %d, want 1\nnotes: %v", rep.AssertionFailures, rep.Notes)
	}
	var failNote, summary bool
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "ASSERTION FAILED: workload.killed[baseline] == 1") {
			failNote = true
		}
		if n == "assertions: 0/1 passed" {
			summary = true
		}
	}
	if !failNote || !summary {
		t.Fatalf("assertion failure not reported in notes: %v", rep.Notes)
	}
}
