package hostmm

import (
	"testing"

	"vswapsim/internal/disk"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// TestPathologyCountersDisjoint locks in which reclaim path increments
// which pathology counter — and, just as important, which it must NOT.
// Every swap-out writes exactly one block (SectorsPerBlock sectors), silent
// writes are a subset of swap-outs, and the read-side pathology counters
// (stale/false reads, which only the platform's virtio paths can trigger)
// stay untouched by any write-side scenario.
func TestPathologyCountersDisjoint(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, r *rig, p *sim.Proc)
		// expectations, checked after the sim drains
		wantSwapOuts  func(outs int64) bool
		wantSilent    func(silent, outs int64) bool
		wantDiscards  func(discards int64) bool
		wantCOWBreaks int64
	}{
		{
			// Plain dirty anonymous pages: swap-outs happen but none is
			// "silent" — the host has no ground truth saying they are clean.
			name: "dirty anon",
			run: func(t *testing.T, r *rig, p *sim.Proc) {
				for i := 0; i < 12; i++ {
					pg := r.mgr.NewPage(r.cg, i)
					r.mgr.FirstTouch(p, pg, GuestCtx)
				}
			},
			wantSwapOuts: func(outs int64) bool { return outs > 0 },
			wantSilent:   func(silent, _ int64) bool { return silent == 0 },
			wantDiscards: func(d int64) bool { return d == 0 },
		},
		{
			// Pages whose content provably equals a disk block (virtio DMA
			// filled them): every swap-out of these is a silent write.
			name: "silent writes",
			run: func(t *testing.T, r *rig, p *sim.Proc) {
				for i := 0; i < 12; i++ {
					pg := r.mgr.NewPage(r.cg, i)
					r.mgr.FirstTouch(p, pg, GuestCtx)
					pg.TruthBlock = BlockRef{File: r.img, Block: int64(i)}
					pg.TruthClean = true
				}
			},
			wantSwapOuts: func(outs int64) bool { return outs > 0 },
			wantSilent:   func(silent, outs int64) bool { return silent == outs },
			wantDiscards: func(d int64) bool { return d == 0 },
		},
		{
			// COW-broken file pages become genuinely dirty anonymous pages:
			// reclaim swaps them out, but the break cleared TruthClean, so
			// none may be double-counted as a silent write.
			name: "cow broken",
			run: func(t *testing.T, r *rig, p *sim.Proc) {
				for i := 0; i < 12; i++ {
					pg := r.mgr.NewFilePage(r.cg, i, BlockRef{File: r.img, Block: int64(i * 2)})
					r.mgr.FileFaultIn(p, pg, GuestCtx)
					r.mgr.MinorMap(p, pg, GuestCtx)
					r.mgr.COWBreak(p, pg, GuestCtx)
				}
			},
			wantSwapOuts:  func(outs int64) bool { return outs > 0 },
			wantSilent:    func(silent, _ int64) bool { return silent == 0 },
			wantDiscards:  func(d int64) bool { return d == 0 },
			wantCOWBreaks: 12,
		},
		{
			// Clean file pages are discarded, never written to swap: the
			// write-side pathology counters must all stay at zero.
			name: "clean file",
			run: func(t *testing.T, r *rig, p *sim.Proc) {
				for i := 0; i < 12; i++ {
					pg := r.mgr.NewFilePage(r.cg, i, BlockRef{File: r.img, Block: int64(i * 2)})
					r.mgr.FileFaultIn(p, pg, GuestCtx)
					r.mgr.MinorMap(p, pg, GuestCtx)
				}
			},
			wantSwapOuts: func(outs int64) bool { return outs == 0 },
			wantSilent:   func(silent, _ int64) bool { return silent == 0 },
			wantDiscards: func(d int64) bool { return d > 0 },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 1000, 4)
			r.run(t, func(p *sim.Proc) { tc.run(t, r, p) })
			outs := r.met.Get(metrics.HostSwapOuts)
			silent := r.met.Get(metrics.SilentSwapWrites)
			if !tc.wantSwapOuts(outs) {
				t.Errorf("swap outs = %d", outs)
			}
			if !tc.wantSilent(silent, outs) {
				t.Errorf("silent writes = %d (swap outs %d)", silent, outs)
			}
			if silent > outs {
				t.Errorf("silent writes %d exceed swap outs %d", silent, outs)
			}
			if !tc.wantDiscards(r.met.Get(metrics.HostFileDiscards)) {
				t.Errorf("file discards = %d", r.met.Get(metrics.HostFileDiscards))
			}
			if got := r.met.Get(metrics.HostCOWBreaks); got != tc.wantCOWBreaks {
				t.Errorf("cow breaks = %d, want %d", got, tc.wantCOWBreaks)
			}
			// Each swap-out writes its one slot exactly once.
			if got, want := r.met.Get(metrics.SwapWriteSectors), outs*disk.SectorsPerBlock; got != want {
				t.Errorf("swap write sectors = %d, want %d (one block per swap-out)", got, want)
			}
			// Read-side pathologies are platform-level; no hostmm write path
			// may touch them.
			for _, name := range []string{metrics.StaleSwapReads, metrics.FalseSwapReads} {
				if v := r.met.Get(name); v != 0 {
					t.Errorf("%s = %d on a write-side path, want 0", name, v)
				}
			}
		})
	}
}
