// Package hostmm models the host operating system's memory management as
// seen by a hosted hypervisor (KVM/QEMU style): per-guest cgroup limits,
// active/inactive LRU lists with referenced bits, anonymous vs. file-backed
// (named) pages, the host swap area with swap cache and cluster readahead,
// host file page cache with sequential readahead, and private file
// mappings with copy-on-write.
//
// All five pathologies the paper identifies (§3) — silent swap writes,
// stale swap reads, false swap reads, decayed swap sequentiality and false
// page anonymity — arise from the interactions of the mechanisms in this
// package; nothing here special-cases an experiment.
package hostmm

import (
	"fmt"

	"vswapsim/internal/sim"
)

// PageState enumerates where a page's content lives from the host's point
// of view.
type PageState uint8

const (
	// Untouched pages have never been written; the first access allocates
	// a zeroed frame.
	Untouched PageState = iota
	// ResidentAnon pages hold a frame and are anonymous: without EPT
	// dirty-bit support the host must assume their content differs from
	// any disk block.
	ResidentAnon
	// ResidentFile pages hold a frame and are named: clean, backed by
	// Backing, privately mapped (a write triggers a COW break).
	ResidentFile
	// SwappedOut pages live in the host swap area at SwapSlot.
	SwappedOut
	// FileNonResident pages are named but reclaimed: their content is
	// exactly the backing block, so they were discarded without a write.
	FileNonResident
	// Emulated pages are under False Reads Preventer write emulation: no
	// frame, writes buffered, prior content still at SwapSlot/Backing.
	Emulated
	// Ballooned pages were handed to the host by the guest balloon
	// driver; they have no content and no frame.
	Ballooned
)

func (s PageState) String() string {
	switch s {
	case Untouched:
		return "untouched"
	case ResidentAnon:
		return "resident-anon"
	case ResidentFile:
		return "resident-file"
	case SwappedOut:
		return "swapped"
	case FileNonResident:
		return "file-nonresident"
	case Emulated:
		return "emulated"
	case Ballooned:
		return "ballooned"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// Resident reports whether the state implies a held frame.
func (s PageState) Resident() bool {
	return s == ResidentAnon || s == ResidentFile
}

// BlockRef names one 4 KiB block of a host-visible file (a guest disk
// image). The zero value means "no backing".
type BlockRef struct {
	File  *File
	Block int64
}

// Valid reports whether the reference points at a file.
func (b BlockRef) Valid() bool { return b.File != nil }

// Page is the host's view of one page of a QEMU process: either one guest
// frame (identified by GFN) or a page of QEMU's own executable. Pages are
// created lazily on first touch.
type Page struct {
	Owner *Cgroup
	// ID is the GFN for guest pages; QEMU-internal pages use negative IDs.
	ID    int
	State PageState

	// EPT reports whether the GPA⇒HPA entry is present, i.e. the guest
	// can access the page without a VM exit.
	EPT bool
	// Referenced is the LRU second-chance bit, set on access.
	Referenced bool
	// Dirty is the host's belief about the page differing from swap/disk.
	// Without EPT dirty bits, any guest-mapped anonymous page is dirty.
	Dirty bool

	// Pinned excludes the page from reclaim while a fault handler holds
	// it (the analogue of the Linux page lock).
	Pinned bool

	// fault serializes concurrent fault-ins of the same page: while
	// non-nil, one process is bringing the page in and others wait.
	fault *sim.Signal

	// SwapSlot is the host swap slot holding the content (-1 if none).
	SwapSlot int64
	// Backing is the file block backing a named page.
	Backing BlockRef

	// TruthBlock/TruthClean are simulator ground truth (metrics only):
	// whether the page's actual content equals a disk block. The host
	// cannot see these; they power the "silent write" counters.
	TruthBlock BlockRef
	TruthClean bool

	// Emu is the Preventer's buffer while State == Emulated. It is an
	// opaque pointer so that hostmm need not know the Preventer's layout.
	Emu interface{}

	// nextMapping chains pages that map the same file block (rare:
	// happens when the guest re-reads a block into a new GFN while an
	// older named page still exists).
	nextMapping *Page

	list       *pageList
	prev, next *Page
}

// InLRU reports whether the page is currently on one of the cgroup lists.
func (pg *Page) InLRU() bool { return pg.list != nil }

// key is a stable per-page identity (cgroup registration order + page ID)
// for the swap backend: per-page properties like compressibility and heat
// must survive slot reuse, so they key by page, not by slot. IDs can be
// negative (QEMU-internal pages); sign extension keeps keys distinct.
func (pg *Page) key() uint64 {
	return uint64(pg.Owner.idx)<<40 ^ uint64(int64(pg.ID))
}

// pageList is an intrusive doubly-linked list of pages with O(1) removal.
// Pages are pushed at the front; reclaim scans from the back (oldest).
type pageList struct {
	name string
	head *Page
	tail *Page
	size int
}

func (l *pageList) pushFront(pg *Page) {
	if pg.list != nil {
		panic("hostmm: page already on a list")
	}
	pg.list = l
	pg.prev = nil
	pg.next = l.head
	if l.head != nil {
		l.head.prev = pg
	}
	l.head = pg
	if l.tail == nil {
		l.tail = pg
	}
	l.size++
}

func (l *pageList) remove(pg *Page) {
	if pg.list != l {
		panic("hostmm: removing page from wrong list")
	}
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		l.head = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		l.tail = pg.prev
	}
	pg.list = nil
	pg.prev = nil
	pg.next = nil
	l.size--
}

// back returns the oldest page without removing it.
func (l *pageList) back() *Page { return l.tail }

// rotate moves the oldest page to the front (second chance).
func (l *pageList) rotate(pg *Page) {
	l.remove(pg)
	l.pushFront(pg)
}
