package vswapsim_test

import (
	"fmt"

	"vswapsim"
)

// Example_overcommit runs the paper's headline scenario: a guest that
// believes it has four times its actual memory reads a file, with VSwapper
// keeping uncooperative host swapping cheap.
func Example_overcommit() {
	m := vswapsim.NewMachine(vswapsim.MachineConfig{
		Seed:         1,
		HostMemPages: 1 << 30 / 4096,
	})
	vm := m.NewVM(vswapsim.VMConfig{
		Name:       "guest0",
		MemPages:   128 << 20 / 4096,
		LimitPages: 32 << 20 / 4096,
		DiskBlocks: 2 << 30 / 4096,
		Mapper:     true,
		Preventer:  true,
		GuestAPF:   true,
	})
	m.Env.Go("driver", func(p *vswapsim.Proc) {
		vm.Boot(p)
		res := vswapsim.SeqRead(vm, vswapsim.SeqReadConfig{FileMB: 64}).Wait(p)
		fmt.Println("completed:", !res.Killed)
		m.Shutdown()
	})
	m.Run()
	// Output: completed: true
}

// Example_experiment regenerates one of the paper's artifacts.
func Example_experiment() {
	rep, err := vswapsim.RunExperiment("tab1", vswapsim.ExperimentOptions{})
	fmt.Println(err == nil, rep.ID)
	// Output: true tab1
}

// Example_migrationPlan classifies a guest's pages for live migration
// (the paper's §7 future work).
func Example_migrationPlan() {
	m := vswapsim.NewMachine(vswapsim.MachineConfig{Seed: 1, HostMemPages: 1 << 30 / 4096})
	vm := m.NewVM(vswapsim.VMConfig{
		Name:       "guest0",
		MemPages:   64 << 20 / 4096,
		DiskBlocks: 1 << 30 / 4096,
		Mapper:     true,
		GuestAPF:   true,
	})
	m.Env.Go("driver", func(p *vswapsim.Proc) {
		vm.Boot(p)
		vswapsim.SeqRead(vm, vswapsim.SeqReadConfig{FileMB: 16}).Wait(p)
		plan := vm.PlanMigration()
		fmt.Println("mapping-only beats copying:", plan.TransferBytes() < plan.NaiveTransferBytes())
		m.Shutdown()
	})
	m.Run()
	// Output: mapping-only beats copying: true
}
