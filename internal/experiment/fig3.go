package experiment

import (
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Fig3 reproduces the headline example: sequentially reading a 200 MB file
// within a guest that believes it has 512 MB but is allocated 100 MB.
func Fig3(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:        "fig3",
		Title:     "200MB sequential file read, 512MB guest on 100MB (Fig. 3)",
		PaperNote: "baseline 38.7s, balloon+base 3.1s, vswapper 4.0s, balloon+vswapper 3.1s",
	}
	tab := &Table{
		Title:   "runtime [sec]",
		Columns: []string{"config", "runtime", "paper"},
	}
	paper := map[Scheme]string{
		Baseline: "38.7", BalloonBase: "3.1", VSwapper: "4.0", BalloonVSwapper: "3.1",
	}
	for _, s := range []Scheme{Baseline, BalloonBase, VSwapper, BalloonVSwapper} {
		out := runSingle(runCfg{
			opts: o, scheme: s,
			guestMB: 512, actualMB: 100,
			warmup: true,
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200)})
		})
		tab.Add(s.String(), runtimeOrKilled(out.res), paper[s])
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}
