package guest

// blockMap maps vdisk blocks to the GFN caching them. It replaces a
// map[int64]int32: the page cache is probed on every guest file read and
// write (plus once per readahead candidate), so lookups must be indexed
// loads. Virtual disks are large and cache occupancy clusters, so the
// table is a lazily allocated two-level structure rather than a flat
// array; absent entries read as -1.
type blockMap struct {
	chunks []*gfnChunk
}

const (
	gfnChunkBits = 9
	gfnChunkSize = 1 << gfnChunkBits
	gfnChunkMask = gfnChunkSize - 1
)

type gfnChunk [gfnChunkSize]int32

func newBlockMap(blocks int64) *blockMap {
	return &blockMap{chunks: make([]*gfnChunk, (blocks+gfnChunkMask)>>gfnChunkBits)}
}

// get returns the GFN caching block, or (0, false) when absent.
func (m *blockMap) get(block int64) (int32, bool) {
	c := m.chunks[block>>gfnChunkBits]
	if c == nil {
		return 0, false
	}
	if g := c[block&gfnChunkMask]; g >= 0 {
		return g, true
	}
	return 0, false
}

// set records that block is cached in gfn.
func (m *blockMap) set(block int64, gfn int32) {
	ci := block >> gfnChunkBits
	c := m.chunks[ci]
	if c == nil {
		c = new(gfnChunk)
		for i := range c {
			c[i] = -1
		}
		m.chunks[ci] = c
	}
	c[block&gfnChunkMask] = gfn
}

// del removes block's cache entry (no-op when absent).
func (m *blockMap) del(block int64) {
	if c := m.chunks[block>>gfnChunkBits]; c != nil {
		c[block&gfnChunkMask] = -1
	}
}
