package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vswapsim/internal/experiment"
)

// TestRunUsageErrors: every malformed flag value exits with the usage
// code and a one-line hint on stderr.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad faults spec", []string{"-faults", "bogus:0.5"}},
		{"negative auditevery", []string{"-auditevery", "-1"}},
		{"negative celltimeout", []string{"-celltimeout", "-1s"}},
		{"malformed maxevents", []string{"-maxevents", "-5"}},
		{"negative tracering", []string{"-tracering", "-1"}},
		{"bad scale", []string{"-scale", "17"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(c.args, &stdout, &stderr)
			if code != exitUsage {
				t.Fatalf("run(%v) = %d, want %d", c.args, code, exitUsage)
			}
			if msg := stderr.String(); !strings.Contains(msg, "usage") && !strings.Contains(msg, "Usage") {
				t.Fatalf("stderr has no usage hint:\n%s", msg)
			}
		})
	}
}

// TestRunHardenedReportWritesDiagBundles: a tiny event budget kills every
// cell of a single-figure report run; the process exits non-zero, the
// JSON file carries the failure records, and -diagdir receives one
// replayable bundle per failed cell.
func TestRunHardenedReportWritesDiagBundles(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	diagDir := filepath.Join(dir, "diag")
	var stdout, stderr bytes.Buffer
	args := []string{"-only", "fig3", "-quick", "-scale", "0.125", "-seed", "7",
		"-maxevents", "1000", "-json", jsonPath, "-diagdir", diagDir}
	code := run(args, &stdout, &stderr)
	if code != exitFailures {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitFailures, stderr.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc experiment.JSONDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("JSON file invalid: %v", err)
	}
	if len(doc.Experiments) != 1 || len(doc.Experiments[0].Failures) == 0 {
		t.Fatal("no failure records in the JSON document")
	}
	bundles, err := filepath.Glob(filepath.Join(diagDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != len(doc.Experiments[0].Failures) {
		t.Fatalf("%d bundles for %d failures", len(bundles), len(doc.Experiments[0].Failures))
	}
	var b experiment.DiagBundle
	raw, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
	if !strings.Contains(b.Replay, "vswapper-report") || !strings.Contains(b.Replay, "-maxevents 1000") {
		t.Fatalf("bundle replay command incomplete: %q", b.Replay)
	}
	// The text report still rendered, with the failed cells called out.
	if out := stdout.String(); !strings.Contains(out, "FAILED") {
		t.Fatalf("text output does not flag failures:\n%s", out)
	}
}
