package experiment

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"vswapsim/internal/fault"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
)

// auditStride lets the property sweep rerun with the auditor on every
// event after structural changes to the audited state (flat swap/file
// tables, owner slabs):
//
//	go test ./internal/experiment -run TestFaultPlanPropertySweep -auditstride 1
var auditStride = flag.Int("auditstride", 2048,
	"invariant-audit stride for the fault property sweep (1 = audit every event)")

// faultOpts is the fault-test configuration: small and quick, with the
// invariant auditor strided tightly enough to catch corruption close to
// its origin without dominating runtime.
func faultOpts(plan fault.Plan) Options {
	o := goldenOpts()
	o.Scale = 0.0625
	o.Faults = plan
	o.AuditEvery = 2048
	return o
}

// TestFaultPlanPropertySweep is the property test over the fault space:
// randomized plans across many seeds run fig3 in quick mode with the
// invariant auditor attached. Any violation carries the seed and the
// canonical plan spec, so a failure here is replayable with
//
//	go run ./cmd/vswapsim -run fig3 -quick -scale 0.0625 -seed <seed> \
//	    -faults '<spec>' -swapback <tier> -auditevery 1
func TestFaultPlanPropertySweep(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for i := 0; i < seeds; i++ {
		seed := uint64(i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := fault.RandomPlan(seed)
			o := faultOpts(plan)
			o.AuditEvery = *auditStride
			o.Seed = 1000 + seed // vary the machine streams along with the plan
			// Cycle the swap-backend tier with the seed so the sweep
			// exercises every tier's fault handling under the auditor,
			// not just the default device.
			kinds := swapback.AllKinds()
			o.Swapback = kinds[int(seed)%len(kinds)]
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d, plan %q, backend %s: %v", seed, plan, o.Swapback, r)
				}
			}()
			e, err := ByID("fig3")
			if err != nil {
				t.Fatal(err)
			}
			resetSweepCaches()
			e.Run(o)
		})
	}
}

// TestFaultMetamorphicSerialParallel is the metamorphic determinism
// property under injection: an identical seed and non-empty plan must
// produce byte-identical JSON whether the sweep runs serially or on the
// parallel executor — injected faults come from per-machine streams, never
// from shared state.
func TestFaultMetamorphicSerialParallel(t *testing.T) {
	plan := fault.MustParse("disk-read-err:0.01;disk-lat:0.02:1ms;swapin-fail:0.02;map-poison:0.01")
	serial := faultOpts(plan)
	parallel := faultOpts(plan)
	parallel.Parallel = 8
	a := jsonBytes(t, "fig5", serial)
	b := jsonBytes(t, "fig5", parallel)
	var da, db JSONDocument
	if err := json.Unmarshal(a, &da); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &db); err != nil {
		t.Fatal(err)
	}
	if da.Faults != plan.String() || db.Faults != plan.String() {
		t.Fatalf("documents do not carry the plan: %q / %q", da.Faults, db.Faults)
	}
	// The documents embed their Parallel setting; compare everything else.
	da.Parallel, db.Parallel = 0, 0
	ja, _ := json.Marshal(da)
	jb, _ := json.Marshal(db)
	if !bytes.Equal(ja, jb) {
		t.Fatal("serial and parallel JSON reports differ under fault injection")
	}
}

// TestEmptyFaultPlanMatchesGolden pins the zero-overhead-when-off
// guarantee in bytes: running with a parsed-but-empty plan (and the
// injection plumbing threaded through every layer) produces output
// byte-identical to the pre-injection golden report.
func TestEmptyFaultPlanMatchesGolden(t *testing.T) {
	empty, err := fault.ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	o := goldenOpts()
	o.TraceRing = 64 // the golden report embeds the trace tail
	o.Faults = empty
	got := jsonBytes(t, "fig3", o)
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("empty fault plan perturbed the golden report bytes")
	}
}

// TestFaultCountersSurfaceInReport: a non-empty plan shows up in the JSON
// document (the faults field) and at least one run's counters record
// injected firings — the contract CI's jq validation relies on.
func TestFaultCountersSurfaceInReport(t *testing.T) {
	plan := fault.MustParse("disk-read-err:0.05;disk-lat:0.1:1ms;swapin-fail:0.05")
	var doc JSONDocument
	if err := json.Unmarshal(jsonBytes(t, "fig3", faultOpts(plan)), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Faults != plan.String() {
		t.Fatalf("document faults = %q, want %q", doc.Faults, plan.String())
	}
	fired := int64(0)
	for _, r := range doc.Experiments[0].Runs {
		for name, v := range r.Report.Counters {
			if strings.HasPrefix(name, "fault.") {
				fired += v
			}
		}
	}
	if fired == 0 {
		t.Fatal("no fault.* counters in any run record")
	}
}

// TestAuditViolationMessageCarriesReplay: attachAudit's panic must name
// the experiment seed and the plan spec so a property-sweep failure can be
// replayed from the failure message alone.
func TestAuditViolationMessageCarriesReplay(t *testing.T) {
	o := faultOpts(fault.MustParse("swapin-fail:0.5"))
	m := hyper.NewMachine(hyper.MachineConfig{Seed: 9, HostMemPages: 1 << 12})
	check := o.attachAudit(m, 9)
	m.Env.Go("idle", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		m.Shutdown()
	})
	m.Run()
	// A negative counter fails the final audit's monotonicity pass.
	m.Met.Add(metrics.DiskOps, -1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on an invariant violation")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{fmt.Sprintf("seed=%d", o.Seed), o.Faults.String()} {
			if !strings.Contains(msg, want) {
				t.Errorf("violation message %q missing replay datum %q", msg, want)
			}
		}
	}()
	check()
}

// TestAttachAuditDisabledIsNoop: with auditing off the returned closure
// must do nothing, even for a machine that was never run.
func TestAttachAuditDisabledIsNoop(t *testing.T) {
	o := faultOpts(fault.Plan{})
	o.AuditEvery = 0
	o.attachAudit(nil, 7)() // must not dereference the nil machine
}
