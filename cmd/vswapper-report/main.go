// Command vswapper-report regenerates every table and figure of the
// paper's evaluation in one run, printing each report and, with -o, also
// writing the combined output to a file (the source of EXPERIMENTS.md's
// measured numbers).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vswapsim/internal/experiment"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1.0, "size scale factor (1.0 = paper-sized)")
		seed   = flag.Uint64("seed", 42, "random seed")
		quick  = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		out    = flag.String("o", "", "also write the combined report to this file")
		only   = flag.String("only", "", "comma-free single experiment id filter")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 16 {
		fmt.Fprintf(os.Stderr, "invalid -scale %v: must be in (0, 16]\n", *scale)
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := experiment.Options{Seed: *seed, Scale: *scale, Quick: *quick}
	fmt.Fprintf(w, "VSwapper reproduction report (seed=%d scale=%.2f quick=%v)\n\n", *seed, *scale, *quick)
	for _, e := range experiment.Registry {
		if *only != "" && e.ID != *only {
			continue
		}
		start := time.Now()
		rep := e.Run(opts)
		fmt.Fprint(w, rep.String())
		fmt.Fprintf(w, "(%s generated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			for i, tab := range rep.Tables {
				name := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", e.ID, i))
				if err := os.WriteFile(name, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
		}
	}
}
