package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
	"time"
)

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a discrete-event simulation environment. It owns the virtual
// clock, the pending-event queue and the set of live processes. An Env is
// not safe for concurrent use: exactly one process (or event callback) runs
// at a time, which is what makes runs deterministic.
type Env struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *RNG

	liveProcs int
	blocked   int // procs waiting on a Signal (not a timer)
	procPanic interface{}

	// afterEvent, when set, runs after every completed event callback. The
	// invariant-audit harness hooks here in test mode; it must not mutate
	// simulation state.
	afterEvent func()

	// budget is the progress watchdog installed by SetBudget; noteEvent
	// enforces it on every dequeued event (see watchdog.go).
	budget       Budget
	eventCount   uint64
	stall        uint64
	wallDeadline time.Time
}

// SetAfterEvent installs (or, with nil, removes) the post-event hook.
func (e *Env) SetAfterEvent(fn func()) { e.afterEvent = fn }

// NewEnv returns an environment with the clock at zero and the PRNG seeded
// with seed. The same seed always produces the same run.
func NewEnv(seed uint64) *Env {
	return &Env{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic PRNG.
func (e *Env) Rand() *RNG { return e.rng }

// Schedule arranges for fn to run after delay d. Callbacks run on the
// scheduler itself, so they must not block; use Go for blocking logic.
func (e *Env) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now.Add(d), seq: e.seq, fn: fn})
}

// ScheduleAt arranges for fn to run at absolute time t (not before now).
func (e *Env) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.Schedule(t.Sub(e.now), fn)
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If processes remain blocked on signals that can never fire,
// Run panics, as that is always a bug in the model.
func (e *Env) Run() Time {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil drives the simulation until the event queue is empty or the next
// event would fire after the deadline. Events exactly at the deadline run.
func (e *Env) RunUntil(deadline Time) Time {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.events)
		if next.at < e.now {
			panic("sim: time went backwards")
		}
		advanced := next.at > e.now
		e.now = next.at
		e.noteEvent(advanced)
		next.fn()
		if e.afterEvent != nil {
			e.afterEvent()
		}
	}
	if e.liveProcs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at %v", e.liveProcs, e.now))
	}
	return e.now
}

// Idle reports whether no events are pending.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// Proc is a simulated process: a goroutine that runs exclusively between
// blocking points. All blocking methods must be called from the process's
// own goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{} // scheduler -> proc
	yield  chan struct{} // proc -> scheduler
	dead   bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go starts fn as a new simulated process at the current virtual time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.liveProcs++
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			// A panic in a process must surface on the scheduler instead
			// of deadlocking the handshake.
			if r := recover(); r != nil {
				e.procPanic = fmt.Sprintf("%v\n\nprocess goroutine stack:\n%s", r, debug.Stack())
			}
			p.dead = true
			e.liveProcs--
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(0, func() { p.dispatch() })
	return p
}

// dispatch hands the CPU to the process and waits until it blocks again or
// terminates. Called only from the scheduler.
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.yield
	if p.env.procPanic != nil {
		r := p.env.procPanic
		p.env.procPanic = nil
		panic(r)
	}
}

// block suspends the calling process until dispatch is invoked again.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.env.Schedule(d, func() { p.dispatch() })
	p.block()
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.Sleep(t.Sub(p.env.now))
}

// Signal is a broadcast condition in virtual time. Processes wait on it;
// any code may Broadcast to wake all current waiters at the present time.
// The zero value is not usable; create signals with NewSignal.
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait suspends p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.env.blocked++
	p.block()
}

// Broadcast wakes every process currently waiting on the signal. Waiters
// resume in the order they began waiting, at the current virtual time.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		w := w
		s.env.blocked--
		s.env.Schedule(0, func() { w.dispatch() })
	}
}

// Pending reports how many processes are waiting on the signal.
func (s *Signal) Pending() int { return len(s.waiters) }
