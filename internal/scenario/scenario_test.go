package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validSingle is a minimal well-formed single-mode scenario used as the
// base for the malformed-document table below.
const validSingle = `scenario: demo
title: "demo run"
mode: single
fleet:
  memory_mb: 512
  actual_mb: 100
  warmup: true
schemes: [baseline, vswapper]
workload:
  kind: seqread
  file_mb: 200
table:
  title: "runtime [sec]"
`

func TestParseValidSingle(t *testing.T) {
	sc, err := Parse([]byte(validSingle))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "demo" || sc.Mode != ModeSingle {
		t.Fatalf("parsed %+v", sc)
	}
	if sc.Fleet.MemoryMB != 512 || sc.Fleet.ActualMB != 100 || !sc.Fleet.Warmup {
		t.Fatalf("fleet %+v", sc.Fleet)
	}
	if len(sc.Schemes) != 2 || sc.Schemes[0].Name != "baseline" || sc.Schemes[1].Name != "vswapper" {
		t.Fatalf("schemes %+v", sc.Schemes)
	}
	if sc.Workload.Kind != KindSeqRead || sc.Workload.FileMB != 200 {
		t.Fatalf("workload %+v", sc.Workload)
	}
	if sc.TableTitle != "runtime [sec]" {
		t.Fatalf("table title %q", sc.TableTitle)
	}
}

func TestParseValidDynamic(t *testing.T) {
	doc := `scenario: dyn
title: "dynamic demo"
mode: dynamic
fleet:
  counts: [1, 4]
  quick_counts: [1]
  memory_mb: 2048
  host_mb: 8192
schemes: [baseline, vswapper]
workload:
  kind: metis
  input_mb: 300
  table_mb: 1024
table:
  title: "mean guest runtime [sec]"
assertions:
  - counter: workload.mean_runtime_sec
    left: vswapper
    op: "<="
    right: baseline
  - counter: workload.killed
    scheme: vswapper
    op: "=="
    value: 0
    guests: 4
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.VCPUs != 2 || sc.Fleet.StaggerSec != 10 || sc.Fleet.DiskMB != 20*1024 {
		t.Fatalf("dynamic fleet defaults %+v", sc.Fleet)
	}
	if len(sc.Assertions) != 2 || sc.Assertions[0].Threshold() || !sc.Assertions[1].Threshold() {
		t.Fatalf("assertions %+v", sc.Assertions)
	}
	if sc.Assertions[1].Guests != 4 {
		t.Fatalf("guests selector %+v", sc.Assertions[1])
	}
}

// validCluster is a minimal well-formed cluster-mode scenario; it doubles
// as a fuzz corpus seed.
const validCluster = `scenario: clu
title: "cluster demo"
mode: cluster
cluster:
  hosts: 2
  host_mb: 512
  guests: 6
  guest_mb: 128
  working_set_pct: [50, 90]
  remediation: [none, migrate, kill]
  threshold: 0.2
schemes: [vswapper]
table:
  title: "fleet latency"
assertions:
  - counter: guest_p95_ms
    op: "<="
    left: migrate
    right: kill
  - counter: cluster.kills
    scheme: migrate
    op: "=="
    value: 0
`

func TestParseValidCluster(t *testing.T) {
	sc, err := Parse([]byte(validCluster))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "clu" || sc.Mode != ModeCluster {
		t.Fatalf("parsed %+v", sc)
	}
	cs := sc.Cluster
	if cs.Hosts != 2 || cs.HostMB != 512 || cs.Guests != 6 || cs.GuestMB != 128 {
		t.Fatalf("cluster sizing %+v", cs)
	}
	if cs.WSMinPct != 50 || cs.WSMaxPct != 90 {
		t.Fatalf("working set %+v", cs)
	}
	// disk_mb defaults to 4x guest_mb; packing defaults to the pressure
	// packer.
	if cs.DiskMB != 4*cs.GuestMB || cs.Packing != "balanced-pressure" {
		t.Fatalf("cluster defaults %+v", cs)
	}
	if len(cs.Remediations) != 3 || cs.Remediations[1] != "migrate" {
		t.Fatalf("remediations %+v", cs.Remediations)
	}
	if cs.Threshold != 0.2 {
		t.Fatalf("threshold %v", cs.Threshold)
	}
	if len(sc.Assertions) != 2 || sc.Assertions[0].Threshold() || !sc.Assertions[1].Threshold() {
		t.Fatalf("assertions %+v", sc.Assertions)
	}
}

func TestParseClusterHostList(t *testing.T) {
	doc := `scenario: clu2
title: t
mode: cluster
cluster:
  hosts:
    - name: big
      mem_mb: 2048
    - name: small
      mem_mb: 512
  guests: 4
  guest_mb: 128
  remediation: migrate
schemes: [vswapper]
table:
  title: t
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cs := sc.Cluster
	if len(cs.HostList) != 2 || cs.HostList[0].Name != "big" || cs.HostList[0].MemMB != 2048 ||
		cs.HostList[1].Name != "small" || cs.HostList[1].MemMB != 512 {
		t.Fatalf("host list %+v", cs.HostList)
	}
	if len(cs.Remediations) != 1 || cs.Remediations[0] != "migrate" {
		t.Fatalf("scalar remediation %+v", cs.Remediations)
	}
}

func TestParseSchemePaperAndTimeline(t *testing.T) {
	doc := `scenario: tl
title: "timeline demo"
mode: single
fleet:
  memory_mb: 512
  actual_mb: 100
schemes:
  - name: baseline
    paper: "38.7"
  - vswapper
workload:
  kind: seqread
  file_mb: 200
table:
  title: "runtime [sec]"
timeline:
  - at_sec: 0.5
    event: balloon_set
    target_mb: 384
  - at_sec: 1
    event: inject_faults
    faults: "disk-lat:0.1:2ms"
  - at_sec: 1.5
    event: workload_phase
    workload:
      kind: alloctouch
      size_mb: 64
  - at_sec: 2
    event: migrate
    bandwidth_mbps: 1000
    use_mappings: true
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Schemes[0].Paper != "38.7" || sc.Schemes[1].Paper != "" {
		t.Fatalf("schemes %+v", sc.Schemes)
	}
	if len(sc.Timeline) != 4 {
		t.Fatalf("timeline %+v", sc.Timeline)
	}
	ev := sc.Timeline[1]
	if ev.Kind != EvInjectFaults || ev.Faults.Empty() || ev.FaultSpec != "disk-lat:0.1:2ms" {
		t.Fatalf("inject event %+v", ev)
	}
	if sc.Timeline[2].Workload == nil || sc.Timeline[2].Workload.Kind != KindAllocTouch {
		t.Fatalf("phase event %+v", sc.Timeline[2])
	}
	if !sc.Timeline[3].UseMappings || sc.Timeline[3].BandwidthMBps != 1000 {
		t.Fatalf("migrate event %+v", sc.Timeline[3])
	}
}

// TestValidateMalformed is the satellite table: each malformed document
// must fail with a ParseError naming the offending key/value and carrying
// the right line number.
func TestValidateMalformed(t *testing.T) {
	cases := []struct {
		name     string
		doc      string
		wantLine int
		wantMsg  string // substring that must name the offending key/value
	}{
		{
			"unknown top-level field",
			"scenario: x\ntitle: t\nmode: single\nbogus_field: 3\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `unknown field "bogus_field"`,
		},
		{
			"unknown fleet field",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\n  ram_mb: 7\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			7, `unknown field "ram_mb"`,
		},
		{
			"negative memory",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: -512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			5, `field "memory_mb" in fleet out of range: -512`,
		},
		{
			"non-integer memory",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: lots\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			5, `field "memory_mb" in fleet must be an integer, got "lots"`,
		},
		{
			"missing required actual_mb",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			5, `missing required field "actual_mb" in fleet`,
		},
		{
			"bad mode",
			"scenario: x\ntitle: t\nmode: turbo\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			3, `"mode" in scenario must be "single", "dynamic" or "cluster", got "turbo"`,
		},
		{
			"unknown scheme",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline, warpdrive]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			7, `unknown scheme "warpdrive"`,
		},
		{
			"duplicate scheme",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline, baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			7, `duplicate scheme "baseline"`,
		},
		{
			"unknown workload kind",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: cryptomine\n  file_mb: 200\ntable:\n  title: t\n",
			9, `unknown workload kind "cryptomine"`,
		},
		{
			"out-of-order timeline",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\ntimeline:\n  - at_sec: 2\n    event: balloon_set\n    target_mb: 100\n  - at_sec: 1\n    event: balloon_set\n    target_mb: 0\n",
			17, "timeline out of order: at_sec 1 after 2",
		},
		{
			"bad fault spec",
			"scenario: x\ntitle: t\nmode: single\nfaults: \"warp-core-breach:0.5\"\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `field "faults" in scenario: invalid fault spec`,
		},
		{
			"unknown timeline event",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\ntimeline:\n  - at_sec: 1\n    event: explode\n",
			15, `unknown timeline event "explode"`,
		},
		{
			"unknown assertion op",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: baseline\n    op: \"~=\"\n    value: 0\n",
			16, `unknown assertion op "~="`,
		},
		{
			"assertion references undeclared scheme",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: vswapper\n    op: \"==\"\n    value: 0\n",
			14, `assertion references scheme "vswapper" not declared in schemes`,
		},
		{
			"assertion mixes forms",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline, vswapper]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: baseline\n    op: \"==\"\n    value: 0\n    left: baseline\n    right: vswapper\n",
			14, "assertion mixes threshold (scheme/value) and comparison (left/right) forms",
		},
		{
			"duplicate key",
			"scenario: x\ntitle: t\nmode: single\nmode: dynamic\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `duplicate key "mode"`,
		},
		{
			"tab indentation",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n\tmemory_mb: 512\n",
			5, "tab character in indentation",
		},
		{
			"flow mapping unsupported",
			"scenario: x\ntitle: t\nmode: single\nfleet: {memory_mb: 512, actual_mb: 100}\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, "flow mapping",
		},
		{
			"second inject_faults event",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\ntimeline:\n  - at_sec: 1\n    event: inject_faults\n    faults: \"disk-lat:0.1:2ms\"\n  - at_sec: 2\n    event: inject_faults\n    faults: \"swapin-fail:0.1\"\n",
			18, "at most one inject_faults event per timeline",
		},
		{
			"scenario faults conflict with inject_faults",
			"scenario: x\ntitle: t\nmode: single\nfaults: \"disk-lat:0.1:2ms\"\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\ntimeline:\n  - at_sec: 1\n    event: inject_faults\n    faults: \"swapin-fail:0.1\"\n",
			4, "mutually exclusive",
		},
		{
			"dynamic mode rejects timeline",
			"scenario: x\ntitle: t\nmode: dynamic\nfleet:\n  counts: [1, 2]\n  memory_mb: 2048\n  host_mb: 8192\nschemes: [baseline]\nworkload:\n  kind: metis\n  input_mb: 300\n  table_mb: 1024\ntable:\n  title: t\ntimeline:\n  - at_sec: 1\n    event: balloon_set\n    target_mb: 0\n",
			15, "timeline events are only supported in single mode",
		},
		{
			"dynamic mode rejects raw counter assertion",
			"scenario: x\ntitle: t\nmode: dynamic\nfleet:\n  counts: [1, 2]\n  memory_mb: 2048\n  host_mb: 8192\nschemes: [baseline]\nworkload:\n  kind: metis\n  input_mb: 300\n  table_mb: 1024\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: baseline\n    op: \"==\"\n    value: 0\n",
			16, "dynamic-mode assertions support only workload.mean_runtime_sec and workload.killed",
		},
		{
			"unknown backend",
			"scenario: x\ntitle: t\nmode: single\nbackend: floppy\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `unknown backend "floppy"`,
		},
		{
			"duplicate backend",
			"scenario: x\ntitle: t\nmode: single\nbackend: [ssd, ssd]\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `duplicate backend "ssd"`,
		},
		{
			"unknown policy",
			"scenario: x\ntitle: t\nmode: single\npolicy: lru\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `unknown policy "lru"`,
		},
		{
			"assertion backend selector without declared backends",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: baseline\n    backend: ssd\n    op: \"==\"\n    value: 0\n",
			16, `unknown field "backend"`,
		},
		{
			"assertion references undeclared backend",
			"scenario: x\ntitle: t\nmode: single\nbackend: [hdd, ssd]\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: baseline\n    backend: remote\n    op: \"==\"\n    value: 0\n",
			17, `assertion references backend "remote" not declared in backend`,
		},
		{
			"dynamic mode rejects multiple backends",
			"scenario: x\ntitle: t\nmode: dynamic\nbackend: [hdd, ssd]\nfleet:\n  counts: [1, 2]\n  memory_mb: 2048\n  host_mb: 8192\nschemes: [baseline]\nworkload:\n  kind: metis\n  input_mb: 300\n  table_mb: 1024\ntable:\n  title: t\n",
			4, "dynamic mode supports at most one backend",
		},
		{
			"multiple backends reject timeline",
			"scenario: x\ntitle: t\nmode: single\nbackend: [hdd, ssd]\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\ntimeline:\n  - at_sec: 1\n    event: balloon_set\n    target_mb: 0\n",
			4, "multiple backends and timeline events are mutually exclusive",
		},
		{
			"panels without iterations",
			"scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\npanels:\n  - title: p\n    source: runtime\n",
			11, "panels require workload.iterations >= 1",
		},
		{
			"unknown remediation",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: [migrate, teleport]\nschemes: [vswapper]\ntable:\n  title: t\n",
			9, `unknown remediation "teleport"`,
		},
		{
			"duplicate remediation",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: [migrate, migrate]\nschemes: [vswapper]\ntable:\n  title: t\n",
			9, `duplicate remediation "migrate"`,
		},
		{
			"zero hosts",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 0\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nschemes: [vswapper]\ntable:\n  title: t\n",
			5, `field "hosts" in cluster out of range: 0 not in [1, 256]`,
		},
		{
			"pressure threshold out of range",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\n  threshold: 1.5\nschemes: [vswapper]\ntable:\n  title: t\n",
			10, `pressure threshold 1.5 not in (0, 1]`,
		},
		{
			"duplicate host name",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts:\n    - name: a\n      mem_mb: 512\n    - name: a\n      mem_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nschemes: [vswapper]\ntable:\n  title: t\n",
			8, `duplicate host name "a" in cluster hosts`,
		},
		{
			"host_mb conflicts with explicit host list",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts:\n    - name: a\n      mem_mb: 512\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nschemes: [vswapper]\ntable:\n  title: t\n",
			8, "host_mb conflicts with an explicit cluster host list",
		},
		{
			"disk smaller than guest memory",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  disk_mb: 64\n  remediation: migrate\nschemes: [vswapper]\ntable:\n  title: t\n",
			9, `disk_mb (64) must exceed guest_mb (128)`,
		},
		{
			"cluster stanza outside cluster mode",
			"scenario: x\ntitle: t\nmode: single\ncluster:\n  hosts: 2\nfleet:\n  memory_mb: 512\n  actual_mb: 100\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n",
			4, `cluster stanza requires mode "cluster", got mode "single"`,
		},
		{
			"cluster mode missing stanza",
			"scenario: x\ntitle: t\nmode: cluster\nschemes: [vswapper]\ntable:\n  title: t\n",
			1, `missing required field "cluster" in scenario`,
		},
		{
			"cluster mode rejects workload",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nworkload:\n  kind: seqread\n  file_mb: 200\nschemes: [vswapper]\ntable:\n  title: t\n",
			10, "workload is not supported in cluster mode",
		},
		{
			"cluster mode rejects non-cluster metric",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nschemes: [vswapper]\ntable:\n  title: t\nassertions:\n  - counter: disk.ops\n    scheme: migrate\n    op: \">\"\n    value: 0\n",
			14, "cluster-mode assertions support only",
		},
		{
			"assertion references undeclared remediation",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nschemes: [vswapper]\ntable:\n  title: t\nassertions:\n  - counter: guest_p95_ms\n    scheme: kill\n    op: \">\"\n    value: 0\n",
			14, `assertion references remediation "kill" not declared in the cluster remediation list`,
		},
		{
			"cluster mode requires exactly one scheme",
			"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 2\n  host_mb: 512\n  guests: 4\n  guest_mb: 128\n  remediation: migrate\nschemes: [baseline, vswapper]\ntable:\n  title: t\n",
			10, "cluster mode compares remediation policies under exactly one scheme",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.doc))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.wantMsg)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if pe.Line != c.wantLine {
				t.Errorf("error at line %d, want %d: %v", pe.Line, c.wantLine, err)
			}
			if !strings.Contains(pe.Msg, c.wantMsg) {
				t.Errorf("error %q does not name the offense %q", pe.Msg, c.wantMsg)
			}
		})
	}
}

func TestLoadFillsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(path, []byte("scenario: x\nbogus: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("Load succeeded on malformed scenario")
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.File != path {
		t.Fatalf("error %v does not carry the file path", err)
	}
	if !strings.Contains(err.Error(), path+":") {
		t.Fatalf("error %q does not render file:line:col position", err)
	}
}

func TestUnknownFieldListsValidFields(t *testing.T) {
	_, err := Parse([]byte("scenario: x\ntitle: t\nmode: single\nfleet:\n  memory_mb: 512\n  actual_mb: 100\n  ram_mb: 1\nschemes: [baseline]\nworkload:\n  kind: seqread\n  file_mb: 200\ntable:\n  title: t\n"))
	if err == nil {
		t.Fatal("want error")
	}
	for _, f := range []string{"memory_mb", "actual_mb", "host_mb", "vcpus", "warmup", "balloon_margin_mb"} {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("unknown-field error does not list valid field %q: %v", f, err)
		}
	}
}

func TestAssertionCompare(t *testing.T) {
	cases := []struct {
		op          string
		left, right float64
		want        bool
	}{
		{"==", 1, 1, true}, {"==", 1, 2, false},
		{"!=", 1, 2, true}, {"!=", 1, 1, false},
		{"<", 1, 2, true}, {"<", 2, 2, false},
		{"<=", 2, 2, true}, {"<=", 3, 2, false},
		{">", 2, 1, true}, {">", 2, 2, false},
		{">=", 2, 2, true}, {">=", 1, 2, false},
	}
	for _, c := range cases {
		a := Assertion{Op: c.op}
		if got := a.Compare(c.left, c.right); got != c.want {
			t.Errorf("Compare(%g %s %g) = %v, want %v", c.left, c.op, c.right, got, c.want)
		}
	}
}
