package fault

import (
	"strings"
	"testing"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical form
	}{
		{"", ""},
		{";;;", ""},
		{"disk-read-err:0.01", "disk-read-err:0.01"},
		{" disk-read-err : 0.01 ", "disk-read-err:0.01"},
		{"disk-lat:0.05", "disk-lat:0.05:2ms"},
		{"disk-lat:0.05:500us", "disk-lat:0.05:500µs"},
		{"disk-lat:0.05:2ms", "disk-lat:0.05:2ms"},
		{"swapin-fail:1", "swapin-fail:1"},
		{"swapin-fail:0", ""}, // zero-rate rules normalize away
		{"map-poison:0.5;disk-read-err:0.25", "disk-read-err:0.25;map-poison:0.5"},
		{
			"balloon-refuse:0.1;slot-exhaust:0.2;emu-starve:0.3;disk-write-err:0.001",
			"disk-write-err:0.001;slot-exhaust:0.2;balloon-refuse:0.1;emu-starve:0.3",
		},
	}
	for _, c := range cases {
		p, err := ParsePlan(c.spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParsePlan(%q).String() = %q, want %q", c.spec, got, c.want)
		}
		// Canonical form must be a fixed point.
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Errorf("reparse %q: %v", p.String(), err)
			continue
		}
		if p2 != p {
			t.Errorf("reparse %q: plan not equal to original", p.String())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"bogus:0.5",                     // unknown kind
		"disk-read-err",                 // missing rate
		"disk-read-err:0.5:2ms",         // duration on a kind that takes none
		"disk-read-err:x",               // unparsable rate
		"disk-read-err:-0.1",            // rate below range
		"disk-read-err:1.5",             // rate above range
		"disk-read-err:NaN",             // NaN rate
		"disk-lat:0.5:x",                // unparsable duration
		"disk-lat:0.5:-2ms",             // negative duration
		"disk-lat:0.5:2h",               // duration above maxExtra
		"disk-lat:0.5:1ms:1ms",          // too many fields
		"swapin-fail:0.1;swapin-fail:1", // duplicate kind
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q): want error, got nil", spec)
		}
	}
}

func TestPlanAccessors(t *testing.T) {
	p := MustParse("disk-lat:0.25:3ms;swapin-fail:0.5")
	if p.Empty() {
		t.Fatal("plan unexpectedly empty")
	}
	if got := p.Rate(DiskLatency); got != 0.25 {
		t.Errorf("Rate(DiskLatency) = %v, want 0.25", got)
	}
	if got := p.Extra(DiskLatency); got != 3*sim.Millisecond {
		t.Errorf("Extra(DiskLatency) = %v, want 3ms", got)
	}
	if got := p.Rate(SwapInFail); got != 0.5 {
		t.Errorf("Rate(SwapInFail) = %v, want 0.5", got)
	}
	if got := p.Rate(DiskReadErr); got != 0 {
		t.Errorf("Rate(DiskReadErr) = %v, want 0", got)
	}
	if (Plan{}).String() != "" {
		t.Errorf("zero plan String() = %q, want empty", Plan{}.String())
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		back, ok := kindByName(name)
		if !ok || back != k {
			t.Errorf("kindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if got := numKinds.String(); !strings.HasPrefix(got, "Kind(") {
		t.Errorf("out-of-range Kind.String() = %q", got)
	}
}

func TestRandomPlan(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		p := RandomPlan(seed)
		if p.Empty() {
			t.Fatalf("RandomPlan(%d) is empty", seed)
		}
		// Every generated plan must survive the spec round trip, or the
		// property tests' replay instructions would lie.
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("RandomPlan(%d) = %q does not reparse: %v", seed, p.String(), err)
		}
		if p2 != p {
			t.Fatalf("RandomPlan(%d) = %q changes under round trip", seed, p.String())
		}
		if p != RandomPlan(seed) {
			t.Fatalf("RandomPlan(%d) not deterministic", seed)
		}
	}
}

func TestNewEmptyPlanIsNil(t *testing.T) {
	if in := New(Plan{}, 1, metrics.NewSet()); in != nil {
		t.Fatal("New with empty plan should return nil")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.DiskError(false) || in.DiskError(true) {
		t.Error("nil injector reported a disk error")
	}
	if in.DiskDelay() != 0 {
		t.Error("nil injector reported a disk delay")
	}
	if in.SwapInFailure() || in.SlotRefused() || in.BalloonRefused() ||
		in.EmulationStarved() || in.MapperPoisoned() {
		t.Error("nil injector fired")
	}
	if !in.Plan().Empty() {
		t.Error("nil injector has a non-empty plan")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := MustParse("disk-read-err:0.3;disk-lat:0.2:1ms;swapin-fail:0.4")
	draw := func() []bool {
		in := New(plan, 12345, metrics.NewSet())
		var seq []bool
		for i := 0; i < 500; i++ {
			switch i % 3 {
			case 0:
				seq = append(seq, in.DiskError(false))
			case 1:
				seq = append(seq, in.DiskDelay() != 0)
			case 2:
				seq = append(seq, in.SwapInFailure())
			}
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
}

func TestInjectorCountsFirings(t *testing.T) {
	met := metrics.NewSet()
	in := New(MustParse("swapin-fail:1;balloon-refuse:1"), 7, met)
	for i := 0; i < 10; i++ {
		if !in.SwapInFailure() {
			t.Fatal("rate-1 rule did not fire")
		}
	}
	if !in.BalloonRefused() {
		t.Fatal("rate-1 rule did not fire")
	}
	if got := met.Get(metrics.FaultSwapInTransient); got != 10 {
		t.Errorf("%s = %d, want 10", metrics.FaultSwapInTransient, got)
	}
	if got := met.Get(metrics.FaultBalloonRefusals); got != 1 {
		t.Errorf("%s = %d, want 1", metrics.FaultBalloonRefusals, got)
	}
	// Kinds not in the plan never fire and never count.
	if in.MapperPoisoned() {
		t.Error("inactive kind fired")
	}
	if got := met.Get(metrics.FaultMapperPoisoned); got != 0 {
		t.Errorf("%s = %d, want 0", metrics.FaultMapperPoisoned, got)
	}
}

// TestInactiveKindsDrawNothing pins the stream-independence property: the
// firing schedule of one kind must not shift when an unrelated kind is
// queried in between, because inactive kinds consume no randomness.
func TestInactiveKindsDrawNothing(t *testing.T) {
	plan := MustParse("swapin-fail:0.5")
	seq := func(interleave bool) []bool {
		in := New(plan, 99, metrics.NewSet())
		var out []bool
		for i := 0; i < 200; i++ {
			if interleave {
				in.MapperPoisoned() // inactive: must not advance the stream
				in.DiskError(true)
			}
			out = append(out, in.SwapInFailure())
		}
		return out
	}
	plain, mixed := seq(false), seq(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("draw %d shifted when inactive kinds were queried", i)
		}
	}
}

func TestDiskDelayReturnsExtra(t *testing.T) {
	in := New(MustParse("disk-lat:1:750us"), 3, metrics.NewSet())
	for i := 0; i < 5; i++ {
		if got := in.DiskDelay(); got != 750*sim.Microsecond {
			t.Fatalf("DiskDelay() = %v, want 750µs", got)
		}
	}
}
