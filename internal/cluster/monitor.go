package cluster

import (
	"vswapsim/internal/balloon"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// This file is the pressure monitor: the kube-soomkiller metric set
// (pswpin/pswpout rates plus swapped bytes vs. host memory) sampled on
// the simulated clock, scored per host, and remediated per policy. One
// remediation per sample — always on the hottest over-threshold host —
// with a per-host cooldown, so interventions are rare, deterministic
// events rather than storms.

// sample takes one monitor pass: refresh every host's pressure score,
// count over-threshold hosts, then remediate the hottest eligible one.
func (c *Cluster) sample(now sim.Time) {
	interval := c.Cfg.SampleInterval.Seconds()
	var hottest *Host
	for _, h := range c.Hosts {
		in := h.M.Met.Get(metrics.HostSwapIns)
		out := h.M.Met.Get(metrics.HostSwapOuts)
		din, dout := in-h.lastIn, out-h.lastOut
		h.lastIn, h.lastOut = in, out
		// Swap rate: fraction of host memory swapped in+out per second.
		rate := float64(din+dout) / float64(h.MemPages) / interval
		// Swapped bytes vs. host memory: how much working set already
		// spilled to the swap tier.
		frac := float64(h.M.MM.Swap.InUse()) / float64(h.MemPages)
		h.pressure = rate + frac/2
		if h.pressure > c.Cfg.PressureThreshold {
			c.Met.Inc(metrics.ClusterPressureEvents)
			if now.Sub(h.lastRemedy) >= c.Cfg.Cooldown || !h.remedied {
				if hottest == nil || h.pressure > hottest.pressure {
					hottest = h
				}
			}
		}
	}
	if hottest != nil {
		c.remediate(hottest, now)
	}
}

// remediate applies the configured policy to one pressured host.
func (c *Cluster) remediate(h *Host, now sim.Time) {
	switch c.Cfg.Remediation {
	case RemedyNone:
		return
	case RemedyReballoon:
		// MOM is already running on every host (started at boot for this
		// policy); the intervention counter records that pressure crossed
		// the line while it was in charge.
		c.Met.Inc(metrics.ClusterReballoons)
	case RemedyMigrate:
		victim := c.hottestGuest(h)
		if victim == nil {
			return
		}
		dest := c.pickHost(victim.MemPages, h)
		if dest == nil {
			// No host has commit headroom: the migration is refused at the
			// scheduling layer, before any admission check at the target.
			c.Met.Inc(metrics.ClusterMigrateRefused)
			h.lastRemedy, h.remedied = now, true
			return
		}
		// Reserve the destination commit immediately — the in-flight
		// window double-counts the guest on source and destination so a
		// second decision cannot oversubscribe the target.
		dest.commit += victim.MemPages
		victim.dest = dest
	case RemedyKill:
		victim := c.hottestGuest(h)
		if victim == nil {
			return
		}
		victim.killReq = true
	}
	h.lastRemedy, h.remedied = now, true
}

// hottestGuest picks the deterministic remediation victim on a host: the
// guest with the most host-resident pages (the one whose eviction or
// relocation relieves the most pressure), ties broken by lowest index.
// Guests already marked for migration or death are skipped.
func (c *Cluster) hottestGuest(h *Host) *Guest {
	var victim *Guest
	for _, g := range c.Guests {
		if g.host != h || g.vm == nil || g.killed || g.done || g.killReq || g.dest != nil {
			continue
		}
		if victim == nil || g.vm.CG.Resident() > victim.vm.CG.Resident() {
			victim = g
		}
	}
	return victim
}

// startMOM launches the MOM balloon controller on every host (the
// reballoon remediation policy, and any balloon scheme).
func (c *Cluster) startMOM() {
	for _, h := range c.Hosts {
		h.mom = balloon.New(h.M, balloon.Config{})
		h.mom.Start()
	}
}
