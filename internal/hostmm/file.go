package hostmm

import (
	"vswapsim/internal/disk"
)

// File is a host-visible file backed by a contiguous disk region: a guest
// disk image, or the QEMU executable on the host root filesystem. Named
// pages reference file blocks through BlockRefs; the File tracks which
// pages map each block so that writes through ordinary I/O channels can
// invalidate stale mappings (the paper's new open-flag semantics, §4.1
// "Data Consistency").
type File struct {
	Name   string
	Region disk.Region

	// InvalidateOnWrite mirrors the paper's new open(2) flag: explicit
	// writes to blocks with live private mappings must break those
	// mappings (after rescuing their old content) before the write lands.
	InvalidateOnWrite bool

	// mappings holds, per block, the chain head of pages mapping it — a
	// lazily allocated two-level table indexed by block number. Disk images
	// are large (millions of blocks) but mappings cluster, so a flat array
	// would waste memory while a map costs a hash per fault-path probe;
	// 512-entry chunks keep probes at two indexed loads.
	mappings []*mapChunk
	// mapped counts the blocks that ever received a mapping. It mirrors
	// the historical owner-map semantics (entries were never deleted), which
	// fig13's "tracked" column depends on: a block whose chain empties still
	// counts.
	mapped int

	// readahead state (host-side, per file, Linux-style window doubling).
	raNextBlock int64 // block that would continue the current stream
	raWindow    int   // current window in pages
}

const (
	fileChunkBits = 9
	fileChunkSize = 1 << fileChunkBits
	fileChunkMask = fileChunkSize - 1
)

type mapChunk struct {
	head [fileChunkSize]*Page
	// ever marks blocks that ever held a mapping (see File.mapped).
	ever [fileChunkSize / 64]uint64
}

// NewFile returns a file over the region.
func NewFile(name string, region disk.Region) *File {
	return &File{
		Name:     name,
		Region:   region,
		mappings: make([]*mapChunk, (region.Blocks+fileChunkMask)>>fileChunkBits),
	}
}

// head returns the chain head for block, or nil.
func (f *File) head(block int64) *Page {
	c := f.mappings[block>>fileChunkBits]
	if c == nil {
		return nil
	}
	return c.head[block&fileChunkMask]
}

// headSlot returns a pointer to the chain-head slot for block, allocating
// its chunk if needed.
func (f *File) headSlot(block int64) **Page {
	ci := block >> fileChunkBits
	c := f.mappings[ci]
	if c == nil {
		c = new(mapChunk)
		f.mappings[ci] = c
	}
	return &c.head[block&fileChunkMask]
}

// Blocks reports the file length in 4 KiB blocks.
func (f *File) Blocks() int64 { return f.Region.Blocks }

// Phys translates a file block to a physical disk block.
func (f *File) Phys(block int64) int64 { return f.Region.Phys(block) }

// AddMapping records that pg (whose Backing must point into f) maps its
// backing block.
func (f *File) AddMapping(pg *Page) {
	if pg.Backing.File != f {
		panic("hostmm: AddMapping with foreign backing")
	}
	b := pg.Backing.Block
	c := f.mappings[b>>fileChunkBits]
	if c == nil {
		c = new(mapChunk)
		f.mappings[b>>fileChunkBits] = c
	}
	idx := b & fileChunkMask
	if c.ever[idx>>6]&(1<<(idx&63)) == 0 {
		c.ever[idx>>6] |= 1 << (idx & 63)
		f.mapped++
	}
	pg.nextMapping = c.head[idx]
	c.head[idx] = pg
}

// RemoveMapping unlinks pg from its backing block's chain.
func (f *File) RemoveMapping(pg *Page) {
	slot := f.headSlot(pg.Backing.Block)
	cur := *slot
	if cur == pg {
		*slot = pg.nextMapping
		pg.nextMapping = nil
		return
	}
	for cur != nil && cur.nextMapping != pg {
		cur = cur.nextMapping
	}
	if cur == nil {
		panic("hostmm: RemoveMapping of unmapped page")
	}
	cur.nextMapping = pg.nextMapping
	pg.nextMapping = nil
}

// MappingAt returns the most recent page mapping the block, or nil.
func (f *File) MappingAt(block int64) *Page { return f.head(block) }

// EachMapping calls fn for every page currently mapping the block.
func (f *File) EachMapping(block int64, fn func(*Page)) {
	for pg := f.head(block); pg != nil; {
		next := pg.nextMapping // fn may unlink pg
		fn(pg)
		pg = next
	}
}

// CachedResident reports whether some resident page holds the block's
// content (i.e. the block is effectively in the host page cache).
func (f *File) CachedResident(block int64) bool {
	for pg := f.head(block); pg != nil; pg = pg.nextMapping {
		if pg.State == ResidentFile {
			return true
		}
	}
	return false
}

// MappedBlocks reports the number of blocks that ever held a mapping.
func (f *File) MappedBlocks() int { return f.mapped }

// readaheadWindow updates the per-file sequential-readahead state for a
// demand access at `block` and returns how many blocks (including the
// demanded one) to read. Sequential streams double the window up to max.
func (f *File) readaheadWindow(block int64, min, max int) int {
	if block == f.raNextBlock && f.raWindow > 0 {
		f.raWindow *= 2
		if f.raWindow > max {
			f.raWindow = max
		}
	} else {
		f.raWindow = min
	}
	win := f.raWindow
	if rest := f.Blocks() - block; int64(win) > rest {
		win = int(rest)
	}
	if win < 1 {
		win = 1
	}
	f.raNextBlock = block + int64(win)
	return win
}
