package hostmm

import (
	"testing"
	"testing/quick"

	"vswapsim/internal/disk"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// TestRandomOpsPreserveInvariants drives a random mix of MM operations and
// audits the manager's bookkeeping afterwards.
func TestRandomOpsPreserveInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		env := sim.NewEnv(seed)
		met := metrics.NewSet()
		model := disk.Constellation7200()
		dev := disk.NewDevice(env, model, met)
		layout := disk.NewLayout(model.TotalBlocks)
		img := NewFile("img", layout.Reserve("img", 1<<16))
		swap := NewSwapArea(layout.Reserve("swap", 1<<14))
		pool := mem.NewFramePool(96)
		mgr := NewManager(env, met, dev, pool, swap, Config{})
		cgA := mgr.NewCgroup("a", 48)
		cgB := mgr.NewCgroup("b", 0) // pool-bound

		const nPages = 256
		pages := make([]*Page, nPages)
		for i := range pages {
			cg := cgA
			if i%2 == 1 {
				cg = cgB
			}
			if i%5 == 0 {
				pages[i] = mgr.NewFilePage(cg, i, BlockRef{File: img, Block: int64(i)})
			} else {
				pages[i] = mgr.NewPage(cg, i)
			}
		}

		env.Go("stress", func(p *sim.Proc) {
			rng := env.Rand()
			for op := 0; op < 4000; op++ {
				pg := pages[rng.Intn(nPages)]
				switch pg.State {
				case Untouched, Ballooned:
					if rng.Intn(4) == 0 && pg.State == Ballooned {
						mgr.BalloonReturn(pg)
					} else {
						mgr.FirstTouch(p, pg, GuestCtx)
					}
				case ResidentAnon:
					switch rng.Intn(5) {
					case 0:
						mgr.MinorMap(p, pg, GuestCtx)
					case 1:
						mgr.BalloonTake(pg)
					case 2:
						mgr.AdoptAsNamed(pg, BlockRef{File: img, Block: int64(rng.Intn(1 << 10))})
					default:
						mgr.Touch(pg)
					}
				case ResidentFile:
					switch rng.Intn(4) {
					case 0:
						mgr.COWBreak(p, pg, GuestCtx)
					case 1:
						mgr.MinorMap(p, pg, GuestCtx)
					default:
						mgr.Touch(pg)
					}
				case SwappedOut:
					switch rng.Intn(4) {
					case 0:
						mgr.BalloonTake(pg)
					case 1:
						mgr.MapOver(p, pg, BlockRef{File: img, Block: int64(rng.Intn(1 << 10))})
					default:
						mgr.SwapIn(p, pg, GuestCtx)
						mgr.MinorMap(p, pg, GuestCtx)
					}
				case FileNonResident:
					switch rng.Intn(3) {
					case 0:
						mgr.BalloonTake(pg)
					default:
						mgr.FileFaultIn(p, pg, GuestCtx)
						mgr.MinorMap(p, pg, GuestCtx)
					}
				}
			}
		})
		env.Run()

		if err := mgr.Audit(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestConcurrentFaultStorm hammers the same small page set from many
// processes to exercise fault locking, prefetch races and pinning.
func TestConcurrentFaultStorm(t *testing.T) {
	env := sim.NewEnv(99)
	met := metrics.NewSet()
	model := disk.Constellation7200()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	swap := NewSwapArea(layout.Reserve("swap", 1<<14))
	pool := mem.NewFramePool(1 << 12)
	mgr := NewManager(env, met, dev, pool, swap, Config{})
	cg := mgr.NewCgroup("vm", 64)

	const nPages = 512
	pages := make([]*Page, nPages)
	for i := range pages {
		pages[i] = mgr.NewPage(cg, i)
	}

	for w := 0; w < 8; w++ {
		w := w
		env.Go("storm", func(p *sim.Proc) {
			rng := sim.NewRNG(uint64(w) + 1)
			for op := 0; op < 1500; op++ {
				pg := pages[rng.Intn(nPages)]
				switch pg.State {
				case Untouched:
					mgr.FirstTouch(p, pg, GuestCtx)
				case ResidentAnon:
					mgr.MinorMap(p, pg, GuestCtx)
				case SwappedOut:
					mgr.SwapIn(p, pg, GuestCtx)
					if pg.State.Resident() {
						mgr.MinorMap(p, pg, GuestCtx)
					}
				}
			}
		})
	}
	env.Run()
	if err := mgr.Audit(); err != nil {
		t.Fatal(err)
	}
	if cg.Resident() > 64 {
		t.Fatalf("limit exceeded: %d", cg.Resident())
	}
}

// TestSwapAreaAllocFreeProperty checks allocator consistency under random
// alloc/free sequences.
func TestSwapAreaAllocFreeProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		env := sim.NewEnv(seed)
		_ = env
		layout := disk.NewLayout(1 << 20)
		s := NewSwapArea(layout.Reserve("swap", 600))
		met := metrics.NewSet()
		dev := disk.NewDevice(sim.NewEnv(1), disk.Constellation7200(), met)
		pool := mem.NewFramePool(8)
		mgr := NewManager(sim.NewEnv(2), met, dev, pool, s, Config{})
		cg := mgr.NewCgroup("x", 0)
		pg := mgr.NewPage(cg, 0)

		rng := sim.NewRNG(seed)
		var held []int64
		for op := 0; op < int(opsRaw)+50; op++ {
			if len(held) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(held))
				s.Free(held[i])
				held = append(held[:i], held[i+1:]...)
			} else {
				slot := s.Alloc(pg)
				if slot < 0 {
					continue
				}
				for _, h := range held {
					if h == slot {
						return false // double allocation
					}
				}
				held = append(held, slot)
			}
		}
		return s.InUse() == len(held)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
