package disk

import (
	"fmt"

	"vswapsim/internal/fault"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Kind distinguishes reads from writes for accounting.
type Kind int

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Device is a single physical drive with a first-come-first-served queue.
// Requests are timed analytically: because service order equals submission
// order, the completion time of a request is fully determined at submission
// (max(now, device-free) plus position-dependent service time), which keeps
// the simulation deterministic and fast.
type Device struct {
	env     *sim.Env
	model   LatencyModel
	met     *metrics.Set
	inj     *fault.Injector // nil unless fault injection is on
	headPos int64           // next sequential block after the last transfer
	freeAt  sim.Time        // when the device finishes its queued work
}

// Injected-error retry policy: the firmware/driver pair retries a failed
// transfer with exponential backoff up to errMaxRetries times; exhaustion
// is counted and the request then completes anyway — the analytic queue
// model has no error propagation, so exhaustion models recovery at the
// controller level, visible only as latency and counters.
const (
	errMaxRetries   = 5
	errRetryBackoff = 500 * sim.Microsecond
)

// SetInjector attaches a fault injector to the device (nil turns
// injection off). Injected read/write errors extend the request's service
// time by backoff-plus-retransfer per retry; injected latency spikes
// extend it by the plan's spike duration. Both therefore show up in the
// existing hist.disk.service.ns distribution.
func (d *Device) SetInjector(in *fault.Injector) { d.inj = in }

// NewDevice returns a drive using the given latency model. Metrics may be
// nil to disable accounting.
func NewDevice(env *sim.Env, model LatencyModel, met *metrics.Set) *Device {
	if met == nil {
		met = metrics.NewSet()
	}
	return &Device{env: env, model: model, met: met}
}

// Submit enqueues a transfer of nblocks starting at block `start` and
// returns its completion time without blocking. Use it for asynchronous
// I/O such as readahead.
func (d *Device) Submit(kind Kind, start int64, nblocks int) sim.Time {
	if nblocks <= 0 {
		panic(fmt.Sprintf("disk: submit %d blocks", nblocks))
	}
	if start < 0 || start+int64(nblocks) > d.model.TotalBlocks {
		panic(fmt.Sprintf("disk: access [%d,+%d) out of range", start, nblocks))
	}
	arrive := d.env.Now()
	begin := d.freeAt
	if arrive > begin {
		begin = arrive
	}
	svc := d.model.Service(d.headPos, start, nblocks)
	if d.inj != nil {
		svc += d.inj.DiskDelay()
		for retries := 0; d.inj.DiskError(kind == Write); {
			if retries == errMaxRetries {
				d.met.Inc(metrics.FaultDiskExhausted)
				break
			}
			backoff := errRetryBackoff << retries
			retries++
			// Backoff, then re-transfer from the same position.
			svc += backoff + d.model.Service(start, start, nblocks)
			d.met.Inc(metrics.FaultDiskRetries)
			d.met.Histogram(metrics.HistFaultBackoff).Observe(backoff)
		}
	}
	done := begin.Add(svc)
	d.freeAt = done
	d.headPos = start + int64(nblocks)

	d.met.Inc(metrics.DiskOps)
	d.met.Add(metrics.DiskBusy, int64(svc))
	d.met.Histogram(metrics.HistDiskQueue).Observe(begin.Sub(arrive))
	d.met.Histogram(metrics.HistDiskService).Observe(svc)
	sectors := int64(nblocks) * SectorsPerBlock
	if kind == Read {
		d.met.Add(metrics.DiskReadSectors, sectors)
	} else {
		d.met.Add(metrics.DiskWriteSectors, sectors)
	}
	return done
}

// Access performs a blocking transfer on behalf of process p: it submits
// the request and sleeps until the device completes it.
func (d *Device) Access(p *sim.Proc, kind Kind, start int64, nblocks int) {
	d.WaitFor(p, d.Submit(kind, start, nblocks))
}

// WaitFor blocks p until the completion time of a previously submitted
// request, charging the stall to the disk-wait phase. Callers that sleep on
// a Submit result should go through here so "time blocked on the disk" is
// accounted in one place.
func (d *Device) WaitFor(p *sim.Proc, done sim.Time) {
	if wait := done.Sub(d.env.Now()); wait > 0 {
		d.met.Add(metrics.TimeDiskWait, int64(wait))
	}
	p.SleepUntil(done)
}

// FreeAt reports when the device drains its current queue.
func (d *Device) FreeAt() sim.Time { return d.freeAt }

// HeadPos reports the block following the last transferred block.
func (d *Device) HeadPos() int64 { return d.headPos }

// Metrics returns the accounting set the device writes to.
func (d *Device) Metrics() *metrics.Set { return d.met }
