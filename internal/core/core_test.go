package core

import (
	"testing"

	"vswapsim/internal/disk"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

type rig struct {
	env  *sim.Env
	met  *metrics.Set
	mm   *hostmm.Manager
	cg   *hostmm.Cgroup
	img  *hostmm.File
	pv   *Preventer
	mp   *Mapper
	swap *hostmm.SwapArea
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	model := disk.Constellation7200()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	img := hostmm.NewFile("img", layout.Reserve("img", 1<<16))
	swap := hostmm.NewSwapArea(layout.Reserve("swap", 1<<14))
	pool := mem.NewFramePool(1 << 16)
	mm := hostmm.NewManager(env, met, dev, pool, swap, hostmm.Config{})
	cg := mm.NewCgroup("vm0", 0)
	return &rig{
		env:  env,
		met:  met,
		mm:   mm,
		cg:   cg,
		img:  img,
		swap: swap,
		pv:   NewPreventer(mm, met, env, PreventerConfig{}),
		mp:   NewMapper(mm, met, img, DefaultMapperConfig()),
	}
}

// swappedPage fabricates a swapped-out anonymous page.
func (r *rig) swappedPage(t *testing.T, id int) *hostmm.Page {
	t.Helper()
	pg := r.mm.NewPage(r.cg, id)
	pg.State = hostmm.SwappedOut
	slot := r.swap.Alloc(pg)
	if slot < 0 {
		t.Fatal("swap full")
	}
	pg.SwapSlot = slot
	return pg
}

func (r *rig) run(fn func(p *sim.Proc)) {
	r.env.Go("test", fn)
	r.env.Run()
}

func TestPreventerRepShortCircuit(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		if !r.pv.HandleWriteFault(p, pg, 0, mem.PageSize, true) {
			t.Fatal("REP write not absorbed")
		}
	})
	if pg.State != hostmm.ResidentAnon || !pg.EPT {
		t.Fatalf("state=%v", pg.State)
	}
	if r.met.Get(metrics.PreventerRemaps) != 1 {
		t.Fatal("remap not counted")
	}
	if r.met.Get(metrics.SwapReadSectors) != 0 {
		t.Fatal("REP short-circuit must not read")
	}
}

func TestPreventerSequentialFillRemaps(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		if !r.pv.HandleWriteFault(p, pg, 0, 256, false) {
			t.Fatal("first sequential write refused")
		}
		for off := 256; off < mem.PageSize; off += 256 {
			r.pv.OnAccess(p, pg, true, off, 256, false)
		}
	})
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("state=%v after full sequential fill", pg.State)
	}
	if r.met.Get(metrics.PreventerRemaps) != 1 {
		t.Fatal("no remap")
	}
	if r.met.Get(metrics.SwapReadSectors) != 0 {
		t.Fatal("sequential fill must not read old content")
	}
	if r.pv.Active() != 0 {
		t.Fatal("active count not released")
	}
}

func TestPreventerNonSequentialMerges(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, pg, 0, 256, false)
		r.pv.OnAccess(p, pg, true, 2048, 256, false) // hole: merge
	})
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("state=%v", pg.State)
	}
	if r.met.Get(metrics.PreventerMerges) != 1 {
		t.Fatal("no merge")
	}
	if r.met.Get(metrics.SwapReadSectors) == 0 {
		t.Fatal("merge must read old content")
	}
}

func TestPreventerDeadlineForcesMerge(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, pg, 0, 256, false)
		p.Sleep(10 * sim.Millisecond) // > 1 ms deadline
	})
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("state=%v after deadline", pg.State)
	}
	if r.met.Get(metrics.PreventerMerges) != 1 {
		t.Fatal("deadline did not merge")
	}
}

func TestPreventerMidPageFirstWriteRefused(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		if r.pv.HandleWriteFault(p, pg, 1000, 64, false) {
			t.Fatal("mid-page first write should not start emulation")
		}
	})
	if pg.State != hostmm.SwappedOut {
		t.Fatalf("state=%v", pg.State)
	}
}

func TestPreventerConcurrencyCap(t *testing.T) {
	r := newRig(t)
	pages := make([]*hostmm.Page, 40)
	for i := range pages {
		pages[i] = r.swappedPage(t, i)
	}
	r.run(func(p *sim.Proc) {
		accepted := 0
		for _, pg := range pages {
			if r.pv.HandleWriteFault(p, pg, 0, 64, false) {
				accepted++
			}
		}
		if accepted != 32 {
			t.Fatalf("accepted %d, want 32 (the cap)", accepted)
		}
		if r.pv.Active() != 32 {
			t.Fatalf("active = %d", r.pv.Active())
		}
		// Deadline passes: all merge, cap frees up.
		p.Sleep(20 * sim.Millisecond)
		if r.pv.Active() != 0 {
			t.Fatalf("active = %d after deadline", r.pv.Active())
		}
	})
}

func TestPreventerReadFromBufferEmulated(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, pg, 0, 1024, false)
		reads := r.met.Get(metrics.SwapReadSectors)
		r.pv.OnAccess(p, pg, false, 0, 512, false) // covered read
		if r.met.Get(metrics.SwapReadSectors) != reads {
			t.Fatal("covered read triggered I/O")
		}
		if pg.State != hostmm.Emulated {
			t.Fatal("covered read ended emulation")
		}
	})
}

func TestPreventerReadBeyondBufferBlocksUntilMerge(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.run(func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, pg, 0, 1024, false)
		start := p.Now()
		r.pv.OnAccess(p, pg, false, 2048, 64, false) // uncovered read
		if pg.State != hostmm.ResidentAnon {
			t.Fatalf("state=%v", pg.State)
		}
		if p.Now() == start {
			t.Fatal("uncovered read did not wait for the merge I/O")
		}
	})
}

func TestPreventerForceFinalizeKeepsOrDropsContent(t *testing.T) {
	r := newRig(t)
	keep := r.swappedPage(t, 0)
	drop := r.swappedPage(t, 1)
	r.run(func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, keep, 0, 64, false)
		r.pv.HandleWriteFault(p, drop, 0, 64, false)
		before := r.met.Get(metrics.SwapReadSectors)
		r.pv.ForceFinalize(p, drop, false)
		if r.met.Get(metrics.SwapReadSectors) != before {
			t.Error("drop path must not read")
		}
		r.pv.ForceFinalize(p, keep, true)
		if r.met.Get(metrics.SwapReadSectors) == before {
			t.Error("keep path must read old content")
		}
	})
	if keep.State != hostmm.ResidentAnon || drop.State != hostmm.ResidentAnon {
		t.Fatal("pages not finalized")
	}
}

func TestPreventerEmulatedWorksForNamedPages(t *testing.T) {
	r := newRig(t)
	pg := r.mm.NewFilePage(r.cg, 0, hostmm.BlockRef{File: r.img, Block: 5})
	r.run(func(p *sim.Proc) {
		if !r.pv.HandleWriteFault(p, pg, 0, mem.PageSize, true) {
			t.Fatal("full write to named page refused")
		}
	})
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("state=%v", pg.State)
	}
	if r.img.MappingAt(5) != nil {
		t.Fatal("mapping not removed on remap")
	}
}

func TestMapperOnDiskReadMapsPages(t *testing.T) {
	r := newRig(t)
	pages := make([]*hostmm.Page, 8)
	for i := range pages {
		pages[i] = r.mm.NewPage(r.cg, i)
	}
	r.run(func(p *sim.Proc) {
		r.mp.OnDiskRead(p, pages, 100)
	})
	for i, pg := range pages {
		if pg.State != hostmm.ResidentFile || !pg.EPT {
			t.Fatalf("page %d: state=%v ept=%v", i, pg.State, pg.EPT)
		}
		if pg.Backing.Block != int64(100+i) {
			t.Fatalf("page %d backed by block %d", i, pg.Backing.Block)
		}
	}
	if r.mp.TrackedPages() != 8 {
		t.Fatalf("tracked = %d", r.mp.TrackedPages())
	}
}

func TestMapperAfterDiskWriteAdopts(t *testing.T) {
	r := newRig(t)
	pg := r.mm.NewPage(r.cg, 0)
	r.run(func(p *sim.Proc) {
		r.mm.FirstTouch(p, pg, hostmm.GuestCtx)
		r.mp.AfterDiskWrite(p, []*hostmm.Page{pg}, 42)
	})
	if pg.State != hostmm.ResidentFile || pg.Backing.Block != 42 {
		t.Fatalf("state=%v block=%d", pg.State, pg.Backing.Block)
	}
}

func TestMapperAfterDiskWriteSkipsAlreadyMapped(t *testing.T) {
	r := newRig(t)
	pg := r.mm.NewPage(r.cg, 0)
	r.run(func(p *sim.Proc) {
		r.mm.FirstTouch(p, pg, hostmm.GuestCtx)
		r.mp.AfterDiskWrite(p, []*hostmm.Page{pg}, 42)
		est := r.met.Get(metrics.MapperEstablish)
		r.mp.AfterDiskWrite(p, []*hostmm.Page{pg}, 42) // same block again
		if r.met.Get(metrics.MapperEstablish) != est {
			t.Error("re-established an existing identical mapping")
		}
	})
}

func TestMapperInvalidateDisabledAblation(t *testing.T) {
	r := newRig(t)
	r.mp.Cfg.InvalidateDisabled = true
	pg := r.mm.NewFilePage(r.cg, 0, hostmm.BlockRef{File: r.img, Block: 7})
	r.run(func(p *sim.Proc) {
		r.mp.BeforeDiskWrite(p, 7, 1)
	})
	if pg.State != hostmm.FileNonResident {
		t.Fatal("ablation should skip invalidation (demonstrating the inconsistency)")
	}
	if r.met.Get(metrics.MapperInvalidate) != 0 {
		t.Fatal("counted invalidation while disabled")
	}
}

func TestPreventerDefaults(t *testing.T) {
	pv := NewPreventer(nil, metrics.NewSet(), sim.NewEnv(1), PreventerConfig{})
	if pv.Cfg.Deadline != sim.Millisecond {
		t.Fatalf("deadline = %v", pv.Cfg.Deadline)
	}
	if pv.Cfg.MaxConcurrent != 32 {
		t.Fatalf("max = %d", pv.Cfg.MaxConcurrent)
	}
}
