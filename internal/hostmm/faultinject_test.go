package hostmm

import (
	"testing"

	"vswapsim/internal/fault"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// inject attaches a fault injector built from spec to the rig's manager.
func (r *rig) inject(spec string) {
	r.mgr.Inj = fault.New(fault.MustParse(spec), sim.DeriveSeed(1, "fault-injector"), r.met)
}

// evictOne drives reclaim until pg leaves residency.
func (r *rig) evictOne(t *testing.T, p *sim.Proc, pg *Page) {
	t.Helper()
	for i := 0; pg.State == ResidentAnon; i++ {
		if i > 8 {
			t.Fatalf("page stuck %s after %d reclaim passes", pg.State, i)
		}
		r.mgr.ReclaimForTest(p, r.cg, 1)
	}
	if pg.State != SwappedOut {
		t.Fatalf("page evicted to %s, want SwappedOut", pg.State)
	}
}

// TestCleanAnonLostBackingIsRewritten is the regression test for the
// eviction guard: a clean resident-anon page whose swap-cache association
// has been lost (the slot was poisoned and dropped) holds the only copy of
// its content, so evicting it must allocate a fresh slot and write — not
// transition to SwappedOut with no backing store.
func TestCleanAnonLostBackingIsRewritten(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewPage(r.cg, 0)
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
		r.evictOne(t, p, pg)
		r.mgr.SwapIn(p, pg, HostCtx)
		if pg.State != ResidentAnon || pg.Dirty {
			t.Fatalf("after swap-in: state=%s dirty=%v, want clean ResidentAnon", pg.State, pg.Dirty)
		}
		if !r.mgr.swapCacheValid(pg) {
			t.Fatal("after swap-in: no swap-cache backing")
		}

		// Sever the association the way slot poisoning does, but leave the
		// page clean — the regression scenario is a path that drops the slot
		// and forgets to re-dirty, so the eviction guard is the only defense.
		r.swap.Free(pg.SwapSlot)
		pg.SwapSlot = -1

		writesBefore := r.met.Get(metrics.SwapWriteOps)
		r.evictOne(t, p, pg)
		if pg.SwapSlot < 0 {
			t.Fatal("evicted without a slot: content silently lost")
		}
		if r.swap.Owner(pg.SwapSlot) != pg {
			t.Fatal("evicted to a slot owned by someone else")
		}
		if r.met.Get(metrics.SwapWriteOps) == writesBefore {
			t.Fatal("eviction issued no swap write for the only copy")
		}
	})
	if err := r.mgr.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestSwapInPoisonDegradesToPlainSwap checks the transient-failure
// exhaustion path end to end, repeatedly: every swap-in poisons the slot
// (rate-1 plan), each poisoning drops the slot and re-dirties the page, and
// each subsequent eviction therefore writes a fresh copy. The cycle is
// idempotent — state and audit stay consistent no matter how many times it
// repeats.
func TestSwapInPoisonDegradesToPlainSwap(t *testing.T) {
	r := newRig(t, 1000, 0)
	r.inject("swapin-fail:1")
	pg := r.mgr.NewPage(r.cg, 0)
	const cycles = 3
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
		for c := 0; c < cycles; c++ {
			r.evictOne(t, p, pg)
			if err := r.mgr.Audit(); err != nil {
				t.Fatalf("cycle %d, after eviction: %v", c, err)
			}
			r.mgr.SwapIn(p, pg, HostCtx)
			if pg.State != ResidentAnon {
				t.Fatalf("cycle %d: swap-in left page %s", c, pg.State)
			}
			if !pg.Dirty || pg.SwapSlot != -1 {
				t.Fatalf("cycle %d: poisoned page dirty=%v slot=%d, want dirty, slotless",
					c, pg.Dirty, pg.SwapSlot)
			}
			if err := r.mgr.Audit(); err != nil {
				t.Fatalf("cycle %d, after poisoned swap-in: %v", c, err)
			}
		}
	})
	if got := r.met.Get(metrics.FaultSwapInPoisoned); got != cycles {
		t.Errorf("%s = %d, want %d", metrics.FaultSwapInPoisoned, got, cycles)
	}
	if r.met.Get(metrics.FaultSwapInRetries) == 0 {
		t.Error("no retries recorded before poisoning")
	}
	// Every eviction after the first re-wrote the only copy.
	if got := r.met.Get(metrics.HostSwapOuts); got != cycles {
		t.Errorf("%s = %d, want %d", metrics.HostSwapOuts, got, cycles)
	}
}

// TestSlotRefusalRotatesVictim: with the allocator refusing every request,
// reclaim rotates dirty victims instead of evicting them slotless, makes no
// progress, and leaves fully consistent state.
func TestSlotRefusalRotatesVictim(t *testing.T) {
	r := newRig(t, 1000, 0)
	r.inject("slot-exhaust:1")
	pg := r.mgr.NewPage(r.cg, 0)
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
		freed := r.mgr.ReclaimForTest(p, r.cg, 1)
		if freed != 0 {
			t.Fatalf("reclaim freed %d pages with every slot allocation refused", freed)
		}
	})
	if pg.State != ResidentAnon {
		t.Fatalf("page left %s, want ResidentAnon", pg.State)
	}
	if r.met.Get(metrics.FaultSlotRefusals) == 0 {
		t.Error("no slot refusals recorded")
	}
	if err := r.mgr.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestAuditCatchesLostBacking: the extended structural audit must flag a
// clean resident-anon page without swap-cache backing (the corruption the
// eviction guard defends against) when it is manufactured directly.
func TestAuditCatchesLostBacking(t *testing.T) {
	r := newRig(t, 1000, 0)
	pg := r.mgr.NewPage(r.cg, 0)
	r.run(t, func(p *sim.Proc) {
		r.mgr.FirstTouch(p, pg, GuestCtx)
		r.evictOne(t, p, pg)
		r.mgr.SwapIn(p, pg, HostCtx)
	})
	if err := r.mgr.Audit(); err != nil {
		t.Fatalf("audit on clean state: %v", err)
	}
	r.swap.Free(pg.SwapSlot)
	pg.SwapSlot = -1
	if err := r.mgr.Audit(); err == nil {
		t.Fatal("audit missed clean anon page with no swap-cache backing")
	}
}
