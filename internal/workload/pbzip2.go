package workload

import (
	"fmt"

	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// Pbzip2Config parameterizes the parallel bzip2 compression benchmark
// (paper §5.1, Fig. 5, Fig. 11): 8 threads compress the Linux kernel
// source, streaming it through the page cache while keeping per-thread
// working buffers.
type Pbzip2Config struct {
	// InputMB is the input size (a Linux source tree tarball, ~450 MB).
	InputMB int
	// Threads is the compression thread count (paper: 8 on 1 VCPU).
	Threads int
	// ChunkKB is the work unit each thread claims (pbzip2 default 900 KB).
	ChunkKB int
	// CPUPerBlock is compression cost per 4 KiB input block.
	CPUPerBlock sim.Duration
	// WorkingPages is each thread's reusable buffer (sort arrays etc.).
	WorkingPages int
	// OutputRatio is output bytes per input byte (compressed size).
	OutputRatio float64
}

func (c Pbzip2Config) withDefaults() Pbzip2Config {
	if c.InputMB == 0 {
		c.InputMB = 448
	}
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.ChunkKB == 0 {
		c.ChunkKB = 900
	}
	if c.CPUPerBlock == 0 {
		c.CPUPerBlock = 850 * sim.Microsecond // ~5 MB/s aggregate on 1 VCPU
	}
	if c.WorkingPages == 0 {
		// bzip2 -9 block sorting plus queued chunks: ~20 MB per thread,
		// giving the ~200 MB process footprint implied by the paper's
		// observation that the guest kills pbzip2 below 240 MB (Fig. 5).
		c.WorkingPages = 5120
	}
	if c.OutputRatio == 0 {
		c.OutputRatio = 0.22 // source code compresses well
	}
	return c
}

// Pbzip2 launches the compression benchmark on vm.
func Pbzip2(vm *hyper.VM, cfg Pbzip2Config) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("pbzip2")
	return launch(vm, "pbzip2", pr, func(t *guest.Thread, j *Job) {
		input := vm.OS.FS.Create("pbzip2.in", int64(cfg.InputMB)<<20)
		output := vm.OS.FS.Create("pbzip2.out", int64(float64(cfg.InputMB)*cfg.OutputRatio*1.2)<<20)

		chunk := int64(cfg.ChunkKB) << 10
		nChunks := (input.SizeBytes() + chunk - 1) / chunk
		next := int64(0) // work queue cursor (single assignment per chunk)
		outCursor := int64(0)

		// Per-thread working buffers are carved from one arena process.
		base := pr.Reserve(cfg.Threads * cfg.WorkingPages)
		done := newBarrier(vm.M.Env, cfg.Threads)
		for w := 0; w < cfg.Threads; w++ {
			w := w
			vm.OS.Go(fmt.Sprintf("pbzip2-w%d", w), pr, func(wt *guest.Thread) {
				defer done.arrive()
				buf := base + w*cfg.WorkingPages
				cursor := 0 // rolls across chunks: the whole buffer stays hot
				for !wt.ProcKilled() {
					if next >= nChunks {
						return
					}
					c := next
					next++
					off := c * chunk
					n := chunk
					if off+n > input.SizeBytes() {
						n = input.SizeBytes() - off
					}
					wt.ReadFile(input, off, n)
					// Block-sort in the working buffer: every buffer page
					// is rewritten per chunk (whole-page stores), touching
					// the thread's anon working set.
					blocks := int(n / 4096)
					for i := 0; i < blocks && !wt.ProcKilled(); i++ {
						wt.OverwriteAnon(pr, buf+cursor, true)
						cursor = (cursor + 1) % cfg.WorkingPages
						wt.Compute(cfg.CPUPerBlock)
					}
					// Write the compressed chunk.
					outN := int64(float64(n) * cfg.OutputRatio)
					if outCursor+outN > output.SizeBytes() {
						outN = output.SizeBytes() - outCursor
					}
					if outN > 0 {
						wt.WriteFile(output, outCursor, outN)
						outCursor += outN
					}
				}
			})
		}
		done.wait(t.P)
		if !t.ProcKilled() {
			t.Sync(output)
		}
	})
}
