package core

import (
	"testing"

	"vswapsim/internal/hostmm"
	"vswapsim/internal/sim"
)

// TestPreventerConcurrentWritersAndReaders drives one emulated page from
// several processes at once: a sequential writer, a reader of covered
// bytes, and a reader of uncovered bytes that must block until the merge.
func TestPreventerConcurrentWritersAndReaders(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	var readerDone sim.Time
	r.env.Go("writer", func(p *sim.Proc) {
		if !r.pv.HandleWriteFault(p, pg, 0, 512, false) {
			t.Error("emulation refused")
			return
		}
		for off := 512; off < 2048; off += 512 {
			p.Sleep(50 * sim.Microsecond)
			if pg.State != hostmm.Emulated {
				return
			}
			r.pv.OnAccess(p, pg, true, off, 512, false)
		}
	})
	r.env.Go("covered-reader", func(p *sim.Proc) {
		p.Sleep(120 * sim.Microsecond)
		if pg.State == hostmm.Emulated {
			r.pv.OnAccess(p, pg, false, 0, 256, false)
			if pg.State != hostmm.Emulated {
				t.Error("covered read ended emulation")
			}
		}
	})
	r.env.Go("uncovered-reader", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond)
		if pg.State == hostmm.Emulated {
			r.pv.OnAccess(p, pg, false, 3000, 64, false)
		}
		readerDone = p.Now()
		if pg.State == hostmm.Emulated {
			t.Error("uncovered reader resumed while still emulated")
		}
	})
	r.env.Run()
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("final state %v", pg.State)
	}
	if readerDone == 0 {
		t.Fatal("uncovered reader never finished")
	}
}

// TestPreventerDoubleForceFinalize checks idempotence when two paths force
// the same page.
func TestPreventerDoubleForceFinalize(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.env.Go("a", func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, pg, 0, 64, false)
	})
	r.env.Go("b", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		r.pv.ForceFinalize(p, pg, true)
	})
	r.env.Go("c", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		if pg.State == hostmm.Emulated {
			r.pv.ForceFinalize(p, pg, true)
		}
	})
	r.env.Run()
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("state %v", pg.State)
	}
	if r.pv.Active() != 0 {
		t.Fatalf("active = %d", r.pv.Active())
	}
}

// TestPreventerDeadlineDuringActiveWrites ensures the deadline merge does
// not corrupt a page whose writer is still making progress: the writer's
// next access after finalization goes through the normal resident path.
func TestPreventerDeadlineDuringActiveWrites(t *testing.T) {
	r := newRig(t)
	pg := r.swappedPage(t, 0)
	r.env.Go("slow-writer", func(p *sim.Proc) {
		r.pv.HandleWriteFault(p, pg, 0, 64, false)
		// Write again only after the 1 ms deadline has passed.
		p.Sleep(5 * sim.Millisecond)
		if pg.State == hostmm.Emulated {
			r.pv.OnAccess(p, pg, true, 64, 64, false)
		}
	})
	r.env.Run()
	if pg.State != hostmm.ResidentAnon {
		t.Fatalf("state %v", pg.State)
	}
}
