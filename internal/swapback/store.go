package swapback

import (
	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Store is the host MM's swap destination: it accepts the read/write
// requests hostmm used to send straight to the disk.Device and routes them
// through the configured backend model. The hostswap.* traffic counters
// are owned here and count every tier's swap I/O uniformly, so figure code
// that reads them (Fig. 9d silent writes, etc.) works for any backend.
//
// The HDD kind is the transparent default: every method forwards to the
// Device with the exact request and counter updates the pre-backend code
// issued, no extra metrics resolved and no randomness drawn, keeping
// default-backend runs byte-identical.
type Store struct {
	kind   Kind
	policy Policy
	env    *sim.Env
	dev    *disk.Device
	phys   func(int64) int64
	inj    *fault.Injector

	readOps, readSectors   *metrics.Counter
	writeOps, writeSectors *metrics.Counter

	slow slowTier   // nil for HDD (requests go straight to dev)
	fast *zswapPool // nil unless kind == Zswap

	// Resolved only for non-HDD kinds so the default backend creates no
	// new counters in the report.
	sbReadOps, sbWriteOps *metrics.Counter
	histRead, histWrite   *metrics.Histogram
	promote               *metrics.Counter

	// ownerKey resolves a still-allocated slot to a stable page identity
	// (for compressibility and heat tracking across slot reuse). Installed
	// by hostmm via SetOwnerKey; nil falls back to the slot number.
	ownerKey func(int64) uint64
	heat     *heatRing // PolicyHot + fast tier only

	scratch [1]int64
}

// slowTier is a single backing device model addressed by swap slot:
// the rotating drive (zswap's backing store), the SSD, or the remote
// target. submit is asynchronous, like disk.Device.Submit.
type slowTier interface {
	submit(kind disk.Kind, slot int64, n int) sim.Time
	backlog() sim.Duration
}

// Injected-error retry policy for tiers that do not go through the
// disk.Device: the same bounded exponential backoff the Device's firmware
// model uses (disk/device.go), so `-faults disk:*` specs degrade every
// tier the same way.
const (
	xferMaxRetries   = 5
	xferRetryBackoff = 500 * sim.Microsecond
)

// New builds a Store for the configured backend kind.
func New(cfg Config) *Store {
	st := &Store{
		kind:         cfg.Kind,
		policy:       cfg.Policy,
		env:          cfg.Env,
		dev:          cfg.Dev,
		phys:         cfg.Phys,
		inj:          cfg.Inj,
		readOps:      cfg.Met.Counter(metrics.SwapReadOps),
		readSectors:  cfg.Met.Counter(metrics.SwapReadSectors),
		writeOps:     cfg.Met.Counter(metrics.SwapWriteOps),
		writeSectors: cfg.Met.Counter(metrics.SwapWriteSectors),
	}
	if cfg.Kind == HDD {
		return st
	}
	st.sbReadOps = cfg.Met.Counter(metrics.SwapbackReadOps)
	st.sbWriteOps = cfg.Met.Counter(metrics.SwapbackWriteOps)
	st.histRead = cfg.Met.Histogram(metrics.HistSwapbackRead)
	st.histWrite = cfg.Met.Histogram(metrics.HistSwapbackWrite)
	switch cfg.Kind {
	case SSD:
		st.slow = newSSDTier(cfg)
	case Remote:
		st.slow = newRemoteTier(cfg)
	case Zswap:
		st.slow = &hddSlow{dev: cfg.Dev, env: cfg.Env, phys: cfg.Phys}
		st.fast = newZswapPool(cfg)
		if cfg.Policy == PolicyHot {
			st.heat = newHeatRing(heatRingSize)
			st.promote = cfg.Met.Counter(metrics.SwapbackPromotePages)
		}
	}
	return st
}

// Kind reports the backend kind.
func (st *Store) Kind() Kind { return st.kind }

// Policy reports the tiering policy.
func (st *Store) Policy() Policy { return st.policy }

// SetOwnerKey installs the slot-to-page-identity resolver (hostmm wires
// this to the swap area's owner records).
func (st *Store) SetOwnerKey(fn func(int64) uint64) { st.ownerKey = fn }

func (st *Store) pageKey(slot int64) uint64 {
	if st.ownerKey != nil {
		return st.ownerKey(slot)
	}
	return uint64(slot)
}

// SubmitRead enqueues a read of a contiguous ascending run of allocated
// slots and returns its completion time without blocking.
func (st *Store) SubmitRead(slots []int64) sim.Time {
	if st.kind == HDD {
		done := st.dev.Submit(disk.Read, st.phys(slots[0]), len(slots))
		st.readOps.Inc()
		st.readSectors.Add(int64(len(slots)) * disk.SectorsPerBlock)
		return done
	}
	now := st.env.Now()
	st.readOps.Inc()
	st.readSectors.Add(int64(len(slots)) * disk.SectorsPerBlock)
	st.sbReadOps.Inc()
	var done sim.Time
	if st.fast == nil {
		done = st.slow.submit(disk.Read, slots[0], len(slots))
	} else {
		done = st.fastRead(slots)
	}
	st.histRead.Observe(done.Sub(now))
	return done
}

// SubmitRead1 reads a single slot (the injected-failure retry path).
func (st *Store) SubmitRead1(slot int64) sim.Time {
	st.scratch[0] = slot
	return st.SubmitRead(st.scratch[:1])
}

// SubmitWrite enqueues an asynchronous writeback of a contiguous ascending
// run of slots. Completion is not reported: swap writeback pressure is felt
// through Backlog, exactly as the pre-backend code felt the device queue.
func (st *Store) SubmitWrite(slots []int64) {
	if st.kind == HDD {
		st.dev.Submit(disk.Write, st.phys(slots[0]), len(slots))
		st.writeSectors.Add(int64(len(slots)) * disk.SectorsPerBlock)
		st.writeOps.Inc()
		return
	}
	now := st.env.Now()
	st.writeSectors.Add(int64(len(slots)) * disk.SectorsPerBlock)
	st.writeOps.Inc()
	st.sbWriteOps.Inc()
	if st.fast == nil {
		done := st.slow.submit(disk.Write, slots[0], len(slots))
		st.histWrite.Observe(done.Sub(now))
		return
	}
	// Zswap placement: admit what the policy allows into the compressed
	// pool; everything else (incompressible, over capacity, policy-cold)
	// falls through to the slow tier in maximal contiguous sub-runs.
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		done := st.slow.submit(disk.Write, slots[runStart], end-runStart)
		st.histWrite.Observe(done.Sub(now))
		runStart = -1
	}
	for i, s := range slots {
		stored := false
		switch st.policy {
		case PolicyFlat:
			// fast tier disabled
		case PolicyHot:
			if key := st.pageKey(s); st.heat.contains(key) && st.fast.store(s, key) {
				stored = true
				st.promote.Inc()
			}
		default: // PolicyWriteback
			stored = st.fast.store(s, st.pageKey(s))
		}
		if stored {
			flush(i)
		} else if runStart < 0 {
			runStart = i
		}
	}
	flush(len(slots))
}

// fastRead services a read run against the compressed pool, falling back
// to the slow tier for missing (or corrupted) slots in contiguous
// sub-runs. Fast hits keep their entries (swap-cache semantics: the slot
// still holds the content until it is freed).
func (st *Store) fastRead(slots []int64) sim.Time {
	now := st.env.Now()
	nFast := 0
	var slowDone sim.Time
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		if done := st.slow.submit(disk.Read, slots[runStart], end-runStart); done > slowDone {
			slowDone = done
		}
		runStart = -1
	}
	for i, s := range slots {
		if st.fast.contains(s) {
			if st.inj.DiskError(false) {
				// Injected corruption of the compressed copy: drop the
				// entry and degrade to a slow-tier read at the slot's
				// address (the backing copy, in this abstraction).
				st.fast.drop(s)
				st.fast.corrupt.Inc()
				if runStart < 0 {
					runStart = i
				}
				continue
			}
			st.fast.load.Inc()
			nFast++
			flush(i)
			continue
		}
		if runStart < 0 {
			runStart = i
		}
	}
	flush(len(slots))
	done := now.Add(sim.Duration(nFast) * st.fast.decompress)
	if slowDone > done {
		done = slowDone
	}
	return done
}

// WaitFor blocks p until a previously submitted request completes,
// charging the stall to the disk-wait phase (for non-HDD backends the
// phase reads as "time blocked on the swap backend").
func (st *Store) WaitFor(p *sim.Proc, done sim.Time) { st.dev.WaitFor(p, done) }

// Backlog reports how far the backend's writeback queue runs ahead of the
// clock; direct reclaim throttles on it (congestion_wait).
func (st *Store) Backlog() sim.Duration {
	if st.kind == HDD {
		return st.dev.FreeAt().Sub(st.env.Now())
	}
	if st.fast != nil {
		// The compressed pool absorbs writes instantly; only the slow
		// tier's queue can back up.
		return st.slow.backlog()
	}
	return st.slow.backlog()
}

// Free drops any fast-tier copy of the slot; hostmm wires it to the swap
// area's slot-free hook. No-op for single-tier backends.
func (st *Store) Free(slot int64) {
	if st.fast != nil {
		st.fast.drop(slot)
	}
}

// NoteRefault records that the page at slot was just faulted back in;
// under PolicyHot this earns the page fast-tier placement on its next
// eviction (promotion on re-fault). Call while the slot is still
// allocated so the page identity resolves.
func (st *Store) NoteRefault(slot int64) {
	if st.heat == nil {
		return
	}
	st.heat.add(st.pageKey(slot))
}

// BackgroundTick runs the backend's periodic work off the kswapd
// interval: zswap demotes its oldest entries to the slow tier when the
// pool nears capacity. No-op for other backends.
func (st *Store) BackgroundTick() {
	if st.fast == nil {
		return
	}
	z := st.fast
	if z.usedBytes <= z.capBytes*9/10 {
		return
	}
	now := st.env.Now()
	for z.usedBytes > z.capBytes*7/10 {
		slot, ok := z.popOldest()
		if !ok {
			break
		}
		done := st.slow.submit(disk.Write, slot, 1)
		st.writeOps.Inc()
		st.writeSectors.Add(disk.SectorsPerBlock)
		st.histWrite.Observe(done.Sub(now))
		z.demoted.Inc()
	}
}

// FastUsedBytes reports the compressed pool's occupancy (tests and
// introspection); zero for backends without a fast tier.
func (st *Store) FastUsedBytes() int64 {
	if st.fast == nil {
		return 0
	}
	return st.fast.usedBytes
}

// FastFrames reports the host frames the compressed pool currently holds.
func (st *Store) FastFrames() int {
	if st.fast == nil {
		return 0
	}
	return st.fast.frames
}

// FastCapBytes reports the compressed pool's byte capacity.
func (st *Store) FastCapBytes() int64 {
	if st.fast == nil {
		return 0
	}
	return st.fast.capBytes
}

// hddSlow adapts the machine's disk.Device as a slot-addressed slow tier
// (zswap's backing store). The device carries its own injector, so
// injected disk faults reach this path without extra wiring.
type hddSlow struct {
	dev  *disk.Device
	env  *sim.Env
	phys func(int64) int64
}

func (t *hddSlow) submit(kind disk.Kind, slot int64, n int) sim.Time {
	return t.dev.Submit(kind, t.phys(slot), n)
}

func (t *hddSlow) backlog() sim.Duration {
	return t.dev.FreeAt().Sub(t.env.Now())
}

// injectXfer mirrors disk.Device's injected-error handling for tiers that
// bypass the Device: a latency spike plus bounded-backoff retries, each
// retry re-paying the base transfer cost. Returns the extra service time.
func injectXfer(inj *fault.Injector, write bool, base sim.Duration, retriesC, exhaustedC *metrics.Counter, histBackoff *metrics.Histogram) sim.Duration {
	if inj == nil {
		return 0
	}
	extra := inj.DiskDelay()
	for retries := 0; inj.DiskError(write); {
		if retries == xferMaxRetries {
			exhaustedC.Inc()
			break
		}
		backoff := xferRetryBackoff << retries
		retries++
		extra += backoff + base
		retriesC.Inc()
		histBackoff.Observe(backoff)
	}
	return extra
}
