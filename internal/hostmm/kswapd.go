package hostmm

import (
	"vswapsim/internal/sim"
)

// kswapd: background reclaim. Direct reclaim (chargeFrames) is the
// correctness path; kswapd smooths latency by keeping a free reserve, like
// Linux's daemon. It reclaims from the largest cgroups when the global
// pool drops below its low watermark.

// KswapdConfig tunes the background reclaimer.
type KswapdConfig struct {
	// Interval between pool checks.
	Interval sim.Duration
	// LowFrac / HighFrac are pool-level watermarks as fractions of
	// capacity: reclaim starts below low and stops at high.
	LowFrac  float64
	HighFrac float64
}

// DefaultKswapdConfig mirrors Linux's small free reserves.
func DefaultKswapdConfig() KswapdConfig {
	return KswapdConfig{
		Interval: 250 * sim.Millisecond,
		LowFrac:  0.02,
		HighFrac: 0.04,
	}
}

// withDefaults fills every unset (zero) field independently, so a caller
// overriding just the interval still gets the default watermarks (and vice
// versa) instead of zeroed ones.
func (cfg KswapdConfig) withDefaults() KswapdConfig {
	def := DefaultKswapdConfig()
	if cfg.Interval == 0 {
		cfg.Interval = def.Interval
	}
	if cfg.LowFrac == 0 {
		cfg.LowFrac = def.LowFrac
	}
	if cfg.HighFrac == 0 {
		cfg.HighFrac = def.HighFrac
	}
	return cfg
}

// StartKswapd launches the background reclaimer; call the returned stop
// function to let the simulation drain.
//
// Stop takes effect at the daemon's next yield point: it interrupts the
// inter-scan sleep (rather than letting a full interval elapse) and is
// re-checked between reclaim batches, so drain time is bounded by one
// batch, not by Interval.
func (m *Manager) StartKswapd(cfg KswapdConfig) (stop func()) {
	cfg = cfg.withDefaults()
	low := int(float64(m.Pool.Capacity()) * cfg.LowFrac)
	high := int(float64(m.Pool.Capacity()) * cfg.HighFrac)
	if low < 64 {
		low = 64
	}
	if high <= low {
		high = low * 2
	}
	done := false
	stopSig := sim.NewSignal(m.Env)
	m.Env.Go("kswapd", func(p *sim.Proc) {
		for !done {
			// Backend housekeeping rides the kswapd interval: tiered
			// backends demote cold fast-tier entries here (no-op for the
			// default hdd store).
			m.Back.BackgroundTick()
			if m.Pool.Free() < low {
				// Reclaim from the largest cgroup in bounded batches until
				// the high watermark, yielding between batches.
				for m.Pool.Free() < high && !done {
					victim := m.largestCgroup()
					if victim == nil {
						break
					}
					if m.reclaim(p, victim, m.Cfg.ReclaimBatch) == 0 {
						break // nothing reclaimable right now
					}
				}
			}
			if done {
				break
			}
			stopSig.WaitTimeout(p, cfg.Interval)
		}
	})
	return func() {
		if done {
			return
		}
		done = true
		stopSig.Broadcast()
	}
}
