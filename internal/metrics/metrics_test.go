package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"vswapsim/internal/sim"
)

func TestAddGet(t *testing.T) {
	s := NewSet()
	s.Add(DiskOps, 5)
	s.Inc(DiskOps)
	if got := s.Get(DiskOps); got != 6 {
		t.Fatalf("Get = %d, want 6", got)
	}
	if got := s.Get("never.written"); got != 0 {
		t.Fatalf("unwritten counter = %d, want 0", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	s := NewSet()
	s.Add(DiskOps, 10)
	snap := s.Snapshot()
	s.Add(DiskOps, 3)
	s.Add(SwapWriteSectors, 7)
	d := s.Diff(snap)
	if d[DiskOps] != 3 || d[SwapWriteSectors] != 7 {
		t.Fatalf("diff = %v", d)
	}
	if _, ok := d["untouched"]; ok {
		t.Fatal("diff contains untouched counter")
	}
	// snapshot must be an independent copy
	snap[DiskOps] = 999
	if s.Get(DiskOps) != 13 {
		t.Fatal("mutating snapshot affected set")
	}
}

func TestReset(t *testing.T) {
	s := NewSet()
	s.Add(DiskOps, 10)
	s.Series("x").Record(0, 1)
	s.Reset()
	if s.Get(DiskOps) != 0 {
		t.Fatal("counter not reset")
	}
	if s.Series("x").Len() != 1 {
		t.Fatal("reset should not clear series")
	}
}

func TestSeries(t *testing.T) {
	s := NewSet()
	sr := s.Series("cache")
	sr.Record(sim.Time(1*sim.Second), 100)
	sr.Record(sim.Time(2*sim.Second), 300)
	sr.Record(sim.Time(3*sim.Second), 200)
	if sr.Len() != 3 {
		t.Fatalf("len = %d", sr.Len())
	}
	if sr.Last() != 200 {
		t.Fatalf("last = %v", sr.Last())
	}
	if sr.Max() != 300 {
		t.Fatalf("max = %v", sr.Max())
	}
	if sr.Mean() != 200 {
		t.Fatalf("mean = %v", sr.Mean())
	}
	if s.Series("cache") != sr {
		t.Fatal("Series did not return same instance")
	}
}

func TestEmptySeries(t *testing.T) {
	sr := NewSet().Series("empty")
	if sr.Last() != 0 || sr.Max() != 0 || sr.Mean() != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestStringSortedNonZero(t *testing.T) {
	s := NewSet()
	s.Add("b.metric", 2)
	s.Add("a.metric", 1)
	s.Add("zero.metric", 0)
	out := s.String()
	if strings.Contains(out, "zero.metric") {
		t.Fatal("zero counters should be omitted")
	}
	if strings.Index(out, "a.metric") > strings.Index(out, "b.metric") {
		t.Fatal("counters not sorted")
	}
}

func TestDiffMatchesAdds(t *testing.T) {
	// Property: for any sequence of adds after a snapshot, Diff equals the
	// sum of the adds per key.
	if err := quick.Check(func(deltas []int8) bool {
		s := NewSet()
		s.Add("k", 100)
		snap := s.Snapshot()
		var sum int64
		for _, d := range deltas {
			s.Add("k", int64(d))
			sum += int64(d)
		}
		got := s.Diff(snap)["k"]
		return got == sum
	}, nil); err != nil {
		t.Fatal(err)
	}
}
