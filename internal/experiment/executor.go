package experiment

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// This file is the parallel experiment executor. Every figure/table is a
// set of fully independent simulator runs (each builds its own sim.Env,
// metrics.Set and disk model), so sweep cells, dynamic-scenario cells and
// whole registry entries fan out as jobs on a bounded worker pool.
//
// Determinism is preserved by construction, not by scheduling:
//   - each job seeds its private sim.Env with sim.DeriveSeed(base, labels)
//     — a pure function of the experiment id and the sweep point, never of
//     which worker ran the job or when;
//   - each job writes into its own pre-allocated result slot, and tables
//     are assembled from those slots in loop order after all jobs finish.
// Parallel output is therefore bit-identical to serial output; the golden
// and equivalence tests in golden_test.go/executor_test.go enforce this.

// limiter bounds how many simulator runs execute at once. It is shared
// down an entire invocation (registry fan-out and the sweeps inside each
// experiment draw from the same slot pool), so total CPU-bound
// concurrency stays at Parallel regardless of nesting. Only leaf runs
// (runSingle, runDynamic) hold slots; coordinators that merely wait on
// children never do, which is what makes the nesting deadlock-free.
type limiter struct {
	sem chan struct{}
}

func newLimiter(n int) *limiter {
	if n < 1 {
		n = 1
	}
	return &limiter{sem: make(chan struct{}, n)}
}

// acquire blocks until a run slot is free and returns its release func.
// A nil limiter (Options that never went through normalized) is a no-op.
func (o Options) acquire() func() {
	if o.lim == nil {
		return func() {}
	}
	o.lim.sem <- struct{}{}
	return func() { <-o.lim.sem }
}

// forEach runs n independent jobs. With Parallel <= 1 the jobs run inline
// in index order (the serial reference path); otherwise every job gets a
// goroutine and the shared limiter bounds how many simulate at a time.
// Jobs must not communicate except through their own result slots.
func (o Options) forEach(n int, job func(i int)) {
	if o.Parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			job(i)
		}(i)
	}
	wg.Wait()
}

// RunResult couples an experiment's report with its wall-clock cost, the
// per-machine run records the experiment produced, and the failure
// records of any cells that were killed, panicked, or were canceled
// (all in deterministic order; see json.go and failure.go).
type RunResult struct {
	Experiment Experiment
	Report     *Report
	Elapsed    time.Duration
	Runs       []RunRecord
	Failures   []FailureRecord
}

// runExperimentShielded runs one experiment, converting a panic that
// escapes the per-cell shields (table assembly, experiment-level glue)
// into a failed report plus a failure record, so sibling experiments in
// the sweep still complete.
func runExperimentShielded(e Experiment, o Options) (rep *Report) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		rec := &FailureRecord{
			Label:    "experiment/" + e.ID,
			Seed:     o.Seed,
			BaseSeed: o.Seed,
			Faults:   o.Faults.String(),
			Kind:     FailPanic,
			Message:  sanitizeMessage(fmt.Sprint(r)),
			Stack:    sanitizeStack(debug.Stack()),
		}
		o.faillog.add(rec)
		rep = &Report{
			ID:        e.ID,
			Title:     e.Title,
			PaperNote: e.PaperNote,
			Notes:     []string{"experiment aborted: " + rec.Message},
		}
	}()
	return e.Run(o)
}

// RunAll executes the given experiments under one shared worker pool and
// returns their results in input order. Reports are bit-identical to
// running each experiment serially. If emit is non-nil it is called once
// per result, always in input order, as soon as a result and all its
// predecessors are available — so callers can stream output while later
// experiments still run.
func RunAll(exps []Experiment, o Options, emit func(RunResult)) []RunResult {
	o = o.normalized()
	out := make([]RunResult, len(exps))
	if emit == nil {
		emit = func(RunResult) {}
	}
	run := func(i int) RunResult {
		start := time.Now()
		// Each experiment collects into private run/failure logs so records
		// from concurrently executing experiments cannot interleave.
		oi := o
		fetch := oi.EnableRunLog()
		fetchFails := oi.EnableFailureLog()
		rep := runExperimentShielded(exps[i], oi)
		return RunResult{
			Experiment: exps[i], Report: rep, Elapsed: time.Since(start),
			Runs: fetch(), Failures: fetchFails(),
		}
	}
	if o.Parallel <= 1 || len(exps) <= 1 {
		for i := range exps {
			out[i] = run(i)
			emit(out[i])
		}
		return out
	}
	var (
		mu   sync.Mutex
		done = make([]bool, len(exps))
		next int
	)
	o.forEach(len(exps), func(i int) {
		r := run(i)
		mu.Lock()
		defer mu.Unlock()
		out[i] = r
		done[i] = true
		for next < len(exps) && done[next] {
			emit(out[next])
			next++
		}
	})
	return out
}
