package metrics

import (
	"sync"
	"testing"

	"vswapsim/internal/sim"
)

// TestSetsIsolatedAcrossGoroutines hammers two Sets from separate OS
// goroutines. A Set is owned by one simulated machine and is not itself
// thread-safe; what the parallel experiment executor requires is that two
// machines' Sets share no hidden state — every count lands in the Set the
// goroutine owns, and the race detector stays quiet.
func TestSetsIsolatedAcrossGoroutines(t *testing.T) {
	const (
		workers = 8
		iters   = 20000
	)
	sets := make([]*Set, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		sets[i] = NewSet()
		go func(i int) {
			defer wg.Done()
			s := sets[i]
			snap := s.Snapshot()
			for j := 0; j < iters; j++ {
				s.Inc(DiskOps)
				s.Add(SwapWriteSectors, int64(i+1))
				s.Series("trace").Record(sim.Time(j), float64(i))
			}
			if d := s.Diff(snap); d[DiskOps] != iters {
				t.Errorf("worker %d: diff %d, want %d", i, d[DiskOps], iters)
			}
		}(i)
	}
	wg.Wait()

	for i, s := range sets {
		if got := s.Get(DiskOps); got != iters {
			t.Fatalf("set %d: %s = %d, want %d (cross-set interference)", i, DiskOps, got, iters)
		}
		if got := s.Get(SwapWriteSectors); got != int64(iters*(i+1)) {
			t.Fatalf("set %d: %s = %d, want %d", i, SwapWriteSectors, got, iters*(i+1))
		}
		if got := s.Series("trace").Len(); got != iters {
			t.Fatalf("set %d: series len = %d, want %d", i, got, iters)
		}
	}
}
