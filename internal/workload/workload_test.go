package workload

import (
	"testing"

	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// smallVM builds a guest with comfortable memory for functional tests.
func smallVM(t *testing.T, memMB, limitMB int) (*hyper.Machine, *hyper.VM) {
	return smallVMConfig(t, memMB, limitMB, false, false)
}

// smallVMConfig additionally selects the VSwapper components.
func smallVMConfig(t *testing.T, memMB, limitMB int, mapper, preventer bool) (*hyper.Machine, *hyper.VM) {
	t.Helper()
	m := hyper.NewMachine(hyper.MachineConfig{Seed: 3, HostMemPages: 1 << 30 / 4096})
	vm := m.NewVM(hyper.VMConfig{
		Name:       "vm0",
		MemPages:   memMB << 20 / 4096,
		LimitPages: limitMB << 20 / 4096,
		DiskBlocks: 4 << 30 / 4096,
		Mapper:     mapper,
		Preventer:  preventer,
		GuestAPF:   true,
	})
	return m, vm
}

// drive boots the VM, launches jobs via fn, and waits for them.
func drive(t *testing.T, m *hyper.Machine, vm *hyper.VM, fn func(p *sim.Proc) []*Job) []Result {
	t.Helper()
	var results []Result
	m.Env.Go("driver", func(p *sim.Proc) {
		vm.Boot(p)
		jobs := fn(p)
		for _, j := range jobs {
			results = append(results, j.Wait(p))
		}
		m.Shutdown()
	})
	m.Run()
	return results
}

func TestSeqReadIterations(t *testing.T) {
	m, vm := smallVM(t, 256, 0)
	var iterSeen int
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{SeqRead(vm, SeqReadConfig{
			FileMB:         64,
			Iterations:     3,
			AfterIteration: func(i int) { iterSeen++ },
		})}
	})
	r := res[0]
	if r.Killed {
		t.Fatal("killed")
	}
	if len(r.Iterations) != 3 || iterSeen != 3 {
		t.Fatalf("iterations = %d / callbacks = %d", len(r.Iterations), iterSeen)
	}
	// Later iterations are cached and must be faster than the first.
	if r.Iterations[1] >= r.Iterations[0] {
		t.Fatalf("cached iteration (%v) not faster than cold (%v)", r.Iterations[1], r.Iterations[0])
	}
	if r.Runtime() <= 0 {
		t.Fatal("no runtime")
	}
}

func TestAllocTouchCompletes(t *testing.T) {
	m, vm := smallVM(t, 256, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{AllocTouch(vm, AllocTouchConfig{SizeMB: 64})}
	})
	if res[0].Killed {
		t.Fatal("killed with plentiful memory")
	}
}

func TestPbzip2Completes(t *testing.T) {
	m, vm := smallVM(t, 256, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Pbzip2(vm, Pbzip2Config{InputMB: 32, Threads: 4, CPUPerBlock: 50 * sim.Microsecond})}
	})
	if res[0].Killed {
		t.Fatal("killed")
	}
	if m.Met.Get(metrics.ImageReadSectors) == 0 || m.Met.Get(metrics.ImageWriteSectors) == 0 {
		t.Fatal("pbzip2 must read input and write output")
	}
}

func TestPbzip2ThreadsShareVCPU(t *testing.T) {
	// With a fixed CPU budget, 1 VCPU bounds throughput regardless of
	// thread count: runtime should be close to total CPU time.
	m, vm := smallVM(t, 256, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Pbzip2(vm, Pbzip2Config{InputMB: 16, Threads: 8, CPUPerBlock: 200 * sim.Microsecond})}
	})
	blocks := 16 << 20 / 4096
	cpuTotal := sim.Duration(blocks) * 200 * sim.Microsecond
	if got := res[0].Runtime(); got < cpuTotal {
		t.Fatalf("runtime %v below serial CPU bound %v", got, cpuTotal)
	}
}

func TestKernbenchCompletes(t *testing.T) {
	m, vm := smallVM(t, 256, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Kernbench(vm, KernbenchConfig{Files: 100, CPUPerFile: 5 * sim.Millisecond})}
	})
	if res[0].Killed {
		t.Fatal("killed")
	}
	if m.Met.Get(metrics.ImageWriteSectors) == 0 {
		t.Fatal("no object files written")
	}
}

func TestEclipseCompletesAndSamples(t *testing.T) {
	m, vm := smallVM(t, 768, 0)
	samples := 0
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Eclipse(vm, EclipseConfig{
			HeapMB:          32,
			JVMAnonMB:       32,
			WorkspaceMB:     16,
			Iterations:      2,
			CPUPerIteration: 2 * sim.Second,
			Sampler:         func(at sim.Time) { samples++ },
		})}
	})
	if res[0].Killed {
		t.Fatal("killed")
	}
	if len(res[0].Iterations) != 2 {
		t.Fatalf("iterations = %d", len(res[0].Iterations))
	}
	if samples == 0 {
		t.Fatal("sampler never ran")
	}
}

func TestMetisCompletes(t *testing.T) {
	m, vm := smallVM(t, 768, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Metis(vm, MetisConfig{InputMB: 16, TableMB: 64, CPUPerBlock: 20 * sim.Microsecond})}
	})
	if res[0].Killed {
		t.Fatal("killed")
	}
}

func TestWarmupLeavesMemoryStale(t *testing.T) {
	m, vm := smallVM(t, 128, 32)
	drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Warmup(vm, 2048)}
	})
	if m.Met.Get(metrics.HostSwapOuts) == 0 {
		t.Fatal("warmup under pressure must cause host swapping")
	}
	if vm.OS.FreePages() < 100<<20/4096 {
		t.Fatalf("warmup did not free its memory: %d free", vm.OS.FreePages())
	}
}

func TestWorkloadKilledUnderOOM(t *testing.T) {
	// A tiny guest with tiny guest swap: AllocTouch far beyond capacity
	// must be OOM-killed, and the job must report it.
	m := hyper.NewMachine(hyper.MachineConfig{Seed: 3, HostMemPages: 1 << 30 / 4096})
	vm := m.NewVM(hyper.VMConfig{
		Name:            "vm0",
		MemPages:        64 << 20 / 4096,
		DiskBlocks:      2 << 30 / 4096,
		GuestSwapBlocks: 1024, // 4 MB of guest swap only
		GuestAPF:        true,
	})
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{AllocTouch(vm, AllocTouchConfig{SizeMB: 256})}
	})
	if !res[0].Killed {
		t.Fatal("expected OOM kill")
	}
}

func TestJobWaitAfterFinish(t *testing.T) {
	m, vm := smallVM(t, 128, 0)
	m.Env.Go("driver", func(p *sim.Proc) {
		vm.Boot(p)
		j := SeqRead(vm, SeqReadConfig{FileMB: 8})
		first := j.Wait(p)
		second := j.Wait(p) // must not block again
		if first.Runtime() != second.Runtime() {
			t.Error("repeated Wait returned different results")
		}
		if !j.Finished() {
			t.Error("not finished")
		}
		m.Shutdown()
	})
	m.Run()
}
