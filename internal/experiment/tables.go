package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Table1 reports the size of this reproduction's VSwapper implementation,
// mirroring the paper's Table 1 (lines of code of the Mapper and the
// Preventer). The paper splits QEMU-side from kernel-side changes; our
// analogue is internal/core (policy) vs the hostmm mechanisms it drives.
func Table1(o Options) *Report {
	rep := &Report{
		ID:        "tab1",
		Title:     "Lines of code of VSwapper (Table 1)",
		PaperNote: "paper: Mapper 409 (174 user + 235 kernel), Preventer 1974 (10 user + 1964 kernel), total 2383",
	}
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		rep.Notes = append(rep.Notes, "cannot locate source tree")
		return rep
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))
	count := func(rel string) int {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return 0
		}
		n := 0
		for _, line := range strings.Split(string(data), "\n") {
			if s := strings.TrimSpace(line); s != "" && !strings.HasPrefix(s, "//") {
				n++
			}
		}
		return n
	}
	mapperPolicy := count("internal/core/mapper.go")
	preventerPolicy := count("internal/core/preventer.go")
	mapperMech := count("internal/hostmm/mmap.go")
	tab := &Table{
		Title:   "non-comment lines of Go",
		Columns: []string{"component", "policy (core)", "mechanism (hostmm)", "sum"},
	}
	tab.Add("Mapper", fmt.Sprintf("%d", mapperPolicy), fmt.Sprintf("%d", mapperMech),
		fmt.Sprintf("%d", mapperPolicy+mapperMech))
	tab.Add("Preventer", fmt.Sprintf("%d", preventerPolicy), "-", fmt.Sprintf("%d", preventerPolicy))
	tab.Add("sum", "", "", fmt.Sprintf("%d", mapperPolicy+mapperMech+preventerPolicy))
	rep.Tables = append(rep.Tables, tab)
	return rep
}

// Table2 reproduces the VMware Workstation observation: with the balloon
// disabled, a 1 GB sequential read inside a 440 MB guest (min 350 MB
// reserved, 512 MB host) triples its runtime with massive swap traffic.
func Table2(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:        "tab2",
		Title:     "1GB sequential read, balloon enabled vs disabled (Table 2)",
		PaperNote: "VMware Workstation: 25s/78s runtime, ~0.26M/1.05M swap sectors each way, 3.7K/16.5K major faults; KVM+vswapper: 12s",
	}
	tab := &Table{
		Columns: []string{"config", "runtime [sec]", "swap read sectors", "swap write sectors", "major faults"},
	}
	// The guest may use 440 MB but only ~350 MB is guaranteed under host
	// pressure — model the pressured steady state.
	run := func(name string, scheme Scheme) {
		out := runSingle(runCfg{
			opts: o, scheme: scheme,
			guestMB:  440,
			actualMB: 352,
			hostMB:   2048,
			warmup:   true,
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(1024), FileName: "bigfile"})
		})
		tab.Add(name,
			runtimeOrKilled(out.res),
			fmt.Sprintf("%d", out.met[metrics.SwapReadSectors]),
			fmt.Sprintf("%d", out.met[metrics.SwapWriteSectors]),
			fmt.Sprintf("%d", out.met[metrics.HostMajorFaults]))
	}
	run("balloon enabled", BalloonBase)
	run("balloon disabled", Baseline)
	run("vswapper (KVM)", VSwapper)
	rep.Tables = append(rep.Tables, tab)
	return rep
}
