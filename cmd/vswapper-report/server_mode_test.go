package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vswapsim/internal/serve"
)

// TestRunUsageErrorsConsistent mirrors vswapsim's negative-path table:
// -parallel <= 0 and -auditevery < 0 exit 2 with the one-line usage hint,
// so both CLIs reject budget/concurrency misuse identically.
func TestRunUsageErrorsConsistent(t *testing.T) {
	cases := [][]string{
		{"-parallel", "0"},
		{"-parallel", "-4"},
		{"-auditevery", "-1"},
		{"-server", "http://x", "-json", "-"},
		{"-server", "http://x", "-csv", "dir"},
		{"-server", "http://x", "-diagdir", "dir"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
		if msg := strings.ToLower(stderr.String()); !strings.Contains(msg, "usage") {
			t.Errorf("run(%v) stderr lacks the usage hint: %q", args, stderr.String())
		}
	}
}

// TestServerModeSweep: a -server sweep renders each selected experiment
// from daemon documents, and a repeat sweep is served from the cache.
func TestServerModeSweep(t *testing.T) {
	s, err := serve.New(serve.Config{CacheDir: t.TempDir(), Fingerprint: "test:report"})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	args := []string{"-only", "tab1", "-quick", "-server", ts.URL}
	var cold, stderr bytes.Buffer
	if code := run(args, &cold, &stderr); code != exitOK {
		t.Fatalf("cold sweep = %d, stderr %s", code, stderr.String())
	}
	out := cold.String()
	if !strings.Contains(out, "served by "+ts.URL) {
		t.Fatalf("header lacks the daemon URL:\n%s", out)
	}
	if !strings.Contains(out, "Lines of code of VSwapper") {
		t.Fatalf("sweep output lacks the rendered table:\n%s", out)
	}
	if !strings.Contains(out, "0 of 1 from cache") {
		t.Fatalf("cold sweep should be all misses:\n%s", out)
	}

	var warm bytes.Buffer
	if code := run(args, &warm, &stderr); code != exitOK {
		t.Fatalf("warm sweep = %d", code)
	}
	if !strings.Contains(warm.String(), "1 of 1 from cache") {
		t.Fatalf("warm sweep not served from cache:\n%s", warm.String())
	}
}
