module vswapsim

go 1.22
