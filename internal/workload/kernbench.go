package workload

import (
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// KernbenchConfig parameterizes the kernel-build benchmark (paper §5.1,
// Fig. 12): thousands of short-lived compiler processes, each reading
// sources, churning heap pages (fork + COW + brk recycling — the source
// of the Preventer's remaps), and writing object files.
type KernbenchConfig struct {
	// Files is the number of compilation units.
	Files int
	// SrcBlocks / ObjBlocks are per-file read and write sizes in 4 KiB
	// blocks.
	SrcBlocks int
	ObjBlocks int
	// CPUPerFile is the compile cost of one unit.
	CPUPerFile sim.Duration
	// HeapPages is the compiler's transient heap per unit; freed (and
	// recycled by the guest) after each unit.
	HeapPages int
	// Jobs is the make -jN parallelism.
	Jobs int
}

func (c KernbenchConfig) withDefaults() KernbenchConfig {
	if c.Files == 0 {
		c.Files = 2800
	}
	if c.SrcBlocks == 0 {
		// ~160 KB of sources+headers per unit: a ~450 MB tree at 2800
		// units, matching a Linux 3.x checkout.
		c.SrcBlocks = 40
	}
	if c.ObjBlocks == 0 {
		c.ObjBlocks = 10
	}
	if c.CPUPerFile == 0 {
		c.CPUPerFile = 420 * sim.Millisecond // ~20 min build on 1 VCPU
	}
	if c.HeapPages == 0 {
		c.HeapPages = 384 // ~1.5 MB cc1 heap churn per unit
	}
	if c.Jobs == 0 {
		c.Jobs = 4
	}
	return c
}

// Kernbench launches the kernel build on vm.
func Kernbench(vm *hyper.VM, cfg KernbenchConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("make")
	return launch(vm, "kernbench", pr, func(t *guest.Thread, j *Job) {
		tree := vm.OS.FS.Create("linux-src", int64(cfg.Files*cfg.SrcBlocks)*4096)
		objs := vm.OS.FS.Create("linux-obj", int64(cfg.Files*cfg.ObjBlocks)*4096)
		rng := vm.M.Env.Rand().Fork()

		// The compiler heap arena: each job slot recycles its own pages,
		// modelling exec/exit address-space churn.
		arena := pr.Reserve(cfg.Jobs * cfg.HeapPages)
		nextFile := 0
		done := newBarrier(vm.M.Env, cfg.Jobs)
		for jb := 0; jb < cfg.Jobs; jb++ {
			jb := jb
			vm.OS.Go("cc1", pr, func(wt *guest.Thread) {
				defer done.arrive()
				heap := arena + jb*cfg.HeapPages
				for !wt.ProcKilled() {
					if nextFile >= cfg.Files {
						return
					}
					fidx := nextFile
					nextFile++
					// Read this unit's sources plus one shared header
					// region (cached after the first few units).
					srcOff := int64(fidx*cfg.SrcBlocks) * 4096
					wt.ReadFile(tree, srcOff, int64(cfg.SrcBlocks)*4096)
					hdr := int64(rng.Intn(64)) * 4096
					wt.ReadFile(tree, hdr, 4096)

					// Fresh compiler process: heap pages freed by the
					// previous unit are reallocated and zeroed — exactly
					// the GFN-recycling pattern behind false reads.
					for hp := 0; hp < cfg.HeapPages && !wt.ProcKilled(); hp++ {
						wt.OverwriteAnon(pr, heap+hp, true)
					}
					wt.Compute(cfg.CPUPerFile)
					// Some heap pages are written with data structures.
					for hp := 0; hp < cfg.HeapPages/4 && !wt.ProcKilled(); hp++ {
						wt.WriteAnonSpan(pr, heap+hp, 0, 2048)
					}
					// Release the heap back to the guest allocator.
					for hp := 0; hp < cfg.HeapPages; hp++ {
						wt.FreeAnon(pr, heap+hp)
					}
					// Emit the object file.
					objOff := int64(fidx*cfg.ObjBlocks) * 4096
					wt.WriteFile(objs, objOff, int64(cfg.ObjBlocks)*4096)
				}
			})
		}
		done.wait(t.P)
		if !t.ProcKilled() {
			t.Sync(objs)
		}
	})
}
