package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"

	"vswapsim/internal/hyper"
	"vswapsim/internal/swapback"
)

// This file is the machine-readable report path. Text tables (Report) stay
// the human-facing output; JSONReport is the same content plus the
// machine-level observability data (counters, latency histograms, phase
// accounting, trace tails) that the tables do not surface.
//
// Determinism: run records are collected concurrently under the parallel
// executor, so arrival order is scheduling-dependent. sorted() orders them
// by (label, content hash); identical runs serialize identically, so the
// final JSON bytes are bit-identical between serial and parallel execution.

// RunRecord couples one simulated machine's report with a label describing
// which run of the experiment produced it.
type RunRecord struct {
	Label  string           `json:"label"`
	Report *hyper.RunReport `json:"report"`
}

// runLog accumulates RunRecords from concurrently executing runs.
type runLog struct {
	mu   sync.Mutex
	recs []RunRecord
}

func (rl *runLog) add(label string, rep *hyper.RunReport) {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	rl.recs = append(rl.recs, RunRecord{Label: label, Report: rep})
	rl.mu.Unlock()
}

// addRecords replays already-collected records (e.g. from a memoized sweep)
// into this log. sorted() re-orders everything, so replay order is free.
func (rl *runLog) addRecords(recs []RunRecord) {
	if rl == nil || len(recs) == 0 {
		return
	}
	rl.mu.Lock()
	rl.recs = append(rl.recs, recs...)
	rl.mu.Unlock()
}

// sorted returns the records in a scheduling-independent order: by label,
// then by the sha256 of the serialized report (ties can only be records
// with identical bytes, whose relative order is immaterial).
func (rl *runLog) sorted() []RunRecord {
	if rl == nil {
		return nil
	}
	rl.mu.Lock()
	recs := make([]RunRecord, len(rl.recs))
	copy(recs, rl.recs)
	rl.mu.Unlock()
	keys := make([]string, len(recs))
	for i, r := range recs {
		data, err := json.Marshal(r.Report)
		if err != nil {
			panic("experiment: run report not serializable: " + err.Error())
		}
		sum := sha256.Sum256(data)
		keys[i] = r.Label + "\x00" + hex.EncodeToString(sum[:])
	}
	sort.Sort(&recSorter{recs: recs, keys: keys})
	return recs
}

type recSorter struct {
	recs []RunRecord
	keys []string
}

func (s *recSorter) Len() int           { return len(s.recs) }
func (s *recSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *recSorter) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// EnableRunLog arms per-run report collection on this Options value: every
// machine simulated under it contributes a RunRecord. It returns the fetch
// function; call it after the experiment finishes to get the records in
// deterministic order. Collection follows the Options value into nested
// runs, so enable it before passing Options to Run/RunAll.
func (o *Options) EnableRunLog() func() []RunRecord {
	rl := &runLog{}
	o.runlog = rl
	return rl.sorted
}

// JSONTable is a Table in serializable form.
type JSONTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// JSONReport is the machine-readable form of one experiment's output:
// the text report's identity, tables and notes, its fingerprint, and one
// RunRecord per simulated machine (when collection was enabled).
type JSONReport struct {
	ID          string      `json:"id"`
	Title       string      `json:"title"`
	PaperNote   string      `json:"paper_note,omitempty"`
	Fingerprint string      `json:"fingerprint"`
	Tables      []JSONTable `json:"tables"`
	Notes       []string    `json:"notes,omitempty"`
	Runs        []RunRecord `json:"runs,omitempty"`
	// Failures lists the cells that were killed by the watchdog,
	// panicked, or were canceled — in deterministic order, omitted
	// entirely on a healthy run so such reports stay byte-identical to
	// pre-hardening output.
	Failures []FailureRecord `json:"failures,omitempty"`
}

// BuildJSON assembles the machine-readable report from a finished text
// report, its collected run records, and its failure records.
func BuildJSON(rep *Report, runs []RunRecord, fails []FailureRecord) *JSONReport {
	j := &JSONReport{
		ID:          rep.ID,
		Title:       rep.Title,
		PaperNote:   rep.PaperNote,
		Fingerprint: rep.Fingerprint(),
		Notes:       rep.Notes,
		Runs:        runs,
		Failures:    fails,
	}
	for _, t := range rep.Tables {
		j.Tables = append(j.Tables, JSONTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	return j
}

// JSONDocument is the top-level -json output: the invocation parameters
// plus one JSONReport per experiment, in registry order.
type JSONDocument struct {
	Seed  uint64  `json:"seed"`
	Scale float64 `json:"scale"`
	Quick bool    `json:"quick"`
	// Parallel is omitted (zeroed) in job-granular documents (see
	// jobrun.go): results are byte-identical at any parallelism, so the
	// serving daemon's cached documents must not encode it. CLI documents
	// keep reporting it (always >= 1 after normalization).
	Parallel int `json:"parallel,omitempty"`
	// Faults is the canonical fault-injection spec; omitted (keeping the
	// document byte-identical to faultless builds) when no plan is set.
	Faults string `json:"faults,omitempty"`
	// Swapback/SwapPolicy name the swap backend tier and tiering policy;
	// omitted under the defaults (hdd/writeback) so default documents stay
	// byte-identical to pre-backend output.
	Swapback   string `json:"swapback,omitempty"`
	SwapPolicy string `json:"swappolicy,omitempty"`
	// Incomplete marks a partial document: the run was canceled (SIGINT
	// or a fatal budget breach) before every experiment finished.
	// Omitted on complete runs so their bytes are unchanged.
	Incomplete  bool          `json:"incomplete,omitempty"`
	Experiments []*JSONReport `json:"experiments"`
}

// BuildJSONDocument wraps per-experiment JSON reports with the options
// that produced them.
func BuildJSONDocument(o Options, reps []*JSONReport) *JSONDocument {
	o = o.normalized()
	doc := &JSONDocument{
		Seed:        o.Seed,
		Scale:       o.Scale,
		Quick:       o.Quick,
		Parallel:    o.Parallel,
		Faults:      o.Faults.String(),
		Experiments: reps,
	}
	if o.Swapback != swapback.HDD {
		doc.Swapback = o.Swapback.String()
	}
	if o.SwapPolicy != swapback.PolicyWriteback {
		doc.SwapPolicy = o.SwapPolicy.String()
	}
	return doc
}
