// BenchmarkRegistry runs every registered experiment as a sub-benchmark
// (quick mode, reduced scale), so `go test -bench=Registry` walks the whole
// evaluation and `-bench=Registry/fig5` isolates one figure. The memoized
// pbzip2 sweep is reset each iteration so fig5/fig11 pay full cost.
package vswapsim

import (
	"testing"

	"vswapsim/internal/experiment"
)

func BenchmarkRegistry(b *testing.B) {
	for _, e := range experiment.Registry {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiment.ResetCaches()
				e.Run(benchOpts())
			}
		})
	}
}
