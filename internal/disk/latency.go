// Package disk models the physical storage substrate: a single rotating
// hard drive with position-dependent latency, a FCFS request queue, and a
// block-range layout that carves the drive into guest disk images and the
// host swap area.
//
// The latency model matters for the reproduction: "decayed swap
// sequentiality" (paper §3) is only observable when scattered blocks cost
// more than contiguous ones. The defaults approximate the paper's testbed
// drive, a 7200 RPM Seagate Constellation.
package disk

import (
	"vswapsim/internal/sim"
)

// BlockSize is the unit of all disk addressing in the simulator: 4 KiB,
// matching the page size (the Mapper mandates 4 KiB logical sectors,
// paper §4.1 "Page Alignment").
const BlockSize = 4096

// SectorsPerBlock converts 4 KiB blocks to the 512-byte sectors the paper
// reports (Fig. 9d, Table 2).
const SectorsPerBlock = BlockSize / 512

// LatencyModel computes service times for a rotating drive.
type LatencyModel struct {
	// TrackToTrackSeek is the cost of a minimal head movement.
	TrackToTrackSeek sim.Duration
	// AverageSeek is the cost of a seek across a third of the drive.
	AverageSeek sim.Duration
	// FullStrokeSeek is the cost of a seek across the whole drive.
	FullStrokeSeek sim.Duration
	// AverageRotational is the average rotational delay (half a spin).
	AverageRotational sim.Duration
	// PerBlockTransfer is the media transfer time for one 4 KiB block.
	PerBlockTransfer sim.Duration
	// RequestOverhead is a per-request fixed cost regardless of position
	// (flash translation, protocol). Zero for the mechanical models.
	RequestOverhead sim.Duration
	// TotalBlocks is the addressable capacity, used to scale seeks.
	TotalBlocks int64
}

// Constellation7200 returns parameters approximating the 2 TB 7200 RPM
// enterprise drive used in the paper's evaluation.
func Constellation7200() LatencyModel {
	return LatencyModel{
		TrackToTrackSeek:  sim.Duration(300 * sim.Microsecond),
		AverageSeek:       sim.Duration(8500 * sim.Microsecond),
		FullStrokeSeek:    sim.Duration(16 * sim.Millisecond),
		AverageRotational: sim.Duration(4167 * sim.Microsecond), // 7200 RPM
		PerBlockTransfer:  sim.Duration(29 * sim.Microsecond),   // ~140 MB/s
		TotalBlocks:       2 << 28,                              // 2 TB in 4 KiB blocks
	}
}

// SSD840 returns parameters approximating a SATA consumer SSD of the
// paper's era: position-independent latency, so decayed placement stops
// mattering — but VSwapper's write elimination still spares endurance
// (the paper notes the benefit for systems employing SSDs, §5.1).
func SSD840() LatencyModel {
	return LatencyModel{
		PerBlockTransfer: sim.Duration(8 * sim.Microsecond), // ~500 MB/s
		RequestOverhead:  sim.Duration(60 * sim.Microsecond),
		TotalBlocks:      512 << 30 / 4096, // 512 GB
	}
}

// SeekCost returns the head-movement cost for jumping from block `from` to
// block `to`. A zero-distance jump still pays rotational latency unless the
// access is strictly sequential, which the Device detects separately.
func (m LatencyModel) SeekCost(from, to int64) sim.Duration {
	d := from - to
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	// Piecewise-linear: short seeks cost near track-to-track, the average
	// distance (TotalBlocks/3) costs AverageSeek, the full stroke costs
	// FullStrokeSeek.
	third := m.TotalBlocks / 3
	if d <= third {
		span := m.AverageSeek - m.TrackToTrackSeek
		return m.TrackToTrackSeek + sim.Duration(int64(span)*d/third)
	}
	span := m.FullStrokeSeek - m.AverageSeek
	rest := m.TotalBlocks - third
	return m.AverageSeek + sim.Duration(int64(span)*(d-third)/rest)
}

// Service returns the cost of transferring nblocks starting at `start`
// given the head currently sits after block `headPos` (i.e. the next
// sequential block is headPos). Strictly sequential access pays transfer
// time only.
func (m LatencyModel) Service(headPos, start int64, nblocks int) sim.Duration {
	xfer := sim.Duration(int64(m.PerBlockTransfer)*int64(nblocks)) + m.RequestOverhead
	if start == headPos {
		return xfer // streaming
	}
	return m.SeekCost(headPos, start) + m.AverageRotational + xfer
}
