package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vswapsim/internal/serve"
)

// registeredFlags returns the name of every flag vswapsimd registers.
func registeredFlags(t *testing.T) []string {
	t.Helper()
	var c cliConfig
	fs := newFlagSet(&c)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no flags registered")
	}
	return names
}

// TestParseArgsTable: the daemon's flag validation, positive and negative.
func TestParseArgsTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"defaults", nil, ""},
		{"all knobs", []string{
			"-addr", ":0", "-cachedir", "/tmp/c", "-statefile", "/tmp/s",
			"-workers", "4", "-queue", "32", "-parallel", "2",
			"-maxbody", "4096", "-rate", "10", "-burst", "20",
			"-retryafter", "2s", "-maxevents", "1000000", "-celltimeout", "30s",
			"-heartbeat", "1s", "-writetimeout", "5s", "-draintimeout", "3s",
			"-diagdir", "/tmp/d"}, ""},
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"empty cachedir", []string{"-cachedir", ""}, "-cachedir"},
		{"zero workers", []string{"-workers", "0"}, "-workers"},
		{"negative workers", []string{"-workers", "-3"}, "-workers"},
		{"zero queue", []string{"-queue", "0"}, "-queue"},
		{"negative parallel", []string{"-parallel", "-1"}, "-parallel"},
		{"zero maxbody", []string{"-maxbody", "0"}, "-maxbody"},
		{"negative rate", []string{"-rate", "-1"}, "-rate"},
		{"negative burst", []string{"-burst", "-1"}, "-burst"},
		{"negative celltimeout", []string{"-celltimeout", "-1s"}, "durations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunUsageErrors: every bad invocation exits 2 with the one-line
// usage hint on stderr.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-parallel", "-2"},
		{"-nosuchflag"},
		{"stray-positional"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
		if s := stderr.String(); !strings.Contains(strings.ToLower(s), "usage") {
			t.Errorf("run(%v) stderr lacks a usage hint: %q", args, s)
		}
	}
}

// TestUsageMentionsEveryFlag pins -h output against flag-registration
// drift, like the vswapsim equivalent.
func TestUsageMentionsEveryFlag(t *testing.T) {
	var c cliConfig
	fs := newFlagSet(&c)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	usage := buf.String()
	for _, name := range registeredFlags(t) {
		if !strings.Contains(usage, "-"+name) {
			t.Errorf("usage output does not mention registered flag -%s", name)
		}
	}
	if !strings.Contains(usage, "vswapsimd [flags]") {
		t.Error("usage header does not list the command form")
	}
}

// TestREADMEDocumentsEveryFlag extends the README drift guarantee to the
// daemon: every vswapsimd flag needs a README mention.
func TestREADMEDocumentsEveryFlag(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	for _, name := range registeredFlags(t) {
		if !strings.Contains(readme, "`-"+name) {
			t.Errorf("README.md does not document vswapsimd flag -%s", name)
		}
	}
	if !strings.Contains(readme, "Serving mode") {
		t.Error("README.md lacks the \"Serving mode\" section")
	}
}

// TestServerConfigMapping: the command line lands on serve.Config intact.
func TestServerConfigMapping(t *testing.T) {
	c, err := parseArgs([]string{
		"-cachedir", "/tmp/c", "-statefile", "/tmp/s", "-workers", "3",
		"-queue", "9", "-parallel", "2", "-maxbody", "2048", "-rate", "5",
		"-burst", "7", "-retryafter", "2s", "-maxevents", "12345",
		"-celltimeout", "4s", "-diagdir", "/tmp/d"})
	if err != nil {
		t.Fatal(err)
	}
	got := c.serverConfig()
	want := serve.Config{
		CacheDir: "/tmp/c", StatePath: "/tmp/s", Workers: 3, QueueDepth: 9,
		Parallel: 2, MaxBodyBytes: 2048, RatePerSec: 5, RateBurst: 7,
		RetryAfter: 2 * time.Second, MaxEventsCap: 12345,
		CellTimeoutCap: 4 * time.Second,
		Heartbeat:      5 * time.Second, WriteTimeout: 10 * time.Second,
		DiagDir: "/tmp/d",
	}
	// Config carries a func field (Runner), so compare via reflection.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("serverConfig mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for cross-goroutine capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon launches serveDaemon in-process on an ephemeral port and
// returns its base URL, its state-file path, and the exit-code channel.
func startDaemon(t *testing.T, extraArgs []string, stdout *syncBuffer) (string, string, chan int) {
	t.Helper()
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-cachedir", filepath.Join(dir, "cache"),
		"-statefile", statePath,
	}, extraArgs...)
	c, err := parseArgs(args)
	if err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	codeCh := make(chan int, 1)
	go func() { codeCh <- serveDaemon(c, stdout, &stderr) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], statePath, codeCh
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its listen address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitExit(t *testing.T, codeCh chan int) int {
	t.Helper()
	select {
	case code := <-codeCh:
		return code
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after signal")
		return -1
	}
}

// TestDaemonSIGTERMCleanExit is the end-to-end clean-shutdown contract:
// serve a real job, SIGTERM with nothing in flight, exit 0 with every
// accepted job settled and no recovery state left behind.
func TestDaemonSIGTERMCleanExit(t *testing.T) {
	if testing.Short() {
		t.Skip("sends a real SIGTERM to the test process")
	}
	var stdout syncBuffer
	base, statePath, codeCh := startDaemon(t, nil, &stdout)
	cl := serve.NewClient(base)
	cl.PollInterval = 10 * time.Millisecond
	st, err := cl.Run(context.Background(), serve.JobRequest{ID: "tab1", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.ExitHint != 0 {
		t.Fatalf("job: state=%s exit=%d", st.State, st.ExitHint)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, codeCh); code != exitOK {
		t.Fatalf("exit code %d, want %d; stdout:\n%s", code, exitOK, stdout.String())
	}
	if !strings.Contains(stdout.String(), "clean drain") {
		t.Fatalf("stdout lacks clean-drain line:\n%s", stdout.String())
	}
	// Nothing was pending: no recovery state on disk.
	if _, err := os.Stat(statePath); !os.IsNotExist(err) {
		t.Fatal("clean drain left a state file behind")
	}
}

// TestDaemonSIGTERMMidJobForcedDrain: SIGTERM while a long job is in
// flight (and a drain window too short for it) cancels the job, marks its
// result incomplete, exits 3, and persists the job for restart recovery.
func TestDaemonSIGTERMMidJobForcedDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("sends a real SIGTERM to the test process")
	}
	var stdout syncBuffer
	base, statePath, codeCh := startDaemon(t, []string{"-draintimeout", "200ms", "-workers", "1"}, &stdout)
	cl := serve.NewClient(base)
	cl.PollInterval = 10 * time.Millisecond

	// fig5 un-quick runs for seconds — plenty of time to interrupt.
	sub, err := cl.Submit(context.Background(), serve.JobRequest{ID: "fig5"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := cl.Job(context.Background(), sub.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, codeCh); code != exitForcedDrain {
		t.Fatalf("exit code %d, want %d; stdout:\n%s", code, exitForcedDrain, stdout.String())
	}
	// The interrupted job persisted for the next start, under its own id.
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("forced drain persisted no state: %v", err)
	}
	var st struct {
		Pending []struct {
			ID      string           `json:"id"`
			Request serve.JobRequest `json:"request"`
		} `json:"pending"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Pending) != 1 || st.Pending[0].ID != sub.JobID || st.Pending[0].Request.ID != "fig5" {
		t.Fatalf("persisted state %s, want the interrupted fig5 job %s", data, sub.JobID)
	}
}
