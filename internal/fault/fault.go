// Package fault is the deterministic fault-injection layer: a parsed,
// seeded Plan of injectable adverse events (disk errors and latency
// spikes, transient swap-in failures, swap-slot exhaustion, balloon
// refusals, emulation-buffer starvation, swap-cache poisoning) plus the
// per-machine Injector that draws them from its own PRNG stream.
//
// Determinism contract: an Injector's stream is seeded with
// sim.DeriveSeed(machine seed, "fault-injector") and never touches the
// simulation environment's PRNG, so (a) identical seed + plan reproduce
// the exact same fault schedule, serial or -parallel, and (b) an empty
// plan is completely invisible — no RNG draws, no counters, no extra
// events — which the golden-report tests verify byte-for-byte.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// DiskReadErr / DiskWriteErr are device-level transfer errors; the
	// disk device absorbs them with bounded exponential-backoff retries.
	DiskReadErr Kind = iota
	DiskWriteErr
	// DiskLatency is a latency spike: the request's service time is
	// extended by the rule's Extra duration.
	DiskLatency
	// SwapInFail is a transient swap-in read failure; hostmm retries with
	// backoff and, on exhaustion, poisons the slot (degrades the page to
	// plain dirty swap).
	SwapInFail
	// SlotExhaust makes the swap-slot allocator refuse one allocation, as
	// a full/fragmenting swap device would; reclaim rotates the victim.
	SlotExhaust
	// BalloonRefuse makes the guest balloon driver's next inflate or
	// deflate step fail; the driver backs off and retries.
	BalloonRefuse
	// EmuStarve denies the Preventer an emulation buffer; the write fault
	// falls back to the ordinary eager swap-in path.
	EmuStarve
	// MapPoison marks the Mapper's swap cache untrustworthy for one disk
	// read; the request degrades to the baseline copying flow.
	MapPoison

	numKinds
)

var kindNames = [numKinds]string{
	DiskReadErr:   "disk-read-err",
	DiskWriteErr:  "disk-write-err",
	DiskLatency:   "disk-lat",
	SwapInFail:    "swapin-fail",
	SlotExhaust:   "slot-exhaust",
	BalloonRefuse: "balloon-refuse",
	EmuStarve:     "emu-starve",
	MapPoison:     "map-poison",
}

// counterName maps each kind to the metrics counter its firings increment.
var counterName = [numKinds]string{
	DiskReadErr:   metrics.FaultDiskReadErrors,
	DiskWriteErr:  metrics.FaultDiskWriteErrors,
	DiskLatency:   metrics.FaultDiskDelays,
	SwapInFail:    metrics.FaultSwapInTransient,
	SlotExhaust:   metrics.FaultSlotRefusals,
	BalloonRefuse: metrics.FaultBalloonRefusals,
	EmuStarve:     metrics.FaultEmuStarved,
	MapPoison:     metrics.FaultMapperPoisoned,
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DefaultDiskLatencyExtra is the latency-spike magnitude when a disk-lat
// rule omits its duration argument.
const DefaultDiskLatencyExtra = 2 * sim.Millisecond

// maxExtra bounds a rule's duration argument; anything longer than a
// minute of virtual time is a spec mistake, not a latency spike.
const maxExtra = 60 * sim.Second

// Rule is one active fault class in a Plan: a firing probability per draw
// plus a kind-specific duration argument (only DiskLatency uses Extra).
type Rule struct {
	Rate  float64
	Extra sim.Duration
}

// Plan is a parsed, normalized fault-injection spec. The zero Plan injects
// nothing. Plans are comparable and round-trip exactly through
// String/ParsePlan, which the fuzz target enforces.
type Plan struct {
	rules [numKinds]Rule
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p == Plan{}
}

// Rate returns the firing probability of kind k.
func (p Plan) Rate(k Kind) float64 { return p.rules[k].Rate }

// Extra returns the duration argument of kind k (zero unless set).
func (p Plan) Extra(k Kind) sim.Duration { return p.rules[k].Extra }

// String renders the canonical spec: active rules in kind order, joined
// with ";", e.g. "disk-read-err:0.01;disk-lat:0.05:2ms". ParsePlan of the
// result reproduces the plan exactly.
func (p Plan) String() string {
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		r := p.rules[k]
		if r.Rate == 0 {
			continue
		}
		s := kindNames[k] + ":" + strconv.FormatFloat(r.Rate, 'g', -1, 64)
		if k == DiskLatency {
			s += ":" + r.Extra.Std().String()
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses a -faults spec: ";"-separated rules of the form
// "kind:rate" or, for disk-lat, "kind:rate:duration" (duration in Go
// syntax, e.g. 2ms, 500us; default 2ms). Rates are probabilities in
// [0, 1]; a rate of 0 switches the rule off. The empty spec is the empty
// plan. Each kind may appear at most once.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	var have [numKinds]bool
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return Plan{}, fmt.Errorf("fault: rule %q: want kind:rate[:duration]", part)
		}
		k, ok := kindByName(strings.TrimSpace(fields[0]))
		if !ok {
			return Plan{}, fmt.Errorf("fault: unknown kind %q (known: %s)",
				fields[0], strings.Join(kindNames[:], ", "))
		}
		if have[k] {
			return Plan{}, fmt.Errorf("fault: kind %s specified twice", k)
		}
		have[k] = true
		rate, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: rule %q: bad rate: %v", part, err)
		}
		if !(rate >= 0 && rate <= 1) { // also rejects NaN
			return Plan{}, fmt.Errorf("fault: rule %q: rate must be in [0, 1]", part)
		}
		extra := sim.Duration(0)
		if len(fields) == 3 {
			if k != DiskLatency {
				return Plan{}, fmt.Errorf("fault: rule %q: only %s takes a duration", part, DiskLatency)
			}
			d, err := time.ParseDuration(strings.TrimSpace(fields[2]))
			if err != nil {
				return Plan{}, fmt.Errorf("fault: rule %q: bad duration: %v", part, err)
			}
			if d < 0 || sim.DurationOf(d) > maxExtra {
				return Plan{}, fmt.Errorf("fault: rule %q: duration out of range [0, %s]", part, maxExtra)
			}
			extra = sim.DurationOf(d)
		} else if k == DiskLatency {
			extra = DefaultDiskLatencyExtra
		}
		if rate == 0 {
			continue // normalized away: zero-rate rules never fire
		}
		p.rules[k] = Rule{Rate: rate, Extra: extra}
	}
	return p, nil
}

// MustParse is ParsePlan for literals in tests; it panics on error.
func MustParse(spec string) Plan {
	p, err := ParsePlan(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// RandomPlan derives a random, always non-empty plan from seed: each kind
// is active with probability 1/2 at a small rate (≤ ~3%), sized so every
// workload still terminates. The property tests sweep these across many
// seeds with the invariant auditor attached.
func RandomPlan(seed uint64) Plan {
	rng := sim.NewRNG(seed)
	var p Plan
	for k := Kind(0); k < numKinds; k++ {
		if rng.Uint64()&1 == 0 {
			continue
		}
		// Quantize the rate so the spec stays short and round-trips.
		rate := float64(1+rng.Intn(30)) / 1000
		r := Rule{Rate: rate}
		if k == DiskLatency {
			r.Extra = sim.Duration(1+rng.Intn(20)) * 100 * sim.Microsecond
		}
		p.rules[k] = r
	}
	if p.Empty() {
		p.rules[SwapInFail] = Rule{Rate: 0.01}
	}
	return p
}
