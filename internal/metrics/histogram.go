package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"vswapsim/internal/sim"
)

// Histogram names used across the simulator. Like the counter names above,
// they are centralized so the report schema stays greppable. All histograms
// record virtual nanoseconds.
const (
	// HistFaultMajor is the end-to-end latency of host major faults (the
	// disk read plus fault-handling CPU), per serviced fault.
	HistFaultMajor = "hist.fault.major.ns"
	// HistFaultMinor is the latency of minor fault handling (FirstTouch,
	// MinorMap, COW breaks), which includes any reclaim the charge forced.
	HistFaultMinor = "hist.fault.minor.ns"
	// HistDiskQueue is how long a disk request waited behind earlier
	// requests before the device started serving it.
	HistDiskQueue = "hist.disk.queue.ns"
	// HistDiskService is the device service time of one request (seek +
	// rotation + transfer).
	HistDiskService = "hist.disk.service.ns"
	// HistPreventerLife is the lifetime of a Preventer emulation buffer,
	// from the first trapped write to remap/merge completion.
	HistPreventerLife = "hist.preventer.lifetime.ns"
	// HistFaultBackoff records the backoff delays consumers insert while
	// retrying injected faults (internal/fault); empty when injection is
	// off.
	HistFaultBackoff = "hist.fault.backoff.ns"
	// HistSwapbackRead / HistSwapbackWrite record per-request completion
	// latency (queueing included) of swap I/O routed through a non-default
	// swap backend (internal/swapback); empty under the hdd default.
	HistSwapbackRead  = "hist.swapback.read.ns"
	HistSwapbackWrite = "hist.swapback.write.ns"
)

// histBuckets is the number of power-of-two buckets. Bucket i counts
// observations in [2^i, 2^(i+1)) ns (bucket 0 also absorbs v <= 1), so the
// range spans 1 ns to ~3.2 virtual days — every latency the simulator can
// produce. Fixed boundaries keep histograms mergeable and bit-identical
// across runs: no adaptive resizing, no floating-point accumulation.
const histBuckets = 48

// Histogram is a fixed-bucket latency histogram over virtual durations.
// Observations and quantiles are pure integer arithmetic, so identical
// observation multisets yield identical snapshots regardless of order —
// the property the serial-vs-parallel equivalence tests rely on.
type Histogram struct {
	name    string
	count   int64
	sum     int64
	buckets [histBuckets]int64
}

// Name returns the histogram name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a duration to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i in nanoseconds.
func BucketUpper(i int) int64 { return int64(1) << (i + 1) }

// Observe records one duration. Negative durations are a bug in the
// caller's accounting.
func (h *Histogram) Observe(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative observation %d in %s", v, h.name))
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// SumNS returns the total of all observed durations in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sum }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in
// nanoseconds: the upper boundary of the bucket holding the rank-q
// observation. Zero if the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// P50, P95 and P99 are the quantile helpers the reports use.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }
func (h *Histogram) P95() int64 { return h.Quantile(0.95) }
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds other's observations into h. Because boundaries are fixed,
// merging is exact.
func (h *Histogram) Merge(other *Histogram) {
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// BucketCount is one non-empty bucket in a snapshot: N observations with
// duration < LeNS (and >= LeNS/2, except the first bucket).
type BucketCount struct {
	LeNS int64 `json:"le_ns"`
	N    int64 `json:"n"`
}

// HistogramSnapshot is the serializable view of a histogram: totals,
// quantile summaries, and the non-empty buckets.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumNS   int64         `json:"sum_ns"`
	P50NS   int64         `json:"p50_ns"`
	P95NS   int64         `json:"p95_ns"`
	P99NS   int64         `json:"p99_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count,
		SumNS: h.sum,
		P50NS: h.P50(),
		P95NS: h.P95(),
		P99NS: h.P99(),
	}
	for i, n := range h.buckets {
		if n != 0 {
			s.Buckets = append(s.Buckets, BucketCount{LeNS: BucketUpper(i), N: n})
		}
	}
	return s
}

// String renders a one-line summary, e.g. for debugging dumps.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s count=%d p50=%s p95=%s p99=%s",
		h.name, h.count,
		sim.Duration(h.P50()), sim.Duration(h.P95()), sim.Duration(h.P99()))
}

// Histogram returns (creating if needed) the named histogram of the set.
func (s *Set) Histogram(name string) *Histogram {
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{name: name}
		s.hists[name] = h
	}
	return h
}

// Histograms returns the set's histograms sorted by name.
func (s *Set) Histograms() []*Histogram {
	names := make([]string, 0, len(s.hists))
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*Histogram, len(names))
	for i, k := range names {
		out[i] = s.hists[k]
	}
	return out
}

// HistogramString renders every non-empty histogram, one per line.
func (s *Set) HistogramString() string {
	var b strings.Builder
	for _, h := range s.Histograms() {
		if h.Count() > 0 {
			b.WriteString(h.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
