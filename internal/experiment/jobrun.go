package experiment

import (
	"fmt"
	"runtime/debug"
)

// This file is the job-granular entry point the serving daemon
// (internal/serve, cmd/vswapsimd) builds on: one experiment in, one
// machine-readable document out, with the properties content-addressed
// caching needs spelled out and enforced here.
//
// A job document deliberately omits the invocation's parallelism: the
// executor's output is byte-identical at any -parallel (the golden and
// equivalence tests enforce it), so two jobs differing only in worker
// count must serialize to the very same bytes — otherwise the result
// cache would fragment on a knob that cannot influence results.

// RunDocument executes one experiment end to end — run log and failure
// log armed — and returns its machine-readable document plus the raw
// RunResult (for failure counting and diag bundles). The document's
// Parallel field is zeroed (and therefore omitted from the JSON), making
// the serialized bytes a pure function of the experiment and the
// result-affecting options; Incomplete is set when the invocation's
// context was canceled mid-run.
func RunDocument(e Experiment, o Options) (*JSONDocument, RunResult) {
	res := RunAll([]Experiment{e}, o, nil)[0]
	doc := BuildJSONDocument(o, []*JSONReport{BuildJSON(res.Report, res.Runs, res.Failures)})
	doc.Parallel = 0
	doc.Incomplete = o.canceled()
	return doc, res
}

// Render reconstructs the human-readable report text from a JSONReport —
// the exact layout Report.String produces — so a thin client holding only
// the daemon's JSON document can print the same tables a local run would.
func (j *JSONReport) Render() string {
	r := &Report{ID: j.ID, Title: j.Title, PaperNote: j.PaperNote, Notes: j.Notes}
	for _, t := range j.Tables {
		r.Tables = append(r.Tables, &Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	return r.String()
}

// NewPanicFailure converts a recovered panic value into a FailureRecord,
// applying the same message/stack sanitization the in-cell shields use.
// The serving daemon uses it for panics that escape the executor's own
// shields (request compilation, document assembly), so a crashing job
// still reports in the one structured failure vocabulary.
func NewPanicFailure(label string, seed uint64, r interface{}) FailureRecord {
	return FailureRecord{
		Label:    label,
		Seed:     seed,
		BaseSeed: seed,
		Kind:     FailPanic,
		Message:  sanitizeMessage(fmt.Sprint(r)),
		Stack:    sanitizeStack(debug.Stack()),
	}
}
