package sim

import "testing"

// TestWaitTimeoutSignaledEarly pins the drain behavior WaitTimeout exists
// for: a broadcast mid-wait resumes the waiter at the broadcast time, not
// at the end of the interval, while the pending timer still fires as a
// no-op so the run's final clock is identical to an uninterrupted wait.
func TestWaitTimeoutSignaledEarly(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var resumed Time
	var signaled bool
	env.Go("waiter", func(p *Proc) {
		signaled = sig.WaitTimeout(p, 10*Second)
		resumed = p.Now()
	})
	env.Go("caller", func(p *Proc) {
		p.Sleep(Second)
		sig.Broadcast()
	})
	end := env.Run()
	if !signaled {
		t.Fatal("broadcast arrived first; WaitTimeout must report signaled")
	}
	if resumed != Time(Second) {
		t.Fatalf("waiter resumed at %v, want 1s (the broadcast time)", resumed)
	}
	if end != Time(10*Second) {
		t.Fatalf("run ended at %v, want 10s: the timer must still fire as a no-op", end)
	}
	if sig.Pending() != 0 {
		t.Fatalf("signal still tracks %d waiters", sig.Pending())
	}
}

// TestWaitTimeoutExpires covers the other resolution: no broadcast, the
// timer wins, and the waiter is removed from the signal's queue so a later
// Broadcast cannot double-wake it.
func TestWaitTimeoutExpires(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var resumed Time
	var signaled bool
	env.Go("waiter", func(p *Proc) {
		signaled = sig.WaitTimeout(p, 2*Second)
		resumed = p.Now()
	})
	end := env.Run()
	if signaled {
		t.Fatal("nothing broadcast; WaitTimeout must report a timeout")
	}
	if resumed != Time(2*Second) || end != Time(2*Second) {
		t.Fatalf("resumed=%v end=%v, want 2s for both", resumed, end)
	}
	if sig.Pending() != 0 {
		t.Fatalf("expired waiter still pending on the signal")
	}
	// The signal must remain usable: a plain wait/broadcast cycle after an
	// expiry must not touch the stale timed waiter.
	env2 := NewEnv(1)
	sig2 := NewSignal(env2)
	env2.Go("w", func(p *Proc) {
		sig2.WaitTimeout(p, Second) // expires
		sig2.Wait(p)                // then waits plainly
	})
	env2.Go("b", func(p *Proc) {
		p.Sleep(2 * Second)
		sig2.Broadcast()
	})
	if end := env2.Run(); end != Time(2*Second) {
		t.Fatalf("reuse after expiry ended at %v, want 2s", end)
	}
}
