package hostmm

import (
	"testing"

	"vswapsim/internal/disk"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

func TestKswapdKeepsFreeReserve(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	model := disk.Constellation7200()
	dev := disk.NewDevice(env, model, met)
	layout := disk.NewLayout(model.TotalBlocks)
	swap := NewSwapArea(layout.Reserve("swap", 1<<14))
	pool := mem.NewFramePool(1000)
	mgr := NewManager(env, met, dev, pool, swap, Config{})
	cg := mgr.NewCgroup("vm", 0)

	stop := mgr.StartKswapd(KswapdConfig{
		Interval: 10 * sim.Millisecond,
		LowFrac:  0.1, // 100 frames
		HighFrac: 0.2, // 200 frames
	})
	env.Go("hog", func(p *sim.Proc) {
		// Fill the pool well past the low watermark, then idle so kswapd
		// can catch up.
		for i := 0; i < 950; i++ {
			pg := mgr.NewPage(cg, i)
			mgr.FirstTouch(p, pg, GuestCtx)
		}
		p.Sleep(2 * sim.Second)
		if pool.Free() < 100 {
			t.Errorf("kswapd left only %d free frames", pool.Free())
		}
		stop()
	})
	env.Run()
	if met.Get(metrics.HostPagesReclaimed) == 0 {
		t.Fatal("kswapd reclaimed nothing")
	}
}

func TestKswapdStops(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	dev := disk.NewDevice(env, disk.Constellation7200(), met)
	layout := disk.NewLayout(disk.Constellation7200().TotalBlocks)
	swap := NewSwapArea(layout.Reserve("swap", 1024))
	pool := mem.NewFramePool(100)
	mgr := NewManager(env, met, dev, pool, swap, Config{})
	stop := mgr.StartKswapd(KswapdConfig{Interval: 50 * sim.Millisecond, LowFrac: 0.1, HighFrac: 0.2})
	env.Go("stopper", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		stop()
	})
	end := env.Run() // must terminate
	if end > sim.Time(2*sim.Second) {
		t.Fatalf("kswapd kept the simulation alive until %v", end)
	}
}

// TestKswapdPartialConfigDefaults locks the per-field defaulting: a caller
// overriding one knob must still get defaults for the others. (The old
// code replaced the whole struct only when Interval was zero, so a config
// setting just LowFrac silently ran with a zero interval, and one setting
// just Interval ran with zero watermarks.)
func TestKswapdPartialConfigDefaults(t *testing.T) {
	def := DefaultKswapdConfig()
	got := (KswapdConfig{Interval: 7 * sim.Millisecond}).withDefaults()
	if got.Interval != 7*sim.Millisecond {
		t.Fatalf("explicit interval overwritten: %v", got.Interval)
	}
	if got.LowFrac != def.LowFrac || got.HighFrac != def.HighFrac {
		t.Fatalf("watermarks not defaulted: low=%v high=%v", got.LowFrac, got.HighFrac)
	}
	got = (KswapdConfig{LowFrac: 0.25}).withDefaults()
	if got.LowFrac != 0.25 {
		t.Fatalf("explicit LowFrac overwritten: %v", got.LowFrac)
	}
	if got.Interval != def.Interval || got.HighFrac != def.HighFrac {
		t.Fatalf("unset fields not defaulted: interval=%v high=%v", got.Interval, got.HighFrac)
	}
	if got := (KswapdConfig{}).withDefaults(); got != def {
		t.Fatalf("zero config = %+v, want full defaults %+v", got, def)
	}
}

// TestKswapdStopInterruptsSleep pins the drain contract of stop(): the
// daemon leaves its inter-scan sleep at the moment stop is called (next
// yield point) and never scans again, while the already-scheduled wakeup
// still fires as a no-op so the run's final virtual time is identical to
// the uninterrupted schedule — report phase totals must not depend on when
// shutdown lands inside the interval.
func TestKswapdStopInterruptsSleep(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	dev := disk.NewDevice(env, disk.Constellation7200(), met)
	layout := disk.NewLayout(disk.Constellation7200().TotalBlocks)
	swap := NewSwapArea(layout.Reserve("swap", 1024))
	pool := mem.NewFramePool(1000)
	mgr := NewManager(env, met, dev, pool, swap, Config{})
	cg := mgr.NewCgroup("vm", 0)

	stop := mgr.StartKswapd(KswapdConfig{Interval: 10 * sim.Second})
	env.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		stop() // interrupts the sleep that would otherwise run to 10s
		// Pressure arriving after stop must not be background-reclaimed:
		// the daemon is already gone, not dozing until its next wakeup.
		for i := 0; i < 950; i++ {
			pg := mgr.NewPage(cg, i)
			mgr.FirstTouch(p, pg, GuestCtx)
		}
	})
	end := env.Run()
	if got := met.Get(metrics.HostPagesScanned); got != 0 {
		t.Fatalf("kswapd scanned %d pages after stop", got)
	}
	if end != sim.Time(10*sim.Second) {
		t.Fatalf("run ended at %v, want 10s: the stale wakeup must still fire as a no-op", end)
	}
}

func TestSSDModelFlatLatency(t *testing.T) {
	m := disk.SSD840()
	near := m.Service(1000, 1001, 8)
	far := m.Service(1000, 1_000_000, 8)
	if near != far {
		t.Fatalf("SSD latency position-dependent: %v vs %v", near, far)
	}
	// On flash, sequential placement buys nothing: every request pays the
	// same per-command overhead.
	seq := m.Service(1000, 1000, 8)
	if seq != near {
		t.Fatalf("sequential (%v) differs from random (%v) on an SSD", seq, near)
	}
}
