package swapback

import (
	"testing"

	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// testRig wires the minimum machine state a Store needs.
type testRig struct {
	env  *sim.Env
	met  *metrics.Set
	dev  *disk.Device
	pool *mem.FramePool
}

func newRig(hostPages int) *testRig {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	return &testRig{
		env:  env,
		met:  met,
		dev:  disk.NewDevice(env, disk.Constellation7200(), met),
		pool: mem.NewFramePool(hostPages),
	}
}

func (r *testRig) config(kind Kind, policy Policy) Config {
	return Config{
		Kind: kind, Policy: policy,
		Env: r.env, Met: r.met, Dev: r.dev,
		Phys: func(slot int64) int64 { return slot },
		Pool: r.pool,
		Seed: 7,
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != HDD {
		t.Errorf("ParseKind(\"\") = %v, %v, want HDD", k, err)
	}
	if _, err := ParseKind("floppy"); err == nil {
		t.Error("ParseKind accepted an unknown backend")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyWriteback, PolicyHot, PolicyFlat} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyWriteback {
		t.Errorf("ParsePolicy(\"\") = %v, %v, want writeback", p, err)
	}
	if _, err := ParsePolicy("lru"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// TestLatencyModels pins each tier's service-time math against the model
// constants, table-driven over request sizes: the rotating drive pays
// seek + rotation + transfer on a non-streaming request, the SSD pays
// only overhead + transfer, and the remote tier pays an RTT + wire time
// (plus jitter or a tail penalty, bounded below by the base cost).
func TestLatencyModels(t *testing.T) {
	hdd := disk.Constellation7200()
	ssdModel := disk.SSD840()
	for _, n := range []int{1, 8, 64} {
		// HDD: a request far from the head position includes mechanical
		// delay; the same request at the head is transfer-only.
		random := hdd.Service(0, 1<<20, n)
		stream := hdd.Service(1<<20, 1<<20, n)
		xfer := sim.Duration(int64(hdd.PerBlockTransfer) * int64(n))
		if stream != xfer {
			t.Errorf("hdd streaming n=%d: got %v, want pure transfer %v", n, stream, xfer)
		}
		if random <= stream {
			t.Errorf("hdd random n=%d: %v not slower than streaming %v", n, random, stream)
		}

		rig := newRig(1 << 10)
		ssd := newSSDTier(rig.config(SSD, PolicyWriteback))
		wantSSD := sim.Duration(int64(ssdModel.PerBlockTransfer)*int64(n)) + ssdModel.RequestOverhead
		if got := ssd.service(n); got != wantSSD {
			t.Errorf("ssd service n=%d: got %v, want %v", n, got, wantSSD)
		}
		if random <= wantSSD {
			t.Errorf("hdd random n=%d (%v) should dominate ssd (%v)", n, random, wantSSD)
		}

		remote := newRemoteTier(rig.config(Remote, PolicyWriteback))
		base := remoteBaseRTT + sim.Duration(int64(remotePerBlock)*int64(n))
		done := remote.submit(disk.Read, 0, n)
		svc := done.Sub(sim.Time(0))
		if svc < base {
			t.Errorf("remote n=%d: service %v below base %v", n, svc, base)
		}
		if svc > base+remoteTailPenalty+remoteJitterMax {
			t.Errorf("remote n=%d: service %v above tail bound", n, svc)
		}
	}
}

// TestRemoteTailDeterminism: the tail schedule is a pure function of the
// seed — two tiers with the same seed produce identical completion times
// and tail counts; a different seed produces a different schedule.
func TestRemoteTailDeterminism(t *testing.T) {
	run := func(seed uint64) ([]sim.Time, int64) {
		rig := newRig(1 << 10)
		cfg := rig.config(Remote, PolicyWriteback)
		cfg.Seed = seed
		tier := newRemoteTier(cfg)
		var times []sim.Time
		for i := 0; i < 500; i++ {
			times = append(times, tier.submit(disk.Read, int64(i), 8))
		}
		return times, rig.met.Counter(metrics.SwapbackRemoteTailEvents).Value()
	}
	a, tailsA := run(7)
	b, tailsB := run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
	if tailsA != tailsB {
		t.Fatalf("same seed, different tail counts: %d vs %d", tailsA, tailsB)
	}
	if tailsA == 0 {
		t.Error("no tail events in 500 requests at p=0.02")
	}
	c, _ := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestSSDQueueDepth: requests beyond the channel count queue behind the
// earliest-free channel instead of all completing in parallel.
func TestSSDQueueDepth(t *testing.T) {
	rig := newRig(1 << 10)
	tier := newSSDTier(rig.config(SSD, PolicyWriteback))
	svc := tier.service(8)
	var last sim.Time
	for i := 0; i < ssdChannels; i++ {
		last = tier.submit(disk.Read, int64(i), 8)
	}
	if last != sim.Time(0).Add(svc) {
		t.Fatalf("first %d requests should run in parallel: last done %v, want %v", ssdChannels, last, svc)
	}
	queued := tier.submit(disk.Read, 99, 8)
	if queued != sim.Time(0).Add(2*svc) {
		t.Fatalf("request %d should queue: done %v, want %v", ssdChannels+1, queued, 2*svc)
	}
	// Backlog reports the wait until the earliest channel frees — the
	// seven idle-at-svc channels, not the doubly-loaded one.
	if got := tier.backlog(); got != svc {
		t.Fatalf("backlog = %v, want %v", got, svc)
	}
}

// TestZswapAccounting covers the compressed pool's capacity machinery:
// ratio-dependent byte charging, frame-granular growth against the host
// pool, overwrite replacement, capacity rejection, and drop releasing
// frames back.
func TestZswapAccounting(t *testing.T) {
	rig := newRig(1 << 10)
	z := newZswapPool(rig.config(Zswap, PolicyWriteback))

	// Find a compressible and an incompressible key under this seed.
	compressible, incompressible := uint64(0), uint64(0)
	for k := uint64(1); compressible == 0 || incompressible == 0; k++ {
		if z.compressedBytes(k) == 0 {
			if incompressible == 0 {
				incompressible = k
			}
		} else if compressible == 0 {
			compressible = k
		}
	}

	if z.store(1, incompressible) {
		t.Fatal("stored an incompressible page")
	}
	if got := rig.met.Counter(metrics.SwapbackFastIncompressiblePages).Value(); got != 1 {
		t.Fatalf("incompressible counter = %d, want 1", got)
	}

	want := z.compressedBytes(compressible)
	if want <= 0 || want >= mem.PageSize {
		t.Fatalf("compressedBytes = %d, want in (0, %d)", want, mem.PageSize)
	}
	free := rig.pool.Free()
	if !z.store(1, compressible) {
		t.Fatal("store of a compressible page failed with an empty pool")
	}
	if z.usedBytes != want {
		t.Fatalf("usedBytes = %d, want %d", z.usedBytes, want)
	}
	if z.frames != 1 || rig.pool.Free() != free-1 {
		t.Fatalf("frames = %d (pool free %d -> %d), want exactly one frame grabbed", z.frames, free, rig.pool.Free())
	}

	// Overwriting the same slot replaces the copy, not duplicates it.
	if !z.store(1, compressible) {
		t.Fatal("overwrite store failed")
	}
	if z.usedBytes != want {
		t.Fatalf("overwrite changed usedBytes to %d, want %d", z.usedBytes, want)
	}

	z.drop(1)
	if z.usedBytes != 0 || z.frames != 0 || rig.pool.Free() != free {
		t.Fatalf("drop left usedBytes=%d frames=%d free=%d, want all released", z.usedBytes, z.frames, rig.pool.Free())
	}

	// Fill to capacity: stores must stop before exceeding capBytes.
	slot, k := int64(100), compressible
	for {
		if z.compressedBytes(k) == 0 { // skip incompressible keys
			k = mix64(k) | 1
			continue
		}
		if !z.store(slot, k) {
			break
		}
		slot++
		k = mix64(k) | 1
	}
	if z.usedBytes > z.capBytes {
		t.Fatalf("pool overfilled: used %d > cap %d", z.usedBytes, z.capBytes)
	}
	if rig.met.Counter(metrics.SwapbackFastRejectPages).Value() == 0 {
		t.Fatal("no reject counted at capacity")
	}
}

// TestZswapReserveFloor: the pool refuses to grow when host free frames
// would dip under the reserve, even with byte capacity to spare.
func TestZswapReserveFloor(t *testing.T) {
	rig := newRig(1 << 10)
	z := newZswapPool(rig.config(Zswap, PolicyWriteback))
	rig.pool.Grab(rig.pool.Free() - zswapReserveFrames) // leave exactly the reserve
	key := uint64(1)
	for z.compressedBytes(key) == 0 {
		key++
	}
	if z.store(1, key) {
		t.Fatal("pool grew into the reserve floor")
	}
	if rig.met.Counter(metrics.SwapbackFastRejectPages).Value() != 1 {
		t.Fatal("reserve refusal not counted as a reject")
	}
}

// TestZswapFIFOSlotReuse: popOldest must skip FIFO items whose slot was
// freed and re-stored since enqueue (seq mismatch), never demoting a
// fresh copy in place of a stale one.
func TestZswapFIFOSlotReuse(t *testing.T) {
	rig := newRig(1 << 10)
	z := newZswapPool(rig.config(Zswap, PolicyWriteback))
	keys := make([]uint64, 0, 3)
	for k := uint64(1); len(keys) < 3; k++ {
		if z.compressedBytes(k) != 0 {
			keys = append(keys, k)
		}
	}
	z.store(1, keys[0])
	z.store(2, keys[1])
	z.drop(1)           // slot freed: FIFO item for (1, seq1) is now stale
	z.store(1, keys[2]) // slot reused with new content

	slot, ok := z.popOldest()
	if !ok || slot != 2 {
		t.Fatalf("popOldest = %d, %v; want slot 2 (stale slot-1 item skipped)", slot, ok)
	}
	slot, ok = z.popOldest()
	if !ok || slot != 1 {
		t.Fatalf("popOldest = %d, %v; want the re-stored slot 1", slot, ok)
	}
	if _, ok := z.popOldest(); ok {
		t.Fatal("popOldest returned an entry from an empty pool")
	}
}

// TestHeatRing: membership tracks the last `size` additions, with ring
// eviction removing the oldest key once full (unless re-added since).
func TestHeatRing(t *testing.T) {
	h := newHeatRing(4)
	for k := uint64(1); k <= 4; k++ {
		h.add(k)
	}
	for k := uint64(1); k <= 4; k++ {
		if !h.contains(k) {
			t.Fatalf("key %d missing before eviction", k)
		}
	}
	h.add(5) // evicts 1
	if h.contains(1) || !h.contains(5) {
		t.Fatal("ring eviction did not replace the oldest key")
	}
	h.add(2) // re-add: 2 now occupies two ring positions
	h.add(6) // evicts one copy of 2 (position of the original 2... evicts 3)
	if !h.contains(2) {
		t.Fatal("re-added key evicted while still in the ring")
	}
}

// TestPolicyPlacement: flat never admits, writeback admits compressible
// pages, hotfirst admits only after a NoteRefault and counts promotions.
func TestPolicyPlacement(t *testing.T) {
	slots := []int64{10}
	isCompressible := func(st *Store, slot int64) bool {
		return newZswapPool(st.config()).compressedBytes(uint64(slot)) != 0
	}
	_ = isCompressible

	build := func(p Policy) (*testRig, *Store) {
		rig := newRig(1 << 10)
		return rig, New(rig.config(Zswap, p))
	}

	// Pick a slot whose identity compresses under seed 7.
	probeRig := newRig(1 << 10)
	probe := newZswapPool(probeRig.config(Zswap, PolicyWriteback))
	for probe.compressedBytes(uint64(slots[0])) == 0 {
		slots[0]++
	}

	rig, st := build(PolicyFlat)
	st.SubmitWrite(slots)
	if got := rig.met.Counter(metrics.SwapbackFastStorePages).Value(); got != 0 {
		t.Fatalf("flat policy stored %d pages", got)
	}

	rig, st = build(PolicyWriteback)
	st.SubmitWrite(slots)
	if got := rig.met.Counter(metrics.SwapbackFastStorePages).Value(); got != 1 {
		t.Fatalf("writeback policy stored %d pages, want 1", got)
	}

	rig, st = build(PolicyHot)
	st.SubmitWrite(slots)
	if got := rig.met.Counter(metrics.SwapbackFastStorePages).Value(); got != 0 {
		t.Fatalf("hotfirst admitted a cold page (%d stored)", got)
	}
	st.NoteRefault(slots[0])
	st.SubmitWrite(slots)
	if got := rig.met.Counter(metrics.SwapbackFastStorePages).Value(); got != 1 {
		t.Fatalf("hotfirst did not admit a re-faulted page (%d stored)", got)
	}
	if got := rig.met.Counter(metrics.SwapbackPromotePages).Value(); got != 1 {
		t.Fatalf("promote counter = %d, want 1", got)
	}
}

// config lets a test re-derive the zswap parameters a Store was built
// with (the pool probe in TestPolicyPlacement).
func (st *Store) config() Config {
	return Config{
		Kind: st.kind, Policy: st.policy, Env: st.env,
		Met: metrics.NewSet(), Dev: st.dev, Phys: st.phys, Seed: 7,
		Pool: mem.NewFramePool(1 << 10),
	}
}

// TestBackgroundDemotion: once the pool crosses 90% occupancy a tick
// demotes FIFO-oldest entries to the slow tier until it is back under
// 70%, counting demotions and slow-tier writes.
func TestBackgroundDemotion(t *testing.T) {
	rig := newRig(1 << 14)
	st := New(rig.config(Zswap, PolicyWriteback))
	z := st.fast

	slot := int64(1)
	for z.usedBytes <= z.capBytes*9/10 {
		key := uint64(slot)
		if z.compressedBytes(key) == 0 {
			slot++
			continue
		}
		if !z.store(slot, key) {
			t.Fatalf("store failed at %d/%d bytes with frames to spare", z.usedBytes, z.capBytes)
		}
		slot++
	}
	writesBefore := rig.met.Counter(metrics.SwapWriteOps).Value()
	st.BackgroundTick()
	if z.usedBytes > z.capBytes*7/10 {
		t.Fatalf("tick left pool at %d/%d bytes, want <= 70%%", z.usedBytes, z.capBytes)
	}
	demoted := rig.met.Counter(metrics.SwapbackDemotePages).Value()
	if demoted == 0 {
		t.Fatal("no demotions counted")
	}
	if got := rig.met.Counter(metrics.SwapWriteOps).Value() - writesBefore; got != demoted {
		t.Fatalf("demotion wrote %d ops for %d pages; hostswap.write must count demotion traffic", got, demoted)
	}
	// Below the high watermark a tick is a no-op.
	used := z.usedBytes
	st.BackgroundTick()
	if z.usedBytes != used {
		t.Fatal("tick demoted below the high watermark")
	}
}

// TestInjectXferMirrorsDeviceRetries: the shared retry helper pays the
// same bounded exponential backoff the disk firmware model uses and
// counts retries/exhaustion.
func TestInjectXferMirrorsDeviceRetries(t *testing.T) {
	met := metrics.NewSet()
	retries := met.Counter(metrics.FaultDiskRetries)
	exhausted := met.Counter(metrics.FaultDiskExhausted)
	hist := met.Histogram(metrics.HistFaultBackoff)

	if d := injectXfer(nil, false, sim.Millisecond, retries, exhausted, hist); d != 0 {
		t.Fatalf("nil injector added %v", d)
	}

	// A certain error rate exhausts the retry budget deterministically.
	inj := fault.New(fault.MustParse("disk-read-err:1"), 3, met)
	base := sim.Millisecond
	extra := injectXfer(inj, false, base, retries, exhausted, hist)
	var want sim.Duration
	for r := 0; r < xferMaxRetries; r++ {
		want += (xferRetryBackoff << r) + base
	}
	if extra != want {
		t.Fatalf("exhausted-retries extra = %v, want %v", extra, want)
	}
	if retries.Value() != xferMaxRetries || exhausted.Value() != 1 {
		t.Fatalf("retries=%d exhausted=%d, want %d/1", retries.Value(), exhausted.Value(), xferMaxRetries)
	}
}

// TestFaultInjectionReachesEveryTier: a disk fault plan must perturb the
// ssd and remote tiers (retry counters fire) and corrupt compressed
// copies in the zswap tier (corruption counter fires, reads fall back to
// the slow tier without losing data).
func TestFaultInjectionReachesEveryTier(t *testing.T) {
	plan := fault.MustParse("disk-read-err:0.3;disk-write-err:0.3")

	for _, kind := range []Kind{SSD, Remote} {
		rig := newRig(1 << 10)
		cfg := rig.config(kind, PolicyWriteback)
		cfg.Inj = fault.New(plan, 5, rig.met)
		st := New(cfg)
		for i := int64(0); i < 50; i++ {
			st.SubmitWrite([]int64{i})
			st.SubmitRead1(i)
		}
		if rig.met.Counter(metrics.FaultDiskRetries).Value() == 0 {
			t.Errorf("%s tier: no retries under a 30%% error plan", kind)
		}
	}

	rig := newRig(1 << 10)
	cfg := rig.config(Zswap, PolicyWriteback)
	cfg.Inj = fault.New(plan, 5, rig.met)
	st := New(cfg)
	stored := 0
	for i := int64(0); i < 200; i++ {
		st.SubmitWrite([]int64{i})
		if st.fast.contains(i) {
			stored++
		}
	}
	if stored == 0 {
		t.Fatal("no pages admitted to the compressed pool")
	}
	for i := int64(0); i < 200; i++ {
		st.SubmitRead1(i)
	}
	corrupt := rig.met.Counter(metrics.SwapbackFastCorruptPages).Value()
	if corrupt == 0 {
		t.Fatal("zswap tier: no corrupted copies under a 30% error plan")
	}
	// Every corrupted copy must have been dropped and re-read from the
	// slow tier: loads + corruptions cannot exceed what was stored, and
	// the pool no longer holds the corrupted slots.
	loads := rig.met.Counter(metrics.SwapbackFastLoadPages).Value()
	if loads+corrupt != int64(stored) {
		t.Fatalf("loads(%d) + corrupt(%d) != stored(%d)", loads, corrupt, stored)
	}
}

// TestHDDStoreIsTransparent: the default backend issues the identical
// device request the pre-backend code issued — same completion time as a
// direct Submit on a twin device — with no swapback.* metrics resolved.
func TestHDDStoreIsTransparent(t *testing.T) {
	rig := newRig(1 << 10)
	st := New(rig.config(HDD, PolicyWriteback))

	twinEnv := sim.NewEnv(1)
	twinMet := metrics.NewSet()
	twin := disk.NewDevice(twinEnv, disk.Constellation7200(), twinMet)

	slots := []int64{5, 6, 7, 8}
	if got, want := st.SubmitRead(slots), twin.Submit(disk.Read, 5, 4); got != want {
		t.Fatalf("SubmitRead done=%v, direct Submit=%v", got, want)
	}
	st.SubmitWrite(slots)
	twin.Submit(disk.Write, 5, 4)
	if got, want := st.Backlog(), twin.FreeAt().Sub(twinEnv.Now()); got != want {
		t.Fatalf("Backlog=%v, twin=%v", got, want)
	}
	for _, name := range []string{
		metrics.SwapbackReadOps, metrics.SwapbackWriteOps,
		metrics.SwapbackFastStorePages, metrics.SwapbackRemoteTailEvents,
	} {
		if _, ok := rig.met.Snapshot()[name]; ok {
			t.Errorf("default backend resolved %s", name)
		}
	}
	// Free/NoteRefault/BackgroundTick are no-ops, not crashes.
	st.Free(5)
	st.NoteRefault(6)
	st.BackgroundTick()
}
