package metrics

import (
	"reflect"
	"testing"

	"vswapsim/internal/sim"
)

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
		{1 << 47, 47}, {1<<47 - 1, 46}, {1<<62 + 5, 47}, // cap at the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.want < histBuckets-1 && c.v > BucketUpper(c.want) {
			t.Errorf("value %d exceeds its bucket upper bound %d", c.v, BucketUpper(c.want))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{name: "test"}
	if h.P50() != 0 || h.P99() != 0 {
		t.Fatalf("empty histogram quantiles: p50=%d p99=%d, want 0", h.P50(), h.P99())
	}
	// 100 observations: 90 fast (1us bucket: [1024, 2048)), 10 slow
	// (1ms bucket: [2^19, 2^20) = [524288, 1048576)).
	for i := 0; i < 90; i++ {
		h.Observe(1500)
	}
	for i := 0; i < 10; i++ {
		h.Observe(600000)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.SumNS(); got != 90*1500+10*600000 {
		t.Fatalf("sum = %d", got)
	}
	if got := h.P50(); got != 2048 {
		t.Errorf("p50 = %d, want 2048 (fast bucket upper bound)", got)
	}
	// rank ceil(0.95*100)=95 lands in the slow bucket.
	if got := h.P95(); got != 1048576 {
		t.Errorf("p95 = %d, want 1048576 (slow bucket upper bound)", got)
	}
	if got := h.P99(); got != 1048576 {
		t.Errorf("p99 = %d, want 1048576", got)
	}
}

func TestObservePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Observe(-1) did not panic")
		}
	}()
	h := &Histogram{name: "neg"}
	h.Observe(sim.Duration(-1))
}

func TestHistogramMergeAndOrderIndependence(t *testing.T) {
	obs := []int64{1, 5, 17, 900, 1 << 20, 3, 3, 250000, 42}
	forward := &Histogram{name: "f"}
	for _, v := range obs {
		forward.Observe(sim.Duration(v))
	}
	backward := &Histogram{name: "b"}
	for i := len(obs) - 1; i >= 0; i-- {
		backward.Observe(sim.Duration(obs[i]))
	}
	if !reflect.DeepEqual(forward.Snapshot(), backward.Snapshot()) {
		t.Errorf("snapshot depends on observation order:\n%+v\n%+v",
			forward.Snapshot(), backward.Snapshot())
	}

	// Merging two halves equals observing everything in one histogram.
	a, bh := &Histogram{name: "a"}, &Histogram{name: "b"}
	for i, v := range obs {
		if i%2 == 0 {
			a.Observe(sim.Duration(v))
		} else {
			bh.Observe(sim.Duration(v))
		}
	}
	a.Merge(bh)
	if !reflect.DeepEqual(a.Snapshot(), forward.Snapshot()) {
		t.Errorf("merge != direct observation:\n%+v\n%+v", a.Snapshot(), forward.Snapshot())
	}
}

func TestSnapshotBucketsNonEmptyOnly(t *testing.T) {
	h := &Histogram{name: "s"}
	h.Observe(1)      // bucket 0, le 2
	h.Observe(1)      // bucket 0
	h.Observe(100000) // bucket 16, le 131072
	want := []BucketCount{{LeNS: 2, N: 2}, {LeNS: 131072, N: 1}}
	if got := h.Snapshot().Buckets; !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %+v, want %+v", got, want)
	}
}

func TestSetHistogramAccessors(t *testing.T) {
	s := NewSet()
	s.Histogram("z.last").Observe(10)
	s.Histogram("a.first").Observe(20)
	if h := s.Histogram("z.last"); h.Count() != 1 {
		t.Fatalf("histogram not persistent across lookups: count=%d", h.Count())
	}
	hs := s.Histograms()
	if len(hs) != 2 || hs[0].Name() != "a.first" || hs[1].Name() != "z.last" {
		t.Fatalf("Histograms() not sorted by name: %v, %v", hs[0].Name(), hs[1].Name())
	}
	if s.HistogramString() == "" {
		t.Fatal("HistogramString() empty for non-empty set")
	}
}
