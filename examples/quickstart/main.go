// Quickstart: one guest under memory pressure, with and without VSwapper.
//
// A guest that believes it has 512 MB is given only 100 MB by the host and
// sequentially reads a 200 MB file — the paper's headline example (Fig. 3).
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"vswapsim"
)

func run(label string, useVSwapper bool) {
	m := vswapsim.NewMachine(vswapsim.MachineConfig{
		Seed:         1,
		HostMemPages: 4 << 30 / 4096, // 4 GiB host
	})
	vm := m.NewVM(vswapsim.VMConfig{
		Name:       "guest0",
		MemPages:   512 << 20 / 4096, // the guest believes 512 MiB
		LimitPages: 100 << 20 / 4096, // the host grants 100 MiB
		DiskBlocks: 20 << 30 / 4096,
		Mapper:     useVSwapper,
		Preventer:  useVSwapper,
		GuestAPF:   true,
	})

	m.Env.Go("driver", func(p *vswapsim.Proc) {
		vm.Boot(p)
		// A long-running guest has used all its memory before: warm it up
		// so the host has already reclaimed the excess.
		vswapsim.Warmup(vm, 2048).Wait(p)

		res := vswapsim.SeqRead(vm, vswapsim.SeqReadConfig{FileMB: 200}).Wait(p)
		fmt.Printf("%-22s %8.1fs  (virtual time)\n", label, res.Runtime().Seconds())
		m.Shutdown()
	})
	m.Run()
}

func main() {
	fmt.Println("200MB sequential read; guest believes 512MB, actually has 100MB")
	run("baseline swapping:", false)
	run("with vswapper:", true)
}
