// Package swapback models pluggable swap-destination tiers for the host
// memory manager. The paper's evaluation (and the original simulator) hard-
// wires host swap to one rotating drive; "Flexible Swapping for the Cloud"
// argues cloud hosts want interchangeable backends and policies. A Store
// routes the host MM's swap reads and writes to one of four deterministic
// backend models:
//
//   - hdd:    the existing disk.Device, unchanged — the default. Every
//     request is forwarded verbatim, so runs with the default backend stay
//     byte-identical to the pre-backend simulator.
//   - ssd:    a flash model with no seek or rotation: per-request overhead
//     plus per-block transfer (disk.SSD840 parameters), spread over a small
//     number of independent channels so service times are queue-depth-aware.
//   - zswap:  a compressed-RAM tier in front of the rotating drive, with
//     per-page compressibility-dependent ratios and capacity accounting
//     against the host frame pool, plus background demotion to the drive.
//   - remote: a network-attached tier (NBD/remote-memory style) with a
//     seeded tail-latency distribution over a few connections.
//
// The tiering policy decides write-path placement for backends with a fast
// tier (zswap): writeback admits everything, hotfirst admits only pages
// that re-faulted recently (promotion on re-fault), flat bypasses the fast
// tier entirely. Background demotion runs off the kswapd interval.
package swapback

import (
	"fmt"
	"sort"
	"strings"

	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Kind selects a swap backend model.
type Kind uint8

const (
	// HDD forwards every request to the machine's disk.Device unchanged.
	HDD Kind = iota
	// SSD models a SATA flash drive: no position dependence, a fixed
	// per-request overhead plus per-block transfer, over ssdChannels
	// independent channels.
	SSD
	// Zswap models a compressed-RAM pool in front of the rotating drive.
	Zswap
	// Remote models a network-attached swap target with tail latency.
	Remote
)

var kindNames = [...]string{"hdd", "ssd", "zswap", "remote"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a backend name ("hdd", "ssd", "zswap", "remote") to its
// Kind. The empty string is the default backend.
func ParseKind(name string) (Kind, error) {
	if name == "" {
		return HDD, nil
	}
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return HDD, fmt.Errorf("unknown swap backend %q (valid: %s)", name, strings.Join(KindNames(), ", "))
}

// KindNames returns the valid backend names, sorted.
func KindNames() []string {
	out := append([]string(nil), kindNames[:]...)
	sort.Strings(out)
	return out
}

// AllKinds returns every backend kind, default first.
func AllKinds() []Kind { return []Kind{HDD, SSD, Zswap, Remote} }

// Policy selects how the write path places pages across tiers and what the
// background demoter does. Policies only matter for backends with a fast
// tier (zswap); the single-tier backends ignore them.
type Policy uint8

const (
	// PolicyWriteback admits every compressible page to the fast tier and
	// demotes the oldest entries to the slow tier in the background.
	PolicyWriteback Policy = iota
	// PolicyHot admits only pages that re-faulted recently (tracked by
	// NoteRefault): a page earns its fast-tier slot by being hot.
	PolicyHot
	// PolicyFlat bypasses the fast tier entirely — an ablation that turns
	// zswap into its slow tier.
	PolicyFlat
)

var policyNames = [...]string{"writeback", "hotfirst", "flat"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy maps a policy name to its Policy. The empty string is the
// default (writeback).
func ParsePolicy(name string) (Policy, error) {
	if name == "" {
		return PolicyWriteback, nil
	}
	for i, n := range policyNames {
		if n == name {
			return Policy(i), nil
		}
	}
	return PolicyWriteback, fmt.Errorf("unknown swap policy %q (valid: %s)", name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames returns the valid policy names, sorted.
func PolicyNames() []string {
	out := append([]string(nil), policyNames[:]...)
	sort.Strings(out)
	return out
}

// Config assembles a Store.
type Config struct {
	Kind   Kind
	Policy Policy
	// Env is the machine's simulation environment.
	Env *sim.Env
	// Met receives the backend's counters and histograms.
	Met *metrics.Set
	// Dev is the machine's physical drive: the HDD backend forwards to it,
	// and zswap uses it as the slow tier behind the compressed pool.
	Dev *disk.Device
	// Phys translates a swap slot to a physical disk block (SwapArea.Phys).
	Phys func(slot int64) int64
	// Pool is the host frame pool the zswap tier charges its compressed
	// storage against. Unused by the other backends.
	Pool *mem.FramePool
	// Inj, when non-nil, injects transfer faults into the ssd/remote tiers
	// and corruption into the compressed pool (the HDD backend's device
	// already carries its own injector).
	Inj *fault.Injector
	// Seed drives the backend's private randomness (remote tail latency,
	// per-page compressibility). Derive it per machine so serial and
	// parallel runs draw identically.
	Seed uint64
}
