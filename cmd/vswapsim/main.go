// Command vswapsim runs one of the paper's experiments and prints its
// tables.
//
// Usage:
//
//	vswapsim -list
//	vswapsim -run fig3 [-scale 1.0] [-seed 42] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vswapsim/internal/experiment"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "experiment id to run (e.g. fig3)")
		scale = flag.Float64("scale", 1.0, "size scale factor (1.0 = paper-sized)")
		seed  = flag.Uint64("seed", 42, "random seed")
		quick = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 16 {
		fmt.Fprintf(os.Stderr, "invalid -scale %v: must be in (0, 16]\n", *scale)
		os.Exit(2)
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiment.Registry {
			fmt.Printf("  %-9s %-45s (%s)\n", e.ID, e.Title, e.PaperNote)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	e, err := experiment.ByID(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	rep := e.Run(experiment.Options{Seed: *seed, Scale: *scale, Quick: *quick})
	fmt.Print(rep.String())
	fmt.Printf("(generated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
}
