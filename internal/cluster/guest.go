package cluster

import (
	"fmt"

	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// This file is the per-guest driver: each admitted guest runs as one
// cluster-level process that boots a VM on its assigned host, runs its
// workload units inside a guest thread, and services the monitor's
// decisions — migration and kill — only at unit boundaries (the guest's
// natural quiesce points), so re-homing never races a unit in flight.

// startGuest launches the guest's driver process on the shared loop.
func (c *Cluster) startGuest(g *Guest) {
	c.Env.Go("cluster-guest/"+g.Name, func(p *sim.Proc) {
		g.admitted = p.Now()
		c.createVM(p, g)
		for {
			c.runIncarnation(p, g)
			if g.killReq || (g.pr != nil && g.pr.Killed) {
				c.killGuest(p, g)
				break
			}
			if g.unitsDone >= g.Units {
				c.retireGuest(p, g)
				break
			}
			if g.dest != nil {
				c.migrateGuest(p, g)
			}
		}
		c.remaining--
		if c.remaining == 0 {
			c.finish()
		}
	})
}

// createVM gives the guest a fresh VM and server process on its current
// host. The VM name carries the incarnation so re-homing after a
// migration never collides with the disk-image region a previous
// incarnation reserved.
func (c *Cluster) createVM(p *sim.Proc, g *Guest) {
	h := g.host
	g.vm = h.M.NewVM(hyper.VMConfig{
		Name:       fmt.Sprintf("%s.%d", g.Name, g.incarnation),
		MemPages:   g.MemPages,
		VCPUs:      1,
		DiskBlocks: c.Cfg.GuestDiskBlocks,
		Mapper:     c.Cfg.Mapper,
		Preventer:  c.Cfg.Preventer,
		GuestAPF:   true,
	})
	g.vm.Boot(p)
	g.pr = g.vm.OS.NewProcess(g.Name)
	g.pr.Reserve(g.WSPages)
}

// runIncarnation runs workload units inside the guest until the guest
// finishes, a monitor decision lands, or the guest's own OOM killer gets
// the server process.
func (c *Cluster) runIncarnation(p *sim.Proc, g *Guest) {
	pr := g.pr
	done := sim.NewSignal(c.Env)
	finished := false
	g.vm.OS.Go(g.Name+"/srv", pr, func(t *guest.Thread) {
		for g.unitsDone < g.Units && !g.killReq && g.dest == nil && !t.ProcKilled() {
			start := t.P.Now()
			c.runUnit(t, pr, g)
			t.FlushCPU()
			if t.ProcKilled() {
				break
			}
			c.unitHist.Observe(t.P.Now().Sub(start))
			c.Met.Inc(metrics.ClusterUnits)
			g.unitsDone++
		}
		finished = true
		done.Broadcast()
	})
	for !finished {
		done.Wait(p)
	}
}

// runUnit is one serving unit: a full strided walk of the guest's working
// set (every fourth touch a write, so reclaim sees dirty anonymous
// memory) plus the unit's pure-CPU compute. The stride is coprime with
// WSPages, so the walk covers every page but never two adjacent ones in a
// row — a pressured host pays seek-bound swap-ins, not one prefetchable
// stream. Unit latency is wall time between boundaries, so those stalls
// land directly in the fleet histogram.
func (c *Cluster) runUnit(t *guest.Thread, pr *guest.Process, g *Guest) {
	// In phased mode the guest walks its full working set only during its
	// hot phase (one phase in three, on its seeded offset) and a quarter
	// of it otherwise — transient, colliding demand instead of a constant
	// load.
	ws := g.WSPages
	if pu := c.Cfg.PhaseUnits; pu > 0 {
		if cycle := g.unitsDone / pu; (cycle+g.phase)%3 != 0 {
			ws = g.WSPages / 4
		}
	}
	if ws < 1 {
		ws = 1
	}
	// Rotate among coprime strides and shift the start point each unit, so
	// consecutive units visit the working set in different orders: pages
	// swapped out in one unit's eviction order are not refaulted in that
	// same order by the next, which is what keeps readahead from turning
	// genuine thrash into a cheap stream.
	stride := g.stride + 2*(g.unitsDone%4)
	for gcd(stride, ws) != 1 {
		stride += 2
	}
	stride %= ws
	if stride == 0 {
		stride = 1 % ws
	}
	idx := (g.unitsDone * 97) % ws
	for i := 0; i < ws; i++ {
		if t.ProcKilled() {
			return
		}
		t.TouchAnon(pr, idx, i%4 == 0)
		idx += stride
		if idx >= ws {
			idx -= ws
		}
	}
	t.Compute(c.Cfg.UnitCompute)
}

// coprimeStride picks the base walk step for a working set of n pages:
// the first candidate at or above ~n/3 that is coprime with n, so
// successive touches are far apart and the walk still visits every page
// exactly once.
func coprimeStride(n int) int {
	if n <= 2 {
		return 1
	}
	for s := n/3 | 1; ; s += 2 {
		if gcd(s, n) == 1 {
			return s
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// migrateGuest executes the monitor's relocation decision at a unit
// boundary: plan against the real destination, refuse deterministically
// if it lacks headroom, otherwise charge the stop-and-copy downtime,
// release the source residence, and re-home onto the destination (memory
// refaults lazily there, modeling post-migration cold state).
func (c *Cluster) migrateGuest(p *sim.Proc, g *Guest) {
	dest := g.dest
	res := g.vm.Migrate(p, hyper.MigrationConfig{
		UseMappings: c.Cfg.Mapper,
		Dest:        dest.M,
	})
	if res.Refused {
		c.Met.Inc(metrics.ClusterMigrateRefused)
		dest.commit -= g.MemPages
		g.dest = nil
		return
	}
	src := g.host
	g.pr.Exit()
	g.vm.OS.Shutdown()
	g.vm.Release(p)
	src.commit -= g.MemPages
	g.host = dest
	g.dest = nil
	g.incarnation++
	g.placements++
	g.migrations++
	c.Met.Inc(metrics.ClusterMigrations)
	c.Met.Inc(metrics.ClusterPlacements)
	c.createVM(p, g)
}

// killGuest tears the guest down for good: soomkiller decision or the
// guest's own OOM kill both end here, and the guest never revives.
func (c *Cluster) killGuest(p *sim.Proc, g *Guest) {
	soom := g.killReq
	if g.pr != nil && g.pr.Killed {
		g.oomKilled = true
	}
	if g.pr != nil && !g.pr.Killed {
		g.pr.Exit()
	}
	g.vm.OS.Shutdown()
	g.vm.Release(p)
	g.host.commit -= g.MemPages
	if g.dest != nil {
		g.dest.commit -= g.MemPages
		g.dest = nil
	}
	g.host = nil
	g.vm = nil
	g.pr = nil
	g.killed = true
	g.unitsAtKill = g.unitsDone
	if soom {
		c.Met.Inc(metrics.ClusterKills)
	}
}

// retireGuest releases a guest that completed all its units — the job is
// done, so its VM gives the capacity back.
func (c *Cluster) retireGuest(p *sim.Proc, g *Guest) {
	g.pr.Exit()
	g.vm.OS.Shutdown()
	g.vm.Release(p)
	g.host.commit -= g.MemPages
	if g.dest != nil {
		g.dest.commit -= g.MemPages
		g.dest = nil
	}
	g.host = nil
	g.vm = nil
	g.pr = nil
	g.done = true
	c.guestHist.Observe(p.Now().Sub(g.admitted))
}
