package sim

import (
	"strings"
	"testing"
	"time"
)

// budgetErrFrom runs fn and returns the *BudgetError it panics with, or
// nil if it returns normally. Any other panic is re-raised.
func budgetErrFrom(t *testing.T, fn func()) (be *BudgetError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if be, ok = r.(*BudgetError); !ok {
			panic(r)
		}
	}()
	fn()
	return nil
}

// chain schedules a self-rescheduling event that advances the clock by
// step each firing (step 0 = livelock).
func chain(e *Env, step Duration) {
	var fire func()
	fire = func() { e.Schedule(step, fire) }
	e.Schedule(step, fire)
}

func TestBudgetMaxEvents(t *testing.T) {
	e := NewEnv(1)
	e.SetBudget(Budget{MaxEvents: 100})
	chain(e, Microsecond)
	be := budgetErrFrom(t, func() { e.Run() })
	if be == nil {
		t.Fatal("expected a BudgetError, run completed")
	}
	if be.Kind != BreachMaxEvents {
		t.Fatalf("kind = %q, want %q", be.Kind, BreachMaxEvents)
	}
	// The breach fires on the first event past the budget, before its
	// callback runs — deterministically at event 101.
	if be.Events != 101 {
		t.Fatalf("breach at event %d, want 101", be.Events)
	}
	if e.EventCount() != 101 {
		t.Fatalf("EventCount() = %d, want 101", e.EventCount())
	}
}

func TestBudgetMaxEventsExactLimitPasses(t *testing.T) {
	e := NewEnv(1)
	e.SetBudget(Budget{MaxEvents: 100})
	for i := 0; i < 100; i++ {
		e.Schedule(Duration(i+1)*Microsecond, func() {})
	}
	if be := budgetErrFrom(t, func() { e.Run() }); be != nil {
		t.Fatalf("run at exactly the budget breached: %v", be)
	}
	if e.EventCount() != 100 {
		t.Fatalf("EventCount() = %d, want 100", e.EventCount())
	}
}

func TestBudgetStall(t *testing.T) {
	e := NewEnv(1)
	e.SetBudget(Budget{MaxStall: 50})
	chain(e, 0) // livelock: the clock never advances
	be := budgetErrFrom(t, func() { e.Run() })
	if be == nil {
		t.Fatal("expected a stall BudgetError, run completed")
	}
	if be.Kind != BreachStall {
		t.Fatalf("kind = %q, want %q", be.Kind, BreachStall)
	}
	if !strings.Contains(be.Detail, "livelock") {
		t.Fatalf("detail %q does not mention livelock", be.Detail)
	}
}

func TestBudgetStallResetsOnProgress(t *testing.T) {
	e := NewEnv(1)
	e.SetBudget(Budget{MaxStall: 10})
	// Bursts of 5 zero-advance events separated by real progress must
	// never trip a stall bound of 10.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n >= 100 {
			return
		}
		if n%5 == 0 {
			e.Schedule(Microsecond, tick)
		} else {
			e.Schedule(0, tick)
		}
	}
	e.Schedule(Microsecond, tick)
	if be := budgetErrFrom(t, func() { e.Run() }); be != nil {
		t.Fatalf("progressing run tripped the stall bound: %v", be)
	}
}

func TestBudgetDefaultMaxStallInstalled(t *testing.T) {
	e := NewEnv(1)
	e.SetBudget(Budget{MaxEvents: 1 << 30})
	if e.budget.MaxStall != DefaultMaxStall {
		t.Fatalf("MaxStall = %d, want DefaultMaxStall (%d)", e.budget.MaxStall, DefaultMaxStall)
	}
	// The zero budget must not get a stall bound: it disables the watchdog.
	e2 := NewEnv(1)
	e2.SetBudget(Budget{})
	if !e2.budget.Empty() {
		t.Fatal("zero budget should stay empty")
	}
}

func TestBudgetWallTimeout(t *testing.T) {
	e := NewEnv(1)
	e.SetBudget(Budget{WallTimeout: time.Millisecond})
	chain(e, Microsecond)
	deadline := time.Now().Add(5 * time.Second)
	var be *BudgetError
	for be == nil && time.Now().Before(deadline) {
		be = budgetErrFrom(t, func() { e.RunUntil(e.Now() + Time(Second)) })
	}
	if be == nil {
		t.Fatal("wall-clock budget never fired")
	}
	if be.Kind != BreachWall {
		t.Fatalf("kind = %q, want %q", be.Kind, BreachWall)
	}
}

func TestBudgetCanceled(t *testing.T) {
	e := NewEnv(1)
	canceled := false
	e.SetBudget(Budget{Canceled: func() bool { return canceled }})
	chain(e, Microsecond)
	// Not canceled: runs to the deadline.
	if be := budgetErrFrom(t, func() { e.RunUntil(Time(100 * Microsecond)) }); be != nil {
		t.Fatalf("uncanceled run breached: %v", be)
	}
	canceled = true
	be := budgetErrFrom(t, func() { e.RunUntil(Time(Second)) })
	if be == nil {
		t.Fatal("cancellation never fired")
	}
	if be.Kind != BreachCanceled {
		t.Fatalf("kind = %q, want %q", be.Kind, BreachCanceled)
	}
}

func TestEmptyBudgetIsNoop(t *testing.T) {
	e := NewEnv(1)
	// A zero-advance burst longer than DefaultMaxStall: any armed stall
	// bound would kill it, the empty budget must not.
	n := 0
	var tick func()
	tick = func() {
		if n++; n < DefaultMaxStall+10 {
			e.Schedule(0, tick)
		}
	}
	e.Schedule(0, tick)
	if be := budgetErrFrom(t, func() { e.Run() }); be != nil {
		t.Fatalf("empty budget fired: %v", be)
	}
	if e.EventCount() == 0 {
		t.Fatal("EventCount() not tracked without a budget")
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	be := &BudgetError{Kind: BreachMaxEvents, Events: 7, Now: Time(3 * Second), Detail: "d"}
	msg := be.Error()
	for _, want := range []string{"max-events", "7 events", "d"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
