package sim

// Resource is a counting semaphore in virtual time with FIFO queuing. It
// models contended execution resources such as guest VCPUs: a holder that
// blocks on I/O should Release while waiting and re-Acquire afterwards.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	queue    []*Proc
}

// NewResource returns a resource with the given capacity (units).
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire takes one unit on behalf of p, blocking in virtual time until a
// unit is available. Waiters are served strictly first-come-first-served.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	r.env.blocked++
	p.block()
	// Our unit was transferred to us by Release before the wakeup.
}

// TryAcquire takes a unit if one is free without blocking; it reports
// whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If processes are queued, the unit passes
// directly to the longest waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.env.blocked--
		r.env.scheduleProc(0, next)
		return // unit handed over, inUse unchanged
	}
	r.inUse--
}

// InUse reports the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Waiting reports the number of queued processes.
func (r *Resource) Waiting() int { return len(r.queue) }
