package experiment

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:   "x",
		Columns: []string{"a", "b,with comma", "c"},
	}
	tab.Add("1", "2", `say "hi"`)
	got := tab.CSV()
	want := "a,\"b,with comma\",c\n1,2,\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", PaperNote: "p"}
	tab := &Table{Columns: []string{"c"}}
	tab.Add("v")
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes, "n1")
	out := rep.String()
	for _, frag := range []string{"== x: T ==", "paper: p", "c", "v", "note: n1"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in %q", frag, out)
		}
	}
}

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s                          Scheme
		mapper, preventer, balloon bool
	}{
		{Baseline, false, false, false},
		{BalloonBase, false, false, true},
		{MapperOnly, true, false, false},
		{VSwapper, true, true, false},
		{BalloonVSwapper, true, true, true},
	}
	for _, c := range cases {
		if c.s.mapper() != c.mapper || c.s.preventer() != c.preventer || c.s.balloon() != c.balloon {
			t.Fatalf("scheme %v has wrong component set", c.s)
		}
		if c.s.String() == "" || strings.Contains(c.s.String(), "Scheme(") {
			t.Fatalf("scheme %v has no name", c.s)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.5}.normalized()
	if o.mb(512) != 256 {
		t.Fatalf("mb(512) = %d", o.mb(512))
	}
	if o.pages(512) != 256<<20/4096 {
		t.Fatalf("pages = %d", o.pages(512))
	}
	if got := o.mb(1); got < 8 {
		t.Fatalf("minimum clamp broken: %d", got)
	}
	if d := (Options{}).normalized(); d.Seed != 42 || d.Scale != 1.0 {
		t.Fatalf("defaults: %+v", d)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	a := Fig3(quickOpts()).String()
	b := Fig3(quickOpts()).String()
	if a != b {
		t.Fatal("fig3 not deterministic across runs")
	}
}
