package sim

// DeriveSeed deterministically derives an independent PRNG seed from a
// base seed and a list of string labels (typically experiment id, scheme,
// sweep point). Parallel experiment execution gives every fan-out job a
// derived seed so that results do not depend on scheduling order: the seed
// is a pure function of (base, labels), never of which worker ran the job
// or when.
//
// The labels are folded with FNV-1a (with a terminator per label, so
// ("ab","c") and ("a","bc") differ) and mixed with the base through the
// same splitmix64 finalizer the RNG uses, giving well-separated streams
// even for bases that differ in a single bit.
func DeriveSeed(base uint64, labels ...string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= fnvPrime
		}
		h ^= 0xff // label terminator
		h *= fnvPrime
	}
	z := base + h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
