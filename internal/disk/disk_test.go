package disk

import (
	"testing"
	"testing/quick"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

func testModel() LatencyModel { return Constellation7200() }

func TestSeekMonotonic(t *testing.T) {
	m := testModel()
	prev := sim.Duration(0)
	for d := int64(1); d < m.TotalBlocks; d *= 4 {
		s := m.SeekCost(0, d)
		if s < prev {
			t.Fatalf("seek(%d) = %v < seek(previous) = %v", d, s, prev)
		}
		prev = s
	}
	if m.SeekCost(0, 0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
}

func TestSeekSymmetric(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		m := testModel()
		x, y := int64(a), int64(b)
		return m.SeekCost(x, y) == m.SeekCost(y, x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeekBounds(t *testing.T) {
	m := testModel()
	if got := m.SeekCost(0, 1); got < m.TrackToTrackSeek {
		t.Fatalf("short seek %v below track-to-track %v", got, m.TrackToTrackSeek)
	}
	if got := m.SeekCost(0, m.TotalBlocks); got != m.FullStrokeSeek {
		t.Fatalf("full stroke = %v, want %v", got, m.FullStrokeSeek)
	}
	if got := m.SeekCost(0, m.TotalBlocks/3); got != m.AverageSeek {
		t.Fatalf("third stroke = %v, want %v", got, m.AverageSeek)
	}
}

func TestSequentialVsRandomService(t *testing.T) {
	m := testModel()
	seq := m.Service(1000, 1000, 8)
	rnd := m.Service(1000, 500000, 8)
	if seq >= rnd {
		t.Fatalf("sequential %v should be cheaper than random %v", seq, rnd)
	}
	if seq != 8*m.PerBlockTransfer {
		t.Fatalf("sequential = %v, want pure transfer %v", seq, 8*m.PerBlockTransfer)
	}
}

func TestDeviceSequentialStream(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	d := NewDevice(env, testModel(), met)
	var done sim.Time
	env.Go("io", func(p *sim.Proc) {
		// First request seeks; the next 9 stream.
		for i := 0; i < 10; i++ {
			d.Access(p, Read, int64(1000+8*i), 8)
		}
		done = p.Now()
	})
	env.Run()
	m := testModel()
	want := m.Service(0, 1000, 8) + 9*8*m.PerBlockTransfer
	if done != sim.Time(want) {
		t.Fatalf("stream done at %v, want %v", done, sim.Time(want))
	}
	if met.Get(metrics.DiskOps) != 10 {
		t.Fatalf("ops = %d, want 10", met.Get(metrics.DiskOps))
	}
	if met.Get(metrics.DiskReadSectors) != 10*8*SectorsPerBlock {
		t.Fatalf("read sectors = %d", met.Get(metrics.DiskReadSectors))
	}
}

func TestDeviceFCFSQueueing(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDevice(env, testModel(), nil)
	var first, second sim.Time
	env.Go("a", func(p *sim.Proc) {
		d.Access(p, Read, 1000, 8)
		first = p.Now()
	})
	env.Go("b", func(p *sim.Proc) {
		d.Access(p, Read, 900000, 8)
		second = p.Now()
	})
	env.Run()
	if second <= first {
		t.Fatalf("second request (%v) must complete after first (%v)", second, first)
	}
	m := testModel()
	if first != sim.Time(m.Service(0, 1000, 8)) {
		t.Fatalf("first done at %v", first)
	}
}

func TestDeviceAsyncSubmit(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDevice(env, testModel(), nil)
	env.Go("ra", func(p *sim.Proc) {
		t1 := d.Submit(Read, 1000, 32)
		if p.Now() != 0 {
			t.Error("Submit must not block")
		}
		if t1 != d.FreeAt() {
			t.Error("completion should match FreeAt")
		}
	})
	env.Run()
}

func TestDeviceWriteAccounting(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	d := NewDevice(env, testModel(), met)
	env.Go("w", func(p *sim.Proc) { d.Access(p, Write, 0, 4) })
	env.Run()
	if met.Get(metrics.DiskWriteSectors) != 4*SectorsPerBlock {
		t.Fatalf("write sectors = %d", met.Get(metrics.DiskWriteSectors))
	}
	if met.Get(metrics.DiskReadSectors) != 0 {
		t.Fatal("unexpected read sectors")
	}
}

func TestDeviceOutOfRangePanics(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDevice(env, testModel(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Submit(Read, testModel().TotalBlocks-1, 2)
}

func TestLayoutDisjoint(t *testing.T) {
	l := NewLayout(testModel().TotalBlocks)
	a := l.Reserve("img0", 1<<20)
	b := l.Reserve("img1", 1<<20)
	c := l.Reserve("swap", 1<<18)
	regions := []Region{a, b, c}
	for i := range regions {
		for j := range regions {
			if i == j {
				continue
			}
			if regions[i].Contains(regions[j].Start) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
	if got, ok := l.Region("swap"); !ok || got != c {
		t.Fatal("lookup failed")
	}
}

func TestRegionTranslation(t *testing.T) {
	r := Region{Name: "x", Start: 5000, Blocks: 100}
	if err := quick.Check(func(relRaw uint16) bool {
		rel := int64(relRaw % 100)
		phys := r.Phys(rel)
		return r.Contains(phys) && r.Rel(phys) == rel
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionPhysOutOfRangePanics(t *testing.T) {
	r := Region{Name: "x", Start: 0, Blocks: 10}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Phys(10)
}

func TestLayoutDuplicatePanics(t *testing.T) {
	l := NewLayout(1 << 30)
	l.Reserve("a", 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Reserve("a", 10)
}
