package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"vswapsim/internal/fault"
	"vswapsim/internal/swapback"
)

// The cache key is a SHA-256 over every knob that can influence a job's
// output bytes, plus the code fingerprint of the binary that produced
// them. Knobs are canonicalized before hashing (fault plans through
// ParsePlan→String, backend/policy through their parsers), so spellings
// that mean the same run ("disk-lat:0.05" vs "disk-lat:0.05:2ms", "" vs
// "hdd") share one entry.
//
// Two knobs are deliberately EXCLUDED, and the key tests pin both:
//   - Parallel: results are byte-identical at any parallelism (the golden
//     and equivalence suites enforce it), so keying on it would fragment
//     the cache without ever changing a byte.
//   - CellTimeoutMS: wall-clock kills are nondeterministic, and a job
//     that breached its wall budget (or failed any other way) is never
//     cached — so the timeout cannot influence any bytes that reach the
//     cache.
const keyVersion = "vswapsimd-cache-v1"

// Key computes the content-addressed cache key for a request under the
// given code fingerprint.
func Key(req JobRequest, fingerprint string) string {
	req = req.normalize()
	h := sha256.New()
	field := func(s string) {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	field(keyVersion)
	field("code=" + fingerprint)
	if req.Scenario != "" {
		sum := sha256.Sum256([]byte(req.Scenario))
		field("scenario=" + hex.EncodeToString(sum[:]))
	} else {
		field("registry=" + req.ID)
	}
	field(fmt.Sprintf("seed=%d", req.Seed))
	field(fmt.Sprintf("scale=%g", req.Scale))
	field(fmt.Sprintf("quick=%v", req.Quick))
	field(fmt.Sprintf("tracering=%d", req.TraceRing))
	if plan, err := fault.ParsePlan(req.Faults); err == nil {
		field("faults=" + plan.String())
	} else {
		field("faults=!" + req.Faults) // unvalidated requests never reach the cache
	}
	if kind, err := swapback.ParseKind(req.Swapback); err == nil {
		field("swapback=" + kind.String())
	} else {
		field("swapback=!" + req.Swapback)
	}
	if pol, err := swapback.ParsePolicy(req.SwapPolicy); err == nil {
		field("swappolicy=" + pol.String())
	} else {
		field("swappolicy=!" + req.SwapPolicy)
	}
	field(fmt.Sprintf("auditevery=%d", req.AuditEvery))
	field(fmt.Sprintf("maxevents=%d", req.MaxEvents))
	return hex.EncodeToString(h.Sum(nil))
}

var (
	fingerprintOnce sync.Once
	fingerprintVal  string
)

// CodeFingerprint identifies the code that computes results: the SHA-256
// of the running executable, truncated for key brevity. Rebuilding the
// binary therefore invalidates every cached entry — a version-mismatched
// entry is simply never looked up, so it can never be served. When the
// executable cannot be read (platform oddities), the Go toolchain version
// is the (coarser) fallback.
func CodeFingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprintVal = "go:" + runtime.Version()
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fingerprintVal = "exe:" + hex.EncodeToString(h.Sum(nil))[:32]
	})
	return fingerprintVal
}
