package hostmm

import (
	"testing"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// TestRemapOverwriteLostRace pins the fix for the fleetN crash (200-guest
// vswapper cell, dynamic/vswapper/guests200/seed43d0e4fc546549ca): the
// Preventer's full-overwrite fast path used BeginEmulation followed by
// EmulationRemap, whose frame charge can block in direct reclaim — leaving
// the page Emulated with no emulation buffer attached, so any concurrent
// accessor routed to Preventer.OnAccess crashed on the nil buffer.
// RemapOverwrite must instead keep the non-resident state across the
// blocking charge and, when another thread resolves the page meanwhile,
// give the frame back and report false so the caller retries.
func TestRemapOverwriteLostRace(t *testing.T) {
	r := newRig(t, 1000, 10)
	pages := make([]*Page, 20)
	var victim *Page
	resolved := false
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		if victim == nil {
			t.Fatal("no page swapped out")
		}
		p.Sleep(10 * sim.Second) // drain writeback; cg stays at its limit

		// The cgroup is at its limit, so the overwrite below must reclaim
		// before it can charge, sleeping for the scan time. This resolver
		// fires inside that window and discards the page, as a balloon
		// take or mmap-over would.
		r.env.Go("resolver", func(q *sim.Proc) {
			q.Sleep(sim.Nanosecond)
			if victim.State == Emulated && victim.Emu == nil {
				t.Error("bufferless Emulated page observable during blocked charge")
				return
			}
			if victim.State != SwappedOut {
				t.Errorf("charge did not block: victim already %v", victim.State)
				return
			}
			r.mgr.Forget(victim)
			resolved = true
		})
		if r.mgr.RemapOverwrite(p, victim) {
			t.Fatal("RemapOverwrite claimed success after losing the race")
		}
		if !resolved {
			t.Fatal("resolver never ran inside the charge window")
		}
		if victim.State != Untouched {
			t.Fatalf("victim state %v, want Untouched from the concurrent resolve", victim.State)
		}
		if got := r.cg.Resident(); got > 10 {
			t.Fatalf("lost-race frame not given back: resident=%d limit=10", got)
		}
	})
}

// TestRemapOverwriteUncontended covers the winning path: the overwritten
// page becomes a plain dirty anonymous page, its swap slot is released,
// and the remap is counted.
func TestRemapOverwriteUncontended(t *testing.T) {
	r := newRig(t, 1000, 10)
	pages := make([]*Page, 20)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		var victim *Page
		for _, pg := range pages {
			if pg.State == SwappedOut {
				victim = pg
				break
			}
		}
		if victim == nil {
			t.Fatal("no page swapped out")
		}
		slot := victim.SwapSlot
		if !r.mgr.RemapOverwrite(p, victim) {
			t.Fatal("uncontended RemapOverwrite failed")
		}
		if victim.State != ResidentAnon || !victim.Dirty || !victim.EPT {
			t.Fatalf("state=%v dirty=%v ept=%v", victim.State, victim.Dirty, victim.EPT)
		}
		if victim.SwapSlot != -1 {
			t.Fatal("swap slot not released")
		}
		if r.swap.Owner(slot) != nil {
			t.Fatal("freed slot still owned")
		}
		if r.met.Get(metrics.PreventerRemaps) != 1 {
			t.Fatal("remap not counted")
		}
	})
}
