package sim

import (
	"sync"
	"testing"
)

// driveEnv runs a small but representative simulation — timers, processes,
// signals and PRNG draws — and returns its observable trace.
func driveEnv(seed uint64) []uint64 {
	env := NewEnv(seed)
	var trace []uint64
	sig := NewSignal(env)
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Sleep(Duration(env.Rand().Intn(900)+1) * Microsecond)
			trace = append(trace, uint64(env.Now())^env.Rand().Uint64())
			if i%10 == 0 {
				sig.Broadcast()
			}
		}
		sig.Broadcast()
	})
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			sig.Wait(p)
			trace = append(trace, env.Rand().Uint64())
		}
	})
	env.Run()
	return trace
}

// TestEnvsIsolatedAcrossGoroutines drives several environments from
// separate OS goroutines at once. Identically-seeded environments must
// produce identical traces, and the race detector must stay quiet — the
// guarantee the parallel experiment executor depends on.
func TestEnvsIsolatedAcrossGoroutines(t *testing.T) {
	ref1, ref2 := driveEnv(1), driveEnv(2)
	if len(ref1) == 0 || len(ref2) == 0 {
		t.Fatal("empty reference trace")
	}

	const workers = 8
	got := make([][]uint64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			// Mix seeds so differently-seeded envs also run concurrently.
			got[i] = driveEnv(uint64(i%2 + 1))
		}(i)
	}
	wg.Wait()

	for i, tr := range got {
		want := ref1
		if i%2 == 1 {
			want = ref2
		}
		if len(tr) != len(want) {
			t.Fatalf("worker %d: trace length %d, want %d", i, len(tr), len(want))
		}
		for j := range tr {
			if tr[j] != want[j] {
				t.Fatalf("worker %d: trace diverges at %d under concurrency", i, j)
			}
		}
	}
}

// TestRNGsIndependent checks two generators with distinct seeds do not
// share state when advanced from separate goroutines.
func TestRNGsIndependent(t *testing.T) {
	refA, refB := NewRNG(7), NewRNG(8)
	var wantA, wantB []uint64
	for i := 0; i < 1000; i++ {
		wantA = append(wantA, refA.Uint64())
		wantB = append(wantB, refB.Uint64())
	}
	var wg sync.WaitGroup
	check := func(seed uint64, want []uint64) {
		defer wg.Done()
		r := NewRNG(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("seed %d: draw %d = %d, want %d", seed, i, got, w)
				return
			}
		}
	}
	wg.Add(2)
	go check(7, wantA)
	go check(8, wantB)
	wg.Wait()
}
