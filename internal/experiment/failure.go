package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"regexp"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"vswapsim/internal/fault/audit"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// This file is the panic-isolation half of the run-hardening layer. Every
// simulation cell (runSingle, runDynamic and any test fixture routed
// through runShielded) executes under a shield that recovers panics —
// including the typed *sim.BudgetError a watchdog kill raises — and
// converts them into structured FailureRecords. The sweep continues;
// sibling cells are unaffected.
//
// Determinism: a panic or an event-budget/stall kill is a pure function
// of the cell's seed and configuration, so the same cell fails
// identically in serial and parallel sweeps. The only run-to-run noise in
// a panic is incidental — pointer values and goroutine ids in messages
// and stacks — and sanitizeMessage/sanitizeStack scrub exactly that, so
// failure records serialize to identical bytes either way. Wall-clock
// kills and cancellations are inherently scheduling-dependent and carry
// no such guarantee.

// Failure kinds recorded in FailureRecord.Kind.
const (
	// FailPanic is a recovered Go panic in the cell (model bug, audit
	// violation, assertion).
	FailPanic = "panic"
	// FailWatchdogEvents is a deterministic kill: the cell exceeded the
	// simulated-event budget (-maxevents).
	FailWatchdogEvents = "watchdog:max-events"
	// FailWatchdogStall is a deterministic kill: the simulated clock
	// stopped advancing (livelock).
	FailWatchdogStall = "watchdog:stall"
	// FailWatchdogWall is a wall-clock kill (-celltimeout). Fatal: the
	// rest of the run is canceled, because real time is being lost.
	FailWatchdogWall = "watchdog:wall-timeout"
	// FailCanceled is a cell aborted (or skipped) by run cancellation
	// (SIGINT or a fatal breach elsewhere).
	FailCanceled = "canceled"
)

// FailureRecord is the structured form of one failed cell: enough to
// understand the failure (message, sanitized stack, trace tail, recent
// audit states) and to replay it (cell label, machine seed, base seed,
// fault spec).
type FailureRecord struct {
	Label     string                   `json:"label"`
	Seed      uint64                   `json:"seed"`      // machine seed of the cell
	BaseSeed  uint64                   `json:"base_seed"` // invocation -seed it derives from
	Faults    string                   `json:"faults,omitempty"`
	Kind      string                   `json:"kind"`
	Message   string                   `json:"message"`
	Stack     []string                 `json:"stack,omitempty"`
	Events    uint64                   `json:"events,omitempty"`
	SimNowNS  int64                    `json:"sim_now_ns,omitempty"`
	Trace     []hyper.TraceEventReport `json:"trace,omitempty"`
	AuditTail []string                 `json:"audit_tail,omitempty"`
}

// failureLog accumulates FailureRecords from concurrently executing
// cells, mirroring runLog.
type failureLog struct {
	mu   sync.Mutex
	recs []FailureRecord
}

func (fl *failureLog) add(rec *FailureRecord) {
	if fl == nil || rec == nil {
		return
	}
	fl.mu.Lock()
	fl.recs = append(fl.recs, *rec)
	fl.mu.Unlock()
}

// addRecords replays already-collected records (e.g. from a memoized
// sweep) into this log.
func (fl *failureLog) addRecords(recs []FailureRecord) {
	if fl == nil || len(recs) == 0 {
		return
	}
	fl.mu.Lock()
	fl.recs = append(fl.recs, recs...)
	fl.mu.Unlock()
}

// sorted returns the records in a scheduling-independent order: by label,
// then by the sha256 of the serialized record.
func (fl *failureLog) sorted() []FailureRecord {
	if fl == nil {
		return nil
	}
	fl.mu.Lock()
	recs := make([]FailureRecord, len(fl.recs))
	copy(recs, fl.recs)
	fl.mu.Unlock()
	keys := make([]string, len(recs))
	for i, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			panic("experiment: failure record not serializable: " + err.Error())
		}
		sum := sha256.Sum256(data)
		keys[i] = r.Label + "\x00" + hex.EncodeToString(sum[:])
	}
	sort.Sort(&failSorter{recs: recs, keys: keys})
	return recs
}

type failSorter struct {
	recs []FailureRecord
	keys []string
}

func (s *failSorter) Len() int           { return len(s.recs) }
func (s *failSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *failSorter) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// EnableFailureLog arms failure collection on this Options value, like
// EnableRunLog does for run records. It returns the fetch function; call
// it after the experiment finishes to get the records in deterministic
// order.
func (o *Options) EnableFailureLog() func() []FailureRecord {
	fl := &failureLog{}
	o.faillog = fl
	return fl.sorted
}

// cellState carries the pieces of a running cell that failure capture
// needs: the machine (for the trace-ring tail and event/clock position)
// and the auditor (for the recent audit states). The cell body fills it
// in as the pieces come to exist, so a panic at any stage still captures
// whatever was already built.
type cellState struct {
	m   *hyper.Machine
	aud *audit.Auditor
}

// runShielded executes one simulation cell under the hardening envelope:
// a canceled run skips the cell, and a panic — including a watchdog's
// *sim.BudgetError — is recovered, converted into a FailureRecord,
// logged, and returned. A nil return means the cell completed.
func (o Options) runShielded(label string, seed uint64, st *cellState, fn func()) (rec *FailureRecord) {
	if o.canceled() {
		rec = o.newFailure(label, seed, st)
		rec.Kind = FailCanceled
		rec.Message = "cell skipped: run canceled before it started"
		o.faillog.add(rec)
		return rec
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		rec = o.captureFailure(label, seed, st, r, debug.Stack())
		o.faillog.add(rec)
		if rec.Kind == FailWatchdogWall {
			// A wall-clock breach means real time is being lost on a cell
			// that should long have finished; treat it as fatal and cancel
			// the remainder of the run (the partial report is still
			// emitted, marked incomplete).
			o.cancelRun()
		}
	}()
	fn()
	return nil
}

// newFailure fills the fields every failure shares, harvesting the trace
// tail and audit history from whatever the cell had built — this is what
// makes watchdog kills and panics carry the same diagnostics as the
// happy-path -json report.
func (o Options) newFailure(label string, seed uint64, st *cellState) *FailureRecord {
	rec := &FailureRecord{
		Label:    label,
		Seed:     seed,
		BaseSeed: o.Seed,
		Faults:   o.Faults.String(),
	}
	if st != nil && st.m != nil {
		rec.Events = st.m.Env.EventCount()
		rec.SimNowNS = int64(st.m.Env.Now())
		rec.Trace = st.m.Report().Trace
	}
	if st != nil && st.aud != nil {
		rec.AuditTail = st.aud.History()
	}
	return rec
}

// captureFailure classifies a recovered panic value into a record.
func (o Options) captureFailure(label string, seed uint64, st *cellState, r interface{}, stack []byte) *FailureRecord {
	rec := o.newFailure(label, seed, st)
	if be, ok := r.(*sim.BudgetError); ok {
		switch be.Kind {
		case sim.BreachMaxEvents:
			rec.Kind = FailWatchdogEvents
		case sim.BreachStall:
			rec.Kind = FailWatchdogStall
		case sim.BreachWall:
			rec.Kind = FailWatchdogWall
		case sim.BreachCanceled:
			rec.Kind = FailCanceled
		default:
			rec.Kind = "watchdog:" + be.Kind
		}
		rec.Message = sanitizeMessage(be.Error())
		rec.Events = be.Events
		rec.SimNowNS = int64(be.Now)
		return rec
	}
	rec.Kind = FailPanic
	rec.Message = sanitizeMessage(fmt.Sprint(r))
	rec.Stack = sanitizeStack(stack)
	return rec
}

var (
	hexValRE    = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	goroutineRE = regexp.MustCompile(`goroutine \d+`)
)

// sanitizeMessage strips the run-to-run varying parts of a panic message
// — pointer values and goroutine ids, including those inside a simulated
// process's embedded stack dump — so the same logical failure produces
// identical bytes in serial and parallel sweeps.
func sanitizeMessage(s string) string {
	s = hexValRE.ReplaceAllString(s, "0x?")
	return goroutineRE.ReplaceAllString(s, "goroutine ?")
}

// sanitizeStack converts a debug.Stack dump into deterministic frame
// lines: goroutine headers are dropped, pointer arguments and " +0x..."
// offsets scrubbed, and the trace truncated at the shield frame so the
// caller side (serial loop vs worker goroutine) cannot leak into the
// record.
func sanitizeStack(stack []byte) []string {
	var out []string
	for _, line := range strings.Split(string(stack), "\n") {
		frame := strings.TrimSpace(line)
		if frame == "" || strings.HasPrefix(frame, "goroutine ") {
			continue
		}
		frame = sanitizeMessage(frame)
		if i := strings.Index(frame, " +0x?"); i >= 0 {
			frame = frame[:i]
		}
		out = append(out, frame)
		// The shield frame (runShielded / runExperimentShielded) is the
		// boundary between the cell and the executor; everything beyond it
		// is scheduling machinery. Deferred-closure frames end in
		// ".funcN(...)" and do not match.
		if strings.Contains(frame, "Shielded(") {
			break
		}
	}
	return out
}
