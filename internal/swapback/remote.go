package swapback

import (
	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Remote-tier parameters: a network-attached swap target (NBD / remote
// memory) over a few persistent connections. Most requests pay one
// datacenter RTT plus wire transfer with a little jitter; a small seeded
// fraction lands in the tail (incast, GC on the far end, a retransmit).
const (
	remoteConns       = 4
	remoteBaseRTT     = 120 * sim.Microsecond
	remotePerBlock    = 3 * sim.Microsecond // ~1.3 GB/s wire rate per conn
	remoteTailProb    = 0.02
	remoteTailPenalty = 5 * sim.Millisecond
	remoteJitterMax   = 80 * sim.Microsecond
)

// remoteTier draws exactly one uniform variate per request from its
// private seeded stream, so the tail schedule is deterministic and
// independent of every other randomness consumer.
type remoteTier struct {
	env   *sim.Env
	inj   *fault.Injector
	rng   *sim.RNG
	conns []sim.Time // per-connection free times

	tails              *metrics.Counter
	retries, exhausted *metrics.Counter
	histBackoff        *metrics.Histogram
}

func newRemoteTier(cfg Config) *remoteTier {
	return &remoteTier{
		env:         cfg.Env,
		inj:         cfg.Inj,
		rng:         sim.NewRNG(cfg.Seed),
		conns:       make([]sim.Time, remoteConns),
		tails:       cfg.Met.Counter(metrics.SwapbackRemoteTailEvents),
		retries:     cfg.Met.Counter(metrics.FaultDiskRetries),
		exhausted:   cfg.Met.Counter(metrics.FaultDiskExhausted),
		histBackoff: cfg.Met.Histogram(metrics.HistFaultBackoff),
	}
}

func (t *remoteTier) submit(kind disk.Kind, slot int64, n int) sim.Time {
	now := t.env.Now()
	ci := 0
	for i := 1; i < len(t.conns); i++ {
		if t.conns[i] < t.conns[ci] {
			ci = i
		}
	}
	begin := t.conns[ci]
	if now > begin {
		begin = now
	}
	base := remoteBaseRTT + sim.Duration(int64(remotePerBlock)*int64(n))
	svc := base
	u := t.rng.Float64()
	if u < remoteTailProb {
		svc += remoteTailPenalty
		t.tails.Inc()
	} else {
		// Re-scale the same draw to uniform jitter so each request costs
		// exactly one variate.
		svc += sim.Duration(float64(remoteJitterMax) * (u - remoteTailProb) / (1 - remoteTailProb))
	}
	// Injected faults model a poisoned remote read/write: the client
	// retries with backoff, re-paying the request's wire cost each time.
	svc += injectXfer(t.inj, kind == disk.Write, base, t.retries, t.exhausted, t.histBackoff)
	done := begin.Add(svc)
	t.conns[ci] = done
	return done
}

func (t *remoteTier) backlog() sim.Duration {
	min := t.conns[0]
	for _, f := range t.conns[1:] {
		if f < min {
			min = f
		}
	}
	return min.Sub(t.env.Now())
}
