package hostmm

import "fmt"

// Audit verifies the manager's internal invariants; tests call it after
// stress scenarios. It returns the first violation found, or nil.
//
// Invariants checked:
//  1. Every page on an LRU list is resident, and its list matches its kind
//     (anon lists hold ResidentAnon, file lists hold ResidentFile).
//  2. Per-cgroup resident counts equal the frames implied by the lists.
//  3. The frame pool usage equals the sum of cgroup resident counts.
//  4. Every allocated swap slot is owned by a page that records it, the
//     owner's state can legally hold a slot (SwappedOut, ResidentAnon in
//     the swap cache, or Emulated), and the owner-map size matches the
//     allocator's in-use count.
//  5. No page is charged twice (appears on two lists).
//  6. Every clean resident-anon page has a valid swap-cache backing: a
//     page without one holds the only copy of its content, so it must be
//     dirty or eviction would silently lose it.
func (m *Manager) Audit() error {
	totalResident := 0
	for _, cg := range m.cgroups {
		listed := 0
		check := func(l *pageList, wantState PageState) error {
			n := 0
			for pg := l.head; pg != nil; pg = pg.next {
				n++
				if pg.list != l {
					return fmt.Errorf("%s: page %d has wrong list backref", l.name, pg.ID)
				}
				if pg.State != wantState {
					return fmt.Errorf("%s: page %d in state %s", l.name, pg.ID, pg.State)
				}
				if pg.Owner != cg {
					return fmt.Errorf("%s: page %d owned by %s", l.name, pg.ID, pg.Owner.Name)
				}
				if pg.State == ResidentAnon && !pg.Dirty && !m.swapCacheValid(pg) {
					return fmt.Errorf("%s: clean anon page %d has no swap-cache backing (slot %d)",
						l.name, pg.ID, pg.SwapSlot)
				}
			}
			if n != l.size {
				return fmt.Errorf("%s: size %d but %d nodes", l.name, l.size, n)
			}
			listed += n
			return nil
		}
		if err := check(&cg.activeAnon, ResidentAnon); err != nil {
			return err
		}
		if err := check(&cg.inactiveAnon, ResidentAnon); err != nil {
			return err
		}
		if err := check(&cg.activeFile, ResidentFile); err != nil {
			return err
		}
		if err := check(&cg.inactiveFile, ResidentFile); err != nil {
			return err
		}
		// lazy entries hold no frames; they are not counted.
		if listed != cg.resident {
			return fmt.Errorf("cgroup %s: %d listed resident pages but %d charged",
				cg.Name, listed, cg.resident)
		}
		if cg.pinned < 0 {
			return fmt.Errorf("cgroup %s: negative pin count %d", cg.Name, cg.pinned)
		}
		totalResident += cg.resident
	}
	if totalResident != m.Pool.Used() {
		return fmt.Errorf("pool uses %d frames but cgroups charge %d", m.Pool.Used(), totalResident)
	}
	owned := 0
	for i, pg := range m.Swap.owner {
		if pg == nil {
			continue
		}
		owned++
		slot := int64(i)
		if m.Swap.free[slot] {
			return fmt.Errorf("slot %d owned by page %d but marked free", slot, pg.ID)
		}
		if pg.SwapSlot != slot {
			return fmt.Errorf("slot %d owner page %d records slot %d", slot, pg.ID, pg.SwapSlot)
		}
		switch pg.State {
		case SwappedOut, ResidentAnon, Emulated:
		default:
			return fmt.Errorf("slot %d owned by page %d in state %s", slot, pg.ID, pg.State)
		}
	}
	if owned != m.Swap.inUse {
		return fmt.Errorf("swap allocator counts %d slots in use but owner table has %d",
			m.Swap.inUse, owned)
	}
	return nil
}
