package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"vswapsim/internal/experiment"
)

// tinyScenario is a single-scheme, 8MB-workload scenario that simulates
// in ~20ms — the inline-YAML counterpart to the tab1 registry target.
const tinyScenario = `scenario: tinysrv
title: "tiny serve test scenario"
mode: single
fleet:
  memory_mb: 128
  actual_mb: 64
schemes:
  - name: baseline
workload:
  kind: seqread
  file_mb: 8
table:
  title: "runtime [sec]"
`

// newTestServer builds, starts, and tears down a Server plus its HTTP
// front. mutate tweaks the Config before New.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		CacheDir:    t.TempDir(),
		Workers:     2,
		QueueDepth:  8,
		Parallel:    2,
		Fingerprint: testFingerprint,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func testClient(ts *httptest.Server) *Client {
	c := NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c
}

// stubRunner returns a deterministic fake document derived from the
// request, so lifecycle tests need no simulation.
func stubRunner(ctx context.Context, req JobRequest, e experiment.Experiment, o experiment.Options) ([]byte, Outcome, error) {
	return []byte(fmt.Sprintf(`{"stub":"%s","seed":%d}`, req.target(), o.Seed)), Outcome{}, nil
}

// gate coordinates a blocking stub runner with the test body.
type gate struct {
	started chan string   // receives the job target when the runner begins
	release chan struct{} // closed (or fed) to let runners finish
}

func newGate() *gate {
	return &gate{started: make(chan string, 16), release: make(chan struct{})}
}

// runner blocks until released; a canceled context (forced drain, wall
// budget) yields a partial document marked incomplete, like the real
// executor would produce.
func (g *gate) runner(ctx context.Context, req JobRequest, e experiment.Experiment, o experiment.Options) ([]byte, Outcome, error) {
	g.started <- req.target()
	select {
	case <-g.release:
		return stubRunner(ctx, req, e, o)
	case <-ctx.Done():
		return []byte(`{"stub":"partial","incomplete":true}`), Outcome{Incomplete: true}, nil
	}
}

func (g *gate) waitStarted(t *testing.T) string {
	t.Helper()
	select {
	case id := <-g.started:
		return id
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a job to start")
		return ""
	}
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// --- cache warm/cold byte-identity ---------------------------------------

// TestWarmColdByteIdentityRegistry is the cache-hit contract on a real
// registry experiment: the second submission is served from the cache and
// its document is byte-identical to the cold run's.
func TestWarmColdByteIdentityRegistry(t *testing.T) {
	s, ts := newTestServer(t, nil) // real ExperimentRunner
	c := testClient(ts)
	req := JobRequest{ID: "tab1", Quick: true}

	cold, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold run reported cached")
	}
	if cold.State != StateDone || cold.ExitHint != 0 {
		t.Fatalf("cold run: state=%s exit=%d", cold.State, cold.ExitHint)
	}
	if len(cold.Document) == 0 {
		t.Fatal("cold run returned no document")
	}

	warm, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second submission was not served from cache")
	}
	if !bytes.Equal(cold.Document, warm.Document) {
		t.Fatalf("cache hit is not byte-identical:\ncold %s\nwarm %s", cold.Document, warm.Document)
	}
	get := s.Metrics()
	if get(MetricCacheMisses) != 1 || get(MetricCacheHits) != 1 || get(MetricCacheWrites) != 1 {
		t.Fatalf("cache counters: misses=%d hits=%d writes=%d, want 1/1/1",
			get(MetricCacheMisses), get(MetricCacheHits), get(MetricCacheWrites))
	}
	// The cached document must itself be valid, parallelism-free JSON.
	var doc experiment.JSONDocument
	if err := json.Unmarshal(warm.Document, &doc); err != nil {
		t.Fatalf("cached document does not parse: %v", err)
	}
	if doc.Parallel != 0 {
		t.Fatalf("job document encodes parallelism %d; cached results must not", doc.Parallel)
	}
}

// TestWarmColdByteIdentityScenario: the same contract through the inline
// scenario-YAML path.
func TestWarmColdByteIdentityScenario(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := testClient(ts)
	req := JobRequest{Scenario: tinyScenario, Seed: 7}

	cold, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || !warm.Cached {
		t.Fatalf("cached flags: cold=%v warm=%v, want false/true", cold.Cached, warm.Cached)
	}
	if !bytes.Equal(cold.Document, warm.Document) {
		t.Fatal("scenario cache hit is not byte-identical")
	}
	// Different parallelism must still hit (the deliberate key collision),
	// and serve the same bytes.
	warm2, err := c.Run(context.Background(), JobRequest{Scenario: tinyScenario, Seed: 7, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !warm2.Cached || !bytes.Equal(cold.Document, warm2.Document) {
		t.Fatal("changing parallel broke the cache hit")
	}
}

// TestCorruptEntryRecomputed: a damaged cache entry is detected, counted,
// never served, and transparently recomputed to identical bytes.
func TestCorruptEntryRecomputed(t *testing.T) {
	s, ts := newTestServer(t, nil)
	c := testClient(ts)
	req := JobRequest{ID: "tab1", Quick: true}

	cold, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the entry on disk.
	path := s.cache.path(cold.CacheKey)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	again, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("corrupted entry was served as a cache hit")
	}
	if !bytes.Equal(cold.Document, again.Document) {
		t.Fatal("recomputed document differs from the original")
	}
	get := s.Metrics()
	if get(MetricCacheCorrupt) != 1 {
		t.Fatalf("corrupt counter = %d, want 1", get(MetricCacheCorrupt))
	}
	// Third submission hits the freshly rewritten entry.
	warm, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || !bytes.Equal(cold.Document, warm.Document) {
		t.Fatal("cache did not recover after corruption")
	}
}

// --- admission control ----------------------------------------------------

// TestQueueFullRejects429: with one worker wedged and the one queue slot
// taken, the next submission gets 429 plus a Retry-After hint — and a
// client that honors the hint succeeds once the logjam clears.
func TestQueueFullRejects429(t *testing.T) {
	g := newGate()
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.Runner = g.runner
		c.RetryAfter = time.Second
	})
	// Job 1 occupies the worker; job 2 occupies the queue slot.
	postJob(t, ts, `{"id":"fig3"}`)
	g.waitStarted(t)
	postJob(t, ts, `{"id":"fig4"}`)

	resp, body := postJob(t, ts, `{"id":"fig5"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := s.Metrics()(MetricJobsRejectedFull); got != 1 {
		t.Fatalf("queuefull counter = %d, want 1", got)
	}

	// Release the gate in the background; a retrying client waits out the
	// hint and lands the job.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(g.release)
		for range g.started { // drain so later runners don't block
		}
	}()
	defer close(g.started)
	c := testClient(ts)
	st, err := c.Run(context.Background(), JobRequest{ID: "fig5"})
	if err != nil {
		t.Fatalf("retrying submit failed: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("retried job state %s, want done", st.State)
	}
}

// TestRateLimit429: the token bucket rejects a burst past its capacity.
func TestRateLimit429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Runner = stubRunner
		c.RatePerSec = 0.001 // effectively: the burst is all you get
		c.RateBurst = 2
	})
	codes := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		resp, _ := postJob(t, ts, `{"id":"tab1"}`)
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] == http.StatusTooManyRequests || codes[1] == http.StatusTooManyRequests {
		t.Fatalf("burst rejected early: %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", codes[2])
	}
	if got := s.Metrics()(MetricJobsRejectedRate); got != 1 {
		t.Fatalf("ratelimit counter = %d, want 1", got)
	}
}

// TestSubmitValidation: malformed and invalid bodies are 400s (413 for
// oversized), counted, and never enqueued.
func TestSubmitValidation(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Runner = stubRunner
		c.MaxBodyBytes = 512
	})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"id":`, http.StatusBadRequest},
		{"unknown field", `{"id":"tab1","bogus":1}`, http.StatusBadRequest},
		{"neither id nor scenario", `{}`, http.StatusBadRequest},
		{"both id and scenario", `{"id":"tab1","scenario":"x"}`, http.StatusBadRequest},
		{"unknown id", `{"id":"nope"}`, http.StatusBadRequest},
		{"bad scale", `{"id":"tab1","scale":-1}`, http.StatusBadRequest},
		{"negative parallel", `{"id":"tab1","parallel":-1}`, http.StatusBadRequest},
		{"negative auditevery", `{"id":"tab1","auditevery":-5}`, http.StatusBadRequest},
		{"bad faults", `{"id":"tab1","faults":"frobnicate:1"}`, http.StatusBadRequest},
		{"bad swapback", `{"id":"tab1","swapback":"floppy"}`, http.StatusBadRequest},
		{"bad scenario yaml", `{"scenario":"not: [valid"}`, http.StatusBadRequest},
		{"oversized body", `{"id":"tab1","scenario":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJob(t, ts, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body missing: %s", body)
			}
		})
	}
	if got := s.Metrics()(MetricJobsRejectedBad); got != int64(len(cases)) {
		t.Fatalf("invalid counter = %d, want %d", got, len(cases))
	}
	if got := s.Metrics()(MetricJobsAccepted); got != 0 {
		t.Fatalf("accepted counter = %d, want 0", got)
	}
}

// --- panic isolation ------------------------------------------------------

// TestPanicIsolation: a job whose runner panics becomes a failed job with
// a structured FailureRecord; the daemon survives and runs the next job.
func TestPanicIsolation(t *testing.T) {
	boom := true
	s, ts := newTestServer(t, func(c *Config) {
		c.Runner = func(ctx context.Context, req JobRequest, e experiment.Experiment, o experiment.Options) ([]byte, Outcome, error) {
			if boom {
				boom = false
				panic("synthetic runner explosion")
			}
			return stubRunner(ctx, req, e, o)
		}
		c.Workers = 1
	})
	c := testClient(ts)
	st, err := c.Run(context.Background(), JobRequest{ID: "tab1"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.ExitHint != 1 {
		t.Fatalf("panicked job: state=%s exit=%d, want failed/1", st.State, st.ExitHint)
	}
	if st.Failure == nil || st.Failure.Kind != experiment.FailPanic {
		t.Fatalf("panicked job carries no panic FailureRecord: %+v", st.Failure)
	}
	if !strings.Contains(st.Failure.Message, "synthetic runner explosion") {
		t.Fatalf("failure message %q lost the panic value", st.Failure.Message)
	}
	if got := s.Metrics()(MetricJobsFailed); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
	// The daemon is still alive and well.
	st2, err := c.Run(context.Background(), JobRequest{ID: "tab1", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || st2.ExitHint != 0 {
		t.Fatalf("post-panic job: state=%s exit=%d", st2.State, st2.ExitHint)
	}
}

// --- graceful drain and restart recovery ----------------------------------

// TestDrainPersistsAndRestartRecovers is the crash-safety round trip: a
// forced drain marks the in-flight job incomplete (exit hint 3), persists
// it and the queued jobs, and a fresh server on the same state path
// re-runs exactly those jobs — same ids — to completion. Incomplete
// results never enter the cache.
func TestDrainPersistsAndRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	statePath := dir + "/state.json"
	cacheDir := dir + "/cache"

	g := newGate()
	s1, err := New(Config{
		CacheDir: cacheDir, StatePath: statePath,
		Workers: 1, QueueDepth: 4,
		Runner: g.runner, Fingerprint: testFingerprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())

	ids := make([]string, 0, 3)
	for i, id := range []string{"fig3", "fig4", "fig5"} {
		resp, body := postJob(t, ts1, fmt.Sprintf(`{"id":%q}`, id))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d (%s)", i, resp.StatusCode, body)
		}
		var st JobStatus
		json.Unmarshal(body, &st)
		ids = append(ids, st.JobID)
	}
	g.waitStarted(t) // job 1 is now in flight and wedged

	// Forced drain: the deadline is already expired.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	clean, err := s1.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if clean {
		t.Fatal("forced drain reported clean")
	}
	// The interrupted job is terminal, incomplete, exit hint 3.
	st1, err := NewClient(ts1.URL).Job(context.Background(), ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Incomplete || st1.ExitHint != 3 {
		t.Fatalf("interrupted job: incomplete=%v exit=%d, want true/3", st1.Incomplete, st1.ExitHint)
	}
	ts1.Close()
	if got := s1.Metrics()(MetricCacheWrites); got != 0 {
		t.Fatalf("incomplete result was cached (writes=%d)", got)
	}

	// The persisted state names all three jobs, in submission order.
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("no state file after drain: %v", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	gotIDs := make([]string, len(st.Pending))
	for i, p := range st.Pending {
		gotIDs[i] = p.ID
	}
	if fmt.Sprint(gotIDs) != fmt.Sprint(ids) {
		t.Fatalf("persisted ids %v, want %v", gotIDs, ids)
	}

	// Restart: same state path, unwedged runner. All three jobs recover
	// under their original ids and complete deterministically.
	s2, err := New(Config{
		CacheDir: cacheDir, StatePath: statePath,
		Workers: 2, QueueDepth: 4,
		Runner: stubRunner, Fingerprint: testFingerprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Metrics()(MetricJobsRecovered); got != 3 {
		t.Fatalf("recovered counter = %d, want 3", got)
	}
	if _, err := os.Stat(statePath); !os.IsNotExist(err) {
		t.Fatal("state file not consumed on recovery")
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	c2 := testClient(ts2)
	for _, id := range ids {
		st, err := c2.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("recovered job %s: %v", id, err)
		}
		if st.State != StateDone || st.Incomplete {
			t.Fatalf("recovered job %s: state=%s incomplete=%v", id, st.State, st.Incomplete)
		}
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if clean, err := s2.Drain(ctx2); err != nil || !clean {
		t.Fatalf("second drain: clean=%v err=%v", clean, err)
	}
	// Nothing pending: no state file left behind.
	if _, err := os.Stat(statePath); !os.IsNotExist(err) {
		t.Fatal("clean drain left a state file")
	}
}

// TestDrainRejectsNewSubmissions: a draining server answers 503.
func TestDrainRejectsNewSubmissions(t *testing.T) {
	g := newGate()
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = g.runner
	})
	postJob(t, ts, `{"id":"fig3"}`)
	g.waitStarted(t)

	drained := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		s.Drain(ctx)
		close(drained)
	}()
	// Wait for the draining flag to publish.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := postJob(t, ts, `{"id":"fig4"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	cancel() // force out the wedged job
	<-drained
}

// --- events, health, metrics ----------------------------------------------

// TestEventsStream: the stream replays history for a finished job and
// follows a live one through to its terminal event.
func TestEventsStream(t *testing.T) {
	g := newGate()
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = g.runner
		c.Heartbeat = 20 * time.Millisecond
	})
	resp, body := postJob(t, ts, `{"id":"tab1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, body)
	}
	var st JobStatus
	json.Unmarshal(body, &st)
	g.waitStarted(t)

	stream, err := http.Get(ts.URL + "/jobs/" + st.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(g.release)
	}()
	var lines []string
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"event: queued", "event: running", "event: done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stream missing %q:\n%s", want, joined)
		}
	}
	if !strings.Contains(joined, ": heartbeat") {
		t.Fatalf("stream carried no heartbeat:\n%s", joined)
	}

	// Replaying the finished job's stream yields the same history and
	// terminates immediately.
	replay, err := http.Get(ts.URL + "/jobs/" + st.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	var rbuf bytes.Buffer
	rbuf.ReadFrom(replay.Body)
	for _, want := range []string{"event: queued", "event: running", "event: done"} {
		if !strings.Contains(rbuf.String(), want) {
			t.Fatalf("replay missing %q:\n%s", want, rbuf.String())
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Runner = stubRunner })
	for _, path := range []string{"/jobs/j-404", "/jobs/j-404/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHealthz: liveness with the load picture.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Runner = stubRunner })
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("status %v", body["status"])
	}
	for _, k := range []string{"queue_depth", "queue_cap", "running", "workers"} {
		if _, ok := body[k]; !ok {
			t.Fatalf("healthz missing %q: %v", k, body)
		}
	}
}

// TestMetricsEndpoint: Prometheus text with the serve counters (including
// zero-valued ones) and the live gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Runner = stubRunner })
	c := testClient(ts)
	if _, err := c.Run(context.Background(), JobRequest{ID: "tab1"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"serve_jobs_accepted 1",
		"serve_jobs_completed 1",
		"serve_cache_misses 1",
		"serve_cache_hits 0", // zero-valued counters still render
		"serve_queue_depth ",
		"serve_jobs_running ",
		"serve_job_wall_ns_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestBudgetCaps: the server's watchdog ceilings tighten permissive jobs
// but leave tighter requests alone.
func TestBudgetCaps(t *testing.T) {
	cases := []struct {
		name            string
		req             JobRequest
		maxEventsCap    uint64
		cellTimeoutCap  time.Duration
		wantMaxEvents   uint64
		wantCellTimeout time.Duration
	}{
		{"uncapped passthrough", JobRequest{ID: "tab1", MaxEvents: 10, CellTimeoutMS: 20}, 0, 0, 10, 20 * time.Millisecond},
		{"cap applies to unlimited", JobRequest{ID: "tab1"}, 100, time.Second, 100, time.Second},
		{"cap tightens looser job", JobRequest{ID: "tab1", MaxEvents: 500, CellTimeoutMS: 5000}, 100, time.Second, 100, time.Second},
		{"tighter job wins", JobRequest{ID: "tab1", MaxEvents: 50, CellTimeoutMS: 500}, 100, time.Second, 50, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.req.normalize().options(2, tc.maxEventsCap, tc.cellTimeoutCap)
			if o.MaxEvents != tc.wantMaxEvents {
				t.Errorf("MaxEvents = %d, want %d", o.MaxEvents, tc.wantMaxEvents)
			}
			if o.CellTimeout != tc.wantCellTimeout {
				t.Errorf("CellTimeout = %v, want %v", o.CellTimeout, tc.wantCellTimeout)
			}
		})
	}
}
