package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vswapsim/internal/swapback"
)

// This file writes crash-diagnostics bundles: one self-contained JSON
// file per failed cell, pairing the FailureRecord with every invocation
// parameter needed to replay it. The CLIs wire it to -diagdir.

// DiagBundle is one crash-diagnostics file. Replaying the Replay command
// re-runs the failing experiment with the exact seed, scale and fault
// plan; the embedded failure's Label and Seed identify the cell inside
// it, and deterministic kills (panics, event-budget and stall breaches)
// reproduce byte-identically.
type DiagBundle struct {
	Version     int           `json:"version"`
	Command     string        `json:"command"`
	Experiment  string        `json:"experiment"`
	Seed        uint64        `json:"seed"`
	Scale       float64       `json:"scale"`
	Quick       bool          `json:"quick"`
	Faults      string        `json:"faults,omitempty"`
	Swapback    string        `json:"swapback,omitempty"`
	SwapPolicy  string        `json:"swappolicy,omitempty"`
	AuditEvery  int           `json:"audit_every,omitempty"`
	MaxEvents   uint64        `json:"max_events,omitempty"`
	CellTimeout string        `json:"cell_timeout,omitempty"`
	TraceRing   int           `json:"trace_ring,omitempty"`
	Replay      string        `json:"replay"`
	Failure     FailureRecord `json:"failure"`
}

// ReplayCommand renders the CLI invocation that reproduces the failing
// experiment deterministically. -celltimeout is intentionally omitted:
// wall-clock kills are not reproducible, and replays should run to the
// deterministic failure (or to completion) instead.
func ReplayCommand(cmd, expID string, o Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/%s", cmd)
	if cmd == "vswapper-report" {
		fmt.Fprintf(&b, " -only %s", expID)
	} else {
		fmt.Fprintf(&b, " -run %s", expID)
	}
	fmt.Fprintf(&b, " -seed %d -scale %g", o.Seed, o.Scale)
	replayFlags(&b, o)
	return b.String()
}

// ScenarioReplayCommand renders the CLI invocation that replays a
// scenario run deterministically (the `vswapsim run <path>` form).
// -celltimeout is omitted for the same reason as in ReplayCommand.
func ScenarioReplayCommand(path string, o Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/vswapsim run %s", path)
	fmt.Fprintf(&b, " -seed %d -scale %g", o.Seed, o.Scale)
	replayFlags(&b, o)
	return b.String()
}

// replayFlags appends the optional flags both replay forms share, each
// omitted at its default so replay commands for pre-existing invocations
// render unchanged.
func replayFlags(b *strings.Builder, o Options) {
	if o.Quick {
		b.WriteString(" -quick")
	}
	if !o.Faults.Empty() {
		fmt.Fprintf(b, " -faults '%s'", o.Faults.String())
	}
	if o.Swapback != swapback.HDD {
		fmt.Fprintf(b, " -swapback %s", o.Swapback)
	}
	if o.SwapPolicy != swapback.PolicyWriteback {
		fmt.Fprintf(b, " -swappolicy %s", o.SwapPolicy)
	}
	if o.AuditEvery > 0 {
		fmt.Fprintf(b, " -auditevery %d", o.AuditEvery)
	}
	if o.MaxEvents > 0 {
		fmt.Fprintf(b, " -maxevents %d", o.MaxEvents)
	}
	if o.TraceRing > 0 {
		fmt.Fprintf(b, " -tracering %d", o.TraceRing)
	}
}

// bundleFileName derives a stable, filesystem-safe name for a failure's
// bundle from the experiment id and the cell label.
func bundleFileName(expID string, f FailureRecord) string {
	sum := sha256.Sum256([]byte(f.Label + "\x00" + f.Kind))
	return fmt.Sprintf("%s-%s.json", expID, hex.EncodeToString(sum[:6]))
}

// WriteDiagBundles writes one bundle per failure into dir (created if
// missing) and returns the paths written. cmd names the CLI for the
// replay hint; expID is the experiment the failures belong to.
func WriteDiagBundles(dir, cmd, expID string, o Options, fails []FailureRecord) ([]string, error) {
	return WriteDiagBundlesReplay(dir, cmd, expID, ReplayCommand(cmd, expID, o.normalized()), o, fails)
}

// WriteDiagBundlesReplay is WriteDiagBundles with an explicit replay
// command (scenario runs replay via `vswapsim run <path>` rather than
// `-run <id>`).
func WriteDiagBundlesReplay(dir, cmd, expID, replay string, o Options, fails []FailureRecord) ([]string, error) {
	if len(fails) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	o = o.normalized()
	var paths []string
	for _, f := range fails {
		b := DiagBundle{
			Version:    1,
			Command:    cmd,
			Experiment: expID,
			Seed:       o.Seed,
			Scale:      o.Scale,
			Quick:      o.Quick,
			Faults:     o.Faults.String(),
			AuditEvery: o.AuditEvery,
			MaxEvents:  o.MaxEvents,
			TraceRing:  o.TraceRing,
			Replay:     replay,
			Failure:    f,
		}
		if o.Swapback != swapback.HDD {
			b.Swapback = o.Swapback.String()
		}
		if o.SwapPolicy != swapback.PolicyWriteback {
			b.SwapPolicy = o.SwapPolicy.String()
		}
		if o.CellTimeout > 0 {
			b.CellTimeout = o.CellTimeout.String()
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return paths, err
		}
		p := filepath.Join(dir, bundleFileName(expID, f))
		if err := os.WriteFile(p, append(data, '\n'), 0o644); err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
