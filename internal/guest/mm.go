package guest

import (
	"fmt"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/trace"
)

// takeFree pops a free frame; it must only be called when the free list is
// known non-empty (boot, or after allocPage ensured room).
func (os *OS) takeFree(p *sim.Proc) int32 {
	_ = p
	if len(os.freeList) == 0 {
		panic("guest: free list empty")
	}
	gfn := os.freeList[len(os.freeList)-1]
	os.freeList = os.freeList[:len(os.freeList)-1]
	os.freePool--
	return gfn
}

// putFree returns a frame to the allocator. The guest does not (and cannot)
// tell the host: the host still believes the frame's old content matters,
// which is the root of false swap reads.
func (os *OS) putFree(gfn int32) {
	pi := &os.pages[gfn]
	pi.kind = kindFree
	pi.dirty = false
	pi.referenced = false
	pi.proc = nil
	pi.block = 0
	os.freeList = append(os.freeList, gfn)
	os.freePool++
}

// allocPage returns a free frame for the calling thread, running direct
// reclaim below the low watermark. It returns -1 only if memory cannot be
// freed at all (after the OOM killer had its say).
func (os *OS) allocPage(t *Thread) int32 {
	if os.freePool <= os.watermarkLow {
		os.directReclaim(t)
	}
	// Emergency: the pool is momentarily empty. Retry with short waits —
	// concurrent writeback or other threads usually free frames — and
	// only OOM-kill if memory is genuinely unobtainable.
	if os.freePool == 0 {
		for attempt := 0; attempt < 8 && os.freePool == 0; attempt++ {
			os.directReclaim(t)
			if os.freePool == 0 {
				t.P.Sleep(10 * sim.Millisecond)
			}
		}
		if os.freePool == 0 {
			os.oomKill()
			if os.freePool == 0 {
				return -1
			}
		}
	}
	return os.takeFree(t.P)
}

// directReclaim frees pages until the high watermark (best effort),
// charging all I/O to the calling thread. If the thread blocks longer than
// Cfg.OOMLatency inside one invocation, the OOM killer fires — the guest
// analogue of "reclaim cannot keep up with demand" (paper §2.3, §2.4).
func (os *OS) directReclaim(t *Thread) {
	start := t.P.Now()
	target := os.watermarkHi - os.freePool
	if target <= 0 {
		return
	}
	freed := 0
	ballooned := len(os.balloonGFNs) > os.Cfg.MemPages/20
	for rounds := 0; freed < target && rounds < 8; rounds++ {
		freeBefore := os.freePool
		n, cheap, io := os.shrinkLists(t, target-freed)
		freed += n
		// Both OOM triggers model over-ballooning (paper §2.4): without
		// pinned balloon pages the kernel thrashes but stays alive, which
		// matches the paper (only balloon configurations were killed).
		if ballooned && t.P.Now().Sub(start) > os.Cfg.OOMLatency {
			os.oomKill()
			return
		}
		if n == 0 {
			break
		}
		// Rounds that mostly progress through swap/writeback I/O while
		// the allocator sits in the emergency zone accumulate; mostly
		// cheap rounds (clean cache drops) reset.
		if cheap > io {
			os.consecIO = 0
		} else if ballooned && freeBefore <= os.watermarkLow {
			os.consecIO++
			if os.Cfg.OOMConsecIO > 0 && os.consecIO >= os.Cfg.OOMConsecIO {
				os.consecIO = 0
				os.oomKill()
				return
			}
		}
	}
}

// wbItem is one page queued for reclaim writeback. Owner and index are
// recorded at queue time so completion can detect pages that vanished
// while the writer was blocked (e.g. freed by an OOM kill).
type wbItem struct {
	gfn   int32
	block int64 // destination vdisk block
	anon  bool
	slot  int64 // guest swap slot (anon only)
	proc  *Process
	idx   int64 // anon index at queue time
}

// shrinkLists performs one reclaim pass: rebalance active/inactive lists,
// evict from the preferred inactive list, and write dirty victims back in
// contiguous runs. It returns the number of frames freed, and how many of
// them were freed cheaply (clean drops) versus via I/O.
func (os *OS) shrinkLists(t *Thread, target int) (freedN, cheapN, ioN int) {
	freed := 0
	cheap := 0

	rebalance := func(active, inactive *gfnList) {
		for inactive.size < active.size {
			gfn := active.back()
			active.remove(os, gfn)
			os.pages[gfn].referenced = false
			inactive.pushFront(os, gfn)
		}
	}
	rebalance(&os.activeFile, &os.inactiveFile)
	rebalance(&os.activeAnon, &os.inactiveAnon)

	list := &os.inactiveFile
	if list.size <= os.Cfg.MinFileFloor {
		list = &os.inactiveAnon
	}
	if list.size == 0 {
		if list = &os.inactiveFile; list.size == 0 {
			return 0, 0, 0
		}
	}

	var writeback []wbItem
	batch := 64
	for i := 0; i < batch && freed+len(writeback) < target && list.size > 0; i++ {
		gfn := list.back()
		pi := &os.pages[gfn]
		if pi.referenced {
			pi.referenced = false
			list.rotate(os, gfn)
			continue
		}
		switch pi.kind {
		case kindCache:
			if pi.dirty {
				list.remove(os, gfn)
				writeback = append(writeback, wbItem{gfn: gfn, block: pi.block})
				continue
			}
			list.remove(os, gfn)
			os.cache.del(pi.block)
			os.putFree(gfn)
			os.Met.Inc(metrics.GuestCacheDrops)
			freed++
			cheap++
		case kindAnon:
			slot := os.swap.alloc()
			if slot < 0 {
				list.rotate(os, gfn) // guest swap full
				continue
			}
			list.remove(os, gfn)
			writeback = append(writeback, wbItem{
				gfn: gfn, block: os.swap.block(slot), anon: true, slot: slot,
				proc: pi.proc, idx: pi.block,
			})
		default:
			panic(fmt.Sprintf("guest: kind %d on LRU", pi.kind))
		}
	}

	wrote := os.writebackAndFree(t, writeback)
	freed += wrote
	return freed, cheap, wrote
}

// writebackAndFree writes the queued victims to their vdisk blocks in
// contiguous runs, then releases their frames.
func (os *OS) writebackAndFree(t *Thread, items []wbItem) int {
	if len(items) == 0 {
		return 0
	}
	start := 0
	for i := 1; i <= len(items); i++ {
		if i < len(items) && items[i].block == items[i-1].block+1 {
			continue
		}
		run := items[start:i]
		gfns := make([]int, len(run))
		for j, w := range run {
			gfns[j] = int(w.gfn)
		}
		os.Plat.DiskWrite(t.P, gfns, run[0].block)
		start = i
	}
	freed := 0
	for _, w := range items {
		pi := &os.pages[w.gfn]
		if w.anon {
			// The page may have vanished while the write was in flight
			// (OOM kill of its process): release the now-unused slot.
			if pi.kind != kindAnon || pi.proc != w.proc || pi.block != w.idx ||
				w.proc.slots[w.idx].gfn != w.gfn {
				os.swap.release(w.slot)
				continue
			}
			s := &w.proc.slots[w.idx]
			s.state = anonSwapped
			s.slot = w.slot
			s.gfn = nilGFN
			w.proc.resident--
			os.swap.setOwner(w.slot, w.proc, int(w.idx))
			os.Met.Inc(metrics.GuestSwapOuts)
		} else {
			if pi.kind != kindCache {
				continue // dropped concurrently
			}
			os.cache.del(pi.block)
			os.dirtyCount--
			os.Met.Inc(metrics.GuestCacheDrops)
		}
		os.putFree(w.gfn)
		freed++
	}
	return freed
}

// noteThrashIn is the third over-ballooning trigger (paper §2.4, Fig. 5):
// a ballooned guest whose anonymous working set cycles through its own
// swap without forward progress is effectively dead; Ubuntu's OOM and
// low-memory killers fire in this regime. We kill once the swap-ins
// accumulated while the balloon is inflated exceed half the
// balloon-visible memory — a guest that re-read half its visible RAM from
// swap is thrashing, not working.
func (os *OS) noteThrashIn() {
	if len(os.balloonGFNs) <= os.Cfg.MemPages/20 {
		os.thrashIns = 0
		return
	}
	os.thrashIns++
	visible := os.Cfg.MemPages - len(os.balloonGFNs)
	if os.thrashIns > visible/2 {
		os.thrashIns = 0
		os.oomKill()
	}
}

// oomKill terminates the process with the largest anonymous footprint,
// freeing its memory.
func (os *OS) oomKill() {
	var victim *Process
	for _, pr := range os.procs {
		if pr.Killed {
			continue
		}
		if victim == nil || pr.Footprint() > victim.Footprint() {
			victim = pr
		}
	}
	if victim == nil || victim.Footprint() == 0 {
		return
	}
	os.oomKills++
	os.Met.Inc(metrics.GuestOOMKills)
	if os.Trace.Recording(trace.OOM) {
		os.Trace.Add(os.Env.Now(), trace.OOM, "kill %s footprint=%d free=%d balloon=%d",
			victim.Name, victim.Footprint(), os.freePool, len(os.balloonGFNs))
	}
	victim.Killed = true
	os.releaseProcessMemory(victim)
}

// releaseProcessMemory frees every resident page and swap slot of pr.
func (os *OS) releaseProcessMemory(pr *Process) {
	for i := range pr.slots {
		s := &pr.slots[i]
		switch s.state {
		case anonResident:
			gfn := s.gfn
			pi := &os.pages[gfn]
			if pi.list != listNone {
				os.listByID(pi.list).remove(os, gfn)
			}
			os.putFree(gfn)
			pr.resident--
		case anonSwapped:
			os.swap.release(s.slot)
		}
		s.state = anonNone
		s.gfn = nilGFN
		s.slot = -1
	}
}

func (os *OS) listByID(id uint8) *gfnList {
	switch id {
	case listActiveFile:
		return &os.activeFile
	case listInactiveFile:
		return &os.inactiveFile
	case listActiveAnon:
		return &os.activeAnon
	case listInactiveAnon:
		return &os.inactiveAnon
	}
	panic("guest: bad list id")
}

// touchLRU implements two-touch promotion like the host.
func (os *OS) touchLRU(gfn int32) {
	pi := &os.pages[gfn]
	if !pi.referenced {
		pi.referenced = true
		return
	}
	switch pi.list {
	case listInactiveFile:
		os.inactiveFile.remove(os, gfn)
		os.activeFile.pushFront(os, gfn)
	case listInactiveAnon:
		os.inactiveAnon.remove(os, gfn)
		os.activeAnon.pushFront(os, gfn)
	}
}
