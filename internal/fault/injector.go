package fault

import (
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Injector draws scheduled faults for one simulated machine. It owns a
// private PRNG — it never draws from the simulation environment's stream —
// so enabling injection perturbs nothing except the faults themselves.
//
// A nil *Injector is the "off" state: every method is nil-receiver-safe
// and returns the no-fault answer without any work, so consumers thread
// injectors unconditionally and pay nothing when injection is disabled.
type Injector struct {
	plan Plan
	rng  *sim.RNG
	met  *metrics.Set
	// disarmed suppresses firing while still advancing nothing: a disarmed
	// injector draws no randomness, so arming it mid-run (scenario
	// inject_faults events) perturbs only post-arming behavior.
	disarmed bool
}

// New builds an injector for the plan, or nil when the plan is empty (the
// zero-overhead off state). Seed the stream with
// sim.DeriveSeed(machineSeed, "fault-injector") so serial and parallel
// runs draw identically.
func New(plan Plan, seed uint64, met *metrics.Set) *Injector {
	if plan.Empty() {
		return nil
	}
	if met == nil {
		met = metrics.NewSet()
	}
	return &Injector{plan: plan, rng: sim.NewRNG(seed), met: met}
}

// SetEnabled arms or disarms the injector. Nil-receiver-safe (a nil
// injector stays off). While disarmed, fire draws nothing from the
// injector's PRNG stream, so the schedule after arming is identical to
// that of an injector created at the arming instant with the same seed.
func (in *Injector) SetEnabled(v bool) {
	if in != nil {
		in.disarmed = !v
	}
}

// Enabled reports whether the injector can fire (false for nil).
func (in *Injector) Enabled() bool { return in != nil && !in.disarmed }

// Plan returns the injector's plan (the zero Plan for a nil injector).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// fire draws kind k once: true with probability plan.Rate(k), counting the
// firing. Inactive kinds draw nothing, keeping streams independent of
// which other kinds are enabled elsewhere in the plan's consumers.
func (in *Injector) fire(k Kind) bool {
	if in == nil || in.disarmed {
		return false
	}
	r := in.plan.rules[k]
	if r.Rate == 0 {
		return false
	}
	if in.rng.Float64() >= r.Rate {
		return false
	}
	in.met.Inc(counterName[k])
	return true
}

// DiskError draws a device transfer error for one request.
func (in *Injector) DiskError(write bool) bool {
	if write {
		return in.fire(DiskWriteErr)
	}
	return in.fire(DiskReadErr)
}

// DiskDelay draws a latency spike, returning the extra service time to
// add (zero when no spike fires).
func (in *Injector) DiskDelay() sim.Duration {
	if in.fire(DiskLatency) {
		return in.plan.rules[DiskLatency].Extra
	}
	return 0
}

// SwapInFailure draws a transient swap-in read failure.
func (in *Injector) SwapInFailure() bool { return in.fire(SwapInFail) }

// SlotRefused draws a swap-slot allocation refusal.
func (in *Injector) SlotRefused() bool { return in.fire(SlotExhaust) }

// BalloonRefused draws a balloon inflate/deflate refusal.
func (in *Injector) BalloonRefused() bool { return in.fire(BalloonRefuse) }

// EmulationStarved draws an emulation-buffer starvation event.
func (in *Injector) EmulationStarved() bool { return in.fire(EmuStarve) }

// MapperPoisoned draws a swap-cache poisoning event for one disk read.
func (in *Injector) MapperPoisoned() bool { return in.fire(MapPoison) }
