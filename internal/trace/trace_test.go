package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"vswapsim/internal/sim"
)

func TestNilRingIsNoop(t *testing.T) {
	var r *Ring
	r.Add(0, Fault, "x")   // must not panic
	r.Enable(Fault, false) // must not panic
	if r.Len() != 0 || r.Events() != nil || r.Filter(Fault) != nil {
		t.Fatal("nil ring not empty")
	}
}

func TestRecordAndDump(t *testing.T) {
	r := New(8)
	r.Add(sim.Time(sim.Second), Fault, "gfn %d", 42)
	r.Add(sim.Time(2*sim.Second), Reclaim, "evict")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	out := r.String()
	if !strings.Contains(out, "gfn 42") || !strings.Contains(out, "reclaim") {
		t.Fatalf("dump: %q", out)
	}
}

func TestRingWraps(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Add(sim.Time(i), Fault, "e%d", i)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	if ev[0].Msg != "e6" || ev[3].Msg != "e9" {
		t.Fatalf("wrap order wrong: %v", ev)
	}
}

func TestKindFilterAndDisable(t *testing.T) {
	r := New(16)
	r.Enable(DiskIO, false)
	r.Add(0, DiskIO, "dropped")
	r.Add(0, Mapper, "kept")
	r.Add(0, OOM, "kept too")
	if got := len(r.Filter(DiskIO)); got != 0 {
		t.Fatalf("disabled kind recorded %d", got)
	}
	if got := len(r.Filter(Mapper)); got != 1 {
		t.Fatalf("mapper events = %d", got)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestEventsOrderedProperty(t *testing.T) {
	if err := quick.Check(func(nRaw uint8, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		n := int(nRaw)
		r := New(capacity)
		for i := 0; i < n; i++ {
			r.Add(sim.Time(i), Fault, "")
		}
		ev := r.Events()
		for i := 1; i < len(ev); i++ {
			if ev[i].At < ev[i-1].At {
				return false
			}
		}
		want := n
		if want > capacity {
			want = capacity
		}
		return len(ev) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}
