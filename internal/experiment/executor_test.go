package experiment

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"vswapsim/internal/sim"
)

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, par := range []int{1, 4} {
		o := Options{Parallel: par}.normalized()
		hits := make([]int32, 50)
		var mu sync.Mutex
		o.forEach(len(hits), func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%d: job %d ran %d times", par, i, h)
			}
		}
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	const width = 3
	o := Options{Parallel: width}.normalized()
	var mu sync.Mutex
	cur, peak := 0, 0
	o.forEach(24, func(i int) {
		release := o.acquire()
		defer release()
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
	})
	if peak > width {
		t.Fatalf("observed %d concurrent slot holders, limit %d", peak, width)
	}
	if peak < 1 {
		t.Fatal("no job ever held a slot")
	}
}

func TestAcquireWithoutLimiterIsNoop(t *testing.T) {
	release := Options{}.acquire() // not normalized: nil limiter
	release()                      // must not panic or block
}

// equivOpts is the configuration both sides of an equivalence check use.
func equivOpts(parallel int) Options {
	return Options{Seed: 42, Scale: 0.125, Quick: true, Parallel: parallel}
}

// TestSerialParallelEquivalence is the headline claim of the executor:
// a sweep run on the worker pool is byte-identical to the serial run.
func TestSerialParallelEquivalence(t *testing.T) {
	// fig12: a pure sweep with no cross-experiment memoization.
	serial := Fig12(equivOpts(1)).String()
	parallel := Fig12(equivOpts(4)).String()
	if serial != parallel {
		t.Fatalf("fig12 parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}

	// fig11: the memoized pbzip sweep; reset the cache between runs so
	// both sides actually execute.
	resetSweepCaches()
	serial = Fig11(equivOpts(1)).String()
	resetSweepCaches()
	parallel = Fig11(equivOpts(4)).String()
	if serial != parallel {
		t.Fatalf("fig11 parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestRunAllParallelMatchesSerial runs whole registry entries concurrently
// — including fig5 and fig11, which share the single-flight pbzip sweep —
// and requires byte-identical reports in both modes.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"fig3", "fig5", "fig11"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	resetSweepCaches()
	serial := RunAll(exps, equivOpts(1), nil)
	resetSweepCaches()
	var emitted []string
	parallel := RunAll(exps, equivOpts(3), func(r RunResult) {
		emitted = append(emitted, r.Experiment.ID)
	})
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Experiment.ID != exps[i].ID {
			t.Fatalf("result %d out of order: %s", i, serial[i].Experiment.ID)
		}
		if emitted[i] != exps[i].ID {
			t.Fatalf("emit order %v, want input order", emitted)
		}
		a, b := serial[i].Report.String(), parallel[i].Report.String()
		if a != b {
			t.Fatalf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				exps[i].ID, a, b)
		}
	}
}

// TestDerivedCellSeedsUnique asserts the per-cell seeds of every fan-out
// grid in the registry never collide — with each other or with the base
// seed the non-sweep experiments run on.
func TestDerivedCellSeedsUnique(t *testing.T) {
	allSchemes := []Scheme{Baseline, BalloonBase, MapperOnly, VSwapper, BalloonVSwapper}
	fullSizes := sweepSizes(Options{}.normalized())
	quickSizes := sweepSizes(Options{Quick: true}.normalized())
	union := func(lists ...[]int) []int {
		seen := map[int]bool{}
		var out []int
		for _, l := range lists {
			for _, v := range l {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out
	}
	grids := []struct {
		id     string
		points []int
	}{
		{"pbzip", union(fullSizes, quickSizes, []int{128})},
		{"fig12", union(fullSizes, quickSizes)},
		{"fig13", union([]int{512, 448, 384, 320, 256})},
		{"fig14", union([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})},
		{"fig4", union([]int{4, 10})},
	}
	const base = 42
	seen := map[uint64]string{base: "base seed"}
	for _, g := range grids {
		for _, s := range allSchemes {
			for _, p := range g.points {
				key := fmt.Sprintf("%s/%s/%d", g.id, s, p)
				seed := sim.DeriveSeed(base, g.id, s.String(), strconv.Itoa(p))
				if prev, dup := seen[seed]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, key, seed)
				}
				seen[seed] = key
			}
		}
	}
}
