package experiment

import (
	"fmt"

	"vswapsim/internal/disk"

	"vswapsim/internal/core"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Overhead reproduces §5.3: with plentiful memory, VSwapper's mmap-based
// tracking must cost at most a few percent.
func Overhead(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:        "overhead",
		Title:     "VSwapper overhead with plentiful memory (§5.3)",
		PaperNote: "up to 3.5% slowdown when host swapping is not required",
	}
	tab := &Table{Columns: []string{"workload", "baseline [s]", "vswapper [s]", "slowdown"}}
	bodies := []struct {
		name string
		body func(vm *hyper.VM, p *sim.Proc) *workload.Job
	}{
		{"seqread 200MB x2", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200), Iterations: 2})
		}},
		{"pbzip2 128MB", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.Pbzip2(vm, workload.Pbzip2Config{InputMB: o.mb(128)})
		}},
		{"kernbench 400 files", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.Kernbench(vm, workload.KernbenchConfig{Files: int(400 * o.Scale)})
		}},
	}
	for _, w := range bodies {
		var times [2]sim.Duration
		for i, s := range []Scheme{Baseline, VSwapper} {
			out := runSingle(runCfg{
				opts: o, scheme: s,
				guestMB:  512,
				actualMB: 512, // uncapped: no host swapping
			}, w.body)
			times[i] = out.res.Runtime()
		}
		slow := float64(times[1])/float64(times[0]) - 1
		tab.Add(w.name, secs(times[0]), secs(times[1]), fmt.Sprintf("%+.1f%%", slow*100))
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}

// Windows reproduces §5.4: a non-Linux guest profile (no asynchronous page
// faults, 4 KiB-aligned I/O enforced by the reported sector size).
func Windows(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:        "windows",
		Title:     "Windows Server 2012 guest (§5.4)",
		PaperNote: "sysbench 2GB read in 1GB: 302s -> 79s with vswapper; bzip2 at 512MB: 306s -> 149s",
	}
	tab := &Table{Columns: []string{"workload", "baseline [s]", "vswapper [s]", "paper"}}
	noAPF := func(c *hyper.VMConfig) { c.GuestAPF = false }

	type cfg struct {
		name, paper string
		actualMB    int
		body        func(vm *hyper.VM, p *sim.Proc) *workload.Job
	}
	cases := []cfg{
		{"sysbench 2GB read", "302 -> 79", 1024, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(2048)})
		}},
		{"bzip2", "306 -> 149", 512, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.Pbzip2(vm, workload.Pbzip2Config{InputMB: o.mb(448), Threads: 1})
		}},
	}
	for _, c := range cases {
		var times [2]sim.Duration
		for i, s := range []Scheme{Baseline, VSwapper} {
			out := runSingle(runCfg{
				opts: o, scheme: s,
				guestMB:  2048,
				actualMB: c.actualMB,
				hostMB:   8192,
				warmup:   true,
				vmTweak:  noAPF,
			}, c.body)
			times[i] = out.res.Runtime()
		}
		tab.Add(c.name, secs(times[0]), secs(times[1]), c.paper)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}

// Ablations exercises the design choices DESIGN.md calls out: Preventer
// deadline and concurrency cap, swap readahead cluster, file readahead
// window, and the EPT dirty-bit hardware assist the paper anticipates.
func Ablations(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:    "ablation",
		Title: "Design-choice ablations (DESIGN.md §6)",
	}

	// Preventer knobs on the Fig. 10 allocation storm.
	prevTab := &Table{
		Title:   "preventer knobs: alloc+access 200MB at 100MB (vswapper)",
		Columns: []string{"deadline", "max pages", "runtime [s]", "remaps", "merges"},
	}
	for _, k := range []struct {
		deadline sim.Duration
		max      int
	}{
		{100 * sim.Microsecond, 32},
		{sim.Millisecond, 32},
		{10 * sim.Millisecond, 32},
		{sim.Millisecond, 8},
		{sim.Millisecond, 128},
	} {
		k := k
		out := runSingle(runCfg{
			opts: o, scheme: VSwapper,
			guestMB: 512, actualMB: 100,
			warmup: true,
			vmTweak: func(c *hyper.VMConfig) {
				c.PreventerCfg = core.PreventerConfig{Deadline: k.deadline, MaxConcurrent: k.max}
			},
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.AllocTouch(vm, workload.AllocTouchConfig{SizeMB: o.mb(200)})
		})
		prevTab.Add(k.deadline.String(), fmt.Sprintf("%d", k.max),
			runtimeOrKilled(out.res),
			fmt.Sprintf("%d", out.met["vswap.preventer.remaps"]),
			fmt.Sprintf("%d", out.met["vswap.preventer.merges"]))
	}
	rep.Tables = append(rep.Tables, prevTab)

	// Host readahead knobs on the Fig. 3 read (baseline: swap cluster;
	// vswapper: file readahead window).
	raTab := &Table{
		Title:   "host readahead: 200MB read at 100MB",
		Columns: []string{"config", "swap cluster", "file RA max", "runtime [s]"},
	}
	for _, k := range []struct {
		scheme  Scheme
		cluster int
		ramax   int
	}{
		{Baseline, 1, 32},
		{Baseline, 8, 32},
		{Baseline, 32, 32},
		{VSwapper, 8, 8},
		{VSwapper, 8, 32},
		{VSwapper, 8, 128},
	} {
		k := k
		out := runSingle(runCfg{
			opts: o, scheme: k.scheme,
			guestMB: 512, actualMB: 100,
			warmup: true,
			hostTweak: func(c *hyper.MachineConfig) {
				c.Host.SwapClusterPages = k.cluster
				c.Host.FileRAMaxPages = k.ramax
			},
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200)})
		})
		raTab.Add(k.scheme.String(), fmt.Sprintf("%d", k.cluster), fmt.Sprintf("%d", k.ramax),
			runtimeOrKilled(out.res))
	}
	rep.Tables = append(rep.Tables, raTab)

	// EPT dirty bits (anticipated hardware assist).
	dbTab := &Table{
		Title:   "EPT dirty bits (Haswell assist, §5.3): 200MB read x3 at 100MB, baseline",
		Columns: []string{"dirty bits", "runtime [s]", "swap write sectors"},
	}
	for _, db := range []bool{false, true} {
		db := db
		out := runSingle(runCfg{
			opts: o, scheme: Baseline,
			guestMB: 512, actualMB: 100,
			warmup: true,
			hostTweak: func(c *hyper.MachineConfig) {
				c.Host.EPTDirtyBits = db
			},
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200), Iterations: 3})
		})
		dbTab.Add(fmt.Sprintf("%v", db), runtimeOrKilled(out.res),
			fmt.Sprintf("%d", out.met["hostswap.write.sectors"]))
	}
	rep.Tables = append(rep.Tables, dbTab)

	// SSD substrate: placement decay stops mattering, but VSwapper still
	// eliminates the swap write traffic that costs flash endurance
	// (paper §5.1: "beneficial for systems that employ SSDs").
	ssdTab := &Table{
		Title:   "SSD substrate: 200MB read x3 at 100MB",
		Columns: []string{"config", "disk", "runtime [s]", "swap write sectors"},
	}
	for _, k := range []struct {
		scheme Scheme
		ssd    bool
	}{
		{Baseline, false}, {Baseline, true},
		{VSwapper, false}, {VSwapper, true},
	} {
		k := k
		out := runSingle(runCfg{
			opts: o, scheme: k.scheme,
			guestMB: 512, actualMB: 100,
			warmup: true,
			hostTweak: func(c *hyper.MachineConfig) {
				if k.ssd {
					c.Disk = disk.SSD840()
				}
			},
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200), Iterations: 3})
		})
		name := "hdd"
		if k.ssd {
			name = "ssd"
		}
		ssdTab.Add(k.scheme.String(), name, runtimeOrKilled(out.res),
			fmt.Sprintf("%d", out.met["hostswap.write.sectors"]))
	}
	rep.Tables = append(rep.Tables, ssdTab)

	// Page alignment (paper §4.1): images with 512-byte logical sectors
	// defeat the Mapper; the fix is reformatting with 4 KiB sectors.
	alTab := &Table{
		Title:   "page alignment: 200MB read at 100MB (vswapper)",
		Columns: []string{"guest image", "runtime [s]", "mappings established"},
	}
	for _, unaligned := range []bool{false, true} {
		unaligned := unaligned
		out := runSingle(runCfg{
			opts: o, scheme: VSwapper,
			guestMB: 512, actualMB: 100,
			warmup: true,
			vmTweak: func(c *hyper.VMConfig) {
				c.UnalignedGuestIO = unaligned
			},
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200)})
		})
		name := "4KiB sectors"
		if unaligned {
			name = "512B sectors (needs reformat)"
		}
		alTab.Add(name, runtimeOrKilled(out.res),
			fmt.Sprintf("%d", out.met["vswap.mapper.assoc.established"]))
	}
	rep.Tables = append(rep.Tables, alTab)
	return rep
}
