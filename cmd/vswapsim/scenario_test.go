package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// registeredFlags returns the name of every flag vswapsim registers.
func registeredFlags(t *testing.T) []string {
	t.Helper()
	var c cliConfig
	fs, _ := newFlagSet(&c)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no flags registered")
	}
	return names
}

// TestUsageMentionsEveryFlag pins -h output against flag-registration
// drift: every registered flag must appear in the rendered usage, and the
// header must list all four command forms.
func TestUsageMentionsEveryFlag(t *testing.T) {
	var c cliConfig
	fs, _ := newFlagSet(&c)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	usage := buf.String()
	for _, name := range registeredFlags(t) {
		if !strings.Contains(usage, "-"+name) {
			t.Errorf("usage output does not mention registered flag -%s", name)
		}
	}
	for _, form := range []string{
		"vswapsim -list",
		"vswapsim -run <id>",
		"vswapsim run <scenario.yaml>",
		"vswapsim validate <scenario.yaml>",
	} {
		if !strings.Contains(usage, form) {
			t.Errorf("usage header does not list command form %q", form)
		}
	}
}

// TestREADMEDocumentsEveryFlag keeps the README's flag table honest: a
// flag added to the binary without a README row fails here.
func TestREADMEDocumentsEveryFlag(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	for _, name := range registeredFlags(t) {
		if !strings.Contains(readme, "`-"+name) {
			t.Errorf("README.md does not document flag -%s", name)
		}
	}
	if !strings.Contains(readme, "vswapsim run scenarios/") {
		t.Error("README.md quickstart does not lead with a scenario run")
	}
}

// TestScenarioCLIEquivalence is the end-to-end half of the equivalence
// guarantee: `vswapsim run scenarios/fig3.yaml -json` must write the very
// bytes `vswapsim -run fig3 -json` writes, through the real CLI path
// (document header included — same -parallel, so headers agree too).
func TestScenarioCLIEquivalence(t *testing.T) {
	common := []string{"-json", "-quick", "-scale", "0.125", "-seed", "42", "-parallel", "1"}
	var yamlOut, goOut, errBuf bytes.Buffer

	args := append([]string{"run", filepath.Join("..", "..", "scenarios", "fig3.yaml")}, common...)
	if code := run(args, &yamlOut, &errBuf); code != exitOK {
		t.Fatalf("run %v exited %d: %s", args, code, errBuf.String())
	}
	args = append([]string{"-run", "fig3"}, common...)
	if code := run(args, &goOut, &errBuf); code != exitOK {
		t.Fatalf("run %v exited %d: %s", args, code, errBuf.String())
	}
	if !bytes.Equal(yamlOut.Bytes(), goOut.Bytes()) {
		t.Fatalf("scenario JSON (%d bytes) differs from hand-coded fig3 JSON (%d bytes)",
			yamlOut.Len(), goOut.Len())
	}
}

func TestValidateCmdExitCodes(t *testing.T) {
	good, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(good) == 0 {
		t.Fatalf("no scenarios found: %v", err)
	}
	var out, errBuf bytes.Buffer
	if code := run(append([]string{"validate"}, good...), &out, &errBuf); code != exitOK {
		t.Fatalf("validate %v exited %d: %s", good, code, errBuf.String())
	}
	for _, p := range good {
		if !strings.Contains(out.String(), "ok "+p) {
			t.Errorf("validate output missing ok line for %s:\n%s", p, out.String())
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.yaml")
	badDoc := `scenario: x
title: t
mode: single
bogus: 1
fleet:
  memory_mb: 512
  actual_mb: 100
schemes: [baseline]
workload:
  kind: seqread
  file_mb: 200
table:
  title: t
`
	if err := os.WriteFile(bad, []byte(badDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"validate", good[0], bad}, &out, &errBuf); code != exitFailures {
		t.Fatalf("validate with one bad file exited %d, want %d", code, exitFailures)
	}
	if !strings.Contains(errBuf.String(), "INVALID "+bad) ||
		!strings.Contains(errBuf.String(), "bogus") {
		t.Errorf("validate stderr does not name the bad file and key:\n%s", errBuf.String())
	}

	if code := run([]string{"validate"}, &out, &errBuf); code != exitUsage {
		t.Fatalf("validate with no args exited %d, want %d", code, exitUsage)
	}
}

func TestRunScenarioCmdUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"run"}, &out, &errBuf); code != exitUsage {
		t.Fatalf("bare 'run' exited %d, want %d", code, exitUsage)
	}
	errBuf.Reset()
	if code := run([]string{"run", "no-such-file.yaml"}, &out, &errBuf); code != exitUsage {
		t.Fatalf("run on missing file exited %d, want %d", code, exitUsage)
	}
	errBuf.Reset()
	path := filepath.Join("..", "..", "scenarios", "fig3.yaml")
	if code := run([]string{"run", path, "-run", "fig5"}, &out, &errBuf); code != exitUsage {
		t.Fatalf("run <scenario> with -run exited %d, want %d", code, exitUsage)
	}

	// A scenario whose assertion cannot hold must exit with code 1.
	failing := filepath.Join(t.TempDir(), "must-fail.yaml")
	doc := `scenario: must-fail
title: "assertion failure exit-code probe"
mode: single
fleet:
  memory_mb: 512
  actual_mb: 256
schemes: [baseline]
workload:
  kind: seqread
  file_mb: 200
  iterations: 1
  quick_iterations: 1
table:
  title: "runtime [sec]"
assertions:
  - counter: workload.killed
    scheme: baseline
    op: "=="
    value: 1
`
	if err := os.WriteFile(failing, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	code := run([]string{"run", failing, "-quick", "-scale", "0.125", "-parallel", "1"}, &out, &errBuf)
	if code != exitFailures {
		t.Fatalf("failing-assertion scenario exited %d, want %d\nstdout: %s\nstderr: %s",
			code, exitFailures, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "ASSERTION FAILED") {
		t.Errorf("report does not surface the failed assertion:\n%s", out.String())
	}
}
