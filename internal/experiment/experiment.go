// Package experiment reproduces every table and figure of the paper's
// evaluation (§5): each experiment builds the machine/guest configuration
// the paper describes, runs the matching workload generator under the five
// schemes (baseline, ballooning, mapper-only, vswapper, balloon+vswapper),
// and reports the same rows/series the paper plots.
package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"time"

	"vswapsim/internal/fault"
	"vswapsim/internal/fault/audit"
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
	"vswapsim/internal/workload"
)

// Scheme is one of the five configurations evaluated in the paper (§5).
type Scheme int

const (
	// Baseline relies solely on uncooperative host swapping.
	Baseline Scheme = iota
	// BalloonBase employs ballooning, falling back on baseline swapping.
	BalloonBase
	// MapperOnly is VSwapper without the False Reads Preventer.
	MapperOnly
	// VSwapper is the Swap Mapper plus the Preventer.
	VSwapper
	// BalloonVSwapper combines ballooning with VSwapper.
	BalloonVSwapper
)

func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case BalloonBase:
		return "balloon+base"
	case MapperOnly:
		return "mapper"
	case VSwapper:
		return "vswapper"
	case BalloonVSwapper:
		return "balloon+vswap"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// mapper/preventer/balloon report which components a scheme enables.
func (s Scheme) mapper() bool    { return s == MapperOnly || s == VSwapper || s == BalloonVSwapper }
func (s Scheme) preventer() bool { return s == VSwapper || s == BalloonVSwapper }
func (s Scheme) balloon() bool   { return s == BalloonBase || s == BalloonVSwapper }

// Options controls experiment execution.
type Options struct {
	// Seed drives all randomness (default 42).
	Seed uint64
	// Scale multiplies all memory/file sizes; 1.0 is paper-sized. Tests
	// use smaller scales for speed.
	Scale float64
	// Quick trims sweep points / guest counts for smoke runs.
	Quick bool
	// Parallel bounds how many simulator runs execute concurrently
	// (0 = GOMAXPROCS, 1 = strictly serial). Results are bit-identical
	// regardless of the value: every fan-out job seeds its own sim.Env
	// deterministically and owns its result slot (see executor.go).
	Parallel int
	// TraceRing, when positive, attaches a bounded trace ring of this
	// capacity to every simulated machine; run reports then embed the tail
	// of the ring. Tracing never changes virtual time.
	TraceRing int
	// Faults is the deterministic fault-injection plan threaded into every
	// simulated machine (see internal/fault). The zero Plan injects
	// nothing and leaves all output byte-identical to a faultless build;
	// a non-empty plan stays bit-identical across -parallel values because
	// each machine's injector derives its stream from that machine's seed.
	Faults fault.Plan
	// Swapback selects the swap-destination tier for every simulated
	// machine (see internal/swapback). The zero value (HDD) is the raw
	// device, byte-identical to pre-backend output.
	Swapback swapback.Kind
	// SwapPolicy selects the tiering policy for backends with a fast tier.
	SwapPolicy swapback.Policy
	// AuditEvery, when positive, attaches the invariant auditor to every
	// simulated machine, checking global invariants every AuditEvery
	// simulated events (test mode; a full check is O(pages), so stride
	// accordingly). A violation panics with the machine seed and the fault
	// spec so the failure replays exactly.
	AuditEvery int
	// MaxEvents, when positive, bounds every cell's simulated event
	// count. A breach kills only that cell — deterministically, at the
	// same event in serial and parallel sweeps — and records a
	// FailureRecord; sibling cells continue.
	MaxEvents uint64
	// CellTimeout, when positive, bounds every cell's wall-clock runtime.
	// A breach is fatal: the cell is killed and the remainder of the run
	// is canceled (real time is being lost), still emitting a partial
	// report marked incomplete. Unlike MaxEvents it is not deterministic.
	CellTimeout time.Duration
	// Ctx, when non-nil, cancels the whole invocation: in-flight cells
	// are aborted by their watchdogs at the next poll, queued cells are
	// skipped, and every victim is recorded as a "canceled" failure.
	Ctx context.Context
	// CancelRun, when non-nil, is invoked on a fatal breach (wall-clock
	// timeout) to cancel the remainder of the run; wire it to the cancel
	// function of Ctx.
	CancelRun context.CancelFunc

	// lim is the run-slot pool shared by everything derived from this
	// Options value; normalized creates it once per top-level invocation.
	lim *limiter
	// runlog, when armed via EnableRunLog, collects one RunRecord per
	// simulated machine (see json.go).
	runlog *runLog
	// faillog, when armed via EnableFailureLog, collects one
	// FailureRecord per failed cell (see failure.go).
	faillog *failureLog
}

func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.lim == nil {
		o.lim = newLimiter(o.Parallel)
	}
	return o
}

// canceled reports whether the invocation's context has been canceled.
func (o Options) canceled() bool { return o.Ctx != nil && o.Ctx.Err() != nil }

// cancelRun cancels the remainder of the invocation, if cancellable.
func (o Options) cancelRun() {
	if o.CancelRun != nil {
		o.CancelRun()
	}
}

// cellBudget assembles the per-cell watchdog budget from the options.
func (o Options) cellBudget() sim.Budget {
	b := sim.Budget{MaxEvents: o.MaxEvents, WallTimeout: o.CellTimeout}
	if o.Ctx != nil {
		ctx := o.Ctx
		b.Canceled = func() bool { return ctx.Err() != nil }
	}
	return b
}

// mb scales a paper-specified megabyte figure.
func (o Options) mb(v int) int {
	s := int(float64(v) * o.Scale)
	if s < 8 {
		s = 8
	}
	return s
}

// pages converts scaled MiB to pages.
func (o Options) pages(v int) int { return o.mb(v) << 20 / 4096 }

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values for plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Report is one experiment's output.
type Report struct {
	ID        string
	Title     string
	PaperNote string
	Tables    []*Table
	Notes     []string
	// AssertionFailures counts scenario assertions that did not hold (the
	// details are also in Notes as "ASSERTION FAILED" lines, so they are
	// fingerprinted); the CLI maps a nonzero count to exit code 1. Always
	// zero for hand-coded experiments.
	AssertionFailures int
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperNote)
	}
	b.WriteByte('\n')
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Fingerprint returns a stable SHA-256 over the report's identity and
// every table rendered as CSV (where all the metric counters the report
// surfaces end up), plus its notes. The determinism golden tests compare
// fingerprints across runs and against testdata/.
func (r *Report) Fingerprint() string {
	h := sha256.New()
	field := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	field(r.ID)
	field(r.Title)
	for _, t := range r.Tables {
		field(t.Title)
		field(t.CSV())
	}
	for _, n := range r.Notes {
		field(n)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID        string
	Title     string
	PaperNote string
	Run       func(Options) *Report
}

// secs formats a virtual duration as seconds.
func secs(d sim.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }

// mins formats a virtual duration as minutes.
func mins(d sim.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()/60) }

// runCfg describes one single-guest controlled-memory run (paper §5.1).
type runCfg struct {
	opts   Options
	scheme Scheme
	// seed, when nonzero, overrides opts.Seed for this run's machine.
	// Fan-out jobs set it to sim.DeriveSeed(opts.Seed, id, scheme, size)
	// so each cell is an independent, scheduling-order-free stream.
	seed     uint64
	guestMB  int // believed memory (pre-scale)
	actualMB int // cgroup allocation (pre-scale)
	hostMB   int // physical host memory (0 = 8x actual, min 2 GiB equiv)
	vcpus    int
	warmup   bool
	// balloonMarginMB is added to the static balloon so kernel + QEMU
	// overhead fits under the cgroup limit (pre-scale).
	balloonMarginMB int
	guestTweak      func(*guest.Config)
	vmTweak         func(*hyper.VMConfig)
	hostTweak       func(*hyper.MachineConfig)
}

// runOut is a completed run. failed is non-nil when the cell was killed
// by the watchdog, panicked, or was canceled; res and met are then
// zero-valued and the FailureRecord carries the diagnostics.
type runOut struct {
	res    workload.Result
	met    map[string]int64 // counter deltas over the measured body
	m      *hyper.Machine
	vm     *hyper.VM
	failed *FailureRecord
}

// runSingle executes one controlled-memory scenario: boot, optional static
// balloon, optional warm-up, then the measured body — all under the
// run-hardening shield, so a watchdog kill or a panic in this cell
// degrades to a FailureRecord instead of aborting the sweep.
func runSingle(rc runCfg, body func(vm *hyper.VM, p *sim.Proc) *workload.Job) runOut {
	o := rc.opts.normalized()
	release := o.acquire()
	defer release()
	if rc.seed == 0 {
		rc.seed = o.Seed
	}
	if rc.vcpus == 0 {
		rc.vcpus = 1
	}
	if rc.balloonMarginMB == 0 {
		rc.balloonMarginMB = 16
	}
	hostMB := rc.hostMB
	if hostMB == 0 {
		hostMB = 4 * rc.guestMB
	}
	label := fmt.Sprintf("%s/guest%dMB/actual%dMB/host%dMB/vcpus%d/seed%016x",
		rc.scheme, rc.guestMB, rc.actualMB, hostMB, rc.vcpus, rc.seed)

	var out runOut
	st := &cellState{}
	out.failed = o.runShielded(label, rc.seed, st, func() {
		mc := hyper.MachineConfig{
			Seed:         rc.seed,
			HostMemPages: o.pages(hostMB),
			Faults:       o.Faults,
			Swapback:     o.Swapback,
			SwapPolicy:   o.SwapPolicy,
			Budget:       o.cellBudget(),
		}
		if rc.hostTweak != nil {
			rc.hostTweak(&mc)
		}
		m := hyper.NewMachine(mc)
		st.m = m
		out.m = m
		var checkAudit func()
		st.aud, checkAudit = o.attachAuditor(m, rc.seed)
		if o.TraceRing > 0 {
			m.EnableTrace(o.TraceRing)
		}
		gcfg := guest.DefaultConfig(o.pages(rc.guestMB))
		if rc.guestTweak != nil {
			rc.guestTweak(&gcfg)
		}
		vmc := hyper.VMConfig{
			Name:       "vm0",
			MemPages:   o.pages(rc.guestMB),
			LimitPages: o.pages(rc.actualMB),
			VCPUs:      rc.vcpus,
			DiskBlocks: int64(o.mb(20*1024)) << 20 / 4096,
			Mapper:     rc.scheme.mapper(),
			Preventer:  rc.scheme.preventer(),
			GuestAPF:   true,
			Guest:      &gcfg,
		}
		if rc.actualMB >= rc.guestMB {
			vmc.LimitPages = 0 // uncapped
		}
		if rc.vmTweak != nil {
			rc.vmTweak(&vmc)
		}
		vm := m.NewVM(vmc)
		out.vm = vm

		m.Env.Go("driver", func(p *sim.Proc) {
			vm.Boot(p)
			if rc.scheme.balloon() && vmc.LimitPages > 0 {
				target := vmc.MemPages - vmc.LimitPages + o.pages(rc.balloonMarginMB)
				vm.OS.SetBalloonTarget(target)
				for vm.OS.BalloonPages() < vm.OS.BalloonTarget() {
					p.Sleep(100 * sim.Millisecond)
				}
			}
			if rc.warmup {
				workload.Warmup(vm, 2048).Wait(p)
			}
			snap := m.Met.Snapshot()
			job := body(vm, p)
			out.res = job.Wait(p)
			out.met = m.Met.Diff(snap)
			m.Shutdown()
		})
		m.Run()
		checkAudit()
	})
	if out.failed == nil && o.runlog != nil {
		o.runlog.add(label, out.m.Report())
	}
	return out
}

// attachAuditor hooks the invariant auditor into the machine when
// o.AuditEvery is positive. Call the returned function after Machine.Run:
// it panics with a replayable message (machine seed + fault spec) on the
// first invariant violation the run produced. The auditor itself is
// returned so failure capture can embed its recent check history.
func (o Options) attachAuditor(m *hyper.Machine, seed uint64) (*audit.Auditor, func()) {
	if o.AuditEvery <= 0 {
		return nil, func() {}
	}
	a := audit.Attach(m, o.AuditEvery)
	return a, func() {
		if err := a.Final(); err != nil {
			panic(fmt.Sprintf(
				"experiment: invariant violation (replay with seed=%d faults=%q; machine seed %#x): %v",
				o.Seed, o.Faults.String(), seed, err))
		}
	}
}

// attachAudit is attachAuditor without the auditor handle.
func (o Options) attachAudit(m *hyper.Machine, seed uint64) func() {
	_, check := o.attachAuditor(m, seed)
	return check
}

// runtimeOrKilled renders a result cell, flagging OOM kills the way the
// paper annotates crashed balloon runs.
func runtimeOrKilled(r workload.Result) string {
	if r.Killed {
		return "killed"
	}
	return secs(r.Runtime())
}
