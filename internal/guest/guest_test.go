package guest

import (
	"testing"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// fakePlat records platform calls and charges a fixed latency per disk op,
// so guest logic can be tested without the hypervisor.
type fakePlat struct {
	env       *sim.Env
	diskLat   sim.Duration
	reads     int
	readPages int
	writes    []writeRec
	touches   int
	overs     int
	spans     int
	balloonIn int
}

type writeRec struct {
	start int64
	n     int
}

func (f *fakePlat) TouchPage(p *sim.Proc, gfn int, write bool) { f.touches++ }
func (f *fakePlat) OverwritePage(p *sim.Proc, gfn int, rep bool) {
	f.overs++
}
func (f *fakePlat) WriteSpan(p *sim.Proc, gfn int, off, n int) { f.spans++ }
func (f *fakePlat) DiskRead(p *sim.Proc, gfns []int, start int64) {
	f.reads++
	f.readPages += len(gfns)
	p.Sleep(f.diskLat)
}
func (f *fakePlat) DiskWrite(p *sim.Proc, gfns []int, start int64) {
	f.writes = append(f.writes, writeRec{start: start, n: len(gfns)})
	p.Sleep(f.diskLat)
}
func (f *fakePlat) BalloonRelease(gfns []int) { f.balloonIn += len(gfns) }
func (f *fakePlat) BalloonReclaim(gfns []int) { f.balloonIn -= len(gfns) }

type grig struct {
	env  *sim.Env
	met  *metrics.Set
	plat *fakePlat
	fs   *FileSystem
	os   *OS
}

func newGuest(t *testing.T, memPages int, cfgMut func(*Config)) *grig {
	t.Helper()
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	plat := &fakePlat{env: env, diskLat: sim.Millisecond}
	fs := NewFileSystem(1<<20, 1<<15) // 4 GiB disk, 128 MiB swap
	cfg := DefaultConfig(memPages)
	cfg.KernelPages = 16
	cfg.KernelHotPages = 4
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	os := NewOS(env, met, plat, fs, cfg)
	return &grig{env: env, met: met, plat: plat, fs: fs, os: os}
}

// run boots the OS and executes fn as a guest thread, then shuts down.
func (g *grig) run(t *testing.T, fn func(th *Thread)) {
	t.Helper()
	g.env.Go("main", func(p *sim.Proc) {
		g.os.Boot(p)
		th := &Thread{OS: g.os, P: p}
		fn(th)
		th.FlushCPU()
		g.os.Shutdown()
	})
	g.env.Run()
}

func TestBootReservesKernel(t *testing.T) {
	g := newGuest(t, 4096, nil)
	g.run(t, func(th *Thread) {})
	if got := g.os.FreePages(); got != 4096-16 {
		t.Fatalf("free = %d, want %d", got, 4096-16)
	}
}

func TestReadFileCachesAndReadsAhead(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("data", 1<<20) // 256 blocks
		th.ReadFile(f, 0, 1<<20)
		if g.plat.readPages != 256 {
			t.Errorf("read pages = %d, want 256", g.plat.readPages)
		}
		if g.plat.reads >= 256 {
			t.Errorf("reads = %d: readahead should batch requests", g.plat.reads)
		}
		firstPassReads := g.plat.reads
		// Second pass: fully cached, no I/O.
		th.ReadFile(f, 0, 1<<20)
		if g.plat.reads != firstPassReads {
			t.Errorf("second pass did disk I/O (%d -> %d)", firstPassReads, g.plat.reads)
		}
	})
	if g.os.CachePages() != 256 {
		t.Fatalf("cache = %d pages, want 256", g.os.CachePages())
	}
}

func TestReadaheadWindowGrows(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("data", 64*4096)
		th.ReadFile(f, 0, 64*4096)
		// With min 4 doubling to max 32: requests of 4,8,16,32,4... the
		// first few requests must grow.
		if g.plat.reads > 6 {
			t.Errorf("reads = %d; window did not grow", g.plat.reads)
		}
	})
}

func TestWriteFileWholeBlocksAvoidRMW(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("out", 1<<20)
		th.WriteFile(f, 0, 64*4096)
		if g.plat.reads != 0 {
			t.Errorf("whole-block writes performed %d reads", g.plat.reads)
		}
		if g.os.DirtyCachePages() != 64 {
			t.Errorf("dirty = %d, want 64", g.os.DirtyCachePages())
		}
		th.Sync(f)
		if g.os.DirtyCachePages() != 0 {
			t.Errorf("dirty after sync = %d", g.os.DirtyCachePages())
		}
		if len(g.plat.writes) == 0 {
			t.Fatal("sync wrote nothing")
		}
		// Contiguous dirty range should coalesce into few write ops.
		if len(g.plat.writes) > 2 {
			t.Errorf("sync used %d writes; should coalesce", len(g.plat.writes))
		}
	})
}

func TestWriteFilePartialBlockDoesRMW(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("out", 1<<20)
		th.WriteFile(f, 100, 50) // partial, uncached
		if g.plat.reads != 1 {
			t.Errorf("reads = %d, want 1 (read-modify-write)", g.plat.reads)
		}
		if g.plat.spans != 1 {
			t.Errorf("spans = %d, want 1", g.plat.spans)
		}
	})
}

func TestAnonFirstTouchZeroes(t *testing.T) {
	g := newGuest(t, 65536, nil)
	g.run(t, func(th *Thread) {
		pr := g.os.NewProcess("app")
		pr.Reserve(10)
		before := g.plat.overs
		for i := 0; i < 10; i++ {
			th.TouchAnon(pr, i, true)
		}
		if g.plat.overs-before != 10 {
			t.Errorf("overwrites = %d, want 10 (kernel zeroing)", g.plat.overs-before)
		}
		if pr.Resident() != 10 {
			t.Errorf("resident = %d", pr.Resident())
		}
	})
}

func TestGuestReclaimDropsCleanCacheFirst(t *testing.T) {
	g := newGuest(t, 2048, nil) // 8 MiB guest
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("big", 16<<20) // 4096 blocks > memory
		th.ReadFile(f, 0, 16<<20)
		if g.os.FreePages() == 0 {
			t.Error("reclaim never ran")
		}
		if g.met.Get(metrics.GuestCacheDrops) == 0 {
			t.Error("no cache drops")
		}
		if g.met.Get(metrics.GuestSwapOuts) != 0 {
			t.Error("anon swapped while clean cache was available")
		}
	})
}

func TestGuestSwapsAnonUnderPressure(t *testing.T) {
	g := newGuest(t, 2048, nil)
	g.run(t, func(th *Thread) {
		pr := g.os.NewProcess("hog")
		pr.Reserve(4000)
		for i := 0; i < 4000; i++ {
			th.TouchAnon(pr, i, true)
			if pr.Killed {
				t.Fatalf("OOM killed at %d despite swap space", i)
			}
		}
		if g.met.Get(metrics.GuestSwapOuts) == 0 {
			t.Error("no guest swap-outs")
		}
		// Touch early pages again: must fault back in from guest swap.
		before := g.met.Get(metrics.GuestSwapIns)
		for i := 0; i < 100; i++ {
			th.TouchAnon(pr, i, false)
		}
		if g.met.Get(metrics.GuestSwapIns) == before {
			t.Error("no guest swap-ins on re-touch")
		}
	})
}

func TestOOMKillsLargestProcess(t *testing.T) {
	// The OOM triggers model over-ballooning (paper §2.4), so they only
	// fire in a guest whose balloon pins a meaningful share of memory.
	g := newGuest(t, 2048, func(c *Config) {
		c.OOMLatency = 1 // fire almost immediately once reclaim blocks
	})
	g.run(t, func(th *Thread) {
		g.os.SetBalloonTarget(600)
		for g.os.BalloonPages() < 600 {
			th.P.Sleep(10 * sim.Millisecond)
		}
		small := g.os.NewProcess("small")
		small.Reserve(100)
		for i := 0; i < 100; i++ {
			th.TouchAnon(small, i, true)
		}
		big := g.os.NewProcess("big")
		big.Reserve(4000)
		for i := 0; i < 4000 && !big.Killed; i++ {
			th.TouchAnon(big, i, true)
		}
		if !big.Killed {
			t.Fatal("big process not killed")
		}
		if small.Killed {
			t.Fatal("small process killed instead")
		}
	})
	if g.os.OOMKills() == 0 {
		t.Fatal("OOM kill not recorded")
	}
}

func TestBalloonInflateDeflate(t *testing.T) {
	g := newGuest(t, 8192, nil)
	g.run(t, func(th *Thread) {
		g.os.SetBalloonTarget(1000)
		for g.os.BalloonPages() < 1000 {
			th.P.Sleep(10 * sim.Millisecond)
		}
		if g.plat.balloonIn != 1000 {
			t.Errorf("host saw %d balloon pages", g.plat.balloonIn)
		}
		free := g.os.FreePages()
		g.os.SetBalloonTarget(0)
		for g.os.BalloonPages() > 0 {
			th.P.Sleep(10 * sim.Millisecond)
		}
		if g.plat.balloonIn != 0 {
			t.Errorf("host still holds %d balloon pages", g.plat.balloonIn)
		}
		if g.os.FreePages() <= free {
			t.Error("deflate did not free guest memory")
		}
	})
}

func TestBalloonTargetClamped(t *testing.T) {
	g := newGuest(t, 4096, nil)
	g.os.SetBalloonTarget(4096)
	if g.os.BalloonTarget() >= 4096 {
		t.Fatal("balloon target not clamped below guest size")
	}
}

func TestBalloonInflationForcesReclaim(t *testing.T) {
	g := newGuest(t, 2048, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("data", 6<<20)
		th.ReadFile(f, 0, 6<<20) // fill cache
		cacheBefore := g.os.CachePages()
		g.os.SetBalloonTarget(1500)
		for g.os.BalloonPages() < 1500 {
			th.P.Sleep(10 * sim.Millisecond)
		}
		if g.os.CachePages() >= cacheBefore {
			t.Error("inflation did not shrink the page cache")
		}
	})
}

func TestFreeAnonRecyclesGFN(t *testing.T) {
	g := newGuest(t, 4096, nil)
	g.run(t, func(th *Thread) {
		pr := g.os.NewProcess("app")
		pr.Reserve(2)
		th.TouchAnon(pr, 0, true)
		gfn := pr.slots[0].gfn
		th.FreeAnon(pr, 0)
		if pr.slots[0].state != anonNone {
			t.Fatal("slot not freed")
		}
		th.TouchAnon(pr, 1, true)
		if pr.slots[1].gfn != gfn {
			t.Fatalf("LIFO recycling expected: got %d, want %d", pr.slots[1].gfn, gfn)
		}
	})
}

func TestProcessExitFreesEverything(t *testing.T) {
	g := newGuest(t, 2048, nil)
	g.run(t, func(th *Thread) {
		pr := g.os.NewProcess("app")
		pr.Reserve(3000)
		for i := 0; i < 3000 && !pr.Killed; i++ {
			th.TouchAnon(pr, i, true)
		}
		pr.Exit()
		if pr.Resident() != 0 {
			t.Errorf("resident after exit = %d", pr.Resident())
		}
		if g.os.swap.inUse != 0 {
			t.Errorf("guest swap still holds %d slots", g.os.swap.inUse)
		}
	})
}

func TestDirtyThrottleFlushes(t *testing.T) {
	g := newGuest(t, 2048, func(c *Config) { c.DirtyRatioPct = 5 })
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("out", 8<<20)
		th.WriteFile(f, 0, 4<<20) // 1024 dirty pages >> 5% of 2048
		limit := 2048 * 5 / 100
		if g.os.DirtyCachePages() > limit {
			t.Errorf("dirty = %d, throttle limit = %d", g.os.DirtyCachePages(), limit)
		}
	})
}

func TestDropCaches(t *testing.T) {
	g := newGuest(t, 8192, nil)
	g.run(t, func(th *Thread) {
		f := g.os.FS.Create("data", 4<<20)
		th.ReadFile(f, 0, 4<<20)
		if g.os.CachePages() == 0 {
			t.Fatal("setup: nothing cached")
		}
		g.os.DropCaches()
		if g.os.CachePages() != 0 {
			t.Fatalf("cache = %d after drop", g.os.CachePages())
		}
	})
}

func TestVFileBlockRangePanics(t *testing.T) {
	fs := NewFileSystem(1000, 100)
	f := fs.Create("x", 10*4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Block(10)
}

func TestFSDiskFullPanics(t *testing.T) {
	fs := NewFileSystem(100, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fs.Create("big", 91*4096)
}

func TestGuestSwapSlotReuse(t *testing.T) {
	gs := newGuestSwap(1000, 8)
	a := gs.alloc()
	b := gs.alloc()
	if a != 0 || b != 1 {
		t.Fatalf("alloc = %d,%d", a, b)
	}
	gs.release(a)
	if got := gs.alloc(); got != 0 {
		t.Fatalf("realloc = %d, want 0", got)
	}
	if gs.block(3) != 1003 {
		t.Fatalf("block translation wrong")
	}
}
