#!/usr/bin/env bash
# Regenerate BENCH_sim.json, the checked-in benchmark trajectory: best-of-N
# wall time for every quick-mode registry experiment. Run from anywhere;
# extra flags are passed through to benchsim (e.g. -iters 5, -only fig5).
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/benchsim -o BENCH_sim.json "$@"
