package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv(1)
	var order []int
	env.Schedule(3*Millisecond, func() { order = append(order, 3) })
	env.Schedule(1*Millisecond, func() { order = append(order, 1) })
	env.Schedule(2*Millisecond, func() { order = append(order, 2) })
	end := env.Run()
	if end != Time(3*Millisecond) {
		t.Fatalf("end time = %v, want 3ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(Millisecond, func() { order = append(order, i) })
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among ties)", i, v, i)
		}
	}
}

func TestProcSleep(t *testing.T) {
	env := NewEnv(1)
	var wake Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		wake = p.Now()
	})
	env.Run()
	if wake != Time(5*Second) {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	env := NewEnv(1)
	var trace []string
	env.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * Millisecond)
		trace = append(trace, "a1")
	})
	env.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * Millisecond)
		trace = append(trace, "b1")
		p.Sleep(2 * Millisecond)
		trace = append(trace, "b2")
	})
	env.Run()
	want := []string{"a0", "b0", "b1", "a1", "b2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	woken := 0
	for i := 0; i < 4; i++ {
		env.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	env.Go("caller", func(p *Proc) {
		p.Sleep(Second)
		if sig.Pending() != 4 {
			t.Errorf("pending = %d, want 4", sig.Pending())
		}
		sig.Broadcast()
	})
	env.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestSignalWakeupOrder(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("w", func(p *Proc) {
			p.Sleep(Duration(i) * Microsecond) // stagger wait registration
			sig.Wait(p)
			order = append(order, i)
		})
	}
	env.Go("caller", func(p *Proc) {
		p.Sleep(Second)
		sig.Broadcast()
	})
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wakeup order = %v, want ascending", order)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	env := NewEnv(1)
	fired := false
	env.Schedule(10*Second, func() { fired = true })
	end := env.RunUntil(Time(3 * Second))
	if fired {
		t.Fatal("event past deadline fired")
	}
	if end != Time(3*Second) {
		t.Fatalf("end = %v, want 3s", end)
	}
	env.Run()
	if !fired {
		t.Fatal("event did not fire after resuming")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deadlock")
		}
	}()
	env := NewEnv(1)
	sig := NewSignal(env)
	env.Go("stuck", func(p *Proc) { sig.Wait(p) })
	env.Run()
}

func TestNestedSpawn(t *testing.T) {
	env := NewEnv(1)
	var childDone Time
	env.Go("parent", func(p *Proc) {
		p.Sleep(Second)
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(Second)
			childDone = c.Now()
		})
		p.Sleep(5 * Second)
	})
	env.Run()
	if childDone != Time(2*Second) {
		t.Fatalf("child finished at %v, want 2s", childDone)
	}
}

func TestSleepUntilPast(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		p.Sleep(Second)
		p.SleepUntil(Time(500 * Millisecond)) // in the past: no-op
		if p.Now() != Time(Second) {
			t.Errorf("now = %v, want 1s", p.Now())
		}
	})
	env.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		env := NewEnv(42)
		var stamps []Time
		for i := 0; i < 8; i++ {
			env.Go("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(env.Rand().Intn(1000)+1) * Microsecond)
					stamps = append(stamps, p.Now())
				}
			})
		}
		env.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f := r.Fork()
	// Draw from the fork; the parent's sequence after forking must be the
	// same regardless of how much the fork is used.
	want := NewRNG(7)
	want.Uint64() // account for the draw Fork consumed
	for i := 0; i < 10; i++ {
		f.Uint64()
	}
	for i := 0; i < 10; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatal("fork perturbed parent stream")
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if s := (2500 * Millisecond).Seconds(); s != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", s)
	}
}
