// Package hyper assembles the virtual machine monitor: the physical host
// (disk, frame pool, host MM), per-guest QEMU processes (cgroup, disk
// image, executable pages), the virtio disk emulation path, and the
// EPT-violation fault path. VSwapper (internal/core) plugs into the virtio
// and fault paths exactly where the paper inserts it.
package hyper

import (
	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
	"vswapsim/internal/trace"
)

// MachineConfig sizes the physical host.
type MachineConfig struct {
	// Seed drives all experiment randomness.
	Seed uint64
	// HostMemPages is the physical memory size in pages.
	HostMemPages int
	// HostSwapPages is the host swap partition size in pages.
	HostSwapPages int64
	// Disk selects the drive latency model (default Constellation 7200).
	Disk disk.LatencyModel
	// Swapback selects the swap-destination tier (internal/swapback). The
	// zero value (HDD) forwards to the raw device, byte-identical to the
	// pre-backend simulator; file-backed I/O always uses the raw device.
	Swapback swapback.Kind
	// SwapPolicy selects the tiering policy for backends with a fast tier
	// (zswap); single-tier backends ignore it.
	SwapPolicy swapback.Policy
	// Host configures the host memory manager.
	Host hostmm.Config
	// Faults schedules deterministic fault injection across the disk,
	// host-MM, VSwapper and balloon layers (see internal/fault). The zero
	// Plan disables injection entirely, at zero cost.
	Faults fault.Plan
	// FaultsDisarmed builds the injector for Faults but leaves it disarmed;
	// the run arms it later via Machine.Inj.SetEnabled(true) (scenario
	// timelines inject faults mid-run this way). Meaningless when Faults is
	// empty: no injector exists to arm.
	FaultsDisarmed bool
	// Budget installs the progress watchdog on the machine's event loop:
	// event-count, stall (non-advancing simulated clock) and wall-clock
	// bounds plus an external cancellation poll. The zero Budget disables
	// it (see internal/sim watchdog.go).
	Budget sim.Budget
	// Env, when non-nil, makes this machine share an existing event loop
	// instead of creating its own — the cluster layer runs N hosts on one
	// simulated clock this way. The owner of the shared env is responsible
	// for its Budget; the machine's Budget field is ignored. Seed still
	// drives this machine's derived streams (injector, swapback), so two
	// hosts on one env stay decorrelated.
	Env *sim.Env
}

// Machine is one physical host.
type Machine struct {
	Env    *sim.Env
	Met    *metrics.Set
	Dev    *disk.Device
	Layout *disk.Layout
	Pool   *mem.FramePool
	MM     *hostmm.Manager
	VMs    []*VM
	// Inj is the machine's fault injector (nil when MachineConfig.Faults
	// is empty).
	Inj *fault.Injector

	stopKswapd func()
	trace      *trace.Ring
	seed       uint64
}

// NewMachine builds a host.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.HostMemPages <= 0 {
		panic("hyper: HostMemPages must be positive")
	}
	if cfg.HostSwapPages == 0 {
		cfg.HostSwapPages = 4 << 20 / 4 // 4 GiB default
	}
	if cfg.Disk.TotalBlocks == 0 {
		cfg.Disk = disk.Constellation7200()
	}
	env := cfg.Env
	if env == nil {
		env = sim.NewEnv(cfg.Seed)
		env.SetBudget(cfg.Budget)
	}
	met := metrics.NewSet()
	dev := disk.NewDevice(env, cfg.Disk, met)
	layout := disk.NewLayout(cfg.Disk.TotalBlocks)
	swapRegion := layout.Reserve("host-swap", cfg.HostSwapPages)
	pool := mem.NewFramePool(cfg.HostMemPages)
	mm := hostmm.NewManager(env, met, dev, pool, hostmm.NewSwapArea(swapRegion), cfg.Host)
	// The injector draws from its own derived stream, never from env's, so
	// an empty plan leaves the simulation bit-identical to no injection.
	inj := fault.New(cfg.Faults, sim.DeriveSeed(cfg.Seed, "fault-injector"), met)
	if cfg.FaultsDisarmed {
		inj.SetEnabled(false)
	}
	dev.SetInjector(inj)
	mm.Inj = inj
	if cfg.Swapback != swapback.HDD {
		// Non-default backends get their own derived stream (remote tail
		// latency, per-page compressibility); the default keeps the
		// transparent store NewManager installed, drawing nothing.
		mm.SetBackend(swapback.New(swapback.Config{
			Kind:   cfg.Swapback,
			Policy: cfg.SwapPolicy,
			Env:    env,
			Met:    met,
			Dev:    dev,
			Phys:   mm.Swap.Phys,
			Pool:   pool,
			Inj:    inj,
			Seed:   sim.DeriveSeed(cfg.Seed, "swapback"),
		}))
	}
	m := &Machine{
		Env:    env,
		Met:    met,
		Dev:    dev,
		Layout: layout,
		Pool:   pool,
		MM:     mm,
		Inj:    inj,
		seed:   cfg.Seed,
	}
	m.stopKswapd = mm.StartKswapd(hostmm.DefaultKswapdConfig())
	return m
}

// EnableTrace attaches a bounded event trace to the host MM and every
// guest kernel — including guests created after this call; it returns the
// ring for inspection.
func (m *Machine) EnableTrace(capacity int) *trace.Ring {
	r := trace.New(capacity)
	m.MM.Trace = r
	m.trace = r
	for _, vm := range m.VMs {
		vm.OS.Trace = r
	}
	return r
}

// Run drives the simulation to completion and returns the final time.
func (m *Machine) Run() sim.Time { return m.Env.Run() }

// Shutdown stops all guest and host daemons so Run can drain.
func (m *Machine) Shutdown() {
	for _, vm := range m.VMs {
		vm.OS.Shutdown()
	}
	if m.stopKswapd != nil {
		m.stopKswapd()
	}
}
