package hyper

import (
	"testing"

	"vswapsim/internal/guest"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// testVM builds a 64 MiB-believed guest limited to limitMiB actual, with
// the given VSwapper components, and runs fn as a guest thread.
func testVM(t *testing.T, limitMiB int, mapper, preventer bool, fn func(vm *VM, th *guest.Thread)) (*Machine, *VM) {
	t.Helper()
	m := NewMachine(MachineConfig{
		Seed:         1,
		HostMemPages: 256 << 20 / 4096, // plenty of host RAM; cgroup constrains
	})
	vm := m.NewVM(VMConfig{
		Name:       "vm0",
		MemPages:   64 << 20 / 4096,
		LimitPages: limitMiB << 20 / 4096,
		DiskBlocks: 1 << 30 / 4096,
		Mapper:     mapper,
		Preventer:  preventer,
		GuestAPF:   true,
	})
	m.Env.Go("scenario", func(p *sim.Proc) {
		vm.Boot(p)
		th := &guest.Thread{OS: vm.OS, P: p}
		fn(vm, th)
		th.FlushCPU()
		m.Shutdown()
	})
	m.Run()
	return m, vm
}

const mib = 1 << 20

func TestBaselineSilentSwapWrites(t *testing.T) {
	// Guest reads a 32 MiB file but has only 16 MiB: the host swaps out
	// clean page-cache pages, writing unchanged data to its swap area.
	m, _ := testVM(t, 16, false, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
	})
	if m.Met.Get(metrics.SilentSwapWrites) == 0 {
		t.Fatal("baseline produced no silent swap writes")
	}
	if m.Met.Get(metrics.SwapWriteSectors) == 0 {
		t.Fatal("no swap write traffic")
	}
}

func TestMapperEliminatesSilentWrites(t *testing.T) {
	m, _ := testVM(t, 16, true, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
	})
	if got := m.Met.Get(metrics.SilentSwapWrites); got != 0 {
		t.Fatalf("mapper config produced %d silent writes", got)
	}
	if m.Met.Get(metrics.HostFileDiscards) == 0 {
		t.Fatal("mapper reclaim should discard named pages")
	}
}

func TestBaselineStaleSwapReads(t *testing.T) {
	// Read the file twice with the guest dropping its cache in between:
	// the second pass issues explicit reads into host-swapped frames.
	m, _ := testVM(t, 16, false, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		vm.OS.DropCaches()
		th.ReadFile(f, 0, 32*mib)
	})
	if m.Met.Get(metrics.StaleSwapReads) == 0 {
		t.Fatal("baseline produced no stale swap reads")
	}
}

func TestMapperEliminatesStaleReads(t *testing.T) {
	m, _ := testVM(t, 16, true, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		vm.OS.DropCaches()
		th.ReadFile(f, 0, 32*mib)
	})
	if got := m.Met.Get(metrics.StaleSwapReads); got != 0 {
		t.Fatalf("mapper config produced %d stale reads", got)
	}
}

func TestBaselineFalseSwapReads(t *testing.T) {
	// Fill memory with file cache, drop it in the guest, then allocate
	// anonymous memory: recycled GFNs are host-swapped, and zeroing them
	// faults old content in.
	m, _ := testVM(t, 16, false, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		vm.OS.DropCaches()
		pr := vm.OS.NewProcess("alloc")
		pr.Reserve(16 * mib / 4096)
		for i := 0; i < 16*mib/4096; i++ {
			th.TouchAnon(pr, i, true)
		}
	})
	if m.Met.Get(metrics.FalseSwapReads) == 0 {
		t.Fatal("baseline produced no false swap reads")
	}
}

func TestPreventerEliminatesFalseReads(t *testing.T) {
	m, _ := testVM(t, 16, true, true, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		vm.OS.DropCaches()
		pr := vm.OS.NewProcess("alloc")
		pr.Reserve(16 * mib / 4096)
		for i := 0; i < 16*mib/4096; i++ {
			th.TouchAnon(pr, i, true)
		}
	})
	if got := m.Met.Get(metrics.FalseSwapReads); got != 0 {
		t.Fatalf("vswapper produced %d false reads", got)
	}
	if m.Met.Get(metrics.PreventerRemaps) == 0 {
		t.Fatal("preventer performed no remaps")
	}
}

func TestFalsePageAnonymity(t *testing.T) {
	// Under baseline pressure, QEMU's text pages (the only named memory)
	// are evicted and refault in host context.
	m, _ := testVM(t, 16, false, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 48*mib)
		for iter := 0; iter < 3; iter++ {
			th.ReadFile(f, 0, 48*mib)
		}
	})
	if m.Met.Get(metrics.HostFaultsInHost) == 0 {
		t.Fatal("no host-context faults: text thrash not modelled")
	}
}

func TestVSwapperSpeedsUpRereads(t *testing.T) {
	scenario := func(mapper, preventer bool) sim.Duration {
		var elapsed sim.Duration
		testVM(t, 16, mapper, preventer, func(vm *VM, th *guest.Thread) {
			f := vm.OS.FS.Create("data", 32*mib)
			th.ReadFile(f, 0, 32*mib) // populate
			start := th.P.Now()
			for i := 0; i < 3; i++ {
				th.ReadFile(f, 0, 32*mib) // re-read from guest "cache"
			}
			th.FlushCPU()
			elapsed = th.P.Now().Sub(start)
		})
		return elapsed
	}
	base := scenario(false, false)
	vswap := scenario(true, true)
	if vswap >= base {
		t.Fatalf("vswapper (%v) not faster than baseline (%v)", vswap, base)
	}
	if base < 2*vswap {
		t.Logf("note: baseline %v vs vswapper %v (<2x)", base, vswap)
	}
}

func TestNoOverheadWhenMemoryPlentiful(t *testing.T) {
	scenario := func(mapper, preventer bool) sim.Duration {
		var elapsed sim.Duration
		testVM(t, 0 /* uncapped */, mapper, preventer, func(vm *VM, th *guest.Thread) {
			f := vm.OS.FS.Create("data", 32*mib)
			start := th.P.Now()
			th.ReadFile(f, 0, 32*mib)
			th.ReadFile(f, 0, 32*mib)
			th.FlushCPU()
			elapsed = th.P.Now().Sub(start)
		})
		return elapsed
	}
	base := scenario(false, false)
	vswap := scenario(true, true)
	slowdown := float64(vswap) / float64(base)
	if slowdown > 1.05 {
		t.Fatalf("vswapper overhead %.1f%% with plentiful memory", (slowdown-1)*100)
	}
}

func TestBallooningAvoidsHostSwapping(t *testing.T) {
	m, vm := testVM(t, 16, false, false, func(vm *VM, th *guest.Thread) {
		// Inflate so the guest self-limits to its actual allocation.
		vm.OS.SetBalloonTarget((64 - 16) * mib / 4096)
		for vm.OS.BalloonPages() < (64-16)*mib/4096 {
			th.P.Sleep(50 * sim.Millisecond)
		}
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		th.ReadFile(f, 0, 32*mib)
	})
	if got := m.Met.Get(metrics.HostSwapOuts); got > 100 {
		t.Fatalf("host swapped %d pages despite ballooning", got)
	}
	if vm.CG.Resident() > vm.Cfg.LimitPages {
		t.Fatal("cgroup limit exceeded")
	}
}

func TestBalloonDeflateGivesMemoryBack(t *testing.T) {
	_, vm := testVM(t, 64, false, false, func(vm *VM, th *guest.Thread) {
		target := 32 * mib / 4096
		vm.OS.SetBalloonTarget(target)
		for vm.OS.BalloonPages() < target {
			th.P.Sleep(50 * sim.Millisecond)
		}
		vm.OS.SetBalloonTarget(0)
		for vm.OS.BalloonPages() > 0 {
			th.P.Sleep(50 * sim.Millisecond)
		}
		// Guest can use the memory again.
		pr := vm.OS.NewProcess("app")
		pr.Reserve(1000)
		for i := 0; i < 1000; i++ {
			th.TouchAnon(pr, i, true)
		}
		if pr.Killed {
			t.Error("allocation failed after deflate")
		}
	})
	_ = vm
}

func TestGuestWriteThenHostReclaimIsNotSilent(t *testing.T) {
	// Pages the guest actually dirtied (anon) are not silent when swapped.
	m, _ := testVM(t, 8, false, false, func(vm *VM, th *guest.Thread) {
		pr := vm.OS.NewProcess("hog")
		n := 24 * mib / 4096
		pr.Reserve(n)
		for i := 0; i < n; i++ {
			th.TouchAnon(pr, i, true)
		}
	})
	outs := m.Met.Get(metrics.HostSwapOuts)
	silent := m.Met.Get(metrics.SilentSwapWrites)
	if outs == 0 {
		t.Fatal("no swap-outs")
	}
	if silent != 0 {
		t.Fatalf("%d/%d swap writes marked silent for dirty anon pages", silent, outs)
	}
}

func TestMapperConsistencyOnOverwrite(t *testing.T) {
	// Guest writes new content over file blocks whose old content is
	// still mapped (non-resident): the mapper must invalidate, not serve
	// the new bytes to the old page.
	m, vm0 := testVM(t, 16, true, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 4*mib)
		th.ReadFile(f, 0, 4*mib)
		// The guest forgets the blocks, but the host-side mappings made by
		// the Mapper survive on the old GFNs.
		vm.OS.DropCaches()
		// O_DIRECT-style rewrite of block 0 from an unrelated buffer page:
		// the explicit write hits a block another page still maps, so C0
		// must be rescued and the mapping broken before the write lands.
		buffer := vm.OS.Cfg.MemPages - 1 // a never-used GFN
		vm.DiskWrite(th.P, []int{buffer}, f.Block(0))
	})
	if m.Met.Get(metrics.MapperInvalidate) == 0 {
		t.Fatal("no invalidations despite overwriting mapped blocks")
	}
	_ = vm0
}

func TestWindowsProfileNoAPFStillWorks(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 1, HostMemPages: 256 * mib / 4096})
	vm := m.NewVM(VMConfig{
		Name:       "win0",
		MemPages:   64 * mib / 4096,
		LimitPages: 16 * mib / 4096,
		DiskBlocks: 1 << 30 / 4096,
		GuestAPF:   false,
	})
	m.Env.Go("scenario", func(p *sim.Proc) {
		vm.Boot(p)
		th := &guest.Thread{OS: vm.OS, P: p}
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		th.ReadFile(f, 0, 32*mib)
		th.FlushCPU()
		m.Shutdown()
	})
	m.Run()
	if m.Met.Get(metrics.HostFaultsInGuest) == 0 {
		t.Fatal("expected EPT faults")
	}
}

func TestEPTDirtyBitsAblationSkipsRewrite(t *testing.T) {
	// With hardware dirty bits the host need not rewrite clean pages on
	// re-eviction, so swap write traffic drops.
	run := func(dirtyBits bool) int64 {
		m := NewMachine(MachineConfig{
			Seed:         1,
			HostMemPages: 256 * mib / 4096,
			Host:         hostmm.Config{EPTDirtyBits: dirtyBits},
		})
		vm := m.NewVM(VMConfig{
			Name:       "vm0",
			MemPages:   64 * mib / 4096,
			LimitPages: 16 * mib / 4096,
			DiskBlocks: 1 << 30 / 4096,
			GuestAPF:   true,
		})
		m.Env.Go("scenario", func(p *sim.Proc) {
			vm.Boot(p)
			th := &guest.Thread{OS: vm.OS, P: p}
			f := vm.OS.FS.Create("data", 32*mib)
			for i := 0; i < 3; i++ {
				th.ReadFile(f, 0, 32*mib)
			}
			th.FlushCPU()
			m.Shutdown()
		})
		m.Run()
		return m.Met.Get(metrics.SwapWriteSectors)
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("dirty bits did not reduce swap writes: %d vs %d", with, without)
	}
}
