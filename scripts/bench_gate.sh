#!/usr/bin/env bash
# Benchmark regression gate: re-measure the hot registry entries and
# compare them against the checked-in trajectory (BENCH_sim.json).
#
#   - A report-fingerprint mismatch is ALWAYS fatal: the simulator's output
#     drifted without the goldens being regenerated.
#   - A best-of-N wall-time regression beyond THRESHOLD (default 1.15, i.e.
#     >15% slower) fails the performance budget for that entry.
#
# Usage: scripts/bench_gate.sh [extra benchsim flags...]
#   IDS=fig5,fig11 THRESHOLD=1.15 scripts/bench_gate.sh -iters 3
set -euo pipefail
cd "$(dirname "$0")/.."

ids=${IDS:-fig5,fig11,backendN,clusterN,fleetN}
threshold=${THRESHOLD:-1.15}
fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

go run ./cmd/benchsim -only "$ids" -o "$fresh" "$@"

fail=0
IFS=, read -ra id_list <<<"$ids"
for id in "${id_list[@]}"; do
  old_fp=$(jq -r --arg id "$id" '.entries[] | select(.id == $id).fingerprint' BENCH_sim.json)
  new_fp=$(jq -r --arg id "$id" '.entries[] | select(.id == $id).fingerprint' "$fresh")
  old_ms=$(jq -r --arg id "$id" '.entries[] | select(.id == $id).best_ms' BENCH_sim.json)
  new_ms=$(jq -r --arg id "$id" '.entries[] | select(.id == $id).best_ms' "$fresh")
  if [ -z "$old_fp" ] || [ -z "$old_ms" ]; then
    echo "bench_gate: $id missing from checked-in BENCH_sim.json" >&2
    fail=1
    continue
  fi
  if [ "$old_fp" != "$new_fp" ]; then
    echo "bench_gate: $id report fingerprint drifted: $new_fp != checked-in $old_fp" >&2
    echo "bench_gate: $id baseline ${old_ms}ms, measured ${new_ms}ms (ignored: fingerprint gates first)" >&2
    echo "bench_gate: if the output change is intentional, regenerate the goldens and scripts/bench.sh" >&2
    fail=1
    continue
  fi
  if awk -v new="$new_ms" -v old="$old_ms" -v t="$threshold" 'BEGIN { exit !(new > old * t) }'; then
    echo "bench_gate: $id regressed: baseline ${old_ms}ms, measured ${new_ms}ms (budget x$threshold)" >&2
    fail=1
  else
    echo "bench_gate: $id ok: best ${new_ms}ms vs checked-in ${old_ms}ms (budget x$threshold)"
  fi
done
exit $fail
