package swapback

import (
	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// ssdChannels is the flash package parallelism: up to this many requests
// are serviced concurrently, and queueing only appears once all channels
// are busy — the queue-depth-aware part of the model.
const ssdChannels = 8

// ssdTier models a SATA-era consumer SSD (disk.SSD840 parameters): no
// position dependence, so service time is a fixed per-request overhead
// plus per-block transfer. Each request is dispatched to the
// earliest-free channel.
type ssdTier struct {
	env   *sim.Env
	inj   *fault.Injector
	model disk.LatencyModel
	chans []sim.Time // per-channel free times

	retries, exhausted *metrics.Counter
	histBackoff        *metrics.Histogram
}

func newSSDTier(cfg Config) *ssdTier {
	return &ssdTier{
		env:         cfg.Env,
		inj:         cfg.Inj,
		model:       disk.SSD840(),
		chans:       make([]sim.Time, ssdChannels),
		retries:     cfg.Met.Counter(metrics.FaultDiskRetries),
		exhausted:   cfg.Met.Counter(metrics.FaultDiskExhausted),
		histBackoff: cfg.Met.Histogram(metrics.HistFaultBackoff),
	}
}

func (t *ssdTier) service(n int) sim.Duration {
	return sim.Duration(int64(t.model.PerBlockTransfer)*int64(n)) + t.model.RequestOverhead
}

func (t *ssdTier) submit(kind disk.Kind, slot int64, n int) sim.Time {
	now := t.env.Now()
	ci := 0
	for i := 1; i < len(t.chans); i++ {
		if t.chans[i] < t.chans[ci] {
			ci = i
		}
	}
	begin := t.chans[ci]
	if now > begin {
		begin = now
	}
	svc := t.service(n)
	svc += injectXfer(t.inj, kind == disk.Write, t.service(n), t.retries, t.exhausted, t.histBackoff)
	done := begin.Add(svc)
	t.chans[ci] = done
	return done
}

func (t *ssdTier) backlog() sim.Duration {
	min := t.chans[0]
	for _, f := range t.chans[1:] {
		if f < min {
			min = f
		}
	}
	return min.Sub(t.env.Now())
}
