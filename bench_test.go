// Benchmarks regenerating the paper's evaluation artifacts: one benchmark
// per table and figure (BenchmarkFig3 … BenchmarkTable2), plus ablations.
// Each iteration runs the full experiment at a reduced scale so `go test
// -bench=.` finishes in minutes; the full-size numbers come from
// `go run ./cmd/vswapper-report` (see EXPERIMENTS.md).
//
// Reported custom metrics are virtual (simulated) seconds, not wall time:
// "vsec/baseline" is what the paper plots on its y-axes.
package vswapsim

import (
	"strconv"
	"strings"
	"testing"

	"vswapsim/internal/experiment"
)

// benchOpts keeps benchmark iterations affordable while preserving shape.
func benchOpts() experiment.Options {
	return experiment.Options{Seed: 42, Scale: 0.25, Quick: true}
}

// reportCells extracts numeric cells of a table column keyed by the first
// column, exposing them as benchmark metrics.
func reportCells(b *testing.B, rep *experiment.Report, tableIdx, col int, unit string) {
	if tableIdx >= len(rep.Tables) {
		return
	}
	tab := rep.Tables[tableIdx]
	for _, row := range tab.Rows {
		if col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(row[col])[0], 64)
		if err != nil {
			continue
		}
		name := strings.ReplaceAll(row[0], " ", "_")
		b.ReportMetric(v, unit+"/"+name)
	}
}

func runExperimentBench(b *testing.B, id string) *experiment.Report {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *experiment.Report
	for i := 0; i < b.N; i++ {
		rep = e.Run(benchOpts())
	}
	return rep
}

func BenchmarkFig3(b *testing.B) {
	rep := runExperimentBench(b, "fig3")
	reportCells(b, rep, 0, 1, "vsec")
}

func BenchmarkFig4(b *testing.B) {
	rep := runExperimentBench(b, "fig4")
	reportCells(b, rep, 0, 1, "vsec")
}

func BenchmarkFig5(b *testing.B) {
	rep := runExperimentBench(b, "fig5")
	// Report the tightest memory point (last row): baseline column.
	tab := rep.Tables[0]
	last := tab.Rows[len(tab.Rows)-1]
	for i, cfg := range tab.Columns[1:] {
		if v, err := strconv.ParseFloat(strings.Fields(last[i+1])[0], 64); err == nil {
			b.ReportMetric(v, "vsec/"+cfg)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	rep := runExperimentBench(b, "fig9")
	// Panel (a), first and last iterations of the baseline column: the
	// U-shape endpoints.
	tab := rep.Tables[0]
	if v, err := strconv.ParseFloat(tab.Rows[0][1], 64); err == nil {
		b.ReportMetric(v, "vsec/baseline_iter1")
	}
	if v, err := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64); err == nil {
		b.ReportMetric(v, "vsec/baseline_last")
	}
}

func BenchmarkFig10(b *testing.B) {
	rep := runExperimentBench(b, "fig10")
	reportCells(b, rep, 0, 1, "vsec")
}

func BenchmarkFig11(b *testing.B) {
	rep := runExperimentBench(b, "fig11")
	// Panel (b): swap write sectors at the tightest point.
	tab := rep.Tables[1]
	last := tab.Rows[len(tab.Rows)-1]
	for i, cfg := range tab.Columns[1:] {
		if v, err := strconv.ParseFloat(strings.Fields(last[i+1])[0], 64); err == nil {
			b.ReportMetric(v, "ksectors/"+cfg)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	rep := runExperimentBench(b, "fig12")
	tab := rep.Tables[0]
	last := tab.Rows[len(tab.Rows)-1]
	for i, cfg := range tab.Columns[1:] {
		if v, err := strconv.ParseFloat(strings.Fields(last[i+1])[0], 64); err == nil {
			b.ReportMetric(v, "vmin/"+cfg)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	rep := runExperimentBench(b, "fig13")
	tab := rep.Tables[0]
	last := tab.Rows[len(tab.Rows)-1]
	for i, cfg := range tab.Columns[1:] {
		if v, err := strconv.ParseFloat(strings.Fields(last[i+1])[0], 64); err == nil {
			b.ReportMetric(v, "vsec/"+cfg)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	rep := runExperimentBench(b, "fig14")
	tab := rep.Tables[0]
	last := tab.Rows[len(tab.Rows)-1] // most guests
	for i, cfg := range tab.Columns[1:] {
		if v, err := strconv.ParseFloat(strings.Fields(last[i+1])[0], 64); err == nil {
			b.ReportMetric(v, "vsec/"+cfg)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	rep := runExperimentBench(b, "fig15")
	if len(rep.Notes) > 0 {
		f := strings.Fields(rep.Notes[0])
		// "mean |tracked - clean cache| = X MB over N samples"
		for i, tok := range f {
			if tok == "=" && i+1 < len(f) {
				if v, err := strconv.ParseFloat(f[i+1], 64); err == nil {
					b.ReportMetric(v, "MB-err")
				}
			}
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	rep := runExperimentBench(b, "tab1")
	reportCells(b, rep, 0, 3, "loc")
}

func BenchmarkTable2(b *testing.B) {
	rep := runExperimentBench(b, "tab2")
	reportCells(b, rep, 0, 1, "vsec")
}

func BenchmarkOverhead(b *testing.B) {
	rep := runExperimentBench(b, "overhead")
	for _, row := range rep.Tables[0].Rows {
		pct := strings.TrimSuffix(strings.TrimPrefix(row[3], "+"), "%")
		if v, err := strconv.ParseFloat(pct, 64); err == nil {
			b.ReportMetric(v, "pct/"+strings.ReplaceAll(row[0], " ", "_"))
		}
	}
}

func BenchmarkWindows(b *testing.B) {
	rep := runExperimentBench(b, "windows")
	reportCells(b, rep, 0, 1, "vsec_base")
}

func BenchmarkAblations(b *testing.B) {
	runExperimentBench(b, "ablation")
}
