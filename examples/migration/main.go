// Migration: the paper's §7 future work, implemented. After a cache-heavy
// workload, compare a naive stop-and-copy migration against a
// mapping-assisted one: VSwapper's block↔page associations let the
// destination re-read named pages from shared storage instead of shipping
// their contents.
//
//	go run ./examples/migration
package main

import (
	"fmt"

	"vswapsim"
)

func main() {
	m := vswapsim.NewMachine(vswapsim.MachineConfig{Seed: 21, HostMemPages: 4 << 30 / 4096})
	vm := m.NewVM(vswapsim.VMConfig{
		Name:       "guest0",
		MemPages:   512 << 20 / 4096,
		LimitPages: 256 << 20 / 4096,
		DiskBlocks: 20 << 30 / 4096,
		Mapper:     true,
		Preventer:  true,
		GuestAPF:   true,
	})
	m.Env.Go("driver", func(p *vswapsim.Proc) {
		vm.Boot(p)
		vswapsim.SeqRead(vm, vswapsim.SeqReadConfig{FileMB: 200}).Wait(p)
		vswapsim.AllocTouch(vm, vswapsim.AllocTouchConfig{SizeMB: 64}).Wait(p)

		naive := vm.Migrate(p, vswapsim.MigrationConfig{UseMappings: false})
		assisted := vm.Migrate(p, vswapsim.MigrationConfig{UseMappings: true})

		show := func(label string, r vswapsim.MigrationResult) {
			fmt.Printf("%-18s wire %6.1f MB  downtime %5.2fs  (mapping-only %d, skipped %d pages)\n",
				label,
				float64(r.BytesSent)/(1<<20),
				r.Duration.Seconds(),
				r.Plan.MappingOnly, r.Plan.Skippable)
		}
		fmt.Println("stop-and-copy migration of a 512MB guest over 10GbE:")
		show("content copy:", naive)
		show("mapping-assisted:", assisted)
		m.Shutdown()
	})
	m.Run()
}
