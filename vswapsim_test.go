package vswapsim

import (
	"testing"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README shows.
func TestPublicAPIQuickstart(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 1, HostMemPages: 1 << 30 / 4096})
	vm := m.NewVM(VMConfig{
		Name:       "guest0",
		MemPages:   128 << 20 / 4096,
		LimitPages: 32 << 20 / 4096,
		DiskBlocks: 2 << 30 / 4096,
		Mapper:     true,
		Preventer:  true,
		GuestAPF:   true,
	})
	var res Result
	m.Env.Go("driver", func(p *Proc) {
		vm.Boot(p)
		Warmup(vm, 2048).Wait(p)
		res = SeqRead(vm, SeqReadConfig{FileMB: 64}).Wait(p)
		m.Shutdown()
	})
	m.Run()
	if res.Killed || res.Runtime() <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments", len(ids))
	}
	rep, err := RunExperiment("tab1", ExperimentOptions{})
	if err != nil || len(rep.Tables) == 0 {
		t.Fatalf("tab1: %v", err)
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestPublicAPIBalloonManager(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 2, HostMemPages: 256 << 20 / 4096})
	vm := m.NewVM(VMConfig{
		Name:       "g",
		MemPages:   128 << 20 / 4096,
		DiskBlocks: 1 << 30 / 4096,
		GuestAPF:   true,
	})
	mgr := NewBalloonManager(m, BalloonConfig{})
	m.Env.Go("driver", func(p *Proc) {
		vm.Boot(p)
		mgr.Start()
		p.Sleep(5 * Second)
		mgr.Stop()
		m.Shutdown()
	})
	m.Run()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Duration {
		m := NewMachine(MachineConfig{Seed: 9, HostMemPages: 1 << 30 / 4096})
		vm := m.NewVM(VMConfig{
			Name: "g", MemPages: 128 << 20 / 4096, LimitPages: 32 << 20 / 4096,
			DiskBlocks: 2 << 30 / 4096, GuestAPF: true,
		})
		var d Duration
		m.Env.Go("driver", func(p *Proc) {
			vm.Boot(p)
			d = Pbzip2(vm, Pbzip2Config{InputMB: 32, Threads: 4}).Wait(p).Runtime()
			m.Shutdown()
		})
		m.Run()
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
