// Package audit is the invariant-audit harness: a machine-checked
// correctness oracle that can run after every simulated event (test mode)
// and asserts the global invariants the fault-injection layer is supposed
// to preserve — no page mapped twice, swap-slot refcounts consistent,
// pathology and fault counters monotone, the virtual clock monotonic —
// on top of hostmm's own structural Audit.
//
// Attach it before Machine.Run; afterwards call Final (or Err) and treat
// a non-nil error as a failed run, replayable from the seed and the fault
// plan spec.
package audit

import (
	"fmt"

	"vswapsim/internal/hostmm"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// monotoneCounters never decrease over a run; the auditor snapshots and
// re-checks them on every pass.
var monotoneCounters = []string{
	metrics.SilentSwapWrites,
	metrics.StaleSwapReads,
	metrics.FalseSwapReads,
	metrics.HostSwapOuts,
	metrics.HostSwapIns,
	metrics.HostMajorFaults,
	metrics.HostMinorFaults,
	metrics.DiskOps,
	metrics.FaultDiskReadErrors,
	metrics.FaultDiskWriteErrors,
	metrics.FaultDiskDelays,
	metrics.FaultDiskRetries,
	metrics.FaultDiskExhausted,
	metrics.FaultSwapInTransient,
	metrics.FaultSwapInRetries,
	metrics.FaultSwapInPoisoned,
	metrics.FaultSlotRefusals,
	metrics.FaultBalloonRefusals,
	metrics.FaultEmuStarved,
	metrics.FaultMapperPoisoned,
}

// Auditor checks a machine's global invariants, strided across simulated
// events. It records the first violation and stops checking (the state is
// already corrupt; later failures would only obscure the origin).
type Auditor struct {
	m       *hyper.Machine
	every   int
	tick    int
	checks  int64
	lastNow sim.Time
	mono    map[string]int64
	err     error
	// hist is a bounded ring of one-line summaries of the most recent
	// checks; crash-diagnostics bundles embed it so a killed or panicked
	// run shows how far the invariants were last known to hold.
	hist []string
}

// histCap bounds how many recent check summaries History retains.
const histCap = 8

// Attach hooks an auditor into the machine's event loop, running one full
// Check every `every` events (minimum 1). A full check is O(pages), so
// large simulations should stride; tiny unit tests can afford every=1.
// Attach before Machine.Run; read Err or Final after.
func Attach(m *hyper.Machine, every int) *Auditor {
	if every < 1 {
		every = 1
	}
	a := &Auditor{m: m, every: every, mono: make(map[string]int64)}
	m.Env.SetAfterEvent(a.step)
	return a
}

// Detach removes the event hook.
func (a *Auditor) Detach() { a.m.Env.SetAfterEvent(nil) }

// Checks reports how many full audits ran.
func (a *Auditor) Checks() int64 { return a.checks }

// Err returns the first recorded violation, or nil.
func (a *Auditor) Err() error { return a.err }

// History returns one-line summaries of the most recent checks (oldest
// first, at most histCap). The content is a pure function of the run, so
// failure records embedding it stay byte-identical across serial and
// parallel sweeps.
func (a *Auditor) History() []string {
	out := make([]string, len(a.hist))
	copy(out, a.hist)
	return out
}

func (a *Auditor) note(s string) {
	if len(a.hist) == histCap {
		copy(a.hist, a.hist[1:])
		a.hist = a.hist[:histCap-1]
	}
	a.hist = append(a.hist, s)
}

// Final runs one last check (so short runs audit at least once) and
// returns the first violation seen over the whole run, or nil.
func (a *Auditor) Final() error {
	if a.err == nil {
		if err := a.Check(); err != nil {
			a.err = fmt.Errorf("at %v: %w", a.m.Env.Now(), err)
		}
	}
	return a.err
}

func (a *Auditor) step() {
	if a.err != nil {
		return
	}
	a.tick++
	if a.tick < a.every {
		return
	}
	a.tick = 0
	if err := a.Check(); err != nil {
		a.err = fmt.Errorf("at %v: %w", a.m.Env.Now(), err)
	}
}

// Group audits several machines that share one event loop (the cluster
// layer runs N hosts on one sim.Env). A sim.Env carries a single
// after-event hook, so the group installs one hook and strides a full
// per-machine audit across all members. Violations carry the host label.
type Group struct {
	env      *sim.Env
	every    int
	tick     int
	labels   []string
	auditors []*Auditor
	err      error
}

// AttachGroup hooks a group auditor into the shared event loop, auditing
// every machine once per `every` events (minimum 1). Attach before the
// env runs; read Final afterwards. labels name the hosts in violation
// messages and must parallel ms.
func AttachGroup(env *sim.Env, ms []*hyper.Machine, labels []string, every int) *Group {
	if every < 1 {
		every = 1
	}
	g := &Group{env: env, every: every, labels: labels}
	for _, m := range ms {
		g.auditors = append(g.auditors, &Auditor{m: m, every: 1, mono: make(map[string]int64)})
	}
	env.SetAfterEvent(g.step)
	return g
}

// Detach removes the event hook.
func (g *Group) Detach() { g.env.SetAfterEvent(nil) }

// Err returns the first recorded violation, or nil.
func (g *Group) Err() error { return g.err }

// History returns the members' recent check summaries, labeled by host.
func (g *Group) History() []string {
	var out []string
	for i, a := range g.auditors {
		for _, line := range a.History() {
			out = append(out, g.labels[i]+": "+line)
		}
	}
	return out
}

func (g *Group) step() {
	if g.err != nil {
		return
	}
	g.tick++
	if g.tick < g.every {
		return
	}
	g.tick = 0
	for i, a := range g.auditors {
		if a.err != nil {
			continue
		}
		if err := a.Check(); err != nil {
			a.err = fmt.Errorf("at %v: %w", a.m.Env.Now(), err)
			g.err = fmt.Errorf("host %s: %w", g.labels[i], a.err)
			return
		}
	}
}

// Final runs one last check on every member and returns the first
// violation seen over the whole run, or nil.
func (g *Group) Final() error {
	if g.err != nil {
		return g.err
	}
	for i, a := range g.auditors {
		if err := a.Final(); err != nil {
			g.err = fmt.Errorf("host %s: %w", g.labels[i], err)
			return g.err
		}
	}
	return nil
}

// Check runs one full audit pass and returns the first violation found.
func (a *Auditor) Check() error {
	err := a.check()
	if err == nil {
		a.note(fmt.Sprintf("audit #%d at %v: ok", a.checks, a.m.Env.Now()))
	} else {
		a.note(fmt.Sprintf("audit #%d at %v: VIOLATION: %v", a.checks, a.m.Env.Now(), err))
	}
	return err
}

func (a *Auditor) check() error {
	a.checks++

	// 1. Clock monotonic.
	now := a.m.Env.Now()
	if now < a.lastNow {
		return fmt.Errorf("clock went backwards: %v after %v", now, a.lastNow)
	}
	a.lastNow = now

	// 2. Host-MM structural invariants (lists, charges, swap refcounts).
	if err := a.m.MM.Audit(); err != nil {
		return err
	}

	// 3. Cross-layer page invariants over every materialized page.
	seen := make(map[*hostmm.Page]string)
	var pageErr error
	for _, vm := range a.m.VMs {
		vm := vm
		vm.EachPage(func(pg *hostmm.Page) {
			if pageErr != nil {
				return
			}
			where := fmt.Sprintf("%s/page%d", vm.Cfg.Name, pg.ID)
			if prev, dup := seen[pg]; dup {
				pageErr = fmt.Errorf("page mapped twice: %s and %s", prev, where)
				return
			}
			seen[pg] = where
			if pg.Owner != vm.CG {
				pageErr = fmt.Errorf("%s: owned by cgroup %s, not %s", where, pg.Owner.Name, vm.CG.Name)
				return
			}
			if pg.EPT && !pg.State.Resident() {
				pageErr = fmt.Errorf("%s: EPT-mapped but %s", where, pg.State)
				return
			}
			if pg.State == hostmm.SwappedOut {
				if pg.SwapSlot < 0 {
					pageErr = fmt.Errorf("%s: swapped out without a slot", where)
					return
				}
				if a.m.MM.Swap.Owner(pg.SwapSlot) != pg {
					pageErr = fmt.Errorf("%s: swapped out to slot %d owned by someone else", where, pg.SwapSlot)
					return
				}
			}
		})
		if pageErr != nil {
			return pageErr
		}
	}

	// 4. Pathology and fault counters only move forward.
	for _, name := range monotoneCounters {
		v := a.m.Met.Get(name)
		if v < a.mono[name] {
			return fmt.Errorf("counter %s went backwards: %d after %d", name, v, a.mono[name])
		}
		a.mono[name] = v
	}
	return nil
}
