package experiment

import (
	"fmt"

	"vswapsim/internal/hyper"
	"vswapsim/internal/workload"
)

// fleetSchemes is the cloud-density configuration set: the two unmanaged
// extremes. Ballooning at this guest count would need the MOM controller
// to police hundreds of targets; the point of the entry is the swapper's
// behavior when uncooperative overcommit is the only tool, which is also
// what keeps the cell fast enough to benchmark.
var fleetSchemes = []Scheme{Baseline, VSwapper}

// fleetDynCfg sizes one cloud-density guest: many small (nominal 128 MB)
// single-VCPU guests packed onto a nominal 8 GB host at ~1.6x commit,
// each running a proportionally small Metis word-count (the same workload
// as the paper's ten-guest scale-up) — consolidation density rather than
// the per-guest pressure of the paper's figures. Nominal sizes stay above
// the 8 MB scaling floor so -scale keeps the overcommit ratio intact.
func fleetDynCfg() dynCfg {
	return dynCfg{
		memMB: 128, hostMB: 8 * 1024, vcpus: 1, staggerSec: 1, diskMB: 256,
		job: func(o Options, vm *hyper.VM) *workload.Job {
			return workload.Metis(vm, workload.MetisConfig{
				InputMB: o.mb(48),
				TableMB: o.mb(64),
			})
		},
	}
}

// FleetN measures cloud-density consolidation: 100+ small guests on one
// overcommitted host, swap-only versus VSwapper. The paper's experiments
// stop at ten guests (Fig. 14); this entry extrapolates the same phased
// scale-up to the guest counts of a dense cloud node and doubles as the
// simulator's large-fleet performance benchmark (BENCH_sim.json).
func FleetN(o Options) *Report {
	o = o.normalized()
	counts := []int{100, 200}
	if o.Quick {
		counts = []int{100}
	}
	rep := &Report{
		ID:        "fleetN",
		Title:     "Cloud-density fleet on one overcommitted host",
		PaperNote: "beyond Fig. 14: 100+ small guests at ~1.6x commit, swap-only vs vswapper",
	}
	tab := &Table{Title: "mean guest runtime [sec]", Columns: []string{"guests"}}
	for _, s := range fleetSchemes {
		tab.Columns = append(tab.Columns, s.String())
	}
	grid := dynamicGrid(o, "fleetN", counts, fleetSchemes, fleetDynCfg())
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range fleetSchemes {
			row = append(row, renderDynCell(grid[i*len(fleetSchemes)+j]))
		}
		tab.Add(row...)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}
