// Dynamicload: the paper's §5.2 scenario — several MapReduce guests start
// ten seconds apart on an overcommitted host while a MOM-like balloon
// manager adjusts balloons. Ballooning alone reacts too slowly; VSwapper
// keeps the fallback path cheap.
//
//	go run ./examples/dynamicload
package main

import (
	"fmt"

	"vswapsim"
)

func run(label string, useVSwapper, useBalloonMgr bool) {
	const guests = 4
	m := vswapsim.NewMachine(vswapsim.MachineConfig{
		Seed:         11,
		HostMemPages: 2560 << 20 / 4096, // 2.5 GiB host for 4 x 1 GiB guests
	})
	vms := make([]*vswapsim.VM, guests)
	for i := range vms {
		vms[i] = m.NewVM(vswapsim.VMConfig{
			Name:       fmt.Sprintf("guest%d", i),
			MemPages:   1 << 30 / 4096, // 1 GiB each: overcommitted
			VCPUs:      2,
			DiskBlocks: 20 << 30 / 4096,
			Mapper:     useVSwapper,
			Preventer:  useVSwapper,
			GuestAPF:   true,
		})
	}
	var mgr *vswapsim.BalloonManager
	if useBalloonMgr {
		mgr = vswapsim.NewBalloonManager(m, vswapsim.BalloonConfig{})
	}

	var mean vswapsim.Duration
	m.Env.Go("driver", func(p *vswapsim.Proc) {
		for _, vm := range vms {
			vm.Boot(p)
		}
		if mgr != nil {
			mgr.Start()
		}
		jobs := make([]*vswapsim.Job, guests)
		for i, vm := range vms {
			jobs[i] = vswapsim.Metis(vm, vswapsim.MetisConfig{InputMB: 150, TableMB: 512})
			if i < guests-1 {
				p.Sleep(10 * vswapsim.Second)
			}
		}
		var total vswapsim.Duration
		for _, j := range jobs {
			total += j.Wait(p).Runtime()
		}
		mean = total / guests
		if mgr != nil {
			mgr.Stop()
		}
		m.Shutdown()
	})
	m.Run()
	fmt.Printf("%-28s mean guest runtime %6.1fs\n", label, mean.Seconds())
}

func main() {
	fmt.Println("4 phased MapReduce guests (1GB each) on a 2.5GB host")
	run("balloon manager only:", false, true)
	run("baseline swapping only:", false, false)
	run("vswapper only:", true, false)
	run("balloon + vswapper:", true, true)
}
