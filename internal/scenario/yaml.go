// Package scenario is the declarative experiment DSL: a YAML file
// declares a fleet of guests, the schemes to compare, a workload, an
// optional timeline of timed events (balloon actions, workload phases,
// fault-plan arming, migration probes) and assertions over the resulting
// metrics. Parsing is strict — unknown fields, duplicate keys, tabs in
// indentation and out-of-range values are rejected with line/column
// positions — and the parsed Scenario compiles onto the exact experiment
// machinery the hand-coded figures use (see internal/experiment), so a
// YAML-defined figure reproduces its Go counterpart byte-for-byte.
//
// This file is the YAML-subset parser. The repository is stdlib-only, so
// rather than importing a YAML library it implements the small block
// subset the schema needs: nested mappings, block sequences ("- item",
// including inline mappings on the dash line), flow sequences of scalars
// ("[a, b]"), single- and double-quoted scalars, and comments. Anchors,
// aliases, multi-document streams, flow mappings and block scalars are
// deliberately unsupported; the parser reports them as errors instead of
// guessing.
package scenario

import (
	"fmt"
	"strings"
)

// ParseError is a positioned scenario error. File is filled by Load.
type ParseError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("line %d, col %d: %s", e.Line, e.Col, e.Msg)
}

// pos is a 1-based source position.
type pos struct {
	line, col int
}

func errAt(p pos, format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

type nodeKind uint8

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	default:
		return "sequence"
	}
}

// node is one parsed YAML value.
type node struct {
	pos
	kind   nodeKind
	scalar string
	quoted bool // scalar came quoted: always a string, never a number/bool
	keys   []string
	vals   map[string]*node
	kpos   map[string]pos // key positions, for unknown/duplicate reporting
	items  []*node
}

// srcline is one significant (non-blank, non-comment) source line.
type srcline struct {
	no     int // 1-based
	indent int // leading spaces
	text   string
}

// splitLines prepares the line list: comments stripped, blank lines
// dropped, tabs in indentation rejected.
func splitLines(data []byte) ([]srcline, error) {
	var out []srcline
	for no, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, errAt(pos{no + 1, indent + 1},
				"tab character in indentation (use spaces)")
		}
		text := strings.TrimRight(stripComment(line[indent:]), " \t")
		if text == "" {
			continue
		}
		if indent == 0 && (text == "---" || text == "...") {
			continue // document markers are tolerated and ignored
		}
		out = append(out, srcline{no: no + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, honoring quotes. A '#'
// begins a comment only at the start of the content or after whitespace.
func stripComment(s string) string {
	var inS, inD bool
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '\\' && inD && i+1 < len(s):
			i++
		case c == '#' && !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

type parser struct {
	ls []srcline
	i  int
}

// parseDocument parses a whole scenario file into its root mapping.
func parseDocument(data []byte) (*node, error) {
	ls, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(ls) == 0 {
		return nil, errAt(pos{1, 1}, "empty scenario document")
	}
	if ls[0].indent != 0 {
		return nil, errAt(pos{ls[0].no, ls[0].indent + 1},
			"top-level content must not be indented")
	}
	p := &parser{ls: ls}
	root, err := p.parseValue(0)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.ls) {
		l := p.ls[p.i]
		return nil, errAt(pos{l.no, l.indent + 1}, "unexpected content after document")
	}
	if root.kind != mapNode {
		return nil, errAt(root.pos, "top level must be a mapping, got %s", root.kind)
	}
	return root, nil
}

// parseValue parses the block value starting at the current line, whose
// indentation must be exactly indent.
func (p *parser) parseValue(indent int) (*node, error) {
	cur := p.ls[p.i]
	if cur.text == "-" || strings.HasPrefix(cur.text, "- ") {
		return p.parseSeq(indent)
	}
	if _, _, ok := findKey(cur.text); ok {
		return p.parseMap(indent)
	}
	// A bare scalar on its own line (e.g. the value of "key:" placed on
	// the next line).
	p.i++
	return parseScalarToken(cur.text, pos{cur.no, cur.indent + 1})
}

// parseMap parses consecutive "key: value" lines at exactly indent.
func (p *parser) parseMap(indent int) (*node, error) {
	first := p.ls[p.i]
	nd := &node{
		kind: mapNode,
		pos:  pos{first.no, first.indent + 1},
		vals: map[string]*node{},
		kpos: map[string]pos{},
	}
	for p.i < len(p.ls) {
		cur := p.ls[p.i]
		if cur.indent < indent {
			break
		}
		if cur.indent > indent {
			return nil, errAt(pos{cur.no, cur.indent + 1}, "unexpected indentation")
		}
		if cur.text == "-" || strings.HasPrefix(cur.text, "- ") {
			return nil, errAt(pos{cur.no, cur.indent + 1},
				"sequence item in mapping context")
		}
		key, rest, ok := findKey(cur.text)
		if !ok {
			return nil, errAt(pos{cur.no, cur.indent + 1},
				"expected 'key: value', got %q", cur.text)
		}
		kp := pos{cur.no, cur.indent + 1}
		if err := checkKey(key, kp); err != nil {
			return nil, err
		}
		if _, dup := nd.vals[key]; dup {
			return nil, errAt(kp, "duplicate key %q (first at line %d)",
				key, nd.kpos[key].line)
		}
		p.i++
		var val *node
		var err error
		if rest == "" {
			if p.i < len(p.ls) && p.ls[p.i].indent > indent {
				val, err = p.parseValue(p.ls[p.i].indent)
			} else {
				// "key:" with nothing nested — an empty scalar; decoders
				// reject it where a value is required.
				val = &node{kind: scalarNode, pos: pos{cur.no, cur.indent + len(key) + 2}}
			}
		} else {
			// Keys cannot contain ':' (checkKey), so the first colon is
			// the split point; the value starts after it and any spaces.
			ci := strings.IndexByte(cur.text, ':')
			after := cur.text[ci+1:]
			lead := len(after) - len(strings.TrimLeft(after, " "))
			val, err = parseInline(rest, pos{cur.no, cur.indent + ci + lead + 2})
		}
		if err != nil {
			return nil, err
		}
		nd.keys = append(nd.keys, key)
		nd.vals[key] = val
		nd.kpos[key] = kp
	}
	return nd, nil
}

// parseSeq parses consecutive "- item" lines at exactly indent. An item
// with content on the dash line is re-parsed at the content's column, so
// "- name: x" + deeper continuation lines form one inline mapping.
func (p *parser) parseSeq(indent int) (*node, error) {
	first := p.ls[p.i]
	nd := &node{kind: seqNode, pos: pos{first.no, first.indent + 1}}
	for p.i < len(p.ls) {
		cur := p.ls[p.i]
		if cur.indent != indent || (cur.text != "-" && !strings.HasPrefix(cur.text, "- ")) {
			if cur.indent > indent {
				return nil, errAt(pos{cur.no, cur.indent + 1}, "unexpected indentation")
			}
			break
		}
		rest := strings.TrimPrefix(cur.text, "-")
		content := strings.TrimLeft(rest, " ")
		if content == "" {
			p.i++
			if p.i >= len(p.ls) || p.ls[p.i].indent <= indent {
				return nil, errAt(pos{cur.no, cur.indent + 1}, "empty sequence item")
			}
			item, err := p.parseValue(p.ls[p.i].indent)
			if err != nil {
				return nil, err
			}
			nd.items = append(nd.items, item)
			continue
		}
		// Re-anchor the line at the content's own column and parse a
		// normal block value there; continuation lines at that column
		// extend the item.
		contentIndent := cur.indent + 1 + (len(rest) - len(content))
		p.ls[p.i] = srcline{no: cur.no, indent: contentIndent, text: content}
		item, err := p.parseValue(contentIndent)
		if err != nil {
			return nil, err
		}
		nd.items = append(nd.items, item)
	}
	return nd, nil
}

// findKey locates the key/value split of a mapping line: the first ':'
// that ends the line or is followed by a space.
func findKey(text string) (key, rest string, ok bool) {
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c == '"' || c == '\'' {
			return "", "", false // quoted scalar line, not a mapping entry
		}
		if c == ':' && (i+1 == len(text) || text[i+1] == ' ') {
			return strings.TrimRight(text[:i], " "), strings.TrimSpace(text[i+1:]), true
		}
	}
	return "", "", false
}

// checkKey enforces the schema's identifier shape for mapping keys.
func checkKey(key string, at pos) error {
	if key == "" {
		return errAt(at, "empty mapping key")
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '-' || c == '.'):
		default:
			return errAt(at, "invalid mapping key %q", key)
		}
	}
	return nil
}

// parseInline parses a value that sits on the same line as its key: a
// flow sequence "[a, b]" or a scalar.
func parseInline(s string, at pos) (*node, error) {
	if strings.HasPrefix(s, "{") {
		return nil, errAt(at, "flow mappings ('{...}') are not supported; use block style")
	}
	if strings.HasPrefix(s, "[") {
		return parseFlowSeq(s, at)
	}
	return parseScalarToken(s, at)
}

// parseFlowSeq parses "[a, b, c]" with scalar elements only.
func parseFlowSeq(s string, at pos) (*node, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, errAt(at, "unterminated flow sequence %q", s)
	}
	body := s[1 : len(s)-1]
	nd := &node{kind: seqNode, pos: at}
	if strings.TrimSpace(body) == "" {
		return nd, nil
	}
	elems, offs, err := splitFlow(body, at)
	if err != nil {
		return nil, err
	}
	for i, e := range elems {
		t := strings.TrimSpace(e)
		if t == "" {
			return nil, errAt(at, "empty element in flow sequence")
		}
		ep := pos{at.line, at.col + 1 + offs[i] + strings.Index(e, t)}
		if strings.ContainsAny(t, "[]{}") {
			return nil, errAt(ep, "nested collections are not allowed in flow sequences")
		}
		item, err := parseScalarToken(t, ep)
		if err != nil {
			return nil, err
		}
		nd.items = append(nd.items, item)
	}
	return nd, nil
}

// splitFlow splits a flow-sequence body on top-level commas, honoring
// quotes, returning the pieces and their byte offsets.
func splitFlow(body string, at pos) ([]string, []int, error) {
	var elems []string
	var offs []int
	start := 0
	var inS, inD bool
	for i := 0; i < len(body); i++ {
		switch c := body[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '\\' && inD && i+1 < len(body):
			i++
		case c == ',' && !inS && !inD:
			elems = append(elems, body[start:i])
			offs = append(offs, start)
			start = i + 1
		}
	}
	if inS || inD {
		return nil, nil, errAt(at, "unterminated quote in flow sequence")
	}
	elems = append(elems, body[start:])
	offs = append(offs, start)
	return elems, offs, nil
}

// parseScalarToken parses one scalar: double-quoted (with \" \\ \n \t
// escapes), single-quoted (with '' escape), or plain.
func parseScalarToken(s string, at pos) (*node, error) {
	nd := &node{kind: scalarNode, pos: at}
	switch {
	case strings.HasPrefix(s, "\""):
		body, err := unquoteDouble(s, at)
		if err != nil {
			return nil, err
		}
		nd.scalar, nd.quoted = body, true
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") || strings.Count(s, "'")%2 != 0 {
			return nil, errAt(at, "unterminated single-quoted scalar %q", s)
		}
		nd.scalar = strings.ReplaceAll(s[1:len(s)-1], "''", "'")
		nd.quoted = true
	default:
		if strings.ContainsAny(s, "\"'") {
			return nil, errAt(at, "quote inside plain scalar %q (quote the whole value)", s)
		}
		nd.scalar = s
	}
	return nd, nil
}

func unquoteDouble(s string, at pos) (string, error) {
	if len(s) < 2 || !strings.HasSuffix(s, "\"") {
		return "", errAt(at, "unterminated double-quoted scalar %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			if c == '"' {
				return "", errAt(at, "unescaped quote inside double-quoted scalar %q", s)
			}
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", errAt(at, "trailing backslash in %q", s)
		}
		switch body[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", errAt(at, "unsupported escape \\%c in %q", body[i], s)
		}
	}
	return b.String(), nil
}
