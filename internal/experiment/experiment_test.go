package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts runs experiments at quarter scale with trimmed sweeps.
func quickOpts() Options { return Options{Seed: 42, Scale: 0.25, Quick: true} }

// cellFloat parses a numeric cell, returning NaN-ish failure as (0,false).
func cellFloat(s string) (float64, bool) {
	s = strings.Fields(s)[0]
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"a", "bb"}}
	tab.Add("1", "2")
	out := tab.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "bb") || !strings.Contains(out, "1") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(Registry) < 14 {
		t.Fatalf("registry has %d entries", len(Registry))
	}
	for _, id := range IDs() {
		e, err := ByID(id)
		if err != nil || e.Run == nil {
			t.Fatalf("broken registry entry %q", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFig3ShapeQuick(t *testing.T) {
	rep := Fig3(quickOpts())
	tab := rep.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	vals := map[string]float64{}
	for _, r := range tab.Rows {
		v, ok := cellFloat(r[1])
		if !ok {
			t.Fatalf("config %s did not complete: %q", r[0], r[1])
		}
		vals[r[0]] = v
	}
	if !(vals["balloon+base"] < vals["baseline"] && vals["vswapper"] < vals["baseline"]) {
		t.Fatalf("ordering wrong: %v", vals)
	}
	if vals["baseline"] < 3*vals["vswapper"] {
		t.Fatalf("speedup too small: %v", vals)
	}
}

func TestFig9ShapeQuick(t *testing.T) {
	rep := Fig9(quickOpts())
	if len(rep.Tables) != 4 {
		t.Fatalf("panels = %d", len(rep.Tables))
	}
	// Panel (d): baseline writes swap sectors, vswapper almost none.
	var baseW, vswapW float64
	d := rep.Tables[3]
	for _, row := range d.Rows {
		if v, ok := cellFloat(row[1]); ok {
			baseW += v
		}
		if v, ok := cellFloat(row[2]); ok {
			vswapW += v
		}
	}
	if baseW == 0 {
		t.Fatal("baseline produced no silent swap writes")
	}
	if vswapW > baseW/10 {
		t.Fatalf("vswapper swap writes %.0f vs baseline %.0f: not eliminated", vswapW, baseW)
	}
}

func TestFig10ShapeQuick(t *testing.T) {
	rep := Fig10(quickOpts())
	tab := rep.Tables[0]
	get := func(cfg string, col int) string {
		for _, r := range tab.Rows {
			if r[0] == cfg {
				return r[col]
			}
		}
		t.Fatalf("missing row %s", cfg)
		return ""
	}
	baseFalse, _ := cellFloat(get("baseline", 3))
	vswapFalse, _ := cellFloat(get("vswapper", 3))
	if baseFalse == 0 {
		t.Fatal("baseline shows no false reads")
	}
	if vswapFalse != 0 {
		t.Fatalf("vswapper shows %v false reads", vswapFalse)
	}
	baseRT, okB := cellFloat(get("baseline", 1))
	vswapRT, okV := cellFloat(get("vswapper", 1))
	if okB && okV && vswapRT >= baseRT {
		t.Fatalf("vswapper (%v) not faster than baseline (%v)", vswapRT, baseRT)
	}
}

func TestTable1CountsCode(t *testing.T) {
	rep := Table1(Options{})
	tab := rep.Tables[0]
	total, ok := cellFloat(tab.Rows[2][3])
	if !ok || total < 200 {
		t.Fatalf("implausible LoC count: %v", tab.Rows)
	}
}

func TestOverheadSmall(t *testing.T) {
	rep := Overhead(quickOpts())
	for _, row := range rep.Tables[0].Rows {
		pct := strings.TrimSuffix(strings.TrimPrefix(row[3], "+"), "%")
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			t.Fatalf("bad slowdown cell %q", row[3])
		}
		if v > 6 {
			t.Fatalf("workload %s overhead %.1f%% with plentiful memory", row[0], v)
		}
	}
}

func TestFig15TrackingAccuracy(t *testing.T) {
	rep := Fig15(quickOpts())
	if len(rep.Notes) == 0 {
		t.Fatal("no accuracy note")
	}
	// The tracked size should roughly follow the clean cache; compare the
	// last sampled row.
	tab := rep.Tables[0]
	if len(tab.Rows) == 0 {
		t.Fatal("no samples")
	}
	last := tab.Rows[len(tab.Rows)-1]
	clean, _ := cellFloat(last[2])
	tracked, _ := cellFloat(last[3])
	if clean > 4 && (tracked < clean*0.5 || tracked > clean*2.5) {
		t.Fatalf("tracked %.1fMB vs clean cache %.1fMB: not coinciding", tracked, clean)
	}
}

func TestTable2Shape(t *testing.T) {
	rep := Table2(quickOpts())
	tab := rep.Tables[0]
	on, _ := cellFloat(tab.Rows[0][1])
	off, _ := cellFloat(tab.Rows[1][1])
	if !(on < off) {
		t.Fatalf("balloon-enabled (%v) not faster than disabled (%v)", on, off)
	}
	onW, _ := cellFloat(tab.Rows[0][3])
	offW, _ := cellFloat(tab.Rows[1][3])
	if !(onW < offW) {
		t.Fatalf("balloon-enabled swap writes (%v) not lower (%v)", onW, offW)
	}
}
