// Command vswapsim runs one of the paper's experiments and prints its
// tables.
//
// Usage:
//
//	vswapsim -list
//	vswapsim -run fig3 [-scale 1.0] [-seed 42] [-quick] [-parallel N]
//	         [-json] [-tracering N] [-faults spec] [-auditevery N]
//	         [-maxevents N] [-celltimeout d] [-diagdir dir]
//	         [-cpuprofile f] [-memprofile f]
//
// With -json the experiment's machine-readable report is printed instead
// of the text tables: tables and notes plus one run record per simulated
// machine (counters, latency histograms, per-phase time accounting, and —
// with -tracering — the trace tail). The JSON bytes are bit-identical
// between serial (-parallel 1) and parallel runs.
//
// Run hardening: -maxevents and -celltimeout arm a per-cell watchdog that
// kills runaway or livelocked cells; each kill (or panic) degrades to a
// structured failure record in the report, and -diagdir writes one
// replayable crash-diagnostics bundle per failed cell. SIGINT cancels
// in-flight cells and still emits a valid partial report marked
// "incomplete".
//
// Exit codes: 0 success, 1 failed cells (or runtime error), 2 usage,
// 3 incomplete (canceled by SIGINT or a fatal wall-clock breach).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"vswapsim/internal/experiment"
	"vswapsim/internal/fault"
)

// Exit codes.
const (
	exitOK         = 0
	exitFailures   = 1
	exitUsage      = 2
	exitIncomplete = 3
)

// cliConfig holds the parsed command line.
type cliConfig struct {
	list        bool
	run         string
	scale       float64
	seed        uint64
	quick       bool
	parallel    int
	jsonOut     bool
	traceRing   int
	faults      fault.Plan
	auditEvery  int
	maxEvents   uint64
	cellTimeout time.Duration
	diagDir     string
	cpuProfile  string
	memProfile  string
}

// parseArgs parses args (without the program name). Parse errors are
// reported on stderr by the FlagSet itself.
func parseArgs(args []string) (cliConfig, error) {
	fs := flag.NewFlagSet("vswapsim", flag.ContinueOnError)
	var c cliConfig
	fs.BoolVar(&c.list, "list", false, "list available experiments")
	fs.StringVar(&c.run, "run", "", "experiment id to run (e.g. fig3)")
	fs.Float64Var(&c.scale, "scale", 1.0, "size scale factor (1.0 = paper-sized)")
	fs.Uint64Var(&c.seed, "seed", 42, "random seed")
	fs.BoolVar(&c.quick, "quick", false, "trim sweeps for a fast smoke run")
	fs.IntVar(&c.parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent simulator runs (1 = serial; results are identical either way)")
	fs.BoolVar(&c.jsonOut, "json", false,
		"emit the machine-readable report (tables + per-run counters/histograms/phases) as JSON")
	fs.IntVar(&c.traceRing, "tracering", 0,
		"attach a trace ring of this capacity to every machine; run reports embed its tail")
	faultSpec := fs.String("faults", "",
		"fault-injection spec, e.g. 'disk-read-err:0.01;disk-lat:0.05:2ms;swapin-fail:0.02'")
	fs.IntVar(&c.auditEvery, "auditevery", 0,
		"run the invariant auditor every N simulated events (0 = off; a violation aborts the run)")
	fs.Uint64Var(&c.maxEvents, "maxevents", 0,
		"per-cell simulated-event budget; a breach kills only that cell, deterministically (0 = unlimited)")
	fs.DurationVar(&c.cellTimeout, "celltimeout", 0,
		"per-cell wall-clock budget (e.g. 30s); a breach is fatal and cancels the rest of the run (0 = unlimited)")
	fs.StringVar(&c.diagDir, "diagdir", "",
		"write one replayable crash-diagnostics bundle (JSON) per failed cell into this directory")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.scale <= 0 || c.scale > 16 {
		return c, fmt.Errorf("invalid -scale %v: must be in (0, 16]", c.scale)
	}
	if c.parallel < 1 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 1", c.parallel)
	}
	if c.traceRing < 0 {
		return c, fmt.Errorf("invalid -tracering %d: must be >= 0", c.traceRing)
	}
	if c.auditEvery < 0 {
		return c, fmt.Errorf("invalid -auditevery %d: must be >= 0", c.auditEvery)
	}
	if c.cellTimeout < 0 {
		return c, fmt.Errorf("invalid -celltimeout %v: must be >= 0", c.cellTimeout)
	}
	var err error
	if c.faults, err = fault.ParsePlan(*faultSpec); err != nil {
		return c, fmt.Errorf("invalid -faults: %v", err)
	}
	return c, nil
}

// printFailures renders the failure records of a run as text, including
// the trace-ring tail each record captured at the kill site.
func printFailures(w io.Writer, fails []experiment.FailureRecord) {
	fmt.Fprintf(w, "\n%d cell(s) FAILED:\n", len(fails))
	for _, f := range fails {
		fmt.Fprintf(w, "  [%s] %s\n    %s\n", f.Kind, f.Label, f.Message)
		if n := len(f.Trace); n > 0 {
			for _, ev := range f.Trace[max(0, n-4):] {
				fmt.Fprintf(w, "    trace %8dns %-9s %s\n", ev.AtNS, ev.Kind, ev.Msg)
			}
		}
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseArgs(args)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(stderr, "vswapsim: %v (run 'vswapsim -h' for usage)\n", err)
		}
		return exitUsage
	}

	if c.list || c.run == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range experiment.Registry {
			fmt.Fprintf(stdout, "  %-9s %-45s (%s)\n", e.ID, e.Title, e.PaperNote)
		}
		if c.run == "" && !c.list {
			return exitUsage
		}
		return exitOK
	}

	e, err := experiment.ByID(c.run)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFailures
	}

	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM cancel in-flight cells via the watchdog poll; the
	// partial report is still emitted, marked incomplete. stop doubles as
	// the fatal-breach cancel hook.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.Options{
		Seed: c.seed, Scale: c.scale, Quick: c.quick,
		Parallel: c.parallel, TraceRing: c.traceRing,
		Faults: c.faults, AuditEvery: c.auditEvery,
		MaxEvents: c.maxEvents, CellTimeout: c.cellTimeout,
		Ctx: ctx, CancelRun: stop,
	}
	start := time.Now()
	r := experiment.RunAll([]experiment.Experiment{e}, opts, nil)[0]
	elapsed := time.Since(start)
	incomplete := ctx.Err() != nil

	if c.jsonOut {
		doc := experiment.BuildJSONDocument(opts,
			[]*experiment.JSONReport{experiment.BuildJSON(r.Report, r.Runs, r.Failures)})
		doc.Incomplete = incomplete
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
	} else {
		fmt.Fprint(stdout, r.Report.String())
		fmt.Fprintf(stdout, "(generated in %v wall time, -parallel %d)\n", elapsed.Round(time.Millisecond), c.parallel)
		if len(r.Failures) > 0 {
			printFailures(stdout, r.Failures)
		}
		if incomplete {
			fmt.Fprintln(stdout, "\nRUN INCOMPLETE: canceled before every cell finished")
		}
	}

	if c.diagDir != "" && len(r.Failures) > 0 {
		paths, err := experiment.WriteDiagBundles(c.diagDir, "vswapsim", e.ID, opts, r.Failures)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		fmt.Fprintf(stderr, "wrote %d crash-diagnostics bundle(s) to %s\n", len(paths), c.diagDir)
	}

	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
	}

	switch {
	case incomplete:
		return exitIncomplete
	case len(r.Failures) > 0:
		return exitFailures
	}
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
