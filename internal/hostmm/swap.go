package hostmm

import (
	"fmt"

	"vswapsim/internal/disk"
)

// SwapArea is the host swap partition: a slot allocator over a disk region
// plus the swap cache. Slots are handed out lowest-free-first (as Linux
// does), which is what makes swap placement decay: the free set fragments
// as pages cycle in and out, so consecutive guest pages stop landing in
// consecutive slots.
type SwapArea struct {
	region disk.Region
	free   []bool // free[i] == true when slot i is unallocated
	inUse  int
	hint   int64 // lowest slot that might be free

	// Cluster allocation (Linux SWAPFILE_CLUSTER): consecutive
	// allocations draw from a run of free slots so swap writeback stays
	// sequential while free runs last; once the area fragments,
	// allocation degrades to lowest-free and placement decays.
	next        int64 // next slot inside the current cluster (-1 = none)
	clusterEnd  int64
	clusterHint int64 // where the next cluster search resumes
	scanFailed  bool  // no free cluster exists until enough slots free up
	freesSince  int   // slots freed since the last failed cluster scan

	// owner records, per slot, the page whose content the slot holds (nil
	// when free). A dense slice: slots are a small, fixed keyspace and the
	// fault path reads ownership for every slot of a readahead cluster, so
	// this must be an indexed load, not a hashed map probe.
	owner []*Page

	// onFree, when non-nil, observes every slot release (the swap backend
	// hooks it to drop fast-tier copies when their slot dies).
	onFree func(slot int64)
}

// SlotsPerCluster mirrors Linux's SWAPFILE_CLUSTER.
const SlotsPerCluster = 256

// NewSwapArea returns a swap area over the given region.
func NewSwapArea(region disk.Region) *SwapArea {
	s := &SwapArea{
		region: region,
		free:   make([]bool, region.Blocks),
		owner:  make([]*Page, region.Blocks),
		next:   -1,
	}
	for i := range s.free {
		s.free[i] = true
	}
	return s
}

// Slots reports the total slot count.
func (s *SwapArea) Slots() int64 { return s.region.Blocks }

// InUse reports the number of allocated slots.
func (s *SwapArea) InUse() int { return s.inUse }

// Alloc assigns a slot to page pg and returns it, preferring to continue
// the current free cluster. It returns -1 if the area is full.
func (s *SwapArea) Alloc(pg *Page) int64 {
	// Continue the current cluster while it has free slots.
	if s.next >= 0 {
		for s.next < s.clusterEnd {
			i := s.next
			s.next++
			if s.free[i] {
				return s.take(i, pg)
			}
		}
		s.next = -1
	}
	// Find a fresh run of SlotsPerCluster free slots, resuming the search
	// where it last left off; when the area is known fragmented, skip the
	// scan until enough slots were freed to possibly form a cluster.
	if !s.scanFailed {
		if start := s.findCluster(); start >= 0 {
			s.next = start + 1
			s.clusterEnd = start + SlotsPerCluster
			return s.take(start, pg)
		}
		s.scanFailed = true
		s.freesSince = 0
	}
	// Fragmented: degrade to lowest-free (placement decay).
	for i := s.hint; i < s.region.Blocks; i++ {
		if s.free[i] {
			return s.take(i, pg)
		}
	}
	return -1
}

// findCluster locates a run of SlotsPerCluster free slots, scanning from
// clusterHint with wrap-around; -1 if none exists.
func (s *SwapArea) findCluster() int64 {
	scan := func(from, to int64) int64 {
		run := int64(0)
		for i := from; i < to; i++ {
			if s.free[i] {
				run++
				if run == SlotsPerCluster {
					start := i - run + 1
					s.clusterHint = i + 1
					return start
				}
			} else {
				run = 0
			}
		}
		return -1
	}
	if start := scan(s.clusterHint, s.region.Blocks); start >= 0 {
		return start
	}
	end := s.clusterHint + SlotsPerCluster
	if end > s.region.Blocks {
		end = s.region.Blocks
	}
	return scan(0, end)
}

func (s *SwapArea) take(i int64, pg *Page) int64 {
	s.free[i] = false
	if i == s.hint {
		s.hint = i + 1
	}
	s.inUse++
	s.owner[i] = pg
	return i
}

// Free releases a slot.
func (s *SwapArea) Free(slot int64) {
	if slot < 0 || slot >= s.region.Blocks || s.free[slot] {
		panic(fmt.Sprintf("hostmm: freeing bad swap slot %d", slot))
	}
	s.free[slot] = true
	if slot < s.hint {
		s.hint = slot
	}
	s.inUse--
	s.owner[slot] = nil
	if s.scanFailed {
		s.freesSince++
		if s.freesSince >= SlotsPerCluster {
			s.scanFailed = false // a cluster may exist again; rescan
		}
	}
	if s.onFree != nil {
		s.onFree(slot)
	}
}

// ownedSlots counts the slots with a recorded owner (used by tests and the
// audit to cross-check the allocator's in-use count).
func (s *SwapArea) ownedSlots() int {
	n := 0
	for _, pg := range s.owner {
		if pg != nil {
			n++
		}
	}
	return n
}

// fragmented reports whether no whole free cluster remains (used by tests
// asserting placement decay).
func (s *SwapArea) fragmented() bool {
	run := int64(0)
	for i := int64(0); i < s.region.Blocks; i++ {
		if s.free[i] {
			run++
			if run >= SlotsPerCluster {
				return false
			}
		} else {
			run = 0
		}
	}
	return true
}

// Owner returns the page stored at slot, or nil if the slot is free or out
// of range.
func (s *SwapArea) Owner(slot int64) *Page {
	if slot < 0 || slot >= int64(len(s.owner)) {
		return nil
	}
	return s.owner[slot]
}

// Phys translates a slot to a physical disk block.
func (s *SwapArea) Phys(slot int64) int64 { return s.region.Phys(slot) }

// ClusterRun returns the window of allocated slots that a swap-in at slot
// would read in one go: Linux reads an aligned cluster of `cluster` slots
// around the fault and skips holes. The returned slice lists the slots (in
// ascending order, always including `slot`) grouped into maximal
// disk-contiguous runs by the caller.
func (s *SwapArea) ClusterRun(slot int64, cluster int) []int64 {
	return s.AppendClusterRun(nil, slot, cluster)
}

// AppendClusterRun is ClusterRun appending into dst (reusing its capacity),
// for callers that recycle the slot buffer across faults.
func (s *SwapArea) AppendClusterRun(dst []int64, slot int64, cluster int) []int64 {
	if cluster <= 1 {
		return append(dst, slot)
	}
	base := slot - slot%int64(cluster)
	end := base + int64(cluster)
	if end > s.region.Blocks {
		end = s.region.Blocks
	}
	for i := base; i < end; i++ {
		if !s.free[i] {
			dst = append(dst, i)
		}
	}
	return dst
}
