package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"vswapsim/internal/experiment"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Serving-layer metric names. They live in one metrics.Set per Server and
// render on /metrics in Prometheus text format (dots become underscores:
// serve.jobs.accepted → serve_jobs_accepted).
const (
	MetricJobsAccepted     = "serve.jobs.accepted"
	MetricJobsRejectedFull = "serve.jobs.rejected.queuefull"
	MetricJobsRejectedRate = "serve.jobs.rejected.ratelimit"
	MetricJobsRejectedBad  = "serve.jobs.rejected.invalid"
	MetricJobsCompleted    = "serve.jobs.completed"
	MetricJobsFailed       = "serve.jobs.failed"
	MetricJobsIncomplete   = "serve.jobs.incomplete"
	MetricJobsRecovered    = "serve.jobs.recovered"
	MetricCacheHits        = "serve.cache.hits"
	MetricCacheMisses      = "serve.cache.misses"
	MetricCacheCorrupt     = "serve.cache.corrupt"
	MetricCacheWrites      = "serve.cache.writes"
	MetricJobWallNS        = "serve.job.wall.ns"
)

// Runner executes one compiled job and returns its document bytes plus
// the outcome summary. The default, ExperimentRunner, drives the real
// executor; tests inject stubs to exercise queueing, crashes and drains
// without simulating.
type Runner func(ctx context.Context, req JobRequest, e experiment.Experiment, o experiment.Options) ([]byte, Outcome, error)

// ExperimentRunner is the production Runner: it wires the job's context
// into the executor's cancellation plumbing (a fatal wall breach cancels
// this job only, never the daemon), runs the experiment, and marshals the
// job-granular document (compact bytes — exactly what gets cached).
func ExperimentRunner(ctx context.Context, req JobRequest, e experiment.Experiment, o experiment.Options) ([]byte, Outcome, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	o.Ctx = runCtx
	o.CancelRun = cancel
	doc, res := experiment.RunDocument(e, o)
	data, err := json.Marshal(doc)
	if err != nil {
		return nil, Outcome{}, fmt.Errorf("marshal document: %w", err)
	}
	return data, Outcome{
		Failures:          len(res.Failures),
		AssertionFailures: res.Report.AssertionFailures,
		Incomplete:        doc.Incomplete,
		Records:           res.Failures,
	}, nil
}

// Config parameterizes a Server. Zero values take the documented
// defaults.
type Config struct {
	// CacheDir roots the content-addressed result cache (required).
	CacheDir string
	// StatePath, when non-empty, is where Drain persists unfinished jobs
	// and where New looks for jobs to recover.
	StatePath string
	// Workers bounds how many jobs execute concurrently (default 2).
	Workers int
	// QueueDepth bounds how many accepted jobs may wait (default 16).
	// When the queue is full, POST /jobs answers 429 with Retry-After.
	QueueDepth int
	// Parallel is the per-job executor width when the request leaves it 0
	// (default GOMAXPROCS).
	Parallel int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// RatePerSec/RateBurst arm a global token-bucket admission limiter on
	// POST /jobs (0 = unlimited).
	RatePerSec float64
	RateBurst  int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxEventsCap / CellTimeoutCap are server-side ceilings on the
	// per-job watchdog budgets: requests may tighten but never exceed
	// them (0 = no ceiling).
	MaxEventsCap   uint64
	CellTimeoutCap time.Duration
	// Heartbeat is the event-stream keepalive interval (default 5s);
	// WriteTimeout is the per-write deadline on event streams (default
	// 10s) — a client that cannot drain a write within it is dropped.
	Heartbeat    time.Duration
	WriteTimeout time.Duration
	// DiagDir, when non-empty, receives one replayable crash-diagnostics
	// bundle per failed cell or crashed job.
	DiagDir string
	// Fingerprint overrides the code fingerprint in cache keys (default
	// CodeFingerprint()). Tests use it to simulate version mismatches.
	Fingerprint string
	// Runner overrides job execution (default ExperimentRunner).
	Runner Runner
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Fingerprint == "" {
		c.Fingerprint = CodeFingerprint()
	}
	if c.Runner == nil {
		c.Runner = ExperimentRunner
	}
	return c
}

// job is the server-side record of one submitted job. All mutable fields
// are guarded by Server.mu.
type job struct {
	id  string
	seq uint64
	req JobRequest // normalized
	key string

	state      string
	cached     bool
	doc        []byte
	outcome    Outcome
	errMsg     string
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	events []Event
	subs   map[chan Event]bool
	cancel context.CancelFunc
}

// Server is the simulation-as-a-service daemon core: admission, the
// bounded queue, the worker pool, the result cache, job bookkeeping, and
// the HTTP API. Create with New, start workers with Start, shut down with
// Drain.
type Server struct {
	cfg   Config
	cache *Cache

	met *metrics.Set
	// counter handles, resolved once; all updates happen under mu.
	cAccepted, cRejFull, cRejRate, cRejBad *metrics.Counter
	cCompleted, cFailed, cIncomplete       *metrics.Counter
	cRecovered                             *metrics.Counter
	cCacheHit, cCacheMiss, cCacheCorrupt   *metrics.Counter
	cCacheWrite                            *metrics.Counter
	hWall                                  *metrics.Histogram

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when running drops
	jobs     map[string]*job
	nextSeq  uint64
	running  int
	draining bool
	deferred []*job // received by a worker during drain; persisted, not run

	queue      chan *job
	queueClose sync.Once

	workerWG    sync.WaitGroup
	runCtx      context.Context
	forceCancel context.CancelFunc

	limiter *tokenBucket
}

// persistedState is the drain-time queue snapshot (StatePath contents).
type persistedState struct {
	Version int            `json:"version"`
	NextSeq uint64         `json:"next_seq"`
	Pending []persistedJob `json:"pending"`
}

type persistedJob struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
}

// New builds a Server, opening the cache and recovering any queue state a
// previous drain persisted: recovered jobs keep their original ids and
// re-enter the queue in submission order, so a restart completes exactly
// the work the shutdown accepted (determinism makes the re-runs produce
// the same bytes the original runs would have).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		met:   metrics.NewSet(),
		jobs:  make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.cAccepted = s.met.Counter(MetricJobsAccepted)
	s.cRejFull = s.met.Counter(MetricJobsRejectedFull)
	s.cRejRate = s.met.Counter(MetricJobsRejectedRate)
	s.cRejBad = s.met.Counter(MetricJobsRejectedBad)
	s.cCompleted = s.met.Counter(MetricJobsCompleted)
	s.cFailed = s.met.Counter(MetricJobsFailed)
	s.cIncomplete = s.met.Counter(MetricJobsIncomplete)
	s.cRecovered = s.met.Counter(MetricJobsRecovered)
	s.cCacheHit = s.met.Counter(MetricCacheHits)
	s.cCacheMiss = s.met.Counter(MetricCacheMisses)
	s.cCacheCorrupt = s.met.Counter(MetricCacheCorrupt)
	s.cCacheWrite = s.met.Counter(MetricCacheWrites)
	s.hWall = s.met.Histogram(MetricJobWallNS)
	s.runCtx, s.forceCancel = context.WithCancel(context.Background())
	if cfg.RatePerSec > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(cfg.RatePerSec) + 1
		}
		s.limiter = newTokenBucket(cfg.RatePerSec, burst)
	}

	recovered, nextSeq, err := s.loadState()
	if err != nil {
		return nil, err
	}
	depth := cfg.QueueDepth
	if len(recovered) > depth {
		depth = len(recovered)
	}
	s.queue = make(chan *job, depth)
	s.nextSeq = nextSeq
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.appendEvent(j, StateQueued, "recovered from persisted queue state")
		s.queue <- j
		s.cRecovered.Inc()
	}
	return s, nil
}

// loadState reads and consumes the persisted queue snapshot, validating
// each pending request (a job that no longer validates — say, after a
// registry change — is dropped rather than wedging the queue).
func (s *Server) loadState() ([]*job, uint64, error) {
	if s.cfg.StatePath == "" {
		return nil, 1, nil
	}
	data, err := os.ReadFile(s.cfg.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 1, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: read state: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, 0, fmt.Errorf("serve: corrupt state file %s: %w", s.cfg.StatePath, err)
	}
	if err := os.Remove(s.cfg.StatePath); err != nil {
		return nil, 0, fmt.Errorf("serve: consume state: %w", err)
	}
	var out []*job
	for _, p := range st.Pending {
		req := p.Request.normalize()
		if _, err := req.validate(); err != nil {
			continue
		}
		out = append(out, &job{
			id:         p.ID,
			req:        req,
			key:        Key(req, s.cfg.Fingerprint),
			state:      StateQueued,
			enqueuedAt: time.Now(),
			subs:       make(map[chan Event]bool),
		})
	}
	next := st.NextSeq
	if next == 0 {
		next = 1
	}
	for i, j := range out {
		j.seq = next + uint64(i)
	}
	if len(out) > 0 {
		next = out[len(out)-1].seq + 1
	}
	return out, next, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
}

// Metrics exposes the server's metric set (for tests).
func (s *Server) Metrics() func(name string) int64 {
	return func(name string) int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.met.Get(name)
	}
}

// worker pulls jobs off the queue until it closes. During a drain,
// received jobs are deferred for persistence instead of run — "stop
// admitting, finish in-flight, persist the rest".
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.mu.Lock()
		if s.draining {
			s.deferred = append(s.deferred, j)
			s.mu.Unlock()
			continue
		}
		s.running++
		j.state = StateRunning
		j.startedAt = time.Now()
		jctx, cancel := context.WithCancel(s.runCtx)
		j.cancel = cancel
		s.appendEvent(j, StateRunning, "")
		s.mu.Unlock()

		payload, out, err := s.safeRun(jctx, j)
		cancel()
		s.finishJob(j, payload, out, err)
	}
}

// safeRun executes one job under the daemon's panic shield: a panic that
// escapes the executor's own cell/experiment shields (request
// compilation, document assembly, a buggy injected Runner) becomes a
// structured FailureRecord and a failed job — never a dead daemon.
func (s *Server) safeRun(ctx context.Context, j *job) (payload []byte, out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec := experiment.NewPanicFailure("job/"+j.id+"/"+j.req.target(), j.req.Seed, r)
			out = Outcome{Failure: &rec}
			payload = nil
			err = fmt.Errorf("job panicked: %s", rec.Message)
		}
	}()
	e, cerr := j.req.experiment()
	if cerr != nil {
		return nil, Outcome{}, cerr
	}
	o := j.req.options(s.cfg.Parallel, s.cfg.MaxEventsCap, s.cfg.CellTimeoutCap)
	return s.cfg.Runner(ctx, j.req, e, o)
}

// finishJob records a completed execution: caches clean results, writes
// diag bundles for failed cells, updates counters, and publishes the
// terminal event.
func (s *Server) finishJob(j *job, payload []byte, out Outcome, err error) {
	// Only clean, complete runs enter the cache: no daemon-level error, no
	// failed cells, no failed assertions, not canceled mid-run. Everything
	// else recomputes on the next request — failure modes (wall kills,
	// cancellation) are not all deterministic, and a cache must never
	// launder one run's bad luck into everyone's answer.
	cacheable := err == nil && payload != nil &&
		!out.Incomplete && out.Failures == 0 && out.AssertionFailures == 0
	cached := false
	if cacheable {
		if werr := s.cache.Put(j.key, payload); werr == nil {
			cached = true
		}
	}
	s.writeDiagBundles(j, out)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	j.finishedAt = time.Now()
	j.doc = payload
	j.outcome = out
	if wall := j.finishedAt.Sub(j.startedAt); wall > 0 {
		s.hWall.Observe(sim.Duration(wall.Nanoseconds()))
	}
	if cached {
		s.cCacheWrite.Inc()
	}
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		s.cFailed.Inc()
		s.appendEvent(j, StateFailed, j.errMsg)
	} else {
		j.state = StateDone
		if out.Incomplete {
			s.cIncomplete.Inc()
		} else {
			s.cCompleted.Inc()
		}
		s.appendEvent(j, StateDone, fmt.Sprintf("failures=%d assertion_failures=%d incomplete=%v",
			out.Failures, out.AssertionFailures, out.Incomplete))
	}
	s.closeSubsLocked(j)
	s.cond.Broadcast()
}

// writeDiagBundles persists one replayable crash-diagnostics bundle per
// failure record when DiagDir is configured, mirroring the CLIs' -diagdir.
func (s *Server) writeDiagBundles(j *job, out Outcome) {
	if s.cfg.DiagDir == "" {
		return
	}
	recs := out.Records
	if out.Failure != nil {
		recs = append(append([]experiment.FailureRecord(nil), recs...), *out.Failure)
	}
	if len(recs) == 0 {
		return
	}
	o := j.req.options(s.cfg.Parallel, s.cfg.MaxEventsCap, s.cfg.CellTimeoutCap)
	target := j.req.target()
	replay := experiment.ReplayCommand("vswapsim", target, o)
	if j.req.Scenario != "" {
		replay = "POST the same scenario job to vswapsimd, or save the YAML and run: " +
			experiment.ScenarioReplayCommand("<scenario.yaml>", o)
	}
	dir := filepath.Join(s.cfg.DiagDir)
	if _, err := experiment.WriteDiagBundlesReplay(dir, "vswapsimd", target, replay, o, recs); err != nil {
		// Diagnostics are best-effort; the failure is already in the job.
		fmt.Fprintf(os.Stderr, "vswapsimd: writing diag bundles: %v\n", err)
	}
}

// appendEvent records and publishes one event. Callers hold mu.
// Publishing is non-blocking: a subscriber whose buffer is full is closed
// and dropped — a slow or stuck client cannot stall the daemon.
func (s *Server) appendEvent(j *job, state, msg string) {
	ev := Event{Seq: len(j.events) + 1, State: state, Msg: msg, AtMS: time.Now().UnixMilli()}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(j.subs, ch)
		}
	}
}

// closeSubsLocked ends every live event stream after the terminal event.
func (s *Server) closeSubsLocked(j *job) {
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// Drain shuts the server down gracefully: stop admitting, let in-flight
// jobs finish (canceling them through the executor's context plumbing if
// ctx expires first), stop the workers, and persist every accepted-but-
// unfinished job — queued, deferred, or canceled mid-run — to StatePath
// for restart recovery. clean reports whether every in-flight job got to
// finish on its own; a forced drain (canceled jobs, which re-run after
// restart) is not clean, and the daemon maps that to exit code 3.
func (s *Server) Drain(ctx context.Context) (clean bool, err error) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.running > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	clean = true
	select {
	case <-done:
	case <-ctx.Done():
		clean = false
		s.forceCancel() // in-flight watchdogs abort at their next poll
		<-done
	}

	// Stop the workers; anything still buffered in the channel is routed
	// to deferred by the draining check, then persisted below. (Safe from
	// racing submits: enqueue re-checks draining under mu, and draining was
	// published under mu before this point.)
	s.queueClose.Do(func() { close(s.queue) })
	s.workerWG.Wait()

	s.mu.Lock()
	pending := append([]*job(nil), s.deferred...)
	seen := make(map[string]bool, len(pending))
	for _, j := range pending {
		seen[j.id] = true
	}
	for _, j := range s.jobs {
		if seen[j.id] {
			continue
		}
		// Unstarted jobs, plus force-canceled ones whose partial document
		// is marked incomplete: both re-run after restart.
		if j.state == StateQueued || (terminal(j.state) && j.outcome.Incomplete) {
			pending = append(pending, j)
			seen[j.id] = true
		}
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].seq < pending[b].seq })
	st := persistedState{Version: 1, NextSeq: s.nextSeq}
	for _, j := range pending {
		st.Pending = append(st.Pending, persistedJob{ID: j.id, Request: j.req})
	}
	s.mu.Unlock()

	if err := s.persistState(st); err != nil {
		return clean, err
	}
	return clean, nil
}

// persistState writes the queue snapshot atomically (temp + rename), the
// same crash-safety discipline the result cache uses.
func (s *Server) persistState(st persistedState) error {
	if s.cfg.StatePath == "" || len(st.Pending) == 0 {
		return nil
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.cfg.StatePath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-state-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.cfg.StatePath)
}

// statusLocked renders a job's client-facing status. Callers hold mu.
func (s *Server) statusLocked(j *job) *JobStatus {
	st := &JobStatus{
		JobID:    j.id,
		State:    j.state,
		Cached:   j.cached,
		CacheKey: j.key,
		Request:  j.req,
	}
	if !j.enqueuedAt.IsZero() {
		st.EnqueuedAtMS = j.enqueuedAt.UnixMilli()
	}
	if !j.startedAt.IsZero() {
		st.StartedAtMS = j.startedAt.UnixMilli()
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAtMS = j.finishedAt.UnixMilli()
	}
	if terminal(j.state) {
		st.Failures = j.outcome.Failures
		st.AssertionFailures = j.outcome.AssertionFailures
		st.Incomplete = j.outcome.Incomplete
		st.Error = j.errMsg
		st.Failure = j.outcome.Failure
		st.Document = json.RawMessage(j.doc)
		st.ExitHint = exitHint(j)
	}
	return st
}

// exitHint maps a terminal job onto the CLI exit-code vocabulary:
// 0 ok, 1 failures (daemon error, failed cells, failed assertions),
// 3 incomplete (canceled mid-run).
func exitHint(j *job) int {
	switch {
	case j.outcome.Incomplete:
		return 3
	case j.state == StateFailed || j.outcome.Failures > 0 || j.outcome.AssertionFailures > 0:
		return 1
	}
	return 0
}

// tokenBucket is a minimal global rate limiter for POST /jobs.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

func (b *tokenBucket) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterSeconds renders the Retry-After header value (whole seconds,
// minimum 1 — the header does not speak fractions).
func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// handleSubmit is POST /jobs: admission control (rate limit, drain gate,
// body limit, validation), then cache lookup, then the bounded queue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil && !s.limiter.allow(time.Now()) {
		s.mu.Lock()
		s.cRejRate.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "rate limit exceeded"})
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining"})
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		s.mu.Lock()
		s.cRejBad.Inc()
		s.mu.Unlock()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed request: " + err.Error()})
		return
	}
	req = req.normalize()
	if _, err := req.validate(); err != nil {
		s.mu.Lock()
		s.cRejBad.Inc()
		s.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	key := Key(req, s.cfg.Fingerprint)
	payload, corrupt := s.cache.Get(key)

	s.mu.Lock()
	if payload != nil {
		// Cache hit: the job is born terminal, serving the stored bytes
		// verbatim — proven byte-identical to a cold run by test.
		j := s.newJobLocked(req, key)
		j.cached = true
		j.state = StateDone
		j.doc = payload
		j.finishedAt = j.enqueuedAt
		s.cAccepted.Inc()
		s.cCacheHit.Inc()
		s.cCompleted.Inc()
		s.appendEvent(j, StateDone, "served from cache")
		s.closeSubsLocked(j)
		st := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	if corrupt {
		s.cCacheCorrupt.Inc()
	}
	s.cCacheMiss.Inc()
	// Re-check draining under the same lock the enqueue happens under:
	// Drain publishes the flag under mu strictly before closing the queue,
	// so a send that observes !draining here cannot hit a closed channel.
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining"})
		return
	}
	j := s.newJobLocked(req, key)
	select {
	case s.queue <- j:
		s.cAccepted.Inc()
		s.appendEvent(j, StateQueued, "")
		st := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
	default:
		delete(s.jobs, j.id)
		s.nextSeq-- // the job never existed
		s.cRejFull.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusTooManyRequests,
			errorBody{Error: fmt.Sprintf("job queue full (%d queued)", cap(s.queue))})
	}
}

// newJobLocked allocates a job record. Callers hold mu.
func (s *Server) newJobLocked(req JobRequest, key string) *job {
	j := &job{
		id:         fmt.Sprintf("j-%d", s.nextSeq),
		seq:        s.nextSeq,
		req:        req,
		key:        key,
		state:      StateQueued,
		enqueuedAt: time.Now(),
		subs:       make(map[chan Event]bool),
	}
	s.nextSeq++
	s.jobs[j.id] = j
	return j
}

// handleGetJob is GET /jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents is GET /jobs/{id}/events: a server-sent-events stream of
// the job's progress. The full event history replays first (late or
// reconnecting subscribers lose nothing), then live events stream with
// heartbeat comments every Heartbeat. Every write carries a deadline: a
// client that cannot drain within WriteTimeout is disconnected rather
// than allowed to wedge a handler goroutine.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	history := append([]Event(nil), j.events...)
	var ch chan Event
	if !terminal(j.state) {
		ch = make(chan Event, 16)
		j.subs[ch] = true
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	writeEvent := func(ev Event) bool {
		rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		data, _ := json.Marshal(ev)
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, data); err != nil {
			return false
		}
		rc.Flush()
		return true
	}
	unsubscribe := func() {
		if ch == nil {
			return
		}
		s.mu.Lock()
		if j.subs != nil {
			delete(j.subs, ch)
		}
		s.mu.Unlock()
	}
	for _, ev := range history {
		if !writeEvent(ev) {
			unsubscribe()
			return
		}
	}
	if ch == nil {
		return // job already terminal: history is the whole story
	}
	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal event delivered (or we were dropped as slow)
			}
			if !writeEvent(ev) {
				unsubscribe()
				return
			}
		case <-hb.C:
			rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				unsubscribe()
				return
			}
			rc.Flush()
		case <-r.Context().Done():
			unsubscribe()
			return
		}
	}
}

// handleHealthz is GET /healthz: liveness plus the load picture.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := map[string]interface{}{
		"status":      "ok",
		"draining":    s.draining,
		"queue_depth": len(s.queue),
		"queue_cap":   cap(s.queue),
		"running":     s.running,
		"jobs":        len(s.jobs),
		"workers":     s.cfg.Workers,
	}
	if s.draining {
		body["status"] = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics is GET /metrics: the serving counters and histograms in
// Prometheus text format, plus live gauges for queue depth and running
// jobs.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.WritePrometheus(w)
	metrics.WritePromGauge(w, "serve.queue.depth", float64(len(s.queue)))
	metrics.WritePromGauge(w, "serve.queue.cap", float64(cap(s.queue)))
	metrics.WritePromGauge(w, "serve.jobs.running", float64(s.running))
	drain := 0.0
	if s.draining {
		drain = 1.0
	}
	metrics.WritePromGauge(w, "serve.draining", drain)
}
