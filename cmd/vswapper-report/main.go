// Command vswapper-report regenerates every table and figure of the
// paper's evaluation in one run, printing each report and, with -o, also
// writing the combined output to a file (the source of EXPERIMENTS.md's
// measured numbers).
//
// Experiments fan out on a bounded worker pool (-parallel, default
// GOMAXPROCS); the report content is bit-identical to a serial run and is
// always printed in registry order.
//
// Run hardening: -maxevents and -celltimeout arm a per-cell watchdog;
// killed or panicking cells degrade to structured failure records in the
// report, -diagdir writes one replayable crash-diagnostics bundle per
// failed cell, and SIGINT cancels in-flight cells while still emitting a
// valid partial report marked "incomplete".
//
// Exit codes: 0 success, 1 failed cells (or runtime error), 2 usage,
// 3 incomplete (canceled by SIGINT or a fatal wall-clock breach).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"vswapsim/internal/experiment"
	"vswapsim/internal/fault"
	"vswapsim/internal/serve"
	"vswapsim/internal/swapback"
)

// Exit codes.
const (
	exitOK         = 0
	exitFailures   = 1
	exitUsage      = 2
	exitIncomplete = 3
)

// cliConfig holds the parsed command line.
type cliConfig struct {
	scale       float64
	seed        uint64
	quick       bool
	out         string
	only        string
	csvDir      string
	parallel    int
	jsonOut     string
	traceRing   int
	faults      fault.Plan
	swapback    swapback.Kind
	swapPolicy  swapback.Policy
	auditEvery  int
	maxEvents   uint64
	cellTimeout time.Duration
	diagDir     string
	server      string

	// raw flag values kept verbatim for -server client mode.
	faultSpec      string
	swapbackName   string
	swapPolicyName string
}

// parseArgs parses args (without the program name). Parse errors are
// reported on stderr by the FlagSet itself.
func parseArgs(args []string) (cliConfig, error) {
	fs := flag.NewFlagSet("vswapper-report", flag.ContinueOnError)
	var c cliConfig
	fs.Float64Var(&c.scale, "scale", 1.0, "size scale factor (1.0 = paper-sized)")
	fs.Uint64Var(&c.seed, "seed", 42, "random seed")
	fs.BoolVar(&c.quick, "quick", false, "trim sweeps for a fast smoke run")
	fs.StringVar(&c.out, "o", "", "also write the combined report to this file")
	fs.StringVar(&c.only, "only", "", "comma-separated experiment id filter (e.g. fig5,fig11)")
	fs.StringVar(&c.csvDir, "csv", "", "also write each table as CSV into this directory")
	fs.IntVar(&c.parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent simulator runs (1 = serial; results are identical either way)")
	fs.StringVar(&c.jsonOut, "json", "",
		"write the combined machine-readable report (JSON) to this file (\"-\" = stdout)")
	fs.IntVar(&c.traceRing, "tracering", 0,
		"attach a trace ring of this capacity to every machine; run reports embed its tail")
	fs.StringVar(&c.faultSpec, "faults", "",
		"fault-injection spec, e.g. 'disk-read-err:0.01;disk-lat:0.05:2ms;swapin-fail:0.02'")
	fs.StringVar(&c.swapbackName, "swapback", "",
		"swap-backend tier: "+strings.Join(swapback.KindNames(), ", ")+" (empty = hdd, the raw swap device)")
	fs.StringVar(&c.swapPolicyName, "swappolicy", "",
		"tiering policy for backends with a fast tier: "+strings.Join(swapback.PolicyNames(), ", ")+" (empty = writeback)")
	fs.IntVar(&c.auditEvery, "auditevery", 0,
		"run the invariant auditor every N simulated events (0 = off; a violation aborts the run)")
	fs.Uint64Var(&c.maxEvents, "maxevents", 0,
		"per-cell simulated-event budget; a breach kills only that cell, deterministically (0 = unlimited)")
	fs.DurationVar(&c.cellTimeout, "celltimeout", 0,
		"per-cell wall-clock budget (e.g. 30s); a breach is fatal and cancels the rest of the run (0 = unlimited)")
	fs.StringVar(&c.diagDir, "diagdir", "",
		"write one replayable crash-diagnostics bundle (JSON) per failed cell into this directory")
	fs.StringVar(&c.server, "server", "",
		"run via a vswapsimd daemon at this base URL; repeated sweeps are served from its result cache")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.traceRing < 0 {
		return c, fmt.Errorf("invalid -tracering %d: must be >= 0", c.traceRing)
	}
	if c.scale <= 0 || c.scale > 16 {
		return c, fmt.Errorf("invalid -scale %v: must be in (0, 16]", c.scale)
	}
	if c.parallel < 1 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 1", c.parallel)
	}
	if c.auditEvery < 0 {
		return c, fmt.Errorf("invalid -auditevery %d: must be >= 0", c.auditEvery)
	}
	if c.cellTimeout < 0 {
		return c, fmt.Errorf("invalid -celltimeout %v: must be >= 0", c.cellTimeout)
	}
	var err error
	if c.faults, err = fault.ParsePlan(c.faultSpec); err != nil {
		return c, fmt.Errorf("invalid -faults: %v", err)
	}
	if c.swapback, err = swapback.ParseKind(c.swapbackName); err != nil {
		return c, fmt.Errorf("invalid -swapback: %v", err)
	}
	if c.swapPolicy, err = swapback.ParsePolicy(c.swapPolicyName); err != nil {
		return c, fmt.Errorf("invalid -swappolicy: %v", err)
	}
	if c.server != "" && (c.csvDir != "" || c.jsonOut != "" || c.diagDir != "") {
		return c, errors.New("-server is incompatible with -csv/-json/-diagdir (ask the daemon for documents instead)")
	}
	return c, nil
}

// selectExperiments applies the -only filter (a comma-separated id list)
// to the registry, preserving the caller's order.
func selectExperiments(only string) ([]experiment.Experiment, error) {
	if only == "" {
		return experiment.Registry, nil
	}
	var out []experiment.Experiment
	for _, id := range strings.Split(only, ",") {
		e, err := experiment.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func run(args []string, stdoutW, stderr io.Writer) int {
	c, err := parseArgs(args)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(stderr, "vswapper-report: %v (run 'vswapper-report -h' for usage)\n", err)
		}
		return exitUsage
	}
	exps, err := selectExperiments(c.only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFailures
	}
	if c.server != "" {
		return runViaServer(c, exps, stdoutW, stderr)
	}
	if c.csvDir != "" {
		if err := os.MkdirAll(c.csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
	}

	// With -json -, stdout carries the JSON document; the text report then
	// only goes to the -o file (or nowhere).
	var w io.Writer = stdoutW
	if c.jsonOut == "-" {
		w = io.Discard
	}
	if c.out != "" {
		f, err := os.Create(c.out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer f.Close()
		if c.jsonOut == "-" {
			w = f
		} else {
			w = io.MultiWriter(stdoutW, f)
		}
	}

	// SIGINT/SIGTERM cancel in-flight cells via the watchdog poll; the
	// partial report is still emitted, marked incomplete. stop doubles as
	// the fatal-breach cancel hook.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.Options{
		Seed: c.seed, Scale: c.scale, Quick: c.quick,
		Parallel: c.parallel, TraceRing: c.traceRing,
		Faults: c.faults, Swapback: c.swapback, SwapPolicy: c.swapPolicy,
		AuditEvery: c.auditEvery,
		MaxEvents:  c.maxEvents, CellTimeout: c.cellTimeout,
		Ctx: ctx, CancelRun: stop,
	}
	fmt.Fprintf(w, "VSwapper reproduction report (seed=%d scale=%.2f quick=%v parallel=%d)\n\n",
		c.seed, c.scale, c.quick, c.parallel)
	if !c.faults.Empty() {
		fmt.Fprintf(w, "fault injection active: %s (auditevery=%d)\n\n", c.faults, c.auditEvery)
	}
	if c.swapback != swapback.HDD || c.swapPolicy != swapback.PolicyWriteback {
		fmt.Fprintf(w, "swap backend: %s (policy %s)\n\n", c.swapback, c.swapPolicy)
	}
	start := time.Now()
	totalFails := 0
	results := experiment.RunAll(exps, opts, func(r experiment.RunResult) {
		fmt.Fprint(w, r.Report.String())
		fmt.Fprintf(w, "(%s generated in %v)\n\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
		if n := len(r.Failures); n > 0 {
			totalFails += n
			fmt.Fprintf(w, "%s: %d cell(s) FAILED:\n", r.Experiment.ID, n)
			for _, f := range r.Failures {
				fmt.Fprintf(w, "  [%s] %s: %s\n", f.Kind, f.Label, f.Message)
			}
			fmt.Fprintln(w)
		}
		if c.csvDir != "" {
			for i, tab := range r.Report.Tables {
				name := filepath.Join(c.csvDir, fmt.Sprintf("%s_%d.csv", r.Experiment.ID, i))
				if err := os.WriteFile(name, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintln(stderr, err)
				}
			}
		}
		if c.diagDir != "" && len(r.Failures) > 0 {
			paths, err := experiment.WriteDiagBundles(c.diagDir, "vswapper-report", r.Experiment.ID, opts, r.Failures)
			if err != nil {
				fmt.Fprintln(stderr, err)
			} else {
				fmt.Fprintf(stderr, "wrote %d crash-diagnostics bundle(s) to %s\n", len(paths), c.diagDir)
			}
		}
	})
	incomplete := ctx.Err() != nil
	fmt.Fprintf(w, "total wall time %v (-parallel %d)\n",
		time.Since(start).Round(time.Millisecond), c.parallel)
	if incomplete {
		fmt.Fprintln(w, "\nRUN INCOMPLETE: canceled before every cell finished")
	}

	if c.jsonOut != "" {
		reps := make([]*experiment.JSONReport, len(results))
		for i, r := range results {
			reps[i] = experiment.BuildJSON(r.Report, r.Runs, r.Failures)
		}
		doc := experiment.BuildJSONDocument(opts, reps)
		doc.Incomplete = incomplete
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		data = append(data, '\n')
		if c.jsonOut == "-" {
			stdoutW.Write(data)
		} else if err := os.WriteFile(c.jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
	}

	switch {
	case incomplete:
		return exitIncomplete
	case totalFails > 0:
		return exitFailures
	}
	return exitOK
}

// runViaServer is the thin -server client mode: one daemon job per
// selected experiment, in registry order, rendered from the returned
// documents. Repeated sweeps hit the daemon's result cache. The exit code
// is the worst job exit hint, mirroring local semantics.
func runViaServer(c cliConfig, exps []experiment.Experiment, stdoutW, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var w io.Writer = stdoutW
	if c.out != "" {
		f, err := os.Create(c.out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer f.Close()
		w = io.MultiWriter(stdoutW, f)
	}
	client := serve.NewClient(c.server)
	fmt.Fprintf(w, "VSwapper reproduction report (seed=%d scale=%.2f quick=%v, served by %s)\n\n",
		c.seed, c.scale, c.quick, c.server)
	worst := exitOK
	start := time.Now()
	hits := 0
	for _, e := range exps {
		st, err := client.Run(ctx, serve.JobRequest{
			ID: e.ID, Seed: c.seed, Scale: c.scale, Quick: c.quick,
			Parallel: c.parallel, TraceRing: c.traceRing,
			Faults: c.faultSpec, Swapback: c.swapbackName, SwapPolicy: c.swapPolicyName,
			AuditEvery: c.auditEvery, MaxEvents: c.maxEvents,
			CellTimeoutMS: c.cellTimeout.Milliseconds(),
		})
		if err != nil {
			fmt.Fprintf(stderr, "vswapper-report: %s: %v\n", e.ID, err)
			return exitFailures
		}
		if st.Cached {
			hits++
		}
		if st.Error != "" {
			fmt.Fprintf(stderr, "vswapper-report: %s failed: %s\n", e.ID, st.Error)
		}
		if len(st.Document) > 0 {
			var doc experiment.JSONDocument
			if err := json.Unmarshal(st.Document, &doc); err != nil {
				fmt.Fprintf(stderr, "vswapper-report: bad document for %s: %v\n", e.ID, err)
				return exitFailures
			}
			for _, rep := range doc.Experiments {
				fmt.Fprint(w, rep.Render())
				cache := "cold"
				if st.Cached {
					cache = "cache hit"
				}
				fmt.Fprintf(w, "(%s served: %s)\n\n", rep.ID, cache)
				if n := len(rep.Failures); n > 0 {
					fmt.Fprintf(w, "%s: %d cell(s) FAILED:\n", rep.ID, n)
					for _, f := range rep.Failures {
						fmt.Fprintf(w, "  [%s] %s: %s\n", f.Kind, f.Label, f.Message)
					}
					fmt.Fprintln(w)
				}
			}
		}
		if st.ExitHint > worst {
			worst = st.ExitHint
		}
	}
	fmt.Fprintf(w, "total wall time %v (%d of %d from cache)\n",
		time.Since(start).Round(time.Millisecond), hits, len(exps))
	return worst
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
