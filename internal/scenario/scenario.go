package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"vswapsim/internal/fault"
	"vswapsim/internal/swapback"
)

// This file decodes the parsed node tree into the typed Scenario and
// validates it. Every error is a *ParseError carrying the offending
// key's line/column, and unknown fields are rejected with the list of
// valid fields for that context.

// Modes.
const (
	ModeSingle  = "single"  // one controlled-memory guest per scheme (§5.1 shape)
	ModeDynamic = "dynamic" // a phased fleet per (guest count, scheme) cell (§5.2 shape)
	ModeCluster = "cluster" // a multi-host scheduler cell per remediation policy
)

// SchemeNames are the valid scheme identifiers, matching
// experiment.Scheme.String() exactly (enforced by a cross-package test).
var SchemeNames = []string{"baseline", "balloon+base", "mapper", "vswapper", "balloon+vswap"}

// Workload kinds.
const (
	KindSeqRead    = "seqread"
	KindAllocTouch = "alloctouch"
	KindMetis      = "metis"
)

// Timeline event kinds.
const (
	EvBalloonSet    = "balloon_set"
	EvWorkloadPhase = "workload_phase"
	EvInjectFaults  = "inject_faults"
	EvMigrate       = "migrate"
)

// Pseudo-metrics usable in assertions alongside raw counter names.
const (
	MetricRuntimeSec     = "workload.runtime_sec"      // single mode
	MetricKilled         = "workload.killed"           // both modes (0/1 or kill count)
	MetricMeanRuntimeSec = "workload.mean_runtime_sec" // dynamic mode

	// Cluster-mode latency quantiles (milliseconds). Cluster assertions
	// accept these plus any cluster.* fleet counter.
	MetricUnitP95  = "unit_p95_ms"
	MetricUnitP99  = "unit_p99_ms"
	MetricGuestP95 = "guest_p95_ms"
	MetricGuestP99 = "guest_p99_ms"
)

// ClusterPackings and ClusterRemediations are the valid cluster-mode
// policy identifiers, matching cluster.PackingNames/RemediationNames
// exactly (enforced by a cross-package test, like SchemeNames).
var (
	ClusterPackings     = []string{"first-fit", "worst-fit", "balanced-pressure"}
	ClusterRemediations = []string{"none", "reballoon", "migrate", "kill"}
)

// Ops are the assertion comparison operators.
var Ops = []string{"==", "!=", "<", "<=", ">", ">="}

// Scenario is one validated scenario file.
type Scenario struct {
	// Name is the scenario id; it seeds derived streams and becomes the
	// report ID, so a scenario named like a registry figure (e.g. "fig3")
	// reproduces that figure's report identity.
	Name      string
	Title     string
	PaperNote string
	Mode      string

	// FaultSpec/Faults is the always-armed baseline fault plan. The CLI's
	// -faults flag, when non-empty, replaces the scenario's entire fault
	// configuration (including inject_faults timeline events).
	FaultSpec string
	Faults    fault.Plan
	// AuditEvery enables the invariant auditor every N simulated events;
	// the CLI's -auditevery, when non-zero, takes precedence.
	AuditEvery int

	// Backends lists the swap-backend tiers the scenario runs against (the
	// top-level `backend:` field, scalar or sequence). Empty means "use the
	// CLI's -swapback" (the default hdd tier when the flag is absent). More
	// than one backend fans the single-mode grid out per tier; declaring
	// backends conflicts with a non-default CLI -swapback/-swappolicy.
	Backends []string
	// Policy names the tiering policy (`policy:`); empty means the CLI's
	// -swappolicy (default writeback).
	Policy string

	Fleet      Fleet
	Cluster    ClusterSpec
	Schemes    []SchemeRef
	Workload   Workload
	TableTitle string
	Panels     []Panel
	Timeline   []Event
	Assertions []Assertion
}

// ClusterSpec sizes a cluster-mode run: N overcommitted hosts, a guest
// fleet, a packing policy and the remediation policies under comparison.
// All sizes are paper-sized megabytes, scaled by the CLI's -scale like
// every other mode. Zero-valued tuning knobs take the cluster package's
// defaults.
type ClusterSpec struct {
	// Hosts/HostMB is the homogeneous form (`hosts: 4` + `host_mb: 1024`);
	// HostList is the explicit heterogeneous form (`hosts:` as a sequence
	// of {name, mem_mb} mappings). Exactly one form is set.
	Hosts    int
	HostMB   int
	HostList []ClusterHost

	Guests  int
	GuestMB int
	// WSMinPct/WSMaxPct bound the seeded per-guest working set as a
	// percent of GuestMB (`working_set_pct: [60, 95]`).
	WSMinPct, WSMaxPct int

	Units         int
	PhaseUnits    int
	UnitComputeMS int
	StaggerMS     int
	DiskMB        int

	Packing      string
	Remediations []string // the comparison axis (assertion "schemes")

	Threshold       float64
	SampleSec       int
	CooldownSec     int
	MaxCommitFactor float64
}

// ClusterHost is one explicitly-sized host.
type ClusterHost struct {
	Name  string
	MemMB int
}

// SchemeRef is one compared configuration, optionally with the paper's
// reference value (rendered as a "paper" column).
type SchemeRef struct {
	Name  string
	Paper string
}

// Fleet sizes the guests. All sizes are paper-sized megabytes; the CLI's
// -scale flag scales them exactly like the hand-coded figures.
type Fleet struct {
	// single mode
	MemoryMB        int  // believed guest memory (required)
	ActualMB        int  // cgroup allocation (required)
	HostMB          int  // physical host memory (0 = 4x memory_mb)
	VCPUs           int  // default 1 (single) / 2 (dynamic)
	Warmup          bool // touch all free guest memory before measuring
	BalloonMarginMB int  // static balloon headroom (0 = 16)

	// dynamic mode
	Counts      []int // guests-per-cell grid (required)
	QuickCounts []int // replaces Counts under -quick
	StaggerSec  int   // seconds between guest starts (0 = 10)
	DiskMB      int   // per-guest disk image (0 = 20480)
}

// Workload parameterizes the per-guest workload.
type Workload struct {
	Kind string

	// seqread
	FileMB          int
	Iterations      int
	QuickIterations int // replaces Iterations under -quick

	// alloctouch
	SizeMB int

	// metis
	InputMB int
	TableMB int
}

// Panel is one per-iteration output table (the Fig. 9 shape): either the
// workload's per-iteration runtimes or a counter delta per iteration.
type Panel struct {
	Title   string
	Source  string  // "runtime" | "counter"
	Counter string  // counter name when Source == "counter"
	Per     float64 // divisor applied before formatting (default 1)
}

// Event is one timed action, applied at AtSec virtual seconds after the
// measured body starts. Events apply only while the primary workload is
// still running.
type Event struct {
	AtSec float64
	Kind  string

	TargetMB int       // balloon_set: balloon target in MB
	Workload *Workload // workload_phase: background job launched at AtSec

	FaultSpec string     // inject_faults: plan armed at AtSec
	Faults    fault.Plan // parsed form

	BandwidthMBps float64 // migrate: link speed (0 = 1000)
	UseMappings   bool    // migrate: VSwapper mapping-assisted transfer
}

// Assertion checks a metric after the scenario ran. Exactly one of the
// two forms is set: threshold (Scheme + Value) or cross-scheme
// comparison (Left + Right).
type Assertion struct {
	Counter string
	Op      string

	Scheme string
	Value  float64

	Left  string
	Right string

	// Backend selects which declared backend's grid the assertion reads
	// (multi-backend single mode; "" = the first declared backend). Only
	// valid when the scenario declares a backend list.
	Backend string

	// Guests selects the dynamic-mode cell (0 = the largest count).
	Guests int
}

// Threshold reports whether this is the scheme-vs-literal form.
func (a Assertion) Threshold() bool { return a.Scheme != "" }

// String renders the assertion for failure messages.
func (a Assertion) String() string {
	c := a.Counter
	if a.Backend != "" {
		c += "@" + a.Backend
	}
	if a.Threshold() {
		return fmt.Sprintf("%s[%s] %s %g", c, a.Scheme, a.Op, a.Value)
	}
	return fmt.Sprintf("%s[%s] %s %s[%s]", c, a.Left, a.Op, c, a.Right)
}

// Compare applies the assertion's operator.
func (a Assertion) Compare(left, right float64) bool {
	switch a.Op {
	case "==":
		return left == right
	case "!=":
		return left != right
	case "<":
		return left < right
	case "<=":
		return left <= right
	case ">":
		return left > right
	case ">=":
		return left >= right
	}
	return false
}

// Load reads and parses a scenario file; errors carry the path.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		if pe, ok := err.(*ParseError); ok {
			pe.File = path
		}
		return nil, err
	}
	return sc, nil
}

// Parse parses and validates one scenario document.
func Parse(data []byte) (*Scenario, error) {
	root, err := parseDocument(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	sc := d.scenario(root)
	if d.err != nil {
		return nil, d.err
	}
	return sc, nil
}

// decoder accumulates the first error; helpers become no-ops afterwards,
// keeping the decode functions linear.
type decoder struct {
	err error
}

func (d *decoder) fail(at pos, format string, args ...any) {
	if d.err == nil {
		d.err = errAt(at, format, args...)
	}
}

// obj wraps a mapping node for field-by-field consumption.
type obj struct {
	d     *decoder
	n     *node
	ctx   string
	known map[string]bool
}

func (d *decoder) obj(n *node, ctx string) *obj {
	if d.err != nil {
		return &obj{d: d, ctx: ctx, known: map[string]bool{}}
	}
	if n.kind != mapNode {
		d.fail(n.pos, "%s must be a mapping, got %s", ctx, n.kind)
		return &obj{d: d, ctx: ctx, known: map[string]bool{}}
	}
	return &obj{d: d, n: n, ctx: ctx, known: map[string]bool{}}
}

// get marks key as known and returns its node (nil if absent).
func (o *obj) get(key string) *node {
	o.known[key] = true
	if o.n == nil {
		return nil
	}
	return o.n.vals[key]
}

func (o *obj) keyPos(key string) pos {
	if o.n != nil {
		if p, ok := o.n.kpos[key]; ok {
			return p
		}
		return o.n.pos
	}
	return pos{1, 1}
}

func (o *obj) require(key string) *node {
	n := o.get(key)
	if n == nil && o.d.err == nil && o.n != nil {
		o.d.fail(o.n.pos, "missing required field %q in %s", key, o.ctx)
	}
	return n
}

// finish rejects any field that was never requested.
func (o *obj) finish() {
	if o.n == nil || o.d.err != nil {
		return
	}
	for _, k := range o.n.keys {
		if !o.known[k] {
			valid := make([]string, 0, len(o.known))
			for f := range o.known {
				valid = append(valid, f)
			}
			sort.Strings(valid)
			o.d.fail(o.n.kpos[k], "unknown field %q in %s (valid fields: %s)",
				k, o.ctx, strings.Join(valid, ", "))
			return
		}
	}
}

func (o *obj) scalar(n *node, key string) (string, pos, bool) {
	if n == nil || o.d.err != nil {
		return "", pos{}, false
	}
	if n.kind != scalarNode {
		o.d.fail(n.pos, "field %q in %s must be a scalar, got %s", key, o.ctx, n.kind)
		return "", pos{}, false
	}
	return n.scalar, n.pos, true
}

// str reads an optional string field ("" when absent).
func (o *obj) str(key string) string {
	v, _, ok := o.scalar(o.get(key), key)
	if !ok {
		return ""
	}
	return v
}

// reqStr reads a required, non-empty string field.
func (o *obj) reqStr(key string) string {
	n := o.require(key)
	v, p, ok := o.scalar(n, key)
	if ok && v == "" {
		o.d.fail(p, "field %q in %s must not be empty", key, o.ctx)
	}
	return v
}

// intField reads an integer with range checking; returns def when absent.
func (o *obj) intField(key string, def, min, max int) int {
	n := o.get(key)
	if n == nil {
		return def
	}
	v, p, ok := o.scalar(n, key)
	if !ok {
		return def
	}
	i, err := strconv.Atoi(v)
	if err != nil || n.quoted {
		o.d.fail(p, "field %q in %s must be an integer, got %q", key, o.ctx, v)
		return def
	}
	if i < min || i > max {
		o.d.fail(p, "field %q in %s out of range: %d not in [%d, %d]", key, o.ctx, i, min, max)
		return def
	}
	return i
}

// reqInt reads a required integer with range checking.
func (o *obj) reqInt(key string, min, max int) int {
	o.require(key)
	return o.intField(key, min, min, max)
}

// floatField reads a float with range checking; returns def when absent.
func (o *obj) floatField(key string, def, min, max float64) (float64, bool) {
	n := o.get(key)
	if n == nil {
		return def, false
	}
	v, p, ok := o.scalar(n, key)
	if !ok {
		return def, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || n.quoted || f != f { // reject NaN
		o.d.fail(p, "field %q in %s must be a number, got %q", key, o.ctx, v)
		return def, false
	}
	if f < min || f > max {
		o.d.fail(p, "field %q in %s out of range: %g not in [%g, %g]", key, o.ctx, f, min, max)
		return def, false
	}
	return f, true
}

// boolField reads an optional boolean (default false).
func (o *obj) boolField(key string) bool {
	n := o.get(key)
	if n == nil {
		return false
	}
	v, p, ok := o.scalar(n, key)
	if !ok {
		return false
	}
	switch v {
	case "true":
		return true
	case "false":
		return false
	}
	o.d.fail(p, "field %q in %s must be true or false, got %q", key, o.ctx, v)
	return false
}

// intSeq reads a sequence of positive integers.
func (o *obj) intSeq(key string, required bool, max int) []int {
	var n *node
	if required {
		n = o.require(key)
	} else {
		n = o.get(key)
	}
	if n == nil || o.d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		o.d.fail(n.pos, "field %q in %s must be a sequence, got %s", key, o.ctx, n.kind)
		return nil
	}
	if len(n.items) == 0 {
		o.d.fail(n.pos, "field %q in %s must not be empty", key, o.ctx)
		return nil
	}
	out := make([]int, 0, len(n.items))
	for _, it := range n.items {
		if it.kind != scalarNode {
			o.d.fail(it.pos, "elements of %q in %s must be integers", key, o.ctx)
			return nil
		}
		i, err := strconv.Atoi(it.scalar)
		if err != nil || it.quoted {
			o.d.fail(it.pos, "elements of %q in %s must be integers, got %q", key, o.ctx, it.scalar)
			return nil
		}
		if i < 1 || i > max {
			o.d.fail(it.pos, "element of %q in %s out of range: %d not in [1, %d]", key, o.ctx, i, max)
			return nil
		}
		out = append(out, i)
	}
	return out
}

// faultPlan parses a fault spec string field into a Plan.
func (o *obj) faultPlan(key string) (string, fault.Plan) {
	n := o.get(key)
	if n == nil {
		return "", fault.Plan{}
	}
	v, p, ok := o.scalar(n, key)
	if !ok {
		return "", fault.Plan{}
	}
	plan, err := fault.ParsePlan(v)
	if err != nil {
		o.d.fail(p, "field %q in %s: invalid fault spec: %v", key, o.ctx, err)
		return "", fault.Plan{}
	}
	if plan.Empty() {
		o.d.fail(p, "field %q in %s must not be an empty fault plan", key, o.ctx)
		return "", fault.Plan{}
	}
	return plan.String(), plan
}

// ---- schema ----

func (d *decoder) scenario(root *node) *Scenario {
	o := d.obj(root, "scenario")
	sc := &Scenario{}
	sc.Name = o.reqStr("scenario")
	if d.err == nil {
		if err := checkName(sc.Name, o.keyPos("scenario")); err != nil {
			d.err = err
		}
	}
	sc.Title = o.reqStr("title")
	sc.PaperNote = o.str("paper_note")
	sc.Mode = o.reqStr("mode")
	if d.err == nil && sc.Mode != ModeSingle && sc.Mode != ModeDynamic && sc.Mode != ModeCluster {
		d.fail(o.keyPos("mode"), "field %q in scenario must be %q, %q or %q, got %q",
			"mode", ModeSingle, ModeDynamic, ModeCluster, sc.Mode)
	}
	sc.FaultSpec, sc.Faults = o.faultPlan("faults")
	sc.AuditEvery = o.intField("audit_every", 0, 0, 1<<30)
	sc.Backends = d.backends(o.get("backend"))
	sc.Policy = o.str("policy")
	if d.err == nil && sc.Policy != "" {
		if _, err := swapback.ParsePolicy(sc.Policy); err != nil {
			d.fail(o.keyPos("policy"), "unknown policy %q (valid: %s)",
				sc.Policy, strings.Join(swapback.PolicyNames(), ", "))
		}
	}

	if sc.Mode == ModeCluster {
		if o.get("fleet") != nil && d.err == nil {
			d.fail(o.keyPos("fleet"), "fleet is not supported in cluster mode (size hosts and guests in the cluster stanza)")
		}
		if o.get("workload") != nil && d.err == nil {
			d.fail(o.keyPos("workload"), "workload is not supported in cluster mode (the cluster stanza declares its own units)")
		}
		if cn := o.require("cluster"); cn != nil {
			sc.Cluster = d.clusterSpec(cn)
		}
	} else {
		if o.get("cluster") != nil && d.err == nil {
			d.fail(o.keyPos("cluster"), "cluster stanza requires mode %q, got mode %q", ModeCluster, sc.Mode)
		}
		if fn := o.require("fleet"); fn != nil {
			sc.Fleet = d.fleet(fn, sc.Mode)
		}
		if wn := o.require("workload"); wn != nil {
			sc.Workload = d.workload(wn, "workload", sc.Mode)
		}
	}
	sc.Schemes = d.schemes(o.require("schemes"), sc.Mode)
	if tn := o.get("table"); tn != nil {
		to := d.obj(tn, "table")
		sc.TableTitle = to.reqStr("title")
		to.finish()
	}
	if pn := o.get("panels"); pn != nil {
		sc.Panels = d.panels(pn, sc)
	}
	if tl := o.get("timeline"); tl != nil {
		sc.Timeline = d.timeline(tl, sc)
	}
	if an := o.get("assertions"); an != nil {
		sc.Assertions = d.assertions(an, sc)
	}
	o.finish()
	d.crossChecks(root, sc)
	return sc
}

// backends decodes the top-level backend field: one backend name or a
// sequence of distinct names, each validated against the swapback tiers.
func (d *decoder) backends(n *node) []string {
	if n == nil || d.err != nil {
		return nil
	}
	var items []*node
	switch n.kind {
	case scalarNode:
		items = []*node{n}
	case seqNode:
		if len(n.items) == 0 {
			d.fail(n.pos, "backend must not be an empty sequence")
			return nil
		}
		items = n.items
	default:
		d.fail(n.pos, "backend must be a backend name or a sequence of names, got %s", n.kind)
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, it := range items {
		if it.kind != scalarNode {
			d.fail(it.pos, "elements of backend must be backend names")
			return nil
		}
		if _, err := swapback.ParseKind(it.scalar); err != nil || it.scalar == "" {
			d.fail(it.pos, "unknown backend %q (valid: %s)",
				it.scalar, strings.Join(swapback.KindNames(), ", "))
			return nil
		}
		if seen[it.scalar] {
			d.fail(it.pos, "duplicate backend %q", it.scalar)
			return nil
		}
		seen[it.scalar] = true
		out = append(out, it.scalar)
	}
	return out
}

func checkName(name string, at pos) error {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case i > 0 && (c >= '0' && c <= '9' || c == '-' || c == '_'):
		default:
			return errAt(at, "scenario name %q must match [a-z][a-z0-9_-]*", name)
		}
	}
	return nil
}

func (d *decoder) fleet(n *node, mode string) Fleet {
	o := d.obj(n, "fleet")
	var f Fleet
	const maxMB = 1 << 20 // 1 TiB of paper-sized memory is a spec mistake
	if mode == ModeDynamic {
		f.Counts = o.intSeq("counts", true, 4096)
		f.QuickCounts = o.intSeq("quick_counts", false, 4096)
		f.MemoryMB = o.reqInt("memory_mb", 1, maxMB)
		f.HostMB = o.reqInt("host_mb", 1, maxMB)
		f.VCPUs = o.intField("vcpus", 2, 1, 64)
		f.StaggerSec = o.intField("stagger_sec", 10, 0, 3600)
		f.DiskMB = o.intField("disk_mb", 20*1024, 1, maxMB)
	} else {
		f.MemoryMB = o.reqInt("memory_mb", 1, maxMB)
		f.ActualMB = o.reqInt("actual_mb", 1, maxMB)
		f.HostMB = o.intField("host_mb", 0, 0, maxMB)
		f.VCPUs = o.intField("vcpus", 0, 0, 64)
		f.Warmup = o.boolField("warmup")
		f.BalloonMarginMB = o.intField("balloon_margin_mb", 0, 0, maxMB)
	}
	o.finish()
	return f
}

// clusterSpec decodes the cluster stanza. Tuning knobs left out take the
// cluster package's defaults; structural fields (hosts, guests, sizes,
// remediation) are required.
func (d *decoder) clusterSpec(n *node) ClusterSpec {
	o := d.obj(n, "cluster")
	var cs ClusterSpec
	const maxMB = 1 << 20

	// hosts: a count with a shared host_mb, or an explicit sequence of
	// {name, mem_mb} hosts.
	hn := o.require("hosts")
	switch {
	case hn == nil || d.err != nil:
	case hn.kind == scalarNode:
		i, err := strconv.Atoi(hn.scalar)
		switch {
		case err != nil || hn.quoted:
			d.fail(hn.pos, "field %q in cluster must be a host count or a sequence of {name, mem_mb} hosts, got %q", "hosts", hn.scalar)
		case i < 1 || i > 256:
			d.fail(hn.pos, "field %q in cluster out of range: %d not in [%d, %d]", "hosts", i, 1, 256)
		default:
			cs.Hosts = i
			cs.HostMB = o.reqInt("host_mb", 1, maxMB)
		}
	case hn.kind == seqNode:
		if len(hn.items) == 0 {
			d.fail(hn.pos, "field %q in cluster must not be empty", "hosts")
			break
		}
		if o.get("host_mb") != nil {
			d.fail(o.keyPos("host_mb"), "host_mb conflicts with an explicit cluster host list (size each host's mem_mb)")
			break
		}
		seen := map[string]bool{}
		for _, it := range hn.items {
			ho := d.obj(it, "cluster host")
			var h ClusterHost
			h.Name = ho.reqStr("name")
			h.MemMB = ho.reqInt("mem_mb", 1, maxMB)
			ho.finish()
			if d.err != nil {
				return cs
			}
			if seen[h.Name] {
				d.fail(ho.keyPos("name"), "duplicate host name %q in cluster hosts", h.Name)
				return cs
			}
			seen[h.Name] = true
			cs.HostList = append(cs.HostList, h)
		}
	default:
		d.fail(hn.pos, "field %q in cluster must be a host count or a sequence of {name, mem_mb} hosts, got %s", "hosts", hn.kind)
	}

	cs.Guests = o.reqInt("guests", 1, 4096)
	cs.GuestMB = o.reqInt("guest_mb", 1, maxMB)
	if ws := o.intSeq("working_set_pct", false, 100); ws != nil {
		if len(ws) != 2 || ws[0] > ws[1] {
			d.fail(o.keyPos("working_set_pct"), "working_set_pct must be a [min, max] percent pair with min <= max")
		} else {
			cs.WSMinPct, cs.WSMaxPct = ws[0], ws[1]
		}
	}
	cs.Units = o.intField("units", 0, 1, 1<<20)
	cs.PhaseUnits = o.intField("phase_units", 0, 1, 1<<20)
	cs.UnitComputeMS = o.intField("unit_compute_ms", 0, 1, 3600_000)
	cs.StaggerMS = o.intField("stagger_ms", 0, 1, 3600_000)
	cs.DiskMB = o.intField("disk_mb", 4*cs.GuestMB, 1, maxMB)
	if d.err == nil && cs.DiskMB <= cs.GuestMB {
		d.fail(o.keyPos("disk_mb"), "disk_mb (%d) must exceed guest_mb (%d): the guest swap area lives on the disk image", cs.DiskMB, cs.GuestMB)
	}

	cs.Packing = "balanced-pressure"
	if pn := o.get("packing"); pn != nil {
		if p, at, ok := o.scalar(pn, "packing"); ok {
			if !nameIn(p, ClusterPackings) {
				d.fail(at, "unknown packing %q (valid: %s)", p, strings.Join(ClusterPackings, ", "))
			} else {
				cs.Packing = p
			}
		}
	}

	// remediation: one policy or the comparison sequence.
	rn := o.require("remediation")
	var items []*node
	switch {
	case rn == nil || d.err != nil:
	case rn.kind == scalarNode:
		items = []*node{rn}
	case rn.kind == seqNode:
		if len(rn.items) == 0 {
			d.fail(rn.pos, "field %q in cluster must not be empty", "remediation")
		}
		items = rn.items
	default:
		d.fail(rn.pos, "field %q in cluster must be a policy name or a sequence of names, got %s", "remediation", rn.kind)
	}
	seenRemedy := map[string]bool{}
	for _, it := range items {
		if d.err != nil {
			break
		}
		if it.kind != scalarNode {
			d.fail(it.pos, "elements of %q in cluster must be policy names", "remediation")
			break
		}
		if !nameIn(it.scalar, ClusterRemediations) {
			d.fail(it.pos, "unknown remediation %q (valid: %s)", it.scalar, strings.Join(ClusterRemediations, ", "))
			break
		}
		if seenRemedy[it.scalar] {
			d.fail(it.pos, "duplicate remediation %q", it.scalar)
			break
		}
		seenRemedy[it.scalar] = true
		cs.Remediations = append(cs.Remediations, it.scalar)
	}

	if tn := o.get("threshold"); tn != nil {
		if v, at, ok := o.scalar(tn, "threshold"); ok {
			f, err := strconv.ParseFloat(v, 64)
			switch {
			case err != nil || tn.quoted || f != f:
				d.fail(at, "field %q in cluster must be a number, got %q", "threshold", v)
			case f <= 0 || f > 1:
				d.fail(at, "field %q in cluster out of range: pressure threshold %g not in (0, 1]", "threshold", f)
			default:
				cs.Threshold = f
			}
		}
	}
	cs.SampleSec = o.intField("sample_sec", 0, 1, 3600)
	cs.CooldownSec = o.intField("cooldown_sec", 0, 1, 3600)
	cs.MaxCommitFactor, _ = o.floatField("max_commit_factor", 0, 1, 64)
	o.finish()
	return cs
}

func nameIn(name string, valid []string) bool {
	for _, v := range valid {
		if v == name {
			return true
		}
	}
	return false
}

func (d *decoder) schemes(n *node, mode string) []SchemeRef {
	if n == nil || d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.pos, "schemes must be a sequence, got %s", n.kind)
		return nil
	}
	if len(n.items) == 0 {
		d.fail(n.pos, "schemes must list at least one scheme")
		return nil
	}
	seen := map[string]bool{}
	var out []SchemeRef
	for _, it := range n.items {
		var ref SchemeRef
		var at pos
		switch it.kind {
		case scalarNode:
			ref.Name, at = it.scalar, it.pos
		case mapNode:
			so := d.obj(it, "scheme")
			ref.Name = so.reqStr("name")
			ref.Paper = so.str("paper")
			so.finish()
			at = so.keyPos("name")
		default:
			d.fail(it.pos, "each scheme must be a name or a {name, paper} mapping")
			return nil
		}
		if d.err != nil {
			return nil
		}
		if !validScheme(ref.Name) {
			d.fail(at, "unknown scheme %q (valid: %s)", ref.Name, strings.Join(SchemeNames, ", "))
			return nil
		}
		if seen[ref.Name] {
			d.fail(at, "duplicate scheme %q", ref.Name)
			return nil
		}
		seen[ref.Name] = true
		if mode != ModeSingle && ref.Paper != "" {
			d.fail(at, "scheme %q: paper reference values are only supported in single mode", ref.Name)
			return nil
		}
		out = append(out, ref)
	}
	return out
}

func validScheme(name string) bool {
	for _, s := range SchemeNames {
		if s == name {
			return true
		}
	}
	return false
}

func (d *decoder) workload(n *node, ctx, mode string) Workload {
	o := d.obj(n, ctx)
	var w Workload
	w.Kind = o.reqStr("kind")
	const maxMB = 1 << 20
	switch w.Kind {
	case KindSeqRead:
		w.FileMB = o.reqInt("file_mb", 1, maxMB)
		w.Iterations = o.intField("iterations", 0, 1, 1<<20)
		w.QuickIterations = o.intField("quick_iterations", 0, 1, 1<<20)
	case KindAllocTouch:
		w.SizeMB = o.reqInt("size_mb", 1, maxMB)
	case KindMetis:
		w.InputMB = o.reqInt("input_mb", 1, maxMB)
		w.TableMB = o.reqInt("table_mb", 1, maxMB)
	default:
		if d.err == nil {
			d.fail(o.keyPos("kind"), "unknown workload kind %q in %s (valid: %s, %s, %s)",
				w.Kind, ctx, KindSeqRead, KindAllocTouch, KindMetis)
		}
		return w
	}
	if mode == ModeDynamic && w.Kind == KindAllocTouch {
		d.fail(o.keyPos("kind"), "workload kind %q is not supported in dynamic mode", w.Kind)
	}
	o.finish()
	return w
}

func (d *decoder) panels(n *node, sc *Scenario) []Panel {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.pos, "panels must be a sequence, got %s", n.kind)
		return nil
	}
	if len(n.items) == 0 {
		d.fail(n.pos, "panels must not be empty")
		return nil
	}
	var out []Panel
	for _, it := range n.items {
		o := d.obj(it, "panel")
		var p Panel
		p.Title = o.reqStr("title")
		p.Source = o.reqStr("source")
		switch p.Source {
		case "runtime":
			o.get("counter") // mark known so the unknown-field hint stays stable
			o.get("per")
			if d.err == nil && it.kind == mapNode {
				if cn, ok := it.vals["counter"]; ok {
					d.fail(cn.pos, "panel source %q does not take a counter", p.Source)
				}
			}
		case "counter":
			p.Counter = o.reqStr("counter")
			if d.err == nil {
				if err := checkCounterName(p.Counter, o.keyPos("counter")); err != nil {
					d.err = err
				}
			}
			p.Per, _ = o.floatField("per", 1, 1e-9, 1e12)
		default:
			if d.err == nil {
				d.fail(o.keyPos("source"), "panel source must be \"runtime\" or \"counter\", got %q", p.Source)
			}
			return nil
		}
		o.finish()
		if d.err != nil {
			return nil
		}
		out = append(out, p)
	}
	return out
}

func (d *decoder) timeline(n *node, sc *Scenario) []Event {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.pos, "timeline must be a sequence, got %s", n.kind)
		return nil
	}
	var out []Event
	injectSeen := false
	last := -1.0
	for _, it := range n.items {
		o := d.obj(it, "timeline event")
		var ev Event
		ev.AtSec, _ = o.floatField("at_sec", 0, 0, 1e9)
		if o.require("at_sec") == nil {
			return nil
		}
		ev.Kind = o.reqStr("event")
		switch ev.Kind {
		case EvBalloonSet:
			ev.TargetMB = o.reqInt("target_mb", 0, 1<<20)
		case EvWorkloadPhase:
			if wn := o.require("workload"); wn != nil {
				w := d.workload(wn, "workload_phase workload", sc.Mode)
				ev.Workload = &w
			}
		case EvInjectFaults:
			o.require("faults")
			ev.FaultSpec, ev.Faults = o.faultPlan("faults")
			if d.err == nil && injectSeen {
				d.fail(o.keyPos("event"), "at most one inject_faults event per timeline")
			}
			injectSeen = true
		case EvMigrate:
			ev.BandwidthMBps, _ = o.floatField("bandwidth_mbps", 0, 0, 1e9)
			ev.UseMappings = o.boolField("use_mappings")
		default:
			if d.err == nil {
				d.fail(o.keyPos("event"), "unknown timeline event %q (valid: %s, %s, %s, %s)",
					ev.Kind, EvBalloonSet, EvWorkloadPhase, EvInjectFaults, EvMigrate)
			}
			return nil
		}
		o.finish()
		if d.err != nil {
			return nil
		}
		if ev.AtSec < last {
			d.fail(o.keyPos("at_sec"), "timeline out of order: at_sec %g after %g", ev.AtSec, last)
			return nil
		}
		last = ev.AtSec
		out = append(out, ev)
	}
	return out
}

func (d *decoder) assertions(n *node, sc *Scenario) []Assertion {
	if d.err != nil {
		return nil
	}
	if n.kind != seqNode {
		d.fail(n.pos, "assertions must be a sequence, got %s", n.kind)
		return nil
	}
	// The assertion axis is schemes, except in cluster mode where the
	// remediation policies are what the grid compares.
	declared := map[string]bool{}
	axisNoun, axisWhere := "scheme", "schemes"
	if sc.Mode == ModeCluster {
		axisNoun, axisWhere = "remediation", "the cluster remediation list"
		for _, r := range sc.Cluster.Remediations {
			declared[r] = true
		}
	} else {
		for _, s := range sc.Schemes {
			declared[s.Name] = true
		}
	}
	maxCount := 0
	for _, c := range sc.Fleet.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var out []Assertion
	for _, it := range n.items {
		o := d.obj(it, "assertion")
		var a Assertion
		a.Counter = o.reqStr("counter")
		a.Op = o.reqStr("op")
		a.Scheme = o.str("scheme")
		a.Value, _ = o.floatField("value", 0, -1e18, 1e18)
		a.Left = o.str("left")
		a.Right = o.str("right")
		if len(sc.Backends) > 0 {
			a.Backend = o.str("backend")
		}
		if sc.Mode == ModeDynamic {
			a.Guests = o.intField("guests", 0, 1, 1<<20)
		}
		o.finish()
		if d.err != nil {
			return nil
		}
		at := o.keyPos("counter")
		if !validOp(a.Op) {
			d.fail(o.keyPos("op"), "unknown assertion op %q (valid: %s)", a.Op, strings.Join(Ops, ", "))
			return nil
		}
		switch {
		case a.Scheme != "" && (a.Left != "" || a.Right != ""):
			d.fail(at, "assertion mixes threshold (scheme/value) and comparison (left/right) forms")
			return nil
		case a.Scheme != "":
			if it.kind == mapNode && it.vals["value"] == nil {
				d.fail(at, "threshold assertion missing required field \"value\"")
				return nil
			}
		case a.Left != "" || a.Right != "":
			if a.Left == "" || a.Right == "" {
				d.fail(at, "comparison assertion needs both \"left\" and \"right\" schemes")
				return nil
			}
			if it.kind == mapNode && it.vals["value"] != nil {
				d.fail(at, "comparison assertion does not take a \"value\"")
				return nil
			}
		default:
			d.fail(at, "assertion needs either scheme+value or left+right")
			return nil
		}
		for _, s := range []string{a.Scheme, a.Left, a.Right} {
			if s != "" && !declared[s] {
				d.fail(at, "assertion references %s %q not declared in %s", axisNoun, s, axisWhere)
				return nil
			}
		}
		if a.Backend != "" {
			found := false
			for _, b := range sc.Backends {
				if b == a.Backend {
					found = true
				}
			}
			if !found {
				d.fail(o.keyPos("backend"), "assertion references backend %q not declared in backend", a.Backend)
				return nil
			}
		}
		if err := d.checkMetric(a.Counter, sc.Mode, at); err != nil {
			return nil
		}
		if sc.Mode == ModeDynamic && a.Guests != 0 {
			found := false
			for _, c := range sc.Fleet.Counts {
				if c == a.Guests {
					found = true
				}
			}
			for _, c := range sc.Fleet.QuickCounts {
				if c == a.Guests {
					found = true
				}
			}
			if !found {
				d.fail(o.keyPos("guests"), "assertion guests %d is not in fleet counts", a.Guests)
				return nil
			}
		}
		out = append(out, a)
	}
	return out
}

func validOp(op string) bool {
	for _, o := range Ops {
		if o == op {
			return true
		}
	}
	return false
}

// checkMetric validates an assertion's metric name per mode. In single
// mode any lexically valid counter name is allowed (unknown counters read
// zero); dynamic cells only expose the pseudo-metrics.
func (d *decoder) checkMetric(name, mode string, at pos) error {
	if mode == ModeCluster {
		switch name {
		case MetricUnitP95, MetricUnitP99, MetricGuestP95, MetricGuestP99:
			return nil
		}
		if strings.HasPrefix(name, "cluster.") {
			if err := checkCounterName(name, at); err != nil {
				d.err = err
				return err
			}
			return nil
		}
		d.fail(at, "cluster-mode assertions support only %s/%s/%s/%s and cluster.* counters, got %q",
			MetricUnitP95, MetricUnitP99, MetricGuestP95, MetricGuestP99, name)
		return d.err
	}
	if mode == ModeDynamic {
		if name != MetricMeanRuntimeSec && name != MetricKilled {
			d.fail(at, "dynamic-mode assertions support only %s and %s, got %q",
				MetricMeanRuntimeSec, MetricKilled, name)
			return d.err
		}
		return nil
	}
	if name == MetricRuntimeSec || name == MetricKilled {
		return nil
	}
	if err := checkCounterName(name, at); err != nil {
		d.err = err
		return err
	}
	return nil
}

func checkCounterName(name string, at pos) error {
	if name == "" {
		return errAt(at, "empty counter name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-', c == '+':
		default:
			return errAt(at, "invalid counter name %q", name)
		}
	}
	return nil
}

// crossChecks enforces constraints that span sections.
func (d *decoder) crossChecks(root *node, sc *Scenario) {
	if d.err != nil {
		return
	}
	at := func(key string) pos {
		if p, ok := root.kpos[key]; ok {
			return p
		}
		return root.pos
	}
	if len(sc.Backends) > 1 {
		if sc.Mode != ModeSingle {
			d.fail(at("backend"), "%s mode supports at most one backend", sc.Mode)
			return
		}
		if len(sc.Panels) > 0 {
			d.fail(at("backend"), "multiple backends and panels are mutually exclusive")
			return
		}
		if len(sc.Timeline) > 0 {
			d.fail(at("backend"), "multiple backends and timeline events are mutually exclusive")
			return
		}
	}
	if sc.Mode != ModeSingle {
		if len(sc.Panels) > 0 {
			d.fail(at("panels"), "panels are only supported in single mode")
			return
		}
		if len(sc.Timeline) > 0 {
			d.fail(at("timeline"), "timeline events are only supported in single mode")
			return
		}
		if sc.TableTitle == "" {
			d.fail(at("table"), "%s mode requires a table with a title", sc.Mode)
			return
		}
		if sc.Mode == ModeCluster && len(sc.Schemes) != 1 {
			d.fail(at("schemes"), "cluster mode compares remediation policies under exactly one scheme")
			return
		}
	} else {
		if len(sc.Panels) > 0 && sc.TableTitle != "" {
			d.fail(at("table"), "table and panels are mutually exclusive")
			return
		}
		if len(sc.Panels) == 0 && sc.TableTitle == "" {
			d.fail(at("scenario"), "single mode requires either a table title or panels")
			return
		}
		if len(sc.Panels) > 0 {
			if sc.Workload.Kind != KindSeqRead {
				d.fail(at("panels"), "panels require the seqread workload (per-iteration sampling)")
				return
			}
			if sc.Workload.Iterations < 1 {
				d.fail(at("panels"), "panels require workload.iterations >= 1")
				return
			}
		}
	}
	for _, ev := range sc.Timeline {
		if ev.Kind == EvInjectFaults && !sc.Faults.Empty() {
			d.fail(at("faults"), "scenario-level faults and an inject_faults timeline event are mutually exclusive")
			return
		}
	}
}
