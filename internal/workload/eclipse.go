package workload

import (
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// EclipseConfig parameterizes the DaCapo Eclipse workload (paper §5.1,
// Fig. 13, Fig. 15): a JVM with a 128 MB heap whose garbage collector
// cyclically walks the whole heap — the classic LRU pathology when the
// heap exceeds the memory actually allocated to the guest.
type EclipseConfig struct {
	// HeapMB is the Java heap (paper: 128 MB).
	HeapMB int
	// JVMAnonMB is the JVM + IDE native footprint beyond the heap.
	JVMAnonMB int
	// WorkspaceMB is the on-disk workspace read during the run.
	WorkspaceMB int
	// Iterations is the number of benchmark iterations (GC cycles each).
	Iterations int
	// CPUPerIteration is the computation per iteration.
	CPUPerIteration sim.Duration
	// Sampler, when set, is called every second of virtual time with the
	// current time (Fig. 15's cache/tracking series).
	Sampler func(at sim.Time)
}

func (c EclipseConfig) withDefaults() EclipseConfig {
	if c.HeapMB == 0 {
		c.HeapMB = 128
	}
	if c.JVMAnonMB == 0 {
		c.JVMAnonMB = 230
	}
	if c.WorkspaceMB == 0 {
		c.WorkspaceMB = 120
	}
	if c.Iterations == 0 {
		c.Iterations = 6
	}
	if c.CPUPerIteration == 0 {
		c.CPUPerIteration = 18 * sim.Second
	}
	return c
}

// Eclipse launches the DaCapo Eclipse workload on vm.
func Eclipse(vm *hyper.VM, cfg EclipseConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("java")
	return launch(vm, "eclipse", pr, func(t *guest.Thread, j *Job) {
		heapPages := cfg.HeapMB << 20 / 4096
		jvmPages := cfg.JVMAnonMB << 20 / 4096
		heap := pr.Reserve(heapPages)
		jvm := pr.Reserve(jvmPages)
		ws := vm.OS.FS.Create("workspace", int64(cfg.WorkspaceMB)<<20)

		if cfg.Sampler != nil {
			stop := false
			defer func() { stop = true }()
			vm.M.Env.Go("eclipse-sampler", func(p *sim.Proc) {
				for !stop && !pr.Killed {
					cfg.Sampler(p.Now())
					p.Sleep(sim.Second)
				}
			})
		}

		// JVM startup: initialize native memory and heap, read workspace.
		for i := 0; i < jvmPages && !t.ProcKilled(); i++ {
			t.TouchAnon(pr, jvm+i, true)
		}
		for i := 0; i < heapPages && !t.ProcKilled(); i++ {
			t.TouchAnon(pr, heap+i, true)
		}
		t.ReadFile(ws, 0, ws.SizeBytes())

		perPageCPU := cfg.CPUPerIteration / sim.Duration(heapPages*3)
		for it := 0; it < cfg.Iterations && !t.ProcKilled(); it++ {
			start := t.P.Now()
			// Mutator phase: allocation recycles heap regions (freed and
			// re-zeroed), object writes land in spans.
			quarter := heapPages / 4
			for i := 0; i < quarter && !t.ProcKilled(); i++ {
				idx := heap + (it*quarter+i)%heapPages
				t.FreeAnon(pr, idx)
				t.OverwriteAnon(pr, idx, true)
				t.WriteAnonSpan(pr, idx, 0, 1536)
				t.Compute(perPageCPU)
			}
			// Workspace reads: the IDE consults files as it works.
			off := (int64(it) * (ws.SizeBytes() / int64(cfg.Iterations))) % ws.SizeBytes()
			n := ws.SizeBytes() / int64(cfg.Iterations)
			if off+n > ws.SizeBytes() {
				n = ws.SizeBytes() - off
			}
			t.ReadFile(ws, off, n)
			// Full GC: mark walks every live heap page (reads), sweep
			// writes a fraction.
			for i := 0; i < heapPages && !t.ProcKilled(); i++ {
				t.TouchAnon(pr, heap+i, false)
				t.Compute(perPageCPU)
			}
			for i := 0; i < heapPages/8 && !t.ProcKilled(); i++ {
				t.TouchAnon(pr, heap+i*8, true)
				t.Compute(perPageCPU)
			}
			t.FlushCPU()
			j.res.Iterations = append(j.res.Iterations, t.P.Now().Sub(start))
		}
	})
}
