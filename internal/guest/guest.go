// Package guest models the guest operating system: a Linux-like kernel
// managing the memory the VM believes it owns. It implements a page cache
// with sequential readahead, anonymous process memory, watermark-driven
// reclaim with its own swap partition, a balloon driver, and an OOM killer.
//
// The guest is deliberately oblivious to the host: it caches aggressively,
// recycles page frames freely, and zeroes pages on allocation — exactly the
// behaviours that make uncooperative host swapping expensive (paper §3).
//
// The guest talks to the virtual hardware through the Platform interface,
// implemented by internal/hyper.
package guest

import (
	"vswapsim/internal/fault"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/trace"
)

// Platform is the guest's view of the virtual machine: page-granular
// memory accesses (which the hypervisor may trap) and virtio-style disk
// I/O (which the hypervisor emulates).
type Platform interface {
	// TouchPage is an ordinary access to a guest frame.
	TouchPage(p *sim.Proc, gfn int, write bool)
	// OverwritePage overwrites a whole page ignoring prior content (page
	// zeroing, full-page copies). rep marks x86 REP string instructions,
	// which the Preventer can short-circuit.
	OverwritePage(p *sim.Proc, gfn int, rep bool)
	// WriteSpan writes n bytes at offset off within the page, as user
	// code filling a buffer does.
	WriteSpan(p *sim.Proc, gfn int, off, n int)
	// DiskRead reads len(gfns) contiguous virtual-disk blocks starting at
	// start into the given frames. DiskWrite is the reverse.
	DiskRead(p *sim.Proc, gfns []int, start int64)
	DiskWrite(p *sim.Proc, gfns []int, start int64)
	// BalloonRelease pins+donates frames to the host; BalloonReclaim
	// takes them back.
	BalloonRelease(gfns []int)
	BalloonReclaim(gfns []int)
}

// page kinds
const (
	kindFree = iota
	kindCache
	kindAnon
	kindBalloon
	kindKernel
)

// nilGFN terminates intrusive list links.
const nilGFN = int32(-1)

// pageInfo is the guest kernel's metadata for one of its own frames. It is
// kept compact (array-of-structs indexed by GFN) because large guests have
// hundreds of thousands of frames.
type pageInfo struct {
	kind       uint8
	dirty      bool
	referenced bool
	list       uint8 // listNone or a list id
	prev, next int32
	block      int64    // vdisk block (cache pages) or anon index (anon pages)
	proc       *Process // owner (anon pages)
}

// list ids
const (
	listNone = iota
	listActiveFile
	listInactiveFile
	listActiveAnon
	listInactiveAnon
)

// gfnList is an intrusive list over the OS page array.
type gfnList struct {
	id   uint8
	head int32
	tail int32
	size int
}

func newGFNList(id uint8) gfnList { return gfnList{id: id, head: nilGFN, tail: nilGFN} }

func (l *gfnList) pushFront(os *OS, gfn int32) {
	pi := &os.pages[gfn]
	if pi.list != listNone {
		panic("guest: page already listed")
	}
	pi.list = l.id
	pi.prev = nilGFN
	pi.next = l.head
	if l.head != nilGFN {
		os.pages[l.head].prev = gfn
	}
	l.head = gfn
	if l.tail == nilGFN {
		l.tail = gfn
	}
	l.size++
}

func (l *gfnList) remove(os *OS, gfn int32) {
	pi := &os.pages[gfn]
	if pi.list != l.id {
		panic("guest: removing page from wrong list")
	}
	if pi.prev != nilGFN {
		os.pages[pi.prev].next = pi.next
	} else {
		l.head = pi.next
	}
	if pi.next != nilGFN {
		os.pages[pi.next].prev = pi.prev
	} else {
		l.tail = pi.prev
	}
	pi.list = listNone
	pi.prev = nilGFN
	pi.next = nilGFN
	l.size--
}

func (l *gfnList) back() int32 { return l.tail }

func (l *gfnList) rotate(os *OS, gfn int32) {
	l.remove(os, gfn)
	l.pushFront(os, gfn)
}

// Config holds the guest kernel tunables.
type Config struct {
	// MemPages is the memory size the guest believes it has.
	MemPages int
	// VCPUs is the number of virtual CPUs.
	VCPUs int
	// KernelPages is the unevictable kernel reserve (text, slab, page
	// tables), touched continuously through a small hot set.
	KernelPages int
	// KernelHotPages is the size of the kernel hot set.
	KernelHotPages int
	// ReadaheadMin/Max bound the guest's sequential file readahead.
	ReadaheadMin int
	ReadaheadMax int
	// MinFileFloor mirrors the host's preference for evicting file pages.
	MinFileFloor int
	// DirtyRatioPct throttles writers when dirty cache exceeds this share
	// of memory.
	DirtyRatioPct int
	// OOMLatency: if a single allocation blocks in direct reclaim longer
	// than this, the OOM killer fires (models "reclaim can't keep up").
	OOMLatency sim.Duration
	// OOMConsecIO: if this many consecutive direct-reclaim passes can
	// only free pages through swap/writeback I/O while free memory sits
	// below the low watermark, the OOM killer fires. This is the
	// "over-ballooning" failure the paper observed on KVM guests (§2.4):
	// pinned balloon pages leave reclaim nothing cheap to free during an
	// allocation storm.
	OOMConsecIO int
	// SyscallCost and PerPageCost are the CPU costs of one I/O system
	// call and of the kernel handling one page within it.
	SyscallCost sim.Duration
	PerPageCost sim.Duration
}

// DefaultConfig returns guest tunables resembling the paper's Ubuntu 12.04
// / Linux 3.7 guests.
func DefaultConfig(memPages int) Config {
	return Config{
		MemPages:       memPages,
		VCPUs:          1,
		KernelPages:    memPages / 24,
		KernelHotPages: 192,
		ReadaheadMin:   4,
		ReadaheadMax:   32,
		MinFileFloor:   64,
		DirtyRatioPct:  20,
		OOMLatency:     10 * sim.Second,
		OOMConsecIO:    32,
		SyscallCost:    2 * sim.Microsecond,
		PerPageCost:    200 * sim.Nanosecond,
	}
}

// OS is the guest operating system instance.
type OS struct {
	Env  *sim.Env
	Met  *metrics.Set
	Plat Platform
	Cfg  Config
	FS   *FileSystem

	// Trace, when non-nil, records OOM and balloon events.
	Trace *trace.Ring

	// Inj, when non-nil, injects balloon inflate/deflate refusals (set by
	// the hypervisor alongside Trace; nil = injection off).
	Inj *fault.Injector

	VCPU *sim.Resource

	pages    []pageInfo
	freeList []int32
	freePool int // == len(freeList)

	cache *blockMap // vdisk block -> gfn

	activeFile   gfnList
	inactiveFile gfnList
	activeAnon   gfnList
	inactiveAnon gfnList

	dirtyCount int

	swap *guestSwap

	kernelGFNs []int32
	kernelHot  int // rotating cursor into the hot subset

	balloonGFNs []int32
	balloonGoal int
	balloonWake *sim.Signal

	ra map[*VFile]*raState

	// readBufs is a freelist of readahead scratch buffers. A buffer stays
	// checked out across the blocking DiskRead, and threads interleave at
	// blocking points, so concurrent reads need distinct buffers.
	readBufs []*readBufs

	procs        []*Process
	oomKills     int
	consecIO     int // consecutive reclaim passes that freed only via I/O
	thrashIns    int // guest swap-ins accumulated while ballooned
	watermarkLow int
	watermarkHi  int

	booted   bool
	shutdown bool
}

// NewOS creates a guest OS over the platform. Call Boot from a process
// before using it.
func NewOS(env *sim.Env, met *metrics.Set, plat Platform, fs *FileSystem, cfg Config) *OS {
	if cfg.MemPages <= 0 {
		panic("guest: MemPages must be positive")
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	os := &OS{
		Env:          env,
		Met:          met,
		Plat:         plat,
		Cfg:          cfg,
		FS:           fs,
		VCPU:         sim.NewResource(env, cfg.VCPUs),
		pages:        make([]pageInfo, cfg.MemPages),
		cache:        newBlockMap(fs.TotalBlocks()),
		activeFile:   newGFNList(listActiveFile),
		inactiveFile: newGFNList(listInactiveFile),
		activeAnon:   newGFNList(listActiveAnon),
		inactiveAnon: newGFNList(listInactiveAnon),
		swap:         newGuestSwap(fs.SwapStart(), fs.SwapBlocks()),
		balloonWake:  nil,
	}
	os.balloonWake = sim.NewSignal(env)
	min := 128 + cfg.MemPages/256
	os.watermarkLow = min * 2
	os.watermarkHi = min * 3
	// All frames start free; populate in reverse so low GFNs are used
	// first (cosmetic but makes traces easier to follow).
	os.freeList = make([]int32, 0, cfg.MemPages)
	for gfn := cfg.MemPages - 1; gfn >= 0; gfn-- {
		os.freeList = append(os.freeList, int32(gfn))
	}
	os.freePool = len(os.freeList)
	return os
}

// Boot reserves and touches the kernel pages. It must run once, inside a
// simulated process, before any workload uses the OS.
func (os *OS) Boot(p *sim.Proc) {
	if os.booted {
		panic("guest: double boot")
	}
	os.booted = true
	for i := 0; i < os.Cfg.KernelPages; i++ {
		gfn := os.takeFree(p)
		os.pages[gfn].kind = kindKernel
		os.kernelGFNs = append(os.kernelGFNs, gfn)
		// Kernel pages are written during boot (zeroed, initialized).
		os.Plat.OverwritePage(p, int(gfn), true)
	}
	os.Env.Go(os.name()+"-balloond", os.balloonLoop)
	os.Env.Go(os.name()+"-kswapd", os.kswapdLoop)
}

// kswapdLoop is the guest's background reclaimer: it refills the free
// reserve so allocations rarely enter direct reclaim. It never OOM-kills;
// the over-ballooning detectors live on the direct path.
func (os *OS) kswapdLoop(p *sim.Proc) {
	t := &Thread{OS: os, P: p}
	for !os.shutdown {
		if os.freePool < os.watermarkLow {
			for os.freePool < os.watermarkHi && !os.shutdown {
				n, _, _ := os.shrinkLists(t, os.watermarkHi-os.freePool)
				if n == 0 {
					break
				}
			}
		}
		p.Sleep(250 * sim.Millisecond)
	}
}

func (os *OS) name() string { return "guest" }

// FreePages reports the free-frame count the guest believes it has.
func (os *OS) FreePages() int { return os.freePool }

// CachePages reports the page-cache size in pages.
func (os *OS) CachePages() int {
	return os.activeFile.size + os.inactiveFile.size
}

// DirtyCachePages reports how many cache pages are dirty.
func (os *OS) DirtyCachePages() int { return os.dirtyCount }

// AnonPages reports resident anonymous pages.
func (os *OS) AnonPages() int { return os.activeAnon.size + os.inactiveAnon.size }

// BalloonPages reports the current balloon size in pages.
func (os *OS) BalloonPages() int { return len(os.balloonGFNs) }

// OOMKills reports how many times the OOM killer fired.
func (os *OS) OOMKills() int { return os.oomKills }

// touchKernel keeps the kernel hot set warm: every syscall-ish operation
// touches the next page of the hot set (round-robin).
func (os *OS) touchKernel(p *sim.Proc) {
	if len(os.kernelGFNs) == 0 {
		return
	}
	hot := os.Cfg.KernelHotPages
	if hot > len(os.kernelGFNs) {
		hot = len(os.kernelGFNs)
	}
	gfn := os.kernelGFNs[os.kernelHot%hot]
	os.kernelHot++
	os.Plat.TouchPage(p, int(gfn), false)
}

// pageSizeBytes is re-exported for workloads.
const pageSizeBytes = mem.PageSize
