package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vswapsim/internal/experiment"
)

// TestRunUsageErrors: every malformed flag value exits with the usage
// code and a one-line hint on stderr, instead of a stack trace or a
// silent default.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad faults spec", []string{"-run", "fig3", "-faults", "bogus:0.5"}},
		{"fault prob out of range", []string{"-run", "fig3", "-faults", "disk-read-err:2"}},
		{"negative auditevery", []string{"-run", "fig3", "-auditevery", "-1"}},
		{"negative celltimeout", []string{"-run", "fig3", "-celltimeout", "-3s"}},
		{"malformed celltimeout", []string{"-run", "fig3", "-celltimeout", "soon"}},
		{"malformed maxevents", []string{"-run", "fig3", "-maxevents", "-5"}},
		{"negative tracering", []string{"-run", "fig3", "-tracering", "-1"}},
		{"bad scale", []string{"-run", "fig3", "-scale", "0"}},
		{"unknown flag", []string{"-run", "fig3", "-frobnicate"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(c.args, &stdout, &stderr)
			if code != exitUsage {
				t.Fatalf("run(%v) = %d, want %d", c.args, code, exitUsage)
			}
			msg := stderr.String()
			// flag's own parse errors print usage themselves; our validation
			// errors must point at it in a single line.
			if !strings.Contains(msg, "usage") && !strings.Contains(msg, "Usage") {
				t.Fatalf("stderr has no usage hint:\n%s", msg)
			}
		})
	}
}

// TestRunHardenedSweepFailsClosed: an absurdly small event budget kills
// every cell; the run still emits a valid JSON document whose failure
// records carry the watchdog kind, and the process exits non-zero.
func TestRunHardenedSweepFailsClosed(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-run", "fig3", "-quick", "-scale", "0.125",
		"-seed", "7", "-maxevents", "1000", "-json"}
	code := run(args, &stdout, &stderr)
	if code != exitFailures {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitFailures, stderr.String())
	}
	var doc experiment.JSONDocument
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Incomplete {
		t.Fatal("deterministic kills must not mark the document incomplete")
	}
	if len(doc.Experiments) != 1 || len(doc.Experiments[0].Failures) == 0 {
		t.Fatalf("no failure records in the document")
	}
	for _, f := range doc.Experiments[0].Failures {
		if f.Kind != experiment.FailWatchdogEvents {
			t.Fatalf("failure %q has kind %q, want %q", f.Label, f.Kind, experiment.FailWatchdogEvents)
		}
		if f.Seed == 0 || f.BaseSeed != 7 {
			t.Fatalf("failure %q lacks replay identity: %+v", f.Label, f)
		}
	}
}

// TestRunSigintEmitsPartialReport: SIGINT mid-sweep cancels the in-flight
// cells, the process still prints a valid JSON document marked
// incomplete, and exits with the incomplete code. The full-scale fig14
// run takes many seconds, so a signal 300ms in is guaranteed to land
// mid-sweep.
func TestRunSigintEmitsPartialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("sends a real SIGINT and waits out a multi-second sweep start")
	}
	var stdout, stderr bytes.Buffer
	var code int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code = run([]string{"-run", "fig14", "-seed", "3", "-json"}, &stdout, &stderr)
	}()
	time.Sleep(300 * time.Millisecond) // let signal.NotifyContext install and the sweep start
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run did not drain within 60s of SIGINT")
	}
	if code != exitIncomplete {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitIncomplete, stderr.String())
	}
	var doc experiment.JSONDocument
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("partial output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if !doc.Incomplete {
		t.Fatal("document not marked incomplete")
	}
	if len(doc.Experiments) != 1 {
		t.Fatalf("document has %d experiments, want 1", len(doc.Experiments))
	}
	canceled := 0
	for _, f := range doc.Experiments[0].Failures {
		if f.Kind == experiment.FailCanceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no canceled cells recorded in the partial report")
	}
}
