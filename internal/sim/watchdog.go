package sim

import (
	"fmt"
	"time"
)

// This file is the progress watchdog: per-run budgets on simulated event
// count, simulated-clock progress, and wall-clock time, plus an external
// cancellation poll. A breach aborts the run by panicking with a typed
// *BudgetError, which the experiment layer's cell shield converts into a
// structured failure record; the simulation state is not unwound, so the
// caller can still snapshot counters and trace tails for diagnostics.
//
// Event-count and stall breaches are pure functions of the seed and the
// model, so they abort at exactly the same event in serial and parallel
// sweeps. Wall-clock breaches and cancellation are inherently
// scheduling-dependent and are documented as such.

// Budget bounds one simulation run. The zero Budget disables the
// watchdog entirely, at the cost of one branch per event.
type Budget struct {
	// MaxEvents aborts the run after more than this many dequeued events
	// (0 = unlimited). Deterministic.
	MaxEvents uint64
	// MaxStall aborts the run after this many consecutive events that do
	// not advance the simulated clock — the signature of a livelocked
	// model (e.g. a guest OOM-killer/balloon loop re-arming zero-delay
	// work forever). 0 selects DefaultMaxStall whenever any other bound
	// is set. Deterministic.
	MaxStall uint64
	// WallTimeout aborts the run when it has consumed this much
	// wall-clock time (0 = unlimited; checked every wallStride events).
	// Not deterministic: treat a breach as a kill, not a result.
	WallTimeout time.Duration
	// Canceled, when non-nil, is polled every wallStride events; a true
	// return aborts the run with BreachCanceled. Wire it to a context.
	Canceled func() bool
}

// Empty reports whether the budget disables the watchdog entirely.
func (b Budget) Empty() bool {
	return b.MaxEvents == 0 && b.MaxStall == 0 && b.WallTimeout == 0 && b.Canceled == nil
}

// DefaultMaxStall is the stall bound installed when a Budget enables the
// watchdog without choosing one. No healthy model comes anywhere near
// four million consecutive zero-advance events.
const DefaultMaxStall = 1 << 22

// wallStride is how often (in events) the watchdog pays for a wall-clock
// read and a cancellation poll.
const wallStride = 1024

// Breach kinds carried by BudgetError.
const (
	// BreachMaxEvents: the event-count budget was exhausted.
	BreachMaxEvents = "max-events"
	// BreachStall: the simulated clock stopped advancing (livelock).
	BreachStall = "stall"
	// BreachWall: the wall-clock budget was exhausted.
	BreachWall = "wall-timeout"
	// BreachCanceled: the external cancellation poll fired.
	BreachCanceled = "canceled"
)

// BudgetError is panicked out of Env.Run/RunUntil when the watchdog
// fires. It records where the run was when it was killed.
type BudgetError struct {
	Kind   string // one of the Breach* constants
	Events uint64 // events dequeued when the breach was detected
	Now    Time   // simulated clock at the breach
	Detail string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: %s budget breached after %d events at %v: %s",
		e.Kind, e.Events, e.Now, e.Detail)
}

// SetBudget installs (or, with the zero Budget, removes) the progress
// watchdog. The wall-clock window starts now.
func (e *Env) SetBudget(b Budget) {
	if !b.Empty() && b.MaxStall == 0 {
		b.MaxStall = DefaultMaxStall
	}
	e.budget = b
	e.wallDeadline = time.Time{}
	if b.WallTimeout > 0 {
		e.wallDeadline = time.Now().Add(b.WallTimeout)
	}
}

// EventCount reports how many events the environment has dequeued over
// its lifetime (cumulative across RunUntil calls).
func (e *Env) EventCount() uint64 { return e.eventCount }

func (e *Env) breach(kind, detail string) {
	panic(&BudgetError{Kind: kind, Events: e.eventCount, Now: e.now, Detail: detail})
}

// noteEvent is called by RunUntil for every dequeued event, before its
// callback runs, so a breach aborts the run without executing the event
// that crossed the line.
func (e *Env) noteEvent(advanced bool) {
	e.eventCount++
	b := &e.budget
	if b.Empty() {
		return
	}
	if advanced {
		e.stall = 0
	} else {
		e.stall++
	}
	if b.MaxEvents > 0 && e.eventCount > b.MaxEvents {
		e.breach(BreachMaxEvents, fmt.Sprintf("event budget %d exhausted", b.MaxEvents))
	}
	if b.MaxStall > 0 && e.stall >= b.MaxStall {
		e.breach(BreachStall, fmt.Sprintf(
			"simulated clock stuck at %v for %d consecutive events (livelock)", e.now, e.stall))
	}
	if e.eventCount%wallStride == 0 {
		if b.Canceled != nil && b.Canceled() {
			e.breach(BreachCanceled, "run canceled")
		}
		if !e.wallDeadline.IsZero() && time.Now().After(e.wallDeadline) {
			e.breach(BreachWall, fmt.Sprintf("wall-clock budget %v exhausted", b.WallTimeout))
		}
	}
}
