package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the thin HTTP client behind the CLIs' -server flag: submit a
// job, poll to terminal, hand back the JobStatus. It retries 429s honoring
// Retry-After — the admission-control contract from the other side.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// PollInterval spaces GET /jobs/{id} polls (default 100ms).
	PollInterval time.Duration
	// MaxSubmitRetries bounds 429 retries on submit (default 10).
	MaxSubmitRetries int
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 100 * time.Millisecond
}

// decodeStatus reads one JobStatus response body; non-2xx bodies decode
// into the server's error envelope.
func decodeStatus(resp *http.Response) (*JobStatus, error) {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve client: read response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var e errorBody
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("serve client: decode status: %w", err)
	}
	return &st, nil
}

// Submit posts one job. On 429 it waits out the server's Retry-After hint
// (bounded by MaxSubmitRetries) before retrying; every other non-2xx is a
// terminal error.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	retries := c.MaxSubmitRetries
	if retries <= 0 {
		retries = 10
	}
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(hreq)
		if err != nil {
			return nil, fmt.Errorf("serve client: submit: %w", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < retries {
			wait := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				wait = time.Duration(secs) * time.Second
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		st, derr := decodeStatus(resp)
		resp.Body.Close()
		return st, derr
	}
}

// Job fetches one job's current status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("serve client: get job: %w", err)
	}
	defer resp.Body.Close()
	return decodeStatus(resp)
}

// Wait polls the job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if terminal(st.State) {
			return st, nil
		}
		select {
		case <-time.After(c.pollInterval()):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Run submits a job and waits for its terminal status — the whole
// -server client mode in one call. Cache hits return immediately (the
// submit response is already terminal).
func (c *Client) Run(ctx context.Context, req JobRequest) (*JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	if terminal(st.State) {
		return st, nil
	}
	return c.Wait(ctx, st.JobID)
}
