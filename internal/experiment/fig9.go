package experiment

import (
	"fmt"

	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Fig9 reproduces the pathology demonstration: Sysbench iteratively reads
// a 200 MB file inside a 100 MB guest believing it has 512 MB. Four panels:
// (a) per-iteration runtime; (b) page faults while host code runs (stale
// reads + false anonymity); (c) page faults while guest code runs (decayed
// sequentiality); (d) sectors written to host swap (silent writes).
func Fig9(o Options) *Report {
	o = o.normalized()
	iters := 8
	if o.Quick {
		iters = 4
	}
	rep := &Report{
		ID:        "fig9",
		Title:     "Sysbench iterative 200MB read: pathology panels (Fig. 9)",
		PaperNote: "baseline: U-shaped runtime 40s→20s→40s; vswapper flat and low; faults and silent writes high for baseline only",
	}
	schemes := []Scheme{Baseline, VSwapper, BalloonBase}

	type panel struct {
		title string
		data  map[Scheme][]string
	}
	panels := []panel{
		{title: "(a) runtime [sec]"},
		{title: "(b) host-context page faults [1000s]"},
		{title: "(c) guest-context page faults [1000s]"},
		{title: "(d) host swap write sectors [1000s]"},
	}
	for i := range panels {
		panels[i].data = make(map[Scheme][]string)
	}

	for _, s := range schemes {
		s := s
		var lastSnap map[string]int64
		out := runSingle(runCfg{
			opts: o, scheme: s,
			guestMB: 512, actualMB: 100,
			warmup: true,
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			lastSnap = vm.M.Met.Snapshot()
			return workload.SeqRead(vm, workload.SeqReadConfig{
				FileMB:     o.mb(200),
				Iterations: iters,
				AfterIteration: func(i int) {
					d := vm.M.Met.Diff(lastSnap)
					lastSnap = vm.M.Met.Snapshot()
					panels[1].data[s] = append(panels[1].data[s],
						fmt.Sprintf("%.1f", float64(d[metrics.HostFaultsInHost])/1000))
					panels[2].data[s] = append(panels[2].data[s],
						fmt.Sprintf("%.1f", float64(d[metrics.HostMajorInGuest])/1000))
					panels[3].data[s] = append(panels[3].data[s],
						fmt.Sprintf("%.1f", float64(d[metrics.SwapWriteSectors])/1000))
				},
			})
		})
		for _, it := range out.res.Iterations {
			panels[0].data[s] = append(panels[0].data[s], secs(it))
		}
	}

	for _, pn := range panels {
		tab := &Table{Title: pn.title, Columns: []string{"iteration"}}
		for _, s := range schemes {
			tab.Columns = append(tab.Columns, s.String())
		}
		for i := 0; i < iters; i++ {
			row := []string{fmt.Sprintf("%d", i+1)}
			for _, s := range schemes {
				if i < len(pn.data[s]) {
					row = append(row, pn.data[s][i])
				} else {
					row = append(row, "-")
				}
			}
			tab.Add(row...)
		}
		rep.Tables = append(rep.Tables, tab)
	}
	return rep
}

// Fig10 reproduces the false-reads demonstration: after the sequential
// read, a process allocates and sequentially accesses 200 MB.
func Fig10(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:        "fig10",
		Title:     "Effect of false reads on a 200MB allocating process (Fig. 10)",
		PaperNote: "preventer more than doubles performance over mapper-only; balloon crashed (over-ballooning); runtime tracks disk ops",
	}
	tab := &Table{
		Title:   "alloc+access phase",
		Columns: []string{"config", "runtime [sec]", "disk ops [1000s]", "false reads"},
	}
	for _, s := range []Scheme{Baseline, MapperOnly, VSwapper, BalloonBase} {
		var allocSnap map[string]int64
		out := runSingle(runCfg{
			opts: o, scheme: s,
			guestMB: 512, actualMB: 100,
			warmup: true,
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200)}).Wait(p)
			allocSnap = vm.M.Met.Snapshot() // isolate the alloc phase
			return workload.AllocTouch(vm, workload.AllocTouchConfig{SizeMB: o.mb(200)})
		})
		d := out.m.Met.Diff(allocSnap)
		tab.Add(s.String(), runtimeOrKilled(out.res),
			fmt.Sprintf("%.1f", float64(d[metrics.DiskOps])/1000),
			fmt.Sprintf("%d", d[metrics.FalseSwapReads]))
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}
