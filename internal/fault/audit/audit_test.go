package audit

import (
	"strings"
	"testing"

	"vswapsim/internal/fault"
	"vswapsim/internal/guest"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

const mib = 1 << 20

// runScenario builds a 32 MiB-believed guest limited to 8 MiB actual with
// the given fault plan, attaches an auditor at the given stride, reads a
// 16 MiB file twice (enough pressure to exercise swap-out, swap-in and
// reclaim), and returns the machine plus the auditor.
func runScenario(t *testing.T, spec string, every int) (*hyper.Machine, *Auditor) {
	t.Helper()
	m := hyper.NewMachine(hyper.MachineConfig{
		Seed:         1,
		HostMemPages: 128 << 20 / 4096,
		Faults:       fault.MustParse(spec),
	})
	vm := m.NewVM(hyper.VMConfig{
		Name:       "vm0",
		MemPages:   32 << 20 / 4096,
		LimitPages: 8 << 20 / 4096,
		DiskBlocks: 1 << 30 / 4096,
		Mapper:     true,
		Preventer:  true,
		GuestAPF:   true,
	})
	a := Attach(m, every)
	m.Env.Go("scenario", func(p *sim.Proc) {
		vm.Boot(p)
		th := &guest.Thread{OS: vm.OS, P: p}
		f := vm.OS.FS.Create("data", 16*mib)
		th.ReadFile(f, 0, 16*mib)
		vm.OS.DropCaches()
		th.ReadFile(f, 0, 16*mib)
		th.FlushCPU()
		m.Shutdown()
	})
	m.Run()
	return m, a
}

func TestCleanRunPassesEveryEvent(t *testing.T) {
	_, a := runScenario(t, "", 1)
	if err := a.Final(); err != nil {
		t.Fatalf("invariant violation on a fault-free run: %v", err)
	}
	if a.Checks() == 0 {
		t.Fatal("auditor never ran")
	}
}

func TestFaultyRunPassesAudit(t *testing.T) {
	m, a := runScenario(t, "disk-read-err:0.05;disk-lat:0.1:1ms;swapin-fail:0.1;slot-exhaust:0.02;map-poison:0.05", 16)
	if err := a.Final(); err != nil {
		t.Fatalf("invariant violation under fault injection: %v", err)
	}
	// The plan must actually have fired, or the test proves nothing.
	fired := m.Met.Get(metrics.FaultDiskReadErrors) +
		m.Met.Get(metrics.FaultDiskDelays) +
		m.Met.Get(metrics.FaultSwapInTransient) +
		m.Met.Get(metrics.FaultSlotRefusals) +
		m.Met.Get(metrics.FaultMapperPoisoned)
	if fired == 0 {
		t.Fatal("no injected faults fired; scenario too small for the plan")
	}
}

func TestStrideCountsChecks(t *testing.T) {
	_, a1 := runScenario(t, "", 1)
	_, a64 := runScenario(t, "", 64)
	if a1.Checks() <= a64.Checks() {
		t.Fatalf("stride 1 ran %d checks, stride 64 ran %d", a1.Checks(), a64.Checks())
	}
}

func TestDetachStopsChecking(t *testing.T) {
	m := hyper.NewMachine(hyper.MachineConfig{Seed: 1, HostMemPages: 1 << 14})
	a := Attach(m, 1)
	a.Detach()
	m.Env.Go("idle", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		m.Shutdown()
	})
	m.Run()
	if a.Checks() != 0 {
		t.Fatalf("detached auditor still ran %d checks", a.Checks())
	}
}

// corrupt runs a clean scenario, applies f to one resident page, and
// returns the resulting Check error.
func corrupt(t *testing.T, f func(pg *hostmm.Page)) error {
	t.Helper()
	m, a := runScenario(t, "", 0)
	if err := a.Final(); err != nil {
		t.Fatalf("pre-corruption audit failed: %v", err)
	}
	var victim *hostmm.Page
	for _, vm := range m.VMs {
		vm.EachPage(func(pg *hostmm.Page) {
			if victim == nil && pg.State == hostmm.ResidentAnon {
				victim = pg
			}
		})
	}
	if victim == nil {
		t.Fatal("no resident-anon page to corrupt")
	}
	f(victim)
	return a.Check()
}

func TestCheckCatchesEPTOnNonResident(t *testing.T) {
	err := corrupt(t, func(pg *hostmm.Page) {
		pg.EPT = true
		pg.State = hostmm.SwappedOut
		pg.SwapSlot = -1
	})
	if err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestCheckCatchesBackwardsCounter(t *testing.T) {
	m, a := runScenario(t, "", 0)
	if err := a.Final(); err != nil {
		t.Fatalf("clean audit failed: %v", err)
	}
	if m.Met.Get(metrics.DiskOps) == 0 {
		t.Fatal("scenario produced no disk I/O")
	}
	m.Met.Add(metrics.DiskOps, -1)
	err := a.Check()
	if err == nil || !strings.Contains(err.Error(), "went backwards") {
		t.Fatalf("backwards counter not detected: %v", err)
	}
}

func TestFirstErrorSticks(t *testing.T) {
	m, a := runScenario(t, "", 0)
	m.Met.Add(metrics.HostSwapOuts, 10)
	if err := a.Final(); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	m.Met.Add(metrics.HostSwapOuts, -1)
	first := a.Final()
	if first == nil {
		t.Fatal("violation not recorded by Final")
	}
	m.Met.Add(metrics.HostSwapOuts, 1) // "repair" the state
	if again := a.Final(); again != first {
		t.Fatalf("Final changed its answer: %v vs %v", first, again)
	}
}

// TestHistoryRecordsRecentChecks: every explicit Check leaves a one-line
// summary in the bounded history — the tail failure capture embeds in
// crash-diagnostics records — and the ring keeps only the most recent
// entries, newest last.
func TestHistoryRecordsRecentChecks(t *testing.T) {
	m, a := runScenario(t, "", 0)
	for i := 0; i < histCap+3; i++ {
		if err := a.Check(); err != nil {
			t.Fatalf("check %d failed: %v", i, err)
		}
	}
	h := a.History()
	if len(h) != histCap {
		t.Fatalf("history length = %d, want %d", len(h), histCap)
	}
	for i, s := range h {
		if !strings.Contains(s, "ok") {
			t.Fatalf("entry %d = %q, want an ok summary", i, s)
		}
	}
	// Entries are ordered oldest first: the last entry is the newest check.
	if !strings.Contains(h[len(h)-1], "ok") {
		t.Fatalf("newest entry malformed: %q", h[len(h)-1])
	}
	// A violating check is noted too, flagged as such.
	m.Met.Add(metrics.HostSwapOuts, 10)
	m.Met.Add(metrics.HostSwapOuts, -11) // drive the counter negative-ward
	if err := a.Check(); err == nil {
		t.Skip("scenario did not produce a violation; history-of-ok already covered")
	}
	h = a.History()
	if !strings.Contains(h[len(h)-1], "VIOLATION") {
		t.Fatalf("violating check not flagged in history: %q", h[len(h)-1])
	}
	// History returns a copy: mutating it cannot corrupt the auditor.
	h[0] = "clobbered"
	if a.History()[0] == "clobbered" {
		t.Fatal("History exposed internal state")
	}
}
