// Command vswapsimd serves the simulator as a long-running daemon: an
// HTTP API over the same deterministic executor the CLIs use, with a
// bounded job queue, a crash-safe content-addressed result cache, and
// live health/metrics endpoints.
//
// Usage:
//
//	vswapsimd [flags]
//
// Endpoints:
//
//	POST /jobs              submit a job (registry id or inline scenario YAML)
//	GET  /jobs/{id}         job status + result document when terminal
//	GET  /jobs/{id}/events  server-sent-events progress stream (with heartbeats)
//	GET  /healthz           liveness + queue/worker load picture
//	GET  /metrics           Prometheus text format (serve_* counters + gauges)
//
// Admission control: when the bounded queue is full, POST /jobs answers
// 429 with a Retry-After hint; -rate/-burst arm a global token-bucket
// limiter; -maxbody bounds the request body. -maxevents and -celltimeout
// are server-side ceilings on the per-job watchdog budgets: a job may
// tighten them but never exceed them.
//
// Results are memoized in a content-addressed cache under -cachedir,
// keyed by every output-influencing knob plus the binary's own hash —
// entries are written atomically, checksummed on read, and a corrupted
// or version-mismatched entry is recomputed, never served. Delete the
// directory to flush; rebuilding the binary invalidates it implicitly.
//
// SIGINT/SIGTERM drain gracefully: stop admitting, let in-flight jobs
// finish within -draintimeout (then cancel them), and persist every
// accepted-but-unfinished job to -statefile so the next start re-runs
// exactly those jobs under their original ids.
//
// Exit codes: 0 clean drain (no job lost or interrupted), 1 runtime
// error, 2 usage, 3 forced drain (in-flight jobs were canceled and
// persisted for restart recovery).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vswapsim/internal/serve"
)

// Exit codes.
const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitForcedDrain = 3
)

// usageHeader precedes the flag listing in -h output; the usage test
// asserts it stays in sync with the actual command form.
const usageHeader = `Usage:
  vswapsimd [flags]

Flags:
`

// cliConfig holds the parsed command line.
type cliConfig struct {
	addr         string
	cacheDir     string
	stateFile    string
	workers      int
	queueDepth   int
	parallel     int
	maxBody      int64
	rate         float64
	burst        int
	retryAfter   time.Duration
	maxEvents    uint64
	cellTimeout  time.Duration
	heartbeat    time.Duration
	writeTimeout time.Duration
	drainTimeout time.Duration
	diagDir      string
}

// newFlagSet registers every vswapsimd flag on a fresh FlagSet.
func newFlagSet(c *cliConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("vswapsimd", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&c.cacheDir, "cachedir", ".vswapsimd/cache",
		"content-addressed result cache directory (delete it to flush; rebuilding the binary invalidates it)")
	fs.StringVar(&c.stateFile, "statefile", ".vswapsimd/state.json",
		"queue-state file for restart recovery of jobs accepted but unfinished at shutdown (empty = no persistence)")
	fs.IntVar(&c.workers, "workers", 2, "number of concurrent job workers")
	fs.IntVar(&c.queueDepth, "queue", 16,
		"bounded queue depth; a full queue rejects submissions with 429 + Retry-After")
	fs.IntVar(&c.parallel, "parallel", 0,
		"per-job executor parallelism when the job does not set its own (0 = GOMAXPROCS)")
	fs.Int64Var(&c.maxBody, "maxbody", 1<<20, "maximum request body size in bytes")
	fs.Float64Var(&c.rate, "rate", 0, "global job-submission rate limit per second (0 = unlimited)")
	fs.IntVar(&c.burst, "burst", 0, "rate-limiter burst size (0 = derived from -rate)")
	fs.DurationVar(&c.retryAfter, "retryafter", time.Second, "Retry-After hint returned with 429 responses")
	fs.Uint64Var(&c.maxEvents, "maxevents", 0,
		"server-side ceiling on the per-job simulated-event budget (0 = no ceiling)")
	fs.DurationVar(&c.cellTimeout, "celltimeout", 0,
		"server-side ceiling on the per-job wall-clock budget, e.g. 30s (0 = no ceiling)")
	fs.DurationVar(&c.heartbeat, "heartbeat", 5*time.Second, "event-stream keepalive interval")
	fs.DurationVar(&c.writeTimeout, "writetimeout", 10*time.Second,
		"per-write deadline on event streams; a client slower than this is dropped")
	fs.DurationVar(&c.drainTimeout, "draintimeout", 10*time.Second,
		"how long a SIGINT/SIGTERM drain waits for in-flight jobs before canceling them")
	fs.StringVar(&c.diagDir, "diagdir", "",
		"write one replayable crash-diagnostics bundle (JSON) per failed cell into this directory")
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usageHeader)
		fs.PrintDefaults()
	}
	return fs
}

// parseArgs parses args (without the program name). Parse errors are
// reported on stderr by the FlagSet itself.
func parseArgs(args []string) (cliConfig, error) {
	var c cliConfig
	fs := newFlagSet(&c)
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if fs.NArg() > 0 {
		return c, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if c.cacheDir == "" {
		return c, errors.New("-cachedir must not be empty")
	}
	if c.workers < 1 {
		return c, fmt.Errorf("invalid -workers %d: must be >= 1", c.workers)
	}
	if c.queueDepth < 1 {
		return c, fmt.Errorf("invalid -queue %d: must be >= 1", c.queueDepth)
	}
	if c.parallel < 0 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = GOMAXPROCS)", c.parallel)
	}
	if c.maxBody < 1 {
		return c, fmt.Errorf("invalid -maxbody %d: must be >= 1", c.maxBody)
	}
	if c.rate < 0 {
		return c, fmt.Errorf("invalid -rate %v: must be >= 0", c.rate)
	}
	if c.burst < 0 {
		return c, fmt.Errorf("invalid -burst %d: must be >= 0", c.burst)
	}
	if c.retryAfter < 0 || c.cellTimeout < 0 || c.heartbeat < 0 || c.writeTimeout < 0 || c.drainTimeout < 0 {
		return c, errors.New("durations must be >= 0")
	}
	return c, nil
}

// serverConfig compiles the command line into a serve.Config.
func (c cliConfig) serverConfig() serve.Config {
	return serve.Config{
		CacheDir:       c.cacheDir,
		StatePath:      c.stateFile,
		Workers:        c.workers,
		QueueDepth:     c.queueDepth,
		Parallel:       c.parallel,
		MaxBodyBytes:   c.maxBody,
		RatePerSec:     c.rate,
		RateBurst:      c.burst,
		RetryAfter:     c.retryAfter,
		MaxEventsCap:   c.maxEvents,
		CellTimeoutCap: c.cellTimeout,
		Heartbeat:      c.heartbeat,
		WriteTimeout:   c.writeTimeout,
		DiagDir:        c.diagDir,
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseArgs(args)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(stderr, "vswapsimd: %v (run 'vswapsimd -h' for usage)\n", err)
		}
		return exitUsage
	}
	return serveDaemon(c, stdout, stderr)
}

// serveDaemon runs the daemon until a signal drains it.
func serveDaemon(c cliConfig, stdout, stderr io.Writer) int {
	s, err := serve.New(c.serverConfig())
	if err != nil {
		fmt.Fprintf(stderr, "vswapsimd: %v\n", err)
		return exitError
	}
	s.Start()

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		fmt.Fprintf(stderr, "vswapsimd: %v\n", err)
		return exitError
	}
	httpServer := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()
	fmt.Fprintf(stdout, "vswapsimd: listening on %s (cache %s, %d workers, queue %d)\n",
		ln.Addr(), c.cacheDir, c.workers, c.queueDepth)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "vswapsimd: %v\n", err)
		return exitError
	case <-sigCtx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "vswapsimd: draining (new submissions rejected)...")

	// Close the listener immediately (in the background: live event
	// streams keep Shutdown from returning until their jobs settle), then
	// give in-flight jobs the grace period before forcing them out.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*c.drainTimeout)
	defer shutCancel()
	go httpServer.Shutdown(shutCtx)

	drainCtx, drainCancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer drainCancel()
	clean, err := s.Drain(drainCtx)
	if err != nil {
		fmt.Fprintf(stderr, "vswapsimd: drain: %v\n", err)
		return exitError
	}
	if !clean {
		fmt.Fprintln(stdout, "vswapsimd: forced drain: in-flight jobs canceled and persisted for restart recovery")
		return exitForcedDrain
	}
	fmt.Fprintln(stdout, "vswapsimd: clean drain, all accepted jobs settled")
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
