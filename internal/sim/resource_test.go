package sim

import "testing"

func TestResourceExclusive(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	var order []string
	env.Go("a", func(p *Proc) {
		r.Acquire(p)
		order = append(order, "a-in")
		p.Sleep(2 * Second)
		order = append(order, "a-out")
		r.Release()
	})
	env.Go("b", func(p *Proc) {
		p.Sleep(Second)
		r.Acquire(p)
		order = append(order, "b-in")
		if p.Now() != Time(2*Second) {
			t.Errorf("b acquired at %v, want 2s", p.Now())
		}
		r.Release()
	})
	env.Run()
	want := []string{"a-in", "a-out", "b-in"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	var got []int
	env.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * Second)
		r.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		env.Go("w", func(p *Proc) {
			p.Sleep(Duration(i+1) * Second) // arrive in order
			r.Acquire(p)
			got = append(got, i)
			r.Release()
		})
	}
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", got)
		}
	}
}

func TestResourceCapacity(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 2)
	maxConcurrent := 0
	cur := 0
	for i := 0; i < 6; i++ {
		env.Go("w", func(p *Proc) {
			r.Acquire(p)
			cur++
			if cur > maxConcurrent {
				maxConcurrent = cur
			}
			p.Sleep(Second)
			cur--
			r.Release()
		})
	}
	env.Run()
	if maxConcurrent != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxConcurrent)
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release()
}
