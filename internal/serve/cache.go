package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The result cache stores one file per key: a single JSON header line
// (version, key, payload checksum, payload length), a newline, then the
// payload bytes verbatim. Entries are written atomically — temp file in
// the cache directory, fsync, rename — so a crash mid-write can leave a
// stray temp file but never a half-written entry under a live name. Reads
// verify everything the header claims; any mismatch (truncation, flipped
// bytes, a foreign or renamed entry, an old format version) makes the
// entry a MISS that Get also deletes, so a corrupted result is recomputed
// and never served. The cache-corruption tests drive every branch.

const cacheVersion = 1

// entryHeader is the first line of a cache entry file.
type entryHeader struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Sum     string `json:"sum_sha256"`
	Size    int    `json:"size"`
}

// Cache is a content-addressed result store rooted at one directory.
// Methods are safe for concurrent use: atomicity comes from rename, and
// concurrent writers of the same key write identical bytes by definition.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its entry file. Keys are hex (lowercase sha256), so
// the name needs no escaping; anything else would have failed validation
// long before reaching the cache.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".entry") }

// Get returns the payload stored under key, or nil on a miss. corrupt
// reports that an entry file existed but failed verification — the
// caller counts it and recomputes; the broken file is removed so the
// recomputed entry can take its place cleanly.
func (c *Cache) Get(key string) (payload []byte, corrupt bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	payload, ok := verifyEntry(key, data)
	if !ok {
		os.Remove(c.path(key))
		return nil, true
	}
	return payload, false
}

// verifyEntry checks one entry file's bytes against its own header.
func verifyEntry(key string, data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	var h entryHeader
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		return nil, false
	}
	body := data[nl+1:]
	if h.Version != cacheVersion || h.Key != key || h.Size != len(body) {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != h.Sum {
		return nil, false
	}
	return body, true
}

// Put stores payload under key atomically: the entry is staged as a temp
// file in the cache directory, synced, and renamed into place, so readers
// only ever observe absent or complete entries.
func (c *Cache) Put(key string, payload []byte) (err error) {
	sum := sha256.Sum256(payload)
	head, err := json.Marshal(entryHeader{
		Version: cacheVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Size:    len(payload),
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-entry-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(append(head, '\n')); err != nil {
		return err
	}
	if _, err = tmp.Write(payload); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
