package guest

import (
	"vswapsim/internal/metrics"
)

// raState is per-file readahead bookkeeping; stored OS-side so VFile stays
// a plain layout descriptor.
type raState struct {
	next int64
	win  int
}

// raWindow updates readahead state for a miss at file-relative block b and
// returns the window size (in blocks, >= 1).
func (os *OS) raWindow(f *VFile, b int64) int {
	if os.ra == nil {
		os.ra = make(map[*VFile]*raState)
	}
	st, ok := os.ra[f]
	if !ok {
		st = &raState{}
		os.ra[f] = st
	}
	if b == st.next && st.win > 0 {
		st.win *= 2
		if st.win > os.Cfg.ReadaheadMax {
			st.win = os.Cfg.ReadaheadMax
		}
	} else {
		st.win = os.Cfg.ReadaheadMin
	}
	win := st.win
	if rest := f.Blocks - b; int64(win) > rest {
		win = int(rest)
	}
	if win < 1 {
		win = 1
	}
	st.next = b + int64(win)
	return win
}

// readBufs is the per-read scratch checked out from OS.readBufs: the block
// run and target frames of one readahead window.
type readBufs struct {
	run  []int64
	gfns []int
}

func (os *OS) getReadBufs() *readBufs {
	if n := len(os.readBufs); n > 0 {
		b := os.readBufs[n-1]
		os.readBufs = os.readBufs[:n-1]
		return b
	}
	return &readBufs{}
}

func (os *OS) putReadBufs(b *readBufs) {
	os.readBufs = append(os.readBufs, b)
}

// ReadFile reads [off, off+n) of f through the page cache, with
// sequential readahead on misses. Offsets are in bytes.
func (t *Thread) ReadFile(f *VFile, off, n int64) {
	os := t.OS
	t.Compute(os.Cfg.SyscallCost)
	os.touchKernel(t.P)
	first := off / pageSizeBytes
	last := (off + n - 1) / pageSizeBytes
	for b := first; b <= last; b++ {
		if t.ProcKilled() {
			return
		}
		vb := f.Block(b)
		if gfn, ok := os.cache.get(vb); ok {
			os.touchLRU(gfn)
			os.Plat.TouchPage(t.P, int(gfn), false)
			t.Compute(os.Cfg.PerPageCost)
			continue
		}
		// Miss: read a readahead window of uncached blocks.
		win := os.raWindow(f, b)
		bufs := os.getReadBufs()
		run := bufs.run[:0]
		for j := 0; j < win; j++ {
			vj := f.Block(b) + int64(j)
			if b+int64(j) >= f.Blocks {
				break
			}
			if _, cached := os.cache.get(vj); cached {
				break // keep the disk request contiguous
			}
			run = append(run, vj)
		}
		gfns := bufs.gfns[:0]
		for range run {
			gfn := os.allocPage(t)
			if gfn < 0 {
				bufs.run, bufs.gfns = run, gfns
				os.putReadBufs(bufs)
				return
			}
			gfns = append(gfns, int(gfn))
		}
		os.Plat.DiskRead(t.P, gfns, run[0])
		for j, vb2 := range run {
			gfn := int32(gfns[j])
			os.insertCache(gfn, vb2, j == 0)
		}
		bufs.run, bufs.gfns = run, gfns
		os.putReadBufs(bufs)
		if len(run) > 1 {
			os.Met.Add(metrics.GuestReadaheadPgs, int64(len(run)-1))
		}
		os.Met.Inc(metrics.GuestMajorFaults)
		t.Compute(os.Cfg.PerPageCost)
	}
}

// WriteFile writes [off, off+n) of f through the page cache. Whole-block
// writes overwrite without reading; partial blocks read-modify-write.
// Dirty pages are written back by Sync, reclaim, or the dirty-ratio
// throttle.
func (t *Thread) WriteFile(f *VFile, off, n int64) {
	os := t.OS
	t.Compute(os.Cfg.SyscallCost)
	os.touchKernel(t.P)
	pos := off
	end := off + n
	for pos < end {
		if t.ProcKilled() {
			return
		}
		b := pos / pageSizeBytes
		inPage := pos % pageSizeBytes
		span := int64(pageSizeBytes) - inPage
		if span > end-pos {
			span = end - pos
		}
		vb := f.Block(b)
		gfn, cached := os.cache.get(vb)
		whole := inPage == 0 && span == pageSizeBytes
		if !cached {
			ng := os.allocPage(t)
			if ng < 0 {
				return
			}
			gfn = ng
			if whole {
				// Overwrite in place: copy_to_page via REP MOVS.
				os.Plat.OverwritePage(t.P, int(gfn), true)
			} else {
				// Read-modify-write: fetch the block first.
				os.Plat.DiskRead(t.P, []int{int(gfn)}, vb)
				os.Plat.WriteSpan(t.P, int(gfn), int(inPage), int(span))
			}
			os.insertCache(gfn, vb, true)
		} else {
			os.touchLRU(gfn)
			if whole {
				os.Plat.OverwritePage(t.P, int(gfn), true)
			} else {
				os.Plat.WriteSpan(t.P, int(gfn), int(inPage), int(span))
			}
		}
		pi := &os.pages[gfn]
		if !pi.dirty {
			pi.dirty = true
			os.dirtyCount++
		}
		t.Compute(os.Cfg.PerPageCost)
		pos += span
	}
	os.throttleDirty(t)
}

// Sync writes back every dirty cached block of f (fsync).
func (t *Thread) Sync(f *VFile) {
	os := t.OS
	t.Compute(os.Cfg.SyscallCost)
	var items []wbItem
	for b := int64(0); b < f.Blocks; b++ {
		vb := f.Block(b)
		if gfn, ok := os.cache.get(vb); ok && os.pages[gfn].dirty {
			items = append(items, wbItem{gfn: gfn, block: vb})
		}
	}
	os.flushItems(t, items)
}

// throttleDirty emulates the dirty-ratio writer throttle: when too much of
// memory is dirty, the writing thread must clean some pages itself.
func (os *OS) throttleDirty(t *Thread) {
	limit := os.Cfg.MemPages * os.Cfg.DirtyRatioPct / 100
	if os.dirtyCount <= limit {
		return
	}
	// Flush the oldest dirty cache pages (scan from the inactive tail).
	var items []wbItem
	want := os.dirtyCount - limit
	for _, l := range []*gfnList{&os.inactiveFile, &os.activeFile} {
		for gfn := l.tail; gfn != nilGFN && len(items) < want; gfn = os.pages[gfn].prev {
			pi := &os.pages[gfn]
			if pi.dirty {
				items = append(items, wbItem{gfn: gfn, block: pi.block})
			}
		}
		if len(items) >= want {
			break
		}
	}
	os.flushItems(t, items)
}

// flushItems writes the given dirty cache pages back (in contiguous runs,
// sorted by block) and marks them clean; the pages stay cached.
func (os *OS) flushItems(t *Thread, items []wbItem) {
	if len(items) == 0 {
		return
	}
	sortWbByBlock(items)
	start := 0
	for i := 1; i <= len(items); i++ {
		if i < len(items) && items[i].block == items[i-1].block+1 {
			continue
		}
		run := items[start:i]
		gfns := make([]int, len(run))
		for j, w := range run {
			gfns[j] = int(w.gfn)
		}
		os.Plat.DiskWrite(t.P, gfns, run[0].block)
		start = i
	}
	for _, w := range items {
		pi := &os.pages[w.gfn]
		if pi.dirty {
			pi.dirty = false
			os.dirtyCount--
		}
	}
}

// insertCache registers a freshly-read block in the page cache.
// Demand-read pages start referenced; pure readahead pages do not.
func (os *OS) insertCache(gfn int32, vblock int64, demanded bool) {
	pi := &os.pages[gfn]
	pi.kind = kindCache
	pi.block = vblock
	pi.dirty = false
	pi.referenced = demanded
	os.cache.set(vblock, gfn)
	os.inactiveFile.pushFront(os, gfn)
}

// DropCaches releases every clean cached page (echo 3 >
// /proc/sys/vm/drop_caches), useful in experiments.
func (os *OS) DropCaches() {
	for _, l := range []*gfnList{&os.activeFile, &os.inactiveFile} {
		for l.size > 0 {
			gfn := l.back()
			pi := &os.pages[gfn]
			if pi.dirty {
				l.rotate(os, gfn)
				// A fully dirty list cannot be dropped; stop to avoid spin.
				if l.head == gfn {
					break
				}
				continue
			}
			l.remove(os, gfn)
			os.cache.del(pi.block)
			os.putFree(gfn)
		}
	}
}

// sortWbByBlock sorts writeback items by destination block (insertion
// sort: batches are small).
func sortWbByBlock(items []wbItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].block < items[j-1].block; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
