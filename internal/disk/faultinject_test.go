package disk

import (
	"testing"

	"vswapsim/internal/fault"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// TestInjectedLatencySpike: a rate-1 disk-lat rule extends every request's
// completion time by exactly the configured spike.
func TestInjectedLatencySpike(t *testing.T) {
	const extra = 5 * sim.Millisecond
	done := func(spec string) sim.Time {
		env := sim.NewEnv(1)
		met := metrics.NewSet()
		d := NewDevice(env, Constellation7200(), met)
		if spec != "" {
			d.SetInjector(fault.New(fault.MustParse(spec), 7, met))
		}
		return d.Submit(Read, 100, 4)
	}
	plain := done("")
	spiked := done("disk-lat:1:5ms")
	if got := spiked.Sub(plain); got != extra {
		t.Fatalf("latency spike added %v, want %v", got, extra)
	}
}

// TestInjectedErrorRetries: a rate-1 error rule exhausts the retry budget,
// counting each retry and the final exhaustion, and the request still
// completes (later than a clean one).
func TestInjectedErrorRetries(t *testing.T) {
	env := sim.NewEnv(1)
	met := metrics.NewSet()
	d := NewDevice(env, Constellation7200(), met)
	clean := d.model.Service(d.headPos, 100, 4)
	d.SetInjector(fault.New(fault.MustParse("disk-write-err:1"), 7, met))
	done := d.Submit(Write, 100, 4)
	if got := met.Get(metrics.FaultDiskRetries); got != int64(errMaxRetries) {
		t.Errorf("%s = %d, want %d", metrics.FaultDiskRetries, got, errMaxRetries)
	}
	if got := met.Get(metrics.FaultDiskExhausted); got != 1 {
		t.Errorf("%s = %d, want 1", metrics.FaultDiskExhausted, got)
	}
	if met.Get(metrics.FaultDiskReadErrors) != 0 {
		t.Error("write errors counted as read errors")
	}
	if sim.Time(0).Add(clean) >= done {
		t.Errorf("retried request done at %v, not later than clean service %v", done, clean)
	}
}

// TestInjectionDeterministic: two identically seeded devices under the same
// plan produce identical completion times for identical request streams.
func TestInjectionDeterministic(t *testing.T) {
	run := func() []sim.Time {
		env := sim.NewEnv(1)
		met := metrics.NewSet()
		d := NewDevice(env, Constellation7200(), met)
		d.SetInjector(fault.New(fault.MustParse("disk-read-err:0.2;disk-lat:0.3:1ms"), 42, met))
		var out []sim.Time
		for i := 0; i < 100; i++ {
			out = append(out, d.Submit(Read, int64(i*8), 4))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d completion differs: %v vs %v", i, a[i], b[i])
		}
	}
}
