package hyper

import (
	"vswapsim/internal/hostmm"
	"vswapsim/internal/sim"
)

// Release tears a guest down and returns everything it holds to the host:
// every frame is uncharged, every swap slot freed, every file mapping
// removed, the lazily-freed COW sources drained, and the VM removed from
// the machine. The cluster layer uses it for soomkiller kills and for the
// source side of a completed migration.
//
// The caller must have exited the guest's processes and shut its kernel
// daemons down first; Release then quiesces the remaining hypervisor
// state itself — emulated pages are force-finalized (Forget cannot touch
// a page mid-emulation) and in-flight faults or DMA pins are allowed to
// drain on the simulated clock before the sweep runs.
func (vm *VM) Release(p *sim.Proc) {
	for {
		var emu []*hostmm.Page
		if vm.Preventer != nil {
			vm.EachPage(func(pg *hostmm.Page) {
				if pg.State == hostmm.Emulated {
					emu = append(emu, pg)
				}
			})
		}
		if len(emu) == 0 && vm.CG.Pinned() == 0 {
			break
		}
		for _, pg := range emu {
			// Content is about to be discarded wholesale, so finalize as a
			// remap (no disk read) rather than a merge.
			if pg.State == hostmm.Emulated {
				vm.Preventer.ForceFinalize(p, pg, false)
			}
		}
		if vm.CG.Pinned() > 0 {
			p.Sleep(sim.Millisecond)
		}
	}
	vm.EachPage(func(pg *hostmm.Page) { vm.M.MM.Forget(pg) })
	vm.M.MM.DrainLazy(vm.CG)
	for i, other := range vm.M.VMs {
		if other == vm {
			vm.M.VMs = append(vm.M.VMs[:i], vm.M.VMs[i+1:]...)
			break
		}
	}
}
