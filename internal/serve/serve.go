// Package serve is the simulation-as-a-service layer (ROADMAP item 5):
// a long-running HTTP daemon (cmd/vswapsimd) that accepts experiment and
// scenario jobs, runs them on a bounded worker pool reusing the parallel
// executor, and memoizes results in a crash-safe content-addressed cache.
//
// Determinism is what makes the cache sound: the executor's output is a
// pure function of (target, seed, scale, quick, faults, backend, policy,
// trace/audit/event budgets) and byte-identical at any parallelism, so a
// cache hit can serve the stored bytes verbatim — and tests prove warm
// and cold responses identical. Robustness is the headline elsewhere:
// bounded admission (429 + Retry-After), per-job panic isolation into
// FailureRecords, per-job watchdog budgets, graceful drain with queue
// persistence for restart recovery, and slow-client-safe event streams.
package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"vswapsim/internal/experiment"
	"vswapsim/internal/fault"
	"vswapsim/internal/scenario"
	"vswapsim/internal/swapback"
)

// Job states, in lifecycle order. done and failed are terminal.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// terminal reports whether a job in the given state will never change
// state again.
func terminal(state string) bool { return state == StateDone || state == StateFailed }

// JobRequest is the POST /jobs body: what to run and every knob that can
// influence the result. Exactly one of ID (a registry experiment id) and
// Scenario (an inline scenario YAML document) must be set. Zero values
// take the executor defaults (seed 42, scale 1.0). Parallel is an
// execution hint only — it never enters the cache key, because results
// are byte-identical across parallelism. CellTimeoutMS arms the PR-4
// wall-clock watchdog; it too stays out of the cache key (wall kills are
// nondeterministic, and timed-out jobs are never cached).
type JobRequest struct {
	ID            string  `json:"id,omitempty"`
	Scenario      string  `json:"scenario,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
	Scale         float64 `json:"scale,omitempty"`
	Quick         bool    `json:"quick,omitempty"`
	Parallel      int     `json:"parallel,omitempty"`
	TraceRing     int     `json:"tracering,omitempty"`
	Faults        string  `json:"faults,omitempty"`
	Swapback      string  `json:"swapback,omitempty"`
	SwapPolicy    string  `json:"swappolicy,omitempty"`
	AuditEvery    int     `json:"auditevery,omitempty"`
	MaxEvents     uint64  `json:"maxevents,omitempty"`
	CellTimeoutMS int64   `json:"celltimeout_ms,omitempty"`
}

// normalize fills executor defaults so equal-meaning requests hash and
// validate identically.
func (r JobRequest) normalize() JobRequest {
	if r.Seed == 0 {
		r.Seed = 42
	}
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	return r
}

// target names what the job runs, for labels and diag bundles.
func (r JobRequest) target() string {
	if r.Scenario != "" {
		if sc, err := scenario.Parse([]byte(r.Scenario)); err == nil {
			return "scenario:" + sc.Name
		}
		return "scenario:?"
	}
	return r.ID
}

// validate checks the request against the same contracts the CLIs
// enforce, returning a client-facing error. The parsed scenario (when
// inline) is returned so compile need not parse twice.
func (r JobRequest) validate() (*scenario.Scenario, error) {
	if (r.ID == "") == (r.Scenario == "") {
		return nil, fmt.Errorf("exactly one of \"id\" and \"scenario\" must be set")
	}
	if r.Scale <= 0 || r.Scale > 16 {
		return nil, fmt.Errorf("invalid scale %v: must be in (0, 16]", r.Scale)
	}
	if r.Parallel < 0 {
		return nil, fmt.Errorf("invalid parallel %d: must be >= 0 (0 = server default)", r.Parallel)
	}
	if r.TraceRing < 0 {
		return nil, fmt.Errorf("invalid tracering %d: must be >= 0", r.TraceRing)
	}
	if r.AuditEvery < 0 {
		return nil, fmt.Errorf("invalid auditevery %d: must be >= 0", r.AuditEvery)
	}
	if r.CellTimeoutMS < 0 {
		return nil, fmt.Errorf("invalid celltimeout_ms %d: must be >= 0", r.CellTimeoutMS)
	}
	if _, err := fault.ParsePlan(r.Faults); err != nil {
		return nil, fmt.Errorf("invalid faults: %v", err)
	}
	kind, err := swapback.ParseKind(r.Swapback)
	if err != nil {
		return nil, fmt.Errorf("invalid swapback: %v", err)
	}
	pol, err := swapback.ParsePolicy(r.SwapPolicy)
	if err != nil {
		return nil, fmt.Errorf("invalid swappolicy: %v", err)
	}
	if r.ID != "" {
		if _, err := experiment.ByID(r.ID); err != nil {
			return nil, err
		}
		return nil, nil
	}
	sc, err := scenario.Parse([]byte(r.Scenario))
	if err != nil {
		return nil, fmt.Errorf("invalid scenario: %v", err)
	}
	// Mirror the CLI contract: a scenario that declares its own backend
	// axis owns it; a non-default request tier would silently fight it.
	if kind != swapback.HDD && len(sc.Backends) > 0 {
		return nil, fmt.Errorf("swapback conflicts with the scenario's backend declaration")
	}
	if pol != swapback.PolicyWriteback && sc.Policy != "" {
		return nil, fmt.Errorf("swappolicy conflicts with the scenario's policy declaration")
	}
	return sc, nil
}

// options compiles the request into executor Options, applying the
// server-side budget caps: a job may tighten the watchdogs but never
// loosen them past the daemon's ceilings.
func (r JobRequest) options(defaultParallel int, maxEventsCap uint64, cellTimeoutCap time.Duration) experiment.Options {
	plan, _ := fault.ParsePlan(r.Faults) // validated
	kind, _ := swapback.ParseKind(r.Swapback)
	pol, _ := swapback.ParsePolicy(r.SwapPolicy)
	par := r.Parallel
	if par <= 0 {
		par = defaultParallel
	}
	maxEvents := r.MaxEvents
	if maxEventsCap > 0 && (maxEvents == 0 || maxEvents > maxEventsCap) {
		maxEvents = maxEventsCap
	}
	cellTimeout := time.Duration(r.CellTimeoutMS) * time.Millisecond
	if cellTimeoutCap > 0 && (cellTimeout == 0 || cellTimeout > cellTimeoutCap) {
		cellTimeout = cellTimeoutCap
	}
	return experiment.Options{
		Seed: r.Seed, Scale: r.Scale, Quick: r.Quick,
		Parallel: par, TraceRing: r.TraceRing,
		Faults: plan, Swapback: kind, SwapPolicy: pol,
		AuditEvery: r.AuditEvery,
		MaxEvents:  maxEvents, CellTimeout: cellTimeout,
	}
}

// experiment resolves the request's target into a runnable Experiment.
func (r JobRequest) experiment() (experiment.Experiment, error) {
	if r.ID != "" {
		return experiment.ByID(r.ID)
	}
	sc, err := scenario.Parse([]byte(r.Scenario))
	if err != nil {
		return experiment.Experiment{}, fmt.Errorf("invalid scenario: %v", err)
	}
	return experiment.FromScenario(sc), nil
}

// Event is one progress notification on a job's event stream.
type Event struct {
	Seq   int    `json:"seq"`
	State string `json:"state"`
	Msg   string `json:"msg,omitempty"`
	AtMS  int64  `json:"at_ms"`
}

// Outcome summarizes what one executed job produced beyond its document
// bytes: the counts the exit hint derives from, the failure records for
// diag bundles, and — for a panic that escaped the executor's shields —
// the daemon-level FailureRecord.
type Outcome struct {
	Failures          int
	AssertionFailures int
	Incomplete        bool
	Records           []experiment.FailureRecord
	Failure           *experiment.FailureRecord
}

// JobStatus is the client-facing view of one job: the GET /jobs/{id}
// body, and the POST /jobs response. Document holds the job's
// machine-readable report verbatim (the exact cached bytes on a hit — the
// byte-identity contract is on this field) once the job is terminal.
type JobStatus struct {
	JobID             string                    `json:"job_id"`
	State             string                    `json:"state"`
	Cached            bool                      `json:"cached,omitempty"`
	CacheKey          string                    `json:"cache_key"`
	Request           JobRequest                `json:"request"`
	EnqueuedAtMS      int64                     `json:"enqueued_at_ms,omitempty"`
	StartedAtMS       int64                     `json:"started_at_ms,omitempty"`
	FinishedAtMS      int64                     `json:"finished_at_ms,omitempty"`
	Failures          int                       `json:"failures,omitempty"`
	AssertionFailures int                       `json:"assertion_failures,omitempty"`
	Incomplete        bool                      `json:"incomplete,omitempty"`
	ExitHint          int                       `json:"exit_hint"`
	Error             string                    `json:"error,omitempty"`
	Failure           *experiment.FailureRecord `json:"failure,omitempty"`
	Document          json.RawMessage           `json:"document,omitempty"`
}
