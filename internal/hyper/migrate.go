package hyper

import (
	"sort"

	"vswapsim/internal/disk"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/sim"
)

// MigrationPlan summarizes what live-migrating a guest would need to move,
// implementing the paper's future-work proposal (§7): hypervisors can
// migrate *memory mappings* instead of named page contents, and skip free
// and ballooned pages entirely, without any guest cooperation.
type MigrationPlan struct {
	// TotalPages is the guest's configured memory size.
	TotalPages int
	// TransferPages must be copied over the wire (anonymous content).
	TransferPages int
	// MappingOnly pages are named: only their (file, block) reference is
	// sent; the destination reads them from shared storage.
	MappingOnly int
	// SwapBacked pages live in the host swap area; their content must be
	// read and sent (or the slot migrated on shared swap).
	SwapBacked int
	// Skippable pages were never touched or are ballooned: nothing moves.
	Skippable int
}

// TransferBytes reports the bytes that cross the wire under
// mapping-migration (4 KiB per transferred page, ~16 B per mapping).
func (mp MigrationPlan) TransferBytes() int64 {
	return int64(mp.TransferPages+mp.SwapBacked)*4096 + int64(mp.MappingOnly)*16
}

// NaiveTransferBytes reports what a mapping-oblivious migration would send:
// every page that ever held content.
func (mp MigrationPlan) NaiveTransferBytes() int64 {
	return int64(mp.TransferPages+mp.SwapBacked+mp.MappingOnly) * 4096
}

// MigrationConfig parameterizes a stop-and-copy migration.
type MigrationConfig struct {
	// BandwidthMBps is the migration link speed (default 1000: 10 GbE).
	BandwidthMBps float64
	// UseMappings enables VSwapper-assisted migration: named pages move
	// as (file, block) references, untouched/ballooned pages are skipped.
	UseMappings bool
	// PerPageCPU is the marshalling cost per transferred page.
	PerPageCPU sim.Duration
	// Dest, when non-nil, makes the migration admission-checked against a
	// real destination host: if the pages that arrive resident (anonymous
	// content plus swap-backed content, which is read and shipped as
	// resident memory) cannot fit in the destination's physical memory even
	// after full reclaim — its pool capacity minus a 1/32 emergency reserve
	// — the migration is refused up front: no pages are read, no time
	// passes, the guest stays put. Arrivals that fit displace cold pages
	// through the destination's ordinary direct-reclaim path as they fault
	// in, so instantaneous free frames are deliberately not consulted. A
	// nil Dest keeps the historical notional-destination behavior.
	Dest *Machine
}

// MigrationResult is the outcome of one stop-and-copy migration.
type MigrationResult struct {
	Plan      MigrationPlan
	BytesSent int64
	// Duration is the stop-and-copy downtime: disk reads for non-resident
	// content plus wire time.
	Duration sim.Duration
	// Refused reports that the admission check against MigrationConfig.Dest
	// rejected the migration: the destination's physical memory cannot hold
	// the guest's resident set. BytesSent and Duration are zero and the
	// guest has not moved.
	Refused bool
}

// Migrate performs a stop-and-copy migration measurement: it reads every
// page whose content is not resident (from the host swap area or the disk
// image), then ships the required bytes over the link. Guest state is not
// mutated — the "destination" is notional, so experiments can compare
// strategies on identical state.
func (vm *VM) Migrate(p *sim.Proc, cfg MigrationConfig) MigrationResult {
	if cfg.BandwidthMBps == 0 {
		cfg.BandwidthMBps = 1000
	}
	if cfg.PerPageCPU == 0 {
		cfg.PerPageCPU = 500 * sim.Nanosecond
	}
	start := p.Now()
	plan := vm.PlanMigration()
	if cfg.Dest != nil {
		cap := cfg.Dest.Pool.Capacity()
		if arriving := plan.TransferPages + plan.SwapBacked; arriving > cap-cap/32 {
			// The destination could not hold the resident set this migration
			// delivers even by reclaiming everything else. Refuse
			// deterministically before any work: the refusal is a pure
			// function of (plan, destination capacity).
			return MigrationResult{Plan: plan, Refused: true}
		}
	}

	// Content that must be read before it can be sent.
	var swapSlots []int64
	var imageBlocks []int64
	pagesSent := 0
	for _, pg := range vm.pages {
		if pg == nil {
			continue
		}
		switch pg.State {
		case hostmm.SwappedOut:
			swapSlots = append(swapSlots, pg.SwapSlot)
			pagesSent++
		case hostmm.ResidentAnon, hostmm.Emulated:
			pagesSent++
		case hostmm.ResidentFile:
			if !cfg.UseMappings {
				pagesSent++
			}
		case hostmm.FileNonResident:
			if !cfg.UseMappings {
				imageBlocks = append(imageBlocks, pg.Backing.Block)
				pagesSent++
			}
		}
	}

	readRuns := func(vals []int64, phys func(int64) int64) {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var last sim.Time
		startIdx := 0
		for i := 1; i <= len(vals); i++ {
			if i < len(vals) && vals[i] == vals[i-1]+1 {
				continue
			}
			run := vals[startIdx:i]
			done := vm.M.Dev.Submit(disk.Read, phys(run[0]), len(run))
			if done > last {
				last = done
			}
			startIdx = i
		}
		p.SleepUntil(last)
	}
	if len(swapSlots) > 0 {
		readRuns(swapSlots, vm.M.MM.Swap.Phys)
	}
	if len(imageBlocks) > 0 {
		readRuns(imageBlocks, vm.Image.Phys)
	}

	var bytes int64
	if cfg.UseMappings {
		bytes = plan.TransferBytes()
	} else {
		bytes = plan.NaiveTransferBytes()
	}
	wire := sim.Duration(float64(bytes) / (cfg.BandwidthMBps * 1e6) * 1e9)
	p.Sleep(wire + sim.Duration(pagesSent)*cfg.PerPageCPU)
	return MigrationResult{
		Plan:      plan,
		BytesSent: bytes,
		Duration:  p.Now().Sub(start),
	}
}

// PlanMigration walks the guest's pages and classifies them. It is a pure
// inspection: no simulated time passes.
func (vm *VM) PlanMigration() MigrationPlan {
	plan := MigrationPlan{TotalPages: vm.Cfg.MemPages}
	for _, pg := range vm.pages {
		if pg == nil {
			plan.Skippable++
			continue
		}
		switch pg.State {
		case hostmm.Untouched, hostmm.Ballooned:
			plan.Skippable++
		case hostmm.ResidentFile, hostmm.FileNonResident:
			plan.MappingOnly++
		case hostmm.SwappedOut:
			plan.SwapBacked++
		case hostmm.ResidentAnon, hostmm.Emulated:
			plan.TransferPages++
		}
	}
	return plan
}
