package guest

import (
	"fmt"

	"vswapsim/internal/metrics"
)

// anon page states
const (
	anonNone = iota
	anonResident
	anonSwapped
)

// anonSlot is one virtual page of a process's anonymous memory.
type anonSlot struct {
	state uint8
	gfn   int32
	slot  int64 // guest swap slot when swapped
}

// Process is a guest user process: a bag of anonymous pages plus a kill
// flag set by the OOM killer. File I/O goes through the shared page cache,
// so the process itself only tracks anonymous memory.
type Process struct {
	Name     string
	OS       *OS
	Killed   bool
	slots    []anonSlot
	resident int
}

// NewProcess registers a process with the OS.
func (os *OS) NewProcess(name string) *Process {
	pr := &Process{Name: name, OS: os}
	os.procs = append(os.procs, pr)
	return pr
}

// Reserve extends the process's virtual address space by n pages (like
// brk/mmap: no frames are allocated until first touch).
func (pr *Process) Reserve(n int) (firstIdx int) {
	firstIdx = len(pr.slots)
	for i := 0; i < n; i++ {
		pr.slots = append(pr.slots, anonSlot{state: anonNone, gfn: nilGFN, slot: -1})
	}
	return firstIdx
}

// Pages reports the reserved virtual size in pages.
func (pr *Process) Pages() int { return len(pr.slots) }

// Resident reports resident anonymous pages.
func (pr *Process) Resident() int { return pr.resident }

// Footprint is the OOM badness: resident plus swapped pages.
func (pr *Process) Footprint() int {
	swapped := 0
	for i := range pr.slots {
		if pr.slots[i].state == anonSwapped {
			swapped++
		}
	}
	return pr.resident + swapped
}

// Exit frees all memory of the process.
func (pr *Process) Exit() {
	pr.OS.releaseProcessMemory(pr)
}

// TouchAnon accesses anonymous page idx. First touch allocates and zeroes
// a fresh frame (a full-page REP overwrite — the kernel's clear_page); a
// swapped page incurs a guest major fault read from the guest swap
// partition.
func (t *Thread) TouchAnon(pr *Process, idx int, write bool) {
	os := t.OS
	if idx < 0 || idx >= len(pr.slots) {
		panic(fmt.Sprintf("guest: anon index %d out of range", idx))
	}
	s := &pr.slots[idx]
	switch s.state {
	case anonResident:
		os.touchLRU(s.gfn)
		os.Plat.TouchPage(t.P, int(s.gfn), write)
	case anonNone:
		gfn := os.allocPage(t)
		if gfn < 0 || pr.Killed {
			if gfn >= 0 {
				os.putFree(gfn)
			}
			return // allocation failed or process OOM-killed meanwhile
		}
		os.bindAnon(pr, idx, gfn)
		// Kernel zeroing of the new page: REP string store.
		os.Plat.OverwritePage(t.P, int(gfn), true)
		if write {
			os.Plat.TouchPage(t.P, int(gfn), true)
		}
	case anonSwapped:
		os.guestSwapIn(t, pr, idx)
		if pr.Killed {
			return
		}
		if s.state == anonResident && write {
			os.Plat.TouchPage(t.P, int(s.gfn), true)
		}
	}
	t.Compute(os.Cfg.PerPageCost)
}

// guestSwapIn services a guest major fault on anonymous page idx of pr,
// reading a cluster of up to swapReadahead contiguous slots in one virtio
// request (guest swap readahead, like the host's).
const swapReadahead = 8

func (os *OS) guestSwapIn(t *Thread, pr *Process, idx int) {
	s := &pr.slots[idx]
	gfn := os.allocPage(t)
	// The allocation may have blocked in reclaim, during which the OOM
	// killer can tear this very process down: re-validate.
	if gfn < 0 || pr.Killed || s.state != anonSwapped {
		if gfn >= 0 {
			os.putFree(gfn)
		}
		return
	}
	slot := s.slot
	os.bindAnon(pr, idx, gfn)

	// Extend the read over contiguous allocated slots whose pages are
	// still swapped; allocate their frames without forcing reclaim.
	gfns := []int{int(gfn)}
	type extra struct {
		pr   *Process
		idx  int
		gfn  int32
		slot int64
	}
	var extras []extra
	for next := slot + 1; next < slot+swapReadahead; next++ {
		ow := os.swap.ownerAt(next)
		if ow.pr == nil || ow.pr.Killed || ow.pr.slots[ow.idx].state != anonSwapped ||
			ow.pr.slots[ow.idx].slot != next {
			break
		}
		if os.freePool <= os.watermarkLow {
			break // opportunistic only: never reclaim for readahead
		}
		g2 := os.takeFree(t.P)
		os.bindAnon(ow.pr, ow.idx, g2)
		os.pages[g2].referenced = false // prefetched, not yet used
		gfns = append(gfns, int(g2))
		extras = append(extras, extra{pr: ow.pr, idx: ow.idx, gfn: g2, slot: next})
	}

	// One virtio read for the whole cluster; the DMA overwrites frames.
	os.Plat.DiskRead(t.P, gfns, os.swap.block(slot))
	os.swap.release(slot)
	for _, e := range extras {
		os.swap.release(e.slot)
		os.Met.Inc(metrics.GuestSwapIns)
		os.noteThrashIn() // prefetched working-set pages count as thrash
	}
	os.Met.Inc(metrics.GuestSwapIns)
	os.Met.Inc(metrics.GuestMajorFaults)
	os.noteThrashIn()
}

// WriteAnonSpan writes n bytes at offset off into anonymous page idx —
// the access pattern of user code filling buffers, which exercises the
// Preventer's byte-granular emulation when the frame is host-swapped.
func (t *Thread) WriteAnonSpan(pr *Process, idx, off, n int) {
	os := t.OS
	s := &pr.slots[idx]
	switch s.state {
	case anonResident:
		os.touchLRU(s.gfn)
		os.Plat.WriteSpan(t.P, int(s.gfn), off, n)
	case anonNone:
		gfn := os.allocPage(t)
		if gfn < 0 {
			return
		}
		os.bindAnon(pr, idx, gfn)
		os.Plat.OverwritePage(t.P, int(gfn), true) // kernel zeroing
		os.Plat.WriteSpan(t.P, int(gfn), off, n)
	case anonSwapped:
		t.TouchAnon(pr, idx, false) // fault in via guest swap
		if pr.Killed {
			return
		}
		s = &pr.slots[idx]
		if s.state == anonResident {
			os.Plat.WriteSpan(t.P, int(s.gfn), off, n)
		}
	}
	t.Compute(os.Cfg.PerPageCost)
}

// OverwriteAnon overwrites the whole page ignoring old content (memset or
// page-sized memcpy destination). On a host-swapped frame this is exactly
// the "false read" trigger: the guest knows the old bytes are garbage but
// the host does not.
func (t *Thread) OverwriteAnon(pr *Process, idx int, rep bool) {
	os := t.OS
	s := &pr.slots[idx]
	switch s.state {
	case anonResident:
		os.touchLRU(s.gfn)
		os.Plat.OverwritePage(t.P, int(s.gfn), rep)
	case anonNone:
		gfn := os.allocPage(t)
		if gfn < 0 {
			return
		}
		os.bindAnon(pr, idx, gfn)
		os.Plat.OverwritePage(t.P, int(gfn), rep)
	case anonSwapped:
		// The guest still faults the page from its own swap (it cannot
		// know the caller will ignore the content), then overwrites.
		t.TouchAnon(pr, idx, false)
		if pr.Killed {
			return
		}
		s = &pr.slots[idx]
		if s.state == anonResident {
			os.Plat.OverwritePage(t.P, int(s.gfn), rep)
		}
	}
	t.Compute(os.Cfg.PerPageCost)
}

// FreeAnon releases one anonymous page back to the guest allocator (e.g.
// a freed heap chunk); the host is not informed.
func (t *Thread) FreeAnon(pr *Process, idx int) {
	os := t.OS
	s := &pr.slots[idx]
	switch s.state {
	case anonResident:
		pi := &os.pages[s.gfn]
		if pi.list != listNone {
			os.listByID(pi.list).remove(os, s.gfn)
		}
		os.putFree(s.gfn)
		pr.resident--
	case anonSwapped:
		os.swap.release(s.slot)
	}
	s.state = anonNone
	s.gfn = nilGFN
	s.slot = -1
}

// bindAnon wires a frame to a process page and puts it on the anon LRU.
func (os *OS) bindAnon(pr *Process, idx int, gfn int32) {
	pi := &os.pages[gfn]
	pi.kind = kindAnon
	pi.proc = pr
	pi.block = int64(idx)
	pi.referenced = true
	pi.dirty = true
	os.activeAnon.pushFront(os, gfn)
	s := &pr.slots[idx]
	s.state = anonResident
	s.gfn = gfn
	s.slot = -1
	pr.resident++
}
