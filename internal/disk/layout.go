package disk

import "fmt"

// Region is a named contiguous block range on the physical drive, e.g. one
// guest's disk image or the host swap partition.
type Region struct {
	Name   string
	Start  int64 // first physical block
	Blocks int64 // length in blocks
}

// Contains reports whether physical block b falls inside the region.
func (r Region) Contains(b int64) bool {
	return b >= r.Start && b < r.Start+r.Blocks
}

// Phys translates a region-relative block number to a physical block.
func (r Region) Phys(rel int64) int64 {
	if rel < 0 || rel >= r.Blocks {
		panic(fmt.Sprintf("disk: block %d outside region %q (%d blocks)", rel, r.Name, r.Blocks))
	}
	return r.Start + rel
}

// Rel translates a physical block back to a region-relative block number.
func (r Region) Rel(phys int64) int64 {
	if !r.Contains(phys) {
		panic(fmt.Sprintf("disk: physical block %d outside region %q", phys, r.Name))
	}
	return phys - r.Start
}

// Layout carves a drive into non-overlapping regions, mimicking how guest
// image files and the host swap partition occupy disjoint areas of the
// physical disk.
type Layout struct {
	total int64
	next  int64
	names map[string]Region
}

// NewLayout returns a layout over a drive of the given capacity in blocks.
func NewLayout(totalBlocks int64) *Layout {
	return &Layout{total: totalBlocks, names: make(map[string]Region)}
}

// Reserve allocates the next `blocks` blocks under `name`. Regions are laid
// out in reservation order from block 0 with a small gap between them so
// that cross-region access always costs a seek.
func (l *Layout) Reserve(name string, blocks int64) Region {
	const gap = 1 << 16 // 256 MB gap in 4 KiB blocks
	if _, dup := l.names[name]; dup {
		panic(fmt.Sprintf("disk: duplicate region %q", name))
	}
	if l.next+blocks > l.total {
		panic(fmt.Sprintf("disk: layout overflow reserving %q (%d blocks)", name, blocks))
	}
	r := Region{Name: name, Start: l.next, Blocks: blocks}
	l.names[name] = r
	l.next += blocks + gap
	return r
}

// Region looks up a reservation by name.
func (l *Layout) Region(name string) (Region, bool) {
	r, ok := l.names[name]
	return r, ok
}
