package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// This file tests the run-hardening layer end to end: a fixture experiment
// with one livelocking and one panicking cell among healthy siblings must
// complete with both failures as structured, replayable records — byte
// identical between serial and parallel execution — while budgets leave
// healthy output untouched.

// fixtureMaxEvents bounds the fixture cells. Healthy fixture cells finish
// in well under 100k events (measured ~30k); the livelocked cell would run
// forever without it.
const fixtureMaxEvents = 400_000

// hardeningFixture is a fixture experiment of four cells: two healthy, one
// livelocked (the simulated clock stops advancing), one panicking. Cells
// run through the same runSingle/forEach machinery the real sweeps use.
func hardeningFixture() Experiment {
	type cell struct {
		name string
		body func(vm *hyper.VM, p *sim.Proc) *workload.Job
	}
	cells := []cell{
		{"healthy-a", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.Warmup(vm, 256)
		}},
		// The two failing cells first touch more pages than their cgroup
		// limit holds, so host swapping fills the trace ring before the
		// failure — the abnormal-termination capture must still carry it.
		{"livelock", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			workload.Warmup(vm, 4096).Wait(p)
			for {
				p.Sleep(0) // zero-advance events forever
			}
		}},
		{"panic", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			workload.Warmup(vm, 4096).Wait(p)
			panic("deliberate test panic")
		}},
		{"healthy-b", func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.Warmup(vm, 512)
		}},
	}
	return Experiment{
		ID:    "hardfix",
		Title: "run-hardening fixture (test only)",
		Run: func(o Options) *Report {
			o = o.normalized()
			results := make([]string, len(cells))
			o.forEach(len(cells), func(i int) {
				r := runSingle(runCfg{
					opts: o, scheme: Baseline,
					seed: sim.DeriveSeed(o.Seed, "hardfix", cells[i].name),
					// actual (clamped to the 8MB floor = 2048 pages) is well
					// under the failing cells' 4096-page touch set, forcing
					// host swapping and hence trace-ring content.
					guestMB: 256, actualMB: 32, warmup: false,
				}, cells[i].body)
				if r.failed != nil {
					results[i] = "failed"
				} else {
					results[i] = "ok"
				}
			})
			rep := &Report{ID: "hardfix", Title: "run-hardening fixture (test only)"}
			tab := &Table{Title: "cells", Columns: []string{"cell", "outcome"}}
			for i, c := range cells {
				tab.Add(c.name, results[i])
			}
			rep.Tables = append(rep.Tables, tab)
			return rep
		},
	}
}

// fixtureOpts is the hardened fixture configuration.
func fixtureOpts(parallel int) Options {
	return Options{
		Seed: 42, Scale: 0.125, Quick: true, Parallel: parallel,
		TraceRing: 32, MaxEvents: fixtureMaxEvents,
	}
}

// runFixture executes the fixture under RunAll and returns the result.
func runFixture(t *testing.T, parallel int) RunResult {
	t.Helper()
	return RunAll([]Experiment{hardeningFixture()}, fixtureOpts(parallel), nil)[0]
}

// fixtureDoc serializes a fixture result the way the CLIs do.
func fixtureDoc(t *testing.T, r RunResult, o Options) []byte {
	t.Helper()
	doc := BuildJSONDocument(o, []*JSONReport{BuildJSON(r.Report, r.Runs, r.Failures)})
	doc.Parallel = 0 // the only field that legitimately differs
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHardeningFixtureKindsAndDiagnostics: the livelocked cell is killed
// by the watchdog and the panicking cell is recovered; both records carry
// the replay identity, the trace-ring tail, and (for the panic) a
// sanitized stack, while both healthy siblings complete normally.
func TestHardeningFixtureKindsAndDiagnostics(t *testing.T) {
	r := runFixture(t, 1)
	if len(r.Runs) != 2 {
		t.Fatalf("healthy runs = %d, want 2", len(r.Runs))
	}
	if len(r.Failures) != 2 {
		t.Fatalf("failures = %d, want 2: %+v", len(r.Failures), r.Failures)
	}
	byKind := map[string]FailureRecord{}
	for _, f := range r.Failures {
		byKind[f.Kind] = f
	}
	wd, ok := byKind[FailWatchdogEvents]
	if !ok {
		t.Fatalf("no %s record among %+v", FailWatchdogEvents, r.Failures)
	}
	pan, ok := byKind[FailPanic]
	if !ok {
		t.Fatalf("no %s record among %+v", FailPanic, r.Failures)
	}

	// Watchdog kill: deterministic position, one past the budget.
	if wd.Events != fixtureMaxEvents+1 {
		t.Errorf("watchdog kill at event %d, want %d", wd.Events, fixtureMaxEvents+1)
	}
	if !strings.Contains(wd.Message, "budget") {
		t.Errorf("watchdog message %q does not mention the budget", wd.Message)
	}
	// Panic: sanitized message and stack, truncated at the shield frame.
	if !strings.Contains(pan.Message, "deliberate test panic") {
		t.Errorf("panic message %q lost the panic value", pan.Message)
	}
	if len(pan.Stack) == 0 {
		t.Error("panic record has no stack")
	} else if !strings.Contains(pan.Stack[len(pan.Stack)-1], "Shielded(") {
		t.Errorf("stack not truncated at the shield frame: ends with %q", pan.Stack[len(pan.Stack)-1])
	}
	for _, f := range []FailureRecord{wd, pan} {
		if f.Seed == 0 || f.BaseSeed != 42 {
			t.Errorf("record %q lacks replay identity: seed=%d base=%d", f.Label, f.Seed, f.BaseSeed)
		}
		// Satellite guarantee: the trace-ring tail is captured on abnormal
		// termination, not just in happy-path reports.
		if len(f.Trace) == 0 {
			t.Errorf("record %q has no trace tail despite TraceRing", f.Label)
		}
	}
	// The report renders failed cells without aborting the table.
	text := r.Report.String()
	for _, want := range []string{"livelock", "failed", "healthy-a", "ok"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}

// TestHardeningFixtureSerialParallelIdentical: the full JSON document —
// healthy runs plus both failure records, stacks included — serializes to
// identical bytes whether the fixture runs serially or on the pool.
func TestHardeningFixtureSerialParallelIdentical(t *testing.T) {
	serial := runFixture(t, 1)
	parallel := runFixture(t, 8)
	a := fixtureDoc(t, serial, fixtureOpts(1))
	b := fixtureDoc(t, parallel, fixtureOpts(8))
	if !bytes.Equal(a, b) {
		t.Fatalf("serial and parallel hardened documents differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestHardeningDiagBundlesReplay: -diagdir bundles are written one per
// failed cell, carry a replay command naming the cell's base seed, and
// re-running the fixture reproduces byte-identical failure records — the
// bundle really is sufficient to replay the failure.
func TestHardeningDiagBundlesReplay(t *testing.T) {
	r := runFixture(t, 4)
	dir := t.TempDir()
	o := fixtureOpts(4)
	paths, err := WriteDiagBundles(dir, "vswapsim", "hardfix", o, r.Failures)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(r.Failures) {
		t.Fatalf("wrote %d bundles for %d failures", len(paths), len(r.Failures))
	}
	replayed := runFixture(t, 1) // the replay reference
	recByLabel := map[string][]byte{}
	for _, f := range replayed.Failures {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		recByLabel[f.Label] = data
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var b DiagBundle
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatalf("bundle %s is not valid JSON: %v", p, err)
		}
		for _, want := range []string{"go run ./cmd/vswapsim", "-seed 42", "-maxevents", "-quick"} {
			if !strings.Contains(b.Replay, want) {
				t.Errorf("bundle %s replay %q missing %q", filepath.Base(p), b.Replay, want)
			}
		}
		got, err := json.Marshal(b.Failure)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := recByLabel[b.Failure.Label]
		if !ok {
			t.Fatalf("bundle %s labels unknown cell %q", filepath.Base(p), b.Failure.Label)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("bundle %s failure record does not replay identically:\n%s\nvs\n%s",
				filepath.Base(p), got, want)
		}
	}
}

// TestCanceledRunSkipsCells: with the invocation context already
// canceled, every cell is skipped and recorded as a "canceled" failure —
// the partial-report path SIGINT relies on.
func TestCanceledRunSkipsCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := fixtureOpts(4)
	o.Ctx, o.CancelRun = ctx, cancel
	r := RunAll([]Experiment{hardeningFixture()}, o, nil)[0]
	if len(r.Runs) != 0 {
		t.Fatalf("canceled run still produced %d run records", len(r.Runs))
	}
	if len(r.Failures) != 4 {
		t.Fatalf("failures = %d, want all 4 cells", len(r.Failures))
	}
	for _, f := range r.Failures {
		if f.Kind != FailCanceled {
			t.Fatalf("record %q has kind %q, want %q", f.Label, f.Kind, FailCanceled)
		}
	}
}

// TestHealthyRunWithBudgetsMatchesGolden pins the zero-perturbation
// guarantee in bytes: generous budgets on an all-healthy run leave the
// golden fig3 report byte-identical to the unbudgeted output.
func TestHealthyRunWithBudgetsMatchesGolden(t *testing.T) {
	o := goldenOpts()
	o.TraceRing = 64 // the golden report embeds the trace tail
	o.MaxEvents = 1 << 40
	o.CellTimeout = 0 // wall budgets are never deterministic; keep them off here
	got := jsonBytes(t, "fig3", o)
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("budgets on a healthy run perturbed the golden report bytes")
	}
}

// TestExperimentLevelPanicShield: a panic that escapes the per-cell
// shields (here: thrown straight from Experiment.Run) degrades to a failed
// report plus a failure record instead of crashing the invocation.
func TestExperimentLevelPanicShield(t *testing.T) {
	boom := Experiment{
		ID: "boom", Title: "panics at the experiment level",
		Run: func(Options) *Report { panic("table assembly exploded") },
	}
	rs := RunAll([]Experiment{boom, hardeningFixture()}, fixtureOpts(2), nil)
	if len(rs[0].Failures) != 1 || rs[0].Failures[0].Kind != FailPanic {
		t.Fatalf("experiment panic not captured: %+v", rs[0].Failures)
	}
	if !strings.Contains(strings.Join(rs[0].Report.Notes, " "), "experiment aborted") {
		t.Fatalf("report notes do not flag the abort: %v", rs[0].Report.Notes)
	}
	// The sibling experiment still ran to completion.
	if len(rs[1].Runs) != 2 || len(rs[1].Failures) != 2 {
		t.Fatalf("sibling experiment perturbed: %d runs, %d failures", len(rs[1].Runs), len(rs[1].Failures))
	}
}
