package experiment

import (
	"fmt"

	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Migration implements the paper's future-work proposal (§7): VSwapper's
// mapping knowledge lets live migration ship (file, block) references
// instead of page contents, and skip free/ballooned pages — with no guest
// cooperation. After a cache-heavy workload, the experiment measures a
// stop-and-copy migration with and without mapping assistance under each
// scheme.
func Migration(o Options) *Report {
	o = o.normalized()
	rep := &Report{
		ID:        "migration",
		Title:     "Mapping-assisted live migration (§7, future work)",
		PaperNote: "hypervisors can migrate memory mappings instead of (named) memory pages",
	}
	tab := &Table{
		Title: "stop-and-copy after 200MB read + 64MB anon (512MB guest, 256MB actual, 10GbE)",
		Columns: []string{"config", "strategy", "wire MB", "downtime [s]",
			"mapping-only pages", "skipped pages"},
	}
	for _, s := range []Scheme{Baseline, VSwapper} {
		var naive, mapped hyper.MigrationResult
		runSingle(runCfg{
			opts: o, scheme: s,
			guestMB: 512, actualMB: 256,
			warmup: true,
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200)}).Wait(p)
			j := workload.AllocTouch(vm, workload.AllocTouchConfig{SizeMB: o.mb(64)})
			j.Wait(p)
			naive = vm.Migrate(p, hyper.MigrationConfig{UseMappings: false})
			mapped = vm.Migrate(p, hyper.MigrationConfig{UseMappings: true})
			return j
		})
		toMB := func(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
		tab.Add(s.String(), "content copy", toMB(naive.BytesSent), secs(naive.Duration),
			"-", fmt.Sprintf("%d", naive.Plan.Skippable))
		tab.Add(s.String(), "mapping-assisted", toMB(mapped.BytesSent), secs(mapped.Duration),
			fmt.Sprintf("%d", mapped.Plan.MappingOnly), fmt.Sprintf("%d", mapped.Plan.Skippable))
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes,
		"mapping-assisted migration only helps when the Mapper runs: baseline guests have no named pages to reference")
	return rep
}
