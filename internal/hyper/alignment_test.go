package hyper

import (
	"testing"

	"vswapsim/internal/guest"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// TestUnalignedIODefeatsMapper verifies the paper's §4.1 constraint: a
// guest image formatted with 512-byte logical sectors cannot be mapped, so
// VSwapper degrades to baseline behaviour until the image is reformatted.
func TestUnalignedIODefeatsMapper(t *testing.T) {
	run := func(unaligned bool) (int64, int64) {
		m := NewMachine(MachineConfig{Seed: 1, HostMemPages: 256 * mib / 4096})
		vm := m.NewVM(VMConfig{
			Name:             "vm0",
			MemPages:         64 * mib / 4096,
			LimitPages:       16 * mib / 4096,
			DiskBlocks:       1 << 30 / 4096,
			Mapper:           true,
			Preventer:        true,
			GuestAPF:         true,
			UnalignedGuestIO: unaligned,
		})
		m.Env.Go("scenario", func(p *sim.Proc) {
			vm.Boot(p)
			th := &guest.Thread{OS: vm.OS, P: p}
			f := vm.OS.FS.Create("data", 32*mib)
			th.ReadFile(f, 0, 32*mib)
			th.FlushCPU()
			m.Shutdown()
		})
		m.Run()
		return m.Met.Get(metrics.MapperEstablish), m.Met.Get(metrics.SilentSwapWrites)
	}
	alignedMaps, alignedSilent := run(false)
	unalignedMaps, unalignedSilent := run(true)
	if alignedMaps == 0 {
		t.Fatal("aligned guest established no mappings")
	}
	if unalignedMaps != 0 {
		t.Fatalf("unaligned guest established %d mappings", unalignedMaps)
	}
	if alignedSilent != 0 {
		t.Fatalf("aligned+mapper still has %d silent writes", alignedSilent)
	}
	if unalignedSilent == 0 {
		t.Fatal("unaligned guest should regress to silent swap writes")
	}
}
