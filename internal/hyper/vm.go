package hyper

import (
	"fmt"

	"vswapsim/internal/core"
	"vswapsim/internal/guest"
	"vswapsim/internal/hostmm"
	"vswapsim/internal/sim"
)

// VMConfig describes one guest and which VSwapper components protect it.
type VMConfig struct {
	Name string
	// MemPages is the memory size the guest believes it has.
	MemPages int
	// LimitPages is the cgroup cap on actual residency (0 = uncapped).
	LimitPages int
	// VCPUs for the guest (1-2 in the paper).
	VCPUs int
	// DiskBlocks is the disk image size; GuestSwapBlocks of it form the
	// guest swap partition.
	DiskBlocks      int64
	GuestSwapBlocks int64
	// Mapper / Preventer enable the two VSwapper components.
	Mapper    bool
	Preventer bool
	// GuestAPF: Linux guests reschedule around host page faults
	// (asynchronous page faults); Windows-profile guests do not.
	GuestAPF bool
	// UnalignedGuestIO models a guest whose disk image was formatted with
	// 512-byte logical sectors: its requests violate the Mapper's 4 KiB
	// alignment requirement (paper §4.1 "Page Alignment"), so mapping
	// establishment is impossible and VSwapper degrades to baseline I/O
	// handling. The fix the paper prescribes is reformatting with 4 KiB
	// logical sectors, i.e. leaving this false.
	UnalignedGuestIO bool
	// Guest overrides the guest kernel config (nil = defaults).
	Guest *guest.Config

	// QEMU process model: the executable's hot text pages are the only
	// named memory of a baseline guest ("false page anonymity").
	TextPages    int
	HotTextPages int
	// ExitCost is the CPU cost of one virtio exit round trip.
	ExitCost sim.Duration
	// TextTouchesPerExit / PerMajorFault: how many hot text pages the
	// host-side code touches while servicing these events.
	TextTouchesPerExit  int
	TextTouchesPerFault int

	MapperCfg    core.MapperConfig
	PreventerCfg core.PreventerConfig
}

func (c VMConfig) withDefaults() VMConfig {
	if c.VCPUs == 0 {
		c.VCPUs = 1
	}
	if c.DiskBlocks == 0 {
		c.DiskBlocks = 20 << 30 / 4096 // 20 GB image, like the paper
	}
	if c.GuestSwapBlocks == 0 {
		c.GuestSwapBlocks = int64(c.MemPages) // swap ≈ RAM, Ubuntu-style
	}
	if c.TextPages == 0 {
		c.TextPages = 512 // ~2 MB of QEMU/KVM hot code+data
	}
	if c.HotTextPages == 0 {
		c.HotTextPages = 64
	}
	if c.ExitCost == 0 {
		c.ExitCost = 12 * sim.Microsecond
	}
	if c.TextTouchesPerExit == 0 {
		c.TextTouchesPerExit = 4
	}
	if c.TextTouchesPerFault == 0 {
		c.TextTouchesPerFault = 2
	}
	if c.MapperCfg.PerPageMapCost == 0 {
		c.MapperCfg = core.DefaultMapperConfig()
	}
	if c.PreventerCfg.Deadline == 0 {
		c.PreventerCfg = core.DefaultPreventerConfig()
	}
	return c
}

// VM is one guest: its QEMU process (cgroup, image file, text pages), its
// guest OS, and the optional VSwapper components.
type VM struct {
	M   *Machine
	Cfg VMConfig

	CG    *hostmm.Cgroup
	Image *hostmm.File
	OS    *guest.OS

	pages []*hostmm.Page // by GFN, lazily created
	text  []*hostmm.Page
	hot   int

	Mapper    *core.Mapper
	Preventer *core.Preventer

	faultLock *sim.Resource // serializes faults for non-APF guests

	// pageBufs is a freelist of request-page buffers for DiskRead/DiskWrite.
	// A buffer stays checked out across the blocking device wait, and guest
	// threads interleave at blocking points, so concurrent requests need
	// distinct buffers.
	pageBufs [][]*hostmm.Page
}

// getPageBuf checks out an empty page buffer; append to it and return it
// through putPageBuf once the request no longer references it.
func (vm *VM) getPageBuf() []*hostmm.Page {
	if n := len(vm.pageBufs); n > 0 {
		b := vm.pageBufs[n-1]
		vm.pageBufs = vm.pageBufs[:n-1]
		return b
	}
	return make([]*hostmm.Page, 0, virtioMaxBlocks)
}

func (vm *VM) putPageBuf(b []*hostmm.Page) {
	vm.pageBufs = append(vm.pageBufs, b[:0])
}

// NewVM creates a guest on the machine. Boot it with BootVM (inside a
// process) before running workloads.
func (m *Machine) NewVM(cfg VMConfig) *VM {
	cfg = cfg.withDefaults()
	if cfg.MemPages <= 0 {
		panic("hyper: guest MemPages must be positive")
	}
	imgRegion := m.Layout.Reserve(cfg.Name+"-img", cfg.DiskBlocks)
	textRegion := m.Layout.Reserve(cfg.Name+"-qemu", int64(cfg.TextPages))
	vm := &VM{
		M:     m,
		Cfg:   cfg,
		CG:    m.MM.NewCgroup(cfg.Name, cfg.LimitPages),
		Image: hostmm.NewFile(cfg.Name+"-img", imgRegion),
		pages: make([]*hostmm.Page, cfg.MemPages),
	}
	vm.Image.InvalidateOnWrite = cfg.Mapper
	textFile := hostmm.NewFile(cfg.Name+"-qemu", textRegion)
	vm.text = make([]*hostmm.Page, cfg.TextPages)
	for i := range vm.text {
		vm.text[i] = m.MM.NewFilePage(vm.CG, -(i + 1), hostmm.BlockRef{File: textFile, Block: int64(i)})
	}
	if cfg.Mapper {
		vm.Mapper = core.NewMapper(m.MM, m.Met, vm.Image, cfg.MapperCfg)
	}
	if cfg.Preventer {
		vm.Preventer = core.NewPreventer(m.MM, m.Met, m.Env, cfg.PreventerCfg)
	}
	if !cfg.GuestAPF {
		vm.faultLock = sim.NewResource(m.Env, 1)
	}

	gcfg := guest.DefaultConfig(cfg.MemPages)
	if cfg.Guest != nil {
		gcfg = *cfg.Guest
	}
	gcfg.MemPages = cfg.MemPages
	gcfg.VCPUs = cfg.VCPUs
	fs := guest.NewFileSystem(cfg.DiskBlocks, cfg.GuestSwapBlocks)
	vm.OS = guest.NewOS(m.Env, m.Met, vm, fs, gcfg)
	vm.OS.Trace = m.trace // nil unless EnableTrace ran
	vm.OS.Inj = m.Inj     // nil unless fault injection is on
	m.VMs = append(m.VMs, vm)
	return vm
}

// Boot runs the guest kernel bring-up inside p.
func (vm *VM) Boot(p *sim.Proc) { vm.OS.Boot(p) }

// page returns (creating lazily) the host descriptor for a GFN.
func (vm *VM) page(gfn int) *hostmm.Page {
	if gfn < 0 || gfn >= len(vm.pages) {
		panic(fmt.Sprintf("hyper: GFN %d out of range", gfn))
	}
	pg := vm.pages[gfn]
	if pg == nil {
		pg = vm.M.MM.NewPage(vm.CG, gfn)
		vm.pages[gfn] = pg
	}
	return pg
}

// PageForTest exposes host page state to white-box tests and experiments.
func (vm *VM) PageForTest(gfn int) *hostmm.Page { return vm.page(gfn) }

// EachPage calls f for every host page descriptor the VM has materialized:
// guest frames (lazily created by GFN) and QEMU text pages. The
// invariant-audit harness iterates these to check cross-layer properties.
func (vm *VM) EachPage(f func(pg *hostmm.Page)) {
	for _, pg := range vm.pages {
		if pg != nil {
			f(pg)
		}
	}
	for _, pg := range vm.text {
		f(pg)
	}
}

// touchText models host/QEMU code execution: mostly the hot text set, but
// every 16th access lands on a cold page of the full executable — rarely
// taken code paths. Under pressure those cold pages are the first named
// victims, so they refault in host context, which is exactly Fig. 9b's
// "false page anonymity" signal.
func (vm *VM) touchText(p *sim.Proc, n int) {
	hot := vm.Cfg.HotTextPages
	if hot > len(vm.text) {
		hot = len(vm.text)
	}
	for i := 0; i < n; i++ {
		var pg *hostmm.Page
		vm.hot++
		if vm.hot%16 == 0 && len(vm.text) > hot {
			cold := hot + vm.M.Env.Rand().Intn(len(vm.text)-hot)
			pg = vm.text[cold]
		} else {
			pg = vm.text[vm.hot%hot]
		}
		if pg.State == hostmm.ResidentFile {
			vm.M.MM.Touch(pg)
			continue
		}
		if pg.State == hostmm.FileNonResident {
			vm.M.MM.FileFaultIn(p, pg, hostmm.HostCtx)
		}
	}
}

// exit charges one virtio exit: trap cost plus QEMU text execution.
func (vm *VM) exit(p *sim.Proc) {
	p.Sleep(vm.Cfg.ExitCost)
	vm.touchText(p, vm.Cfg.TextTouchesPerExit)
}

// imagePhys translates a vdisk block to a physical disk block.
func (vm *VM) imagePhys(block int64) int64 { return vm.Image.Phys(block) }
