package core

import (
	"vswapsim/internal/hostmm"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/trace"
)

// PreventerConfig holds the False Reads Preventer tunables; the defaults
// are the paper's empirically chosen values (§4.2).
type PreventerConfig struct {
	// Deadline bounds how long a page stays under write emulation after
	// its first emulated write (paper: 1 ms).
	Deadline sim.Duration
	// MaxConcurrent bounds how many pages are emulated at once (paper: 32).
	MaxConcurrent int
	// PerWriteCost is the CPU cost of emulating one trapped write.
	PerWriteCost sim.Duration
}

// DefaultPreventerConfig mirrors the paper's constants.
func DefaultPreventerConfig() PreventerConfig {
	return PreventerConfig{
		Deadline:      sim.Millisecond,
		MaxConcurrent: 32,
		PerWriteCost:  1500 * sim.Nanosecond,
	}
}

// emuBuf is the Preventer's per-page state: a page-sized, page-aligned
// buffer receiving emulated writes. Writes are expected sequential, so
// coverage is a prefix [0, covered).
type emuBuf struct {
	pg         *hostmm.Page
	firstWrite sim.Time
	covered    int
	merging    bool
	done       *sim.Signal // broadcast when the page becomes resident
}

// Preventer eliminates false swap reads by trapping and emulating guest
// writes directed at non-resident pages, in the hope that the whole page
// gets overwritten before anyone reads it (paper §4.2).
type Preventer struct {
	MM  *hostmm.Manager
	Met *metrics.Set
	Env *sim.Env
	Cfg PreventerConfig

	active int
}

// NewPreventer creates a Preventer.
func NewPreventer(mm *hostmm.Manager, met *metrics.Set, env *sim.Env, cfg PreventerConfig) *Preventer {
	if cfg.Deadline == 0 {
		cfg.Deadline = DefaultPreventerConfig().Deadline
	}
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = DefaultPreventerConfig().MaxConcurrent
	}
	if cfg.PerWriteCost == 0 {
		cfg.PerWriteCost = DefaultPreventerConfig().PerWriteCost
	}
	return &Preventer{MM: mm, Met: met, Env: env, Cfg: cfg}
}

// Active reports how many pages are currently under emulation.
func (pv *Preventer) Active() int { return pv.active }

// buf extracts the emulation state from a page.
func buf(pg *hostmm.Page) *emuBuf { return pg.Emu.(*emuBuf) }

// HandleWriteFault is called on an EPT write violation against a
// swapped-out or file-non-resident page. It returns true if the Preventer
// absorbed the access (possibly completing it synchronously); false means
// the caller must take the ordinary fault path.
//
// rep marks full-page string instructions, which are short-circuited: the
// whole page will be overwritten, so the buffer is remapped immediately.
func (pv *Preventer) HandleWriteFault(p *sim.Proc, pg *hostmm.Page, off, n int, rep bool) bool {
	if pv.MM.Inj.EmulationStarved() {
		// Injected buffer starvation: behave as if no emulation buffer
		// could be allocated and fall back to the eager swap-in path.
		return false
	}
	if rep || (off == 0 && n >= mem.PageSize) {
		// Guaranteed full overwrite: skip buffering entirely. The remap
		// charges its frame before the page leaves the non-resident state
		// (never exposing a bufferless Emulated page while the charge
		// blocks in reclaim); if a concurrent fault resolved the page
		// meanwhile, the write goes back to the ordinary fault path.
		return pv.MM.RemapOverwrite(p, pg)
	}
	if off != 0 {
		// First write not at the page start: the sequential-fill bet is
		// already lost; do not start emulating.
		return false
	}
	if pv.active >= pv.Cfg.MaxConcurrent {
		return false
	}
	pv.MM.BeginEmulation(pg)
	if pv.MM.Trace.Recording(trace.Preventer) {
		pv.MM.Trace.Add(pv.Env.Now(), trace.Preventer, "emulate gfn=%d", pg.ID)
	}
	b := &emuBuf{pg: pg, firstWrite: pv.Env.Now(), done: sim.NewSignal(pv.Env)}
	pg.Emu = b
	pv.active++
	pv.Met.Inc(metrics.PreventerStarts)
	pv.applyWrite(p, b, off, n)
	if pg.State == hostmm.Emulated {
		pv.armDeadline(b)
	}
	return true
}

// OnAccess handles any guest access to a page already under emulation.
// Writes extend the buffer; reads are served from it when covered;
// anything else forces a merge, blocking the accessor until the old
// content arrives.
func (pv *Preventer) OnAccess(p *sim.Proc, pg *hostmm.Page, write bool, off, n int, rep bool) {
	b := buf(pg)
	if b.merging {
		pv.waitResident(p, b)
		return
	}
	if write {
		if rep || (off == 0 && n >= mem.PageSize) {
			pv.finishRemap(p, b)
			return
		}
		pv.applyWrite(p, b, off, n)
		return
	}
	// Read: serve from the buffer if the bytes were written; otherwise we
	// need the old content.
	if off+n <= b.covered {
		p.Sleep(pv.Cfg.PerWriteCost)
		pv.Met.Inc(metrics.PreventerWrites) // emulated accesses counter
		return
	}
	pv.startMerge(b)
	pv.waitResident(p, b)
}

// ForceFinalize ends emulation right now. keepContent selects a merge
// (content preserved: needed before the page is read via DMA) versus a
// remap (content about to be superseded: virtio read targets, balloon).
func (pv *Preventer) ForceFinalize(p *sim.Proc, pg *hostmm.Page, keepContent bool) {
	b := buf(pg)
	if b.merging {
		pv.waitResident(p, b)
		return
	}
	if !keepContent {
		pv.finishRemap(p, b)
		return
	}
	pv.startMerge(b)
	pv.waitResident(p, b)
}

// applyWrite buffers one emulated write.
func (pv *Preventer) applyWrite(p *sim.Proc, b *emuBuf, off, n int) {
	p.Sleep(pv.Cfg.PerWriteCost)
	pv.Met.Inc(metrics.PreventerWrites)
	if off != b.covered {
		// Non-sequential pattern: give up and merge (paper §4.2).
		pv.startMerge(b)
		pv.waitResident(p, b)
		return
	}
	b.covered += n
	if b.covered >= mem.PageSize {
		pv.finishRemap(p, b)
	}
}

// finishRemap completes emulation without any disk read: the buffer is the
// page now.
func (pv *Preventer) finishRemap(p *sim.Proc, b *emuBuf) {
	pv.MM.EmulationRemap(p, b.pg)
	pv.release(b)
}

// startMerge begins the asynchronous read of the old content; the guest
// may keep running until it touches the page again.
func (pv *Preventer) startMerge(b *emuBuf) {
	if b.merging {
		return
	}
	b.merging = true
	done := pv.MM.SubmitOldContentRead(b.pg)
	pv.Env.Go("preventer-merge", func(p *sim.Proc) {
		p.SleepUntil(done)
		if b.pg.State != hostmm.Emulated {
			return // finalized some other way meanwhile
		}
		pv.MM.EmulationMerge(p, b.pg)
		pv.release(b)
	})
}

// waitResident blocks p until the page leaves emulation.
func (pv *Preventer) waitResident(p *sim.Proc, b *emuBuf) {
	for b.pg.State == hostmm.Emulated {
		b.done.Wait(p)
	}
}

// armDeadline schedules the 1 ms bound on emulation lifetime.
func (pv *Preventer) armDeadline(b *emuBuf) {
	pv.Env.Schedule(pv.Cfg.Deadline, func() {
		if b.pg.State == hostmm.Emulated && !b.merging && b.pg.Emu == b {
			pv.startMerge(b)
		}
	})
}

// release cleans up after finalization and wakes waiters. The buffer's
// lifetime — first trapped write to remap/merge completion — lands in the
// Preventer latency histogram (the paper's 1 ms deadline bounds its tail
// only when merges do not queue behind a busy disk).
func (pv *Preventer) release(b *emuBuf) {
	pv.active--
	b.pg.Emu = nil
	b.done.Broadcast()
	pv.Met.Histogram(metrics.HistPreventerLife).Observe(pv.Env.Now().Sub(b.firstWrite))
}
