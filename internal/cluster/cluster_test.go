package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
)

// This file is the randomized property sweep over the cluster scheduler
// (the ISSUE's 50-seed satellite): each seed draws a feasible fleet
// configuration, runs it to completion, and asserts the global properties
// the invariant checker cannot see from inside one sample — terminal
// guest states, counter/ledger agreement, and full capacity release.
// Failures print the (seed, spec) replay coordinates.

// propConfig draws one feasible cluster configuration from the seed. All
// remediations and packings are exercised round-robin on the seed index
// so a short sweep still covers every policy pair.
func propConfig(idx int, seed uint64, env *sim.Env) Config {
	r := rand.New(rand.NewSource(int64(seed)))
	hosts := 2 + r.Intn(3)
	guestPages := 256 + 128*r.Intn(3)
	// Aggregate demand never exceeds the aggregate commit bound
	// (2 hosts x 2048 pages x 2.0 = 8192 pages minimum), so admission
	// always packs: New panics on an infeasible config by design.
	guests := 6 + r.Intn(11)
	for guests*guestPages > hosts*2048*2 {
		guests--
	}
	hs := make([]HostSpec, hosts)
	for i := range hs {
		hs[i] = HostSpec{Name: fmt.Sprintf("h%d", i), MemPages: 2048}
	}
	cfg := Config{
		Seed:              seed,
		Env:               env,
		Hosts:             hs,
		Guests:            guests,
		GuestMemPages:     guestPages,
		WSMinPct:          40,
		WSMaxPct:          40 + r.Intn(51),
		Units:             4 + r.Intn(5),
		PhaseUnits:        2 * r.Intn(2), // 0 (steady) or 2 (phased)
		UnitCompute:       5 * sim.Millisecond,
		Stagger:           50 * sim.Millisecond,
		GuestDiskBlocks:   4096,
		Packing:           Packing(idx % 3),
		Remediation:       Remediation(idx % 4),
		MaxCommitFactor:   2.0,
		SampleInterval:    500 * sim.Millisecond,
		PressureThreshold: 0.05 + 0.1*float64(r.Intn(3)),
		Cooldown:          sim.Second,
		Mapper:            r.Intn(2) == 1,
		Preventer:         true,
		Swapback:          swapback.SSD,
	}
	cfg.Spec = fmt.Sprintf("prop hosts=%d guests=%d guest_pages=%d units=%d ws=[%d,%d] phase=%d packing=%s remediation=%s",
		hosts, guests, guestPages, cfg.Units, cfg.WSMinPct, cfg.WSMaxPct, cfg.PhaseUnits, cfg.Packing, cfg.Remediation)
	return cfg
}

// runProp executes one property cell and returns the finished cluster.
func runProp(t *testing.T, idx int, seed uint64) *Cluster {
	t.Helper()
	env := sim.NewEnv(seed)
	env.SetBudget(sim.Budget{MaxEvents: 50_000_000, WallTimeout: 2 * time.Minute})
	c := New(propConfig(idx, seed, env))
	c.Run()
	return c
}

// checkProperties asserts the post-run global properties on a finished
// cluster. Every message carries the replay coordinates.
func checkProperties(t *testing.T, c *Cluster, seed uint64) {
	t.Helper()
	at := fmt.Sprintf("(replay with seed=%#x spec=%q)", seed, c.Cfg.Spec)
	if err := c.Final(); err != nil {
		t.Fatalf("final invariants %s: %v", at, err)
	}

	// Terminal states: every guest either completed its units or was
	// killed — never both, never neither — and terminal guests hold no
	// residence.
	var done, killed, soomKilled, units, migrations, placements int
	for _, g := range c.Guests {
		switch {
		case g.Done() && g.Killed():
			t.Fatalf("guest %s both done and killed %s", g.Name, at)
		case g.Done():
			done++
			if g.UnitsDone() != g.Units {
				t.Fatalf("guest %s done with %d/%d units %s", g.Name, g.UnitsDone(), g.Units, at)
			}
		case g.Killed():
			killed++
			if g.killReq {
				soomKilled++
			}
			if g.UnitsDone() >= g.Units {
				t.Fatalf("guest %s killed after finishing all %d units %s", g.Name, g.Units, at)
			}
		default:
			t.Fatalf("guest %s terminated neither done nor killed %s", g.Name, at)
		}
		if g.Host() != nil || g.vm != nil || g.pr != nil || g.dest != nil {
			t.Fatalf("terminal guest %s still holds residence %s", g.Name, at)
		}
		units += g.UnitsDone()
		migrations += g.migrations
		placements += g.placements
	}
	if done+killed != len(c.Guests) {
		t.Fatalf("guest conservation: %d done + %d killed != %d admitted %s", done, killed, len(c.Guests), at)
	}

	// Counter/ledger agreement: the fleet counters are exactly the sums
	// of the per-guest ledgers.
	if got := c.Counter(metrics.ClusterUnits); got != int64(units) {
		t.Fatalf("cluster.units %d != summed guest units %d %s", got, units, at)
	}
	if got := c.Counter(metrics.ClusterMigrations); got != int64(migrations) {
		t.Fatalf("cluster.migrations %d != summed guest migrations %d %s", got, migrations, at)
	}
	if got := c.Counter(metrics.ClusterPlacements); got != int64(placements) {
		t.Fatalf("cluster.placements %d != summed guest placements %d %s", got, placements, at)
	}
	if got := c.Counter(metrics.ClusterPlacements); got != int64(len(c.Guests)+migrations) {
		t.Fatalf("cluster.placements %d != guests %d + migrations %d %s", got, len(c.Guests), migrations, at)
	}
	if got := c.Counter(metrics.ClusterKills); got != int64(soomKilled) {
		t.Fatalf("cluster.kills %d != soomkiller victims %d %s", got, soomKilled, at)
	}
	if int(c.Counter(metrics.ClusterKills)) > killed {
		t.Fatalf("cluster.kills %d exceeds killed guests %d %s", c.Counter(metrics.ClusterKills), killed, at)
	}

	// Policy exclusions: only the matching remediation produces its
	// signature action.
	if c.Cfg.Remediation != RemedyMigrate && migrations > 0 {
		t.Fatalf("%s remediation migrated %d guests %s", c.Cfg.Remediation, migrations, at)
	}
	if c.Cfg.Remediation != RemedyKill && soomKilled > 0 {
		t.Fatalf("%s remediation soom-killed %d guests %s", c.Cfg.Remediation, soomKilled, at)
	}

	// Capacity release: with every guest terminal, each host's commit
	// ledger must be fully drained and the commit bound was never the
	// checker's problem (Check above verifies the ledger equals the
	// assignment sum, which is now zero).
	for _, h := range c.Hosts {
		if h.Commit() != 0 {
			t.Fatalf("host %s holds %d committed pages after drain %s", h.Name, h.Commit(), at)
		}
		if h.CommitBound() != int(c.Cfg.MaxCommitFactor*float64(h.MemPages)) {
			t.Fatalf("host %s bound drifted to %d %s", h.Name, h.CommitBound(), at)
		}
	}
}

// TestClusterProperties is the randomized sweep: 50 seeds (8 under
// -short), each a feasible configuration cycling every packing and
// remediation policy.
func TestClusterProperties(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		i := i
		seed := sim.DeriveSeed(0xC1057E4, "prop", fmt.Sprintf("%d", i))
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			t.Parallel()
			c := runProp(t, i, seed)
			checkProperties(t, c, seed)
		})
	}
}

// TestClusterDeterministic runs the same seed twice and requires
// identical counters and quantiles — the cell is a pure function of its
// seed even with migration and kill decisions in play.
func TestClusterDeterministic(t *testing.T) {
	for _, idx := range []int{2, 3} { // migrate and kill remediation
		idx := idx
		t.Run(Remediation(idx%4).String(), func(t *testing.T) {
			t.Parallel()
			seed := sim.DeriveSeed(0xDE7E2, "repeat", Remediation(idx%4).String())
			a := runProp(t, idx, seed)
			b := runProp(t, idx, seed)
			for _, name := range clusterMonotone {
				if a.Counter(name) != b.Counter(name) {
					t.Fatalf("counter %s differs across identical runs: %d vs %d",
						name, a.Counter(name), b.Counter(name))
				}
			}
			if a.UnitP95() != b.UnitP95() || a.GuestP99() != b.GuestP99() {
				t.Fatalf("quantiles differ across identical runs: unit p95 %d vs %d, guest p99 %d vs %d",
					a.UnitP95(), b.UnitP95(), a.GuestP99(), b.GuestP99())
			}
		})
	}
}

// TestKilledLatencySentinel pins the censoring contract: the sentinel
// lands in the histogram's top bucket, far above any real completion, so
// a kill policy's victims dominate the tail regardless of when the cell
// drained.
func TestKilledLatencySentinel(t *testing.T) {
	h := metrics.NewSet().Histogram("x")
	h.Observe(sim.Duration(30) * sim.Second) // a plausible real completion
	h.Observe(KilledLatency)
	if q := h.P99(); q < int64(KilledLatency) {
		t.Fatalf("p99 %d below the kill sentinel %d", q, int64(KilledLatency))
	}
	if int64(KilledLatency) <= int64(24*3600*sim.Second) {
		t.Fatalf("sentinel %d implausibly small", int64(KilledLatency))
	}
}
