package main

import (
	"runtime"
	"testing"

	"vswapsim/internal/experiment"
)

func TestParseArgsTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(t *testing.T, c cliConfig)
	}{
		{"defaults", nil, false, func(t *testing.T, c cliConfig) {
			if c.parallel != runtime.GOMAXPROCS(0) {
				t.Fatalf("default -parallel = %d, want GOMAXPROCS (%d)", c.parallel, runtime.GOMAXPROCS(0))
			}
			if c.scale != 1.0 || c.seed != 42 || c.quick || c.only != "" {
				t.Fatalf("unexpected defaults: %+v", c)
			}
		}},
		{"parallel explicit", []string{"-parallel", "8", "-quick"}, false, func(t *testing.T, c cliConfig) {
			if c.parallel != 8 || !c.quick {
				t.Fatalf("parsed %+v", c)
			}
		}},
		{"parallel zero rejected", []string{"-parallel", "0"}, true, nil},
		{"parallel negative rejected", []string{"-parallel", "-1"}, true, nil},
		{"parallel non-numeric rejected", []string{"-parallel", "many"}, true, nil},
		{"scale invalid rejected", []string{"-scale", "-0.5"}, true, nil},
		{"output flags", []string{"-o", "out.txt", "-csv", "csvdir", "-only", "fig5"}, false,
			func(t *testing.T, c cliConfig) {
				if c.out != "out.txt" || c.csvDir != "csvdir" || c.only != "fig5" {
					t.Fatalf("parsed %+v", c)
				}
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := parseArgs(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parseArgs(%v) succeeded with %+v, want error", c.args, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%v): %v", c.args, err)
			}
			if c.check != nil {
				c.check(t, got)
			}
		})
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil || len(all) != len(experiment.Registry) {
		t.Fatalf("empty filter: %d experiments, err %v", len(all), err)
	}
	one, err := selectExperiments("fig9")
	if err != nil || len(one) != 1 || one[0].ID != "fig9" {
		t.Fatalf("fig9 filter: %+v, err %v", one, err)
	}
	multi, err := selectExperiments("fig11, fig5")
	if err != nil || len(multi) != 2 || multi[0].ID != "fig11" || multi[1].ID != "fig5" {
		t.Fatalf("multi filter: %+v, err %v", multi, err)
	}
	if _, err := selectExperiments("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := selectExperiments("fig5,nope"); err == nil {
		t.Fatal("unknown id in list accepted")
	}
}
