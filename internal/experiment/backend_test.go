package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"vswapsim/internal/fault"
	"vswapsim/internal/swapback"
)

// TestBackendDefaultByteIdentical pins the transparency guarantee of the
// default tier in bytes: running with the swap-backend plumbing explicitly
// set to its defaults (hdd, writeback) produces output byte-identical to
// the pre-backend golden report.
func TestBackendDefaultByteIdentical(t *testing.T) {
	o := goldenOpts()
	o.TraceRing = 64 // the golden report embeds the trace tail
	o.Swapback = swapback.HDD
	o.SwapPolicy = swapback.PolicyWriteback
	got := jsonBytes(t, "fig3", o)
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("default swap backend perturbed the golden report bytes")
	}
}

// TestBackendSerialParallelIdentical extends the repo-wide determinism
// invariant to every non-default tier: identical seeds produce
// byte-identical JSON whether the sweep runs serially or on the parallel
// executor. The remote tier's seeded tail-latency stream and zswap's
// per-page compression draws must come from per-machine state only.
func TestBackendSerialParallelIdentical(t *testing.T) {
	for _, k := range []swapback.Kind{swapback.SSD, swapback.Zswap, swapback.Remote} {
		t.Run(k.String(), func(t *testing.T) {
			serial := goldenOpts()
			serial.Scale = 0.0625
			serial.Swapback = k
			parallel := serial
			parallel.Parallel = 8
			var da, db JSONDocument
			if err := json.Unmarshal(jsonBytes(t, "fig3", serial), &da); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(jsonBytes(t, "fig3", parallel), &db); err != nil {
				t.Fatal(err)
			}
			if da.Swapback != k.String() || db.Swapback != k.String() {
				t.Fatalf("documents do not carry the backend: %q / %q", da.Swapback, db.Swapback)
			}
			da.Parallel, db.Parallel = 0, 0
			ja, _ := json.Marshal(da)
			jb, _ := json.Marshal(db)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("%s: serial and parallel JSON reports differ", k)
			}
		})
	}
}

// TestBackendTierCountersSurface runs fig3 on each non-default tier and
// checks the tier actually engaged: swapback.* op counters record the
// routed traffic, zswap admits pages to the compressed pool, and the
// remote tier logs tail-latency events. This is the SSD840-end-to-end
// regression (the ssd tier's device model driven through a full machine
// run) plus its zswap/remote analogues.
func TestBackendTierCountersSurface(t *testing.T) {
	counters := func(k swapback.Kind) map[string]int64 {
		o := goldenOpts()
		o.Scale = 0.0625
		o.Swapback = k
		var doc JSONDocument
		if err := json.Unmarshal(jsonBytes(t, "fig3", o), &doc); err != nil {
			t.Fatal(err)
		}
		sum := map[string]int64{}
		for _, r := range doc.Experiments[0].Runs {
			for name, v := range r.Report.Counters {
				sum[name] += v
			}
		}
		return sum
	}
	for _, tc := range []struct {
		kind    swapback.Kind
		nonzero []string
		zero    []string
	}{
		{swapback.SSD,
			[]string{"swapback.read.ops", "swapback.write.ops", "hostswap.read.ops"},
			[]string{"swapback.fast.store.pages", "swapback.remote.tail.events"}},
		{swapback.Zswap,
			[]string{"swapback.read.ops", "swapback.fast.store.pages", "swapback.fast.load.pages"},
			[]string{"swapback.remote.tail.events"}},
		{swapback.Remote,
			[]string{"swapback.read.ops", "swapback.remote.tail.events"},
			[]string{"swapback.fast.store.pages"}},
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			sum := counters(tc.kind)
			for _, name := range tc.nonzero {
				if sum[name] == 0 {
					t.Errorf("%s: counter %s is zero", tc.kind, name)
				}
			}
			for _, name := range tc.zero {
				if v := sum[name]; v != 0 {
					t.Errorf("%s: counter %s = %d, want 0", tc.kind, name, v)
				}
			}
		})
	}
}

// TestBackendFaultRegression threads a disk fault plan through every tier:
// each backend must absorb read and write errors (retry counters fire) and
// complete the run with the invariant auditor attached — no tier loses
// pages or wedges under injection.
func TestBackendFaultRegression(t *testing.T) {
	plan := fault.MustParse("disk-read-err:0.02;disk-write-err:0.02;disk-lat:0.05:1ms")
	for _, k := range swapback.AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			o := faultOpts(plan)
			o.Swapback = k
			var doc JSONDocument
			if err := json.Unmarshal(jsonBytes(t, "fig3", o), &doc); err != nil {
				t.Fatal(err)
			}
			fired := int64(0)
			for _, r := range doc.Experiments[0].Runs {
				for name, v := range r.Report.Counters {
					if strings.HasPrefix(name, "fault.disk.") {
						fired += v
					}
				}
			}
			if fired == 0 {
				t.Fatalf("%s: no fault.disk.* counters fired under injection", k)
			}
		})
	}
}

// TestBackendPolicyVariantsRun: each tiering policy completes the zswap
// sweep and the policies actually differ — flat admits nothing to the
// compressed pool, hotfirst admits less than writeback and records
// promotions.
func TestBackendPolicyVariantsRun(t *testing.T) {
	stores := map[swapback.Policy]int64{}
	promotes := map[swapback.Policy]int64{}
	for _, p := range []swapback.Policy{swapback.PolicyWriteback, swapback.PolicyHot, swapback.PolicyFlat} {
		o := goldenOpts()
		o.Scale = 0.0625
		o.Swapback = swapback.Zswap
		o.SwapPolicy = p
		var doc JSONDocument
		if err := json.Unmarshal(jsonBytes(t, "fig3", o), &doc); err != nil {
			t.Fatal(err)
		}
		for _, r := range doc.Experiments[0].Runs {
			stores[p] += r.Report.Counters["swapback.fast.store.pages"]
			promotes[p] += r.Report.Counters["swapback.promote.pages"]
		}
	}
	if stores[swapback.PolicyFlat] != 0 {
		t.Errorf("flat policy admitted %d pages", stores[swapback.PolicyFlat])
	}
	if stores[swapback.PolicyWriteback] == 0 {
		t.Error("writeback policy admitted nothing")
	}
	if s := stores[swapback.PolicyHot]; s == 0 || s >= stores[swapback.PolicyWriteback] {
		t.Errorf("hotfirst admitted %d pages, want in (0, %d)", s, stores[swapback.PolicyWriteback])
	}
	if promotes[swapback.PolicyHot] == 0 {
		t.Error("hotfirst recorded no promotions")
	}
}

// TestBackendNFingerprintStable: the registry experiment is deterministic
// — two serial runs fingerprint identically — and names every tier.
func TestBackendNFingerprintStable(t *testing.T) {
	o := goldenOpts()
	resetSweepCaches()
	a := BackendN(o)
	resetSweepCaches()
	b := BackendN(o)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("backendN fingerprint unstable: %s vs %s", fa, fb)
	}
	csv := a.Tables[0].CSV()
	for _, k := range swapback.AllKinds() {
		if !strings.Contains(csv, k.String()) {
			t.Errorf("backendN runtime table missing tier %s:\n%s", k, csv)
		}
	}
	if len(a.Tables) < 2 {
		t.Fatalf("backendN has %d tables, want 2", len(a.Tables))
	}
}

// TestBackendsScenarioMatchesYAML pins the scenario file against the
// in-tree engine: it loads, its per-tier grid runs, and all declared
// assertions pass (the note CI greps for).
func TestBackendsScenarioMatchesYAML(t *testing.T) {
	e := FromScenario(loadScenario(t, "backends"))
	resetSweepCaches()
	rep := e.Run(goldenOpts())
	want := ""
	for _, n := range rep.Notes {
		if strings.Contains(n, "assertions:") {
			want = n
		}
	}
	if !strings.Contains(want, "7/7 passed") {
		t.Fatalf("backends.yaml assertions note = %q, want 7/7 passed", want)
	}
	// Every tier/scheme cell appears as its own row.
	csv := rep.Tables[0].CSV()
	for _, k := range swapback.AllKinds() {
		for _, s := range []string{"baseline", "vswapper"} {
			if !strings.Contains(csv, fmt.Sprintf("%s/%s", k, s)) {
				t.Errorf("scenario table missing cell %s/%s:\n%s", k, s, csv)
			}
		}
	}
}
