// Command vswapsim runs one of the paper's experiments — hand-coded
// registry entries or declarative YAML scenarios — and prints its tables.
//
// Usage:
//
//	vswapsim -list
//	vswapsim -run <id> [flags]
//	vswapsim run <scenario.yaml> [flags]
//	vswapsim validate <scenario.yaml>...
//
// Flags (shared by -run and the run subcommand): -scale, -seed, -quick,
// -parallel, -json, -tracering, -faults, -swapback, -swappolicy,
// -auditevery, -maxevents, -celltimeout, -diagdir, -cpuprofile,
// -memprofile, -server. Run `vswapsim -h` for the full descriptions.
//
// With -server URL the run is submitted to a vswapsimd daemon instead of
// executing locally: repeated runs are served from the daemon's
// content-addressed result cache (byte-identical to a cold run), and the
// exit code mirrors the local semantics via the job's exit hint.
//
// `vswapsim run scenarios/fig3.yaml` executes a declarative scenario
// (see internal/scenario and EXPERIMENTS.md for the schema) through the
// same executor as the hand-coded experiments: a scenario mirroring a
// registry figure produces a byte-identical report. `vswapsim validate`
// parses and validates scenario files without running them, printing
// file:line:col positioned errors.
//
// With -json the experiment's machine-readable report is printed instead
// of the text tables: tables and notes plus one run record per simulated
// machine (counters, latency histograms, per-phase time accounting, and —
// with -tracering — the trace tail). The JSON bytes are bit-identical
// between serial (-parallel 1) and parallel runs.
//
// Run hardening: -maxevents and -celltimeout arm a per-cell watchdog that
// kills runaway or livelocked cells; each kill (or panic) degrades to a
// structured failure record in the report, and -diagdir writes one
// replayable crash-diagnostics bundle per failed cell. SIGINT cancels
// in-flight cells and still emits a valid partial report marked
// "incomplete".
//
// Exit codes: 0 success, 1 failed cells or failed scenario assertions (or
// runtime error), 2 usage, 3 incomplete (canceled by SIGINT or a fatal
// wall-clock breach).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"vswapsim/internal/experiment"
	"vswapsim/internal/fault"
	"vswapsim/internal/scenario"
	"vswapsim/internal/serve"
	"vswapsim/internal/swapback"
)

// Exit codes.
const (
	exitOK         = 0
	exitFailures   = 1
	exitUsage      = 2
	exitIncomplete = 3
)

// usageHeader precedes the flag listing in -h output; the usage test
// asserts it stays in sync with the actual command forms.
const usageHeader = `Usage:
  vswapsim -list
  vswapsim -run <id> [flags]
  vswapsim run <scenario.yaml> [flags]
  vswapsim validate <scenario.yaml>...

Flags:
`

// cliConfig holds the parsed command line.
type cliConfig struct {
	list        bool
	run         string
	scale       float64
	seed        uint64
	quick       bool
	parallel    int
	jsonOut     bool
	traceRing   int
	faults      fault.Plan
	swapback    swapback.Kind
	swapPolicy  swapback.Policy
	auditEvery  int
	maxEvents   uint64
	cellTimeout time.Duration
	diagDir     string
	cpuProfile  string
	memProfile  string
	server      string

	// raw flag values parsed into faults/swapback/swapPolicy by parseArgs;
	// kept verbatim so -server client mode can forward them unchanged.
	faultSpec      string
	swapbackName   string
	swapPolicyName string
}

// newFlagSet registers every vswapsim flag on a fresh FlagSet. faultSpec
// is returned separately because fault plans parse after flag.Parse.
func newFlagSet(c *cliConfig) (fs *flag.FlagSet, faultSpec *string) {
	fs = flag.NewFlagSet("vswapsim", flag.ContinueOnError)
	fs.BoolVar(&c.list, "list", false, "list available experiments")
	fs.StringVar(&c.run, "run", "", "experiment id to run (e.g. fig3)")
	fs.Float64Var(&c.scale, "scale", 1.0, "size scale factor (1.0 = paper-sized)")
	fs.Uint64Var(&c.seed, "seed", 42, "random seed")
	fs.BoolVar(&c.quick, "quick", false, "trim sweeps for a fast smoke run")
	fs.IntVar(&c.parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent simulator runs (1 = serial; results are identical either way)")
	fs.BoolVar(&c.jsonOut, "json", false,
		"emit the machine-readable report (tables + per-run counters/histograms/phases) as JSON")
	fs.IntVar(&c.traceRing, "tracering", 0,
		"attach a trace ring of this capacity to every machine; run reports embed its tail")
	fs.StringVar(&c.faultSpec, "faults", "",
		"fault-injection spec, e.g. 'disk-read-err:0.01;disk-lat:0.05:2ms;swapin-fail:0.02'")
	faultSpec = &c.faultSpec
	fs.StringVar(&c.swapbackName, "swapback", "",
		"swap-backend tier: "+strings.Join(swapback.KindNames(), ", ")+" (empty = hdd, the raw swap device)")
	fs.StringVar(&c.swapPolicyName, "swappolicy", "",
		"tiering policy for backends with a fast tier: "+strings.Join(swapback.PolicyNames(), ", ")+" (empty = writeback)")
	fs.IntVar(&c.auditEvery, "auditevery", 0,
		"run the invariant auditor every N simulated events (0 = off; a violation aborts the run)")
	fs.Uint64Var(&c.maxEvents, "maxevents", 0,
		"per-cell simulated-event budget; a breach kills only that cell, deterministically (0 = unlimited)")
	fs.DurationVar(&c.cellTimeout, "celltimeout", 0,
		"per-cell wall-clock budget (e.g. 30s); a breach is fatal and cancels the rest of the run (0 = unlimited)")
	fs.StringVar(&c.diagDir, "diagdir", "",
		"write one replayable crash-diagnostics bundle (JSON) per failed cell into this directory")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file")
	fs.StringVar(&c.server, "server", "",
		"run via a vswapsimd daemon at this base URL (e.g. http://127.0.0.1:8080); repeated runs hit its result cache")
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usageHeader)
		fs.PrintDefaults()
	}
	return fs, faultSpec
}

// parseArgs parses args (without the program name). Parse errors are
// reported on stderr by the FlagSet itself.
func parseArgs(args []string) (cliConfig, error) {
	var c cliConfig
	fs, faultSpec := newFlagSet(&c)
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.scale <= 0 || c.scale > 16 {
		return c, fmt.Errorf("invalid -scale %v: must be in (0, 16]", c.scale)
	}
	if c.parallel < 1 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 1", c.parallel)
	}
	if c.traceRing < 0 {
		return c, fmt.Errorf("invalid -tracering %d: must be >= 0", c.traceRing)
	}
	if c.auditEvery < 0 {
		return c, fmt.Errorf("invalid -auditevery %d: must be >= 0", c.auditEvery)
	}
	if c.cellTimeout < 0 {
		return c, fmt.Errorf("invalid -celltimeout %v: must be >= 0", c.cellTimeout)
	}
	var err error
	if c.faults, err = fault.ParsePlan(*faultSpec); err != nil {
		return c, fmt.Errorf("invalid -faults: %v", err)
	}
	if c.swapback, err = swapback.ParseKind(c.swapbackName); err != nil {
		return c, fmt.Errorf("invalid -swapback: %v", err)
	}
	if c.swapPolicy, err = swapback.ParsePolicy(c.swapPolicyName); err != nil {
		return c, fmt.Errorf("invalid -swappolicy: %v", err)
	}
	return c, nil
}

// printFailures renders the failure records of a run as text, including
// the trace-ring tail each record captured at the kill site.
func printFailures(w io.Writer, fails []experiment.FailureRecord) {
	fmt.Fprintf(w, "\n%d cell(s) FAILED:\n", len(fails))
	for _, f := range fails {
		fmt.Fprintf(w, "  [%s] %s\n    %s\n", f.Kind, f.Label, f.Message)
		if n := len(f.Trace); n > 0 {
			for _, ev := range f.Trace[max(0, n-4):] {
				fmt.Fprintf(w, "    trace %8dns %-9s %s\n", ev.AtNS, ev.Kind, ev.Msg)
			}
		}
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenarioCmd(args[1:], stdout, stderr)
		case "validate":
			return validateCmd(args[1:], stdout, stderr)
		}
	}
	c, err := parseArgs(args)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(stderr, "vswapsim: %v (run 'vswapsim -h' for usage)\n", err)
		}
		return exitUsage
	}

	if c.list || c.run == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range experiment.Registry {
			fmt.Fprintf(stdout, "  %-9s %-45s (%s)\n", e.ID, e.Title, e.PaperNote)
		}
		fmt.Fprintln(stdout, "\ndeclarative scenarios run with: vswapsim run <scenario.yaml> (see scenarios/)")
		if c.run == "" && !c.list {
			return exitUsage
		}
		return exitOK
	}

	e, err := experiment.ByID(c.run)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFailures
	}
	if c.server != "" {
		return runViaServer(c, serve.JobRequest{ID: e.ID}, stdout, stderr)
	}
	return executeExperiment(e, "", c, stdout, stderr)
}

// jobRequest forwards the CLI knobs into a daemon job, verbatim.
func (c cliConfig) jobRequest(base serve.JobRequest) serve.JobRequest {
	base.Seed = c.seed
	base.Scale = c.scale
	base.Quick = c.quick
	base.Parallel = c.parallel
	base.TraceRing = c.traceRing
	base.Faults = c.faultSpec
	base.Swapback = c.swapbackName
	base.SwapPolicy = c.swapPolicyName
	base.AuditEvery = c.auditEvery
	base.MaxEvents = c.maxEvents
	base.CellTimeoutMS = c.cellTimeout.Milliseconds()
	return base
}

// runViaServer is the thin -server client mode: submit the job to a
// vswapsimd daemon, wait for its terminal status, and print the result.
// With -json the daemon's document is printed verbatim (cache hits are
// byte-identical to cold runs by the daemon's contract); otherwise the
// same tables a local run would print are rendered from it. The exit code
// is the daemon's hint, matching local exit semantics.
func runViaServer(c cliConfig, base serve.JobRequest, stdout, stderr io.Writer) int {
	if c.diagDir != "" {
		fmt.Fprintln(stderr, "vswapsim: -diagdir is local-only; use the daemon's -diagdir instead (run 'vswapsim -h' for usage)")
		return exitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := serve.NewClient(c.server).Run(ctx, c.jobRequest(base))
	if err != nil {
		fmt.Fprintf(stderr, "vswapsim: %v\n", err)
		return exitFailures
	}
	if st.Error != "" {
		fmt.Fprintf(stderr, "vswapsim: job %s failed: %s\n", st.JobID, st.Error)
	}
	if c.jsonOut {
		if len(st.Document) > 0 {
			stdout.Write(st.Document)
			io.WriteString(stdout, "\n")
		}
		return st.ExitHint
	}
	if len(st.Document) > 0 {
		var doc experiment.JSONDocument
		if err := json.Unmarshal(st.Document, &doc); err != nil {
			fmt.Fprintf(stderr, "vswapsim: bad document from server: %v\n", err)
			return exitFailures
		}
		for _, rep := range doc.Experiments {
			fmt.Fprint(stdout, rep.Render())
			if len(rep.Failures) > 0 {
				printFailures(stdout, rep.Failures)
			}
		}
		if doc.Incomplete {
			fmt.Fprintln(stdout, "\nRUN INCOMPLETE: canceled before every cell finished")
		}
	}
	hit := "miss"
	if st.Cached {
		hit = "hit"
	}
	fmt.Fprintf(stdout, "(served by %s: job %s, cache %s)\n", c.server, st.JobID, hit)
	return st.ExitHint
}

// runScenarioCmd implements `vswapsim run <scenario.yaml> [flags]`.
func runScenarioCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(stderr, "vswapsim run: missing scenario path (usage: vswapsim run <scenario.yaml> [flags])")
		return exitUsage
	}
	path := args[0]
	c, err := parseArgs(args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(stderr, "vswapsim run: %v (run 'vswapsim -h' for usage)\n", err)
		}
		return exitUsage
	}
	if c.list || c.run != "" {
		fmt.Fprintln(stderr, "vswapsim run: -list/-run cannot be combined with a scenario file")
		return exitUsage
	}
	if c.server != "" {
		// Server mode ships the scenario bytes inline; the daemon parses,
		// validates, and runs them with its own executor.
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "vswapsim run: %v\n", err)
			return exitUsage
		}
		return runViaServer(c, serve.JobRequest{Scenario: string(data)}, stdout, stderr)
	}
	sc, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(stderr, "vswapsim run: %v\n", err)
		return exitUsage
	}
	// A scenario that declares its own backend tiers owns that axis: a
	// non-default CLI tier would silently lose to (or fight with) the
	// declaration, so the combination is a usage error rather than a
	// precedence rule.
	if c.swapback != swapback.HDD && len(sc.Backends) > 0 {
		fmt.Fprintln(stderr, "vswapsim run: -swapback conflicts with the scenario's backend declaration")
		return exitUsage
	}
	if c.swapPolicy != swapback.PolicyWriteback && sc.Policy != "" {
		fmt.Fprintln(stderr, "vswapsim run: -swappolicy conflicts with the scenario's policy declaration")
		return exitUsage
	}
	// Surface the scenario's own fault/audit configuration in the emitted
	// document and diag bundles; an explicit CLI -faults keeps priority
	// (and overrides the scenario's fault config entirely, including
	// inject_faults timeline events).
	if c.faults.Empty() {
		c.faults = sc.Faults
	}
	if c.auditEvery == 0 {
		c.auditEvery = sc.AuditEvery
	}
	return executeExperiment(experiment.FromScenario(sc), path, c, stdout, stderr)
}

// validateCmd implements `vswapsim validate <scenario.yaml>...`.
func validateCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "vswapsim validate: no scenario files given (usage: vswapsim validate <scenario.yaml>...)")
		return exitUsage
	}
	bad := 0
	for _, path := range args {
		sc, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "INVALID %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "ok %s (%s, %s mode, %d schemes)\n", path, sc.Name, sc.Mode, len(sc.Schemes))
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "%d of %d scenario file(s) invalid\n", bad, len(args))
		return exitFailures
	}
	return exitOK
}

// executeExperiment runs one experiment (registry entry or compiled
// scenario) under the shared hardening/reporting path. scenarioPath is
// non-empty for scenario runs and switches the diag-bundle replay hint
// to the `vswapsim run <path>` form.
func executeExperiment(e experiment.Experiment, scenarioPath string, c cliConfig, stdout, stderr io.Writer) int {
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM cancel in-flight cells via the watchdog poll; the
	// partial report is still emitted, marked incomplete. stop doubles as
	// the fatal-breach cancel hook.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.Options{
		Seed: c.seed, Scale: c.scale, Quick: c.quick,
		Parallel: c.parallel, TraceRing: c.traceRing,
		Faults: c.faults, Swapback: c.swapback, SwapPolicy: c.swapPolicy,
		AuditEvery: c.auditEvery,
		MaxEvents:  c.maxEvents, CellTimeout: c.cellTimeout,
		Ctx: ctx, CancelRun: stop,
	}
	start := time.Now()
	r := experiment.RunAll([]experiment.Experiment{e}, opts, nil)[0]
	elapsed := time.Since(start)
	incomplete := ctx.Err() != nil

	if c.jsonOut {
		doc := experiment.BuildJSONDocument(opts,
			[]*experiment.JSONReport{experiment.BuildJSON(r.Report, r.Runs, r.Failures)})
		doc.Incomplete = incomplete
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
	} else {
		fmt.Fprint(stdout, r.Report.String())
		fmt.Fprintf(stdout, "(generated in %v wall time, -parallel %d)\n", elapsed.Round(time.Millisecond), c.parallel)
		if len(r.Failures) > 0 {
			printFailures(stdout, r.Failures)
		}
		if incomplete {
			fmt.Fprintln(stdout, "\nRUN INCOMPLETE: canceled before every cell finished")
		}
	}

	if c.diagDir != "" && len(r.Failures) > 0 {
		replay := experiment.ReplayCommand("vswapsim", e.ID, opts)
		if scenarioPath != "" {
			replay = experiment.ScenarioReplayCommand(scenarioPath, opts)
		}
		paths, err := experiment.WriteDiagBundlesReplay(c.diagDir, "vswapsim", e.ID, replay, opts, r.Failures)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		fmt.Fprintf(stderr, "wrote %d crash-diagnostics bundle(s) to %s\n", len(paths), c.diagDir)
	}

	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailures
		}
	}

	switch {
	case incomplete:
		return exitIncomplete
	case len(r.Failures) > 0 || r.Report.AssertionFailures > 0:
		return exitFailures
	}
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
