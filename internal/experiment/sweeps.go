package experiment

import (
	"fmt"
	"strconv"
	"sync"

	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// sweepSizes are the controlled guest allocations (MB) of §5.1; the guest
// always believes it has 512 MB.
func sweepSizes(o Options) []int {
	if o.Quick {
		return []int{512, 320, 192}
	}
	return []int{512, 448, 384, 320, 256, 192}
}

// sweepResult holds one (scheme, size) cell of a sweep. failed marks a
// cell that was killed by the watchdog, panicked, or was canceled; its
// res/met are zero-valued and sweepTable renders it as "failed".
type sweepResult struct {
	res    workload.Result
	met    map[string]int64
	failed bool
}

// runSweep executes body across schemes × sizes, fanning the cells out on
// the worker pool. id names the sweep in each cell's derived seed, so a
// cell's result is a pure function of (Seed, id, scheme, size) — identical
// whether the grid runs serially or in parallel, in any order.
func runSweep(o Options, id string, schemes []Scheme, sizes []int,
	body func(vm *hyper.VM, p *sim.Proc) *workload.Job) map[Scheme]map[int]sweepResult {
	o = o.normalized()
	type cell struct {
		scheme Scheme
		size   int
	}
	cells := make([]cell, 0, len(schemes)*len(sizes))
	for _, s := range schemes {
		for _, size := range sizes {
			cells = append(cells, cell{s, size})
		}
	}
	results := make([]sweepResult, len(cells))
	o.forEach(len(cells), func(i int) {
		c := cells[i]
		r := runSingle(runCfg{
			opts: o, scheme: c.scheme,
			seed:    sim.DeriveSeed(o.Seed, id, c.scheme.String(), strconv.Itoa(c.size)),
			guestMB: 512, actualMB: c.size,
			warmup: true,
		}, body)
		results[i] = sweepResult{res: r.res, met: r.met, failed: r.failed != nil}
	})
	out := make(map[Scheme]map[int]sweepResult)
	for i, c := range cells {
		if out[c.scheme] == nil {
			out[c.scheme] = make(map[int]sweepResult)
		}
		out[c.scheme][c.size] = results[i]
	}
	return out
}

// sweepTable renders one metric across the sweep grid.
func sweepTable(title string, schemes []Scheme, sizes []int,
	data map[Scheme]map[int]sweepResult, cell func(sweepResult) string) *Table {
	tab := &Table{Title: title, Columns: []string{"guest mem [MB]"}}
	for _, s := range schemes {
		tab.Columns = append(tab.Columns, s.String())
	}
	for _, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, s := range schemes {
			if r := data[s][size]; r.failed {
				row = append(row, "failed")
			} else {
				row = append(row, cell(r))
			}
		}
		tab.Add(row...)
	}
	return tab
}

// pbzipSweep runs the pbzip2 sweep shared by Figs. 5 and 11; results are
// memoized single-flight, so the two figures cost one sweep even when the
// parallel executor generates them concurrently.
type pbzipEntry struct {
	once  sync.Once
	data  map[Scheme]map[int]sweepResult
	recs  []RunRecord
	fails []FailureRecord
}

var (
	pbzipMu    sync.Mutex
	pbzipCache = map[string]*pbzipEntry{}
)

// resetSweepCaches clears the cross-experiment memoization; tests use it
// to force the serial and parallel runs of an equivalence check to both
// actually execute.
func resetSweepCaches() {
	pbzipMu.Lock()
	defer pbzipMu.Unlock()
	pbzipCache = map[string]*pbzipEntry{}
}

// ResetCaches clears the cross-experiment memoization. Benchmarks call it
// between iterations so every iteration pays the full simulation cost
// instead of replaying the memoized pbzip2 sweep.
func ResetCaches() { resetSweepCaches() }

func pbzipSweep(o Options) (map[Scheme]map[int]sweepResult, []Scheme, []int) {
	o = o.normalized()
	schemes := []Scheme{Baseline, MapperOnly, VSwapper, BalloonBase}
	// Fig. 5's axis extends to 128 MB, where the paper's guest OOM-kills
	// pbzip2 under the static balloon ("below 240MB" on their axis).
	sizes := append(sweepSizes(o), 128)
	key := fmt.Sprintf("%d/%f/%v/%s/%d/%d/%v",
		o.Seed, o.Scale, o.Quick, o.Faults, o.AuditEvery, o.MaxEvents, o.CellTimeout)
	pbzipMu.Lock()
	e := pbzipCache[key]
	if e == nil {
		e = &pbzipEntry{}
		pbzipCache[key] = e
	}
	pbzipMu.Unlock()
	e.once.Do(func() {
		// The sweep is shared between Figs. 5 and 11, so its run records are
		// captured once here and replayed into every caller's log below —
		// whichever figure happens to trigger the sweep, both figures report
		// the same runs, keeping parallel JSON output scheduling-independent.
		oi := o
		fetch := oi.EnableRunLog()
		fetchFails := oi.EnableFailureLog()
		e.data = runSweep(oi, "pbzip", schemes, sizes, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.Pbzip2(vm, workload.Pbzip2Config{
				InputMB:      o.mb(448),
				WorkingPages: int(5120 * o.Scale), // keep footprint proportional
			})
		})
		e.recs = fetch()
		e.fails = fetchFails()
	})
	o.runlog.addRecords(e.recs)
	o.faillog.addRecords(e.fails)
	return e.data, schemes, sizes
}

// Fig5 reproduces the pbzip2 runtime sweep with over-ballooning kills.
func Fig5(o Options) *Report {
	data, schemes, sizes := pbzipSweep(o)
	rep := &Report{
		ID:        "fig5",
		Title:     "pbzip2 compressing the kernel tree, 512MB guest (Fig. 5)",
		PaperNote: "baseline up to 1.66x slower than balloon; vswapper within 1.03-1.08x; balloon kills pbzip2 below 240MB",
	}
	rep.Tables = append(rep.Tables, sweepTable("runtime [sec]", schemes, sizes, data,
		func(r sweepResult) string { return runtimeOrKilled(r.res) }))
	return rep
}

// Fig11 reproduces the pbzip2 I/O and reclaim-scan panels.
func Fig11(o Options) *Report {
	data, schemes, sizes := pbzipSweep(o)
	rep := &Report{
		ID:        "fig11",
		Title:     "pbzip2: disk operations, swap writes, pages scanned (Fig. 11)",
		PaperNote: "(a) vswapper needs far fewer disk ops; (b) swap writes largely eliminated; (c) mapper doubles scan length under low pressure",
	}
	rep.Tables = append(rep.Tables,
		sweepTable("(a) disk operations [1000s]", schemes, sizes, data, func(r sweepResult) string {
			return fmt.Sprintf("%.0f", float64(r.met[metrics.DiskOps])/1000)
		}),
		sweepTable("(b) host swap written sectors [1000s]", schemes, sizes, data, func(r sweepResult) string {
			return fmt.Sprintf("%.0f", float64(r.met[metrics.SwapWriteSectors])/1000)
		}),
		sweepTable("(c) pages scanned [millions]", schemes, sizes, data, func(r sweepResult) string {
			return fmt.Sprintf("%.2f", float64(r.met[metrics.HostPagesScanned])/1e6)
		}),
	)
	return rep
}

// Fig12 reproduces the Kernbench sweep: runtime and Preventer remaps.
func Fig12(o Options) *Report {
	o = o.normalized()
	schemes := []Scheme{Baseline, MapperOnly, VSwapper, BalloonBase}
	sizes := sweepSizes(o)
	files := 2800
	if o.Quick {
		files = 600
	}
	data := runSweep(o, "fig12", schemes, sizes, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
		return workload.Kernbench(vm, workload.KernbenchConfig{Files: int(float64(files) * o.Scale)})
	})
	rep := &Report{
		ID:        "fig12",
		Title:     "Kernbench kernel build, 512MB guest (Fig. 12)",
		PaperNote: "~15%/5% slowdown at 192MB for baseline/balloon (matching the VMware white paper); preventer eliminates up to 80K false reads",
	}
	rep.Tables = append(rep.Tables,
		sweepTable("(a) runtime [min]", schemes, sizes, data, func(r sweepResult) string {
			if r.res.Killed {
				return "killed"
			}
			return mins(r.res.Runtime())
		}),
		sweepTable("(b) preventer remaps [1000s]", schemes, sizes, data, func(r sweepResult) string {
			return fmt.Sprintf("%.1f", float64(r.met[metrics.PreventerRemaps])/1000)
		}),
	)
	return rep
}
