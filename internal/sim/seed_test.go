package sim

import (
	"fmt"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "fig12", "baseline", "512")
	b := DeriveSeed(42, "fig12", "baseline", "512")
	if a != b {
		t.Fatalf("same inputs gave %d and %d", a, b)
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	// Concatenation across label boundaries must not collide.
	if DeriveSeed(42, "ab", "c") == DeriveSeed(42, "a", "bc") {
		t.Fatal(`("ab","c") collided with ("a","bc")`)
	}
	if DeriveSeed(42, "x") == DeriveSeed(42, "x", "") {
		t.Fatal("trailing empty label collided")
	}
	if DeriveSeed(42) == DeriveSeed(42, "") {
		t.Fatal("no labels collided with one empty label")
	}
}

func TestDeriveSeedBaseSensitivity(t *testing.T) {
	if DeriveSeed(42, "x") == DeriveSeed(43, "x") {
		t.Fatal("adjacent bases collided")
	}
	if DeriveSeed(42, "x") == DeriveSeed(42^1<<63, "x") {
		t.Fatal("high-bit base flip collided")
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	// A realistic grid of (id, scheme, size) labels must be collision-free.
	seen := make(map[uint64]string)
	for _, id := range []string{"pbzip", "fig12", "fig13", "fig14", "fig4"} {
		for _, scheme := range []string{"baseline", "balloon+base", "mapper", "vswapper", "balloon+vswap"} {
			for size := 0; size < 1024; size += 8 {
				key := fmt.Sprintf("%s/%s/%d", id, scheme, size)
				s := DeriveSeed(42, id, scheme, fmt.Sprintf("%d", size))
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}
