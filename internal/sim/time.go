// Package sim provides the deterministic discrete-event simulation engine
// that underlies the whole VSwapper reproduction: a virtual clock, an event
// queue, cooperatively scheduled processes, and a seeded PRNG.
//
// Everything in the repository that "takes time" — disk seeks, page-fault
// exits, CPU bursts — advances the virtual clock through this package, so a
// complete multi-guest experiment runs in milliseconds of wall time while
// reporting seconds of virtual time, and is bit-for-bit reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is a distinct type so that virtual and wall-clock times
// cannot be confused.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Handy duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts a virtual duration to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return d.Std().String() }

func (t Time) String() string {
	return fmt.Sprintf("T+%s", time.Duration(t))
}

// DurationOf converts a time.Duration literal (handy in configuration) to a
// virtual Duration.
func DurationOf(d time.Duration) Duration { return Duration(d) }
