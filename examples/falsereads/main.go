// Falsereads: demonstrates the False Reads Preventer in isolation
// (paper Fig. 10). A guest whose free memory the host already reclaimed
// allocates 200 MB; every freshly zeroed page would normally drag its
// stale content in from the host swap area first.
//
//	go run ./examples/falsereads
package main

import (
	"fmt"

	"vswapsim"
	"vswapsim/internal/metrics"
)

func run(label string, mapper, preventer bool) {
	m := vswapsim.NewMachine(vswapsim.MachineConfig{Seed: 3, HostMemPages: 4 << 30 / 4096})
	vm := m.NewVM(vswapsim.VMConfig{
		Name:       "guest0",
		MemPages:   512 << 20 / 4096,
		LimitPages: 100 << 20 / 4096,
		DiskBlocks: 20 << 30 / 4096,
		Mapper:     mapper,
		Preventer:  preventer,
		GuestAPF:   true,
	})
	var res vswapsim.Result
	m.Env.Go("driver", func(p *vswapsim.Proc) {
		vm.Boot(p)
		vswapsim.Warmup(vm, 2048).Wait(p)
		res = vswapsim.AllocTouch(vm, vswapsim.AllocTouchConfig{SizeMB: 200}).Wait(p)
		m.Shutdown()
	})
	m.Run()
	fmt.Printf("%-26s runtime %7.2fs  false reads %6d  preventer remaps %6d\n",
		label, res.Runtime().Seconds(),
		m.Met.Get(metrics.FalseSwapReads),
		m.Met.Get(metrics.PreventerRemaps))
}

func main() {
	fmt.Println("allocate + sequentially access 200MB at 100MB actual memory")
	run("baseline:", false, false)
	run("mapper only:", true, false)
	run("mapper + preventer:", true, true)
}
