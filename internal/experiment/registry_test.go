package experiment

import "testing"

func TestByIDTable(t *testing.T) {
	cases := []struct {
		name    string
		id      string
		wantErr bool
	}{
		{"first entry", "fig3", false},
		{"sweep entry", "fig11", false},
		{"last entry", "migration", false},
		{"table entry", "tab2", false},
		{"empty id", "", true},
		{"unknown id", "fig99", true},
		{"case sensitive", "FIG3", true},
		{"whitespace", " fig3", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := ByID(c.id)
			if c.wantErr {
				if err == nil {
					t.Fatalf("ByID(%q) = %q, want error", c.id, e.ID)
				}
				return
			}
			if err != nil {
				t.Fatalf("ByID(%q): %v", c.id, err)
			}
			if e.ID != c.id || e.Run == nil || e.Title == "" {
				t.Fatalf("ByID(%q) returned incomplete entry: %+v", c.id, e)
			}
		})
	}
}

func TestIDsMatchRegistryOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() has %d entries, registry %d", len(ids), len(Registry))
	}
	for i, e := range Registry {
		if ids[i] != e.ID {
			t.Fatalf("IDs()[%d] = %q, registry order has %q", i, ids[i], e.ID)
		}
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if e.ID == "" {
			t.Fatalf("registry entry %q has empty id", e.Title)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate registry id %q", e.ID)
		}
		seen[e.ID] = true
	}
}
