package workload

import (
	"fmt"

	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// MetisConfig parameterizes the Metis MapReduce word-count (paper §5.2,
// Figs. 4 and 14): a 300 MB input file is mapped into large in-memory hash
// tables (~1 GB), then reduced. Table pages fill sequentially per bucket,
// making the workload a prime beneficiary of the False Reads Preventer
// when the host has swapped table pages out.
type MetisConfig struct {
	// InputMB is the input file (paper: 300 MB, 1M keys).
	InputMB int
	// TableMB is the aggregate intermediate table size (~1 GB).
	TableMB int
	// Buckets is how many table regions fill concurrently.
	Buckets int
	// Threads matches the guest's VCPUs (paper: 2).
	Threads int
	// CPUPerBlock is map-phase parsing/hashing cost per input block.
	CPUPerBlock sim.Duration
	// CPUPerTablePage is reduce-phase cost per table page.
	CPUPerTablePage sim.Duration
}

func (c MetisConfig) withDefaults() MetisConfig {
	if c.InputMB == 0 {
		c.InputMB = 300
	}
	if c.TableMB == 0 {
		c.TableMB = 1024
	}
	if c.Buckets == 0 {
		c.Buckets = 16
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	if c.CPUPerBlock == 0 {
		c.CPUPerBlock = 280 * sim.Microsecond
	}
	if c.CPUPerTablePage == 0 {
		c.CPUPerTablePage = 40 * sim.Microsecond
	}
	return c
}

// Metis launches the MapReduce word-count on vm.
func Metis(vm *hyper.VM, cfg MetisConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("metis")
	return launch(vm, "metis", pr, func(t *guest.Thread, j *Job) {
		input := vm.OS.FS.Create("metis.in", int64(cfg.InputMB)<<20)
		tablePages := cfg.TableMB << 20 / 4096
		perBucket := tablePages / cfg.Buckets
		table := pr.Reserve(cfg.Buckets * perBucket)

		// bucket fill cursors: (page index within bucket, offset in page)
		type cursor struct{ page, off int }
		cursors := make([]cursor, cfg.Buckets)
		rng := vm.M.Env.Rand().Fork()

		inputBlocks := int(input.SizeBytes() / 4096)
		perThread := (inputBlocks + cfg.Threads - 1) / cfg.Threads
		const recordBytes = 2048 // k/v pairs flushed in batches
		// The paper's word-count emits ~1 GB of table data from 300 MB of
		// input; derive the per-block record count so the configured table
		// actually fills by the end of the map phase.
		recordsPerBlock := int(int64(cfg.TableMB) << 20 / (int64(inputBlocks) * recordBytes))
		if recordsPerBlock < 1 {
			recordsPerBlock = 1
		}

		mapDone := newBarrier(vm.M.Env, cfg.Threads)
		for w := 0; w < cfg.Threads; w++ {
			w := w
			vm.OS.Go(fmt.Sprintf("metis-map%d", w), pr, func(wt *guest.Thread) {
				defer mapDone.arrive()
				lo := w * perThread
				hi := lo + perThread
				if hi > inputBlocks {
					hi = inputBlocks
				}
				for b := lo; b < hi && !wt.ProcKilled(); b++ {
					wt.ReadFile(input, int64(b)*4096, 4096)
					wt.Compute(cfg.CPUPerBlock)
					// Each input block emits several records appended to
					// pseudo-random buckets; pages fill front-to-back.
					for rcd := 0; rcd < recordsPerBlock; rcd++ {
						bk := rng.Intn(cfg.Buckets)
						cu := &cursors[bk]
						if cu.page >= perBucket {
							continue // bucket full
						}
						idx := table + bk*perBucket + cu.page
						wt.WriteAnonSpan(pr, idx, cu.off, recordBytes)
						cu.off += recordBytes
						if cu.off >= 4096 {
							cu.off = 0
							cu.page++
						}
					}
				}
			})
		}
		mapDone.wait(t.P)
		if t.ProcKilled() {
			return
		}

		// Reduce: each thread scans half the buckets' filled pages.
		redDone := newBarrier(vm.M.Env, cfg.Threads)
		for w := 0; w < cfg.Threads; w++ {
			w := w
			vm.OS.Go(fmt.Sprintf("metis-red%d", w), pr, func(wt *guest.Thread) {
				defer redDone.arrive()
				for bk := w; bk < cfg.Buckets; bk += cfg.Threads {
					filled := cursors[bk].page
					for pg := 0; pg <= filled && pg < perBucket && !wt.ProcKilled(); pg++ {
						wt.TouchAnon(pr, table+bk*perBucket+pg, false)
						wt.Compute(cfg.CPUPerTablePage)
					}
				}
			})
		}
		redDone.wait(t.P)
	})
}
