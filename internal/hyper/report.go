package hyper

import (
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// This file is the machine-level half of the observability layer: a typed,
// machine-readable summary of one simulation run. cmd/vswapsim -json and
// cmd/vswapper-report -json serialize it; the experiment layer collects one
// per simulated machine.

// traceTail bounds how many trailing trace events a report embeds when
// tracing is enabled; the full ring stays available via Machine.EnableTrace.
const traceTail = 32

// PhaseReport is the per-phase simulated-time accounting: where virtual
// time went, totalled across all processes of the run. Phases overlap
// (a guest thread can run while another waits on the disk), so they are
// independent totals, not a partition of TotalNS.
type PhaseReport struct {
	// GuestRunNS is CPU time guest threads executed on their VCPUs.
	GuestRunNS int64 `json:"guest_run_ns"`
	// HostFaultNS is CPU time the host spent handling faults (exits,
	// table walks, COW copies), excluding disk waits.
	HostFaultNS int64 `json:"host_fault_ns"`
	// DiskWaitNS is time processes were blocked on disk completions.
	DiskWaitNS int64 `json:"disk_wait_ns"`
	// ReclaimScanNS is CPU time spent scanning LRU lists in reclaim.
	ReclaimScanNS int64 `json:"reclaim_scan_ns"`
	// TotalNS is the final virtual clock of the run.
	TotalNS int64 `json:"total_ns"`
}

// TraceEventReport is one trace-ring event in serializable form.
type TraceEventReport struct {
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// RunReport is the structured summary of one machine's run: every non-zero
// counter, every non-empty latency histogram, the phase accounting, and
// (when tracing was enabled) the tail of the event ring. All content is a
// pure function of the machine's seed and configuration, so serial and
// parallel executions serialize to identical bytes.
type RunReport struct {
	Seed       uint64                               `json:"seed"`
	Counters   map[string]int64                     `json:"counters"`
	Histograms map[string]metrics.HistogramSnapshot `json:"histograms"`
	Phases     PhaseReport                          `json:"phases"`
	Trace      []TraceEventReport                   `json:"trace,omitempty"`
}

// ReportFromSet builds a RunReport from a bare metric set with no backing
// machine — the cluster layer reports its fleet-level counters and the
// fleet unit-latency histogram this way, alongside the per-host machine
// reports. Only the total-time phase is meaningful.
func ReportFromSet(seed uint64, met *metrics.Set, now sim.Time) *RunReport {
	counters := make(map[string]int64)
	for k, v := range met.Snapshot() {
		if v != 0 {
			counters[k] = v
		}
	}
	hists := make(map[string]metrics.HistogramSnapshot)
	for _, h := range met.Histograms() {
		if h.Count() > 0 {
			hists[h.Name()] = h.Snapshot()
		}
	}
	return &RunReport{
		Seed:       seed,
		Counters:   counters,
		Histograms: hists,
		Phases:     PhaseReport{TotalNS: int64(now)},
	}
}

// Report captures the machine's current observability state. Call it after
// Run has drained (end-of-run totals); calling it mid-run snapshots
// whatever has accumulated so far.
func (m *Machine) Report() *RunReport {
	counters := make(map[string]int64)
	for k, v := range m.Met.Snapshot() {
		if v != 0 {
			counters[k] = v
		}
	}
	hists := make(map[string]metrics.HistogramSnapshot)
	for _, h := range m.Met.Histograms() {
		if h.Count() > 0 {
			hists[h.Name()] = h.Snapshot()
		}
	}
	r := &RunReport{
		Seed:       m.seed,
		Counters:   counters,
		Histograms: hists,
		Phases: PhaseReport{
			GuestRunNS:    m.Met.Get(metrics.TimeGuestRun),
			HostFaultNS:   m.Met.Get(metrics.TimeHostFault),
			DiskWaitNS:    m.Met.Get(metrics.TimeDiskWait),
			ReclaimScanNS: m.Met.Get(metrics.TimeReclaimScan),
			TotalNS:       int64(m.Env.Now()),
		},
	}
	if m.trace != nil {
		events := m.trace.Events()
		if len(events) > traceTail {
			events = events[len(events)-traceTail:]
		}
		for _, e := range events {
			r.Trace = append(r.Trace, TraceEventReport{
				AtNS: int64(e.At),
				Kind: e.Kind.String(),
				Msg:  e.Msg,
			})
		}
	}
	return r
}
