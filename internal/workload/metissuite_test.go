package workload

import (
	"testing"

	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

func TestGrepStreamsWithoutAnonState(t *testing.T) {
	m, vm := smallVM(t, 256, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{Grep(vm, GrepConfig{InputMB: 32})}
	})
	if res[0].Killed {
		t.Fatal("killed")
	}
	if m.Met.Get(metrics.GuestSwapOuts) != 0 {
		t.Fatal("grep should have no anonymous pressure")
	}
	if m.Met.Get(metrics.ImageReadSectors) < 32<<20/512 {
		t.Fatal("did not read the whole input")
	}
}

func TestHistogramKeepsTableHot(t *testing.T) {
	// Even under severe host pressure, the histogram's tiny hot table
	// means VSwapper keeps the run close to streaming speed.
	run := func(mapper bool) sim.Duration {
		m, vm := smallVMConfig(t, 256, 48, mapper, mapper)
		res := drive(t, m, vm, func(p *sim.Proc) []*Job {
			return []*Job{Histogram(vm, HistogramConfig{InputMB: 96})}
		})
		return res[0].Runtime()
	}
	base := run(false)
	vswap := run(true)
	if vswap >= base {
		t.Fatalf("vswapper (%v) not faster than baseline (%v) on histogram", vswap, base)
	}
}

func TestKMeansIterates(t *testing.T) {
	m, vm := smallVM(t, 512, 0)
	res := drive(t, m, vm, func(p *sim.Proc) []*Job {
		return []*Job{KMeans(vm, KMeansConfig{PointsMB: 64, Iterations: 3})}
	})
	if res[0].Killed {
		t.Fatal("killed")
	}
	if len(res[0].Iterations) != 3 {
		t.Fatalf("iterations = %d", len(res[0].Iterations))
	}
	// Fully resident: iterations should be nearly identical.
	a, b := res[0].Iterations[1], res[0].Iterations[2]
	if a == 0 || b == 0 {
		t.Fatal("zero-length iteration")
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("resident iterations differ: %v vs %v", a, b)
	}
}

func TestKMeansLRUPathologyUnderPressure(t *testing.T) {
	// Points exceed actual memory: iterations slow down hard in baseline;
	// VSwapper cannot help much (anonymous data) but must not be slower.
	run := func(mapper, preventer bool) sim.Duration {
		m, vm := smallVMConfig(t, 256, 64, mapper, preventer)
		res := drive(t, m, vm, func(p *sim.Proc) []*Job {
			return []*Job{KMeans(vm, KMeansConfig{PointsMB: 128, Iterations: 2})}
		})
		return res[0].Runtime()
	}
	base := run(false, false)
	vswap := run(true, true)
	if float64(vswap) > float64(base)*1.10 {
		t.Fatalf("vswapper (%v) more than 10%% slower than baseline (%v)", vswap, base)
	}
}
