package experiment

import (
	"fmt"
	"strconv"

	"vswapsim/internal/cluster"
	"vswapsim/internal/hyper"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
)

// This file is the cluster cell: one multi-host scheduler run (ROADMAP
// item 4) executed under the standard hardening envelope. A cell builds
// one shared sim.Env, N hyper machines on it, and the internal/cluster
// scheduler/monitor; the fan-out axis is the remediation policy, so
// clusterN and the cluster: scenario mode compare policies on fleet-wide
// p95/p99 unit latency and kill counts.

// clusterCfg sizes a cluster cell. All MB figures are pre-scale.
type clusterCfg struct {
	hosts  int
	hostMB int
	// hostNames/hostMBs, when non-empty, override the homogeneous
	// hosts×hostMB form with an explicitly-sized host list (the scenario
	// layer's heterogeneous form).
	hostNames     []string
	hostMBs       []int
	guestMB       int
	wsMinPct      int
	wsMaxPct      int
	units         int
	phaseUnits    int
	unitComputeMS int
	staggerMS     int
	diskMB        int
	packing       cluster.Packing
	threshold     float64
	sampleSec     int
	cooldownSec   int
	maxCommit     float64
	swapback      swapback.Kind
}

// defaultClusterCfg is the clusterN configuration: four 1 GB hosts,
// 256 MB guests with heterogeneous 60-95% working sets on staggered
// hot/cold phases, a 2.5x commit bound and a balanced-pressure packer.
func defaultClusterCfg() clusterCfg {
	return clusterCfg{
		hosts: 4, hostMB: 1024, guestMB: 256,
		wsMinPct: 60, wsMaxPct: 95,
		units: 120, phaseUnits: 40, unitComputeMS: 20, staggerMS: 20, diskMB: 1024,
		packing:   cluster.BalancedPressure,
		threshold: 0.05, sampleSec: 1, cooldownSec: 2,
		maxCommit: 2.5,
		// SSD swap keeps a pressured host's units moderately slow instead of
		// catastrophically rare-slow, so fleet percentiles see the thrash.
		swapback: swapback.SSD,
	}
}

// clusterOut is one completed cluster cell in structured form.
type clusterOut struct {
	p95NS, p99NS   int64 // per-unit latency quantiles
	gp95NS, gp99NS int64 // per-guest workload latency quantiles
	units          int64
	kills          int64
	migrations     int64
	refused        int64
	failed         bool
}

// runCluster executes one cluster cell and returns its structured
// outcome. seed, when nonzero, overrides o.Seed so fan-out cells get
// independent derived streams.
func runCluster(o Options, s Scheme, remedy cluster.Remediation, n int, seed uint64, cc clusterCfg) (clusterOut, *FailureRecord) {
	o = o.normalized()
	release := o.acquire()
	defer release()
	if seed == 0 {
		seed = o.Seed
	}
	label := fmt.Sprintf("cluster/%s/%s/guests%d/seed%016x", s, remedy, n, seed)

	// The -swapback flag still overrides the cell's tier; the cell default
	// (SSD for clusterN) only applies when the option is left at its zero
	// value (HDD).
	sb := o.Swapback
	if sb == swapback.HDD {
		sb = cc.swapback
	}

	var out clusterOut
	var cl *cluster.Cluster
	st := &cellState{}
	failed := o.runShielded(label, seed, st, func() {
		env := sim.NewEnv(seed)
		env.SetBudget(o.cellBudget())
		var hosts []cluster.HostSpec
		if len(cc.hostNames) > 0 {
			hosts = make([]cluster.HostSpec, len(cc.hostNames))
			for i := range hosts {
				hosts[i] = cluster.HostSpec{
					Name:     cc.hostNames[i],
					MemPages: o.pages(cc.hostMBs[i]),
				}
			}
		} else {
			hosts = make([]cluster.HostSpec, cc.hosts)
			for i := range hosts {
				hosts[i] = cluster.HostSpec{
					Name:     fmt.Sprintf("host%d", i),
					MemPages: o.pages(cc.hostMB),
				}
			}
		}
		cl = cluster.New(cluster.Config{
			Seed:              seed,
			Env:               env,
			Hosts:             hosts,
			Guests:            n,
			GuestMemPages:     o.pages(cc.guestMB),
			WSMinPct:          cc.wsMinPct,
			WSMaxPct:          cc.wsMaxPct,
			Units:             cc.units,
			PhaseUnits:        cc.phaseUnits,
			UnitCompute:       sim.Duration(cc.unitComputeMS) * sim.Millisecond,
			Stagger:           sim.Duration(cc.staggerMS) * sim.Millisecond,
			GuestDiskBlocks:   int64(o.mb(cc.diskMB)) << 20 / 4096,
			Packing:           cc.packing,
			Remediation:       remedy,
			MaxCommitFactor:   cc.maxCommit,
			SampleInterval:    sim.Duration(cc.sampleSec) * sim.Second,
			PressureThreshold: cc.threshold,
			Cooldown:          sim.Duration(cc.cooldownSec) * sim.Second,
			Mapper:            s.mapper(),
			Preventer:         s.preventer(),
			Balloon:           s.balloon(),
			Swapback:          sb,
			SwapPolicy:        o.SwapPolicy,
			Faults:            o.Faults,
			AuditEvery:        o.AuditEvery,
			Spec: fmt.Sprintf("scheme=%s remediation=%s packing=%s guests=%d hosts=%d",
				s, remedy, cc.packing, n, len(hosts)),
		})
		st.m = cl.Hosts[0].M
		cl.Run()
		if err := cl.Final(); err != nil {
			panic(fmt.Sprintf("experiment: cluster invariant violation (replay with seed=%d faults=%q; cell seed %#x): %v",
				o.Seed, o.Faults.String(), seed, err))
		}
		out = clusterOut{
			p95NS:      cl.UnitP95(),
			p99NS:      cl.UnitP99(),
			gp95NS:     cl.GuestP95(),
			gp99NS:     cl.GuestP99(),
			units:      cl.Counter(metrics.ClusterUnits),
			kills:      cl.Counter(metrics.ClusterKills),
			migrations: cl.Counter(metrics.ClusterMigrations),
			refused:    cl.Counter(metrics.ClusterMigrateRefused),
		}
	})
	if failed != nil {
		return clusterOut{failed: true}, failed
	}
	if o.runlog != nil {
		for _, h := range cl.Hosts {
			o.runlog.add(label+"/"+h.Name, h.M.Report())
		}
		o.runlog.add(label+"/fleet", cl.FleetReport())
	}
	return out, nil
}

// clusterGrid fans the counts × remediations grid out on the worker
// pool, row-major (counts outer), each cell on its own derived seed.
func clusterGrid(o Options, id string, s Scheme, counts []int, remedies []cluster.Remediation, cc clusterCfg) []clusterOut {
	o = o.normalized()
	out := make([]clusterOut, len(counts)*len(remedies))
	o.forEach(len(out), func(i int) {
		n, r := counts[i/len(remedies)], remedies[i%len(remedies)]
		seed := sim.DeriveSeed(o.Seed, id, s.String(), r.String(), strconv.Itoa(n))
		cell, _ := runCluster(o, s, r, n, seed, cc)
		out[i] = cell
	})
	return out
}

// renderClusterCell formats one cell for the policy table. Quantiles in
// the killed-guest sentinel bucket render as "inf": that tail is censored
// kills, not a measured completion time.
func renderClusterCell(c clusterOut) string {
	if c.failed {
		return "failed"
	}
	q := func(ns int64) string {
		if ns >= int64(cluster.KilledLatency) {
			return "inf"
		}
		return fmt.Sprintf("%.1f", float64(ns)/1e9)
	}
	cell := q(c.gp95NS) + "/" + q(c.gp99NS)
	if c.kills > 0 {
		cell += fmt.Sprintf(" (%d killed)", c.kills)
	}
	if c.migrations > 0 {
		cell += fmt.Sprintf(" (%d mig)", c.migrations)
	}
	return cell
}

// clusterRemedies is the policy comparison set in column order.
var clusterRemedies = cluster.AllRemediations()

// ClusterN compares remediation policies on an overcommitted four-host
// cluster: fleet-wide p95/p99 unit latency plus kill and migration
// counts, per guest count.
func ClusterN(o Options) *Report {
	o = o.normalized()
	counts := []int{16, 32}
	if o.Quick {
		counts = []int{32}
	}
	cc := defaultClusterCfg()
	rep := &Report{
		ID:        "clusterN",
		Title:     "Cluster remediation policies under overcommit (reballoon/migrate/kill)",
		PaperNote: "beyond the paper: VSwapper at cluster scale — fleet p95/p99 unit latency per OOM-avoidance policy",
	}
	tab := &Table{
		Title:   "fleet workload latency p95/p99 [sec] by remediation policy (killed guests count as unbounded)",
		Columns: []string{"guests"},
	}
	for _, r := range clusterRemedies {
		tab.Columns = append(tab.Columns, r.String())
	}
	cells := clusterGrid(o, "clusterN", VSwapper, counts, clusterRemedies, cc)
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range clusterRemedies {
			row = append(row, renderClusterCell(cells[i*len(clusterRemedies)+j]))
		}
		tab.Add(row...)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep
}

// clusterMetricValue resolves one cluster pseudo-metric or fleet counter
// for assertion evaluation. Latency quantiles are reported in
// milliseconds.
func clusterMetricValue(c clusterOut, name string) float64 {
	switch name {
	case "unit_p95_ms":
		return float64(c.p95NS) / 1e6
	case "unit_p99_ms":
		return float64(c.p99NS) / 1e6
	case "guest_p95_ms":
		return float64(c.gp95NS) / 1e6
	case "guest_p99_ms":
		return float64(c.gp99NS) / 1e6
	case metrics.ClusterUnits:
		return float64(c.units)
	case metrics.ClusterKills:
		return float64(c.kills)
	case metrics.ClusterMigrations:
		return float64(c.migrations)
	case metrics.ClusterMigrateRefused:
		return float64(c.refused)
	}
	return 0
}

// ensure hyper is referenced even if the runlog path is compiled out in
// future refactors (the import carries Report types through runCluster).
var _ *hyper.RunReport
