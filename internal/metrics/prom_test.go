package metrics

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vswapsim/internal/sim"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.jobs.accepted": "serve_jobs_accepted",
		"hist.fault.major.ns": "hist_fault_major_ns",
		"already_legal:name":  "already_legal:name",
		"weird-chars+here":    "weird_chars_here",
		"9starts.with.digit":  "_9starts_with_digit",
		"":                    "_",
		"serve.cache.hits":    "serve_cache_hits",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLineRE matches the two legal non-comment line shapes the renderer
// emits: "name value" and "name{le=\"...\"} value".
var promLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE.+-]+$`)

// TestWritePrometheusFormat renders a populated set and validates every
// line against the text exposition grammar: TYPE comments name a legal
// metric, sample lines parse, histograms carry cumulative buckets plus
// _sum/_count, and the output is sorted (scrape-to-scrape stable).
func TestWritePrometheusFormat(t *testing.T) {
	s := NewSet()
	s.Add("serve.jobs.accepted", 5)
	s.Add("serve.jobs.rejected.queuefull", 0) // zero-valued counters still render
	s.Add("serve.cache.hits", 3)
	h := s.Histogram("serve.job.wall.ns")
	h.Observe(sim.Duration(3))
	h.Observe(sim.Duration(100))
	h.Observe(sim.Duration(100000))

	var b strings.Builder
	s.WritePrometheus(&b)
	WritePromGauge(&b, "serve.queue.depth", 2)
	out := b.String()

	if !strings.Contains(out, "# TYPE serve_jobs_accepted counter\nserve_jobs_accepted 5\n") {
		t.Errorf("missing counter sample:\n%s", out)
	}
	if !strings.Contains(out, "serve_jobs_rejected_queuefull 0") {
		t.Errorf("zero counter not rendered:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE serve_job_wall_ns histogram") {
		t.Errorf("missing histogram type line:\n%s", out)
	}
	if !strings.Contains(out, `serve_job_wall_ns_bucket{le="+Inf"} 3`) ||
		!strings.Contains(out, "serve_job_wall_ns_count 3") ||
		!strings.Contains(out, "serve_job_wall_ns_sum 100103") {
		t.Errorf("histogram totals wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n") {
		t.Errorf("missing gauge:\n%s", out)
	}

	sc := bufio.NewScanner(strings.NewReader(out))
	var prevCum int64 = -1
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("illegal comment line %q", line)
			}
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Errorf("line does not match exposition grammar: %q", line)
		}
		if strings.HasPrefix(line, "serve_job_wall_ns_bucket{") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if v < prevCum {
				t.Errorf("bucket counts not cumulative: %q after %d", line, prevCum)
			}
			prevCum = v
		}
	}

	// Deterministic: a second render of the same set is byte-identical.
	var b2 strings.Builder
	s.WritePrometheus(&b2)
	WritePromGauge(&b2, "serve.queue.depth", 2)
	if b2.String() != out {
		t.Error("repeated render differs")
	}
}
