package cluster

import "fmt"

// This file is the cluster-level invariant checker, run by the monitor on
// every sample and once more at Final. It asserts the scheduler's global
// properties — the ones the 50-seed property sweep exercises:
//
//   - guest conservation: every guest is placed exactly once per
//     incarnation (placements == 1 + migrations), is resident on at most
//     one host, and once killed never revives or makes progress;
//   - capacity accounting: per-host commit equals the sum of assigned
//     guests (counting in-flight migration reservations on both ends —
//     the documented migration window) and never exceeds the policy
//     bound;
//   - monotone fleet counters: every cluster.* counter only moves
//     forward.
//
// A violation panics with (seed, spec) replay coordinates via violate().

// Check runs one full pass over the cluster invariants and returns the
// first violation found, or nil.
func (c *Cluster) Check() error {
	// Guest conservation.
	for _, g := range c.Guests {
		if g.placements != 1+g.migrations {
			return fmt.Errorf("guest %s: placed %d times for %d migrations (want exactly 1+migrations)",
				g.Name, g.placements, g.migrations)
		}
		if g.killed {
			if g.vm != nil || g.host != nil || g.dest != nil {
				return fmt.Errorf("guest %s: killed but still resident", g.Name)
			}
			if g.unitsDone != g.unitsAtKill {
				return fmt.Errorf("guest %s: killed at %d units but has %d (revived)",
					g.Name, g.unitsAtKill, g.unitsDone)
			}
			continue
		}
		if g.done {
			if g.vm != nil || g.host != nil {
				return fmt.Errorf("guest %s: done but still resident", g.Name)
			}
			continue
		}
		if g.host == nil {
			return fmt.Errorf("guest %s: alive but placed nowhere", g.Name)
		}
		if g.vm != nil {
			// Resident on exactly its assigned host's machine, and on no
			// other host (never double-resident mid-migration).
			for _, h := range c.Hosts {
				found := false
				for _, vm := range h.M.VMs {
					if vm == g.vm {
						found = true
						break
					}
				}
				if found != (h == g.host) {
					if found {
						return fmt.Errorf("guest %s: resident on %s but assigned to %s",
							g.Name, h.Name, g.host.Name)
					}
					return fmt.Errorf("guest %s: assigned to %s but not resident there",
						g.Name, g.host.Name)
				}
			}
		}
	}

	// Capacity accounting.
	for _, h := range c.Hosts {
		sum := 0
		for _, g := range c.Guests {
			if g.killed || g.done {
				continue
			}
			if g.host == h || g.dest == h {
				sum += g.MemPages
			}
		}
		if sum != h.commit {
			return fmt.Errorf("host %s: commit %d pages but assigned guests sum to %d",
				h.Name, h.commit, sum)
		}
		if h.commit > h.bound {
			return fmt.Errorf("host %s: commit %d pages exceeds bound %d",
				h.Name, h.commit, h.bound)
		}
	}

	// Monotone fleet counters.
	for _, name := range clusterMonotone {
		v := c.Met.Get(name)
		if v < c.mono[name] {
			return fmt.Errorf("counter %s went backwards: %d after %d", name, v, c.mono[name])
		}
		c.mono[name] = v
	}
	return nil
}
