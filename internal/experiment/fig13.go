package experiment

import (
	"fmt"

	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/workload"
)

// Fig13 reproduces the DaCapo Eclipse sweep: the JVM working set exceeding
// the allocation is an LRU pathology; ballooning wins slightly while it
// survives but kills Eclipse below 448 MB.
func Fig13(o Options) *Report {
	o = o.normalized()
	schemes := []Scheme{Baseline, MapperOnly, VSwapper, BalloonBase}
	sizes := []int{512, 448, 384, 320, 256}
	if o.Quick {
		sizes = []int{512, 384, 256}
	}
	iters := 6
	if o.Quick {
		iters = 3
	}
	data := runSweep(o, "fig13", schemes, sizes, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
		return workload.Eclipse(vm, workload.EclipseConfig{
			HeapMB:      o.mb(128),
			JVMAnonMB:   o.mb(230),
			WorkspaceMB: o.mb(120),
			Iterations:  iters,
		})
	})
	rep := &Report{
		ID:        "fig13",
		Title:     "DaCapo Eclipse, 128MB Java heap, 512MB guest (Fig. 13)",
		PaperNote: "balloon 1-4% faster while alive but kills Eclipse below 448MB; baseline 0.97-1.28x of vswapper; mapper within 1.00-1.08x",
	}
	rep.Tables = append(rep.Tables, sweepTable("runtime [sec]", schemes, sizes, data,
		func(r sweepResult) string { return runtimeOrKilled(r.res) }))
	return rep
}

// Fig15 reproduces the Mapper's tracking accuracy over time during the
// Eclipse run: tracked pages should coincide with the guest page cache
// excluding dirty pages.
func Fig15(o Options) *Report {
	o = o.normalized()
	type sample struct {
		at                         sim.Time
		cache, cleanCache, tracked float64
	}
	var series []sample
	iters := 6
	if o.Quick {
		iters = 3
	}
	runSingle(runCfg{
		opts: o, scheme: VSwapper,
		guestMB: 512, actualMB: 320,
		warmup: true,
	}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
		return workload.Eclipse(vm, workload.EclipseConfig{
			HeapMB:      o.mb(128),
			JVMAnonMB:   o.mb(230),
			WorkspaceMB: o.mb(120),
			Iterations:  iters,
			Sampler: func(at sim.Time) {
				toMB := func(pages int) float64 { return float64(pages) * 4096 / (1 << 20) }
				series = append(series, sample{
					at:         at,
					cache:      toMB(vm.OS.CachePages()),
					cleanCache: toMB(vm.OS.CachePages() - vm.OS.DirtyCachePages()),
					tracked:    toMB(vm.Mapper.TrackedPages()),
				})
			},
		})
	})
	rep := &Report{
		ID:        "fig15",
		Title:     "Mapper-tracked memory vs guest page cache over time (Fig. 15)",
		PaperNote: "tracked size coincides with the guest page cache excluding dirty pages",
	}
	tab := &Table{
		Title:   "sizes [MB], sampled every 5s",
		Columns: []string{"t [s]", "guest page cache", "excluding dirty", "tracked by mapper"},
	}
	var sumAbsErr, n float64
	for i, s := range series {
		if i%5 == 0 {
			tab.Add(fmt.Sprintf("%.0f", sim.Duration(s.at).Seconds()),
				fmt.Sprintf("%.1f", s.cache),
				fmt.Sprintf("%.1f", s.cleanCache),
				fmt.Sprintf("%.1f", s.tracked))
		}
		sumAbsErr += abs(s.tracked - s.cleanCache)
		n++
	}
	rep.Tables = append(rep.Tables, tab)
	if n > 0 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("mean |tracked - clean cache| = %.1f MB over %d samples", sumAbsErr/n, int(n)))
	}
	return rep
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
