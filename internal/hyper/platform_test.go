package hyper

import (
	"testing"

	"vswapsim/internal/guest"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/trace"
)

// TestDiskWriteFaultsSwappedSource: writing out a page the host already
// reclaimed is a legitimate read, not a stale read.
func TestDiskWriteFaultsSwappedSource(t *testing.T) {
	m, _ := testVM(t, 8, false, false, func(vm *VM, th *guest.Thread) {
		pr := vm.OS.NewProcess("app")
		n := 24 * mib / 4096
		pr.Reserve(n)
		for i := 0; i < n; i++ {
			th.TouchAnon(pr, i, true)
		}
		// Force guest-side writeback of (host-swapped) anon pages by
		// ballooning nothing — instead write a file larger than memory so
		// dirty cache pages go out while their frames were host-reclaimed.
		f := vm.OS.FS.Create("out", 16*mib)
		th.WriteFile(f, 0, 16*mib)
		th.Sync(f)
	})
	if m.Met.Get(metrics.StaleSwapReads) != 0 {
		t.Fatalf("writeback counted as stale reads: %d", m.Met.Get(metrics.StaleSwapReads))
	}
	if m.Met.Get(metrics.HostSwapIns) == 0 {
		t.Fatal("expected legitimate swap-ins for DMA sources")
	}
}

// TestBalloonTakesEmulatedPage: a GFN freed by the guest while still under
// write emulation can be donated to the balloon without corrupting state.
func TestBalloonTakesEmulatedPage(t *testing.T) {
	m, vm := testVM(t, 8, true, true, func(vm *VM, th *guest.Thread) {
		// Create host-swapped pages, then write partially (starts
		// emulation), free, and balloon the freed memory.
		pr := vm.OS.NewProcess("app")
		n := 24 * mib / 4096
		pr.Reserve(n)
		for i := 0; i < n; i++ {
			th.TouchAnon(pr, i, true)
		}
		// Partial writes to host-swapped pages start emulation.
		for i := 0; i < 16; i++ {
			th.WriteAnonSpan(pr, i, 0, 512)
		}
		pr.Exit()
		vm.OS.SetBalloonTarget(n)
		for vm.OS.BalloonPages() < vm.OS.BalloonTarget() {
			th.P.Sleep(50 * 1000 * 1000) // 50ms
		}
	})
	if err := m.MM.Audit(); err != nil {
		t.Fatal(err)
	}
	_ = vm
}

// TestTraceCapturesActivity smoke-tests the end-to-end trace plumbing.
func TestTraceCapturesActivity(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 1, HostMemPages: 256 * mib / 4096})
	vm := m.NewVM(VMConfig{
		Name:       "vm0",
		MemPages:   64 * mib / 4096,
		LimitPages: 16 * mib / 4096,
		DiskBlocks: 1 << 30 / 4096,
		GuestAPF:   true,
	})
	ring := m.EnableTrace(4096)
	m.Env.Go("scenario", func(p *sim.Proc) {
		vm.Boot(p)
		th := &guest.Thread{OS: vm.OS, P: p}
		f := vm.OS.FS.Create("data", 32*mib)
		th.ReadFile(f, 0, 32*mib)
		th.ReadFile(f, 0, 32*mib)
		th.FlushCPU()
		m.Shutdown()
	})
	m.Run()
	if ring.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if len(ring.Filter(trace.Reclaim)) == 0 {
		t.Fatal("no reclaim events")
	}
	if len(ring.Filter(trace.Fault)) == 0 {
		t.Fatal("no fault events")
	}
}
