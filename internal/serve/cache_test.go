package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const testKey = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

func TestCacheRoundTrip(t *testing.T) {
	c := newTestCache(t)
	payload := []byte(`{"seed":42,"experiments":[{"id":"fig3"}]}`)
	if err := c.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	got, corrupt := c.Get(testKey)
	if corrupt {
		t.Fatal("fresh entry reported corrupt")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch:\n got %q\nwant %q", got, payload)
	}
}

func TestCacheMissOnAbsent(t *testing.T) {
	c := newTestCache(t)
	if got, corrupt := c.Get(testKey); got != nil || corrupt {
		t.Fatalf("absent key: got payload=%v corrupt=%v, want nil/false", got, corrupt)
	}
}

// corruptions enumerates ways an entry file can rot on disk. Every one
// must read as a corrupt MISS — never as a payload.
func TestCacheCorruptionDetected(t *testing.T) {
	payload := []byte(`{"report":"bytes that must never be served once damaged"}`)
	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated payload", func(t *testing.T, path string) {
			data := readEntry(t, path)
			writeEntry(t, path, data[:len(data)-7])
		}},
		{"truncated to header only", func(t *testing.T, path string) {
			data := readEntry(t, path)
			nl := bytes.IndexByte(data, '\n')
			writeEntry(t, path, data[:nl+1])
		}},
		{"flipped payload byte", func(t *testing.T, path string) {
			data := readEntry(t, path)
			data[len(data)-2] ^= 0x01
			writeEntry(t, path, data)
		}},
		{"appended garbage", func(t *testing.T, path string) {
			data := readEntry(t, path)
			writeEntry(t, path, append(data, []byte("trailing junk")...))
		}},
		{"garbage header", func(t *testing.T, path string) {
			data := readEntry(t, path)
			nl := bytes.IndexByte(data, '\n')
			writeEntry(t, path, append([]byte("not json"), data[nl:]...))
		}},
		{"missing newline", func(t *testing.T, path string) {
			writeEntry(t, path, []byte(`{"version":1}`))
		}},
		{"empty file", func(t *testing.T, path string) {
			writeEntry(t, path, nil)
		}},
		{"format version bump", func(t *testing.T, path string) {
			rewriteHeader(t, path, func(h *entryHeader) { h.Version = cacheVersion + 1 })
		}},
		{"checksum mismatch in header", func(t *testing.T, path string) {
			rewriteHeader(t, path, func(h *entryHeader) { h.Sum = strings.Repeat("0", 64) })
		}},
		{"size mismatch in header", func(t *testing.T, path string) {
			rewriteHeader(t, path, func(h *entryHeader) { h.Size++ })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCache(t)
			if err := c.Put(testKey, payload); err != nil {
				t.Fatal(err)
			}
			path := c.path(testKey)
			tc.damage(t, path)
			got, corrupt := c.Get(path2key(path))
			if got != nil {
				t.Fatalf("corrupted entry served a payload: %q", got)
			}
			if !corrupt {
				t.Fatal("corruption not reported")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry file not removed")
			}
			// Recompute-and-restore must work cleanly after the purge.
			if err := c.Put(testKey, payload); err != nil {
				t.Fatal(err)
			}
			if got, corrupt := c.Get(testKey); corrupt || !bytes.Equal(got, payload) {
				t.Fatal("cache did not recover after corruption purge")
			}
		})
	}
}

// TestCacheRejectsRenamedEntry: an entry copied or renamed to a different
// key's file name fails the header's key check — content addressing is
// verified, not assumed from the file name.
func TestCacheRejectsRenamedEntry(t *testing.T) {
	c := newTestCache(t)
	if err := c.Put(testKey, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	otherKey := strings.Repeat("b", 64)
	if err := os.Rename(c.path(testKey), c.path(otherKey)); err != nil {
		t.Fatal(err)
	}
	got, corrupt := c.Get(otherKey)
	if got != nil || !corrupt {
		t.Fatalf("renamed entry served under wrong key: payload=%v corrupt=%v", got, corrupt)
	}
}

// TestCachePutAtomic: no partially-written entry is ever visible under a
// live name — the only non-temp file after Put is the complete entry.
func TestCachePutAtomic(t *testing.T) {
	c := newTestCache(t)
	if err := c.Put(testKey, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("stray temp file %s after successful Put", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly 1 entry file, found %d", len(entries))
	}
}

// TestCacheOverwriteIdempotent: re-putting the same key (identical bytes,
// by key construction) atomically replaces the entry.
func TestCacheOverwriteIdempotent(t *testing.T) {
	c := newTestCache(t)
	payload := []byte("same bytes")
	for i := 0; i < 3; i++ {
		if err := c.Put(testKey, payload); err != nil {
			t.Fatal(err)
		}
	}
	got, corrupt := c.Get(testKey)
	if corrupt || !bytes.Equal(got, payload) {
		t.Fatal("overwritten entry unreadable")
	}
}

func readEntry(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeEntry(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// rewriteHeader re-signs an entry with a doctored header (keeping the sum
// consistent with the payload unless the mutation targets the sum itself,
// so the doctored field is what trips verification).
func rewriteHeader(t *testing.T, path string, mutate func(*entryHeader)) {
	t.Helper()
	data := readEntry(t, path)
	nl := bytes.IndexByte(data, '\n')
	var h entryHeader
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		t.Fatal(err)
	}
	mutate(&h)
	head, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	writeEntry(t, path, append(append(head, '\n'), data[nl+1:]...))
}

// path2key recovers the key from an entry path (test convenience).
func path2key(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".entry")
}
