package hostmm

import (
	"fmt"

	"vswapsim/internal/disk"
	"vswapsim/internal/fault"
	"vswapsim/internal/mem"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
	"vswapsim/internal/trace"
)

// Ctx says on whose behalf a fault is being handled, which the paper's
// Fig. 9 distinguishes: faults while host (QEMU) code runs versus EPT
// violations while the guest runs.
type Ctx uint8

const (
	// HostCtx: QEMU/host kernel code touched the page (virtio emulation,
	// QEMU text, reclaim).
	HostCtx Ctx = iota
	// GuestCtx: the guest touched the page (EPT violation).
	GuestCtx
)

// Config holds the host MM tunables. Zero values are replaced by defaults
// mirroring Linux 3.x as used in the paper's testbed.
type Config struct {
	// SwapClusterPages is the swap readahead cluster (Linux page-cluster=3
	// means 8 pages).
	SwapClusterPages int
	// FileRAMinPages / FileRAMaxPages bound the sequential file readahead
	// window.
	FileRAMinPages int
	FileRAMaxPages int
	// ReclaimBatch is how many pages one direct-reclaim pass targets.
	ReclaimBatch int
	// MinFileFloor: below this many inactive file pages, reclaim turns to
	// the anonymous lists (mirrors Linux preferring file pages while any
	// meaningful number remain).
	MinFileFloor int
	// PageScanCost is CPU per page considered by reclaim.
	PageScanCost sim.Duration
	// MajorFaultCost / MinorFaultCost are the CPU costs of fault handling
	// (exits, walks), excluding disk time.
	MajorFaultCost sim.Duration
	MinorFaultCost sim.Duration
	// COWCost is the CPU cost of a copy-on-write break (exit + 4 KiB copy).
	COWCost sim.Duration
	// WritebackCongestion bounds how much queued swap writeback a
	// direct-reclaimer may leave behind: if the device backlog exceeds
	// this, reclaim waits (Linux's congestion_wait).
	WritebackCongestion sim.Duration
	// EPTDirtyBits simulates post-Haswell hardware that exposes guest
	// dirty bits, letting the host skip swap writes for clean pages
	// (paper §5.3 predicts this; we offer it as an ablation).
	EPTDirtyBits bool
}

// DefaultConfig returns the Linux-3.x-like defaults.
func DefaultConfig() Config {
	return Config{
		SwapClusterPages:    8,
		FileRAMinPages:      4,
		FileRAMaxPages:      32,
		ReclaimBatch:        32,
		MinFileFloor:        64,
		PageScanCost:        80 * sim.Nanosecond,
		MajorFaultCost:      5 * sim.Microsecond,
		MinorFaultCost:      1200 * sim.Nanosecond,
		COWCost:             3 * sim.Microsecond,
		WritebackCongestion: 100 * sim.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.SwapClusterPages == 0 {
		c.SwapClusterPages = d.SwapClusterPages
	}
	if c.FileRAMinPages == 0 {
		c.FileRAMinPages = d.FileRAMinPages
	}
	if c.FileRAMaxPages == 0 {
		c.FileRAMaxPages = d.FileRAMaxPages
	}
	if c.ReclaimBatch == 0 {
		c.ReclaimBatch = d.ReclaimBatch
	}
	if c.MinFileFloor == 0 {
		c.MinFileFloor = d.MinFileFloor
	}
	if c.PageScanCost == 0 {
		c.PageScanCost = d.PageScanCost
	}
	if c.MajorFaultCost == 0 {
		c.MajorFaultCost = d.MajorFaultCost
	}
	if c.MinorFaultCost == 0 {
		c.MinorFaultCost = d.MinorFaultCost
	}
	if c.COWCost == 0 {
		c.COWCost = d.COWCost
	}
	if c.WritebackCongestion == 0 {
		c.WritebackCongestion = d.WritebackCongestion
	}
	return c
}

// Manager is the host kernel's memory manager.
type Manager struct {
	Env  *sim.Env
	Met  *metrics.Set
	Dev  *disk.Device
	Pool *mem.FramePool
	Swap *SwapArea
	Cfg  Config

	// Back is the swap destination: all swap reads and writebacks go
	// through it. NewManager installs a transparent HDD store over Dev;
	// the hypervisor swaps in a tiered backend via SetBackend. File-backed
	// I/O (FileFaultIn, guest images) stays on the raw device.
	Back *swapback.Store

	// Trace, when non-nil, records fault/reclaim events for debugging.
	Trace *trace.Ring

	// Inj, when non-nil, injects transient swap-in failures and swap-slot
	// allocation refusals (set by the hypervisor; nil = injection off).
	Inj *fault.Injector

	cgroups []*Cgroup

	// pageSlab amortizes Page allocation: guests have hundreds of
	// thousands of lazily-created pages and individual allocations cost
	// real GC time at fig14 scale.
	pageSlab []Page
	// signalPool recycles fault-serialization signals.
	signalPool []*sim.Signal

	// c holds pre-resolved counter and histogram handles for the fault and
	// reclaim fast paths: one map lookup each at construction instead of a
	// string hash per fault.
	c hotMetrics

	// Scratch buffers reused across reclaim passes and swap-in faults;
	// buffers held across a blocking point come from swapInScratch so
	// interleaved faults never share one.
	swapWritesScratch []int64
	swapInScratch     []*swapInBufs
}

// hotMetrics caches handles for every metric the per-fault and per-reclaim
// paths touch.
type hotMetrics struct {
	faultsInGuest, majorInGuest, faultsInHost   *metrics.Counter
	majorFaults, minorFaults, timeHostFault     *metrics.Counter
	imageReadSectors                            *metrics.Counter
	hostSwapIns, hostSwapOuts                   *metrics.Counter
	hostSwapPrefetched, hostFilePrefetched      *metrics.Counter
	hostPrefetchHits, hostCOWBreaks             *metrics.Counter
	pagesScanned, pagesReclaimed, fileDiscards  *metrics.Counter
	silentSwapWrites, timeReclaimScan           *metrics.Counter
	balloonInflate, balloonDeflate              *metrics.Counter
	faultSwapInRetries, faultSwapInPoisoned     *metrics.Counter
	histFaultMinor, histFaultMajor, histBackoff *metrics.Histogram
}

func newHotMetrics(met *metrics.Set) hotMetrics {
	return hotMetrics{
		faultsInGuest:       met.Counter(metrics.HostFaultsInGuest),
		majorInGuest:        met.Counter(metrics.HostMajorInGuest),
		faultsInHost:        met.Counter(metrics.HostFaultsInHost),
		majorFaults:         met.Counter(metrics.HostMajorFaults),
		minorFaults:         met.Counter(metrics.HostMinorFaults),
		timeHostFault:       met.Counter(metrics.TimeHostFault),
		imageReadSectors:    met.Counter(metrics.ImageReadSectors),
		hostSwapIns:         met.Counter(metrics.HostSwapIns),
		hostSwapOuts:        met.Counter(metrics.HostSwapOuts),
		hostSwapPrefetched:  met.Counter(metrics.HostSwapPrefetched),
		hostFilePrefetched:  met.Counter(metrics.HostFilePrefetched),
		hostPrefetchHits:    met.Counter(metrics.HostPrefetchHits),
		hostCOWBreaks:       met.Counter(metrics.HostCOWBreaks),
		pagesScanned:        met.Counter(metrics.HostPagesScanned),
		pagesReclaimed:      met.Counter(metrics.HostPagesReclaimed),
		fileDiscards:        met.Counter(metrics.HostFileDiscards),
		silentSwapWrites:    met.Counter(metrics.SilentSwapWrites),
		timeReclaimScan:     met.Counter(metrics.TimeReclaimScan),
		balloonInflate:      met.Counter(metrics.BalloonInflatePages),
		balloonDeflate:      met.Counter(metrics.BalloonDeflatePages),
		faultSwapInRetries:  met.Counter(metrics.FaultSwapInRetries),
		faultSwapInPoisoned: met.Counter(metrics.FaultSwapInPoisoned),
		histFaultMinor:      met.Histogram(metrics.HistFaultMinor),
		histFaultMajor:      met.Histogram(metrics.HistFaultMajor),
		histBackoff:         met.Histogram(metrics.HistFaultBackoff),
	}
}

// swapInBufs is the per-fault scratch a swap-in holds across its blocking
// points (disk reads, reclaim): recycled through Manager.swapInScratch.
type swapInBufs struct {
	ioSlots []int64
	pinned  []*Page
}

func (m *Manager) getSwapInBufs() *swapInBufs {
	if n := len(m.swapInScratch); n > 0 {
		b := m.swapInScratch[n-1]
		m.swapInScratch = m.swapInScratch[:n-1]
		return b
	}
	return &swapInBufs{}
}

func (m *Manager) putSwapInBufs(b *swapInBufs) {
	b.ioSlots = b.ioSlots[:0]
	for i := range b.pinned {
		b.pinned[i] = nil
	}
	b.pinned = b.pinned[:0]
	m.swapInScratch = append(m.swapInScratch, b)
}

// NewManager assembles a host MM over the given device, frame pool and
// swap area.
func NewManager(env *sim.Env, met *metrics.Set, dev *disk.Device, pool *mem.FramePool, swap *SwapArea, cfg Config) *Manager {
	m := &Manager{
		Env:  env,
		Met:  met,
		Dev:  dev,
		Pool: pool,
		Swap: swap,
		Cfg:  cfg.withDefaults(),
		c:    newHotMetrics(met),
	}
	// Default backend: the raw device, request-for-request identical to
	// the pre-backend swap path.
	m.SetBackend(swapback.New(swapback.Config{
		Kind: swapback.HDD,
		Env:  env,
		Met:  met,
		Dev:  dev,
		Phys: swap.Phys,
	}))
	return m
}

// SetBackend routes all subsequent swap I/O through st: it installs the
// slot-identity resolver (so tiered backends can key per-page properties
// by page, surviving slot reuse) and hooks slot frees so fast-tier copies
// die with their slot.
func (m *Manager) SetBackend(st *swapback.Store) {
	m.Back = st
	st.SetOwnerKey(func(slot int64) uint64 {
		if pg := m.Swap.Owner(slot); pg != nil {
			return pg.key()
		}
		return uint64(slot)
	})
	m.Swap.onFree = st.Free
}

// Cgroup is a memory control group bounding one QEMU process (one guest).
// The experiments constrain guest memory with cgroups exactly as the paper
// recommends for KVM.
type Cgroup struct {
	Name  string
	Limit int // max resident pages; 0 = bounded only by the global pool

	mgr *Manager
	// idx is the cgroup's registration order, combined with page IDs into
	// a stable per-page identity for the swap backend.
	idx      int
	resident int
	pinned   int

	activeAnon   pageList
	inactiveAnon pageList
	activeFile   pageList
	inactiveFile pageList
	// lazy holds COW source pages VSwapper dropped from the host page
	// cache; reclaim frees them on sight but still "scans" them, which
	// reproduces the paper's observation that VSwapper can double reclaim
	// traversal lengths under low pressure (§5.3, Fig. 11c).
	lazy pageList
}

// NewCgroup registers a new control group.
func (m *Manager) NewCgroup(name string, limitPages int) *Cgroup {
	cg := &Cgroup{Name: name, Limit: limitPages, mgr: m, idx: len(m.cgroups)}
	cg.activeAnon.name = name + "/active-anon"
	cg.inactiveAnon.name = name + "/inactive-anon"
	cg.activeFile.name = name + "/active-file"
	cg.inactiveFile.name = name + "/inactive-file"
	cg.lazy.name = name + "/lazy"
	m.cgroups = append(m.cgroups, cg)
	return cg
}

// Resident reports the pages currently charged to the cgroup.
func (cg *Cgroup) Resident() int { return cg.resident }

// Pinned reports the pages currently excluded from reclaim (mid-fault or
// DMA-held); a cgroup cannot be torn down while any remain.
func (cg *Cgroup) Pinned() int { return cg.pinned }

// DrainLazy discards every lazily-freed COW source still queued on the
// cgroup (they hold no frames), leaving the lazy list empty. Used when a
// guest is being torn down: the audit requires the cgroup's lists to end
// empty, and lazy entries are reachable only through this list.
func (m *Manager) DrainLazy(cg *Cgroup) {
	for {
		pg := cg.lazy.back()
		if pg == nil {
			return
		}
		cg.lazy.remove(pg)
		pg.State = Untouched
	}
}

// SetLimit adjusts the cgroup limit; the next charge enforces it.
func (cg *Cgroup) SetLimit(pages int) { cg.Limit = pages }

// AnonPages and FilePages report LRU sizes (for tests and introspection).
func (cg *Cgroup) AnonPages() int { return cg.activeAnon.size + cg.inactiveAnon.size }
func (cg *Cgroup) FilePages() int { return cg.activeFile.size + cg.inactiveFile.size }

// pin/unpin exclude a page from reclaim during a fault and keep count so
// that prefetch never pins away the last evictable page of a cgroup.
func (m *Manager) pin(pg *Page) {
	if !pg.Pinned {
		pg.Pinned = true
		pg.Owner.pinned++
	}
}

func (m *Manager) unpin(pg *Page) {
	if pg.Pinned {
		pg.Pinned = false
		pg.Owner.pinned--
	}
}

// Pin and Unpin expose the page lock to the hypervisor layer (e.g. to hold
// DMA targets resident across a device transfer).
func (m *Manager) Pin(pg *Page)   { m.pin(pg) }
func (m *Manager) Unpin(pg *Page) { m.unpin(pg) }

// canPrefetchInto reports whether charging one more pinned page to cg is
// safe: either there is slack, or at least one evictable page remains.
func (m *Manager) canPrefetchInto(cg *Cgroup) bool {
	if cg.Limit > 0 && cg.pinned+2 > cg.Limit {
		return false
	}
	return true
}

// Touch marks a page accessed. A second access while on an inactive list
// promotes the page to the matching active list (Linux-style two-touch
// activation).
func (m *Manager) Touch(pg *Page) {
	if !pg.Referenced {
		pg.Referenced = true
		return
	}
	cg := pg.Owner
	switch pg.list {
	case &cg.inactiveAnon:
		cg.inactiveAnon.remove(pg)
		cg.activeAnon.pushFront(pg)
	case &cg.inactiveFile:
		cg.inactiveFile.remove(pg)
		cg.activeFile.pushFront(pg)
	}
}

// chargeFrames makes room for and charges n frames to cg, running direct
// reclaim on behalf of p as needed.
func (m *Manager) chargeFrames(p *sim.Proc, cg *Cgroup, n int) {
	for attempt := 0; ; attempt++ {
		need := 0
		if cg.Limit > 0 && cg.resident+n > cg.Limit {
			need = cg.resident + n - cg.Limit
		}
		if short := n - m.Pool.Free(); short > need {
			need = short
		}
		if need == 0 {
			break
		}
		if attempt > 1_000_000 {
			panic(fmt.Sprintf("hostmm: reclaim cannot satisfy %d pages for %s (resident=%d pinned=%d anonA=%d anonI=%d fileA=%d fileI=%d lazy=%d poolFree=%d)",
				n, cg.Name, cg.resident, cg.pinned, cg.activeAnon.size, cg.inactiveAnon.size, cg.activeFile.size, cg.inactiveFile.size, cg.lazy.size, m.Pool.Free()))
		}
		victim := cg
		if !(cg.Limit > 0 && cg.resident+n > cg.Limit) {
			victim = m.largestCgroup()
		}
		// Like Linux's SWAP_CLUSTER_MAX, reclaim a full batch even for a
		// single-page shortage: it amortizes scanning and keeps swap
		// writeback in large contiguous requests.
		if need < m.Cfg.ReclaimBatch {
			need = m.Cfg.ReclaimBatch
		}
		m.reclaim(p, victim, need)
	}
	m.Pool.Grab(n)
	cg.resident += n
}

func (m *Manager) unchargeFrame(cg *Cgroup) {
	m.Pool.Release(1)
	cg.resident--
}

func (m *Manager) largestCgroup() *Cgroup {
	var best *Cgroup
	for _, cg := range m.cgroups {
		if best == nil || cg.resident > best.resident {
			best = cg
		}
	}
	return best
}

// reclaim frees at least `target` frames from cg (best effort), charging
// scan CPU time to p and queueing swap writes asynchronously, as Linux
// writeback does.
func (m *Manager) reclaim(p *sim.Proc, cg *Cgroup, target int) int {
	freed := 0
	scanned := 0
	// Slots to write, coalesced at the end. Reclaim never blocks while
	// appending (all sleeps happen after submission), so one manager-level
	// scratch buffer is safe to reuse across every pass.
	swapWrites := m.swapWritesScratch[:0]

	// Drop lazily-freed COW sources first: free, but they cost scan work.
	for freed < target {
		pg := cg.lazy.back()
		if pg == nil {
			break
		}
		scanned++
		cg.lazy.remove(pg)
		pg.State = Untouched
		freed++ // no frame held; still counts as progress for the scan
	}

	rounds := 0
	for freed < target {
		rounds++
		if rounds > 4 {
			break // let the caller loop; avoids unbounded passes
		}
		// Rebalance: keep inactive lists at least as long as active ones.
		for cg.inactiveFile.size < cg.activeFile.size {
			pg := cg.activeFile.back()
			cg.activeFile.remove(pg)
			pg.Referenced = false
			cg.inactiveFile.pushFront(pg)
			scanned++
		}
		for cg.inactiveAnon.size < cg.activeAnon.size {
			pg := cg.activeAnon.back()
			cg.activeAnon.remove(pg)
			pg.Referenced = false
			cg.inactiveAnon.pushFront(pg)
			scanned++
		}

		// Linux prefers file pages while a meaningful number remain, but
		// desperation falls back to whichever list can make progress
		// (e.g. when every anon page is pinned by in-flight faults).
		candidates := [2]*pageList{&cg.inactiveFile, &cg.inactiveAnon}
		if cg.inactiveFile.size <= m.Cfg.MinFileFloor {
			candidates[0], candidates[1] = candidates[1], candidates[0]
		}
		if candidates[0].size == 0 && candidates[1].size == 0 {
			break // nothing evictable
		}

		freedBefore := freed
		for _, list := range candidates {
			if freed >= target {
				break
			}
			n, sawEvictable := m.scanList(list, cg, target-freed, &scanned, &swapWrites)
			freed += n
			if sawEvictable {
				// The preferred list can make progress (now or after its
				// referenced pages age); don't raid the other list.
				break
			}
		}

		// If a whole batch freed nothing (e.g. the inactive list is all
		// pinned fault pages), force-deactivate from the active lists so
		// the next round can make progress.
		if freed == freedBefore {
			for _, pair := range [][2]*pageList{
				{&cg.activeAnon, &cg.inactiveAnon},
				{&cg.activeFile, &cg.inactiveFile},
			} {
				active, inactive := pair[0], pair[1]
				for i := 0; i < m.Cfg.ReclaimBatch && active.size > 0; i++ {
					pg := active.back()
					active.remove(pg)
					pg.Referenced = false
					inactive.pushFront(pg)
					scanned++
				}
			}
		}
	}

	m.c.pagesScanned.Add(int64(scanned))
	if m.Trace.Recording(trace.Reclaim) {
		m.Trace.Add(m.Env.Now(), trace.Reclaim, "cg=%s freed=%d scanned=%d swapwrites=%d",
			cg.Name, freed, scanned, len(swapWrites))
	}
	if len(swapWrites) > 0 {
		m.submitSwapWrites(swapWrites)
	}
	m.swapWritesScratch = swapWrites[:0]
	if p != nil && scanned > 0 {
		scanTime := sim.Duration(scanned) * m.Cfg.PageScanCost
		m.c.timeReclaimScan.Add(int64(scanTime))
		p.Sleep(scanTime)
	}
	// Writeback congestion: don't let a reclaimer run ahead of the disk
	// indefinitely; wait until the queued backlog is bounded.
	if p != nil && len(swapWrites) > 0 {
		if backlog := m.Back.Backlog(); backlog > m.Cfg.WritebackCongestion {
			p.Sleep(backlog - m.Cfg.WritebackCongestion)
		}
	}
	return freed
}

// scanList evicts up to one batch from an inactive list, rotating pinned
// and referenced pages. It returns the number of frames freed and whether
// the list held any unpinned page (i.e. it can eventually make progress).
func (m *Manager) scanList(list *pageList, cg *Cgroup, target int, scanned *int, swapWrites *[]int64) (int, bool) {
	freed := 0
	sawEvictable := false
	batch := m.Cfg.ReclaimBatch
	for i := 0; i < batch && freed < target && list.size > 0; i++ {
		pg := list.back()
		(*scanned)++
		if pg.Pinned {
			list.rotate(pg)
			continue
		}
		sawEvictable = true
		if pg.Referenced {
			pg.Referenced = false
			list.rotate(pg)
			continue
		}
		switch pg.State {
		case ResidentFile:
			list.remove(pg)
			pg.State = FileNonResident
			pg.EPT = false
			m.unchargeFrame(cg)
			m.c.fileDiscards.Inc()
			m.c.pagesReclaimed.Inc()
			freed++
		case ResidentAnon:
			if !pg.Dirty && !m.swapCacheValid(pg) {
				// The swap-cache association was lost (e.g. the slot was
				// poisoned after repeated transient read failures): this
				// frame is the only copy of the content, so eviction must
				// write it out rather than trust a stale or missing slot.
				// Without this guard the page would go SwappedOut with no
				// backing read ever reaching it — silent content loss.
				pg.Dirty = true
			}
			if pg.Dirty {
				slot := pg.SwapSlot
				if slot < 0 {
					if m.Inj.SlotRefused() {
						list.rotate(pg) // injected allocator refusal
						continue
					}
					slot = m.Swap.Alloc(pg)
					if slot < 0 {
						list.rotate(pg) // swap full; skip
						continue
					}
					pg.SwapSlot = slot
				}
				*swapWrites = append(*swapWrites, slot)
				m.c.hostSwapOuts.Inc()
				if pg.TruthClean {
					m.c.silentSwapWrites.Inc()
				}
			}
			list.remove(pg)
			pg.State = SwappedOut
			pg.EPT = false
			pg.Dirty = false
			m.unchargeFrame(cg)
			m.c.pagesReclaimed.Inc()
			freed++
		default:
			panic(fmt.Sprintf("hostmm: %s page on LRU", pg.State))
		}
	}
	return freed, sawEvictable
}

// submitSwapWrites queues the dirty victims' slots to disk, coalescing
// contiguous slots into single requests (Linux swap writeback clusters the
// same way). Writes are asynchronous: the device queue delays later reads,
// modelling writeback pressure.
func (m *Manager) submitSwapWrites(slots []int64) {
	// slots arrive in allocation order, which is ascending for fresh
	// allocations but may interleave reused slots; sort-free coalescing of
	// ascending runs is enough.
	start := 0
	for i := 1; i <= len(slots); i++ {
		if i < len(slots) && slots[i] == slots[i-1]+1 {
			continue
		}
		m.Back.SubmitWrite(slots[start:i])
		start = i
	}
}

// swapCacheValid reports whether a clean resident-anon page still has a
// valid swap-cache backing: an allocated slot recording it as owner.
// Every code path that creates a clean ResidentAnon page leaves one in
// place; losing it (slot poisoning) demotes the page to plain dirty swap.
func (m *Manager) swapCacheValid(pg *Page) bool {
	return pg.SwapSlot >= 0 && m.Swap.Owner(pg.SwapSlot) == pg
}

// ReclaimForTest exposes reclaim for white-box tests.
func (m *Manager) ReclaimForTest(p *sim.Proc, cg *Cgroup, target int) int {
	return m.reclaim(p, cg, target)
}
