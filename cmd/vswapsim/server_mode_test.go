package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vswapsim/internal/serve"
)

// TestCLIValidationConsistency pins satellite-level flag hygiene: every
// entry point (-run form and the run subcommand) rejects -parallel <= 0
// and -auditevery < 0 the same way — exit 2 plus the one-line usage hint.
func TestCLIValidationConsistency(t *testing.T) {
	scenarioPath := filepath.Join("..", "..", "scenarios", "fig3.yaml")
	bad := [][]string{
		{"-parallel", "0"},
		{"-parallel", "-4"},
		{"-auditevery", "-1"},
	}
	for _, flags := range bad {
		for _, entry := range [][]string{
			append([]string{"-run", "fig3"}, flags...),
			append([]string{"run", scenarioPath}, flags...),
		} {
			var stdout, stderr bytes.Buffer
			if code := run(entry, &stdout, &stderr); code != exitUsage {
				t.Errorf("run(%v) = %d, want %d", entry, code, exitUsage)
			}
			msg := strings.ToLower(stderr.String())
			if !strings.Contains(msg, "usage") {
				t.Errorf("run(%v) stderr lacks the usage hint: %q", entry, stderr.String())
			}
			if !strings.Contains(msg, "invalid") {
				t.Errorf("run(%v) stderr lacks the offending flag: %q", entry, stderr.String())
			}
		}
	}
}

// startServeBackend runs an in-process daemon core for -server tests.
func startServeBackend(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{CacheDir: t.TempDir(), Fingerprint: "test:climode"})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return ts.URL
}

// TestServerModeRegistry: `vswapsim -run ... -server URL` round-trips a
// registry experiment through the daemon; the second (cached) run prints
// byte-identical -json output.
func TestServerModeRegistry(t *testing.T) {
	url := startServeBackend(t)
	args := []string{"-run", "tab1", "-quick", "-server", url}

	var text, stderr bytes.Buffer
	if code := run(args, &text, &stderr); code != exitOK {
		t.Fatalf("server-mode run = %d, stderr %s", code, stderr.String())
	}
	out := text.String()
	if !strings.Contains(out, "(served by "+url) || !strings.Contains(out, "cache miss") {
		t.Fatalf("cold run output lacks the serve trailer:\n%s", out)
	}
	if !strings.Contains(out, "Lines of code of VSwapper") {
		t.Fatalf("server-mode text output lacks the rendered table:\n%s", out)
	}

	jsonArgs := append(args, "-json")
	var cold, warm bytes.Buffer
	if code := run(jsonArgs, &cold, &stderr); code != exitOK {
		t.Fatalf("cold -json run = %d", code)
	}
	if code := run(jsonArgs, &warm, &stderr); code != exitOK {
		t.Fatalf("warm -json run = %d", code)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatal("warm -server -json output differs from cold")
	}
	var hit bytes.Buffer
	if code := run(args, &hit, &stderr); code != exitOK {
		t.Fatalf("warm text run = %d", code)
	}
	if !strings.Contains(hit.String(), "cache hit") {
		t.Fatalf("warm run not served from cache:\n%s", hit.String())
	}
}

// TestServerModeScenario: the run subcommand ships scenario YAML to the
// daemon inline and renders the returned document.
func TestServerModeScenario(t *testing.T) {
	url := startServeBackend(t)
	path := filepath.Join(t.TempDir(), "tiny.yaml")
	yaml := `scenario: tinysrv
title: "tiny server-mode scenario"
mode: single
fleet:
  memory_mb: 128
  actual_mb: 64
schemes:
  - name: baseline
workload:
  kind: seqread
  file_mb: 8
table:
  title: "runtime [sec]"
`
	if err := os.WriteFile(path, []byte(yaml), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"run", path, "-server", url, "-json"}
	var cold, warm, stderr bytes.Buffer
	if code := run(args, &cold, &stderr); code != exitOK {
		t.Fatalf("cold scenario server run = %d, stderr %s", code, stderr.String())
	}
	if code := run(args, &warm, &stderr); code != exitOK {
		t.Fatalf("warm scenario server run = %d", code)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatal("warm scenario -server output differs from cold")
	}
	if !strings.Contains(cold.String(), `"tinysrv"`) {
		t.Fatalf("document lacks the scenario id:\n%s", cold.String())
	}
}

// TestServerModeRejectsDiagdir: diag bundles are written daemon-side;
// combining -server with -diagdir is a usage error, not a silent no-op.
func TestServerModeRejectsDiagdir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-run", "tab1", "-server", "http://127.0.0.1:1", "-diagdir", t.TempDir()}
	if code := run(args, &stdout, &stderr); code != exitUsage {
		t.Fatalf("run = %d, want %d", code, exitUsage)
	}
	if !strings.Contains(stderr.String(), "-diagdir") {
		t.Fatalf("stderr does not explain the conflict: %s", stderr.String())
	}
}
