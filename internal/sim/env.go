package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

// event is a single scheduled occurrence: either a callback (fn) or the
// wakeup of a blocked process (proc). Splitting the two cases lets the
// scheduler dispatch process wakeups — by far the common case — without
// allocating a closure per Sleep/Broadcast/Release.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   func()
	proc *Proc
}

// eventLess orders the heap by (time, insertion sequence).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Env is a discrete-event simulation environment. It owns the virtual
// clock, the pending-event queue and the set of live processes. An Env is
// not safe for concurrent use: exactly one process (or event callback) runs
// at a time, which is what makes runs deterministic.
type Env struct {
	now    Time
	events []*event // binary min-heap ordered by eventLess
	free   []*event // recycled event objects
	seq    uint64
	rng    *RNG

	liveProcs int
	blocked   int // procs waiting on a Signal (not a timer)
	procPanic interface{}

	// running/deadline mirror the active RunUntil call so that Sleep can
	// advance the clock inline (see Proc.Sleep) without overshooting the
	// caller's deadline.
	running  bool
	deadline Time

	// afterEvent, when set, runs after every completed event callback. The
	// invariant-audit harness hooks here in test mode; it must not mutate
	// simulation state.
	afterEvent func()

	// budget is the progress watchdog installed by SetBudget; noteEvent
	// enforces it on every dequeued event (see watchdog.go).
	budget       Budget
	eventCount   uint64
	stall        uint64
	wallDeadline time.Time
}

// SetAfterEvent installs (or, with nil, removes) the post-event hook.
func (e *Env) SetAfterEvent(fn func()) { e.afterEvent = fn }

// NewEnv returns an environment with the clock at zero and the PRNG seeded
// with seed. The same seed always produces the same run.
func NewEnv(seed uint64) *Env {
	return &Env{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic PRNG.
func (e *Env) Rand() *RNG { return e.rng }

// newEvent takes an event object from the pool (or allocates one) and
// stamps it with the next sequence number.
func (e *Env) newEvent(at Time, fn func(), p *Proc) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.at, ev.seq, ev.fn, ev.proc = at, e.seq, fn, p
	return ev
}

// recycle returns a dequeued event to the pool. Callers must have copied
// out any field they still need.
func (e *Env) recycle(ev *event) {
	ev.fn, ev.proc = nil, nil
	e.free = append(e.free, ev)
}

// push inserts ev into the heap.
func (e *Env) push(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (e *Env) pop() *event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			least = r
		}
		if !eventLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// Schedule arranges for fn to run after delay d. Callbacks run on the
// scheduler itself, so they must not block; use Go for blocking logic.
func (e *Env) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.push(e.newEvent(e.now.Add(d), fn, nil))
}

// scheduleProc arranges for p to be dispatched after delay d, without the
// closure a Schedule would cost.
func (e *Env) scheduleProc(d Duration, p *Proc) {
	e.push(e.newEvent(e.now.Add(d), nil, p))
}

// ScheduleAt arranges for fn to run at absolute time t (not before now).
func (e *Env) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.Schedule(t.Sub(e.now), fn)
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If processes remain blocked on signals that can never fire,
// Run panics, as that is always a bug in the model.
func (e *Env) Run() Time {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil drives the simulation until the event queue is empty or the next
// event would fire after the deadline. Events exactly at the deadline run.
func (e *Env) RunUntil(deadline Time) Time {
	e.running = true
	e.deadline = deadline
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		e.pop()
		if next.at < e.now {
			panic("sim: time went backwards")
		}
		advanced := next.at > e.now
		e.now = next.at
		fn, p := next.fn, next.proc
		e.recycle(next)
		e.noteEvent(advanced)
		if p != nil {
			p.dispatch()
		} else {
			fn()
		}
		if e.afterEvent != nil {
			e.afterEvent()
		}
	}
	if e.liveProcs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at %v", e.liveProcs, e.now))
	}
	return e.now
}

// Idle reports whether no events are pending.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// Proc is a simulated process: a goroutine that runs exclusively between
// blocking points. All blocking methods must be called from the process's
// own goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{} // scheduler -> proc
	yield  chan struct{} // proc -> scheduler
	dead   bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go starts fn as a new simulated process at the current virtual time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.liveProcs++
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			// A panic in a process must surface on the scheduler instead
			// of deadlocking the handshake. Watchdog breaches stay typed
			// (*BudgetError) so the experiment layer classifies them the
			// same whether they fired on the scheduler or — via the inline
			// Sleep fast path — on a process goroutine.
			if r := recover(); r != nil {
				if be, ok := r.(*BudgetError); ok {
					e.procPanic = be
				} else {
					e.procPanic = fmt.Sprintf("%v\n\nprocess goroutine stack:\n%s", r, debug.Stack())
				}
			}
			p.dead = true
			e.liveProcs--
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.scheduleProc(0, p)
	return p
}

// dispatch hands the CPU to the process and waits until it blocks again or
// terminates. Called only from the scheduler.
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.yield
	if p.env.procPanic != nil {
		r := p.env.procPanic
		p.env.procPanic = nil
		panic(r)
	}
}

// block suspends the calling process until dispatch is invoked again.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for virtual duration d.
//
// Fast path: when the wakeup would be the very next event processed — no
// pending event fires at or before it — handing control back to the
// scheduler is pure overhead (two channel handshakes and a heap cycle), so
// the clock advances inline and the process keeps running. The observable
// sequence is bit-identical to the queued path: the skipped wakeup is still
// counted and budget-checked by noteEvent, the current event's afterEvent
// hook still runs first, and no other event could have run in between
// (nothing is queued in the window, and nothing can be scheduled into it
// because no other code runs).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.env
	wake := e.now.Add(d)
	if e.running && wake <= e.deadline &&
		(len(e.events) == 0 || wake < e.events[0].at) {
		if e.afterEvent != nil {
			e.afterEvent()
		}
		advanced := wake > e.now
		e.now = wake
		e.noteEvent(advanced)
		return
	}
	e.scheduleProc(d, p)
	p.block()
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.Sleep(t.Sub(p.env.now))
}

// Signal is a broadcast condition in virtual time. Processes wait on it;
// any code may Broadcast to wake all current waiters at the present time.
// The zero value is not usable; create signals with NewSignal.
type Signal struct {
	env     *Env
	waiters []*Proc
	timed   []*timedWait
}

// timedWait tracks one WaitTimeout waiter: whoever resolves it first —
// Broadcast or the timer — sets done.
type timedWait struct {
	proc    *Proc
	done    bool
	expired bool
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait suspends p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.env.blocked++
	p.block()
}

// WaitTimeout suspends p until the next Broadcast or until d elapses,
// whichever comes first, and reports whether the signal fired. The timer
// event always runs — as a no-op when the waiter was already woken — so
// the run's final virtual time does not depend on which path won.
func (s *Signal) WaitTimeout(p *Proc, d Duration) (signaled bool) {
	w := &timedWait{proc: p}
	s.timed = append(s.timed, w)
	e := s.env
	e.blocked++
	e.Schedule(d, func() {
		if w.done {
			return
		}
		w.done = true
		w.expired = true
		for i, x := range s.timed {
			if x == w {
				s.timed = append(s.timed[:i], s.timed[i+1:]...)
				break
			}
		}
		e.blocked--
		p.dispatch()
	})
	p.block()
	return !w.expired
}

// Broadcast wakes every process currently waiting on the signal. Waiters
// resume in the order they began waiting, at the current virtual time;
// plain waiters first, then timed waiters.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = s.waiters[:0]
	for _, w := range waiters {
		s.env.blocked--
		s.env.scheduleProc(0, w)
	}
	timed := s.timed
	s.timed = s.timed[:0]
	for _, w := range timed {
		w.done = true
		s.env.blocked--
		s.env.scheduleProc(0, w.proc)
	}
}

// Pending reports how many processes are waiting on the signal.
func (s *Signal) Pending() int { return len(s.waiters) + len(s.timed) }
