package workload

import (
	"fmt"

	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// The Metis suite the paper draws word-count from contains eight
// applications; this file implements three more with genuinely different
// memory behaviour, useful for exercising the simulator beyond Fig. 14:
//
//   - Grep: pure streaming scan, almost no anonymous state — the page
//     cache pathologies dominate.
//   - Histogram: streaming input into a small hot table — the table stays
//     resident; only the cache churns.
//   - KMeans: iterative full-dataset passes — an LRU pathology like the
//     DaCapo Eclipse heap walks when the points exceed actual memory.

// GrepConfig parameterizes the streaming scan.
type GrepConfig struct {
	InputMB     int
	CPUPerBlock sim.Duration
}

func (c GrepConfig) withDefaults() GrepConfig {
	if c.InputMB == 0 {
		c.InputMB = 300
	}
	if c.CPUPerBlock == 0 {
		c.CPUPerBlock = 15 * sim.Microsecond
	}
	return c
}

// Grep launches the streaming scan on vm.
func Grep(vm *hyper.VM, cfg GrepConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("grep")
	return launch(vm, "grep", pr, func(t *guest.Thread, j *Job) {
		input := vm.OS.FS.Create("grep.in", int64(cfg.InputMB)<<20)
		blocks := input.SizeBytes() / 4096
		for b := int64(0); b < blocks && !t.ProcKilled(); b++ {
			t.ReadFile(input, b*4096, 4096)
			t.Compute(cfg.CPUPerBlock)
		}
	})
}

// HistogramConfig parameterizes the pixel-count application.
type HistogramConfig struct {
	InputMB     int
	TableKB     int // the histogram itself: small and hot
	CPUPerBlock sim.Duration
}

func (c HistogramConfig) withDefaults() HistogramConfig {
	if c.InputMB == 0 {
		c.InputMB = 400
	}
	if c.TableKB == 0 {
		c.TableKB = 768 // 3 x 256 buckets x 8 B, rounded to pages
	}
	if c.CPUPerBlock == 0 {
		c.CPUPerBlock = 25 * sim.Microsecond
	}
	return c
}

// Histogram launches the pixel-count application on vm.
func Histogram(vm *hyper.VM, cfg HistogramConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("histogram")
	return launch(vm, "histogram", pr, func(t *guest.Thread, j *Job) {
		input := vm.OS.FS.Create("hist.in", int64(cfg.InputMB)<<20)
		tablePages := (cfg.TableKB + 3) / 4
		table := pr.Reserve(tablePages)
		for i := 0; i < tablePages; i++ {
			t.TouchAnon(pr, table+i, true)
		}
		blocks := input.SizeBytes() / 4096
		for b := int64(0); b < blocks && !t.ProcKilled(); b++ {
			t.ReadFile(input, b*4096, 4096)
			// Bump a few counters: tiny scattered writes to the hot table.
			t.WriteAnonSpan(pr, table+int(b)%tablePages, int(b*64)%4032, 64)
			t.Compute(cfg.CPUPerBlock)
		}
	})
}

// KMeansConfig parameterizes the clustering application.
type KMeansConfig struct {
	PointsMB   int
	Clusters   int
	Iterations int
	CPUPerPage sim.Duration
	Threads    int
}

func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.PointsMB == 0 {
		c.PointsMB = 600
	}
	if c.Clusters == 0 {
		c.Clusters = 16
	}
	if c.Iterations == 0 {
		c.Iterations = 8
	}
	if c.CPUPerPage == 0 {
		c.CPUPerPage = 12 * sim.Microsecond
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	return c
}

// KMeans launches the clustering application on vm: the point set is
// generated once (anonymous memory), then every iteration reads all of it.
func KMeans(vm *hyper.VM, cfg KMeansConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("kmeans")
	return launch(vm, "kmeans", pr, func(t *guest.Thread, j *Job) {
		pointPages := cfg.PointsMB << 20 / 4096
		points := pr.Reserve(pointPages)
		centroids := pr.Reserve(cfg.Clusters)

		// Generate the points (sequential fill: Preventer-friendly when
		// host-swapped).
		for i := 0; i < pointPages && !t.ProcKilled(); i++ {
			t.TouchAnon(pr, points+i, true)
		}
		for i := 0; i < cfg.Clusters; i++ {
			t.TouchAnon(pr, centroids+i, true)
		}

		perThread := (pointPages + cfg.Threads - 1) / cfg.Threads
		for it := 0; it < cfg.Iterations && !t.ProcKilled(); it++ {
			start := t.P.Now()
			done := newBarrier(vm.M.Env, cfg.Threads)
			for w := 0; w < cfg.Threads; w++ {
				w := w
				vm.OS.Go(fmt.Sprintf("kmeans-%d", w), pr, func(wt *guest.Thread) {
					defer done.arrive()
					lo := w * perThread
					hi := lo + perThread
					if hi > pointPages {
						hi = pointPages
					}
					for i := lo; i < hi && !wt.ProcKilled(); i++ {
						wt.TouchAnon(pr, points+i, false)
						wt.Compute(cfg.CPUPerPage)
					}
				})
			}
			done.wait(t.P)
			// Update centroids.
			for i := 0; i < cfg.Clusters && !t.ProcKilled(); i++ {
				t.TouchAnon(pr, centroids+i, true)
			}
			t.FlushCPU()
			j.res.Iterations = append(j.res.Iterations, t.P.Now().Sub(start))
		}
	})
}
