package fault

import "testing"

// FuzzFaultPlanParse checks the parser's core contract on arbitrary input:
// it never panics, and every accepted spec round-trips exactly — the
// canonical String reparses to the identical Plan and is a fixed point.
// This is what makes "replay with -faults '<spec>'" in an audit failure
// message trustworthy.
func FuzzFaultPlanParse(f *testing.F) {
	seeds := []string{
		"",
		"disk-read-err:0.01",
		"disk-write-err:0.005;disk-lat:0.05:2ms",
		"disk-lat:0.5",
		"swapin-fail:0.02;slot-exhaust:0.01",
		"balloon-refuse:0.1;emu-starve:0.3;map-poison:1",
		"swapin-fail:0",
		" disk-read-err : 0.25 ; disk-lat:1:500us",
		"disk-lat:0.5:2h",
		"swapin-fail:0.1;swapin-fail:1",
		"bogus:0.5",
		"disk-read-err:NaN",
		"disk-read-err:1e-300",
		":::;;;:",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		canon := p.String()
		p2, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not reparse: %v", canon, spec, err)
		}
		if p2 != p {
			t.Fatalf("round trip changed plan: %q -> %q -> %q", spec, canon, p2.String())
		}
		if p2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, p2.String())
		}
		if p.Empty() != (canon == "") {
			t.Fatalf("Empty()=%v but canonical form is %q", p.Empty(), canon)
		}
	})
}
