// Package mem provides the lowest-level memory abstractions shared by the
// host and guest models: the page size, byte/page conversions, and the
// physical frame pool that bounds how much machine memory exists.
package mem

import "fmt"

// PageSize is the architectural page size (4 KiB), which also equals the
// disk block size used throughout the simulator.
const PageSize = 4096

// Pages converts a byte count to a page count, rounding up.
func Pages(bytes int64) int {
	return int((bytes + PageSize - 1) / PageSize)
}

// Bytes converts a page count to bytes.
func Bytes(pages int) int64 { return int64(pages) * PageSize }

// MiB is a convenience constant for sizing configurations.
const MiB = 1 << 20

// GiB is a convenience constant for sizing configurations.
const GiB = 1 << 30

// FramePool tracks allocation of host physical frames. The simulator does
// not store page contents, so a "frame" is purely an accounting unit: the
// pool bounds total residency and per-cgroup limits bound each guest.
type FramePool struct {
	capacity int
	used     int
}

// NewFramePool returns a pool of capacity frames.
func NewFramePool(capacity int) *FramePool {
	if capacity <= 0 {
		panic("mem: frame pool capacity must be positive")
	}
	return &FramePool{capacity: capacity}
}

// Grab takes n frames. It panics if the pool would be overdrawn: callers
// must reclaim first, so an overdraw is a simulator bug, not a model state.
func (f *FramePool) Grab(n int) {
	if n < 0 {
		panic("mem: negative grab")
	}
	if f.used+n > f.capacity {
		panic(fmt.Sprintf("mem: frame pool overdrawn (%d used + %d > %d)", f.used, n, f.capacity))
	}
	f.used += n
}

// Release returns n frames to the pool.
func (f *FramePool) Release(n int) {
	if n < 0 || f.used-n < 0 {
		panic(fmt.Sprintf("mem: releasing %d of %d used frames", n, f.used))
	}
	f.used -= n
}

// Free reports the number of unallocated frames.
func (f *FramePool) Free() int { return f.capacity - f.used }

// Used reports the number of allocated frames.
func (f *FramePool) Used() int { return f.used }

// Capacity reports the total number of frames.
func (f *FramePool) Capacity() int { return f.capacity }
