// Command vswapsim runs one of the paper's experiments and prints its
// tables.
//
// Usage:
//
//	vswapsim -list
//	vswapsim -run fig3 [-scale 1.0] [-seed 42] [-quick] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vswapsim/internal/experiment"
)

// cliConfig holds the parsed command line.
type cliConfig struct {
	list     bool
	run      string
	scale    float64
	seed     uint64
	quick    bool
	parallel int
}

// parseArgs parses args (without the program name). Parse errors are
// reported on stderr by the FlagSet itself.
func parseArgs(args []string) (cliConfig, error) {
	fs := flag.NewFlagSet("vswapsim", flag.ContinueOnError)
	var c cliConfig
	fs.BoolVar(&c.list, "list", false, "list available experiments")
	fs.StringVar(&c.run, "run", "", "experiment id to run (e.g. fig3)")
	fs.Float64Var(&c.scale, "scale", 1.0, "size scale factor (1.0 = paper-sized)")
	fs.Uint64Var(&c.seed, "seed", 42, "random seed")
	fs.BoolVar(&c.quick, "quick", false, "trim sweeps for a fast smoke run")
	fs.IntVar(&c.parallel, "parallel", runtime.GOMAXPROCS(0),
		"max concurrent simulator runs (1 = serial; results are identical either way)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.scale <= 0 || c.scale > 16 {
		return c, fmt.Errorf("invalid -scale %v: must be in (0, 16]", c.scale)
	}
	if c.parallel < 1 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 1", c.parallel)
	}
	return c, nil
}

func main() {
	c, err := parseArgs(os.Args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}

	if c.list || c.run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiment.Registry {
			fmt.Printf("  %-9s %-45s (%s)\n", e.ID, e.Title, e.PaperNote)
		}
		if c.run == "" && !c.list {
			os.Exit(2)
		}
		return
	}

	e, err := experiment.ByID(c.run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	rep := e.Run(experiment.Options{Seed: c.seed, Scale: c.scale, Quick: c.quick, Parallel: c.parallel})
	fmt.Print(rep.String())
	fmt.Printf("(generated in %v wall time, -parallel %d)\n", time.Since(start).Round(time.Millisecond), c.parallel)
}
