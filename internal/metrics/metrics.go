// Package metrics collects the counters and time series that the
// evaluation reports. Every layer of the simulator (disk, host MM, guest
// OS, hypervisor, VSwapper) increments counters in a shared Set so that an
// experiment can read, e.g., "host page faults while host code runs" the
// same way the paper does (Fig. 9b).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"vswapsim/internal/sim"
)

// Counter names used across the simulator. Keeping them centralized makes
// experiment code self-documenting and avoids typo'd string keys.
const (
	// Disk-level traffic.
	DiskOps           = "disk.ops"           // physical requests issued
	DiskReadSectors   = "disk.read.sectors"  // 512-byte sectors read
	DiskWriteSectors  = "disk.write.sectors" // 512-byte sectors written
	DiskBusy          = "disk.busy.ns"       // total device busy time
	SwapReadSectors   = "hostswap.read.sectors"
	SwapWriteSectors  = "hostswap.write.sectors" // Fig. 9d "silent writes"
	SwapReadOps       = "hostswap.read.ops"
	SwapWriteOps      = "hostswap.write.ops"
	ImageReadSectors  = "image.read.sectors"
	ImageWriteSectors = "image.write.sectors"

	// Host memory management.
	HostFaultsInHost  = "host.faults.hostctx"  // faults while host/QEMU code runs (Fig. 9b)
	HostFaultsInGuest = "host.faults.guestctx" // EPT violations while guest runs
	// HostMajorInGuest counts only the EPT violations that needed disk
	// I/O — what Fig. 9c actually plots ("every such page fault
	// immediately translates into a disk read").
	HostMajorInGuest   = "host.faults.guestctx.major"
	HostMajorFaults    = "host.faults.major" // faults requiring disk I/O
	HostMinorFaults    = "host.faults.minor"
	HostPagesScanned   = "host.reclaim.scanned" // Fig. 11c
	HostPagesReclaimed = "host.reclaim.pages"
	HostSwapOuts       = "host.swap.out.pages"
	HostSwapIns        = "host.swap.in.pages"
	HostFileDiscards   = "host.reclaim.discards" // named pages dropped without write
	HostCOWBreaks      = "host.cow.breaks"
	HostSwapPrefetched = "host.swap.prefetch.pages"
	HostFilePrefetched = "host.file.prefetch.pages"
	HostPrefetchHits   = "host.prefetch.hits"

	// Pathology-specific counters (for the demonstration experiments).
	SilentSwapWrites = "patho.silent.writes"
	StaleSwapReads   = "patho.stale.reads"
	FalseSwapReads   = "patho.false.reads"

	// Guest-side.
	GuestMajorFaults  = "guest.faults.major"
	GuestSwapOuts     = "guest.swap.out.pages"
	GuestSwapIns      = "guest.swap.in.pages"
	GuestCacheDrops   = "guest.cache.drops"
	GuestReadaheadPgs = "guest.readahead.pages"
	GuestOOMKills     = "guest.oom.kills"

	// VSwapper.
	MapperTracked    = "vswap.mapper.tracked.pages" // gauge-like, sampled
	MapperBreaks     = "vswap.mapper.assoc.breaks"
	MapperEstablish  = "vswap.mapper.assoc.established"
	MapperInvalidate = "vswap.mapper.invalidations"
	PreventerStarts  = "vswap.preventer.emulations"
	PreventerRemaps  = "vswap.preventer.remaps" // fully buffered pages (Fig. 12b)
	PreventerMerges  = "vswap.preventer.merges" // timed out / non-seq, disk merge
	PreventerWrites  = "vswap.preventer.buffered.writes"

	// Balloon.
	BalloonInflatePages = "balloon.inflate.pages"
	BalloonDeflatePages = "balloon.deflate.pages"

	// Fault injection (internal/fault). The fault.* counters split into
	// injected events (what the plan fired) and recovery behavior (what the
	// consumers did about it); all are zero — and absent from reports —
	// when injection is off.
	FaultDiskReadErrors  = "fault.disk.read.errors"
	FaultDiskWriteErrors = "fault.disk.write.errors"
	FaultDiskDelays      = "fault.disk.delays"
	FaultDiskRetries     = "fault.disk.retries"
	FaultDiskExhausted   = "fault.disk.retry.exhausted"
	FaultSwapInTransient = "fault.swapin.transient"
	FaultSwapInRetries   = "fault.swapin.retries"
	FaultSwapInPoisoned  = "fault.swapin.poisoned"
	FaultSlotRefusals    = "fault.swap.slot.refusals"
	FaultBalloonRefusals = "fault.balloon.refusals"
	FaultEmuStarved      = "fault.preventer.starved"
	FaultMapperPoisoned  = "fault.mapper.poisoned"

	// Swap-backend tiers (internal/swapback). The hostswap.* counters above
	// count every tier's swap traffic uniformly; these break out what the
	// non-default backends do with it. All are zero — and absent from
	// reports — under the default (hdd) backend.
	SwapbackReadOps                 = "swapback.read.ops"
	SwapbackWriteOps                = "swapback.write.ops"
	SwapbackFastStorePages          = "swapback.fast.store.pages"
	SwapbackFastLoadPages           = "swapback.fast.load.pages"
	SwapbackFastRejectPages         = "swapback.fast.reject.pages"
	SwapbackFastIncompressiblePages = "swapback.fast.incompressible.pages"
	SwapbackFastCorruptPages        = "swapback.fast.corrupt.pages"
	SwapbackDemotePages             = "swapback.demote.pages"
	SwapbackPromotePages            = "swapback.promote.pages"
	SwapbackRemoteTailEvents        = "swapback.remote.tail.events"

	// Cluster scheduler (internal/cluster). These live in the cluster's own
	// fleet-level Set (one per cluster cell, reported alongside the per-host
	// machine sets), so per-host reports stay byte-identical to single-host
	// runs. All monotone; the cluster invariant checker enforces that.
	ClusterPlacements     = "cluster.placements"      // guests placed at admission
	ClusterUnits          = "cluster.units"           // workload units completed fleet-wide
	ClusterMigrations     = "cluster.migrations"      // live migrations completed
	ClusterMigrateRefused = "cluster.migrate.refused" // migrations refused for lack of headroom
	ClusterKills          = "cluster.kills"           // soomkiller victim kills
	ClusterReballoons     = "cluster.reballoon.ticks" // MOM re-balloon interventions
	ClusterPressureEvents = "cluster.pressure.events" // monitor samples over threshold
	HistClusterUnit       = "cluster.unit.latency"  // fleet-wide per-unit workload latency
	HistClusterGuest      = "cluster.guest.latency" // admission-to-completion per-guest latency

	// Per-phase simulated-time accounting (all virtual nanoseconds). These
	// answer "where does simulated time go": guest CPU execution, host
	// fault-handling CPU, blocking waits for the disk, and reclaim scans.
	// Phases overlap with each other and with idle waits, so they do not
	// sum to the final virtual time; each is a total across all processes.
	TimeGuestRun    = "time.guestrun.ns"
	TimeHostFault   = "time.hostfault.ns"
	TimeDiskWait    = "time.diskwait.ns"
	TimeReclaimScan = "time.reclaim.scan.ns"
)

// Set is a bag of named counters plus optional time series and latency
// histograms. The zero value is not usable; create one with NewSet.
type Set struct {
	counters map[string]*Counter
	series   map[string]*Series
	hists    map[string]*Histogram
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		series:   make(map[string]*Series),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a direct handle on one named counter. Hot paths resolve the
// handle once (one map lookup at construction time) and then update it
// with plain integer arithmetic — no string hashing, no allocation.
type Counter struct {
	name string
	v    int64
}

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the counter's current value.
func (c *Counter) Value() int64 { return c.v }

// Counter returns (creating if needed) a handle on the named counter.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{name: name}
		s.counters[name] = c
	}
	return c
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta int64) {
	s.Counter(name).v += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the current value of counter name (zero if never written).
func (s *Set) Get(name string) int64 {
	if c, ok := s.counters[name]; ok {
		return c.v
	}
	return 0
}

// Reset zeroes every counter but keeps time series intact.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.v = 0
	}
}

// Snapshot returns a copy of all counters, e.g. to diff across phases.
func (s *Set) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.counters))
	for k, c := range s.counters {
		out[k] = c.v
	}
	return out
}

// Diff returns counter deltas since the given snapshot.
func (s *Set) Diff(since map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for k, c := range s.counters {
		if d := c.v - since[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Series returns (creating if needed) the named time series.
func (s *Set) Series(name string) *Series {
	sr, ok := s.series[name]
	if !ok {
		sr = &Series{name: name}
		s.series[name] = sr
	}
	return sr
}

// String renders the non-zero counters sorted by name, one per line.
func (s *Set) String() string {
	names := make([]string, 0, len(s.counters))
	for k, c := range s.counters {
		if c.v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", k, s.counters[k].v)
	}
	return b.String()
}

// Point is one sample in a time series.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is an append-only sequence of (time, value) samples, used for
// figures plotted against time (Fig. 15) or iteration.
type Series struct {
	name   string
	points []Point
}

// Name returns the series name.
func (sr *Series) Name() string { return sr.name }

// Record appends a sample.
func (sr *Series) Record(at sim.Time, v float64) {
	sr.points = append(sr.points, Point{At: at, Value: v})
}

// Points returns the recorded samples in order.
func (sr *Series) Points() []Point { return sr.points }

// Len returns the number of samples.
func (sr *Series) Len() int { return len(sr.points) }

// Last returns the most recent sample value, or 0 if empty.
func (sr *Series) Last() float64 {
	if len(sr.points) == 0 {
		return 0
	}
	return sr.points[len(sr.points)-1].Value
}

// Max returns the largest sample value, or 0 if empty.
func (sr *Series) Max() float64 {
	m := 0.0
	for _, p := range sr.points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the arithmetic mean of sample values, or 0 if empty.
func (sr *Series) Mean() float64 {
	if len(sr.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range sr.points {
		sum += p.Value
	}
	return sum / float64(len(sr.points))
}
