package workload

import (
	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

// SeqReadConfig parameterizes the Sysbench sequential file-read benchmark
// (paper §3.1, Fig. 3, Fig. 9).
type SeqReadConfig struct {
	// FileMB is the file size (paper: 200 MB; §5.4 uses 1–2 GB).
	FileMB int
	// Iterations repeats the full read (Fig. 9 runs 8).
	Iterations int
	// CPUPerBlock is the benchmark's processing cost per 4 KiB block.
	CPUPerBlock sim.Duration
	// AfterIteration, when set, is called with the iteration index after
	// each pass (used to snapshot counters for Fig. 9 panels).
	AfterIteration func(i int)
	// FileName allows several instances to share or separate files.
	FileName string
}

func (c SeqReadConfig) withDefaults() SeqReadConfig {
	if c.FileMB == 0 {
		c.FileMB = 200
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.CPUPerBlock == 0 {
		c.CPUPerBlock = 2 * sim.Microsecond
	}
	if c.FileName == "" {
		c.FileName = "sysbench.data"
	}
	return c
}

// SeqRead launches the Sysbench file-read workload on vm.
func SeqRead(vm *hyper.VM, cfg SeqReadConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("sysbench")
	return launch(vm, "seqread", pr, func(t *guest.Thread, j *Job) {
		size := int64(cfg.FileMB) << 20
		f, ok := vm.OS.FS.Lookup(cfg.FileName)
		if !ok {
			f = vm.OS.FS.Create(cfg.FileName, size)
		}
		blocks := size / 4096
		for it := 0; it < cfg.Iterations && !t.ProcKilled(); it++ {
			start := t.P.Now()
			// Sysbench reads in 16 KiB chunks; the guest page cache and
			// readahead make the chunk size immaterial at block level.
			t.ReadFile(f, 0, size)
			t.Compute(sim.Duration(blocks) * cfg.CPUPerBlock)
			t.FlushCPU()
			j.res.Iterations = append(j.res.Iterations, t.P.Now().Sub(start))
			if cfg.AfterIteration != nil {
				cfg.AfterIteration(it)
			}
		}
	})
}

// AllocTouchConfig parameterizes the allocate-and-sequentially-access
// microbenchmark the paper appends to Sysbench to expose false reads
// (Fig. 10).
type AllocTouchConfig struct {
	// SizeMB of anonymous memory to allocate and access (paper: 200 MB).
	SizeMB int
	// SpanBytes: after the kernel zeroes each fresh page, the process
	// writes its data in spans of this size (0 = whole-page stores only).
	SpanBytes int
	// CPUPerPage is computation per touched page.
	CPUPerPage sim.Duration
}

func (c AllocTouchConfig) withDefaults() AllocTouchConfig {
	if c.SizeMB == 0 {
		c.SizeMB = 200
	}
	if c.SpanBytes == 0 {
		c.SpanBytes = 1024
	}
	if c.CPUPerPage == 0 {
		c.CPUPerPage = 500 * sim.Nanosecond
	}
	return c
}

// AllocTouch launches the allocation microbenchmark on vm.
func AllocTouch(vm *hyper.VM, cfg AllocTouchConfig) *Job {
	cfg = cfg.withDefaults()
	pr := vm.OS.NewProcess("alloctouch")
	return launch(vm, "alloctouch", pr, func(t *guest.Thread, j *Job) {
		pages := cfg.SizeMB << 20 / 4096
		pr.Reserve(pages)
		for i := 0; i < pages && !t.ProcKilled(); i++ {
			// First touch allocates + zeroes (REP); then the process
			// fills part of the page with its own data.
			t.TouchAnon(pr, i, true)
			if cfg.SpanBytes > 0 && !t.ProcKilled() {
				t.WriteAnonSpan(pr, i, 0, cfg.SpanBytes)
			}
			t.Compute(cfg.CPUPerPage)
		}
	})
}
