package experiment

import (
	"fmt"

	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
	"vswapsim/internal/swapback"
	"vswapsim/internal/workload"
)

// backendSchemes are the two schemes the tier comparison contrasts: the
// paper's uncooperative-swap baseline and full VSwapper.
var backendSchemes = []Scheme{Baseline, VSwapper}

// backendCounters are the per-cell counters the second table surfaces,
// in column order. hostswap.* counts all swap traffic on every tier;
// swapback.* isolates the non-default tiers' fast-path behavior.
var backendCounters = []string{
	"hostswap.read.ops",
	"hostswap.write.ops",
	"swapback.fast.store.pages",
	"swapback.demote.pages",
	"swapback.remote.tail.events",
}

// BackendN sweeps every swap-backend tier under the Fig. 3 workload
// (200 MB sequential read, 512 MB guest on 100 MB): the paper's premise
// is that host swap is catastrophically slow, so this quantifies how much
// of VSwapper's win survives when the swap device is an SSD, compressed
// RAM, or a network-attached tier instead of a rotating disk.
func BackendN(o Options) *Report {
	o = o.normalized()
	kinds := swapback.AllKinds()
	rep := &Report{
		ID:        "backendN",
		Title:     "VSwapper vs baseline across swap-backend tiers (hdd/ssd/zswap/remote)",
		PaperNote: "beyond the paper: §2.1's slow-swap premise re-measured per storage tier",
	}

	cells := make([]runOut, len(kinds)*len(backendSchemes))
	o.forEach(len(cells), func(i int) {
		k, s := kinds[i/len(backendSchemes)], backendSchemes[i%len(backendSchemes)]
		ko := o
		ko.Swapback = k
		cells[i] = runSingle(runCfg{
			opts: ko, scheme: s,
			seed:    sim.DeriveSeed(o.Seed, "backendN", k.String(), s.String()),
			guestMB: 512, actualMB: 100,
			warmup: true,
		}, func(vm *hyper.VM, p *sim.Proc) *workload.Job {
			return workload.SeqRead(vm, workload.SeqReadConfig{FileMB: o.mb(200)})
		})
	})
	cell := func(k, s int) runOut { return cells[k*len(backendSchemes)+s] }

	rt := &Table{
		Title:   "200MB read runtime by swap tier [sec]",
		Columns: []string{"backend", "baseline", "vswapper", "speedup"},
	}
	for ki, k := range kinds {
		base, vsw := cell(ki, 0), cell(ki, 1)
		speedup := "-"
		if base.failed == nil && vsw.failed == nil && vsw.res.Runtime() > 0 {
			speedup = fmt.Sprintf("%.2fx", base.res.Runtime().Seconds()/vsw.res.Runtime().Seconds())
		}
		rt.Add(k.String(), runtimeOrKilled(base.res), runtimeOrKilled(vsw.res), speedup)
	}
	rep.Tables = append(rep.Tables, rt)

	ct := &Table{
		Title:   "swap traffic by tier and scheme",
		Columns: append([]string{"backend", "scheme"}, backendCounters...),
	}
	for ki, k := range kinds {
		for si, s := range backendSchemes {
			row := []string{k.String(), s.String()}
			for _, name := range backendCounters {
				row = append(row, fmt.Sprintf("%d", cell(ki, si).met[name]))
			}
			ct.Add(row...)
		}
	}
	rep.Tables = append(rep.Tables, ct)
	return rep
}
