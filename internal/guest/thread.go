package guest

import (
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// Thread is an execution context inside the guest: a workload thread or a
// kernel daemon. CPU time accumulates as debt and is paid on the VCPU in
// slices, so per-page bookkeeping does not flood the event queue; I/O
// blocks without holding the VCPU (KVM's asynchronous page faults let
// Linux guests schedule around host-side waits, paper §5.1).
type Thread struct {
	OS   *OS
	P    *sim.Proc
	Proc *Process // associated process, if any (for OOM kill checks)

	cpuDebt sim.Duration
}

// cpuSlice is how much CPU debt accumulates before the thread actually
// occupies the VCPU. Coarser slices keep the event count manageable for
// multi-guest experiments; disk latencies (milliseconds) dominate anyway.
const cpuSlice = sim.Millisecond

// Go starts fn as a guest thread attached to process pr (pr may be nil for
// kernel threads).
func (os *OS) Go(name string, pr *Process, fn func(t *Thread)) {
	os.Env.Go(name, func(p *sim.Proc) {
		t := &Thread{OS: os, P: p, Proc: pr}
		fn(t)
		t.FlushCPU()
	})
}

// Compute charges d of CPU time to the thread.
func (t *Thread) Compute(d sim.Duration) {
	t.cpuDebt += d
	if t.cpuDebt >= cpuSlice {
		t.FlushCPU()
	}
}

// FlushCPU pays the accumulated CPU debt on the VCPU. Call it before
// measuring completion times.
func (t *Thread) FlushCPU() {
	if t.cpuDebt <= 0 {
		return
	}
	d := t.cpuDebt
	t.cpuDebt = 0
	t.OS.Met.Add(metrics.TimeGuestRun, int64(d))
	t.OS.VCPU.Acquire(t.P)
	t.P.Sleep(d)
	t.OS.VCPU.Release()
}

// ProcKilled reports whether the thread's process was OOM-killed; workload
// loops should abort when it turns true.
func (t *Thread) ProcKilled() bool {
	return t.Proc != nil && t.Proc.Killed
}
