package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Set in the Prometheus text exposition format
// (version 0.0.4) — the format the serving daemon's /metrics endpoint
// speaks and the kube-soomkiller stress harness consumes. The simulator's
// internal counter names use dots ("serve.jobs.accepted"); Prometheus
// metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so PromName maps every
// illegal byte to '_' ("serve_jobs_accepted"). Output is sorted by name so
// repeated scrapes of an idle server are byte-identical.

// PromName converts an internal metric name to a valid Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed with '_'.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePromGauge renders one gauge sample (a value that can go up and
// down, like a queue depth) in Prometheus text format.
func WritePromGauge(w io.Writer, name string, v float64) {
	n := PromName(name)
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, v)
}

// WritePrometheus renders every counter and histogram of the set in
// Prometheus text format, sorted by name. Counters render as the
// "counter" type (zero-valued counters included, so a scraper can assert
// a metric exists before it first fires); histograms render as the
// "histogram" type with cumulative power-of-two le buckets.
func (s *Set) WritePrometheus(w io.Writer) {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.counters[k].v)
	}

	hnames := make([]string, 0, len(s.hists))
	for k := range s.hists {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.hists[k]
		n := PromName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range h.buckets {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, BucketUpper(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.count)
	}
}
