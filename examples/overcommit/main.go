// Overcommit: compare all five configurations of the paper under a
// controlled memory squeeze, printing runtime and the pathology counters
// (silent writes, stale reads, false reads) that explain the differences.
//
//	go run ./examples/overcommit
package main

import (
	"fmt"

	"vswapsim"
	"vswapsim/internal/metrics"
)

type scheme struct {
	name              string
	mapper, preventer bool
	balloon           bool
}

func main() {
	schemes := []scheme{
		{"baseline", false, false, false},
		{"balloon+baseline", false, false, true},
		{"mapper only", true, false, false},
		{"vswapper", true, true, false},
		{"balloon+vswapper", true, true, true},
	}
	fmt.Println("pbzip2-like compression; guest believes 512MB, actually has 256MB")
	fmt.Printf("%-18s %10s %14s %12s %12s\n", "config", "runtime", "silent writes", "stale reads", "false reads")
	for _, s := range schemes {
		m := vswapsim.NewMachine(vswapsim.MachineConfig{Seed: 7, HostMemPages: 4 << 30 / 4096})
		vm := m.NewVM(vswapsim.VMConfig{
			Name:       "guest0",
			MemPages:   512 << 20 / 4096,
			LimitPages: 256 << 20 / 4096,
			DiskBlocks: 20 << 30 / 4096,
			Mapper:     s.mapper,
			Preventer:  s.preventer,
			GuestAPF:   true,
		})
		var res vswapsim.Result
		m.Env.Go("driver", func(p *vswapsim.Proc) {
			vm.Boot(p)
			if s.balloon {
				target := (512-256)<<20/4096 + 4096
				vm.OS.SetBalloonTarget(target)
				for vm.OS.BalloonPages() < target {
					p.Sleep(100 * vswapsim.Millisecond)
				}
			}
			vswapsim.Warmup(vm, 2048).Wait(p)
			res = vswapsim.Pbzip2(vm, vswapsim.Pbzip2Config{InputMB: 256}).Wait(p)
			m.Shutdown()
		})
		m.Run()
		rt := fmt.Sprintf("%.1fs", res.Runtime().Seconds())
		if res.Killed {
			rt = "killed"
		}
		fmt.Printf("%-18s %10s %14d %12d %12d\n", s.name, rt,
			m.Met.Get(metrics.SilentSwapWrites),
			m.Met.Get(metrics.StaleSwapReads),
			m.Met.Get(metrics.FalseSwapReads))
	}
}
