package hyper

import (
	"testing"

	"vswapsim/internal/guest"
)

func TestMigrationPlanClassification(t *testing.T) {
	// With the Mapper, a read-heavy guest should be mostly mapping-only +
	// skippable: migration barely moves content.
	_, vm := testVM(t, 32, true, true, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 24*mib)
		th.ReadFile(f, 0, 24*mib)
	})
	plan := vm.PlanMigration()
	if plan.TotalPages != vm.Cfg.MemPages {
		t.Fatalf("total = %d", plan.TotalPages)
	}
	sum := plan.TransferPages + plan.MappingOnly + plan.SwapBacked + plan.Skippable
	if sum != plan.TotalPages {
		t.Fatalf("classification leaks pages: %d != %d", sum, plan.TotalPages)
	}
	if plan.MappingOnly < 24*mib/4096/2 {
		t.Fatalf("expected most cached pages mapping-only, got %d", plan.MappingOnly)
	}
	if plan.TransferBytes() >= plan.NaiveTransferBytes() {
		t.Fatalf("mapping migration (%d B) not cheaper than naive (%d B)",
			plan.TransferBytes(), plan.NaiveTransferBytes())
	}
}

func TestMigrationPlanBaselineMovesEverything(t *testing.T) {
	// Without the Mapper every touched page is anonymous: the plan cannot
	// save wire bytes.
	_, vm := testVM(t, 32, false, false, func(vm *VM, th *guest.Thread) {
		f := vm.OS.FS.Create("data", 24*mib)
		th.ReadFile(f, 0, 24*mib)
	})
	plan := vm.PlanMigration()
	if plan.MappingOnly > vm.Cfg.TextPages {
		t.Fatalf("baseline guest has %d mapping-only pages (only QEMU text expected)", plan.MappingOnly)
	}
	if plan.TransferPages+plan.SwapBacked == 0 {
		t.Fatal("nothing to transfer?")
	}
}
