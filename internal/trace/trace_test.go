package trace

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"vswapsim/internal/sim"
)

func TestNilRingIsNoop(t *testing.T) {
	var r *Ring
	r.Add(0, Fault, "x")   // must not panic
	r.Enable(Fault, false) // must not panic
	if r.Len() != 0 || r.Events() != nil || r.Filter(Fault) != nil {
		t.Fatal("nil ring not empty")
	}
}

func TestRecordAndDump(t *testing.T) {
	r := New(8)
	r.Add(sim.Time(sim.Second), Fault, "gfn %d", 42)
	r.Add(sim.Time(2*sim.Second), Reclaim, "evict")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	out := r.String()
	if !strings.Contains(out, "gfn 42") || !strings.Contains(out, "reclaim") {
		t.Fatalf("dump: %q", out)
	}
}

func TestRingWraps(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Add(sim.Time(i), Fault, "e%d", i)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	if ev[0].Msg != "e6" || ev[3].Msg != "e9" {
		t.Fatalf("wrap order wrong: %v", ev)
	}
}

func TestNilRingStringEmpty(t *testing.T) {
	var r *Ring
	if r.String() != "" {
		t.Fatal("nil ring dump not empty")
	}
}

// TestRingExactCapacity pins the boundary where the write index lands back
// on zero: exactly capacity events means wrapped bookkeeping with nothing
// yet overwritten, and the dump must still be oldest-to-newest.
func TestRingExactCapacity(t *testing.T) {
	r := New(4)
	for i := 0; i < 4; i++ {
		r.Add(sim.Time(i), Fault, "e%d", i)
	}
	ev := r.Events()
	if len(ev) != 4 || r.Len() != 4 {
		t.Fatalf("len = %d/%d, want 4", len(ev), r.Len())
	}
	for i, e := range ev {
		if e.At != sim.Time(i) {
			t.Fatalf("event %d at %v, want %v", i, e.At, sim.Time(i))
		}
	}
}

// TestRingWrapFullOrder checks every retained event after several full
// wraps, not just the endpoints: the dump is the last `capacity` events in
// emission order.
func TestRingWrapFullOrder(t *testing.T) {
	const capacity, emitted = 5, 17
	r := New(capacity)
	for i := 0; i < emitted; i++ {
		r.Add(sim.Time(i), Reclaim, "e%d", i)
	}
	ev := r.Events()
	if len(ev) != capacity {
		t.Fatalf("len = %d, want %d", len(ev), capacity)
	}
	for i, e := range ev {
		want := emitted - capacity + i
		if e.At != sim.Time(want) || e.Msg != fmt.Sprintf("e%d", want) {
			t.Fatalf("event %d = {%v %q}, want seq %d", i, e.At, e.Msg, want)
		}
	}
}

func TestKindFilterAndDisable(t *testing.T) {
	r := New(16)
	r.Enable(DiskIO, false)
	r.Add(0, DiskIO, "dropped")
	r.Add(0, Mapper, "kept")
	r.Add(0, OOM, "kept too")
	if got := len(r.Filter(DiskIO)); got != 0 {
		t.Fatalf("disabled kind recorded %d", got)
	}
	if got := len(r.Filter(Mapper)); got != 1 {
		t.Fatalf("mapper events = %d", got)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestEventsOrderedProperty(t *testing.T) {
	if err := quick.Check(func(nRaw uint8, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		n := int(nRaw)
		r := New(capacity)
		for i := 0; i < n; i++ {
			r.Add(sim.Time(i), Fault, "")
		}
		ev := r.Events()
		for i := 1; i < len(ev); i++ {
			if ev[i].At < ev[i-1].At {
				return false
			}
		}
		want := n
		if want > capacity {
			want = capacity
		}
		return len(ev) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}
