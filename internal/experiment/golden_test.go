package experiment

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the golden fingerprints")

const goldenFile = "testdata/golden_quick.json"

// goldenOpts pins the determinism harness configuration: Quick mode at a
// small scale, strictly serial, so the goldens are the canonical serial
// reference the equivalence tests compare parallel execution against.
func goldenOpts() Options {
	return Options{Seed: 42, Scale: 0.125, Quick: true, Parallel: 1}
}

// goldenExperiments is the registry minus tab1, which fingerprints the
// source tree (lines of code) rather than simulator output and would churn
// on every unrelated commit.
func goldenExperiments() []Experiment {
	var out []Experiment
	for _, e := range Registry {
		if e.ID == "tab1" {
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestGoldenFingerprints runs every registry experiment serially in Quick
// mode and compares each report's fingerprint (SHA-256 over its tables'
// CSV and notes) against testdata/golden_quick.json. Regenerate with:
//
//	go test ./internal/experiment -run TestGoldenFingerprints -update
func TestGoldenFingerprints(t *testing.T) {
	resetSweepCaches()
	got := map[string]string{}
	for _, e := range goldenExperiments() {
		got[e.ID] = e.Run(goldenOpts()).Fingerprint()
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), goldenFile)
		return
	}

	data, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	for _, e := range goldenExperiments() {
		w, ok := want[e.ID]
		if !ok {
			t.Errorf("%s: no golden fingerprint recorded (run with -update)", e.ID)
			continue
		}
		if got[e.ID] != w {
			t.Errorf("%s: fingerprint %s, golden %s — simulator output drifted; "+
				"if intentional, regenerate with -update", e.ID, got[e.ID][:12], w[:12])
		}
	}
	for id := range want {
		if _, ok := got[id]; !ok {
			t.Errorf("golden file has stale entry %q (run with -update)", id)
		}
	}
}

// TestFingerprintSensitivity guards the fingerprint itself: it must be
// stable across calls and change when any cell, title or note changes.
func TestFingerprintSensitivity(t *testing.T) {
	mk := func() *Report {
		tab := &Table{Title: "t", Columns: []string{"a", "b"}}
		tab.Add("1", "2")
		return &Report{ID: "x", Title: "T", Tables: []*Table{tab}, Notes: []string{"n"}}
	}
	base := mk().Fingerprint()
	if base != mk().Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	cell := mk()
	cell.Tables[0].Rows[0][1] = "3"
	note := mk()
	note.Notes[0] = "m"
	title := mk()
	title.Tables[0].Title = "u"
	for name, r := range map[string]*Report{"cell": cell, "note": note, "table title": title} {
		if r.Fingerprint() == base {
			t.Fatalf("changing a %s did not change the fingerprint", name)
		}
	}
}
