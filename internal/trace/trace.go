// Package trace provides a lightweight event recorder for debugging and
// observability: simulator layers emit typed events into a bounded ring,
// and tests or tools dump the tail when something looks wrong. Tracing is
// off by default and costs one branch when disabled.
package trace

import (
	"fmt"
	"strings"

	"vswapsim/internal/sim"
)

// Kind classifies events for filtering.
type Kind uint8

const (
	// Fault is any host-side page fault handling.
	Fault Kind = iota
	// Reclaim covers eviction decisions.
	Reclaim
	// DiskIO covers physical device requests.
	DiskIO
	// Balloon covers inflate/deflate traffic.
	Balloon
	// Preventer covers write-emulation lifecycle events.
	Preventer
	// Mapper covers mapping establishment/invalidation.
	Mapper
	// OOM covers guest kill decisions.
	OOM
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Fault:
		return "fault"
	case Reclaim:
		return "reclaim"
	case DiskIO:
		return "disk"
	case Balloon:
		return "balloon"
	case Preventer:
		return "preventer"
	case Mapper:
		return "mapper"
	case OOM:
		return "oom"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Msg  string
}

// Ring is a bounded in-memory trace. The zero value is disabled; create
// one with New.
type Ring struct {
	events  []Event
	next    int
	wrapped bool
	enabled [numKinds]bool
}

// New returns a ring holding the most recent capacity events, with all
// kinds enabled.
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	r := &Ring{events: make([]Event, capacity)}
	for k := range r.enabled {
		r.enabled[k] = true
	}
	return r
}

// Enable toggles recording of one kind.
func (r *Ring) Enable(k Kind, on bool) {
	if r == nil {
		return
	}
	r.enabled[k] = on
}

// Recording reports whether events of kind k would be retained. Hot paths
// must check this before calling Add: the variadic arguments box (and
// allocate) at the call site even when the ring is nil or the kind is
// disabled.
func (r *Ring) Recording(k Kind) bool {
	return r != nil && r.enabled[k]
}

// Add records an event. A nil ring is a no-op, so call sites can hold an
// optional *Ring without guards.
func (r *Ring) Add(at sim.Time, k Kind, format string, args ...interface{}) {
	if r == nil || !r.enabled[k] {
		return
	}
	r.events[r.next] = Event{At: at, Kind: k, Msg: fmt.Sprintf(format, args...)}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// Events returns the recorded events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Len reports the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.wrapped {
		return len(r.events)
	}
	return r.next
}

// String dumps the retained events, one per line.
func (r *Ring) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "%-14v %-9s %s\n", e.At, e.Kind, e.Msg)
	}
	return b.String()
}

// Filter returns only the events of kind k, oldest first.
func (r *Ring) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
