package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioParse checks the scenario parser's core contract on
// arbitrary input: it never panics, every rejection is a positioned
// *ParseError (line >= 1, col >= 1), and every accepted document obeys
// the invariants the compiler in internal/experiment relies on — a
// declared mode, at least one scheme with a known name, and a workload
// kind the executor can build (or, in cluster mode, a validated
// remediation list in place of a workload).
func FuzzScenarioParse(f *testing.F) {
	seeds := []string{
		validSingle,
		validCluster,
		"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts: 0\n",
		"scenario: x\ntitle: t\nmode: cluster\ncluster:\n  hosts:\n    - name: a\n      mem_mb: 512\n    - name: a\n      mem_mb: 512\n",
		"cluster:\n  remediation: [migrate, teleport]\n  threshold: 1.5\n",
		"",
		"scenario: x\n",
		"scenario: x\ntitle: t\nmode: turbo\n",
		"scenario: x\ntitle: t\nmode: single\nfleet: {memory_mb: 512}\n",
		"scenario: x\ntitle: t\nmode: single\nfleet:\n\tmemory_mb: 512\n",
		"schemes: [baseline, vswapper, mapper]\n",
		"timeline:\n  - at_sec: 0.5\n    event: balloon_set\n    target_mb: 384\n",
		"assertions:\n  - counter: disk.ops\n    op: \"==\"\n",
		"workload:\n  kind: seqread\n  file_mb: 1e99\n",
		"# only a comment\n---\n...\n",
		"a: \"unterminated\nb: 'quote\n",
		"fleet:\n  counts: [1, 2, 3,\n",
		"scenario: x\nscenario: x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		sc, err := Parse([]byte(doc))
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("rejection is %T, want *ParseError: %v", err, err)
			}
			if pe.Line < 1 || pe.Col < 1 {
				t.Fatalf("rejection lacks a position: %+v", pe)
			}
			if pe.File != "" {
				t.Fatalf("Parse must not set File (Load does): %+v", pe)
			}
			return
		}
		if sc == nil {
			t.Fatal("nil scenario with nil error")
		}
		if sc.Mode != ModeSingle && sc.Mode != ModeDynamic && sc.Mode != ModeCluster {
			t.Fatalf("accepted scenario has mode %q", sc.Mode)
		}
		if len(sc.Schemes) == 0 {
			t.Fatal("accepted scenario has no schemes")
		}
		known := strings.Join(SchemeNames, " ")
		for _, s := range sc.Schemes {
			if !strings.Contains(known, s.Name) {
				t.Fatalf("accepted scenario has unknown scheme %q", s.Name)
			}
		}
		if sc.Mode == ModeCluster {
			// Cluster scenarios carry no workload stanza; the executor
			// instead needs a sized fleet and a validated policy list.
			if len(sc.Cluster.Remediations) == 0 {
				t.Fatal("accepted cluster scenario has no remediations")
			}
			knownRem := strings.Join(ClusterRemediations, " ")
			for _, r := range sc.Cluster.Remediations {
				if !strings.Contains(knownRem, r) {
					t.Fatalf("accepted cluster scenario has unknown remediation %q", r)
				}
			}
			if len(sc.Cluster.HostList) == 0 && sc.Cluster.Hosts < 1 {
				t.Fatal("accepted cluster scenario has no hosts")
			}
			if sc.Cluster.Guests < 1 {
				t.Fatal("accepted cluster scenario has no guests")
			}
			return
		}
		switch sc.Workload.Kind {
		case KindSeqRead, KindAllocTouch, KindMetis:
		default:
			t.Fatalf("accepted scenario has workload kind %q", sc.Workload.Kind)
		}
	})
}
