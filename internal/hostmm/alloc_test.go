package hostmm

import (
	"testing"

	"vswapsim/internal/sim"
)

// TestMinorFaultFastPathZeroAllocs locks the hot-path overhaul in place:
// servicing a minor fault on a resident page — EPT map, LRU touch,
// counters, latency histogram, and the simulated fault cost (an inline
// fast-path sleep) — must not allocate. Regressions here are what turned
// the fig5/fig11 sweeps allocation-bound before the flat counter cache,
// event freelist, and scratch-buffer pools.
func TestMinorFaultFastPathZeroAllocs(t *testing.T) {
	r := newRig(t, 1000, 0)
	r.run(t, func(p *sim.Proc) {
		pages := make([]*Page, 64)
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		// Warm the lazy pools (event freelist, histogram buckets) before
		// measuring.
		for _, pg := range pages {
			pg.EPT = false
			r.mgr.MinorMap(p, pg, GuestCtx)
		}
		i := 0
		avg := testing.AllocsPerRun(200, func() {
			pg := pages[i%len(pages)]
			i++
			pg.EPT = false
			r.mgr.MinorMap(p, pg, GuestCtx)
			r.mgr.Touch(pg)
		})
		if avg != 0 {
			t.Errorf("minor-fault fast path allocates %.2f objects per fault, want 0", avg)
		}
	})
}
