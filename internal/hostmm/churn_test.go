package hostmm

import (
	"testing"

	"vswapsim/internal/disk"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// checkOwnerInvariant asserts the slot allocator's core bookkeeping rule:
// the owner table tracks exactly the allocated slots.
func checkOwnerInvariant(t *testing.T, s *SwapArea) {
	t.Helper()
	if s.ownedSlots() != s.inUse {
		t.Fatalf("owner table size %d != inUse %d", s.ownedSlots(), s.inUse)
	}
}

// TestSwapAreaChurnOwnerBookkeeping drives the allocator through its three
// paths — cluster continuation, fresh cluster scan, and the fragmented
// lowest-free fallback — and asserts the owner map never leaks: after every
// slot is freed its size is exactly zero again.
func TestSwapAreaChurnOwnerBookkeeping(t *testing.T) {
	layout := disk.NewLayout(1 << 20)
	s := NewSwapArea(layout.Reserve("swap", 4*SlotsPerCluster))
	total := s.Slots()

	// Fill the whole area through the cluster paths.
	pages := make([]*Page, total)
	for i := range pages {
		pages[i] = &Page{ID: i, SwapSlot: -1}
		slot := s.Alloc(pages[i])
		if slot < 0 {
			t.Fatalf("area full after %d allocs, want %d", i, total)
		}
		if s.Owner(slot) != pages[i] {
			t.Fatalf("slot %d owner mismatch", slot)
		}
		pages[i].SwapSlot = slot
	}
	checkOwnerInvariant(t, s)
	if s.Alloc(&Page{SwapSlot: -1}) != -1 {
		t.Fatal("alloc on a full area must fail")
	}
	checkOwnerInvariant(t, s)

	// Free every other slot: the area fragments (no free cluster remains),
	// so refills must go through the lowest-free fallback.
	for slot := int64(0); slot < total; slot += 2 {
		s.Free(slot)
	}
	checkOwnerInvariant(t, s)
	if !s.fragmented() {
		t.Fatal("alternating frees should fragment the area")
	}
	refill := make([]*Page, 0, total/2)
	for {
		pg := &Page{SwapSlot: -1}
		slot := s.Alloc(pg)
		if slot < 0 {
			break
		}
		pg.SwapSlot = slot
		refill = append(refill, pg)
	}
	if int64(len(refill)) != total/2 {
		t.Fatalf("refilled %d slots, want %d", len(refill), total/2)
	}
	checkOwnerInvariant(t, s)

	// Drain everything; the owner map must return to exactly zero.
	for slot := int64(1); slot < total; slot += 2 {
		s.Free(slot)
	}
	for _, pg := range refill {
		s.Free(pg.SwapSlot)
	}
	checkOwnerInvariant(t, s)
	if s.InUse() != 0 || s.ownedSlots() != 0 {
		t.Fatalf("after draining: inUse=%d owner=%d, want 0/0", s.InUse(), s.ownedSlots())
	}
	// A drained area must be able to cluster again.
	if pg := (&Page{SwapSlot: -1}); s.Alloc(pg) < 0 {
		t.Fatal("drained area rejects allocation")
	}
}

// TestSwapChurnThroughReclaim cycles pages through swap-out, swap-in and
// release under a tight cgroup, then tears everything down: the regression
// this locks in is that no owner-map entry survives the churn (a leak here
// silently grows swap occupancy until allocation fails).
func TestSwapChurnThroughReclaim(t *testing.T) {
	r := newRig(t, 1000, 8)
	pages := make([]*Page, 24)
	r.run(t, func(p *sim.Proc) {
		for i := range pages {
			pages[i] = r.mgr.NewPage(r.cg, i)
			r.mgr.FirstTouch(p, pages[i], GuestCtx)
		}
		for round := 0; round < 4; round++ {
			for _, pg := range pages {
				if pg.State == SwappedOut {
					r.mgr.SwapIn(p, pg, GuestCtx)
				}
				if pg.State.Resident() && !pg.EPT {
					// MinorMap re-dirties the page and frees its slot.
					r.mgr.MinorMap(p, pg, GuestCtx)
				}
			}
			checkOwnerInvariant(t, r.swap)
		}
	})
	if r.met.Get(metrics.HostSwapOuts) == 0 || r.met.Get(metrics.HostSwapIns) == 0 {
		t.Fatalf("churn did not exercise swap: outs=%d ins=%d",
			r.met.Get(metrics.HostSwapOuts), r.met.Get(metrics.HostSwapIns))
	}
	// Every slot still allocated is owned by a page that really references
	// it (no stale resurrection of released descriptors).
	for slot, pg := range r.swap.owner {
		if pg != nil && pg.SwapSlot != int64(slot) {
			t.Fatalf("slot %d owned by page gfn=%d whose SwapSlot=%d", slot, pg.ID, pg.SwapSlot)
		}
	}
	// Full teardown releases every remaining slot.
	for _, pg := range pages {
		r.mgr.Forget(pg)
	}
	if r.swap.InUse() != 0 || r.swap.ownedSlots() != 0 {
		t.Fatalf("teardown leaked swap slots: inUse=%d owner=%d", r.swap.InUse(), r.swap.ownedSlots())
	}
}
