package experiment

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"vswapsim/internal/cluster"
	"vswapsim/internal/scenario"
	"vswapsim/internal/swapback"
)

// TestClusterParallelEquivalence extends the repo-wide determinism
// invariant to the cluster cells: both the hand-coded clusterN registry
// entry and its YAML twin must produce byte-identical JSON reports
// serially and at -parallel 4. (Like fleetN, the two are not mirrors of
// each other — their seed derivation ids differ — so each gets its own
// serial-vs-parallel check.)
func TestClusterParallelEquivalence(t *testing.T) {
	goExp, err := ByID("clusterN")
	if err != nil {
		t.Fatal(err)
	}
	yamlExp := FromScenario(loadScenario(t, "cluster"))
	for _, e := range []Experiment{goExp, yamlExp} {
		t.Run(e.ID, func(t *testing.T) {
			o := goldenOpts()
			want := scenarioJSON(t, e, o)
			o.Parallel = 4
			got := scenarioJSON(t, e, o)
			if !bytes.Equal(got, want) {
				t.Errorf("parallel run diverges from serial for %s (%d vs %d bytes)",
					e.ID, len(got), len(want))
			}
		})
	}
}

// TestClusterScenarioMatchesYAML pins scenarios/cluster.yaml against the
// in-tree engine: it loads, its remediation grid runs, all declared
// assertions pass (the note CI greps for), and every policy appears as a
// column of the report table.
func TestClusterScenarioMatchesYAML(t *testing.T) {
	e := FromScenario(loadScenario(t, "cluster"))
	resetSweepCaches()
	rep := e.Run(goldenOpts())
	want := ""
	for _, n := range rep.Notes {
		if strings.Contains(n, "assertions:") {
			want = n
		}
	}
	if !strings.Contains(want, "7/7 passed") {
		t.Fatalf("cluster.yaml assertions note = %q, want 7/7 passed\nnotes: %v", want, rep.Notes)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("cluster scenario produced %d tables, want 1", len(rep.Tables))
	}
	for _, r := range cluster.AllRemediations() {
		found := false
		for _, col := range rep.Tables[0].Columns {
			if col == r.String() {
				found = true
			}
		}
		if !found {
			t.Errorf("policy table missing remediation column %q: %v", r, rep.Tables[0].Columns)
		}
	}
	// The kill column carries the censoring marker: murdered guests render
	// as unbounded latency, not a small number.
	csv := rep.Tables[0].CSV()
	if !strings.Contains(csv, "inf") || !strings.Contains(csv, "killed") {
		t.Errorf("kill column lacks the censored-latency rendering:\n%s", csv)
	}
}

// TestClusterScenarioMirrorsRegistry pins scenarios/cluster.yaml to the
// hand-coded clusterN configuration: same fleet sizing, workload shape,
// monitor tuning and policy set. The two run different seed streams (the
// scenario name keys the derivation), so outputs legitimately differ;
// this structural check is what keeps them the same experiment.
func TestClusterScenarioMirrorsRegistry(t *testing.T) {
	sc := loadScenario(t, "cluster")
	cc := defaultClusterCfg()
	if sc.Mode != scenario.ModeCluster {
		t.Fatalf("cluster scenario mode %q, want cluster", sc.Mode)
	}
	cs := sc.Cluster
	checks := []struct {
		name      string
		got, want int
	}{
		{"hosts", cs.Hosts, cc.hosts},
		{"host_mb", cs.HostMB, cc.hostMB},
		{"guest_mb", cs.GuestMB, cc.guestMB},
		{"working_set_min", cs.WSMinPct, cc.wsMinPct},
		{"working_set_max", cs.WSMaxPct, cc.wsMaxPct},
		{"units", cs.Units, cc.units},
		{"phase_units", cs.PhaseUnits, cc.phaseUnits},
		{"unit_compute_ms", cs.UnitComputeMS, cc.unitComputeMS},
		{"stagger_ms", cs.StaggerMS, cc.staggerMS},
		{"disk_mb", cs.DiskMB, cc.diskMB},
		{"sample_sec", cs.SampleSec, cc.sampleSec},
		{"cooldown_sec", cs.CooldownSec, cc.cooldownSec},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("cluster.yaml %s = %d, registry uses %d", c.name, c.got, c.want)
		}
	}
	if cs.Threshold != cc.threshold {
		t.Errorf("cluster.yaml threshold = %g, registry uses %g", cs.Threshold, cc.threshold)
	}
	if cs.MaxCommitFactor != cc.maxCommit {
		t.Errorf("cluster.yaml max_commit_factor = %g, registry uses %g", cs.MaxCommitFactor, cc.maxCommit)
	}
	if clusterPackingByName(cs.Packing) != cc.packing {
		t.Errorf("cluster.yaml packing = %q, registry uses %q", cs.Packing, cc.packing)
	}
	if len(sc.Backends) != 1 || sc.Backends[0] != swapback.SSD.String() {
		t.Errorf("cluster.yaml backends = %v, registry cell defaults to ssd", sc.Backends)
	}
	all := cluster.AllRemediations()
	if len(cs.Remediations) != len(all) {
		t.Fatalf("cluster.yaml declares %d remediations, registry compares %d", len(cs.Remediations), len(all))
	}
	for i, r := range all {
		if cs.Remediations[i] != r.String() {
			t.Errorf("remediation[%d] = %q, registry %q", i, cs.Remediations[i], r)
		}
	}
	// The quick guest count matches clusterN's quick row — 2x aggregate
	// commit, the regime the acceptance assertions are tuned for.
	if cs.Guests != 32 {
		t.Errorf("cluster.yaml guests = %d, clusterN quick row uses 32", cs.Guests)
	}
}

// TestClusterPolicyNamesAgree pins the two sides of the policy-name
// contract: the scenario package's validation lists (used in error
// messages and docs) and the cluster package's canonical maps accept
// exactly the same spellings, and AllRemediations orders them the way
// the comparison tables do.
func TestClusterPolicyNamesAgree(t *testing.T) {
	if len(scenario.ClusterPackings) != len(cluster.PackingNames) {
		t.Errorf("scenario lists %d packings, cluster accepts %d",
			len(scenario.ClusterPackings), len(cluster.PackingNames))
	}
	for _, n := range scenario.ClusterPackings {
		p, ok := cluster.PackingNames[n]
		if !ok {
			t.Errorf("scenario packing %q unknown to the cluster package", n)
			continue
		}
		if p.String() != n {
			t.Errorf("packing %q round-trips to %q", n, p.String())
		}
	}
	if len(scenario.ClusterRemediations) != len(cluster.RemediationNames) {
		t.Errorf("scenario lists %d remediations, cluster accepts %d",
			len(scenario.ClusterRemediations), len(cluster.RemediationNames))
	}
	for _, n := range scenario.ClusterRemediations {
		r, ok := cluster.RemediationNames[n]
		if !ok {
			t.Errorf("scenario remediation %q unknown to the cluster package", n)
			continue
		}
		if r.String() != n {
			t.Errorf("remediation %q round-trips to %q", n, r.String())
		}
	}
	all := cluster.AllRemediations()
	if len(all) != len(cluster.RemediationNames) {
		t.Errorf("AllRemediations returns %d policies, map has %d", len(all), len(cluster.RemediationNames))
	}
	for i, r := range all {
		if scenario.ClusterRemediations[i] != r.String() {
			t.Errorf("comparison order [%d]: scenario %q, cluster %q",
				i, scenario.ClusterRemediations[i], r)
		}
	}
}

// TestClusterOffByteIdentical proves the cluster subsystem is inert when
// unused: a pre-cluster experiment run at the golden configuration still
// reproduces the pre-PR golden report bytes, and a pre-cluster scenario
// still matches its recorded fingerprint. Adding the cluster machinery
// must not perturb a single byte of non-cluster output.
func TestClusterOffByteIdentical(t *testing.T) {
	o := goldenOpts()
	o.TraceRing = 64 // the golden report embeds the trace tail
	got := jsonBytes(t, "fig3", o)
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cluster subsystem perturbed the non-cluster golden report bytes")
	}
}
