package balloon

import (
	"testing"

	"vswapsim/internal/guest"
	"vswapsim/internal/hyper"
	"vswapsim/internal/sim"
)

const mib = 1 << 20

// pressureRig builds a host whose pool is mostly consumed by one greedy
// guest, so the manager must inflate balloons.
func pressureRig(t *testing.T) (*hyper.Machine, *hyper.VM, *Manager) {
	t.Helper()
	m := hyper.NewMachine(hyper.MachineConfig{Seed: 5, HostMemPages: 128 * mib / 4096})
	vm := m.NewVM(hyper.VMConfig{
		Name:       "vm0",
		MemPages:   192 * mib / 4096, // overcommitted vs the 128 MiB host
		DiskBlocks: 2 << 30 / 4096,
		GuestAPF:   true,
	})
	mgr := New(m, Config{})
	return m, vm, mgr
}

func TestManagerInflatesUnderPressure(t *testing.T) {
	m, vm, mgr := pressureRig(t)
	m.Env.Go("driver", func(p *sim.Proc) {
		vm.Boot(p)
		mgr.Start()
		th := &guest.Thread{OS: vm.OS, P: p}
		// Consume host memory: touch lots of guest pages.
		pr := vm.OS.NewProcess("hog")
		n := 110 * mib / 4096
		pr.Reserve(n)
		for i := 0; i < n; i++ {
			th.TouchAnon(pr, i, true)
		}
		pr.Exit() // guest now has lots of idle (free) memory
		p.Sleep(30 * sim.Second)
		mgr.Stop()
		m.Shutdown()
	})
	m.Run()
	if vm.OS.BalloonPages() == 0 {
		t.Fatal("manager never inflated despite host pressure")
	}
}

func TestManagerDeflatesWhenRelieved(t *testing.T) {
	m := hyper.NewMachine(hyper.MachineConfig{Seed: 5, HostMemPages: 512 * mib / 4096})
	vm := m.NewVM(hyper.VMConfig{
		Name:       "vm0",
		MemPages:   128 * mib / 4096,
		DiskBlocks: 2 << 30 / 4096,
		GuestAPF:   true,
	})
	mgr := New(m, Config{})
	m.Env.Go("driver", func(p *sim.Proc) {
		vm.Boot(p)
		// Pre-inflate, then let the (pressure-free) manager deflate.
		vm.OS.SetBalloonTarget(64 * mib / 4096)
		for vm.OS.BalloonPages() < 64*mib/4096 {
			p.Sleep(100 * sim.Millisecond)
		}
		mgr.Start()
		p.Sleep(40 * sim.Second)
		mgr.Stop()
		m.Shutdown()
	})
	m.Run()
	if got := vm.OS.BalloonPages(); got != 0 {
		t.Fatalf("balloon still at %d pages on an idle host", got)
	}
}

func TestManagerStepBoundsRate(t *testing.T) {
	m, vm, mgr := pressureRig(t)
	mgr.Cfg.StepFraction = 0.01
	var targetAfter3 int
	m.Env.Go("driver", func(p *sim.Proc) {
		vm.Boot(p)
		th := &guest.Thread{OS: vm.OS, P: p}
		pr := vm.OS.NewProcess("hog")
		n := 110 * mib / 4096
		pr.Reserve(n)
		for i := 0; i < n; i++ {
			th.TouchAnon(pr, i, true)
		}
		pr.Exit()
		mgr.Start()
		p.Sleep(3*sim.Second + 100*sim.Millisecond)
		targetAfter3 = vm.OS.BalloonTarget()
		mgr.Stop()
		m.Shutdown()
	})
	m.Run()
	maxPerTick := int(float64(vm.Cfg.MemPages) * 0.01)
	if targetAfter3 > 4*maxPerTick {
		t.Fatalf("target %d exceeds rate bound %d after 3 ticks", targetAfter3, 4*maxPerTick)
	}
	if targetAfter3 == 0 {
		t.Fatal("manager made no progress")
	}
}
