// Command benchsim records a benchmark trajectory for the simulator: it
// runs every registry experiment in quick mode a fixed number of times,
// keeps the best wall-clock time per experiment, and writes the result as
// JSON (BENCH_sim.json at the repo root; regenerate with scripts/bench.sh).
//
// The report fingerprints are included and must be identical across
// iterations — benchsim exits nonzero if a run is nondeterministic. Wall
// times naturally vary between machines and checkouts; the fingerprints
// must not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vswapsim/internal/experiment"
)

// cliConfig holds the parsed command line.
type cliConfig struct {
	iters    int
	scale    float64
	seed     uint64
	parallel int
	only     string
	out      string
}

func parseArgs(args []string) (cliConfig, error) {
	fs := flag.NewFlagSet("benchsim", flag.ContinueOnError)
	var c cliConfig
	fs.IntVar(&c.iters, "iters", 3, "iterations per experiment (best wall time is kept)")
	fs.Float64Var(&c.scale, "scale", 0.125, "size scale factor for the benchmark runs")
	fs.Uint64Var(&c.seed, "seed", 42, "random seed")
	fs.IntVar(&c.parallel, "parallel", 1,
		"worker pool size inside each experiment (1 = serial, the stable default for timing)")
	fs.StringVar(&c.only, "only", "", "comma-separated experiment id filter")
	fs.StringVar(&c.out, "o", "BENCH_sim.json", "output file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.iters < 1 {
		return c, fmt.Errorf("invalid -iters %d: must be >= 1", c.iters)
	}
	if c.scale <= 0 || c.scale > 16 {
		return c, fmt.Errorf("invalid -scale %v: must be in (0, 16]", c.scale)
	}
	if c.parallel < 1 {
		return c, fmt.Errorf("invalid -parallel %d: must be >= 1", c.parallel)
	}
	return c, nil
}

// BenchEntry is one experiment's measurement.
type BenchEntry struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Fingerprint string  `json:"fingerprint"`
	Iters       int     `json:"iters"`
	BestMS      float64 `json:"best_ms"`
	MeanMS      float64 `json:"mean_ms"`
}

// BenchDoc is the trajectory file schema: the environment and options the
// numbers were taken under, plus one entry per experiment in registry order.
type BenchDoc struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Seed       uint64       `json:"seed"`
	Scale      float64      `json:"scale"`
	Quick      bool         `json:"quick"`
	Parallel   int          `json:"parallel"`
	Entries    []BenchEntry `json:"entries"`
	TotalMS    float64      `json:"total_ms"`
}

func main() {
	c, err := parseArgs(os.Args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}

	exps := experiment.Registry
	if c.only != "" {
		exps = nil
		for _, id := range strings.Split(c.only, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	opts := experiment.Options{Seed: c.seed, Scale: c.scale, Quick: true, Parallel: c.parallel}
	doc := &BenchDoc{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       c.seed,
		Scale:      c.scale,
		Quick:      true,
		Parallel:   c.parallel,
	}
	for _, e := range exps {
		entry := BenchEntry{ID: e.ID, Title: e.Title, Iters: c.iters}
		var sum float64
		for i := 0; i < c.iters; i++ {
			// Clear memoized sweeps so every iteration simulates from scratch.
			experiment.ResetCaches()
			start := time.Now()
			rep := e.Run(opts)
			ms := float64(time.Since(start).Microseconds()) / 1000
			fp := rep.Fingerprint()
			if entry.Fingerprint == "" {
				entry.Fingerprint = fp
			} else if entry.Fingerprint != fp {
				fmt.Fprintf(os.Stderr, "benchsim: %s is nondeterministic: fingerprint %s != %s\n",
					e.ID, fp, entry.Fingerprint)
				os.Exit(1)
			}
			if entry.BestMS == 0 || ms < entry.BestMS {
				entry.BestMS = ms
			}
			sum += ms
		}
		entry.MeanMS = round3(sum / float64(c.iters))
		entry.BestMS = round3(entry.BestMS)
		doc.Entries = append(doc.Entries, entry)
		doc.TotalMS += entry.BestMS
		fmt.Fprintf(os.Stderr, "%-10s best %8.1f ms  mean %8.1f ms  (%s)\n",
			e.ID, entry.BestMS, entry.MeanMS, entry.Fingerprint[:12])
	}
	doc.TotalMS = round3(doc.TotalMS)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if c.out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(c.out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (total best %.1f ms over %d experiments)\n",
		c.out, doc.TotalMS, len(doc.Entries))
}

// round3 trims to 3 decimals so the checked-in JSON stays readable.
func round3(ms float64) float64 {
	return float64(int64(ms*1000+0.5)) / 1000
}
