// Package core implements VSwapper itself: the Swap Mapper and the False
// Reads Preventer (paper §4). Both are guest-agnostic — they only observe
// the virtio I/O stream and EPT write violations; they never peek inside
// the guest OS.
//
// The package is policy: the mechanisms it drives (private mappings,
// invalidation, emulation state transitions) live in internal/hostmm, just
// as the paper splits QEMU-side logic from host-kernel extensions
// (Table 1).
package core

import (
	"vswapsim/internal/hostmm"
	"vswapsim/internal/metrics"
	"vswapsim/internal/sim"
)

// MapperConfig holds the Swap Mapper cost knobs.
type MapperConfig struct {
	// PerPageMapCost is the CPU cost of mmap+ioctl for one page on the
	// guest I/O path (the source of VSwapper's small overhead, §5.3).
	PerPageMapCost sim.Duration
	// InvalidateEnabled can be turned off for the ablation benchmark that
	// shows why the consistency flag is needed.
	InvalidateDisabled bool
}

// DefaultMapperConfig returns costs measured against the paper's ~3.5%
// worst-case overhead: every mapped page pays an mmap plus a KVM ioctl.
func DefaultMapperConfig() MapperConfig {
	return MapperConfig{PerPageMapCost: 3 * sim.Microsecond}
}

// Mapper is the Swap Mapper: it interposes on the guest's virtual disk
// traffic, maintaining the association between unmodified guest memory
// pages and their origin disk blocks, so the host can treat them as
// file-backed (discard instead of swap, prefetch from the image instead of
// the swap area).
type Mapper struct {
	MM    *hostmm.Manager
	Met   *metrics.Set
	Image *hostmm.File
	Cfg   MapperConfig
}

// NewMapper creates a Mapper for one guest's disk image.
func NewMapper(mm *hostmm.Manager, met *metrics.Set, image *hostmm.File, cfg MapperConfig) *Mapper {
	return &Mapper{MM: mm, Met: met, Image: image, Cfg: cfg}
}

// OnDiskRead replaces QEMU's preadv with the paper's readahead+mmap flow:
// the blocks are read into the host page cache (one contiguous request)
// and then privately mapped over the target guest pages, superseding
// whatever those pages held — hence no stale reads, and the pages end up
// named, clean and discardable.
//
// The physical read must be performed by the caller *before* invoking this
// (it owns the device accounting); OnDiskRead performs the mapping side.
func (mp *Mapper) OnDiskRead(p *sim.Proc, pages []*hostmm.Page, start int64) {
	for i, pg := range pages {
		block := start + int64(i)
		mp.MM.MapOver(p, pg, hostmm.BlockRef{File: mp.Image, Block: block})
	}
	p.Sleep(sim.Duration(len(pages)) * mp.Cfg.PerPageMapCost)
}

// BeforeDiskWrite implements the consistency flag: before an explicit
// write to [start, start+n) lands on the image, all private mappings of
// those blocks are invalidated (rescuing old content where needed).
func (mp *Mapper) BeforeDiskWrite(p *sim.Proc, start int64, n int) {
	if mp.Cfg.InvalidateDisabled {
		return
	}
	for i := 0; i < n; i++ {
		mp.MM.InvalidateBlock(p, mp.Image, start+int64(i))
	}
}

// AfterDiskWrite maps the just-written pages to their new blocks (the
// paper's write-then-mmap-then-complete ordering, §4.1 "Guest I/O Flow"):
// the page content now equals the block, so reclaiming it later is free.
func (mp *Mapper) AfterDiskWrite(p *sim.Proc, pages []*hostmm.Page, start int64) {
	for i, pg := range pages {
		block := start + int64(i)
		switch pg.State {
		case hostmm.ResidentAnon:
			mp.MM.AdoptAsNamed(pg, hostmm.BlockRef{File: mp.Image, Block: block})
		case hostmm.ResidentFile:
			if pg.Backing.File == mp.Image && pg.Backing.Block == block {
				continue // already mapped to this very block
			}
			// Mapped elsewhere (e.g. a file copy): leave the existing
			// association; it is still valid.
		}
	}
	p.Sleep(sim.Duration(len(pages)) * mp.Cfg.PerPageMapCost)
}

// TrackedPages reports how many disk blocks currently have a live
// page association (the Fig. 15 metric).
func (mp *Mapper) TrackedPages() int { return mp.Image.MappedBlocks() }
